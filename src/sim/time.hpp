// Simulated-time primitives for the nestv discrete-event engine.
//
// All simulated time is carried as unsigned 64-bit nanoseconds.  The paper's
// testbed used the host TSC as an absolute clock across the virtual boundary
// (section 5.2.4); the DES clock plays that role here by construction.
#pragma once

#include <cstdint>
#include <string>

namespace nestv::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using TimePoint = std::uint64_t;

/// Relative simulated duration in nanoseconds.
using Duration = std::uint64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration nanoseconds(std::uint64_t n) { return n; }
constexpr Duration microseconds(std::uint64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::uint64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::uint64_t n) { return n * kSecond; }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts a floating-point second count to a Duration, saturating at zero.
constexpr Duration from_seconds(double s) {
  return s <= 0.0 ? 0 : static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Human-readable rendering ("12.345 ms", "3.2 s", ...), used in reports.
std::string format_duration(Duration d);

}  // namespace nestv::sim
