// Priority queue of timed events with deterministic tie-breaking.
//
// Hot-path layout (this is the innermost loop of every benchmark):
//   - The heap orders 24-byte POD entries {when, seq, slot, gen} in a 4-ary
//     array layout (shallower than binary, and all four children of a node
//     share one cache line), so sift operations never touch a closure.
//   - Closures live in a stable slot table recycled through a free list;
//     an EventId packs (generation << 32 | slot).  Cancellation bumps the
//     slot's generation — O(1), no hash set — and the matching heap entry
//     is skipped lazily when it surfaces.
//   - schedule/cancel/pop_and_run perform no allocation at steady state:
//     closures up to InlineTask::kInlineBytes are stored in the slot
//     itself, and both the heap and slot vectors reuse their capacity.
//   - schedule / pop_and_run / the sift helpers are defined inline below so
//     the engine's run loop compiles into one flat function; a simulation
//     executes several million events per wall second, and an out-of-line
//     call per heap operation is measurable at that rate.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// Opaque handle that allows cancelling a scheduled event.  Never zero for
/// a scheduled event, so 0 doubles as "no timer" in client code.
using EventId = std::uint64_t;

/// Min-heap of (time, order) events.  Two events scheduled for the same
/// instant fire in scheduling order, which keeps every simulation run
/// bit-for-bit reproducible (DESIGN.md section 6).  schedule_keyed()
/// instead takes an explicit same-instant key: those events fire before
/// every plainly-scheduled event at their instant, ordered by key — the
/// sharded conductor uses it to make cross-machine frame ordering a
/// function of the frame, not of which execution mode delivered it.
class EventQueue {
 public:
  /// Keys passed to schedule_keyed() must stay below this bound (plain
  /// events occupy the band at and above it).
  static constexpr std::uint64_t kKeyLimit = std::uint64_t{1} << 63;

  /// Takes the task by rvalue reference: the closure is moved exactly once,
  /// from the caller's temporary into the slot (callers hand over lambdas
  /// or `std::move` a named task; nothing is relocated per call layer).
  EventId schedule(TimePoint when, InlineTask&& action) {
    return schedule_ordered(when, kKeyLimit | next_seq_++,
                            std::move(action));
  }

  /// Schedules with an explicit same-instant order.  At any instant, all
  /// keyed events fire (by ascending key) before any plain event; keys
  /// must be unique per instant for the order to be total.
  EventId schedule_keyed(TimePoint when, std::uint64_t key,
                         InlineTask&& action) {
    assert(key < kKeyLimit && "ordering key collides with the plain band");
    return schedule_ordered(when, key, std::move(action));
  }

  /// Cancels a scheduled event: its slot is released immediately and the
  /// stale heap entry is dropped when it reaches the top.  Cancelling an
  /// already-fired or unknown id is a safe no-op (timers routinely race
  /// their own cancellation).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time() {
    drop_dead_prefix();
    assert(!heap_.empty() && "next_time() on empty queue");
    return heap_.front().when;
  }

  /// Removes and runs the earliest live event.  Returns its time.
  /// Precondition: !empty().
  TimePoint pop_and_run() {
    drop_dead_prefix();
    assert(!heap_.empty() && "pop_and_run() on empty queue");
    const HeapEntry top = heap_pop_top();
    // Move the closure out and free the slot *before* invoking: the action
    // may schedule (reusing this slot) or cancel its own id.
    InlineTask task = std::move(slots_[top.slot].task);
    release_slot(top.slot);
    --live_;
    task();
    return top.when;
  }

 private:
  struct HeapEntry {
    TimePoint when = 0;
    std::uint64_t order = 0;  ///< same-instant tie-break (key or seq band)
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  EventId schedule_ordered(TimePoint when, std::uint64_t order,
                           InlineTask&& action) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    Slot& s = slots_[slot];
    s.task = std::move(action);
    s.live = true;
    heap_push(HeapEntry{when, order, slot, s.gen});
    ++live_;
    return make_id(s.gen, slot);
  }

  struct Slot {
    InlineTask task;
    std::uint32_t gen = 1;  ///< bumped on release; 0 never matches
    bool live = false;
  };

  // Returns true when a sorts strictly before b (min-heap order).
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.order < b.order;
  }

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static constexpr std::size_t kArity = 4;

  // Hole-based sift-up: shift losing parents down and write `e` once,
  // rather than swapping 24-byte entries at every level.
  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const HeapEntry e = heap_[i];
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child =
          first_child + kArity < n ? first_child + kArity : n;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  HeapEntry heap_pop_top() {
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Frees a slot for reuse; the generation bump invalidates any handle or
  /// heap entry still referring to it.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.task.reset();
    s.live = false;
    ++s.gen;
    free_.push_back(slot);
  }

  /// Discards heap entries whose slot was cancelled (generation mismatch).
  void drop_dead_prefix() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.live && s.gen == top.gen) return;
      heap_pop_top();
    }
  }

  std::vector<HeapEntry> heap_;       ///< 4-ary min-heap
  std::vector<Slot> slots_;           ///< stable closure storage
  std::vector<std::uint32_t> free_;   ///< recycled slot indices
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace nestv::sim
