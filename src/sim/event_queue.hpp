// Priority queue of timed events with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace nestv::sim {

/// Opaque handle that allows cancelling a scheduled event.
using EventId = std::uint64_t;

/// Min-heap of (time, sequence) ordered events.  Two events scheduled for
/// the same instant fire in scheduling order, which keeps every simulation
/// run bit-for-bit reproducible (DESIGN.md section 6).
class EventQueue {
 public:
  EventId schedule(TimePoint when, std::function<void()> action);

  /// Marks an event as cancelled; it is dropped (and freed) when it reaches
  /// the top of the heap.  Cancelling an already-fired or unknown id is a
  /// safe no-op (timers routinely race their own cancellation).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time();

  /// Removes and runs the earliest live event.  Returns its time.
  /// Precondition: !empty().
  TimePoint pop_and_run();

 private:
  struct Entry {
    TimePoint when = 0;
    EventId id = 0;
    std::function<void()> action;
  };

  // Returns true when a sorts strictly after b (min-heap comparator).
  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.id > b.id;
  }

  void drop_cancelled_prefix();
  Entry pop_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;    ///< ids currently in the heap
  std::unordered_set<EventId> cancelled_;  ///< pending ids to skip on pop
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace nestv::sim
