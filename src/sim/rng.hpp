// Deterministic random number generation for simulations.
//
// xoshiro256** seeded through SplitMix64, plus the handful of distributions
// the reproduction needs (uniform, exponential, normal, lognormal, Pareto).
// We do not use <random> engines because their distributions are not
// guaranteed to produce identical streams across standard library
// implementations, which would break cross-platform reproducibility of the
// benchmark outputs.
#pragma once

#include <cstdint>

namespace nestv::sim {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded via SplitMix64 from a single 64-bit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0, 1).
  double next_double();

  /// Uniform integer on [lo, hi] (inclusive).  Precondition: lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real on [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponential with the given mean (= 1/lambda).  Mean must be > 0.
  double exponential(double mean);

  /// Standard normal via Box-Muller (cached second variate).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Pareto (type I) with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha);

  /// Forks an independent, deterministic child stream.  Used to give every
  /// simulated entity its own stream so adding one entity never perturbs
  /// another's randomness.
  Rng fork();

  /// Mixes a stream id into a base seed (two SplitMix64 finalizer rounds):
  /// the canonical way to derive per-purpose sub-seeds from one scenario
  /// seed.  Replaces the ad-hoc xor/multiply mixes scenarios used to carry
  /// (`seed ^ 0x...`, `seed * 1000003 + k * 7919`) with one well-mixed,
  /// collision-resistant derivation.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t seed,
                                         std::uint64_t stream);

  /// An Rng on the sub-stream `stream` of `seed`: Rng(mix(seed, stream)).
  /// Distinct stream ids give statistically independent generators;
  /// callers name their streams with small constants or entity indices.
  [[nodiscard]] static Rng of_stream(std::uint64_t seed,
                                     std::uint64_t stream) {
    return Rng(mix(seed, stream));
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace nestv::sim
