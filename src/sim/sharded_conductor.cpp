#include "sim/sharded_conductor.hpp"

#include <algorithm>
#include <chrono>

#include "sim/test_hooks.hpp"

namespace nestv::sim {

namespace {

unsigned clamp_workers(int shards, unsigned max_workers) {
  if (shards <= 1) return 1;
  // An explicit request wins over the core-count heuristic: tests and the
  // TSan CI job ask for real threads even on small machines (results are
  // thread-count-independent, so oversubscription only costs wall time).
  unsigned w = max_workers;
  if (w == 0) {
    w = std::thread::hardware_concurrency();
    if (w == 0) w = 1;
  }
  return std::max(1u, std::min(w, static_cast<unsigned>(shards)));
}

/// next + bound without overflow (kNever-adjacent values saturate).
TimePoint saturating_add(TimePoint t, Duration d) {
  constexpr TimePoint kMax = std::numeric_limits<TimePoint>::max();
  return t > kMax - d ? kMax : t + d;
}

std::uint64_t wall_ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// LookaheadMatrix

void LookaheadMatrix::note_link(int src, int dst, Duration latency) {
  assert(src >= 0 && src < shards_ && dst >= 0 && dst < shards_);
  assert(latency >= 1);
  if (src == dst) return;
  auto& slot = direct_[std::size_t(src) * std::size_t(shards_) +
                       std::size_t(dst)];
  slot = std::min(slot, latency);
  has_links_ = true;
  finalized_ = false;
}

void LookaheadMatrix::finalize() {
  if (finalized_) return;
  const auto n = std::size_t(shards_);
  bound_ = direct_;
  // Floyd–Warshall over the direct edges: bound_[t][s] becomes the
  // cheapest wire chain t -> s.  S^3 at S <= 64 shards is microseconds.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const Duration ik = bound_[i * n + k];
      if (ik == kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const Duration kj = bound_[k * n + j];
        if (kj == kUnreachable) continue;
        auto& ij = bound_[i * n + j];
        const Duration via = ik + kj;  // finite: latencies are small
        if (via < ij) ij = via;
      }
    }
  }
  // Shortest cycle through s: leave towards any t, come back by the
  // cheapest path.  (Any cycle through s decomposes this way because the
  // closure already minimises the return leg.)
  for (std::size_t s = 0; s < n; ++s) {
    Duration best = kUnreachable;
    for (std::size_t t = 0; t < n; ++t) {
      if (t == s) continue;
      const Duration out = bound_[s * n + t];
      const Duration back = bound_[t * n + s];
      if (out == kUnreachable || back == kUnreachable) continue;
      best = std::min(best, out + back);
    }
    cycle_[s] = best;
  }
  if (test_hooks::lookahead_matrix_overrun) {
    // Injected bug (fuzz_runner --inject-bug lookahead): the matrix claims
    // neighbours interfere later than they really can, so windows overrun
    // true arrival times and cross-shard frames land in the past (the
    // engine clamps them to "now", which the shards oracle detects as a
    // digest divergence against shards=1).
    for (auto& d : bound_) {
      if (d != kUnreachable) d *= 2;
    }
    for (auto& d : cycle_) {
      if (d != kUnreachable) d *= 2;
    }
  }
  finalized_ = true;
}

TimePoint LookaheadMatrix::window_end(int s, const TimePoint* next,
                                      TimePoint deadline) const {
  assert(finalized_);
  TimePoint cap = kNever;
  for (int t = 0; t < shards_; ++t) {
    const TimePoint nt = next[t];
    if (nt == kNever) continue;  // idle shards constrain nobody
    const Duration d = bound(t, s);
    if (d == kUnreachable) continue;
    cap = std::min(cap, saturating_add(nt, d));
  }
  if (cap == kNever) return deadline;
  return std::min(deadline, cap - 1);
}

// ---------------------------------------------------------------------------
// ShardedConductor

ShardedConductor::ShardedConductor(int shards, Duration lookahead,
                                   unsigned max_workers)
    : lookahead_(lookahead),
      workers_(clamp_workers(shards, max_workers)),
      barrier_(workers_),
      matrix_(shards, lookahead) {
  assert(shards >= 1);
  assert(lookahead >= 1);
  engines_.reserve(std::size_t(shards));
  for (int s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>());
  }
  box_.resize(std::size_t(shards) * std::size_t(shards));
  box_dirty_.assign(box_.size(), 0);
  posted_flag_[0].assign(workers_, 0);
  posted_flag_[1].assign(workers_, 0);
  worker_parity_.assign(workers_, 0);
  owner_of_.assign(std::size_t(shards), 0);
  for (unsigned w = 0; w < workers_; ++w) {
    for (int s = shard_begin(w); s < shard_begin(w + 1); ++s) {
      owner_of_[std::size_t(s)] = w;
    }
  }
  window_end_ = std::vector<std::atomic<TimePoint>>(std::size_t(shards));
  for (auto& e : window_end_) e.store(0, std::memory_order_relaxed);
  for (auto& buf : next_) {
    buf = std::vector<std::atomic<TimePoint>>(std::size_t(shards));
    for (auto& n : buf) n.store(kNever, std::memory_order_relaxed);
  }
  posted_.assign(std::size_t(shards), 0);
  drained_.assign(std::size_t(shards), 0);
  idle_windows_.assign(std::size_t(shards), 0);
  barrier_wait_ns_.assign(workers_, 0);
}

int ShardedConductor::shard_of(const Engine& engine) const {
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    if (engines_[s].get() == &engine) return static_cast<int>(s);
  }
  return -1;
}

void ShardedConductor::note_cross_link(int src, int dst, Duration latency) {
  matrix_.note_link(src, dst, latency);
}

void ShardedConductor::set_uniform_window(bool uniform) {
  matrix_.set_uniform(uniform);
}

void ShardedConductor::post(int src, int dst, TimePoint when,
                            InlineTask&& task) {
  post_keyed(src, dst, when, kUnkeyed, std::move(task));
}

void ShardedConductor::post_keyed(int src, int dst, TimePoint when,
                                  std::uint64_t key, InlineTask&& task) {
  assert(src >= 0 && src < shards() && dst >= 0 && dst < shards());
  assert(src != dst && "same-shard traffic schedules directly");
  // Lookahead contract: the message lands strictly after the window the
  // *destination* is running, so its drain never rewinds its clock.  (A
  // relaxed load may see a stale, smaller window end, which only makes the
  // check more permissive — the protocol guarantee is the matrix bound.)
  assert(test_hooks::lookahead_matrix_overrun ||
         when >
             window_end_[std::size_t(dst)].load(std::memory_order_relaxed));
  // Once wires exist, every posting pair must be wire-connected: the
  // window matrix gives unreachable pairs no constraint at all.
  assert(!(matrix_.finalized() && matrix_.has_links()) ||
         matrix_.bound(src, dst) != LookaheadMatrix::kUnreachable);
  auto& box = box_[box_index(src, dst)];
  box.push_back(Mail{when, key, std::move(task)});
  box_dirty_[box_index(src, dst)] = 1;
  const unsigned w = owner_of_[std::size_t(src)];
  posted_flag_[worker_parity_[w]][w] = 1;
  ++posted_[std::size_t(src)];
}

std::uint64_t ShardedConductor::drain_box(int src, int dst) {
  const std::size_t idx = box_index(src, dst);
  auto& box = box_[idx];
  Engine& eng = *engines_[std::size_t(dst)];
  const std::uint64_t n = box.size();
  for (Mail& m : box) {
    if (m.key == kUnkeyed) {
      eng.schedule_at(m.when, std::move(m.task));
    } else {
      eng.schedule_at_keyed(m.when, m.key, std::move(m.task));
    }
  }
  box.clear();
  box_dirty_[idx] = 0;
  return n;
}

ShardedConductor::~ShardedConductor() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      pool_stop_ = true;
    }
    pool_cv_.notify_all();
    for (auto& t : pool_) t.join();
  }
}

void ShardedConductor::pool_main(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    TimePoint deadline;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk,
                    [&] { return pool_stop_ || run_seq_ != seen; });
      if (pool_stop_) return;
      seen = run_seq_;
      deadline = pool_deadline_;
    }
    worker_loop(worker, deadline);
  }
}

void ShardedConductor::run_until(TimePoint deadline) {
  if (engines_.size() == 1) {
    // The single-shard conductor IS the plain engine (the equivalence
    // baseline the bench gate holds every other shard count to).
    engines_[0]->run_until(deadline);
    return;
  }
  matrix_.finalize();  // idempotent; rebuilds after new note_cross_links
  if (workers_ > 1 && pool_.empty()) {
    pool_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w) {
      pool_.emplace_back([this, w] { pool_main(w); });
    }
  }
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_deadline_ = deadline;
    ++run_seq_;
  }
  pool_cv_.notify_all();
  worker_loop(0, deadline);
}

void ShardedConductor::worker_loop(unsigned worker, TimePoint deadline) {
  const int lo = shard_begin(worker);
  const int hi = shard_begin(worker + 1);
  const int n = shards();
  std::uint64_t wait_ns = 0;
  std::vector<TimePoint> horizon(static_cast<std::size_t>(n));

  // Entry: pick up mail posted by the setup thread since the last run
  // (dirty flags are cleared too — setup posts must not leak a stale
  // "posted" signal into the first epoch), publish horizons into the
  // buffer epoch 0 will read, reset this worker's epoch-parity state.
  for (int s = lo; s < hi; ++s) {
    Engine& eng = *engines_[std::size_t(s)];
    for (int src = 0; src < n; ++src) {
      if (src != s) drained_[std::size_t(s)] += drain_box(src, s);
    }
    next_[0][std::size_t(s)].store(eng.idle() ? kNever
                                              : eng.next_event_time(),
                                   std::memory_order_relaxed);
  }
  worker_parity_[worker] = 0;
  posted_flag_[0][worker] = 0;
  posted_flag_[1][worker] = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    barrier_.arrive_and_wait();
    wait_ns += wall_ns_since(t0);
  }

  std::uint8_t parity = 0;
  for (;;) {
    // Window phase.  Epoch k's horizons live in next_[k & 1], frozen for
    // the whole epoch (publishes go to the other buffer), so every worker
    // derives identical windows and an identical termination verdict from
    // identical data — no coordinator thread, no broadcast, and no race
    // against faster workers that are already publishing for epoch k+1.
    const auto& cur = next_[parity];
    auto& pub = next_[parity ^ 1];
    TimePoint gmin = kNever;
    for (int t = 0; t < n; ++t) {
      horizon[std::size_t(t)] =
          cur[std::size_t(t)].load(std::memory_order_relaxed);
      gmin = std::min(gmin, horizon[std::size_t(t)]);
    }
    if (gmin > deadline) {
      // Nothing left at or before the deadline anywhere; mailboxes are
      // empty (drained below or at entry, and no shard has run since).
      // Clamp the owned clocks to the deadline exactly as
      // Engine::run_until does.  The final barrier is the completion
      // handshake with the persistent pool: when worker 0 leaves it,
      // every shard is clamped and every worker write is visible to the
      // caller of run_until.
      for (int s = lo; s < hi; ++s) {
        engines_[std::size_t(s)]->run_until(deadline);
      }
      // Stats are published before the handshake so worker 0 (and the
      // caller) reads them race-free; the handshake's own wait is the one
      // uncounted barrier.
      barrier_wait_ns_[worker] += wait_ns;
      barrier_.arrive_and_wait();
      return;
    }

    worker_parity_[worker] = parity;
    posted_flag_[parity][worker] = 0;
    for (int s = lo; s < hi; ++s) {
      Engine& eng = *engines_[std::size_t(s)];
      const TimePoint wend =
          matrix_.window_end(s, horizon.data(), deadline);
      window_end_[std::size_t(s)].store(wend, std::memory_order_relaxed);
      const std::uint64_t before = eng.events_executed();
      eng.run_until(wend);
      if (eng.events_executed() == before) {
        ++idle_windows_[std::size_t(s)];
      }
      // Publish for epoch k+1.  Correct as-is for a fused epoch; the
      // drain phase overwrites the shards that actually received mail.
      pub[std::size_t(s)].store(eng.idle() ? kNever
                                           : eng.next_event_time(),
                                std::memory_order_relaxed);
    }
    if (worker == 0) ++epochs_;
    {
      const auto t0 = std::chrono::steady_clock::now();
      barrier_.arrive_and_wait();
      wait_ns += wall_ns_since(t0);
    }

    // Fused-epoch decision: every worker scans the same posted flags for
    // this parity and reaches the same verdict (the flags were all
    // written before the barrier), so nobody can disagree about whether
    // the drain barrier below happens — a disagreement would deadlock.
    bool any_posted = false;
    for (unsigned w = 0; w < workers_; ++w) {
      any_posted = any_posted || posted_flag_[parity][w] != 0;
    }
    if (!any_posted) {
      if (worker == 0) ++fused_epochs_;
    } else {
      // Drain phase: move mailed frames into the owned shards' queues (in
      // (src, post order), which the queue's tie-break turns into the
      // (when, src_shard, seq) firing order), touching only dirty boxes.
      for (int s = lo; s < hi; ++s) {
        std::uint64_t moved = 0;
        for (int src = 0; src < n; ++src) {
          if (src != s && box_dirty_[box_index(src, s)] != 0) {
            moved += drain_box(src, s);
          }
        }
        if (moved != 0) {
          drained_[std::size_t(s)] += moved;
          Engine& eng = *engines_[std::size_t(s)];
          pub[std::size_t(s)].store(eng.idle() ? kNever
                                               : eng.next_event_time(),
                                    std::memory_order_relaxed);
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      barrier_.arrive_and_wait();
      wait_ns += wall_ns_since(t0);
    }
    parity ^= 1;
  }
}

std::uint64_t ShardedConductor::total_events() const {
  std::uint64_t sum = 0;
  for (const auto& e : engines_) sum += e->events_executed();
  return sum;
}

std::vector<std::uint64_t> ShardedConductor::per_shard_events() const {
  std::vector<std::uint64_t> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e->events_executed());
  return out;
}

std::uint64_t ShardedConductor::cross_posts() const {
  std::uint64_t sum = 0;
  for (std::uint64_t p : posted_) sum += p;
  return sum;
}

ConductorStats ShardedConductor::stats() const {
  ConductorStats st;
  st.epochs = epochs_;
  st.fused_epochs = fused_epochs_;
  st.cross_posts = cross_posts();
  for (std::uint64_t d : drained_) st.drained_posts += d;
  st.idle_windows = idle_windows_;
  st.barrier_wait_ns = barrier_wait_ns_;
  return st;
}

}  // namespace nestv::sim
