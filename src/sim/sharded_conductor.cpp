#include "sim/sharded_conductor.hpp"

#include <algorithm>

namespace nestv::sim {

namespace {

unsigned clamp_workers(int shards, unsigned max_workers) {
  if (shards <= 1) return 1;
  // An explicit request wins over the core-count heuristic: tests and the
  // TSan CI job ask for real threads even on small machines (results are
  // thread-count-independent, so oversubscription only costs wall time).
  unsigned w = max_workers;
  if (w == 0) {
    w = std::thread::hardware_concurrency();
    if (w == 0) w = 1;
  }
  return std::max(1u, std::min(w, static_cast<unsigned>(shards)));
}

}  // namespace

ShardedConductor::ShardedConductor(int shards, Duration lookahead,
                                   unsigned max_workers)
    : lookahead_(lookahead),
      workers_(clamp_workers(shards, max_workers)),
      barrier_(workers_) {
  assert(shards >= 1);
  assert(lookahead >= 1);
  engines_.reserve(std::size_t(shards));
  for (int s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>());
  }
  box_.resize(std::size_t(shards) * std::size_t(shards));
  window_end_.assign(std::size_t(shards), 0);
  next_ = std::vector<std::atomic<TimePoint>>(std::size_t(shards));
  for (auto& n : next_) n.store(kNever, std::memory_order_relaxed);
  posted_.assign(std::size_t(shards), 0);
}

int ShardedConductor::shard_of(const Engine& engine) const {
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    if (engines_[s].get() == &engine) return static_cast<int>(s);
  }
  return -1;
}

void ShardedConductor::post(int src, int dst, TimePoint when,
                            InlineTask&& task) {
  post_keyed(src, dst, when, kUnkeyed, std::move(task));
}

void ShardedConductor::post_keyed(int src, int dst, TimePoint when,
                                  std::uint64_t key, InlineTask&& task) {
  assert(src >= 0 && src < shards() && dst >= 0 && dst < shards());
  assert(src != dst && "same-shard traffic schedules directly");
  // Lookahead contract: the message lands strictly after the window the
  // sender is running, so the receiver's drain never rewinds its clock.
  assert(when > window_end_[std::size_t(src)]);
  box_[box_index(src, dst)].push_back(Mail{when, key, std::move(task)});
  ++posted_[std::size_t(src)];
}

void ShardedConductor::run_until(TimePoint deadline) {
  if (engines_.size() == 1) {
    // The single-shard conductor IS the plain engine (the equivalence
    // baseline the bench gate holds every other shard count to).
    engines_[0]->run_until(deadline);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    pool.emplace_back([this, w, deadline] { worker_loop(w, deadline); });
  }
  worker_loop(0, deadline);
  for (auto& t : pool) t.join();
}

void ShardedConductor::worker_loop(unsigned worker, TimePoint deadline) {
  const int lo = shard_begin(worker);
  const int hi = shard_begin(worker + 1);
  const int n = shards();
  for (;;) {
    // Drain phase: move mailed frames into the owned shards' queues (in
    // (src, post order), which the queue's tie-break turns into the
    // (when, src_shard, seq) firing order), then publish horizons.
    for (int s = lo; s < hi; ++s) {
      Engine& eng = *engines_[std::size_t(s)];
      for (int src = 0; src < n; ++src) {
        if (src == s) continue;
        auto& box = box_[box_index(src, s)];
        for (Mail& m : box) {
          if (m.key == kUnkeyed) {
            eng.schedule_at(m.when, std::move(m.task));
          } else {
            eng.schedule_at_keyed(m.when, m.key, std::move(m.task));
          }
        }
        box.clear();
      }
      next_[std::size_t(s)].store(eng.idle() ? kNever
                                             : eng.next_event_time(),
                                  std::memory_order_relaxed);
    }
    barrier_.arrive_and_wait();

    // Window phase: every worker derives the same window from the same
    // published horizons — no coordinator thread, no second broadcast.
    TimePoint gmin = kNever;
    for (int s = 0; s < n; ++s) {
      gmin = std::min(gmin, next_[std::size_t(s)].load(
                                std::memory_order_relaxed));
    }
    if (gmin > deadline) {
      // Nothing left at or before the deadline anywhere; mailboxes are
      // empty (drained above, and no shard has run since).  Clamp the
      // owned clocks to the deadline exactly as Engine::run_until does.
      for (int s = lo; s < hi; ++s) {
        engines_[std::size_t(s)]->run_until(deadline);
      }
      return;
    }
    const TimePoint wend =
        std::min(deadline, gmin + (lookahead_ - 1));
    for (int s = lo; s < hi; ++s) {
      window_end_[std::size_t(s)] = wend;
      engines_[std::size_t(s)]->run_until(wend);
    }
    if (worker == 0) ++epochs_;
    barrier_.arrive_and_wait();
  }
}

std::uint64_t ShardedConductor::total_events() const {
  std::uint64_t sum = 0;
  for (const auto& e : engines_) sum += e->events_executed();
  return sum;
}

std::vector<std::uint64_t> ShardedConductor::per_shard_events() const {
  std::vector<std::uint64_t> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e->events_executed());
  return out;
}

std::uint64_t ShardedConductor::cross_posts() const {
  std::uint64_t sum = 0;
  for (std::uint64_t p : posted_) sum += p;
  return sum;
}

}  // namespace nestv::sim
