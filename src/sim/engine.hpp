// The discrete-event simulation engine: clock plus event loop.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// Owns the simulated clock and the event queue.  Every entity in the
/// simulated datacenter (devices, stacks, workloads) holds a reference to
/// one Engine and schedules its work through it.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run `delay` nanoseconds from now.  The task
  /// rides down to the queue slot by reference, so a scheduled closure is
  /// moved exactly once (plus once more when it fires).
  EventId schedule_in(Duration delay, InlineTask&& action) {
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute simulated instant.  Instants in the
  /// past are clamped to "now" (the event still fires, deterministically
  /// after already-queued events for the current instant).
  EventId schedule_at(TimePoint when, InlineTask&& action) {
    return queue_.schedule(when < now_ ? now_ : when, std::move(action));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains.  Returns the number of events run.
  std::uint64_t run();

  /// Runs events with time <= deadline; leaves later events queued.
  /// The clock is advanced to `deadline` even if the queue drains early.
  std::uint64_t run_until(TimePoint deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  TimePoint now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace nestv::sim
