// The discrete-event simulation engine: clock plus event loop.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// Owns the simulated clock and the event queue.  Every entity in the
/// simulated datacenter (devices, stacks, workloads) holds a reference to
/// one Engine and schedules its work through it.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run `delay` nanoseconds from now.  The task
  /// rides down to the queue slot by reference, so a scheduled closure is
  /// moved exactly once (plus once more when it fires).
  EventId schedule_in(Duration delay, InlineTask&& action) {
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute simulated instant.  Instants in the
  /// past are clamped to "now" (the event still fires, deterministically
  /// after already-queued events for the current instant).
  EventId schedule_at(TimePoint when, InlineTask&& action) {
    return queue_.schedule(when < now_ ? now_ : when, std::move(action));
  }

  /// Schedules at an absolute instant with an explicit same-instant
  /// ordering key (EventQueue::schedule_keyed).  Fabric wire links use
  /// this so a frame's delivery order at a shared device is a function of
  /// the frame — (link rank, link sequence) — and not of whether a single
  /// engine or a conductor mailbox carried it (DESIGN.md section 10).
  EventId schedule_at_keyed(TimePoint when, std::uint64_t key,
                            InlineTask&& action) {
    return queue_.schedule_keyed(when < now_ ? now_ : when, key,
                                 std::move(action));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs `action` synchronously when the current event's callback returns,
  /// before the clock moves — the softirq-at-irq-exit point.  A burst layer
  /// uses this to look at everything the event produced (a fully formed
  /// kick burst) and arm one drain for all of it.  Deferred actions may
  /// defer further actions; all run in registration order.  Outside the
  /// event loop the action runs immediately.
  void defer(InlineTask&& action) {
    if (!running_) {
      action();
      return;
    }
    deferred_.push_back(std::move(action));
  }

  /// Runs events until the queue drains.  Returns the number of events run.
  std::uint64_t run();

  /// Runs events with time <= deadline; leaves later events queued.
  /// The clock is advanced to `deadline` even if the queue drains early.
  std::uint64_t run_until(TimePoint deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  /// Time of the earliest pending event; only valid when !idle().  The
  /// sharded conductor publishes this as the shard's horizon.
  [[nodiscard]] TimePoint next_event_time() { return queue_.next_time(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Completions that pre-burst code would have scheduled as individual
  /// queue events but the burst layer folded into a shared drain event.
  /// Kept separate from events_executed() so the queue counter stays a
  /// pure measure of heap traffic; events_executed() + events_coalesced()
  /// is the logical-event count comparable across batch_size settings.
  void note_coalesced(std::uint64_t saved) { coalesced_ += saved; }
  [[nodiscard]] std::uint64_t events_coalesced() const { return coalesced_; }

 private:
  // Index loop: deferred actions may push more (vector may reallocate).
  void run_deferred() {
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      InlineTask t = std::move(deferred_[i]);
      t();
    }
    deferred_.clear();
  }

  EventQueue queue_;
  TimePoint now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t coalesced_ = 0;
  std::vector<InlineTask> deferred_;
  bool running_ = false;
};

}  // namespace nestv::sim
