#include "sim/time.hpp"

#include <cstdio>

namespace nestv::sim {

std::string format_duration(Duration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3f s", to_seconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_milliseconds(d));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_microseconds(d));
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(d));
  }
  return buf;
}

}  // namespace nestv::sim
