#include "sim/cpu.hpp"

#include <cstdio>

namespace nestv::sim {

const char* to_string(CpuCategory c) {
  switch (c) {
    case CpuCategory::kUsr: return "usr";
    case CpuCategory::kSys: return "sys";
    case CpuCategory::kSoft: return "soft";
    case CpuCategory::kGuest: return "guest";
    case CpuCategory::kCount: break;
  }
  return "?";
}

Duration CpuAccount::total() const {
  Duration t = 0;
  for (auto ns : ns_) t += ns;
  return t;
}

double CpuAccount::cores(CpuCategory c, Duration wall) const {
  if (wall == 0) return 0.0;
  return static_cast<double>(get(c)) / static_cast<double>(wall);
}

double CpuAccount::total_cores(Duration wall) const {
  if (wall == 0) return 0.0;
  return static_cast<double>(total()) / static_cast<double>(wall);
}

CpuAccount& CpuLedger::account(const std::string& name) {
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    it = accounts_.emplace(name, std::make_unique<CpuAccount>(name)).first;
  }
  return *it->second;
}

const CpuAccount* CpuLedger::find(const std::string& name) const {
  const auto it = accounts_.find(name);
  return it == accounts_.end() ? nullptr : it->second.get();
}

std::vector<const CpuAccount*> CpuLedger::accounts() const {
  std::vector<const CpuAccount*> out;
  out.reserve(accounts_.size());
  for (const auto& [_, acc] : accounts_) out.push_back(acc.get());
  return out;
}

void CpuLedger::reset_all() {
  for (auto& [_, acc] : accounts_) acc->reset();
}

std::string CpuLedger::render(Duration wall) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-32s %8s %8s %8s %8s %8s\n", "account",
                "usr", "sys", "soft", "guest", "total");
  out += line;
  for (const auto& [name, acc] : accounts_) {
    std::snprintf(line, sizeof line,
                  "%-32s %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(),
                  acc->cores(CpuCategory::kUsr, wall),
                  acc->cores(CpuCategory::kSys, wall),
                  acc->cores(CpuCategory::kSoft, wall),
                  acc->cores(CpuCategory::kGuest, wall),
                  acc->total_cores(wall));
    out += line;
  }
  return out;
}

}  // namespace nestv::sim
