// Serialized execution resources (CPU cores, worker threads).
//
// A SerialResource executes submitted work items one at a time in FIFO
// order.  When offered load exceeds its capacity, completions back up and
// throughput saturates — this is exactly the mechanism behind the paper's
// fig 4 observation that the NAT datapath "scales more slowly and even
// stagnates between 1024B and 1280B": the guest softirq core serving
// netfilter hooks runs out of cycles, while the BrFusion/NoCont bottleneck
// (the vhost worker) still has headroom.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// A single-threaded executor (one CPU core or one kernel worker thread).
/// Work is modeled by duration only; the completion callback fires when the
/// work finishes.  CPU time is charged to the bound accounts as it runs.
class SerialResource {
 public:
  SerialResource(Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}

  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  /// Charges `account` with `category` for each unit of work executed here.
  /// Several sinks may be bound: e.g. a vCPU charges both the guest-side
  /// account (usr/sys/soft) and the host's "guest" time (fig 14's host view).
  void bind(CpuAccount& account, CpuCategory category) {
    sinks_.push_back(Sink{&account, category});
  }

  /// Enqueues `work` nanoseconds of execution; runs `done` at completion.
  /// Work submitted while busy queues behind in-flight work (FIFO).
  /// Inline (with submit_as and charge): every simulated packet crosses
  /// several resources, so these run hundreds of thousands of times per
  /// wall second.
  void submit(Duration work, InlineTask&& done) {
    submit_as(sinks_.empty() ? CpuCategory::kSys : sinks_.front().category,
              work, std::move(done));
  }

  /// Same, but the charge category is overridden for this item only
  /// (e.g. softirq work executing on a general-purpose vCPU).
  void submit_as(CpuCategory category, Duration work, InlineTask&& done) {
    const TimePoint start =
        busy_until_ > engine_->now() ? busy_until_ : engine_->now();
    busy_until_ = start + work;
    busy_time_ += work;
    ++items_;
    charge(category, work);
    engine_->schedule_at(busy_until_, std::move(done));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TimePoint busy_until() const { return busy_until_; }
  [[nodiscard]] Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t items_executed() const { return items_; }

  /// Utilization over a wall-clock interval, in [0, 1+].
  [[nodiscard]] double utilization(Duration wall) const {
    return wall == 0 ? 0.0
                     : static_cast<double>(busy_time_) /
                           static_cast<double>(wall);
  }

 private:
  struct Sink {
    CpuAccount* account;
    CpuCategory category;
  };

  void charge(CpuCategory category, Duration work) {
    for (const Sink& s : sinks_) {
      // The bound category is the default; a per-item override replaces it
      // for guest-side sinks but the host "guest" sink keeps its category
      // (host time lent to a VM is guest time regardless of what the guest
      // was doing with it).
      const CpuCategory c =
          s.category == CpuCategory::kGuest ? CpuCategory::kGuest : category;
      s.account->charge(c, work);
    }
  }

  Engine* engine_;
  std::string name_;
  std::vector<Sink> sinks_;
  TimePoint busy_until_ = 0;
  Duration busy_time_ = 0;
  std::uint64_t items_ = 0;
};

}  // namespace nestv::sim
