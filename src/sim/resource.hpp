// Serialized execution resources (CPU cores, worker threads).
//
// A SerialResource executes submitted work items one at a time in FIFO
// order.  When offered load exceeds its capacity, completions back up and
// throughput saturates — this is exactly the mechanism behind the paper's
// fig 4 observation that the NAT datapath "scales more slowly and even
// stagnates between 1024B and 1280B": the guest softirq core serving
// netfilter hooks runs out of cycles, while the BrFusion/NoCont bottleneck
// (the vhost worker) still has headroom.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/burst_queue.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// A single-threaded executor (one CPU core or one kernel worker thread).
/// Work is modeled by duration only; the completion callback fires when the
/// work finishes.  CPU time is charged to the bound accounts as it runs.
class SerialResource {
 public:
  SerialResource(Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}

  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  /// Charges `account` with `category` for each unit of work executed here.
  /// Several sinks may be bound: e.g. a vCPU charges both the guest-side
  /// account (usr/sys/soft) and the host's "guest" time (fig 14's host view).
  void bind(CpuAccount& account, CpuCategory category) {
    sinks_.push_back(Sink{&account, category});
  }

  /// Enqueues `work` nanoseconds of execution; runs `done` at completion.
  /// Work submitted while busy queues behind in-flight work (FIFO).
  /// Inline (with submit_as and charge): every simulated packet crosses
  /// several resources, so these run hundreds of thousands of times per
  /// wall second.
  void submit(Duration work, InlineTask&& done) {
    submit_as(sinks_.empty() ? CpuCategory::kSys : sinks_.front().category,
              work, std::move(done));
  }

  /// Same, but the charge category is overridden for this item only
  /// (e.g. softirq work executing on a general-purpose vCPU).
  void submit_as(CpuCategory category, Duration work, InlineTask&& done) {
    engine_->schedule_at(occupy(category, work), std::move(done));
  }

  /// Accounts `work` on this resource — advances busy_until_, accrues
  /// busy_time_, charges the bound sinks — WITHOUT scheduling a completion
  /// event, and returns the instant the work finishes.  submit_as() is
  /// exactly occupy() + one event at the returned time; BatchSink uses
  /// occupy() to keep per-item accounting while sharing one drain event
  /// across a whole burst.
  TimePoint occupy(CpuCategory category, Duration work) {
    const TimePoint start =
        busy_until_ > engine_->now() ? busy_until_ : engine_->now();
    busy_until_ = start + work;
    busy_time_ += work;
    ++items_;
    charge(category, work);
    return busy_until_;
  }

  [[nodiscard]] Engine& engine() const { return *engine_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TimePoint busy_until() const { return busy_until_; }
  [[nodiscard]] Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t items_executed() const { return items_; }

  /// Utilization over a wall-clock interval, in [0, 1+].
  [[nodiscard]] double utilization(Duration wall) const {
    return wall == 0 ? 0.0
                     : static_cast<double>(busy_time_) /
                           static_cast<double>(wall);
  }

 private:
  struct Sink {
    CpuAccount* account;
    CpuCategory category;
  };

  void charge(CpuCategory category, Duration work) {
    for (const Sink& s : sinks_) {
      // The bound category is the default; a per-item override replaces it
      // for guest-side sinks but the host "guest" sink keeps its category
      // (host time lent to a VM is guest time regardless of what the guest
      // was doing with it).
      const CpuCategory c =
          s.category == CpuCategory::kGuest ? CpuCategory::kGuest : category;
      s.account->charge(c, work);
    }
  }

  Engine* engine_;
  std::string name_;
  std::vector<Sink> sinks_;
  TimePoint busy_until_ = 0;
  Duration busy_time_ = 0;
  std::uint64_t items_ = 0;
};

/// Batched submission onto one SerialResource: work items accumulate into a
/// burst and share ONE completion event, fired at the burst's end time, that
/// drains their callbacks in FIFO submission order.  Per-item CPU accounting
/// is unchanged (each item occupies the resource exactly as submit_as would);
/// only the completion *events* are coalesced, which is what makes bursts
/// both a fidelity win (vhost wakes once per kick, not once per frame) and a
/// simulator wall-clock win (one heap round-trip per burst).
///
/// Determinism: the drain event is scheduled through the same (time, seq)
/// queue as everything else, and the pending queue preserves submission
/// order, so two runs at the same seed drain identically.  A burst is capped
/// at `budget` items.  Submission is O(1) with no event-queue traffic at
/// all: the first item registers an Engine::defer() hook, which fires when
/// the producing event returns — the burst is fully formed by then — and
/// arms ONE drain at the burst's last completion (items left over after a
/// capped drain re-arm the next poll immediately, clamped to "now" —
/// exactly a NAPI re-poll).
///
/// With budget <= 1 every call degenerates to SerialResource::submit_as —
/// the unbatched engine, bit for bit.
class BatchSink {
 public:
  /// `burst_work` (charged as `burst_category`) is an amortized per-burst
  /// overhead — e.g. one virtio kick — occupied when a burst opens.
  BatchSink(SerialResource& resource, std::uint32_t budget,
            Duration burst_work = 0,
            CpuCategory burst_category = CpuCategory::kSys)
      : res_(&resource),
        engine_(&resource.engine()),
        budget_(budget),
        burst_work_(burst_work),
        burst_category_(burst_category) {}

  BatchSink(const BatchSink&) = delete;
  BatchSink& operator=(const BatchSink&) = delete;

  void submit(Duration work, InlineTask&& done) {
    submit_as(CpuCategory::kSys, work, std::move(done));
  }

  void submit_as(CpuCategory category, Duration work, InlineTask&& done) {
    if (budget_ <= 1) {
      res_->submit_as(category, work, std::move(done));
      return;
    }
    ++items_;
    if (!open_) {
      open_ = true;
      open_items_ = 0;
      ++burst_seq_;
      if (burst_work_ != 0) res_->occupy(burst_category_, burst_work_);
    }
    const TimePoint ready = res_->occupy(category, work);
    pending_.push_back(Pending{ready, burst_seq_, std::move(done)});
    if (++open_items_ >= budget_) open_ = false;
    // One outstanding drain at most: while one is pending (or running), new
    // items just queue — the drain's re-arm picks them up.
    if (draining_ || armed_) return;
    armed_ = true;
    engine_->defer([this] { arm_drain(); });
  }

  [[nodiscard]] std::uint64_t items_submitted() const { return items_; }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] SerialResource& resource() const { return *res_; }

 private:
  struct Pending {
    TimePoint ready;
    std::uint64_t burst;
    InlineTask done;
  };

  /// Runs at the end of the event that queued the burst's first item (or
  /// the drain that left a remainder): scans the oldest burst — complete by
  /// now, submissions are synchronous — and schedules its single drain at
  /// its last item's completion (or immediately, if a capped drain left
  /// already-finished items behind).  Between the defer and this call no
  /// other event can run, so `pending_` cannot have shrunk.
  void arm_drain() {
    TimePoint deadline = pending_.front().ready;
    const std::uint64_t b = pending_.front().burst;
    for (std::size_t k = 1; k < pending_.size() && k < budget_ &&
                            pending_[k].burst == b;
         ++k) {
      deadline = pending_[k].ready;
    }
    engine_->schedule_at(deadline, [this] { drain(); });
  }

  void drain() {
    armed_ = false;
    draining_ = true;
    ++bursts_;
    const TimePoint now = engine_->now();
    std::uint32_t n = 0;
    while (!pending_.empty() && pending_.front().ready <= now &&
           n < budget_) {
      InlineTask task = std::move(pending_.front().done);
      pending_.pop_front();
      ++n;
      task();
    }
    draining_ = false;
    if (n > 1) engine_->note_coalesced(n - 1);
    if (pending_.empty()) return;
    armed_ = true;
    engine_->defer([this] { arm_drain(); });
  }

  SerialResource* res_;
  Engine* engine_;
  std::uint32_t budget_;
  Duration burst_work_;
  CpuCategory burst_category_;
  BurstQueue<Pending> pending_;
  std::uint64_t burst_seq_ = 0;
  std::uint32_t open_items_ = 0;
  bool armed_ = false;
  bool open_ = false;
  bool draining_ = false;
  std::uint64_t items_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace nestv::sim
