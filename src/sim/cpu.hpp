// CPU-time accounting in the categories the paper reports.
//
// Figures 6, 7, 14 and 15 break CPU usage down into: software work ("usr"),
// kernel work excluding interrupts ("sys"), kernel serving software
// interrupts ("soft"), and host CPU time given to a guest VM ("guest").
// Every cost charged by the simulated datapath lands in exactly one
// (account, category) cell of a CpuLedger.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nestv::sim {

enum class CpuCategory : std::uint8_t {
  kUsr = 0,    ///< userspace software work
  kSys,        ///< kernel work, excluding interrupt handling
  kSoft,       ///< kernel servicing software interrupts (NAT hooks live here)
  kGuest,      ///< host CPU time executing guest vCPUs
  kCount,
};

[[nodiscard]] const char* to_string(CpuCategory c);

/// Accumulated CPU nanoseconds for one accountable entity (a VM, an
/// application, the host kernel, a vhost worker...).
class CpuAccount {
 public:
  explicit CpuAccount(std::string name) : name_(std::move(name)) {}

  void charge(CpuCategory c, Duration ns) {
    ns_[static_cast<std::size_t>(c)] += ns;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Duration total() const;
  [[nodiscard]] Duration get(CpuCategory c) const {
    return ns_[static_cast<std::size_t>(c)];
  }

  /// Average cores consumed over a wall interval, the unit of figs 6/7/14/15.
  [[nodiscard]] double cores(CpuCategory c, Duration wall) const;
  [[nodiscard]] double total_cores(Duration wall) const;

  void reset() { ns_.fill(0); }

 private:
  std::string name_;
  std::array<Duration, static_cast<std::size_t>(CpuCategory::kCount)> ns_{};
};

/// Registry of accounts, keyed by name.  std::map keeps report ordering
/// deterministic.  Accounts are stable-addressed (held by unique_ptr) so
/// devices can cache CpuAccount* safely across insertions.
class CpuLedger {
 public:
  CpuAccount& account(const std::string& name);
  [[nodiscard]] const CpuAccount* find(const std::string& name) const;

  [[nodiscard]] std::vector<const CpuAccount*> accounts() const;

  void reset_all();

  /// Renders a usr/sys/soft/guest breakdown table (cores over `wall`).
  [[nodiscard]] std::string render(Duration wall) const;

 private:
  std::map<std::string, std::unique_ptr<CpuAccount>> accounts_;
};

}  // namespace nestv::sim
