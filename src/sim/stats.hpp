// Statistics collection used by every benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nestv::sim {

/// Streaming mean / variance / extrema via Welford's algorithm.
/// Used where only summary moments are needed (cheap, O(1) memory).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;   ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Coefficient of variation (stddev/mean); the paper reports latency
  /// stdevs as a fraction of the average (e.g. section 5.2.2).
  [[nodiscard]] double cv() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains every sample; supports exact percentiles.  Used for latency
/// distributions (fig 8 boot-time boxplots, wrk2-style latency reports).
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::uint64_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile by linear interpolation, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Samples in insertion order — always.  Percentile queries sort a
  /// separate view, so interleaving add()/percentile()/values() never
  /// reorders what callers iterate (time-series consumers rely on it).
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  const std::vector<double>& sorted() const;

  std::vector<double> xs_;               ///< insertion order, never sorted
  mutable std::vector<double> sorted_xs_;  ///< lazy sorted copy for quantiles
  mutable bool sorted_valid_ = true;
};

/// Five-number summary + mean, as the paper's fig 8b table reports.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0, stddev = 0;
};
BoxStats box_stats(const Samples& s);

/// Hit/miss counter for cache-style subsystems (flow cache, conntrack);
/// benches report the ratio alongside throughput so cache effectiveness is
/// visible in the same table.
class HitRateCounter {
 public:
  void hit() { ++hits_; }
  void miss() { ++misses_; }
  void reset() { hits_ = misses_ = 0; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t total() const { return hits_ + misses_; }
  /// Hits / (hits + misses); 0 when nothing was recorded.
  [[nodiscard]] double ratio() const {
    return total() ? static_cast<double>(hits_) / static_cast<double>(total())
                   : 0.0;
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Fixed-width histogram for the fig 9 cost-savings frequency plot.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);  ///< out-of-range values clamp into the edge bins

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Renders "lo..hi | count | ###" rows for benchmark stdout.
  [[nodiscard]] std::string render(int max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace nestv::sim
