// Allocation-free FIFO for burst buffers.
//
// The burst datapath queues large payloads (frames, completion callbacks)
// at every coalescing point.  std::deque allocates a fresh node every few
// elements for such types, which shows up directly in the simulator's
// wall-clock hot path (abl_engine_perf counts heap allocations per
// packet).  BurstQueue is a flat vector with a head index: pops advance
// the head, and the buffer rewinds when the queue empties (or compacts
// once the dead prefix dominates), so steady-state push/pop traffic
// reuses the same storage.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace nestv::sim {

template <typename T>
class BurstQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }

  void push_back(T v) { buf_.push_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    return buf_.emplace_back(std::forward<Args>(args)...);
  }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }
  [[nodiscard]] T& back() { return buf_.back(); }
  [[nodiscard]] const T& back() const { return buf_.back(); }

  /// i-th element from the front (0 == front()).
  [[nodiscard]] T& operator[](std::size_t i) { return buf_[head_ + i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[head_ + i];
  }

  /// Popped slots hold moved-from values until the rewind; the compaction
  /// below bounds that dead prefix when the queue never fully drains.
  void pop_front() {
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ > 64 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace nestv::sim
