#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace nestv::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

void Samples::add(double x) {
  xs_.push_back(x);
  sorted_valid_ = false;
}

// Rebuilds the sorted view lazily.  xs_ itself is never reordered: sorting
// it in place (the old implementation) made values() return sorted data
// after the first percentile query, corrupting insertion-order consumers.
const std::vector<double>& Samples::sorted() const {
  if (!sorted_valid_) {
    sorted_xs_ = xs_;
    std::sort(sorted_xs_.begin(), sorted_xs_.end());
    sorted_valid_ = true;
  }
  return sorted_xs_;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size()));
}

double Samples::min() const {
  if (xs_.empty()) return 0.0;
  return sorted().front();
}

double Samples::max() const {
  if (xs_.empty()) return 0.0;
  return sorted().back();
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  const std::vector<double>& v = sorted();
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

BoxStats box_stats(const Samples& s) {
  BoxStats b;
  b.min = s.min();
  b.q1 = s.percentile(25.0);
  b.median = s.percentile(50.0);
  b.q3 = s.percentile(75.0);
  b.max = s.max();
  b.mean = s.mean();
  b.stddev = s.stddev();
  return b;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double pos = (x - lo_) / width;
  if (pos < 0.0) pos = 0.0;
  auto idx = static_cast<std::size_t>(pos);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(int max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar =
        static_cast<int>(static_cast<double>(counts_[i]) /
                         static_cast<double>(peak) * max_width);
    std::snprintf(line, sizeof line, "%10.3f .. %10.3f | %8llu | ",
                  bin_lo(i), bin_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace nestv::sim
