// Conservative parallel simulation: one Engine per shard, epoch-synced.
//
// The simulated datacenter partitions naturally by physical machine: every
// device, stack and CPU of a machine schedules only on its own engine, and
// the sole interaction between machines is an Ethernet frame crossing the
// top-of-rack fabric, which takes a fixed wire latency L (CostModel::
// fabric_hop_latency).  That latency is lookahead in the classic
// conservative-PDES sense: an event executing at time t on one shard can
// affect another shard no earlier than t + L.  The conductor exploits it
// with a BSP-style loop:
//
//   1. drain    every shard moves the frames mailed to it during the last
//               window into its event queue, then publishes the time of
//               its next event;
//   2. window   all workers compute the same global minimum next-event
//               time `gmin` and run their shards up to
//               min(deadline, gmin + L - 1);
//   3. repeat   until no shard holds an event at or before the deadline.
//
// The `- 1` makes every cross-shard message arrive strictly after the
// window in which it was posted, so a drain never injects an event into a
// shard's past.  Jumping to `gmin` (instead of stepping fixed windows)
// means idle stretches cost one epoch regardless of length.
//
// Determinism: results are bit-identical to a single-engine run of the
// same world and independent of the worker-thread count.
//   * Each mailbox (src, dst) is appended by exactly one shard while it
//     runs and drained by exactly one shard between windows; the barriers
//     between phases make that race-free without locks.
//   * Wire deliveries carry an explicit ordering key — (link rank, link
//     sequence), assigned identically whether the frame is scheduled
//     locally or mailed — so same-nanosecond arrivals at a shared device
//     fire in the same order in every mode.  At the scale of the macro
//     scenario exact-nanosecond collisions are a certainty (birthday
//     bound over ~1e5 frames in 1e8 ns), so the key, not jitter, is what
//     carries the equivalence.  Unkeyed mail falls back to
//     (when, src_shard, post order), which is still thread-independent.
//   * shards == 1 bypasses the machinery entirely and is the existing
//     engine, the same way batch_size == 1 is the pre-burst datapath.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// Spin barrier for the epoch loop.  Generation-counted: the last arriver
/// resets the count and bumps the generation; everyone else spins (with a
/// yield once the wait stops being short, so oversubscribed runs — CI
/// machines, laptops — make progress) until the generation moves.  The
/// acq_rel increment chain plus the release/acquire generation hand-off
/// gives every pre-barrier write a happens-before edge to every
/// post-barrier read, which is what lets the mailboxes be plain vectors.
class EpochBarrier {
 public:
  explicit EpochBarrier(unsigned parties) : parties_(parties) {}

  void arrive_and_wait() {
    if (parties_ == 1) return;
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
      return;
    }
    unsigned spins = 0;
    while (gen_.load(std::memory_order_acquire) == gen) {
      if (++spins > 256) std::this_thread::yield();
    }
  }

 private:
  unsigned parties_;
  std::atomic<unsigned> count_{0};
  std::atomic<std::uint64_t> gen_{0};
};

class ShardedConductor {
 public:
  /// `lookahead` is the minimum latency of any cross-shard link (the
  /// fabric wire); `max_workers` caps the worker threads (0 = hardware
  /// concurrency).  Workers each own a contiguous shard range, so fewer
  /// workers than shards degrades to batched sequential execution with
  /// unchanged results.
  ShardedConductor(int shards, Duration lookahead, unsigned max_workers = 0);

  ShardedConductor(const ShardedConductor&) = delete;
  ShardedConductor& operator=(const ShardedConductor&) = delete;

  [[nodiscard]] int shards() const {
    return static_cast<int>(engines_.size());
  }
  [[nodiscard]] Engine& shard(int s) { return *engines_[std::size_t(s)]; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Shard index owning `engine`, or -1 if it is not one of ours.
  [[nodiscard]] int shard_of(const Engine& engine) const;

  /// Mails `task` from shard `src` to fire at `when` on shard `dst`.
  /// Callable only from src's worker while src is inside a window (or from
  /// the setup thread before any run).  The lookahead contract requires
  /// `when` to lie strictly beyond src's current window.
  void post(int src, int dst, TimePoint when, InlineTask&& task);

  /// Like post(), but the task carries an explicit same-instant ordering
  /// key (EventQueue::schedule_keyed).  Wire links pass the same key they
  /// would use for local delivery, which makes the firing order at `when`
  /// identical to the single-engine run even when several shards mail the
  /// same destination for the same nanosecond.
  void post_keyed(int src, int dst, TimePoint when, std::uint64_t key,
                  InlineTask&& task);

  /// Allocates a stable rank for one direction of a wire link.  Ranks are
  /// per-conductor and handed out in setup order, so two runs that build
  /// the same world get the same ranks — part of the delivery key that
  /// keeps shard counts invisible.
  [[nodiscard]] std::uint64_t alloc_wire_rank() { return wire_ranks_++; }

  /// Runs every shard up to and including `deadline`, like
  /// Engine::run_until: all shard clocks end at exactly `deadline`.
  void run_until(TimePoint deadline);

  /// Clock of shard 0 (all shards agree between run_until calls).
  [[nodiscard]] TimePoint now() const { return engines_[0]->now(); }

  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::vector<std::uint64_t> per_shard_events() const;
  /// Synchronization windows executed across all run_until calls.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  /// Frames mailed across shard boundaries.
  [[nodiscard]] std::uint64_t cross_posts() const;
  /// Worker threads a multi-shard run uses (1 when shards == 1).
  [[nodiscard]] unsigned worker_threads() const { return workers_; }

 private:
  struct Mail {
    TimePoint when = 0;
    std::uint64_t key = kUnkeyed;  ///< kUnkeyed = plain scheduling order
    InlineTask task;
  };

  static constexpr TimePoint kNever =
      std::numeric_limits<TimePoint>::max();
  static constexpr std::uint64_t kUnkeyed =
      std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] std::size_t box_index(int src, int dst) const {
    return std::size_t(src) * engines_.size() + std::size_t(dst);
  }
  [[nodiscard]] int shard_begin(unsigned worker) const {
    return static_cast<int>(std::size_t(worker) * engines_.size() /
                            workers_);
  }

  void worker_loop(unsigned worker, TimePoint deadline);

  std::vector<std::unique_ptr<Engine>> engines_;
  Duration lookahead_;
  unsigned workers_;
  EpochBarrier barrier_;
  /// box_[src * S + dst]: appended by src's worker inside a window,
  /// drained by dst's worker between windows.
  std::vector<std::vector<Mail>> box_;
  /// End of the window each shard is currently running (post() contract).
  std::vector<TimePoint> window_end_;
  /// Next-event time published by each shard at the drain barrier.
  std::vector<std::atomic<TimePoint>> next_;
  /// Per-source-shard mail counters (single-writer, summed on demand).
  std::vector<std::uint64_t> posted_;
  std::uint64_t epochs_ = 0;
  std::uint64_t wire_ranks_ = 0;
};

}  // namespace nestv::sim
