// Conservative parallel simulation: one Engine per shard, epoch-synced.
//
// The simulated datacenter partitions naturally by physical machine: every
// device, stack and CPU of a machine schedules only on its own engine, and
// the sole interaction between machines is an Ethernet frame crossing the
// fabric.  Each wire has a fixed latency, and that latency is lookahead in
// the classic conservative-PDES sense: an event executing at time t on one
// shard can affect another shard no earlier than t + L along that wire.
//
// The conductor exploits it with a topology-aware BSP loop.  Wires
// registered via note_cross_link() form a latency graph over shards; its
// all-pairs shortest paths L[t][s] bound how soon anything shard t does can
// reach shard s (transitively, through any chain of wires).  Each epoch:
//
//   1. window   every worker snapshots the published next-event times and
//               gives each owned shard s its own horizon
//                   wend[s] = min(deadline,
//                                 min over t of next_t + L[t][s] - 1),
//               where the t == s term uses the shortest *cycle* through s
//               (a shard's own events can bounce back off a neighbour),
//               then runs s up to wend[s];
//   2. publish  each shard publishes its new next-event time and all
//               workers meet at a barrier;
//   3. drain    only if some shard posted cross-shard mail this epoch
//               (per-worker posted flags, checked by everyone): each shard
//               moves the frames mailed to it into its event queue —
//               touching only the (src, dst) boxes marked dirty — then
//               republishes and meets at a second barrier.  Epochs with no
//               cross-shard traffic fuse the two barriers into one.
//
// The `- 1` makes every cross-shard message arrive strictly after the
// destination's window, so a drain never injects an event into a shard's
// past.  Per-pair horizons mean a shard whose nearest neighbours are many
// hops away runs far ahead of the global minimum: rack-aligned shards are
// bounded by the spine round-trip, not by the smallest link in the fabric.
// Worlds that never register a wire (direct post() users) fall back to a
// uniform scalar lookahead for every pair — the classic global window.
//
// Why per-pair windows keep the shards=1 equivalence: delivery order never
// depends on window sizes.  A frame's firing instant and its ordering key
// are fixed at post time; windows only decide *which epoch* drains it, and
// the lookahead bound guarantees that is always before the destination's
// clock reaches the firing instant.  See DESIGN.md section 10 for the
// monotonicity argument (why wend[s] never regresses across epochs).
//
// Determinism: results are bit-identical to a single-engine run of the
// same world and independent of the worker-thread count.
//   * Each mailbox (src, dst) is appended by exactly one shard while it
//     runs and drained by exactly one shard between windows; the barriers
//     between phases make that race-free without locks.
//   * Wire deliveries carry an explicit ordering key — (link rank, link
//     sequence), assigned identically whether the frame is scheduled
//     locally or mailed — so same-nanosecond arrivals at a shared device
//     fire in the same order in every mode.  At the scale of the macro
//     scenario exact-nanosecond collisions are a certainty (birthday
//     bound over ~1e5 frames in 1e8 ns), so the key, not jitter, is what
//     carries the equivalence.  Unkeyed mail falls back to
//     (when, src_shard, post order), which is still thread-independent.
//   * shards == 1 bypasses the machinery entirely and is the existing
//     engine, the same way batch_size == 1 is the pre-burst datapath.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace nestv::sim {

/// One polite spin iteration: tells the core we are in a wait loop without
/// giving up the timeslice (PAUSE on x86, YIELD on arm64).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Spin barrier for the epoch loop.  Generation-counted: the last arriver
/// resets the count and bumps the generation; everyone else waits until the
/// generation moves.  Waiters back off exponentially — pause bursts that
/// double up to a cap, then a yield per probe — so sixteen workers hammering
/// one cache line do not starve the last arriver, and oversubscribed runs
/// (CI machines, laptops) still make progress.  The acq_rel increment chain
/// plus the release/acquire generation hand-off gives every pre-barrier
/// write a happens-before edge to every post-barrier read, which is what
/// lets the mailboxes and dirty flags be plain (non-atomic) storage.
class EpochBarrier {
 public:
  explicit EpochBarrier(unsigned parties) : parties_(parties) {}

  void arrive_and_wait() {
    if (parties_ == 1) return;
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
      return;
    }
    unsigned burst = 1;
    unsigned spent = 0;
    while (gen_.load(std::memory_order_acquire) == gen) {
      if (spent >= kSpinPauses) {
        std::this_thread::yield();
        continue;
      }
      for (unsigned i = 0; i < burst; ++i) cpu_relax();
      spent += burst;
      if (burst < kMaxBurst) burst <<= 1;
    }
  }

 private:
  /// Backoff shape: probe the generation after pause bursts that double
  /// up to kMaxBurst, and give up on spinning entirely after kSpinPauses
  /// pauses (~1 microsecond — a healthy barrier resolves well within it;
  /// past it we are oversubscribed and the spinner is stealing cycles
  /// from the workers it is waiting for).
  static constexpr unsigned kMaxBurst = 64;
  static constexpr unsigned kSpinPauses = 256;

  unsigned parties_;
  std::atomic<unsigned> count_{0};
  std::atomic<std::uint64_t> gen_{0};
};

/// Per-shard-pair lookahead bounds for the conductor's window computation.
///
/// note_link() records the directed wires the world actually builds;
/// finalize() closes them under shortest paths (Floyd–Warshall; S^3 is
/// trivial at S <= 64), so bound(t, s) is the minimum latency of *any*
/// chain of wires from t to s — the soonest an event on t can influence s.
/// Pairs with no path are unconstrained (kUnreachable).  A matrix with no
/// links at all (or one forced uniform) reports the scalar fallback for
/// every off-diagonal pair instead: the classic global-window behaviour.
///
/// The mode split is strict on purpose: mixing per-wire entries with a
/// scalar fallback for unreachable pairs would break the triangle
/// inequality the window-monotonicity proof rests on (DESIGN.md section
/// 10).  Direct post() on a pair with no wire path is therefore a contract
/// violation once any wire exists (asserted in ShardedConductor::post).
class LookaheadMatrix {
 public:
  static constexpr Duration kUnreachable =
      std::numeric_limits<Duration>::max();

  LookaheadMatrix(int shards, Duration scalar)
      : shards_(shards), scalar_(scalar),
        direct_(std::size_t(shards) * std::size_t(shards), kUnreachable),
        bound_(direct_), cycle_(std::size_t(shards), kUnreachable) {}

  /// Records a directed wire src -> dst with the given latency
  /// (min-accumulated; parallel wires keep the fastest).  Self-links are
  /// ignored — intra-shard traffic never crosses the conductor.
  void note_link(int src, int dst, Duration latency);

  /// Forces the scalar fallback regardless of registered links (fuzz
  /// execution shapes sample this to keep the legacy window mode covered).
  void set_uniform(bool uniform) {
    uniform_ = uniform;
    finalized_ = false;
  }

  /// Closes the link graph under shortest paths.  Idempotent; cheap to
  /// call again after more note_link()s.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] bool has_links() const { return has_links_ && !uniform_; }

  /// Soonest an event executing on shard `src` at time t can affect shard
  /// `dst` (as t + bound).  kUnreachable when no wire chain connects them.
  /// The self-pair bound(s, s) is the shortest *cycle* through s — an
  /// event on s can come back to s no sooner than the fastest round trip
  /// through a neighbour.  Without it a shard's window could outrun its
  /// own reflected traffic (and windows could regress across epochs; the
  /// monotonicity proof in DESIGN.md section 10 leans on this term).
  /// Requires finalize().
  [[nodiscard]] Duration bound(int src, int dst) const {
    assert(finalized_);
    if (!has_links()) return src == dst ? 2 * scalar_ : scalar_;
    if (src == dst) return cycle_[std::size_t(src)];
    return bound_[std::size_t(src) * std::size_t(shards_) +
                  std::size_t(dst)];
  }

  /// Window end for shard `s` given the published next-event times of all
  /// shards (`next`, kNever = idle): the latest instant s can run to while
  /// every cross-shard frame is still guaranteed to arrive strictly later.
  /// Idle shards impose no constraint — any future influence they relay
  /// is covered transitively by the shortest-path closure.
  [[nodiscard]] TimePoint window_end(int s, const TimePoint* next,
                                     TimePoint deadline) const;

 private:
  static constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

  int shards_;
  Duration scalar_;
  bool uniform_ = false;
  bool has_links_ = false;
  bool finalized_ = false;
  /// Direct (single-wire) edges as registered; finalize() rebuilds the
  /// closure from these, so it is safe to re-run after more note_link()s.
  std::vector<Duration> direct_;
  /// Shortest-path closure of direct_ (valid when finalized_).
  std::vector<Duration> bound_;
  /// Shortest cycle through each shard (the self-pair bound).
  std::vector<Duration> cycle_;
};

/// Execution counters for one conductor lifetime, for bench reports.  All
/// fields except barrier_wait_ns are deterministic for a given world and
/// shard count (worker-count independent): windows are computed from the
/// published next-event times, which the determinism contract fixes.
struct ConductorStats {
  /// Synchronization windows executed across all run_until calls.
  std::uint64_t epochs = 0;
  /// Epochs with no cross-shard posts anywhere: publish and drain fused
  /// into a single barrier.
  std::uint64_t fused_epochs = 0;
  /// Frames mailed across shard boundaries.
  std::uint64_t cross_posts = 0;
  /// Mail moved from boxes into destination queues (== cross_posts once
  /// the run is quiesced).
  std::uint64_t drained_posts = 0;
  /// Per-shard count of windows in which the shard executed no events.
  std::vector<std::uint64_t> idle_windows;
  /// Per-worker wall nanoseconds spent inside barrier waits.
  std::vector<std::uint64_t> barrier_wait_ns;
};

class ShardedConductor {
 public:
  /// `lookahead` is the minimum latency of any cross-shard link (the
  /// scalar fallback when no wires are registered); `max_workers` caps the
  /// worker threads (0 = hardware concurrency).  Workers each own a
  /// contiguous shard range, so fewer workers than shards degrades to
  /// batched sequential execution with unchanged results.
  ShardedConductor(int shards, Duration lookahead, unsigned max_workers = 0);

  ShardedConductor(const ShardedConductor&) = delete;
  ShardedConductor& operator=(const ShardedConductor&) = delete;
  ~ShardedConductor();

  [[nodiscard]] int shards() const {
    return static_cast<int>(engines_.size());
  }
  [[nodiscard]] Engine& shard(int s) { return *engines_[std::size_t(s)]; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Shard index owning `engine`, or -1 if it is not one of ours.
  [[nodiscard]] int shard_of(const Engine& engine) const;

  /// Registers a directed cross-shard wire (Device::connect_wire calls
  /// this for both directions).  Setup-thread only.  The per-pair window
  /// matrix is rebuilt lazily at the next run_until.
  void note_cross_link(int src, int dst, Duration latency);

  /// Forces the uniform scalar window mode even when wires are registered
  /// (the legacy global-window behaviour; fuzz shapes sample it).
  /// Setup-thread only.
  void set_uniform_window(bool uniform);

  /// Mails `task` from shard `src` to fire at `when` on shard `dst`.
  /// Callable only from src's worker while src is inside a window (or from
  /// the setup thread between runs).  The lookahead contract requires
  /// `when` to lie strictly beyond *dst's* current window.
  void post(int src, int dst, TimePoint when, InlineTask&& task);

  /// Like post(), but the task carries an explicit same-instant ordering
  /// key (EventQueue::schedule_keyed).  Wire links pass the same key they
  /// would use for local delivery, which makes the firing order at `when`
  /// identical to the single-engine run even when several shards mail the
  /// same destination for the same nanosecond.
  void post_keyed(int src, int dst, TimePoint when, std::uint64_t key,
                  InlineTask&& task);

  /// Allocates a stable rank for one direction of a wire link.  Ranks are
  /// per-conductor and handed out in setup order, so two runs that build
  /// the same world get the same ranks — part of the delivery key that
  /// keeps shard counts invisible.
  [[nodiscard]] std::uint64_t alloc_wire_rank() { return wire_ranks_++; }

  /// Runs every shard up to and including `deadline`, like
  /// Engine::run_until: all shard clocks end at exactly `deadline`.
  void run_until(TimePoint deadline);

  /// Clock of shard 0 (all shards agree between run_until calls).
  [[nodiscard]] TimePoint now() const { return engines_[0]->now(); }

  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::vector<std::uint64_t> per_shard_events() const;
  /// Synchronization windows executed across all run_until calls.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  /// Epochs that skipped the drain barrier (no cross-shard posts).
  [[nodiscard]] std::uint64_t fused_epochs() const { return fused_epochs_; }
  /// Frames mailed across shard boundaries.
  [[nodiscard]] std::uint64_t cross_posts() const;
  /// Worker threads a multi-shard run uses (1 when shards == 1).
  [[nodiscard]] unsigned worker_threads() const { return workers_; }
  /// Snapshot of the execution counters.  Call between run_until calls.
  [[nodiscard]] ConductorStats stats() const;

 private:
  struct Mail {
    TimePoint when = 0;
    std::uint64_t key = kUnkeyed;  ///< kUnkeyed = plain scheduling order
    InlineTask task;
  };

  static constexpr TimePoint kNever =
      std::numeric_limits<TimePoint>::max();
  static constexpr std::uint64_t kUnkeyed =
      std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] std::size_t box_index(int src, int dst) const {
    return std::size_t(src) * engines_.size() + std::size_t(dst);
  }
  [[nodiscard]] int shard_begin(unsigned worker) const {
    return static_cast<int>(std::size_t(worker) * engines_.size() /
                            workers_);
  }

  void worker_loop(unsigned worker, TimePoint deadline);
  /// Drains box (src -> dst) into dst's queue; returns the mail count.
  std::uint64_t drain_box(int src, int dst);
  /// Parked-worker main: wait for a run_until hand-off, run, repeat.
  void pool_main(unsigned worker);

  std::vector<std::unique_ptr<Engine>> engines_;
  Duration lookahead_;
  unsigned workers_;
  EpochBarrier barrier_;
  LookaheadMatrix matrix_;
  /// box_[src * S + dst]: appended by src's worker inside a window,
  /// drained by dst's worker between windows.
  std::vector<std::vector<Mail>> box_;
  /// box_dirty_[src * S + dst]: set by src's worker at the first post into
  /// the box this epoch, cleared by dst's worker in the drain phase.  Only
  /// examined in non-fused epochs, between the two barriers, so plain
  /// bytes are race-free (happens-before through the barrier).
  std::vector<std::uint8_t> box_dirty_;
  /// posted_flag_[parity][worker]: "this worker posted cross-shard mail
  /// during epochs of this parity".  Double-buffered by epoch parity so
  /// the post-barrier fused/drain decision (reading parity p) never races
  /// the next epoch's posts (writing parity 1-p).
  std::vector<std::uint8_t> posted_flag_[2];
  /// Current epoch parity per worker, read by post() on the same thread.
  std::vector<std::uint8_t> worker_parity_;
  /// Worker owning each shard (shard_begin inverted, precomputed).
  std::vector<unsigned> owner_of_;
  /// End of the window each shard is currently running (post() contract;
  /// relaxed atomics — cross-worker readers may see a stale, smaller
  /// value, which only weakens the debug assert, never the protocol).
  std::vector<std::atomic<TimePoint>> window_end_;
  /// Next-event time published by each shard, double-buffered by epoch
  /// parity: epoch k reads next_[k & 1] (frozen for the whole epoch — the
  /// unanimous gmin/termination decision and the window computation both
  /// need every worker to see identical horizons) and publishes into
  /// next_[(k + 1) & 1] as it runs.  The barrier between epochs is the
  /// happens-before edge from publishers to the next epoch's readers.
  std::vector<std::atomic<TimePoint>> next_[2];
  /// Per-source-shard mail counters (single-writer, summed on demand).
  std::vector<std::uint64_t> posted_;
  /// Per-dst-shard drained-mail counters (single-writer per shard owner).
  std::vector<std::uint64_t> drained_;
  /// Per-shard windows with zero events executed (single-writer).
  std::vector<std::uint64_t> idle_windows_;
  /// Per-worker wall time inside barrier waits (single-writer).
  std::vector<std::uint64_t> barrier_wait_ns_;
  std::uint64_t epochs_ = 0;
  std::uint64_t fused_epochs_ = 0;
  std::uint64_t wire_ranks_ = 0;
  /// Persistent worker pool (workers 1..workers_-1; the calling thread is
  /// worker 0).  Spawned lazily on the first multi-shard run_until and
  /// parked on pool_cv_ between calls — scenario driver loops issue
  /// thousands of short run_until calls, and re-spawning threads for each
  /// used to dominate the multi-shard wall time.  A final in-loop barrier
  /// (after the deadline clamp) is the completion handshake: when worker 0
  /// leaves it, every shard has finished and every write is visible.
  std::vector<std::thread> pool_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::uint64_t run_seq_ = 0;  ///< bumped per run_until (guarded by mutex)
  TimePoint pool_deadline_ = 0;
  bool pool_stop_ = false;
};

}  // namespace nestv::sim
