#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace nestv::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range requested
  // Debiased modulo via rejection sampling.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return lo + x % span;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * (r * std::cos(theta));
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork() {
  return Rng(next_u64());
}

std::uint64_t Rng::mix(std::uint64_t seed, std::uint64_t stream) {
  // Two dependent SplitMix64 draws: the first advances a state seeded by
  // `seed`, the second folds `stream` into that state.  Either argument
  // changing by one bit avalanches through both finalizers.
  std::uint64_t state = seed;
  const std::uint64_t a = splitmix64(state);
  state ^= stream;
  return a ^ splitmix64(state);
}

}  // namespace nestv::sim
