#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nestv::sim {

EventId EventQueue::schedule(TimePoint when, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  pending_.insert(id);
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  // Only events still in the heap can be cancelled; ids that already fired
  // (or were never scheduled) are ignored so self-cancelling timers are
  // harmless.
  if (pending_.erase(id) == 0) return;
  cancelled_.insert(id);
  --live_;
}

void EventQueue::drop_cancelled_prefix() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

EventQueue::Entry EventQueue::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  return top;
}

TimePoint EventQueue::next_time() {
  drop_cancelled_prefix();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.front().when;
}

TimePoint EventQueue::pop_and_run() {
  drop_cancelled_prefix();
  assert(!heap_.empty() && "pop_and_run() on empty queue");
  Entry top = pop_top();
  pending_.erase(top.id);
  --live_;
  top.action();
  return top.when;
}

}  // namespace nestv::sim
