#include "sim/event_queue.hpp"

namespace nestv::sim {

// Cancellation is the only cold entry point; everything the run loop
// touches lives inline in the header.
void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  // Ids that already fired (or were never scheduled) no longer match their
  // slot's generation and are ignored, so self-cancelling timers are
  // harmless.
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return;
  release_slot(slot);
  --live_;
}

}  // namespace nestv::sim
