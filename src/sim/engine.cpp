#include "sim/engine.hpp"

namespace nestv::sim {

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Advance the clock *before* running the action so now() is correct
    // inside event handlers.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Engine::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  // next_time() is read once per iteration (it already discards cancelled
  // entries, so pop_and_run's own dead-prefix scan finds a live top).
  while (!queue_.empty()) {
    const TimePoint t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    queue_.pop_and_run();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  executed_ += n;
  return n;
}

}  // namespace nestv::sim
