#include "sim/engine.hpp"

namespace nestv::sim {

std::uint64_t Engine::run() {
  const bool was_running = running_;
  running_ = true;
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Advance the clock *before* running the action so now() is correct
    // inside event handlers.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
    if (!deferred_.empty()) run_deferred();
  }
  executed_ += n;
  running_ = was_running;
  return n;
}

std::uint64_t Engine::run_until(TimePoint deadline) {
  const bool was_running = running_;
  running_ = true;
  std::uint64_t n = 0;
  // next_time() is read once per iteration (it already discards cancelled
  // entries, so pop_and_run's own dead-prefix scan finds a live top).
  while (!queue_.empty()) {
    const TimePoint t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    queue_.pop_and_run();
    ++n;
    if (!deferred_.empty()) run_deferred();
  }
  if (now_ < deadline) now_ = deadline;
  executed_ += n;
  running_ = was_running;
  return n;
}

}  // namespace nestv::sim
