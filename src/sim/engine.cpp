#include "sim/engine.hpp"

namespace nestv::sim {

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Advance the clock *before* running the action so now() is correct
    // inside event handlers.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Engine::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  executed_ += n;
  return n;
}

}  // namespace nestv::sim
