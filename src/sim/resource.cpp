#include "sim/resource.hpp"

// SerialResource is fully inline (see the header); this TU exists so the
// build keeps a stable object for the target and future cold paths.
