#include "sim/resource.hpp"

#include <utility>

namespace nestv::sim {

void SerialResource::charge(CpuCategory category, Duration work) {
  for (const Sink& s : sinks_) {
    // The bound category is the default; a per-item override replaces it
    // for guest-side sinks but the host "guest" sink keeps its category
    // (host time lent to a VM is guest time regardless of what the guest
    // was doing with it).
    const CpuCategory c =
        s.category == CpuCategory::kGuest ? CpuCategory::kGuest : category;
    s.account->charge(c, work);
  }
}

void SerialResource::submit(Duration work, std::function<void()> done) {
  submit_as(sinks_.empty() ? CpuCategory::kSys : sinks_.front().category,
            work, std::move(done));
}

void SerialResource::submit_as(CpuCategory category, Duration work,
                               std::function<void()> done) {
  const TimePoint start =
      busy_until_ > engine_->now() ? busy_until_ : engine_->now();
  busy_until_ = start + work;
  busy_time_ += work;
  ++items_;
  charge(category, work);
  engine_->schedule_at(busy_until_, std::move(done));
}

}  // namespace nestv::sim
