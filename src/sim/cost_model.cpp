#include "sim/cost_model.hpp"

namespace nestv::sim {

const CostModel& CostModel::defaults() {
  static const CostModel model{};
  return model;
}

}  // namespace nestv::sim
