// Small-buffer-optimized, move-only callable for the event hot path.
//
// Every scheduled event used to carry a std::function<void()>; libstdc++'s
// inline buffer is 16 bytes and additionally requires trivially-copyable
// functors, so any lambda that moves a Packet (or captures a shared_ptr)
// heap-allocated its closure.  InlineTask stores closures up to
// kInlineBytes in place — sized for the largest datapath lambda, a
// forwarded Packet plus a flow-cache key plus a few words of context — and
// only falls back to the heap for oversized or throwing-move functors.
// Fallbacks are counted (per thread, so parallel bench sweeps don't race)
// and reported by bench/abl_engine_perf as `tasks_heap`; the steady-state
// datapath keeps that counter at zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace nestv::sim {

class InlineTask {
 public:
  /// Inline closure capacity.  The largest steady-state closure is the
  /// forwarding continuation in NetworkStack::ip_rx_one: a moved Packet
  /// (~104 bytes), a std::string interface name (32), an optional FlowKey
  /// (~24) and a couple of pointers/ints — about 176 bytes.  192 leaves
  /// headroom without bloating the event-queue slots.
  static constexpr std::size_t kInlineBytes = 192;

  InlineTask() noexcept = default;
  InlineTask(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) =
          new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
      ++heap_fallbacks_;
    }
  }

  InlineTask(InlineTask&& other) noexcept { steal(other); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  /// Destroys the held closure (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invokes the closure.  Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  /// Closures that did not fit inline on this thread (bench metric).
  [[nodiscard]] static std::uint64_t heap_fallbacks() noexcept {
    return heap_fallbacks_;
  }
  static void reset_heap_fallbacks() noexcept { heap_fallbacks_ = 0; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* get(void* s) noexcept {
      return std::launder(reinterpret_cast<Fn*>(s));
    }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*get(src)));
      get(src)->~Fn();
    }
    static void destroy(void* s) noexcept { get(s)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* get(void* s) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(s));
    }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      // Relocating a heap closure just moves the owning pointer.
      *reinterpret_cast<Fn**>(dst) = get(src);
    }
    static void destroy(void* s) noexcept { delete get(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void steal(InlineTask& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;

  inline static thread_local std::uint64_t heap_fallbacks_ = 0;
};

namespace detail {
/// Spill counter shared by every InlineHandler instantiation.  Separate
/// from InlineTask::heap_fallbacks_ so the bench gate on `tasks_heap`
/// keeps its exact meaning (event-queue closures only).
struct HandlerSpillCount {
  inline static thread_local std::uint64_t value = 0;
};
}  // namespace detail

/// InlineTask generalized to callables taking arguments: same SBO storage,
/// Ops vtable and move-only semantics, but invoke() forwards `Args...`.
/// Used for socket callbacks (TcpSocket's on_receive / on_connected /
/// on_closed / on_writable) so per-delivery dispatch does not bounce
/// through std::function.
template <typename... Args>
class InlineHandler {
 public:
  static constexpr std::size_t kInlineBytes = InlineTask::kInlineBytes;

  InlineHandler() noexcept = default;
  InlineHandler(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineHandler> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&,
                                      Args...>>>
  InlineHandler(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) =
          new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
      ++detail::HandlerSpillCount::value;
    }
  }

  InlineHandler(InlineHandler&& other) noexcept { steal(other); }

  InlineHandler& operator=(InlineHandler&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;

  ~InlineHandler() { reset(); }

  /// Destroys the held closure (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invokes the closure.  Precondition: non-empty.
  void operator()(Args... args) {
    ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage, Args&&... args);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* get(void* s) noexcept {
      return std::launder(reinterpret_cast<Fn*>(s));
    }
    static void invoke(void* s, Args&&... args) {
      (*get(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*get(src)));
      get(src)->~Fn();
    }
    static void destroy(void* s) noexcept { get(s)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* get(void* s) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(s));
    }
    static void invoke(void* s, Args&&... args) {
      (*get(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      // Relocating a heap closure just moves the owning pointer.
      *reinterpret_cast<Fn**>(dst) = get(src);
    }
    static void destroy(void* s) noexcept { delete get(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void steal(InlineHandler& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Handler closures that did not fit inline on this thread (bench metric,
/// counted separately from InlineTask::heap_fallbacks).
[[nodiscard]] inline std::uint64_t handler_heap_fallbacks() noexcept {
  return detail::HandlerSpillCount::value;
}
inline void reset_handler_heap_fallbacks() noexcept {
  detail::HandlerSpillCount::value = 0;
}

}  // namespace nestv::sim
