// Calibrated per-operation costs for the simulated datapath.
//
// This is the single calibration surface of the reproduction (DESIGN.md
// section 2).  Constants are chosen so that the *vanilla* comparison —
// nested bridge+NAT versus single-layer virtualization — matches the
// paper's fig 2 headline (~68% throughput degradation, ~31% latency
// increase at 1280B).  All other results (BrFusion == NoCont, the Hostlo
// ratios of fig 10, the CPU breakdowns of figs 6/7/14/15) must emerge from
// path *structure*, not from per-experiment constants: no scenario-specific
// knob exists anywhere below.
//
// Values are in nanoseconds (per packet / per call) or nanoseconds per byte
// (copies, checksums).  They are plausible magnitudes for the paper's
// testbed (Xeon E5-2420 v2 @ 2.2 GHz, virtio + vhost, Linux 4.19) but are
// not measurements; EXPERIMENTS.md compares shapes, not absolute numbers.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nestv::sim {

struct CostModel {
  // ---- application / socket layer -------------------------------------
  /// send()/recv() syscall entry/exit and socket bookkeeping.
  Duration syscall_pkt = 600;
  /// user<->kernel copy (~16 GB/s on the testbed's DDR3).
  double copy_byte = 0.05;
  /// L4 (UDP/TCP) protocol processing per segment.
  Duration l4_segment = 450;
  /// Scheduler wakeup of a blocked receiver when data is delivered.  Pure
  /// latency: it delays delivery but occupies no CPU resource, so it
  /// affects UDP_RR round-trips but not TCP_STREAM saturation throughput.
  Duration rx_wakeup = 2300;

  // ---- generic L2/L3 ----------------------------------------------------
  Duration route_lookup = 150;     ///< FIB lookup per packet
  Duration arp_hit = 50;           ///< neighbour cache hit
  Duration bridge_pkt = 300;       ///< host bridge: FDB lookup + forward
  Duration bridge_pkt_guest = 550; ///< guest bridge (no offloads in the VM)
  Duration veth_pkt = 300;         ///< veth pair namespace crossing
  double veth_copy_byte = 0.02;
  Duration loopback_pkt = 250;     ///< lo device per packet
  double loopback_copy_byte = 0.02;
  /// Device-to-device hand-off latency (queue + softirq scheduling).
  Duration hop_latency = 300;
  /// Wire latency of the inter-machine fabric (host NIC -> top-of-rack
  /// switch): serialization + propagation + switch cut-through, an order
  /// of magnitude above the intra-host hand-off.  This is also the
  /// lookahead window of the sharded conductor — an event on one machine
  /// cannot affect another machine sooner than one fabric hop — so it
  /// must lower-bound every cross-machine link latency.
  Duration fabric_hop_latency = 2000;
  /// Hierarchical fabric (vmm::HierarchicalFabric): ToR-to-spine link
  /// latency.  Together with fabric_hop_latency it lower-bounds every
  /// cross-machine wire, so the conductor lookahead for a two-tier fabric
  /// is min(fabric_hop_latency, spine_link_latency).
  Duration spine_link_latency = 2000;
  /// Per-frame cut-through forwarding work inside a fabric switch (header
  /// parse + table lookup); pure delay, no CPU resource (the switch ASIC
  /// is not a contended core).
  Duration fabric_switch_pkt = 350;
  /// Per-byte serialization onto a fabric link (100GbE: 0.08 ns/byte).
  /// Modeled as a per-egress-port busy horizon, so bursts into one link
  /// queue behind each other — the only capacity constraint the
  /// hierarchical fabric imposes beyond latency.
  double fabric_link_byte = 0.08;

  // ---- netfilter / NAT --------------------------------------------------
  Duration nf_hook_base = 120;     ///< traversing one hook point
  Duration nf_rule_scan = 70;      ///< evaluating one rule (slow path)
  Duration conntrack_hit = 200;    ///< established-connection lookup
  Duration conntrack_miss = 700;   ///< new flow: rule scan result + entry
  Duration nat_rewrite = 180;      ///< header rewrite + checksum fixup
  /// Docker/Kubernetes install this many rules on the chains a forwarded
  /// packet traverses even on the conntrack fast path (filter FORWARD,
  /// DOCKER-USER, KUBE-FORWARD, ...).  This is what makes the *nested* NAT
  /// layer expensive: it runs once per MTU-sized packet in guest softirq.
  int nf_standing_rules = 6;

  // ---- per-flow fast-path cache (ONCache-style; src/net/flowcache) ------
  /// Hash lookup + validity stamps + applying the cached verdict.  This is
  /// the whole per-packet stack charge on a hit — it replaces the hook
  /// traversals, rule scans, conntrack and FIB lookups above.
  Duration flowcache_hit = 240;
  /// Applying the precomputed NAT header rewrite (no rule walk; checksum
  /// delta was folded into the record).
  Duration flowcache_rewrite = 60;
  /// Recording a verdict after a slow-path traversal (entry allocation +
  /// LRU insert), charged once per flow direction on the miss path.
  Duration flowcache_insert = 350;
  /// Entry budget per stack; LRU beyond this (ONCache uses a fixed-size
  /// eBPF map the same way).
  std::uint32_t flowcache_capacity = 4096;

  // ---- virtio / vhost ---------------------------------------------------
  Duration virtio_ring_pkt = 500;  ///< guest side: avail/used ring + kick
  Duration vhost_pkt = 650;        ///< host kernel worker per packet
  double vhost_copy_byte = 0.09;   ///< copy guest pages <-> tap
  Duration tap_pkt = 250;          ///< tap fd read/write per packet
  double tap_copy_byte = 0.05;
  /// GRO merge work per coalesced segment at a receiving netdev.
  Duration gro_pkt = 150;
  /// GRO flush deadline when no PSH terminates a burst (NAPI cycle end).
  Duration gro_timeout = 25000;
  /// QEMU-emulated virtio (no vhost): everything funnels through the QEMU
  /// iothread with a syscall round-trip per batch.  Used by the ablation
  /// bench abl_vhost only; all scenarios default to vhost as in the paper.
  Duration qemu_emul_pkt = 12000;
  double qemu_emul_copy_byte = 0.45;

  // ---- Hostlo (the paper's modified multi-queue loopback TAP) ----------
  /// Reflect cost per destination queue per packet ("sends back any
  /// received Ethernet frame to all of its queues", section 4.2).
  Duration hostlo_reflect_pkt = 300;
  double hostlo_reflect_copy_byte = 0.05;
  /// Extra guest-side per-frame work at a Hostlo endpoint: the modified
  /// tap driver negotiates no offloads and no NAPI-style batching, so the
  /// guest takes one interrupt + ring round-trip per wire frame.
  Duration hostlo_endpoint_pkt = 550;

  // ---- burst datapath (kick coalescing + NAPI polling) ------------------
  /// Work items a batched resource completion may coalesce behind one
  /// engine event (sim::BatchSink), and the master switch for the burst
  /// datapath: 1 disables batching entirely and every component takes the
  /// exact pre-burst one-event-per-frame code path (CI gates that the
  /// batch_size=1 run is bit-identical to the unbatched engine).
  std::uint32_t batch_size = 1;
  /// Max descriptors drained per virtio kick / NAPI poll cycle; mirrors
  /// the kernel's net.core netdev_budget per-device cap of 64.
  std::uint32_t napi_budget = 64;
  /// Guest->host doorbell (ioeventfd kick) or host->guest interrupt
  /// injection.  Paid once per burst when batching is on: event
  /// suppression (VIRTIO_F_EVENT_IDX) elides the per-frame notifications
  /// that the unbatched model folds into virtio_ring_pkt.
  Duration virtio_kick = 400;

  // ---- fast-path stack (net/faststack; IncludeOS-style fixed pipeline) --
  /// Whole per-packet RX charge of the FastPathStack: MAC filter, compact
  /// demux and L4 segment handling fused into one table-free pass (no hook
  /// points, no conntrack, no GRO merge pass).  Replaces route_lookup +
  /// l4_segment (+ any netfilter traversal) of the full stack's local
  /// delivery.
  Duration fastpath_rx_pkt = 220;
  /// Whole per-packet TX charge: route decision against the compact table +
  /// neighbour lookup fused with the emit.  Replaces route_lookup +
  /// OUTPUT-chain traversal on the full stack.
  Duration fastpath_tx_pkt = 160;

  // ---- MemPipe (section 4.3.2's shared-memory alternative) --------------
  Duration mempipe_pkt = 350;      ///< ring slot claim + event notification
  double mempipe_copy_byte = 0.05; ///< memcpy through shared pages

  // ---- VXLAN overlay (Docker Overlay baseline) --------------------------
  Duration vxlan_encap_pkt = 900;
  Duration vxlan_decap_pkt = 800;
  double vxlan_copy_byte = 0.02;
  int vxlan_header_bytes = 50;     ///< outer Ethernet+IP+UDP+VXLAN

  // ---- ONCache overlay fast path (src/net/oncache) ----------------------
  /// Fused per-packet egress charge on a cache hit: replaces the inner
  /// bridge forward + VXLAN encap + l4_segment + OUTPUT/POSTROUTING hooks
  /// + route lookup of the slow chain (~2.5-3us across ~5 softirq events)
  /// with one event, ONCache-style.  The per-byte encap copy still applies.
  Duration oncache_encap_hit = 650;
  /// Fused per-packet ingress charge: replaces PREROUTING/INPUT + UDP
  /// demux + VXLAN decap + inner bridge forward.
  Duration oncache_decap_hit = 550;
  /// One-time charge for resolving + installing a cache entry.
  Duration oncache_insert = 400;
  /// Entries per direction table (egress and ingress size independently).
  std::uint32_t oncache_capacity = 4096;

  // ---- segmentation offload --------------------------------------------
  // Effective segment size seen by per-packet costs.  TSO/GRO lets the
  // virtio path move ~16KB super-frames; the in-guest loopback device has a
  // 64KB MTU; bridge-netfilter + NAT forces software segmentation to the
  // wire MTU (br_netfilter re-segments GSO frames so iptables can see
  // L3/L4 headers) — that asymmetry is the mechanistic root of fig 2.
  std::uint32_t mtu_wire = 1500;
  std::uint32_t gso_virtio = 16384;   ///< NoCont / BrFusion pod NIC
  std::uint32_t gso_loopback = 65536; ///< SameNode intra-pod localhost
  std::uint32_t gso_nat_nested = 1448;///< nested bridge+NAT guest path
  std::uint32_t gso_hostlo = 1448;    ///< modified tap: no TSO through reflect
  std::uint32_t gso_overlay = 2896;   ///< VXLAN keeps partial GSO (encap-aware)

  // ---- TCP --------------------------------------------------------------
  std::uint32_t tcp_window_bytes = 262144;
  Duration tcp_rto = milliseconds(200);
  Duration tcp_delayed_ack = microseconds(200);
  /// Congestion control (slow start + AIMD) with RFC 6298 adaptive RTO.
  /// Off by default: the paper's streams are steady-state saturation on a
  /// lossless local fabric where the fixed window is the faithful model;
  /// turn on to study ramp-up and loss recovery (bench/abl_cwnd).
  bool tcp_congestion_control = false;
  std::uint32_t tcp_init_cwnd_segments = 10;  ///< IW10
  Duration tcp_min_rto = milliseconds(5);

  /// Defaults tuned against fig 2; see file comment.
  static const CostModel& defaults();
};

}  // namespace nestv::sim
