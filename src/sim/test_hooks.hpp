// Test-only fault-injection hooks for the differential-oracle harness.
//
// Each flag, when set, re-introduces one bug class the codebase's
// equivalence invariants were built to exclude.  They exist so the fuzz
// oracles (src/fuzz) can prove they are able to fail: a harness that has
// never caught a real divergence is indistinguishable from one that
// compares nothing.  Production code paths read the flags but never set
// them; only tests and `fuzz_runner --inject-bug` flip them, and always
// restore them to false.
//
// The flags are plain (non-atomic) bools: they are toggled only while no
// simulation is running, and a sharded run's worker threads are spawned
// after the toggle and joined before the next one (ShardedConductor's
// persistent pool starts on the first multi-shard run_until after
// construction and joins in the destructor, and each world builds its own
// conductor), so thread creation/join orders the writes.
#pragma once

namespace nestv::sim::test_hooks {

/// Wire transmits drop their (link rank, link seq) ordering key and fall
/// back to plain scheduling / unkeyed mail.  Same-nanosecond arrivals at a
/// shared device then fire in schedule order (single engine) vs
/// (src shard, post order) drain order (conductor) — the ordering bug the
/// keyed delivery of DESIGN.md section 10 fixes.  Caught by the shards
/// oracle.
inline bool unkeyed_wire_delivery = false;

/// VirtioNic treats batch_size == 1 as batched: the kick-coalescing /
/// NAPI datapath runs even though the master switch is off, so the burst
/// knobs (napi_budget, virtio_kick) leak into batch_size=1 timing.  This
/// breaks the PR-4 invariant that batch_size=1 with arbitrary burst knobs
/// is bit-identical to the default cost model.  Caught by the batching
/// oracle.
inline bool force_virtio_batching = false;

/// NetworkStack ignores netfilter rule-table mutations instead of flushing
/// the matching flow-cache entries: a flow whose path was cached before a
/// DROP rule landed keeps forwarding from the cache.  Caught by the
/// flowcache oracle (flowcache-on diverges semantically from
/// flowcache-off).
inline bool skip_flowcache_rule_invalidation = false;

/// FullStack ignores netfilter rule-table mutations for the *overlay*
/// fast-path cache (net/oncache) while still flushing the flowcache: a
/// DROP rule landing on the outer VXLAN flow no longer flushes the cached
/// encap/decap entries, so cached overlay traffic keeps bypassing the
/// hooks.  Caught by the oncache oracle (oncache-on diverges semantically
/// from oncache-off).
inline bool skip_oncache_rule_invalidation = false;

/// VxlanDevice::add_remote skips the cached-entry flush when an inner MAC
/// moves to a new VTEP: egress entries keep encapsulating toward the old
/// endpoint.  Exercised by the oncache unit tests (stale-VTEP delivery).
inline bool skip_oncache_vtep_invalidation = false;

/// LookaheadMatrix::finalize doubles every closed bound — the matrix
/// understates how soon a neighbour can interfere, so conductor windows
/// overrun true cross-shard arrival times.  Frames then land in a shard's
/// past; the engine clamps them to "now" and they fire late, which the
/// shards oracle detects as a digest divergence against the shards=1
/// baseline.  This is the bug class a miscomputed lookahead entry (or a
/// missed note_cross_link) would introduce.
inline bool lookahead_matrix_overrun = false;

/// FastPathStack duplicates every Nth locally-delivered UDP datagram — a
/// classic fast-path bug class (retry/queue logic delivering a payload
/// twice) that keeps the run quiescing (closed-loop RR waves still
/// complete; transaction counts inflate).  Caught by the backend oracle:
/// the FastPath shape's semantic digest diverges from the FullStack
/// baseline while its own rerun stays bit-identical.
inline bool faststack_dup_udp_delivery = false;

/// Restores every hook to its production value.
inline void reset() {
  unkeyed_wire_delivery = false;
  force_virtio_batching = false;
  skip_flowcache_rule_invalidation = false;
  skip_oncache_rule_invalidation = false;
  skip_oncache_vtep_invalidation = false;
  lookahead_matrix_overrun = false;
  faststack_dup_udp_delivery = false;
}

}  // namespace nestv::sim::test_hooks
