// Container Network Interface plugins.
//
// "Extending the Kubernetes orchestrator [...] is easily done with a
// Container Network Interface plugin.  CNI plugins follow a standard
// specification and are used to provide new networking models" (section
// 3.2).  Three plugins are provided:
//   * BridgeNatCni  - the vanilla nested design (fig 1a): veth into the
//                     guest docker0 bridge + guest NAT.  The "NAT" baseline.
//   * BrFusionCni   - section 3: per-pod NIC hot-plugged by the VMM and
//                     moved straight into the pod namespace.
//   * HostloCni     - section 4: a host-backed multiplexed localhost for
//                     cross-VM pods (whole-pod attach, one endpoint per
//                     fragment).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "container/boot.hpp"
#include "container/runtime.hpp"
#include "core/docker_net.hpp"
#include "core/protocol.hpp"
#include "sim/rng.hpp"

namespace nestv::core {

class Cni {
 public:
  struct Options {
    /// Ports exposed to the outside (Docker `-p`); the bridge+NAT plugin
    /// implements them as guest DNAT rules, BrFusion needs none because the
    /// pod NIC sits directly on the host-level network.
    std::vector<std::uint16_t> publish_ports;
  };

  virtual ~Cni() = default;
  [[nodiscard]] virtual const char* cni_name() const = 0;

  virtual void attach(
      container::Pod::Fragment& fragment, const Options& options,
      std::function<void(container::Runtime::AttachOutcome)> done) = 0;

  /// Adapter for Runtime::create_container.
  [[nodiscard]] container::Runtime::AttachFn attach_fn(Options options = {});
};

/// The vanilla nested networking the paper calls "NAT".
class BridgeNatCni : public Cni {
 public:
  BridgeNatCni(sim::Rng rng, container::BootTimingModel timing = {});

  [[nodiscard]] const char* cni_name() const override { return "bridge-nat"; }

  void attach(container::Pod::Fragment& fragment, const Options& options,
              std::function<void(container::Runtime::AttachOutcome)> done)
      override;

  /// The per-VM docker network (created lazily on first attach).
  GuestDockerNetwork& network_for(vmm::Vm& vm);

 private:
  sim::Rng rng_;
  container::BootTimingModel timing_;
  std::map<vmm::Vm*, std::unique_ptr<GuestDockerNetwork>> networks_;
};

/// The NAT datapath with the per-flow fast-path cache enabled
/// (src/net/flowcache): identical wiring to BridgeNatCni, but the guest
/// stack memoizes each established flow's hook/route/ARP outcome so later
/// packets take a single cached hop.  The "NAT+FlowCache" datapath mode.
class FlowCacheCni : public BridgeNatCni {
 public:
  using BridgeNatCni::BridgeNatCni;

  [[nodiscard]] const char* cni_name() const override {
    return "bridge-nat-flowcache";
  }

  void attach(container::Pod::Fragment& fragment, const Options& options,
              std::function<void(container::Runtime::AttachOutcome)> done)
      override;
};

/// Section 3: fused networking.  The pod NIC is provisioned by the VMM,
/// plugged into the host bridge, and configured inside the pod namespace —
/// "without the intermediary of NAT, a bridge and another vNIC in the VM".
class BrFusionCni : public Cni {
 public:
  BrFusionCni(OrchVmmChannel& channel, sim::Rng rng,
              container::BootTimingModel timing = {});

  [[nodiscard]] const char* cni_name() const override { return "brfusion"; }

  void attach(container::Pod::Fragment& fragment, const Options& options,
              std::function<void(container::Runtime::AttachOutcome)> done)
      override;

  /// Pod teardown: detaches the pod NIC from the fragment's stack (dead
  /// ifindex, targeted flow-cache flush) and has the VMM hot-unplug it via
  /// QMP device_del.  `done` fires once the guest unbind completed.
  void detach(container::Pod::Fragment& fragment, int ifindex,
              std::function<void()> done);

 private:
  OrchVmmChannel* channel_;
  sim::Rng rng_;
  container::BootTimingModel timing_;
};

/// Section 4: cross-VM pod localhost.  Attaches the *whole pod*: one Hostlo
/// endpoint per fragment, all backed by one host-kernel multi-queue TAP.
class HostloCni {
 public:
  explicit HostloCni(OrchVmmChannel& channel);

  struct EndpointInfo {
    container::Pod::Fragment* fragment = nullptr;
    int ifindex = -1;
    net::Ipv4Address ip;
    net::MacAddress mac;
  };

  /// Provisions the Hostlo for `pod` across all its fragments' VMs; done
  /// receives one endpoint per fragment (in fragment order).
  void attach_pod(container::Pod& pod,
                  std::function<void(std::vector<EndpointInfo>)> done);

  [[nodiscard]] std::uint64_t pods_attached() const { return pods_; }

 private:
  OrchVmmChannel* channel_;
  std::uint64_t pods_ = 0;
  std::uint8_t next_pod_subnet_ = 1;
};

}  // namespace nestv::core
