// The pod orchestrator — section 7's end state: "clearly put the
// orchestrator as the only manager of the datacenter, and [...] integrate
// the VMM as a tool for the orchestrator."
//
// A Kubernetes-shaped control loop over the simulated datacenter: VMs
// register as nodes with capacities; pods are requested with per-container
// resources and a network mode; placement follows the "most requested"
// policy; deployment drives the container runtime and the CNI plugins,
// including the cross-VM split that only NetworkMode::kHostlo permits.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/pod.hpp"
#include "container/runtime.hpp"
#include "core/cni.hpp"

namespace nestv::core {

enum class NetworkMode { kBridgeNat, kBrFusion, kHostlo };

[[nodiscard]] const char* to_string(NetworkMode m);

class Orchestrator {
 public:
  Orchestrator(vmm::Vmm& vmm, BridgeNatCni& nat, BrFusionCni& brfusion,
               HostloCni& hostlo);

  struct NodeCapacity {
    double cpu = 5.0;      ///< schedulable vCPUs (the paper's VMs: 5)
    double memory_gb = 4.0;
  };

  /// Registers a VM as a schedulable node.
  void register_node(vmm::Vm& vm, NodeCapacity capacity);
  void register_node(vmm::Vm& vm) { register_node(vm, NodeCapacity{}); }

  struct ContainerRequest {
    std::string name;
    double cpu = 0.5;
    double memory_gb = 0.25;
    container::Image image{"app"};
    std::vector<std::uint16_t> publish_ports;
  };

  struct PodRequest {
    std::string name;
    std::vector<ContainerRequest> containers;
    NetworkMode network = NetworkMode::kBridgeNat;
  };

  struct Deployment {
    bool ok = false;
    std::string reason;  ///< set when !ok
    container::Pod* pod = nullptr;
    /// Node of each container, in request order.
    std::vector<vmm::Vm*> placement;
  };

  /// Schedules and deploys `request`; `done` fires when every container
  /// runs (or with ok=false and untouched cluster state when unplaceable).
  /// kBridgeNat/kBrFusion pods are whole-pod placed; kHostlo pods split
  /// across nodes when no single node fits.
  void deploy(PodRequest request, std::function<void(Deployment)> done);

  /// Remaining capacity of a node (for tests/inspection).
  [[nodiscard]] NodeCapacity free_capacity(const vmm::Vm& vm) const;
  [[nodiscard]] std::size_t nodes() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t pods_deployed() const { return deployed_; }

 private:
  struct Node {
    vmm::Vm* vm = nullptr;
    NodeCapacity capacity;
    double used_cpu = 0.0;
    double used_mem = 0.0;
    std::unique_ptr<container::Runtime> runtime;

    [[nodiscard]] bool fits(double cpu, double mem) const {
      return capacity.cpu - used_cpu + 1e-9 >= cpu &&
             capacity.memory_gb - used_mem + 1e-9 >= mem;
    }
    [[nodiscard]] double requested_score() const {
      return used_cpu / capacity.cpu + used_mem / capacity.memory_gb;
    }
  };

  /// Whole-pod placement under "most requested"; nullptr if nothing fits.
  Node* pick_node(double cpu, double mem);
  /// Per-container split placement; empty if infeasible.
  std::vector<Node*> pick_split(const PodRequest& request);

  void boot_containers(container::Pod& pod,
                       const std::vector<Node*>& placement,
                       const PodRequest& request,
                       std::function<void(Deployment)> done);

  vmm::Vmm* vmm_;
  BridgeNatCni* nat_;
  BrFusionCni* brfusion_;
  HostloCni* hostlo_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<container::Pod>> pods_;
  std::uint64_t deployed_ = 0;
};

}  // namespace nestv::core
