#include "core/service.hpp"

namespace nestv::core {
namespace {

constexpr const char* kRuleComment = "kube-svc";

}  // namespace

void ServiceRegistry::add_node(vmm::Vm& vm) {
  nodes_.push_back(&vm);
  program_node(vm);
}

const ServiceRegistry::Service& ServiceRegistry::expose(
    const std::string& name, std::uint16_t port,
    std::vector<net::NatBackend> backends) {
  Service svc;
  svc.name = name;
  const auto existing = services_.find(name);
  svc.cluster_ip = existing != services_.end()
                       ? existing->second.cluster_ip
                       : cidr_.host(next_ip_++);
  svc.port = port;
  svc.backends = std::move(backends);
  services_[name] = std::move(svc);
  program_all();
  return services_.at(name);
}

void ServiceRegistry::add_backend(const std::string& name,
                                  net::NatBackend backend) {
  const auto it = services_.find(name);
  if (it == services_.end()) return;
  it->second.backends.push_back(backend);
  program_all();
}

const ServiceRegistry::Service* ServiceRegistry::find(
    const std::string& name) const {
  const auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

void ServiceRegistry::program_all() {
  for (vmm::Vm* vm : nodes_) program_node(*vm);
}

void ServiceRegistry::program_node(vmm::Vm& vm) {
  // kube-proxy rewrites its chains wholesale on every update: drop our
  // previous rules, then install the current service set on both hooks
  // (PREROUTING for pod/external traffic, OUTPUT for node-local clients).
  for (const auto hook : {net::Hook::kPrerouting, net::Hook::kOutput}) {
    auto& nf = vm.stack().netfilter();
    // Removals and inserts go through the notifying API so flow caches
    // drop exactly the cached flows the rewritten service set may affect.
    std::vector<std::string> stale;
    for (const auto& r : nf.nat_chain(hook).rules) {
      if (r.comment.rfind(kRuleComment, 0) == 0) stale.push_back(r.comment);
    }
    for (const auto& comment : stale) nf.remove_nat_rules(hook, comment);
    for (const auto& [name, svc] : services_) {
      if (svc.backends.empty()) continue;
      net::Rule rule;
      rule.match.dst = net::Ipv4Cidr(svc.cluster_ip, 32);
      rule.match.dport = svc.port;
      rule.target = net::TargetKind::kDnatRoundRobin;
      rule.backends = svc.backends;
      rule.comment = std::string(kRuleComment) + "-" + name;
      nf.add_nat_rule(hook, std::move(rule));
    }
  }
}

}  // namespace nestv::core
