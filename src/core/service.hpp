// ClusterIP services — the kube-proxy layer.
//
// Kubernetes fronts pods with virtual service addresses; kube-proxy
// programs every node's netfilter with KUBE-SVC chains that DNAT new flows
// to a backend pod, round-robin.  These chains are precisely the standing
// rules whose per-packet scan cost the nested NAT datapath pays (figs 6/7),
// and they interact with the paper's designs in an instructive way: with
// bridge+NAT pods a backend on another VM is *not reachable* (pod subnets
// are VM-local — the very "VM-local network virtualization" problem of
// section 2), while BrFusion pods live on the host-level network and are
// service-routable from every node with no overlay.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/netfilter.hpp"
#include "vmm/vm.hpp"

namespace nestv::core {

class ServiceRegistry {
 public:
  explicit ServiceRegistry(net::Ipv4Cidr service_cidr = net::Ipv4Cidr(
                               net::Ipv4Address(10, 96, 0, 0), 16))
      : cidr_(service_cidr) {}

  struct Service {
    std::string name;
    net::Ipv4Address cluster_ip;
    std::uint16_t port = 0;
    std::vector<net::NatBackend> backends;
  };

  /// Registers a node: kube-proxy starts programming its netfilter.
  void add_node(vmm::Vm& vm);

  /// Creates (or replaces) a service and programs every node.
  const Service& expose(const std::string& name, std::uint16_t port,
                        std::vector<net::NatBackend> backends);

  /// Adds one endpoint to an existing service and reprograms the nodes.
  void add_backend(const std::string& name, net::NatBackend backend);

  [[nodiscard]] const Service* find(const std::string& name) const;
  [[nodiscard]] std::size_t service_count() const { return services_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  void program_all();
  void program_node(vmm::Vm& vm);

  net::Ipv4Cidr cidr_;
  std::uint32_t next_ip_ = 1;
  std::map<std::string, Service> services_;
  std::vector<vmm::Vm*> nodes_;
};

}  // namespace nestv::core
