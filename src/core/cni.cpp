#include "core/cni.hpp"

#include <cassert>
#include <utility>

namespace nestv::core {

container::Runtime::AttachFn Cni::attach_fn(Options options) {
  return [this, options = std::move(options)](
             container::Pod::Fragment& fragment,
             std::function<void(container::Runtime::AttachOutcome)> done) {
    attach(fragment, options, std::move(done));
  };
}

// ---- BridgeNatCni -----------------------------------------------------------

BridgeNatCni::BridgeNatCni(sim::Rng rng, container::BootTimingModel timing)
    : rng_(rng), timing_(timing) {}

GuestDockerNetwork& BridgeNatCni::network_for(vmm::Vm& vm) {
  auto it = networks_.find(&vm);
  if (it == networks_.end()) {
    it = networks_
             .emplace(&vm, std::make_unique<GuestDockerNetwork>(vm))
             .first;
  }
  return *it->second;
}

void BridgeNatCni::attach(
    container::Pod::Fragment& fragment, const Options& options,
    std::function<void(container::Runtime::AttachOutcome)> done) {
  assert(fragment.vm != nullptr);
  vmm::Vm& vm = *fragment.vm;
  auto& engine = vm.host().engine();

  // Control-plane cost: create the veth, attach it to docker0, and insert
  // the iptables bookkeeping + publish rules (each insert rewrites the
  // table under the xtables lock).
  sim::Duration delay =
      timing_.sample(rng_, timing_.veth_create_mu, timing_.veth_create_sigma) +
      timing_.sample(rng_, timing_.bridge_attach_mu,
                     timing_.bridge_attach_sigma);
  const int rule_count =
      timing_.iptables_rules_per_container +
      2 * static_cast<int>(options.publish_ports.size());
  for (int i = 0; i < rule_count; ++i) {
    delay += timing_.sample(rng_, timing_.iptables_rule_mu,
                            timing_.iptables_rule_sigma);
  }

  // Init-capture `options` non-const so the closure keeps a nothrow move
  // (a plain copy-capture of the const reference would pin a const member
  // whose move is a throwing copy, spilling the task to the heap).
  engine.schedule_in(delay, [this, &fragment, &vm, options = Options(options),
                             done = std::move(done)] {
    GuestDockerNetwork& network = network_for(vm);
    const auto attachment =
        network.attach(fragment, vm.host().costs().gso_nat_nested);
    for (const std::uint16_t port : options.publish_ports) {
      network.publish_port(port, attachment.ip);
    }
    done(container::Runtime::AttachOutcome{true, attachment.ifindex,
                                           attachment.ip});
  });
}

// ---- FlowCacheCni -----------------------------------------------------------

void FlowCacheCni::attach(
    container::Pod::Fragment& fragment, const Options& options,
    std::function<void(container::Runtime::AttachOutcome)> done) {
  assert(fragment.vm != nullptr);
  vmm::Vm& vm = *fragment.vm;
  container::Pod::Fragment* frag = &fragment;
  BridgeNatCni::attach(
      fragment, options,
      [&vm, frag, done = std::move(done)](
          container::Runtime::AttachOutcome outcome) {
        // Same nested wiring as NAT; flip on the fast-path cache in both
        // the forwarding guest stack and the pod's own stack.
        vm.stack().set_flowcache(true);
        frag->stack->set_flowcache(true);
        done(outcome);
      });
}

// ---- BrFusionCni ------------------------------------------------------------

BrFusionCni::BrFusionCni(OrchVmmChannel& channel, sim::Rng rng,
                         container::BootTimingModel timing)
    : channel_(&channel), rng_(rng), timing_(timing) {}

void BrFusionCni::attach(
    container::Pod::Fragment& fragment, const Options& options,
    std::function<void(container::Runtime::AttachOutcome)> done) {
  (void)options;  // the pod NIC is directly reachable; nothing to publish
  assert(fragment.vm != nullptr);
  vmm::Vm& vm = *fragment.vm;
  auto& machine = vm.host();
  auto& engine = machine.engine();

  const auto ifconfig = timing_.sample(rng_, timing_.guest_ifconfig_mu,
                                       timing_.guest_ifconfig_sigma);

  // Steps 1-4 of section 3.1: request the NIC, wait for hot-plug + guest
  // probe, then configure it inside the pod namespace.
  channel_->request_nic(
      vm, [&machine, &engine, &fragment, ifconfig,
           done = std::move(done)](vmm::Vmm::ProvisionedNic nic) mutable {
        engine.schedule_in(ifconfig, [&machine, &fragment, nic,
                                      done = std::move(done)] {
          net::InterfaceConfig cfg;
          cfg.name = "eth0";
          cfg.mac = nic.mac;
          cfg.ip = machine.allocate_bridge_ip();
          cfg.subnet = machine.config().bridge_subnet;
          cfg.gso_bytes = machine.costs().gso_virtio;
          const int ifindex = fragment.stack->add_interface(*nic.nic, cfg);
          fragment.stack->routes().add_default(machine.bridge_ip(), ifindex);
          done(container::Runtime::AttachOutcome{true, ifindex, cfg.ip});
        });
      });
}

void BrFusionCni::detach(container::Pod::Fragment& fragment, int ifindex,
                         std::function<void()> done) {
  assert(fragment.vm != nullptr);
  const auto mac = fragment.stack->iface_mac(ifindex);
  // Guest side first: the netdev disappears from the namespace, dropping
  // parked packets and exactly the cached flows through this ifindex.
  fragment.stack->detach_interface(ifindex);
  channel_->release_nic(*fragment.vm, mac, std::move(done));
}

// ---- HostloCni --------------------------------------------------------------

HostloCni::HostloCni(OrchVmmChannel& channel) : channel_(&channel) {}

void HostloCni::attach_pod(
    container::Pod& pod,
    std::function<void(std::vector<EndpointInfo>)> done) {
  ++pods_;
  // A link-local /24 per pod for the shared localhost (the pod's private
  // loopback domain; see DESIGN.md on the 127/8 substitution).
  const net::Ipv4Cidr pod_subnet(
      net::Ipv4Address(169, 254, next_pod_subnet_++, 0), 24);

  std::vector<vmm::Vm*> vms;
  for (auto& frag : pod.fragments()) vms.push_back(frag->vm);

  channel_->request_hostlo(
      vms, [&pod, pod_subnet, done = std::move(done)](
               vmm::Vmm::ProvisionedHostlo result) mutable {
        std::vector<EndpointInfo> endpoints;
        auto& fragments = pod.fragments();
        assert(result.endpoints.size() == fragments.size());
        for (std::size_t i = 0; i < fragments.size(); ++i) {
          auto& frag = *fragments[i];
          const auto& ep = result.endpoints[i];
          net::InterfaceConfig cfg;
          cfg.name = "hostlo0";
          cfg.mac = ep.mac;
          cfg.ip = pod_subnet.host(static_cast<std::uint32_t>(i) + 1);
          cfg.subnet = pod_subnet;
          cfg.gso_bytes = frag.vm->host().costs().gso_hostlo;
          // The modified tap driver negotiates no offload features:
          // TSO off (gso_hostlo) and no GRO at the endpoint either.
          frag.stack->set_gro(false);
          const int ifindex = frag.stack->add_interface(*ep.nic, cfg);
          endpoints.push_back(EndpointInfo{&frag, ifindex, cfg.ip, ep.mac});
        }
        done(std::move(endpoints));
      });
}

}  // namespace nestv::core
