// Orchestrator <-> VMM protocol channel.
//
// The paper's key architectural move is to "make the pod orchestrator the
// main actor of the datacenter, by allowing it to communicate its orders to
// the virtual machine manager" (section 1).  This channel carries those
// orders: NIC provisioning requests (BrFusion, section 3.1 steps 1-3) and
// Hostlo creation requests (section 4.1 steps 1-3), with a message latency
// for the management-network round trip.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "vmm/vmm.hpp"

namespace nestv::core {

class OrchVmmChannel {
 public:
  explicit OrchVmmChannel(vmm::Vmm& vmm,
                          sim::Duration one_way = sim::microseconds(250));

  /// Step 1-3 of section 3.1: ask for a new NIC on `vm`; the reply carries
  /// "some sort of identifier of the new NIC (such as the MAC address)".
  void request_nic(vmm::Vm& vm,
                   std::function<void(vmm::Vmm::ProvisionedNic)> reply);

  /// BrFusion teardown: ask the VMM to hot-unplug the NIC identified by
  /// `mac` from `vm` (QMP device_del behind the management network).
  void release_nic(vmm::Vm& vm, net::MacAddress mac,
                   std::function<void()> reply);

  /// Step 1-3 of section 4.1: ask for a new Hostlo multiplexed between the
  /// given VMs.
  void request_hostlo(
      std::vector<vmm::Vm*> vms,
      std::function<void(vmm::Vmm::ProvisionedHostlo)> reply);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] vmm::Vmm& vmm() { return *vmm_; }

 private:
  vmm::Vmm* vmm_;
  sim::Duration one_way_;
  std::uint64_t messages_ = 0;
};

}  // namespace nestv::core
