#include "core/orchestrator.hpp"

#include <algorithm>
#include <cassert>

namespace nestv::core {

const char* to_string(NetworkMode m) {
  switch (m) {
    case NetworkMode::kBridgeNat: return "bridge-nat";
    case NetworkMode::kBrFusion: return "brfusion";
    case NetworkMode::kHostlo: return "hostlo";
  }
  return "?";
}

Orchestrator::Orchestrator(vmm::Vmm& vmm, BridgeNatCni& nat,
                           BrFusionCni& brfusion, HostloCni& hostlo)
    : vmm_(&vmm), nat_(&nat), brfusion_(&brfusion), hostlo_(&hostlo) {}

void Orchestrator::register_node(vmm::Vm& vm, NodeCapacity capacity) {
  auto node = std::make_unique<Node>();
  node->vm = &vm;
  node->capacity = capacity;
  node->runtime = std::make_unique<container::Runtime>(
      vm, vm.host().rng().fork());
  nodes_.push_back(std::move(node));
}

Orchestrator::NodeCapacity Orchestrator::free_capacity(
    const vmm::Vm& vm) const {
  for (const auto& node : nodes_) {
    if (node->vm == &vm) {
      return NodeCapacity{node->capacity.cpu - node->used_cpu,
                          node->capacity.memory_gb - node->used_mem};
    }
  }
  return NodeCapacity{0.0, 0.0};
}

Orchestrator::Node* Orchestrator::pick_node(double cpu, double mem) {
  Node* best = nullptr;
  for (auto& node : nodes_) {
    if (!node->fits(cpu, mem)) continue;
    if (best == nullptr ||
        node->requested_score() > best->requested_score()) {
      best = node.get();
    }
  }
  return best;
}

std::vector<Orchestrator::Node*> Orchestrator::pick_split(
    const PodRequest& request) {
  // Greedy per container, biggest first, most-requested node that fits —
  // the online analogue of the fig 9 rescheduler.  Reservations are made
  // on scratch copies so an infeasible request leaves no trace.
  std::vector<std::size_t> order(request.containers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ca = request.containers[a];
    const auto& cb = request.containers[b];
    return ca.cpu + ca.memory_gb > cb.cpu + cb.memory_gb;
  });

  std::vector<double> scratch_cpu(nodes_.size());
  std::vector<double> scratch_mem(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    scratch_cpu[n] = nodes_[n]->used_cpu;
    scratch_mem[n] = nodes_[n]->used_mem;
  }

  std::vector<Node*> placement(request.containers.size(), nullptr);
  for (const std::size_t ci : order) {
    const auto& c = request.containers[ci];
    std::size_t best = nodes_.size();
    double best_score = -1.0;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      const auto& node = *nodes_[n];
      if (node.capacity.cpu - scratch_cpu[n] + 1e-9 < c.cpu ||
          node.capacity.memory_gb - scratch_mem[n] + 1e-9 < c.memory_gb) {
        continue;
      }
      const double score = scratch_cpu[n] / node.capacity.cpu +
                           scratch_mem[n] / node.capacity.memory_gb;
      if (score > best_score) {
        best_score = score;
        best = n;
      }
    }
    if (best == nodes_.size()) return {};
    scratch_cpu[best] += c.cpu;
    scratch_mem[best] += c.memory_gb;
    placement[ci] = nodes_[best].get();
  }
  return placement;
}

void Orchestrator::deploy(PodRequest request,
                          std::function<void(Deployment)> done) {
  double total_cpu = 0, total_mem = 0;
  for (const auto& c : request.containers) {
    total_cpu += c.cpu;
    total_mem += c.memory_gb;
  }

  std::vector<Node*> placement;
  if (request.network == NetworkMode::kHostlo) {
    placement = pick_split(request);
    if (placement.empty()) {
      done(Deployment{false, "no feasible split placement", nullptr, {}});
      return;
    }
  } else {
    Node* node = pick_node(total_cpu, total_mem);
    if (node == nullptr) {
      done(Deployment{false, "no node fits the whole pod", nullptr, {}});
      return;
    }
    placement.assign(request.containers.size(), node);
  }

  // Reserve resources.
  for (std::size_t i = 0; i < request.containers.size(); ++i) {
    placement[i]->used_cpu += request.containers[i].cpu;
    placement[i]->used_mem += request.containers[i].memory_gb;
  }

  pods_.push_back(std::make_unique<container::Pod>(request.name));
  container::Pod& pod = *pods_.back();

  // One fragment per distinct node, in placement order.
  std::map<Node*, container::Pod::Fragment*> fragments;
  for (Node* node : placement) {
    if (fragments.count(node) == 0) {
      fragments[node] = &pod.add_fragment(*node->vm);
    }
  }

  if (request.network == NetworkMode::kHostlo) {
    // Provision the shared localhost first, then boot.
    hostlo_->attach_pod(
        pod, [this, &pod, placement, request = std::move(request),
              done = std::move(done)](
                 std::vector<HostloCni::EndpointInfo>) mutable {
          boot_containers(pod, placement, request, std::move(done));
        });
    return;
  }
  boot_containers(pod, placement, request, std::move(done));
}

void Orchestrator::boot_containers(container::Pod& pod,
                                   const std::vector<Node*>& placement,
                                   const PodRequest& request,
                                   std::function<void(Deployment)> done) {
  auto result = std::make_shared<Deployment>();
  result->ok = true;
  result->pod = &pod;
  for (Node* n : placement) result->placement.push_back(n->vm);
  auto remaining = std::make_shared<std::size_t>(request.containers.size());
  auto shared_done =
      std::make_shared<std::function<void(Deployment)>>(std::move(done));

  // The per-node network attach: the first container of a fragment wires
  // the namespace; later ones join it (immediate attach).
  std::map<const container::Pod::Fragment*, bool> fragment_wired;

  for (std::size_t i = 0; i < request.containers.size(); ++i) {
    Node* node = placement[i];
    container::Pod::Fragment* fragment = nullptr;
    for (auto& f : pod.fragments()) {
      if (f->vm == node->vm) fragment = f.get();
    }
    assert(fragment != nullptr);

    container::Runtime::AttachFn attach;
    if (request.network == NetworkMode::kHostlo || fragment_wired[fragment]) {
      attach = [](container::Pod::Fragment&,
                  std::function<void(container::Runtime::AttachOutcome)>
                      cb) { cb({true, -1, net::Ipv4Address{}}); };
    } else {
      Cni::Options opts;
      opts.publish_ports = request.containers[i].publish_ports;
      Cni& cni = request.network == NetworkMode::kBrFusion
                     ? static_cast<Cni&>(*brfusion_)
                     : static_cast<Cni&>(*nat_);
      attach = cni.attach_fn(opts);
      fragment_wired[fragment] = true;
    }

    node->runtime->create_container(
        *fragment, request.containers[i].image, request.containers[i].name,
        std::move(attach),
        [this, result, remaining, shared_done](container::Container& c,
                                               sim::Duration) {
          if (c.state() != container::ContainerState::kRunning) {
            result->ok = false;
            result->reason = "container failed to start";
          }
          if (--*remaining == 0) {
            ++deployed_;
            (*shared_done)(*result);
          }
        });
  }
}

}  // namespace nestv::core
