#include "core/docker_net.hpp"

#include <cassert>

namespace nestv::core {

GuestDockerNetwork::GuestDockerNetwork(vmm::Vm& vm,
                                       const std::string& uplink,
                                       net::Ipv4Cidr subnet)
    : vm_(&vm), uplink_(uplink), subnet_(subnet) {
  auto& machine = vm.host();
  auto& engine = machine.engine();
  const auto& costs = machine.costs();

  gateway_ip_ = subnet_.host(1);

  docker0_ = std::make_unique<net::Bridge>(
      engine, vm.name() + "/docker0", costs, /*guest_level=*/true);
  docker0_->set_cpu(&vm.softirq(), sim::CpuCategory::kSoft);

  // The guest kernel owns the gateway address on the bridge.
  gw_port_ = std::make_unique<net::PortBackend>(
      engine, vm.name() + "/docker0-port", costs);
  net::Device::connect(*gw_port_, 0, *docker0_, docker0_->add_port());

  net::InterfaceConfig cfg;
  cfg.name = "docker0";
  cfg.mac = machine.allocate_mac();
  cfg.ip = gateway_ip_;
  cfg.subnet = subnet_;
  cfg.gso_bytes = costs.gso_nat_nested;
  vm.stack().add_interface(*gw_port_, cfg);
  vm.stack().set_forwarding(true);
  // br_netfilter: the guest NAT layer linearizes GSO frames (DESIGN.md).
  vm.stack().set_forced_resegment(costs.gso_nat_nested);
  // Guest-forwarding service-time noise (see set_forward_jitter).
  vm.stack().set_forward_jitter(0.7, machine.rng().fork().next_u64());

  // Expired FDB entries flush exactly the cached fast paths switched
  // through them (the bridge is the L2 hop of every cached NAT flow).
  docker0_->fdb().set_eviction_listener([this](net::MacAddress mac) {
    vm_->stack().flow_cache().invalidate_mac(mac);
  });

  // Masquerade container egress to the uplink address (docker's
  // `-t nat -A POSTROUTING -s 172.17.0.0/16 ! -o docker0 -j MASQUERADE`).
  const int up = vm.stack().ifindex_of(uplink);
  assert(up >= 0 && "GuestDockerNetwork requires a configured uplink");
  net::Rule masq;
  masq.match.src = subnet_;
  masq.match.out_iface = uplink;
  masq.target = net::TargetKind::kMasquerade;
  masq.nat_ip = vm.stack().iface_ip(up);
  masq.comment = "docker-masquerade";
  vm.stack().netfilter().add_nat_rule(net::Hook::kPostrouting, masq);
}

GuestDockerNetwork::Attachment GuestDockerNetwork::attach(
    container::Pod::Fragment& fragment, std::uint32_t gso_bytes) {
  auto& machine = vm_->host();
  auto veth = std::make_unique<net::VethPair>(
      machine.engine(),
      vm_->name() + "/veth" + std::to_string(veths_.size()),
      machine.costs());
  veth->set_cpu(&vm_->softirq(), sim::CpuCategory::kSoft);

  // Host-side end into docker0.
  net::Device::connect(veth->a(), 0, *docker0_, docker0_->add_port());

  // Container-side end becomes the fragment's eth0.
  const auto ip = subnet_.host(next_ip_++);
  net::InterfaceConfig cfg;
  cfg.name = "eth0";
  cfg.mac = machine.allocate_mac();
  cfg.ip = ip;
  cfg.subnet = subnet_;
  cfg.gso_bytes = gso_bytes;
  const int ifindex = fragment.stack->add_interface(veth->b(), cfg);
  fragment.stack->routes().add_default(gateway_ip_, ifindex);

  veths_.push_back(std::move(veth));
  return Attachment{ifindex, ip};
}

void GuestDockerNetwork::publish_port(std::uint16_t port,
                                      net::Ipv4Address container_ip) {
  for (const auto proto : {net::L4Proto::kTcp, net::L4Proto::kUdp}) {
    net::Rule dnat;
    dnat.match.proto = proto;
    dnat.match.dport = port;
    dnat.match.in_iface = uplink_;  // only traffic entering via the uplink
    dnat.target = net::TargetKind::kDnat;
    dnat.nat_ip = container_ip;
    dnat.nat_port = port;
    dnat.comment = "docker-publish-" + std::to_string(port);
    vm_->stack().netfilter().add_nat_rule(net::Hook::kPrerouting, dnat);
  }
}

std::size_t GuestDockerNetwork::unpublish_port(std::uint16_t port) {
  return vm_->stack().netfilter().remove_nat_rules(
      net::Hook::kPrerouting, "docker-publish-" + std::to_string(port));
}

}  // namespace nestv::core
