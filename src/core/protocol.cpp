#include "core/protocol.hpp"

#include <utility>

namespace nestv::core {

OrchVmmChannel::OrchVmmChannel(vmm::Vmm& vmm, sim::Duration one_way)
    : vmm_(&vmm), one_way_(one_way) {}

void OrchVmmChannel::request_nic(
    vmm::Vm& vm, std::function<void(vmm::Vmm::ProvisionedNic)> reply) {
  messages_ += 2;  // request + reply
  auto& engine = vmm_->machine().engine();
  const sim::Duration one_way = one_way_;
  engine.schedule_in(one_way, [this, &engine, &vm, one_way,
                               reply = std::move(reply)]() mutable {
    vmm_->provision_nic(
        vm, [&engine, one_way, reply = std::move(reply)](
                vmm::Vmm::ProvisionedNic nic) mutable {
          engine.schedule_in(one_way, [nic = std::move(nic),
                                       reply = std::move(reply)]() mutable {
            reply(std::move(nic));
          });
        });
  });
}

void OrchVmmChannel::release_nic(vmm::Vm& vm, net::MacAddress mac,
                                 std::function<void()> reply) {
  messages_ += 2;  // request + reply
  auto& engine = vmm_->machine().engine();
  const sim::Duration one_way = one_way_;
  engine.schedule_in(one_way, [this, &engine, &vm, mac, one_way,
                               reply = std::move(reply)]() mutable {
    vmm_->release_nic(vm, mac,
                      [&engine, one_way, reply = std::move(reply)]() mutable {
                        engine.schedule_in(one_way, std::move(reply));
                      });
  });
}

void OrchVmmChannel::request_hostlo(
    std::vector<vmm::Vm*> vms,
    std::function<void(vmm::Vmm::ProvisionedHostlo)> reply) {
  messages_ += 2;
  auto& engine = vmm_->machine().engine();
  const sim::Duration one_way = one_way_;
  engine.schedule_in(one_way, [this, &engine, one_way,
                               vms = std::move(vms),
                               reply = std::move(reply)]() mutable {
    vmm_->create_hostlo(
        vms, [&engine, one_way, reply = std::move(reply)](
                 vmm::Vmm::ProvisionedHostlo result) mutable {
          // ProvisionedHostlo is move-only in spirit (vector of endpoints);
          // wrap it for the copyable std::function requirement.
          auto shared = std::make_shared<vmm::Vmm::ProvisionedHostlo>(
              std::move(result));
          engine.schedule_in(one_way, [shared,
                                       reply = std::move(reply)]() mutable {
            reply(std::move(*shared));
          });
        });
  });
}

}  // namespace nestv::core
