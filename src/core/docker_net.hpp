// Per-VM Docker bridge networking (the *nested* virtualization layer that
// BrFusion removes): docker0 bridge, per-container veth, masquerade for
// egress, DNAT port publishing for ingress.
#pragma once

#include <memory>
#include <vector>

#include "container/pod.hpp"
#include "net/bridge.hpp"
#include "net/veth.hpp"
#include "vmm/vm.hpp"

namespace nestv::core {

class GuestDockerNetwork {
 public:
  /// Requires the VM's uplink interface (named `uplink`, usually "eth0")
  /// to be configured already: the masquerade rule rewrites container
  /// egress to that address, exactly like Docker's default bridge network.
  GuestDockerNetwork(vmm::Vm& vm, const std::string& uplink = "eth0",
                     net::Ipv4Cidr subnet = net::Ipv4Cidr(
                         net::Ipv4Address(172, 17, 0, 0), 16));

  GuestDockerNetwork(const GuestDockerNetwork&) = delete;
  GuestDockerNetwork& operator=(const GuestDockerNetwork&) = delete;

  struct Attachment {
    int ifindex = -1;
    net::Ipv4Address ip;
  };

  /// Creates a veth pair, plugs one end into docker0 and moves the other
  /// into the fragment's namespace as eth0 with the next free address and
  /// a default route via the bridge gateway.  `gso_bytes` models the
  /// br_netfilter-induced segmentation on this path (CostModel).
  Attachment attach(container::Pod::Fragment& fragment,
                    std::uint32_t gso_bytes);

  /// Publishes `port` (both TCP and UDP, as `-p port:port` does) by
  /// inserting DNAT rules on the VM's PREROUTING chain.
  void publish_port(std::uint16_t port, net::Ipv4Address container_ip);

  /// Withdraws a published port (container teardown); returns the number
  /// of rules removed.  Goes through the notifying netfilter API, so
  /// cached fast paths matching the rule are flushed.
  std::size_t unpublish_port(std::uint16_t port);

  [[nodiscard]] net::Bridge& bridge() { return *docker0_; }
  [[nodiscard]] net::Ipv4Address gateway_ip() const { return gateway_ip_; }
  [[nodiscard]] vmm::Vm& vm() { return *vm_; }

 private:
  vmm::Vm* vm_;
  std::string uplink_;
  net::Ipv4Cidr subnet_;
  net::Ipv4Address gateway_ip_;
  std::unique_ptr<net::Bridge> docker0_;
  std::unique_ptr<net::PortBackend> gw_port_;
  std::vector<std::unique_ptr<net::VethPair>> veths_;
  std::uint32_t next_ip_ = 2;
};

}  // namespace nestv::core
