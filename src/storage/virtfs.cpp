#include "storage/virtfs.hpp"

namespace nestv::storage {

HostFileStore::HostFileStore(vmm::PhysicalMachine& machine)
    : machine_(&machine),
      server_(&machine.make_kernel_worker("virtfs-server")) {}

bool HostFileStore::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

const HostFileStore::FileState* HostFileStore::stat(
    const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> HostFileStore::list(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

HostFileStore::FileState& HostFileStore::open_or_create(
    const std::string& path) {
  return files_[path];
}

VirtfsMount::VirtfsMount(HostFileStore& store, vmm::Vm& vm,
                         VirtfsCosts costs)
    : store_(&store), vm_(&vm), costs_(costs) {}

void VirtfsMount::op(std::uint64_t payload_bytes,
                     std::function<void()> host_action,
                     std::function<void()> reply) {
  auto& engine = vm_->host().engine();
  const auto host_work =
      costs_.host_op + static_cast<sim::Duration>(
                           costs_.host_byte *
                           static_cast<double>(payload_bytes));
  // Guest half of the syscall, then the transport, then the host service,
  // then the reply transport back into the guest.
  vm_->softirq().submit_as(
      sim::CpuCategory::kSys, costs_.guest_syscall,
      [this, &engine, host_work, host_action = std::move(host_action),
       reply = std::move(reply)]() mutable {
        engine.schedule_in(
            costs_.transport_rtt / 2,
            [this, &engine, host_work, host_action = std::move(host_action),
             reply = std::move(reply)]() mutable {
              store_->server().submit_as(
                  sim::CpuCategory::kSys, host_work,
                  [this, &engine, host_action = std::move(host_action),
                   reply = std::move(reply)]() mutable {
                    host_action();
                    engine.schedule_in(costs_.transport_rtt / 2,
                                       [this, reply = std::move(reply)] {
                                         ++ops_;
                                         reply();
                                       });
                  });
            });
      });
}

void VirtfsMount::write(const std::string& path, std::uint64_t bytes,
                        std::function<void(std::uint64_t)> done) {
  auto version = std::make_shared<std::uint64_t>(0);
  op(bytes,
     [this, path, bytes, version] {
       auto& f = store_->open_or_create(path);
       f.size += bytes;
       *version = ++f.version;
     },
     [version, done = std::move(done)] {
       if (done) done(*version);
     });
}

void VirtfsMount::read(const std::string& path,
                       std::function<void(ReadResult)> done) {
  auto result = std::make_shared<ReadResult>();
  // Host work scales with the current size; sample it at service time.
  op(store_->stat(path) != nullptr ? store_->stat(path)->size : 0,
     [this, path, result] {
       const auto* f = store_->stat(path);
       if (f != nullptr) {
         result->ok = true;
         result->bytes = f->size;
         result->version = f->version;
       }
     },
     [result, done = std::move(done)] {
       if (done) done(*result);
     });
}

void VirtfsMount::unlink(const std::string& path,
                         std::function<void(bool)> done) {
  auto existed = std::make_shared<bool>(false);
  op(0,
     [this, path, existed] { *existed = store_->files_.erase(path) > 0; },
     [existed, done = std::move(done)] {
       if (done) done(*existed);
     });
}

VirtfsMount& SharedVolume::mount_in(vmm::Vm& vm) {
  mounts_.push_back(std::make_unique<VirtfsMount>(*store_, vm));
  return *mounts_.back();
}

}  // namespace nestv::storage
