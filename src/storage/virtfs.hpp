// VirtFS-style shared volumes (Jujjuri et al. [20], section 4.3.1).
//
// The paper argues cross-VM pods also need shared *volumes*, and that
// VirtFS — a 9p-over-virtio para-virtualized filesystem — already solves
// it: "it allows, among other things, to mount the same file system into
// multiple guests".  This module models exactly that: a host-backed file
// store, per-VM mounts whose operations pay guest syscall + 9p round trip
// + host service costs, and write-through consistency so every mount
// observes the same versions (the property naive block sharing lacks).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "vmm/machine.hpp"
#include "vmm/vm.hpp"

namespace nestv::storage {

/// The host-side 9p server: authoritative file state.
class HostFileStore {
 public:
  struct FileState {
    std::uint64_t size = 0;
    std::uint64_t version = 0;  ///< bumped on every write
  };

  explicit HostFileStore(vmm::PhysicalMachine& machine);

  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] const FileState* stat(const std::string& path) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const;

  /// The host-side worker serving 9p requests.
  [[nodiscard]] sim::SerialResource& server() { return *server_; }
  [[nodiscard]] vmm::PhysicalMachine& machine() { return *machine_; }

 private:
  friend class VirtfsMount;
  FileState& open_or_create(const std::string& path);

  vmm::PhysicalMachine* machine_;
  sim::SerialResource* server_;
  std::map<std::string, FileState> files_;
};

/// Timing model for 9p operations (paper-era virtio-9p magnitudes).
struct VirtfsCosts {
  sim::Duration guest_syscall = 1200;   ///< VFS entry + v9fs client
  sim::Duration transport_rtt = 14000;  ///< virtio queue round trip
  sim::Duration host_op = 4000;         ///< host VFS service per op
  double host_byte = 0.25;              ///< host copy per payload byte
};

/// One VM's mount of the shared store.
class VirtfsMount {
 public:
  VirtfsMount(HostFileStore& store, vmm::Vm& vm, VirtfsCosts costs = {});

  struct ReadResult {
    bool ok = false;
    std::uint64_t bytes = 0;
    std::uint64_t version = 0;
  };

  /// Appends `bytes` to `path` (creating it); `done` fires with the new
  /// version once the host has acknowledged (write-through).
  void write(const std::string& path, std::uint64_t bytes,
             std::function<void(std::uint64_t version)> done);

  /// Reads the whole file; `done` fires with size + version, or ok=false.
  void read(const std::string& path,
            std::function<void(ReadResult)> done);

  /// Removes the file; `done(true)` if it existed.
  void unlink(const std::string& path, std::function<void(bool)> done);

  [[nodiscard]] std::uint64_t ops_completed() const { return ops_; }
  [[nodiscard]] vmm::Vm& vm() { return *vm_; }

 private:
  /// Runs one 9p op: guest syscall -> transport -> host service -> reply.
  void op(std::uint64_t payload_bytes, std::function<void()> host_action,
          std::function<void()> reply);

  HostFileStore* store_;
  vmm::Vm* vm_;
  VirtfsCosts costs_;
  std::uint64_t ops_ = 0;
};

/// A pod volume: one shared directory prefix mounted into several VMs.
class SharedVolume {
 public:
  SharedVolume(HostFileStore& store, std::string name)
      : store_(&store), name_(std::move(name)) {}

  /// Mounts the volume in `vm`; returns the mount (owned by the volume).
  VirtfsMount& mount_in(vmm::Vm& vm);

  [[nodiscard]] std::string path_of(const std::string& file) const {
    return name_ + "/" + file;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t mounts() const { return mounts_.size(); }

 private:
  HostFileStore* store_;
  std::string name_;
  std::vector<std::unique_ptr<VirtfsMount>> mounts_;
};

}  // namespace nestv::storage
