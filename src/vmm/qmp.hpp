// QMP-style management side channel.
//
// "When QEMU creates a VM, it also provides a side-channel management
// interface [...] One of the many management actions the VMM can execute,
// is to add or remove NICs to and from the VM" (section 3.2).  The channel
// models command round-trip latency plus the guest-side PCI hot-plug probe
// ("any modern OS is capable of detecting and using such hot-plugged
// devices") — the costs that could have hurt BrFusion's container start-up
// time in fig 8.
#pragma once

#include <functional>
#include <string>

#include "net/address.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace nestv::vmm {

/// Hot-plug latency model; medians chosen for a QEMU 3.x-era stack.
struct HotplugTiming {
  /// QMP command round-trip (UNIX socket + QEMU main loop dispatch).
  double qmp_rtt_mu = 13.7;      ///< lognormal mu (ns): e^13.7 ~ 0.9 ms
  double qmp_rtt_sigma = 0.25;
  /// Guest PCI rescan + virtio driver probe + netdev registration.
  double probe_mu = 15.9;        ///< e^15.9 ~ 8.0 ms
  double probe_sigma = 1.0;   ///< heavy tail: PCI rescan occasionally stalls
};

class QmpChannel {
 public:
  QmpChannel(sim::Engine& engine, sim::Rng rng, std::string vm_name,
             HotplugTiming timing = {});

  /// Executes device_add for a NIC; `done` fires (with the assigned MAC
  /// and total elapsed hot-plug time) once the guest has probed the device.
  void device_add_nic(net::MacAddress mac,
                      std::function<void(net::MacAddress mac,
                                         sim::Duration elapsed)> done);

  /// device_del: NIC removal (pod teardown); `done` fires after the QMP
  /// round-trip plus guest unbind.
  void device_del_nic(net::MacAddress mac, std::function<void()> done);

  [[nodiscard]] const std::string& vm_name() const { return vm_name_; }
  [[nodiscard]] std::uint64_t commands_executed() const { return commands_; }

 private:
  sim::Engine* engine_;
  sim::Rng rng_;
  std::string vm_name_;
  HotplugTiming timing_;
  std::uint64_t commands_ = 0;
};

}  // namespace nestv::vmm
