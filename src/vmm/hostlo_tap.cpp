#include "vmm/hostlo_tap.hpp"

#include <utility>

#include "vmm/virtio.hpp"

namespace nestv::vmm {

HostloTap::HostloTap(sim::Engine& engine, std::string name,
                     const sim::CostModel& costs,
                     sim::SerialResource* host_kernel)
    : engine_(&engine),
      name_(std::move(name)),
      costs_(&costs),
      host_kernel_(host_kernel) {}

int HostloTap::add_queue(VirtioNic& endpoint) {
  queues_.push_back(&endpoint);
  const int index = static_cast<int>(queues_.size()) - 1;
  endpoint.attach_hostlo(*this, index);
  return index;
}

void HostloTap::rx_from_queue(int from_queue, net::EthernetFrame frame) {
  (void)from_queue;  // the reflect includes the writer's own queue
  const auto& c = *costs_;
  const auto n = static_cast<sim::Duration>(queues_.size());
  // Reflect work scales with the number of served queues: one copy per
  // queue (this fan-out is Hostlo's scalability limit; see
  // bench/abl_hostlo_queues).
  const sim::Duration work =
      n * (c.hostlo_reflect_pkt +
           static_cast<sim::Duration>(c.hostlo_reflect_copy_byte *
                                      static_cast<double>(frame.wire_bytes())));
  auto reflect = [this, f = std::move(frame)]() mutable {
    ++reflected_;
    // Reflect-to-all-queues is the datapath's canonical duplication point:
    // every queue gets a genuine copy, except the last, which takes the
    // original.
    const std::size_t n = queues_.size();
    for (std::size_t i = 0; i < n; ++i) {
      ++deliveries_;
      if (i + 1 == n) {
        queues_[i]->deliver_to_guest(std::move(f));
      } else {
        queues_[i]->deliver_to_guest(f);
      }
    }
  };
  if (host_kernel_ != nullptr) {
    if (costs_->batch_size > 1) {
      if (reflect_sink_ == nullptr) {
        reflect_sink_ = std::make_unique<sim::BatchSink>(
            *host_kernel_, costs_->napi_budget);
      }
      reflect_sink_->submit_as(sim::CpuCategory::kSys, work,
                               std::move(reflect));
      return;
    }
    host_kernel_->submit_as(sim::CpuCategory::kSys, work, std::move(reflect));
  } else {
    engine_->schedule_in(work, std::move(reflect));
  }
}

}  // namespace nestv::vmm
