#include "vmm/fabric.hpp"

#include <stdexcept>
#include <string>

namespace nestv::vmm {

HierarchicalFabric::HierarchicalFabric(sim::Engine& engine,
                                       const sim::CostModel& costs,
                                       FabricConfig config,
                                       sim::ShardedConductor* conductor)
    : engine_(&engine),
      costs_(&costs),
      conductor_(conductor),
      config_(config) {
  if (config_.machines_per_rack < 1 || config_.spines < 1) {
    throw std::invalid_argument(
        "HierarchicalFabric: need machines_per_rack >= 1 and spines >= 1");
  }
  for (int s = 0; s < config_.spines; ++s) {
    // Round-robin the spine tier across shards: with every spine on one
    // engine, all cross-rack traffic serializes through that shard (and
    // its neighbours' windows collapse to one spine-link hop).  Keyed
    // wire delivery makes the placement invisible in the results.
    sim::Engine& home =
        (config_.distribute_spines && conductor != nullptr)
            ? conductor->shard(s % conductor->shards())
            : engine;
    // Spine salt offset keeps the (unused today) spine hash domain
    // disjoint from ToR salts should spines ever gain uplink groups.
    spines_.push_back(std::make_unique<net::FabricSwitch>(
        home, "fabric/spine" + std::to_string(s), costs, directory_,
        /*ecmp_salt=*/0x5350u + static_cast<std::uint32_t>(s)));
  }
}

void HierarchicalFabric::make_tor(int r, sim::Engine& engine) {
  auto tor = std::make_unique<net::FabricSwitch>(
      engine, "fabric/tor" + std::to_string(r), *costs_, directory_,
      /*ecmp_salt=*/static_cast<std::uint32_t>(r));
  std::vector<int> ports;
  for (auto& spine : spines_) {
    const int tp = tor->add_port();
    const int sp = spine->add_port();
    net::Device::connect_wire(conductor_, *tor, tp, *spine, sp,
                              costs_->spine_link_latency);
    tor->add_uplink(tp);
    ports.push_back(sp);
  }
  tors_.push_back(std::move(tor));
  spine_port_.push_back(std::move(ports));
}

void HierarchicalFabric::attach(PhysicalMachine& machine) {
  for (const Member& m : members_) {
    if (m.machine->config().bridge_subnet.network() ==
        machine.config().bridge_subnet.network()) {
      throw std::invalid_argument(
          "HierarchicalFabric::attach: machine '" + machine.config().name +
          "' reuses the VM subnet of '" + m.machine->config().name +
          "'; machines on one fabric need distinct VM subnets");
    }
  }
  if (conductor_ == nullptr && &machine.engine() != engine_) {
    throw std::invalid_argument(
        "HierarchicalFabric::attach: machine '" + machine.config().name +
        "' lives on a different engine; wiring across engines needs a "
        "ShardedConductor");
  }

  const int rack = rack_of(members_.size());
  if (static_cast<std::size_t>(rack) == tors_.size()) {
    // The ToR joins the shard of its rack's first machine: intra-rack
    // forwarding stays shard-local; only uplinks cross shards.
    make_tor(rack, machine.engine());
  }
  net::FabricSwitch& tor = *tors_[static_cast<std::size_t>(rack)];

  Member member;
  member.machine = &machine;
  member.ext_ip = config_.subnet.host(next_ip_++);
  member.port = std::make_unique<net::PortBackend>(
      machine.engine(), machine.config().name + "/ext0-port", *costs_);
  const int tor_port = tor.add_port();
  net::Device::connect_wire(conductor_, *member.port, 0, tor, tor_port,
                            costs_->fabric_hop_latency);

  net::InterfaceConfig cfg;
  cfg.name = "ext0";
  cfg.mac = machine.allocate_mac();
  cfg.ip = member.ext_ip;
  cfg.subnet = config_.subnet;
  cfg.gso_bytes = costs_->gso_virtio;  // physical NICs have TSO
  const int ext_if = machine.stack().add_interface(*member.port, cfg);

  // Static forwarding state: the machine's MAC at its ToR (downlink) and
  // at every spine (toward this rack), plus the proxy-ARP directory entry.
  tor.bind_mac(cfg.mac, tor_port);
  for (std::size_t s = 0; s < spines_.size(); ++s) {
    spines_[s]->bind_mac(cfg.mac,
                         spine_port_[static_cast<std::size_t>(rack)][s]);
  }
  directory_.mac_of_ip[member.ext_ip.value()] = cfg.mac;

  // Full-mesh routes: everyone reaches everyone's VM subnet through the
  // owner's external address (lookup is hashed, so table size is free).
  for (Member& other : members_) {
    const int other_ext = other.machine->stack().ifindex_of("ext0");
    machine.stack().routes().add(net::Route{
        other.machine->config().bridge_subnet, ext_if, other.ext_ip, 0});
    other.machine->stack().routes().add(net::Route{
        machine.config().bridge_subnet, other_ext, member.ext_ip, 0});
  }
  members_.push_back(std::move(member));
}

}  // namespace nestv::vmm
