// virtio-net device with a vhost backend.
//
// The guest side costs ring operations (avail/used ring updates + kick) on
// the guest's softirq vCPU; the host side is a vhost kernel worker thread
// that moves frames between the guest rings and a host TAP (or a Hostlo
// queue).  "All network interfaces in the VMs are based on virtio, and use
// Vhost in their backend" (section 5.1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/backend.hpp"
#include "net/tap.hpp"
#include "sim/burst_queue.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/test_hooks.hpp"

namespace nestv::vmm {

class HostloTap;

class VirtioNic : public net::InterfaceBackend {
 public:
  /// `guest_softirq` is the vCPU doing guest-side ring work; `vhost` the
  /// host kernel worker backing this device.  When `use_vhost` is false the
  /// device models QEMU userspace emulation (ablation abl_vhost).
  VirtioNic(sim::Engine& engine, std::string name,
            const sim::CostModel& costs, sim::SerialResource* guest_softirq,
            sim::SerialResource* vhost, bool use_vhost = true);

  /// Backs this NIC with a host TAP: guest TX writes to the tap fd, frames
  /// the tap reads from its network side are delivered to the guest.
  void attach_host_tap(net::TapDevice& tap);

  /// Backs this NIC with queue `queue_index` of a Hostlo device.
  void attach_hostlo(HostloTap& hostlo, int queue_index);

  // InterfaceBackend: guest stack side.
  void xmit(net::EthernetFrame frame) override;
  void set_rx(RxHandler handler) override { rx_ = std::move(handler); }
  void set_rx_train(RxTrainHandler handler) override {
    rx_train_ = std::move(handler);
  }
  [[nodiscard]] const std::string& backend_name() const override {
    return name_;
  }

  /// Host -> guest delivery (called by the tap fd handler / Hostlo).
  void deliver_to_guest(net::EthernetFrame frame);

  [[nodiscard]] std::uint64_t tx_frames() const { return tx_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_count_; }
  /// Burst-mode stats (zero when batch_size <= 1): guest->host doorbells
  /// actually rung, and vhost RX poll cycles.  tx_frames() - tx_kicks() is
  /// the number of suppressed notifications.
  [[nodiscard]] std::uint64_t tx_kicks() const { return tx_kicks_; }
  [[nodiscard]] std::uint64_t rx_polls() const { return rx_polls_; }

 private:
  [[nodiscard]] sim::Duration host_side_cost(
      const net::EthernetFrame& f) const;
  [[nodiscard]] bool batched() const {
    return costs_->batch_size > 1 ||
           sim::test_hooks::force_virtio_batching;
  }
  [[nodiscard]] sim::Duration guest_ring_work() const {
    // Hostlo endpoints lack the offload/batching features of vhost-net
    // devices: extra guest-side work per frame (CostModel).
    return costs_->virtio_ring_pkt +
           (hostlo_ != nullptr ? costs_->hostlo_endpoint_pkt : 0);
  }
  void schedule_guest(sim::Duration work, sim::InlineTask&& task);
  void tx_kick();
  void rx_poll();
  void rx_napi_poll();

  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  sim::SerialResource* guest_softirq_;
  sim::SerialResource* vhost_;
  bool use_vhost_;
  RxHandler rx_;
  RxTrainHandler rx_train_;

  net::TapDevice* host_tap_ = nullptr;
  HostloTap* hostlo_ = nullptr;
  int hostlo_queue_ = -1;

  // Burst mode: per-direction descriptor rings.  TX frames wait for the
  // (coalesced) kick; RX frames wait for the vhost NAPI poll, then for the
  // guest-side NAPI drain (rx_backlog_) on the softirq core — the backlog
  // is where bursts actually form while the softirq core is busy.
  sim::BurstQueue<net::EthernetFrame> tx_ring_;
  sim::BurstQueue<net::EthernetFrame> rx_ring_;
  sim::BurstQueue<net::EthernetFrame> rx_backlog_;
  bool tx_kick_armed_ = false;
  bool rx_poll_armed_ = false;
  bool rx_napi_armed_ = false;
  std::uint64_t tx_kicks_ = 0;
  std::uint64_t rx_polls_ = 0;

  std::uint64_t tx_ = 0;
  std::uint64_t rx_count_ = 0;
};

}  // namespace nestv::vmm
