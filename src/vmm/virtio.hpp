// virtio-net device with a vhost backend.
//
// The guest side costs ring operations (avail/used ring updates + kick) on
// the guest's softirq vCPU; the host side is a vhost kernel worker thread
// that moves frames between the guest rings and a host TAP (or a Hostlo
// queue).  "All network interfaces in the VMs are based on virtio, and use
// Vhost in their backend" (section 5.1).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/backend.hpp"
#include "net/tap.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"

namespace nestv::vmm {

class HostloTap;

class VirtioNic : public net::InterfaceBackend {
 public:
  /// `guest_softirq` is the vCPU doing guest-side ring work; `vhost` the
  /// host kernel worker backing this device.  When `use_vhost` is false the
  /// device models QEMU userspace emulation (ablation abl_vhost).
  VirtioNic(sim::Engine& engine, std::string name,
            const sim::CostModel& costs, sim::SerialResource* guest_softirq,
            sim::SerialResource* vhost, bool use_vhost = true);

  /// Backs this NIC with a host TAP: guest TX writes to the tap fd, frames
  /// the tap reads from its network side are delivered to the guest.
  void attach_host_tap(net::TapDevice& tap);

  /// Backs this NIC with queue `queue_index` of a Hostlo device.
  void attach_hostlo(HostloTap& hostlo, int queue_index);

  // InterfaceBackend: guest stack side.
  void xmit(net::EthernetFrame frame) override;
  void set_rx(RxHandler handler) override { rx_ = std::move(handler); }
  [[nodiscard]] const std::string& backend_name() const override {
    return name_;
  }

  /// Host -> guest delivery (called by the tap fd handler / Hostlo).
  void deliver_to_guest(net::EthernetFrame frame);

  [[nodiscard]] std::uint64_t tx_frames() const { return tx_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_count_; }

 private:
  [[nodiscard]] sim::Duration host_side_cost(
      const net::EthernetFrame& f) const;

  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  sim::SerialResource* guest_softirq_;
  sim::SerialResource* vhost_;
  bool use_vhost_;
  RxHandler rx_;

  net::TapDevice* host_tap_ = nullptr;
  HostloTap* hostlo_ = nullptr;
  int hostlo_queue_ = -1;

  std::uint64_t tx_ = 0;
  std::uint64_t rx_count_ = 0;
};

}  // namespace nestv::vmm
