#include "vmm/machine.hpp"

#include <atomic>

namespace nestv::vmm {

namespace {
// Per-process machine numbering.  Atomic because parallel bench sweeps
// (and conductor workers tearing worlds down) construct machines from
// several threads; the ordinal only namespaces MAC addresses, so which
// machine draws which number does not affect any simulated metric.
std::uint32_t next_machine_ordinal() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

PhysicalMachine::PhysicalMachine(sim::Engine& engine,
                                 const sim::CostModel& costs, Config config)
    : engine_(&engine),
      costs_(&costs),
      config_(std::move(config)),
      rng_(config_.seed) {
  machine_ordinal_ = next_machine_ordinal();
  host_account_ = &ledger_.account(config_.name);

  auto softirq = std::make_unique<sim::SerialResource>(
      engine, config_.name + "/softirq");
  softirq->bind(*host_account_, sim::CpuCategory::kSoft);
  host_softirq_ = softirq.get();
  resources_.push_back(std::move(softirq));

  bridge_ = std::make_unique<net::Bridge>(engine, config_.name + "/br0",
                                          costs, /*guest_level=*/false);
  bridge_->set_cpu(host_softirq_, sim::CpuCategory::kSoft);

  host_stack_ = std::make_unique<net::NetworkStack>(
      engine, config_.name, costs, host_softirq_);
  host_stack_->set_forwarding(true);
  host_stack_->netfilter().install_standing_rules(config_.standing_rules);

  // The host stack owns the bridge address (like virbr0's 192.168.122.1).
  host_port_ = std::make_unique<net::PortBackend>(
      engine, config_.name + "/br0-port", costs);
  // PortBackend pre-creates its port 0; give the bridge a fresh port.
  net::Device::connect(*host_port_, 0, *bridge_, bridge_->add_port());
  bridge_ip_ = config_.bridge_subnet.host(next_host_ip_++);
  net::InterfaceConfig cfg;
  cfg.name = "br0";
  cfg.mac = allocate_mac();
  cfg.ip = bridge_ip_;
  cfg.subnet = config_.bridge_subnet;
  cfg.gso_bytes = costs.gso_virtio;
  host_stack_->add_interface(*host_port_, cfg);
}

net::Ipv4Address PhysicalMachine::allocate_bridge_ip() {
  return config_.bridge_subnet.host(++next_host_ip_);
}

net::MacAddress PhysicalMachine::allocate_mac() {
  // The machine ordinal goes into the OUI-ish upper bytes so that MACs are
  // unique across every machine on one fabric (each machine has its own
  // counter; without the prefix two hosts would mint identical addresses).
  return net::MacAddress::local_from_id(
      (static_cast<std::uint64_t>(machine_ordinal_) << 24) |
      next_mac_id_++);
}

sim::SerialResource& PhysicalMachine::make_app_core(
    const std::string& process_name) {
  auto r = std::make_unique<sim::SerialResource>(
      *engine_, config_.name + "/" + process_name);
  r->bind(ledger_.account(config_.name + "/" + process_name),
          sim::CpuCategory::kUsr);
  sim::SerialResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

sim::SerialResource& PhysicalMachine::make_kernel_worker(
    const std::string& name) {
  auto r = std::make_unique<sim::SerialResource>(*engine_,
                                                 config_.name + "/" + name);
  // Kernel workers on behalf of guests: host "sys" time (the ~1.68 cores
  // the paper observes for vhost in section 5.3.4).
  r->bind(*host_account_, sim::CpuCategory::kSys);
  r->bind(ledger_.account(config_.name + "/kworkers"),
          sim::CpuCategory::kSys);
  sim::SerialResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

net::TapDevice& PhysicalMachine::make_tap(const std::string& name) {
  auto tap = std::make_unique<net::TapDevice>(
      *engine_, config_.name + "/" + name, *costs_);
  tap->set_cpu(host_softirq_, sim::CpuCategory::kSoft);
  net::Device::connect(*tap, 0, *bridge_, bridge_->add_port());
  net::TapDevice& ref = *tap;
  taps_.push_back(std::move(tap));
  return ref;
}

}  // namespace nestv::vmm
