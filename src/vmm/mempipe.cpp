#include "vmm/mempipe.hpp"

namespace nestv::vmm {

MemPipe::MemPipe(Vm& a, Vm& b, std::string name) : name_(std::move(name)) {
  a_.pipe = this;
  a_.vm = &a;
  a_.peer = &b_;
  a_.name = name_ + ".a";
  b_.pipe = this;
  b_.vm = &b;
  b_.peer = &a_;
  b_.name = name_ + ".b";
}

void MemPipe::Endpoint::xmit(net::EthernetFrame frame) {
  ++frames_tx;
  const auto& costs = vm->host().costs();
  // Sender: copy into the shared ring (guest kernel work).
  const sim::Duration send_work =
      costs.mempipe_pkt +
      static_cast<sim::Duration>(costs.mempipe_copy_byte *
                                 static_cast<double>(frame.wire_bytes()));
  Endpoint* dst = peer;
  vm->softirq().submit_as(
      sim::CpuCategory::kSys, send_work, [dst, f = std::move(frame)]() mutable {
        // Receiver: notification + copy out of the ring.
        const auto& c = dst->vm->host().costs();
        const sim::Duration recv_work =
            c.mempipe_pkt +
            static_cast<sim::Duration>(c.mempipe_copy_byte *
                                       static_cast<double>(f.wire_bytes()));
        dst->vm->softirq().submit_as(
            sim::CpuCategory::kSys, recv_work,
            [dst, f2 = std::move(f)]() mutable {
              if (dst->rx) dst->rx(std::move(f2));
            });
      });
}

}  // namespace nestv::vmm
