// Multi-host wiring: the physical top-of-rack switch.
//
// The paper's evaluation is single-host (Hostlo is by construction an
// *intra-host* device: its queues are host-kernel objects), but its
// derivative-cloud framing is a datacenter of many hosts.  This module
// provides the inter-host fabric: each PhysicalMachine exposes an external
// NIC on a shared L2 segment; host kernels route between their VM subnets.
// Cross-host pod traffic must then use an overlay (as Docker does) — while
// Hostlo cannot span hosts, which is exactly the scoping the paper gives it
// ("MemPipe ... for local VMs with SR-IOV ... for guests on different
// hosts" is the related work's contrast).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/bridge.hpp"
#include "sim/sharded_conductor.hpp"
#include "vmm/machine.hpp"

namespace nestv::vmm {

class PhysicalSwitch {
 public:
  /// `engine` hosts the switch itself (under a conductor: the shard whose
  /// engine this is — conventionally shard 0 — runs the ToR forwarding).
  /// With a `conductor`, attached machines may live on any of its shards;
  /// their uplinks become cross-shard fabric wires.  Without one, every
  /// machine must share `engine`.
  PhysicalSwitch(sim::Engine& engine, const sim::CostModel& costs,
                 net::Ipv4Cidr fabric_subnet = net::Ipv4Cidr(
                     net::Ipv4Address(10, 10, 0, 0), 24),
                 sim::ShardedConductor* conductor = nullptr);

  /// Connects `machine` to the fabric: creates its external interface
  /// ("ext0", addressed from the fabric subnet) and installs routes so
  /// every previously-attached machine can reach this machine's VM subnet
  /// and vice versa.  Machines must use distinct bridge subnets; a
  /// duplicate throws std::invalid_argument (two racks announcing the
  /// same prefix is a config error, not a programming invariant, so it
  /// must hold in Release builds too).
  void attach(PhysicalMachine& machine);

  [[nodiscard]] std::size_t machine_count() const {
    return members_.size();
  }
  [[nodiscard]] net::Bridge& fabric() { return *fabric_; }

 private:
  struct Member {
    PhysicalMachine* machine = nullptr;
    std::unique_ptr<net::PortBackend> port;
    net::Ipv4Address ext_ip;
  };

  sim::Engine* engine_;
  const sim::CostModel* costs_;
  sim::ShardedConductor* conductor_;
  net::Ipv4Cidr subnet_;
  std::unique_ptr<net::Bridge> fabric_;
  std::vector<Member> members_;
  std::uint32_t next_ip_ = 1;
};

}  // namespace nestv::vmm
