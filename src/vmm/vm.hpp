// A QEMU/KVM virtual machine: vCPUs, guest kernel stack, virtio NICs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/stack.hpp"
#include "net/stack_backend.hpp"
#include "net/stack_service.hpp"
#include "vmm/machine.hpp"
#include "vmm/virtio.hpp"

namespace nestv::vmm {

class Vm {
 public:
  struct Config {
    std::string name;
    int vcpus = 5;         ///< paper's VMs: 5 vCPUs, 4 GB (section 5.1)
    int memory_mb = 4096;
    int standing_rules = 6;  ///< Docker/K8s netfilter chains in the guest
    /// Which stack flavour the guest kernel runs (kFull = the pre-seam
    /// default; kFastPath = unikernel-style; kService = hosted on
    /// `stack_service`'s shared worker instead of the guest softirq vCPU).
    net::StackMode stack_mode = net::StackMode::kFull;
    /// Required when stack_mode == kService; must outlive the Vm.
    net::StackService* stack_service = nullptr;
  };

  Vm(PhysicalMachine& host, Config config);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] PhysicalMachine& host() { return *host_; }

  /// The guest kernel's init network namespace (flavour per stack_mode).
  [[nodiscard]] net::StackBackend& stack() { return *stack_; }
  /// The vCPU servicing guest softirq (bridge, netfilter, virtio rings).
  [[nodiscard]] sim::SerialResource& softirq() { return *softirq_; }
  /// Aggregate guest account ("vm/<name>", fig 6b's VM-level view).
  [[nodiscard]] sim::CpuAccount& account() { return *account_; }

  /// A guest application core; charges the per-app account, the VM
  /// aggregate, and the host's guest time.
  sim::SerialResource& make_app_core(const std::string& app_name);

  /// Creates a virtio NIC whose guest-side ring work runs on this VM's
  /// softirq vCPU, backed by a fresh vhost worker on the host.
  VirtioNic& create_nic(const std::string& nic_name, bool use_vhost = true);

  [[nodiscard]] const std::vector<std::unique_ptr<VirtioNic>>& nics() const {
    return nics_;
  }

 private:
  PhysicalMachine* host_;
  Config config_;
  sim::CpuAccount* account_;
  std::vector<std::unique_ptr<sim::SerialResource>> resources_;
  sim::SerialResource* softirq_;
  /// Self-owned stack (kFull / kFastPath); null in service mode.
  std::unique_ptr<net::StackBackend> owned_stack_;
  /// The guest's stack — owned_stack_.get(), or the service-hosted one.
  net::StackBackend* stack_;
  std::vector<std::unique_ptr<VirtioNic>> nics_;
};

}  // namespace nestv::vmm
