#include "vmm/vm.hpp"

#include <stdexcept>

namespace nestv::vmm {

Vm::Vm(PhysicalMachine& host, Config config)
    : host_(&host), config_(std::move(config)) {
  auto& ledger = host_->ledger();
  account_ = &ledger.account("vm/" + config_.name);

  auto softirq = std::make_unique<sim::SerialResource>(
      host_->engine(), config_.name + "/softirq");
  softirq->bind(*account_, sim::CpuCategory::kSoft);
  // vCPU time is host CPU lent to the guest (fig 14's "guest" rows).
  softirq->bind(host_->host_account(), sim::CpuCategory::kGuest);
  softirq_ = softirq.get();
  resources_.push_back(std::move(softirq));

  if (config_.stack_mode == net::StackMode::kService) {
    // NetKernel mode: no guest-side stack at all — protocol work runs on
    // the service's shared host worker, not this VM's softirq vCPU.
    if (config_.stack_service == nullptr) {
      throw std::invalid_argument("Vm '" + config_.name +
                                  "': kService needs a stack_service");
    }
    stack_ = &config_.stack_service->attach_guest("vm/" + config_.name);
  } else {
    owned_stack_ =
        net::make_stack(config_.stack_mode, host_->engine(),
                        "vm/" + config_.name, host_->costs(), softirq_);
    stack_ = owned_stack_.get();
  }
  // Docker/K8s guest chains only exist on stacks that run netfilter.
  if (stack_->has_netfilter()) {
    stack_->netfilter().install_standing_rules(config_.standing_rules);
  }
}

Vm::~Vm() {
  // A service-hosted stack belongs to the service; give it back so the
  // worker stops accepting this tenant's interfaces (retired, not
  // destroyed — in-flight items may still reference it).
  if (owned_stack_ == nullptr && config_.stack_service != nullptr) {
    config_.stack_service->detach_guest(*stack_);
  }
}

sim::SerialResource& Vm::make_app_core(const std::string& app_name) {
  auto r = std::make_unique<sim::SerialResource>(
      host_->engine(), config_.name + "/" + app_name);
  r->bind(host_->ledger().account("vm/" + config_.name + "/" + app_name),
          sim::CpuCategory::kUsr);
  r->bind(*account_, sim::CpuCategory::kUsr);
  r->bind(host_->host_account(), sim::CpuCategory::kGuest);
  sim::SerialResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

VirtioNic& Vm::create_nic(const std::string& nic_name, bool use_vhost) {
  auto& vhost =
      host_->make_kernel_worker("vhost-" + config_.name + "-" + nic_name);
  auto nic = std::make_unique<VirtioNic>(
      host_->engine(), config_.name + "/" + nic_name, host_->costs(),
      softirq_, &vhost, use_vhost);
  VirtioNic& ref = *nic;
  nics_.push_back(std::move(nic));
  return ref;
}

}  // namespace nestv::vmm
