#include "vmm/vm.hpp"

namespace nestv::vmm {

Vm::Vm(PhysicalMachine& host, Config config)
    : host_(&host), config_(std::move(config)) {
  auto& ledger = host_->ledger();
  account_ = &ledger.account("vm/" + config_.name);

  auto softirq = std::make_unique<sim::SerialResource>(
      host_->engine(), config_.name + "/softirq");
  softirq->bind(*account_, sim::CpuCategory::kSoft);
  // vCPU time is host CPU lent to the guest (fig 14's "guest" rows).
  softirq->bind(host_->host_account(), sim::CpuCategory::kGuest);
  softirq_ = softirq.get();
  resources_.push_back(std::move(softirq));

  stack_ = std::make_unique<net::NetworkStack>(
      host_->engine(), "vm/" + config_.name, host_->costs(), softirq_);
  stack_->netfilter().install_standing_rules(config_.standing_rules);
}

sim::SerialResource& Vm::make_app_core(const std::string& app_name) {
  auto r = std::make_unique<sim::SerialResource>(
      host_->engine(), config_.name + "/" + app_name);
  r->bind(host_->ledger().account("vm/" + config_.name + "/" + app_name),
          sim::CpuCategory::kUsr);
  r->bind(*account_, sim::CpuCategory::kUsr);
  r->bind(host_->host_account(), sim::CpuCategory::kGuest);
  sim::SerialResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

VirtioNic& Vm::create_nic(const std::string& nic_name, bool use_vhost) {
  auto& vhost =
      host_->make_kernel_worker("vhost-" + config_.name + "-" + nic_name);
  auto nic = std::make_unique<VirtioNic>(
      host_->engine(), config_.name + "/" + nic_name, host_->costs(),
      softirq_, &vhost, use_vhost);
  VirtioNic& ref = *nic;
  nics_.push_back(std::move(nic));
  return ref;
}

}  // namespace nestv::vmm
