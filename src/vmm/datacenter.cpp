#include "vmm/datacenter.hpp"

#include <stdexcept>

namespace nestv::vmm {

PhysicalSwitch::PhysicalSwitch(sim::Engine& engine,
                               const sim::CostModel& costs,
                               net::Ipv4Cidr fabric_subnet,
                               sim::ShardedConductor* conductor)
    : engine_(&engine),
      costs_(&costs),
      conductor_(conductor),
      subnet_(fabric_subnet) {
  fabric_ = std::make_unique<net::Bridge>(engine, "fabric/tor0", costs,
                                          /*guest_level=*/false);
}

void PhysicalSwitch::attach(PhysicalMachine& machine) {
  for (const Member& m : members_) {
    if (m.machine->config().bridge_subnet.network() ==
        machine.config().bridge_subnet.network()) {
      throw std::invalid_argument(
          "PhysicalSwitch::attach: machine '" + machine.config().name +
          "' reuses the VM subnet of '" + m.machine->config().name +
          "'; machines on one fabric need distinct VM subnets");
    }
  }
  if (conductor_ == nullptr && &machine.engine() != engine_) {
    throw std::invalid_argument(
        "PhysicalSwitch::attach: machine '" + machine.config().name +
        "' lives on a different engine; wiring across engines needs a "
        "ShardedConductor");
  }

  Member member;
  member.machine = &machine;
  member.ext_ip = subnet_.host(next_ip_++);
  // The NIC-side half of the uplink runs on the machine's own engine (=
  // shard); only the wire to the ToR may cross shards.
  member.port = std::make_unique<net::PortBackend>(
      machine.engine(), machine.config().name + "/ext0-port", *costs_);
  net::Device::connect_wire(conductor_, *member.port, 0, *fabric_,
                            fabric_->add_port(),
                            costs_->fabric_hop_latency);

  net::InterfaceConfig cfg;
  cfg.name = "ext0";
  cfg.mac = machine.allocate_mac();
  cfg.ip = member.ext_ip;
  cfg.subnet = subnet_;
  cfg.gso_bytes = costs_->gso_virtio;  // physical NICs have TSO
  const int ext_if = machine.stack().add_interface(*member.port, cfg);

  // Full-mesh routes: everyone reaches everyone's VM subnet through the
  // owner's external address.
  for (Member& other : members_) {
    const int other_ext = other.machine->stack().ifindex_of("ext0");
    machine.stack().routes().add(net::Route{
        other.machine->config().bridge_subnet, ext_if, other.ext_ip, 0});
    other.machine->stack().routes().add(net::Route{
        machine.config().bridge_subnet, other_ext, member.ext_ip, 0});
  }
  members_.push_back(std::move(member));
}

}  // namespace nestv::vmm
