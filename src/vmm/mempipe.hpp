// MemPipe-style cross-VM shared-memory transport (Zhang & Liu [41],
// discussed in section 4.3.2 and related work as "the best-suited solution
// for our context" for intra-host VM-to-VM data, and as a candidate
// localhost replacement the authors deemed challenging).
//
// Two co-resident VMs get endpoint devices backed by a shared-memory ring:
// a frame written on one side is memcpy'd into shared pages and the peer
// is notified — no vhost, no tap, no host bridge.  Contrast with Hostlo:
// cheaper per byte, but point-to-point only and, as the paper notes,
// "there is no concept of isolation" (any frame is visible to the peer
// unconditionally; nothing multiplexes more than two parties).
#pragma once

#include <cstdint>
#include <string>

#include "net/backend.hpp"
#include "vmm/vm.hpp"

namespace nestv::vmm {

class MemPipe {
 public:
  /// Establishes the shared ring between two VMs on the same host.
  MemPipe(Vm& a, Vm& b, std::string name);

  /// Endpoint devices, usable as a NetworkStack InterfaceBackend.
  [[nodiscard]] net::InterfaceBackend& endpoint_a() { return a_; }
  [[nodiscard]] net::InterfaceBackend& endpoint_b() { return b_; }

  [[nodiscard]] std::uint64_t frames_transferred() const {
    return a_.frames_tx + b_.frames_tx;
  }

 private:
  struct Endpoint : net::InterfaceBackend {
    MemPipe* pipe = nullptr;
    Vm* vm = nullptr;          ///< owning (sending) VM
    Endpoint* peer = nullptr;
    RxHandler rx;
    std::string name;
    std::uint64_t frames_tx = 0;

    void xmit(net::EthernetFrame frame) override;
    void set_rx(RxHandler handler) override { rx = std::move(handler); }
    [[nodiscard]] const std::string& backend_name() const override {
      return name;
    }
  };

  std::string name_;
  Endpoint a_;
  Endpoint b_;
};

}  // namespace nestv::vmm
