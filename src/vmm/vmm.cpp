#include "vmm/vmm.hpp"

#include <cassert>
#include <utility>

namespace nestv::vmm {

Vmm::Vmm(PhysicalMachine& machine) : machine_(&machine) {}

Vm& Vmm::create_vm(Vm::Config config) {
  auto vm = std::make_unique<Vm>(*machine_, std::move(config));
  Vm& ref = *vm;
  qmp_[vm.get()] = std::make_unique<QmpChannel>(
      machine_->engine(), machine_->rng().fork(), ref.name());
  vms_.push_back(std::move(vm));
  return ref;
}

Vm* Vmm::find_vm(const std::string& name) {
  for (auto& vm : vms_) {
    if (vm->name() == name) return vm.get();
  }
  return nullptr;
}

QmpChannel& Vmm::qmp(const Vm& vm) {
  const auto it = qmp_.find(&vm);
  assert(it != qmp_.end());
  return *it->second;
}

void Vmm::provision_nic(Vm& vm, std::function<void(ProvisionedNic)> done) {
  ++nic_count_;
  const auto mac = machine_->allocate_mac();
  const std::string nic_name = "podnic" + std::to_string(nic_count_);

  // Host side first (netdev_add): tap on the host bridge + vhost worker.
  net::TapDevice& tap = machine_->make_tap(vm.name() + "-" + nic_name);
  VirtioNic& nic = vm.create_nic(nic_name);
  nic.attach_host_tap(tap);

  // Then the QMP device_add and the guest probe.
  qmp(vm).device_add_nic(
      mac, [&nic, &tap, done = std::move(done)](net::MacAddress assigned,
                                                sim::Duration elapsed) {
        done(ProvisionedNic{&nic, assigned, &tap, elapsed});
      });
}

void Vmm::release_nic(Vm& vm, net::MacAddress mac,
                      std::function<void()> done) {
  ++released_;
  qmp(vm).device_del_nic(mac, std::move(done));
}

void Vmm::create_hostlo(std::span<Vm* const> vms,
                        std::function<void(ProvisionedHostlo)> done) {
  assert(!vms.empty());
  ++hostlo_count_;
  const std::string name = "hostlo" + std::to_string(hostlo_count_);
  auto& worker = machine_->make_kernel_worker(name);
  auto hostlo = std::make_unique<HostloTap>(
      machine_->engine(), machine_->config().name + "/" + name,
      machine_->costs(), &worker);
  HostloTap* tap = hostlo.get();
  hostlos_.push_back(std::move(hostlo));

  // One endpoint per VM; completion gathers asynchronously.
  auto result = std::make_shared<ProvisionedHostlo>();
  result->hostlo = tap;
  result->endpoints.resize(vms.size());
  auto remaining = std::make_shared<std::size_t>(vms.size());
  auto shared_done =
      std::make_shared<std::function<void(ProvisionedHostlo)>>(
          std::move(done));

  for (std::size_t i = 0; i < vms.size(); ++i) {
    Vm& vm = *vms[i];
    const auto mac = machine_->allocate_mac();
    VirtioNic& endpoint =
        vm.create_nic(name + "-ep" + std::to_string(i));
    tap->add_queue(endpoint);
    qmp(vm).device_add_nic(
        mac, [result, remaining, shared_done, i, &endpoint](
                 net::MacAddress assigned, sim::Duration elapsed) {
          result->endpoints[i] =
              ProvisionedNic{&endpoint, assigned, nullptr, elapsed};
          if (--*remaining == 0) (*shared_done)(std::move(*result));
        });
  }
}

}  // namespace nestv::vmm
