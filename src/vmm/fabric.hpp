// Hierarchical inter-host fabric: racks of machines under ToR switches,
// ToRs meshed through a spine tier.
//
// PhysicalSwitch (vmm/datacenter.hpp) wires every machine into one flat
// learning bridge — fine for a handful of hosts, but at macro scale it is
// both unphysical (one switch with hundreds of ports and a single shared
// FDB) and a scaling bottleneck (every frame of every machine serializes
// through one device on one shard).  HierarchicalFabric builds the
// two-tier Clos topology real datacenters use:
//
//     machine --(fabric_hop_latency)--> ToR --(spine_link_latency)--> spine
//
// Each rack's ToR lives on the shard of the rack's first machine, so
// intra-rack traffic never crosses shards; spines round-robin across the
// conductor's shards (FabricConfig::distribute_spines; without a conductor
// they live on the engine given to the constructor).  Cross-rack frames take
// machine -> ToR -> spine -> ToR -> machine, with the spine chosen per
// flow by the ToR's deterministic ECMP hash (net/fabric_switch.hpp) —
// multi-path routing that resolves identically at any shard/worker count.
//
// The conductor lookahead for a fabric built here must be
// min_link_latency(costs): no cross-machine influence can propagate
// faster than the shortest fabric link.
//
// L3 is the same derivative-cloud plan as PhysicalSwitch: every machine
// gets an external NIC ("ext0") addressed from the fabric subnet, and a
// full mesh of routes sends each remote machine's VM subnet via that
// machine's external address.  ARP for those gateway addresses is answered
// at the ToR from a fabric-wide directory (proxy ARP); requests never
// flood the fabric.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fabric_switch.hpp"
#include "sim/sharded_conductor.hpp"
#include "vmm/machine.hpp"

namespace nestv::vmm {

struct FabricConfig {
  /// External-address pool; /16 leaves room for thousands of machines.
  net::Ipv4Cidr subnet = net::Ipv4Cidr(net::Ipv4Address(10, 10, 0, 0), 16);
  int machines_per_rack = 16;
  int spines = 2;
  /// Round-robin spines across conductor shards instead of stacking the
  /// whole tier on the constructor's engine.  Placement is invisible in
  /// the results (keyed wire delivery), but hosting every spine on one
  /// shard turns that shard into a serialization hotspot at scale.  Only
  /// meaningful with a conductor; the fuzz execution shapes sample both
  /// settings.
  bool distribute_spines = true;
};

class HierarchicalFabric {
 public:
  /// `engine` hosts the spine tier when spines are not distributed (no
  /// conductor, or distribute_spines off).  With a `conductor`, machines
  /// may live on any shard (each rack's ToR joins its first machine's
  /// shard); without one every device must share `engine`.
  HierarchicalFabric(sim::Engine& engine, const sim::CostModel& costs,
                     FabricConfig config = {},
                     sim::ShardedConductor* conductor = nullptr);

  /// Connects `machine`: racks fill in attach order (machines_per_rack per
  /// ToR, ToRs created on demand).  Creates the machine's "ext0", binds
  /// its MAC at its ToR and every spine, registers it for proxy ARP, and
  /// installs the full-mesh VM-subnet routes.  Distinct VM subnets are
  /// required (duplicates throw std::invalid_argument).
  void attach(PhysicalMachine& machine);

  [[nodiscard]] std::size_t machine_count() const { return members_.size(); }
  [[nodiscard]] std::size_t rack_count() const { return tors_.size(); }
  [[nodiscard]] int rack_of(std::size_t machine_ordinal) const {
    return static_cast<int>(machine_ordinal) / config_.machines_per_rack;
  }
  [[nodiscard]] net::FabricSwitch& tor(std::size_t r) { return *tors_[r]; }
  [[nodiscard]] net::FabricSwitch& spine(std::size_t s) {
    return *spines_[s];
  }
  [[nodiscard]] std::size_t spine_count() const { return spines_.size(); }
  [[nodiscard]] const net::FabricDirectory& directory() const {
    return directory_;
  }

  /// Shortest link latency of a fabric built from `costs` — the conductor
  /// lookahead bound for hierarchical topologies.
  [[nodiscard]] static sim::Duration min_link_latency(
      const sim::CostModel& costs) {
    return costs.fabric_hop_latency < costs.spine_link_latency
               ? costs.fabric_hop_latency
               : costs.spine_link_latency;
  }

 private:
  struct Member {
    PhysicalMachine* machine = nullptr;
    std::unique_ptr<net::PortBackend> port;
    net::Ipv4Address ext_ip;
  };

  /// Creates the ToR for rack `r` on `engine` and meshes it to each spine.
  void make_tor(int r, sim::Engine& engine);

  sim::Engine* engine_;
  const sim::CostModel* costs_;
  sim::ShardedConductor* conductor_;
  FabricConfig config_;
  net::FabricDirectory directory_;
  std::vector<std::unique_ptr<net::FabricSwitch>> spines_;
  std::vector<std::unique_ptr<net::FabricSwitch>> tors_;
  /// spine_port_[r][s]: the spine-side port of the rack-r <-> spine-s link
  /// (where machine MACs of rack r are bound on spine s).
  std::vector<std::vector<int>> spine_port_;
  std::vector<Member> members_;
  std::uint32_t next_ip_ = 1;
};

}  // namespace nestv::vmm
