#include "vmm/virtio.hpp"

#include <cassert>
#include <utility>

#include "vmm/hostlo_tap.hpp"

namespace nestv::vmm {

VirtioNic::VirtioNic(sim::Engine& engine, std::string name,
                     const sim::CostModel& costs,
                     sim::SerialResource* guest_softirq,
                     sim::SerialResource* vhost, bool use_vhost)
    : engine_(&engine),
      name_(std::move(name)),
      costs_(&costs),
      guest_softirq_(guest_softirq),
      vhost_(vhost),
      use_vhost_(use_vhost) {}

void VirtioNic::attach_host_tap(net::TapDevice& tap) {
  assert(hostlo_ == nullptr && host_tap_ == nullptr);
  host_tap_ = &tap;
  tap.set_fd_handler(
      [this](net::EthernetFrame f) { deliver_to_guest(std::move(f)); });
}

void VirtioNic::attach_hostlo(HostloTap& hostlo, int queue_index) {
  assert(hostlo_ == nullptr && host_tap_ == nullptr);
  hostlo_ = &hostlo;
  hostlo_queue_ = queue_index;
}

sim::Duration VirtioNic::host_side_cost(const net::EthernetFrame& f) const {
  const auto& c = *costs_;
  if (use_vhost_) {
    return c.vhost_pkt +
           static_cast<sim::Duration>(c.vhost_copy_byte *
                                      static_cast<double>(f.wire_bytes()));
  }
  return c.qemu_emul_pkt +
         static_cast<sim::Duration>(c.qemu_emul_copy_byte *
                                    static_cast<double>(f.wire_bytes()));
}

void VirtioNic::xmit(net::EthernetFrame frame) {
  ++tx_;
  // Hostlo endpoints lack the offload/batching features of vhost-net
  // devices: extra guest-side work per frame (CostModel).
  const sim::Duration guest_work =
      costs_->virtio_ring_pkt +
      (hostlo_ != nullptr ? costs_->hostlo_endpoint_pkt : 0);
  auto to_host = [this, f = std::move(frame)]() mutable {
    const auto cost = host_side_cost(f);
    vhost_->submit_as(sim::CpuCategory::kSys, cost,
                      [this, f2 = std::move(f)]() mutable {
                        if (host_tap_ != nullptr) {
                          host_tap_->inject(std::move(f2));
                        } else if (hostlo_ != nullptr) {
                          hostlo_->rx_from_queue(hostlo_queue_,
                                                 std::move(f2));
                        }
                        // An unbacked NIC drops (cable unplugged).
                      });
  };
  if (guest_softirq_ != nullptr) {
    guest_softirq_->submit_as(sim::CpuCategory::kSoft, guest_work,
                              std::move(to_host));
  } else {
    engine_->schedule_in(guest_work, std::move(to_host));
  }
}

void VirtioNic::deliver_to_guest(net::EthernetFrame frame) {
  const sim::Duration guest_work =
      costs_->virtio_ring_pkt +
      (hostlo_ != nullptr ? costs_->hostlo_endpoint_pkt : 0);
  auto to_guest = [this, guest_work, f = std::move(frame)]() mutable {
    auto deliver = [this, f2 = std::move(f)]() mutable {
      ++rx_count_;
      if (rx_) rx_(std::move(f2));
    };
    if (guest_softirq_ != nullptr) {
      guest_softirq_->submit_as(sim::CpuCategory::kSoft, guest_work,
                                std::move(deliver));
    } else {
      engine_->schedule_in(guest_work, std::move(deliver));
    }
  };
  const auto cost = host_side_cost(frame);
  vhost_->submit_as(sim::CpuCategory::kSys, cost, std::move(to_guest));
}

}  // namespace nestv::vmm
