#include "vmm/virtio.hpp"

#include <cassert>
#include <utility>

#include "vmm/hostlo_tap.hpp"

namespace nestv::vmm {

VirtioNic::VirtioNic(sim::Engine& engine, std::string name,
                     const sim::CostModel& costs,
                     sim::SerialResource* guest_softirq,
                     sim::SerialResource* vhost, bool use_vhost)
    : engine_(&engine),
      name_(std::move(name)),
      costs_(&costs),
      guest_softirq_(guest_softirq),
      vhost_(vhost),
      use_vhost_(use_vhost) {}

void VirtioNic::attach_host_tap(net::TapDevice& tap) {
  assert(hostlo_ == nullptr && host_tap_ == nullptr);
  host_tap_ = &tap;
  tap.set_fd_handler(
      [this](net::EthernetFrame f) { deliver_to_guest(std::move(f)); });
}

void VirtioNic::attach_hostlo(HostloTap& hostlo, int queue_index) {
  assert(hostlo_ == nullptr && host_tap_ == nullptr);
  hostlo_ = &hostlo;
  hostlo_queue_ = queue_index;
}

sim::Duration VirtioNic::host_side_cost(const net::EthernetFrame& f) const {
  const auto& c = *costs_;
  if (use_vhost_) {
    return c.vhost_pkt +
           static_cast<sim::Duration>(c.vhost_copy_byte *
                                      static_cast<double>(f.wire_bytes()));
  }
  return c.qemu_emul_pkt +
         static_cast<sim::Duration>(c.qemu_emul_copy_byte *
                                    static_cast<double>(f.wire_bytes()));
}

void VirtioNic::schedule_guest(sim::Duration work, sim::InlineTask&& task) {
  if (guest_softirq_ != nullptr) {
    guest_softirq_->submit_as(sim::CpuCategory::kSoft, work,
                              std::move(task));
  } else {
    engine_->schedule_in(work, std::move(task));
  }
}

void VirtioNic::xmit(net::EthernetFrame frame) {
  ++tx_;
  if (batched()) {
    tx_ring_.push_back(std::move(frame));
    // Event suppression: while a kick is in flight the guest keeps filling
    // the avail ring without ringing the doorbell again.
    if (tx_kick_armed_) return;
    tx_kick_armed_ = true;
    ++tx_kicks_;
    schedule_guest(costs_->virtio_kick, [this] { tx_kick(); });
    return;
  }
  const sim::Duration guest_work = guest_ring_work();
  auto to_host = [this, f = std::move(frame)]() mutable {
    const auto cost = host_side_cost(f);
    vhost_->submit_as(sim::CpuCategory::kSys, cost,
                      [this, f2 = std::move(f)]() mutable {
                        if (host_tap_ != nullptr) {
                          host_tap_->inject(std::move(f2));
                        } else if (hostlo_ != nullptr) {
                          hostlo_->rx_from_queue(hostlo_queue_,
                                                 std::move(f2));
                        }
                        // An unbacked NIC drops (cable unplugged).
                      });
  };
  schedule_guest(guest_work, std::move(to_host));
}

void VirtioNic::tx_kick() {
  // tx_kick_armed_ stays set for the whole service cycle: the doorbell is
  // suppressed until the device finds the avail ring empty, so descriptors
  // queued while the chain is in flight accumulate into the next burst.
  const std::size_t budget = costs_->napi_budget > 0 ? costs_->napi_budget : 1;
  const std::size_t n = std::min(tx_ring_.size(), budget);
  if (n == 0) {
    tx_kick_armed_ = false;
    return;
  }
  if (n > 1) engine_->note_coalesced(n - 1);
  // Guest ring work for the whole burst runs as one softirq item; its
  // completion hands the burst to the vhost worker.  The frames stay in the
  // FIFO ring until the final stage — descriptors queued meanwhile land
  // behind them, so capturing just the count keeps the burst identity
  // without materializing a scratch vector per kick.
  const sim::Duration ring_work =
      static_cast<sim::Duration>(n) * guest_ring_work();
  schedule_guest(ring_work, [this, n] {
    sim::TimePoint end = 0;
    for (std::size_t i = 0; i < n; ++i) {
      end = vhost_->occupy(sim::CpuCategory::kSys, host_side_cost(tx_ring_[i]));
    }
    if (n > 1) engine_->note_coalesced(n - 1);
    engine_->schedule_at(end, [this, n] {
      for (std::size_t i = 0; i < n; ++i) {
        net::EthernetFrame f = std::move(tx_ring_.front());
        tx_ring_.pop_front();
        if (host_tap_ != nullptr) {
          host_tap_->inject(std::move(f));
        } else if (hostlo_ != nullptr) {
          hostlo_->rx_from_queue(hostlo_queue_, std::move(f));
        }
      }
      // NAPI loop: re-poll the ring before re-enabling notifications; a
      // non-empty ring is serviced without a fresh doorbell.
      tx_kick();
    });
  });
}

void VirtioNic::deliver_to_guest(net::EthernetFrame frame) {
  if (batched()) {
    rx_ring_.push_back(std::move(frame));
    // Interrupt suppression: the pending poll will see this descriptor.
    if (rx_poll_armed_) return;
    rx_poll_armed_ = true;
    ++rx_polls_;
    // Zero-work submission: the poll runs the moment the vhost worker is
    // free (immediately if idle), then services whatever accumulated.
    vhost_->submit_as(sim::CpuCategory::kSys, 0, [this] { rx_poll(); });
    return;
  }
  const sim::Duration guest_work = guest_ring_work();
  // Cost must be computed before the frame moves into the closure.
  const auto cost = host_side_cost(frame);
  auto to_guest = [this, guest_work, f = std::move(frame)]() mutable {
    auto deliver = [this, f2 = std::move(f)]() mutable {
      ++rx_count_;
      if (rx_) rx_(std::move(f2));
    };
    schedule_guest(guest_work, std::move(deliver));
  };
  vhost_->submit_as(sim::CpuCategory::kSys, cost, std::move(to_guest));
}

void VirtioNic::rx_poll() {
  // rx_poll_armed_ stays set through the drain: interrupts remain masked
  // while the NAPI loop runs, so frames landing mid-burst pile into the
  // ring and are picked up by the re-poll at completion.
  const std::size_t budget = costs_->napi_budget > 0 ? costs_->napi_budget : 1;
  const std::size_t n = std::min(rx_ring_.size(), budget);
  if (n == 0) {
    rx_poll_armed_ = false;
    return;
  }
  sim::TimePoint end = 0;
  for (std::size_t i = 0; i < n; ++i) {
    end = vhost_->occupy(sim::CpuCategory::kSys, host_side_cost(rx_ring_[i]));
  }
  if (n > 1) engine_->note_coalesced(n - 1);
  // As in tx_kick, the frames ride the FIFO ring itself to the completion
  // stage instead of a scratch vector.
  engine_->schedule_at(end, [this, n] {
    // Guest-side NAPI: the interrupt is injected only when the softirq core
    // is not already in a poll cycle.  While a cycle is pending or running —
    // which on a saturated softirq core is most of the time — frames pile
    // into the backlog and ride the next drain, so the train the stack (and
    // GRO) finally sees grows to the real burst size.
    for (std::size_t i = 0; i < n; ++i) {
      rx_backlog_.push_back(std::move(rx_ring_.front()));
      rx_ring_.pop_front();
    }
    if (!rx_napi_armed_) {
      rx_napi_armed_ = true;
      schedule_guest(costs_->virtio_kick, [this] { rx_napi_poll(); });
    }
    // NAPI loop: service descriptors that accumulated during the drain
    // before unmasking the interrupt.
    rx_poll();
  });
}

void VirtioNic::rx_napi_poll() {
  const std::size_t budget = costs_->napi_budget > 0 ? costs_->napi_budget : 1;
  const std::size_t n = std::min(rx_backlog_.size(), budget);
  if (n == 0) {
    rx_napi_armed_ = false;
    return;
  }
  std::vector<net::EthernetFrame> train;
  train.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    train.push_back(std::move(rx_backlog_.front()));
    rx_backlog_.pop_front();
  }
  if (n > 1) engine_->note_coalesced(n - 1);
  // Per-frame used-ring work for the whole train runs as one softirq item;
  // its completion hands the train to the stack.
  const sim::Duration work =
      static_cast<sim::Duration>(n) * guest_ring_work();
  schedule_guest(work, [this, t = std::move(train)]() mutable {
    rx_count_ += t.size();
    if (rx_train_) {
      rx_train_(std::move(t));
    } else if (rx_) {
      for (auto& f : t) rx_(std::move(f));
    }
    // NAPI loop: drain whatever accumulated during the delivery before
    // re-enabling the interrupt.
    rx_napi_poll();
  });
}

}  // namespace nestv::vmm
