// The physical host: CPU ledger, host kernel network stack, host bridge.
//
// Mirrors the paper's testbed node (section 5.1): a server whose host
// kernel runs a bridge ("the host's bridge") that multiplexes the physical
// NIC between VMs, with netfilter rules installed by the VMM's tooling.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/bridge.hpp"
#include "net/stack.hpp"
#include "net/tap.hpp"
#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace nestv::vmm {

class PhysicalMachine {
 public:
  struct Config {
    std::string name = "host";
    int cores = 12;  ///< 2x Xeon E5-2420 v2, HyperThreading off
    net::Ipv4Cidr bridge_subnet =
        net::Ipv4Cidr(net::Ipv4Address(192, 168, 122, 0), 24);
    std::uint64_t seed = 42;
    int standing_rules = 6;  ///< host netfilter bookkeeping chains
  };

  PhysicalMachine(sim::Engine& engine, const sim::CostModel& costs,
                  Config config);
  /// Default Config.
  PhysicalMachine(sim::Engine& engine, const sim::CostModel& costs)
      : PhysicalMachine(engine, costs, Config{}) {}

  PhysicalMachine(const PhysicalMachine&) = delete;
  PhysicalMachine& operator=(const PhysicalMachine&) = delete;

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const sim::CostModel& costs() const { return *costs_; }
  [[nodiscard]] sim::CpuLedger& ledger() { return ledger_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// The host kernel account ("host" in fig 14/15's host-side breakdown).
  [[nodiscard]] sim::CpuAccount& host_account() { return *host_account_; }
  [[nodiscard]] sim::SerialResource& host_softirq() { return *host_softirq_; }

  /// The host-level bridge all VM taps plug into (fig 1a "bridge" on the
  /// physical machine).
  [[nodiscard]] net::Bridge& bridge() { return *bridge_; }
  /// The host kernel's network stack (owns the bridge IP, NAT rules).
  [[nodiscard]] net::NetworkStack& stack() { return *host_stack_; }
  [[nodiscard]] net::Ipv4Address bridge_ip() const { return bridge_ip_; }

  /// Allocates a host IP on the bridge subnet (VM addresses, client iface).
  net::Ipv4Address allocate_bridge_ip();
  net::MacAddress allocate_mac();

  /// A userspace process pinned to its own host core (the Netperf /
  /// memtier / wrk2 client of section 5.1 runs "on different CPUs of the
  /// physical host").
  sim::SerialResource& make_app_core(const std::string& process_name);

  /// A host kernel worker thread (vhost, hostlo module work).
  sim::SerialResource& make_kernel_worker(const std::string& name);

  /// Creates a TAP attached to a fresh host bridge port, processing on the
  /// host softirq core.
  net::TapDevice& make_tap(const std::string& name);

 private:
  sim::Engine* engine_;
  const sim::CostModel* costs_;
  Config config_;
  sim::Rng rng_;
  sim::CpuLedger ledger_;
  sim::CpuAccount* host_account_;

  std::vector<std::unique_ptr<sim::SerialResource>> resources_;
  sim::SerialResource* host_softirq_;

  std::unique_ptr<net::Bridge> bridge_;
  std::unique_ptr<net::PortBackend> host_port_;
  std::unique_ptr<net::NetworkStack> host_stack_;
  net::Ipv4Address bridge_ip_;
  std::vector<std::unique_ptr<net::TapDevice>> taps_;

  std::uint32_t next_host_ip_ = 1;
  std::uint64_t next_mac_id_ = 1;
  std::uint32_t machine_ordinal_ = 0;  ///< process-wide instance number
};

}  // namespace nestv::vmm
