#include "vmm/qmp.hpp"

#include <utility>

namespace nestv::vmm {

QmpChannel::QmpChannel(sim::Engine& engine, sim::Rng rng,
                       std::string vm_name, HotplugTiming timing)
    : engine_(&engine),
      rng_(rng),
      vm_name_(std::move(vm_name)),
      timing_(timing) {}

void QmpChannel::device_add_nic(
    net::MacAddress mac,
    std::function<void(net::MacAddress, sim::Duration)> done) {
  ++commands_;
  const auto rtt = static_cast<sim::Duration>(
      rng_.lognormal(timing_.qmp_rtt_mu, timing_.qmp_rtt_sigma));
  const auto probe = static_cast<sim::Duration>(
      rng_.lognormal(timing_.probe_mu, timing_.probe_sigma));
  const sim::Duration total = rtt + probe;
  engine_->schedule_in(total, [mac, total, done = std::move(done)] {
    done(mac, total);
  });
}

void QmpChannel::device_del_nic(net::MacAddress mac,
                                std::function<void()> done) {
  (void)mac;
  ++commands_;
  const auto rtt = static_cast<sim::Duration>(
      rng_.lognormal(timing_.qmp_rtt_mu, timing_.qmp_rtt_sigma));
  const auto unbind = static_cast<sim::Duration>(
      rng_.lognormal(timing_.probe_mu - 0.7, timing_.probe_sigma));
  engine_->schedule_in(rtt + unbind, std::move(done));
}

}  // namespace nestv::vmm
