// Hostlo: the paper's core Section 4 contribution — a modified TAP device
// in the *host* kernel that acts as a loopback interface multiplexed
// between several VMs:
//
//   "- it provides at least one RX/TX queue for each VM that is served;
//    - it sends back any received Ethernet frame to all of its queues."
//
// Each queue backs one endpoint VirtioNic hot-plugged into a participating
// VM; the pod fragment in that VM uses the endpoint as its localhost
// interface.  Reflection work runs on a host-kernel resource ("as it is
// implemented a kernel module of the host, this added load may be seen in
// the sys CPU usage category", section 5.3.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace nestv::vmm {

class VirtioNic;

class HostloTap {
 public:
  HostloTap(sim::Engine& engine, std::string name,
            const sim::CostModel& costs, sim::SerialResource* host_kernel);

  /// Adds an RX/TX queue pair served by `endpoint`; returns queue index.
  int add_queue(VirtioNic& endpoint);

  /// A frame written into queue `from_queue` by its VM.  Reflected, at the
  /// Ethernet level, to *all* queues (including the writer's own — the
  /// guest stack's MAC filter discards the self-copy, at a small cost that
  /// is part of the design's measured overhead).
  void rx_from_queue(int from_queue, net::EthernetFrame frame);

  [[nodiscard]] int queue_count() const {
    return static_cast<int>(queues_.size());
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t frames_reflected() const { return reflected_; }
  /// Total endpoint deliveries (frames_reflected * queue_count, minus any
  /// queues added mid-flight).
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

 private:
  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  sim::SerialResource* host_kernel_;
  std::vector<VirtioNic*> queues_;
  /// Burst mode (CostModel::batch_size > 1): reflects accumulated on the
  /// host kernel share one drain event instead of one completion each.
  std::unique_ptr<sim::BatchSink> reflect_sink_;
  std::uint64_t reflected_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace nestv::vmm
