// The VMM: the management entity the orchestrator talks to.
//
// Implements the two paper protocols:
//  * BrFusion (section 3.1): "the orchestrator asks the VMM for a new NIC
//    to be added to the VM [...]; the VMM adds the new NIC to the VM and
//    configures it [plugs it into a bridge on the host]; the VMM sends the
//    orchestrator some sort of identifier of the new NIC (such as the MAC
//    address)".
//  * Hostlo (section 4.1): "the orchestrator asks the VMM for a new Hostlo
//    for the pod [...]; the VMM creates the new Hostlo, and multiplexes it
//    between the specified VMs".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vmm/hostlo_tap.hpp"
#include "vmm/machine.hpp"
#include "vmm/qmp.hpp"
#include "vmm/vm.hpp"

namespace nestv::vmm {

class Vmm {
 public:
  explicit Vmm(PhysicalMachine& machine);

  [[nodiscard]] PhysicalMachine& machine() { return *machine_; }

  Vm& create_vm(Vm::Config config);
  [[nodiscard]] Vm* find_vm(const std::string& name);
  [[nodiscard]] QmpChannel& qmp(const Vm& vm);

  /// Result of a BrFusion NIC provisioning.
  struct ProvisionedNic {
    VirtioNic* nic = nullptr;          ///< guest-side endpoint (unattached)
    net::MacAddress mac;               ///< the identifier sent back (step 3)
    net::TapDevice* host_tap = nullptr;
    sim::Duration hotplug_elapsed = 0;
  };

  /// BrFusion: hot-plugs a fresh NIC into `vm`, backed by a tap on the
  /// host bridge.  `done` fires when the guest has probed the device; the
  /// caller (CNI plugin) then moves the NIC into the pod namespace.
  void provision_nic(Vm& vm, std::function<void(ProvisionedNic)> done);

  /// BrFusion teardown: hot-unplugs a previously provisioned NIC via QMP
  /// device_del.  `done` fires after the command round-trip plus guest
  /// unbind; the caller must have detached the NIC from its stack first.
  void release_nic(Vm& vm, net::MacAddress mac, std::function<void()> done);

  [[nodiscard]] std::uint64_t nics_released() const { return released_; }

  /// Result of a Hostlo creation.
  struct ProvisionedHostlo {
    HostloTap* hostlo = nullptr;
    /// One endpoint per requested VM, in request order.
    std::vector<ProvisionedNic> endpoints;
  };

  /// Hostlo: creates the multi-queue loopback TAP and hot-plugs one
  /// endpoint NIC into each VM.  `done` fires when every guest has probed
  /// its endpoint.
  void create_hostlo(std::span<Vm* const> vms,
                     std::function<void(ProvisionedHostlo)> done);

  [[nodiscard]] std::uint64_t nics_provisioned() const { return nic_count_; }
  [[nodiscard]] std::uint64_t hostlos_created() const {
    return hostlo_count_;
  }

 private:
  PhysicalMachine* machine_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::map<const Vm*, std::unique_ptr<QmpChannel>> qmp_;
  std::vector<std::unique_ptr<HostloTap>> hostlos_;
  std::uint64_t nic_count_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t hostlo_count_ = 0;
};

}  // namespace nestv::vmm
