#include "trace/google_trace.hpp"

#include <algorithm>
#include <cmath>

namespace nestv::trace {

std::vector<orch::UserWorkload> generate_google_like_trace(
    const TraceConfig& config) {
  sim::Rng rng(config.seed);
  std::vector<orch::UserWorkload> users;
  users.reserve(static_cast<std::size_t>(config.users));

  std::uint32_t next_pod_id = 1;
  for (int u = 0; u < config.users; ++u) {
    sim::Rng user_rng = rng.fork();
    orch::UserWorkload user;
    user.user_id = static_cast<std::uint32_t>(u + 1);

    const int pods = static_cast<int>(std::min<double>(
        std::floor(user_rng.pareto(1.0, config.pods_alpha)),
        config.max_pods_per_user));
    for (int p = 0; p < pods; ++p) {
      orch::PodSpec pod;
      pod.pod_id = next_pod_id++;

      // Geometric container count (pods are small groups of tasks).
      int n = 1;
      while (n < config.max_containers &&
             user_rng.chance(config.containers_p)) {
        ++n;
      }

      // Containers of one pod share a base size (tasks of a job are
      // homogeneous in the Google trace) with per-container wobble.
      const double base_cpu = std::min(
          user_rng.lognormal(config.cpu_mu, config.cpu_sigma),
          config.max_container_size);
      for (int c = 0; c < n; ++c) {
        orch::ContainerDemand d;
        d.cpu = std::min(base_cpu * user_rng.lognormal(0.0, 0.18),
                         config.max_container_size);
        d.mem = std::min(
            d.cpu * user_rng.lognormal(config.mem_ratio_mu,
                                       config.mem_ratio_sigma),
            config.max_container_size);
        pod.containers.push_back(d);
      }
      // Whole-pod placement requires a pod to fit the largest machine;
      // clip pods that drew an oversized total (the real trace's jobs are
      // pre-filtered the same way by construction of the experiment).
      const auto total = pod.total();
      const double overflow =
          std::max(total.cpu, total.mem) / config.max_container_size;
      if (overflow > 1.0) {
        for (auto& d : pod.containers) {
          d.cpu /= overflow;
          d.mem /= overflow;
        }
      }
      user.pods.push_back(std::move(pod));
    }
    users.push_back(std::move(user));
  }
  return users;
}

TraceStats summarize(const std::vector<orch::UserWorkload>& users) {
  TraceStats s;
  s.users = static_cast<int>(users.size());
  double cpu_sum = 0.0;
  for (const auto& u : users) {
    s.pods += u.pods.size();
    s.max_pods_per_user = std::max<std::uint64_t>(s.max_pods_per_user,
                                                  u.pods.size());
    for (const auto& p : u.pods) {
      s.containers += p.containers.size();
      for (const auto& c : p.containers) {
        cpu_sum += c.cpu;
        s.max_container_cpu = std::max(s.max_container_cpu, c.cpu);
      }
    }
  }
  if (s.containers > 0) {
    s.mean_container_cpu = cpu_sum / static_cast<double>(s.containers);
  }
  if (s.users > 0) {
    s.mean_pods_per_user =
        static_cast<double>(s.pods) / static_cast<double>(s.users);
  }
  return s;
}

}  // namespace nestv::trace
