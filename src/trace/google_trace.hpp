// Synthetic stand-in for the Google cluster traces (Reiss et al. [29]).
//
// The real 2011 trace is an external dataset this reproduction does not
// ship.  The fig 9 cost simulation only consumes per-user lists of pods
// with per-container (cpu, mem) requests normalized to the largest machine
// — so we generate a deterministic synthetic population with the published
// trace's qualitative shape:
//   * per-user job counts are heavy-tailed (most users run a handful of
//     pods, a few run hundreds);
//   * task resource requests are small and right-skewed (medians well
//     under 2% of a machine, with rare large tasks);
//   * cpu and memory requests are positively correlated;
//   * jobs group 1..~10 tasks of similar size (our pod = job, container =
//     task group slice).
// The substitution is recorded in DESIGN.md section 2.
#pragma once

#include <cstdint>
#include <vector>

#include "orch/cluster.hpp"
#include "sim/rng.hpp"

namespace nestv::trace {

struct TraceConfig {
  std::uint64_t seed = 2019;
  /// "among 492 users in the Google traces" (section 5.3.1).
  int users = 492;
  /// Pareto shape for pods-per-user (smaller = heavier tail).
  double pods_alpha = 1.1;
  int max_pods_per_user = 400;
  /// Lognormal (mu, sigma) of a container's cpu request (relative units).
  double cpu_mu = -4.3;    ///< e^-4.3 ~ 1.4% of a 24xlarge
  double cpu_sigma = 1.05;
  /// Memory correlated with cpu: mem = cpu * lognormal(ratio).
  double mem_ratio_mu = 0.0;
  double mem_ratio_sigma = 0.45;
  /// Container count per pod: 1 + min(geometric, max-1).
  double containers_p = 0.40;
  int max_containers = 10;
  /// Cap any single container at this fraction of the largest VM.
  double max_container_size = 0.9;
};

/// Deterministically generates the synthetic user population.
[[nodiscard]] std::vector<orch::UserWorkload> generate_google_like_trace(
    const TraceConfig& config = {});

/// Summary statistics used by tests to validate the generator's shape.
struct TraceStats {
  int users = 0;
  std::uint64_t pods = 0;
  std::uint64_t containers = 0;
  double mean_container_cpu = 0.0;
  double max_container_cpu = 0.0;
  double mean_pods_per_user = 0.0;
  std::uint64_t max_pods_per_user = 0;
};
[[nodiscard]] TraceStats summarize(
    const std::vector<orch::UserWorkload>& users);

}  // namespace nestv::trace
