// The fig 9 schedulers (section 5.3.1).
//
// Baseline — vanilla Kubernetes, whole-pod placement:
//   1. per user, start with no VMs;
//   2. pods scheduled offline, biggest first;
//   3. (a) try the already-bought VM that best fits under Kubernetes's
//      "most requested" policy (among VMs with room, pick the one with the
//      most requested resources — a grouping strategy), otherwise
//      (b) buy the cheapest VM model that can host the whole pod.
//
// Hostlo — improvement pass enabled by cross-VM pods: move containers to
// the VMs with the most wasted resources, smallest containers first, to
// empty VMs entirely or shrink them to cheaper models.
#pragma once

#include "orch/cluster.hpp"
#include "orch/pricing.hpp"

namespace nestv::orch {

/// Node-selection policy for step 3(a).  The paper simulates Kubernetes's
/// "most requested" (grouping); the alternatives quantify that choice
/// (bench/abl_sched_policy).
enum class PlacementPolicy {
  kMostRequested,   ///< pick the fullest VM that fits (grouping)
  kLeastRequested,  ///< pick the emptiest VM that fits (spreading)
  kFirstFit,        ///< pick the first bought VM that fits
};

[[nodiscard]] const char* to_string(PlacementPolicy p);

class KubernetesScheduler {
 public:
  explicit KubernetesScheduler(
      const AwsM5Catalog& catalog,
      PlacementPolicy policy = PlacementPolicy::kMostRequested)
      : catalog_(&catalog), policy_(policy) {}

  /// Whole-pod, biggest-first offline placement for one user.
  [[nodiscard]] Placement schedule(const UserWorkload& user) const;

  [[nodiscard]] PlacementPolicy policy() const { return policy_; }

 private:
  const AwsM5Catalog* catalog_;
  PlacementPolicy policy_;
};

class HostloRescheduler {
 public:
  explicit HostloRescheduler(const AwsM5Catalog& catalog)
      : catalog_(&catalog) {}

  /// Improves a Kubernetes placement using cross-VM pod deployment:
  /// containers (not pods) become the movable unit.  Returns the improved
  /// placement; never returns one costing more than the input.
  [[nodiscard]] Placement improve(const UserWorkload& user,
                                  const Placement& base) const;

 private:
  const AwsM5Catalog* catalog_;
};

/// Per-user comparison record for the fig 9 histogram.
struct SavingsRecord {
  std::uint32_t user_id = 0;
  double k8s_cost = 0.0;
  double hostlo_cost = 0.0;

  [[nodiscard]] double absolute_saving() const {
    return k8s_cost - hostlo_cost;
  }
  [[nodiscard]] double relative_saving() const {
    return k8s_cost > 0.0 ? absolute_saving() / k8s_cost : 0.0;
  }
};

}  // namespace nestv::orch
