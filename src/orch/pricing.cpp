#include "orch/pricing.hpp"

namespace nestv::orch {

AwsM5Catalog::AwsM5Catalog() {
  // Table 2: AWS EC2 VM m5 models used to simulate Hostlo money savings.
  models_ = {
      {"m5.large", 2, 8, 0.0208, 0.0208, 0.112},
      {"m5.xlarge", 4, 16, 0.0417, 0.0417, 0.224},
      {"m5.2xlarge", 8, 32, 0.0833, 0.0833, 0.448},
      {"m5.4xlarge", 16, 64, 0.1667, 0.1667, 0.896},
      {"m5.12xlarge", 48, 192, 0.5, 0.5, 2.689},
      {"m5.24xlarge", 96, 384, 1.0, 1.0, 5.376},
  };
}

const VmModel* AwsM5Catalog::cheapest_fitting(double cpu, double mem) const {
  for (const VmModel& m : models_) {  // already sorted by price
    if (m.cpu_rel >= cpu && m.mem_rel >= mem) return &m;
  }
  return nullptr;
}

const VmModel* AwsM5Catalog::by_name(const std::string& name) const {
  for (const VmModel& m : models_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace nestv::orch
