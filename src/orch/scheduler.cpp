#include "orch/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace nestv::orch {
namespace {

/// Kubernetes "most requested" score: among VMs that fit, prefer the one
/// with the most requested (least free) resources — grouping.
double requested_score(const PlacedVm& vm) {
  const double cpu_frac = vm.used_cpu / vm.model->cpu_rel;
  const double mem_frac = vm.used_mem / vm.model->mem_rel;
  return cpu_frac + mem_frac;
}

/// Waste score: free capacity, normalized; used to pick move targets.
double waste_score(const PlacedVm& vm) {
  return vm.free_cpu() + vm.free_mem();
}

}  // namespace

const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kMostRequested: return "most-requested";
    case PlacementPolicy::kLeastRequested: return "least-requested";
    case PlacementPolicy::kFirstFit: return "first-fit";
  }
  return "?";
}

Placement KubernetesScheduler::schedule(const UserWorkload& user) const {
  Placement placement;

  // Biggest pods first (by total cpu+mem demand).
  std::vector<const PodSpec*> pods;
  pods.reserve(user.pods.size());
  for (const auto& p : user.pods) pods.push_back(&p);
  std::sort(pods.begin(), pods.end(), [](const PodSpec* a, const PodSpec* b) {
    const auto ta = a->total();
    const auto tb = b->total();
    const double sa = ta.cpu + ta.mem;
    const double sb = tb.cpu + tb.mem;
    if (sa != sb) return sa > sb;
    return a->pod_id < b->pod_id;  // deterministic tie-break
  });

  for (const PodSpec* pod : pods) {
    const auto demand = pod->total();

    // (a) Best already-bought VM that fits, under the configured policy.
    PlacedVm* best = nullptr;
    for (auto& vm : placement.vms) {
      if (!vm.fits(demand.cpu, demand.mem)) continue;
      switch (policy_) {
        case PlacementPolicy::kMostRequested:
          if (best == nullptr ||
              requested_score(vm) > requested_score(*best)) {
            best = &vm;
          }
          break;
        case PlacementPolicy::kLeastRequested:
          if (best == nullptr ||
              requested_score(vm) < requested_score(*best)) {
            best = &vm;
          }
          break;
        case PlacementPolicy::kFirstFit:
          if (best == nullptr) best = &vm;
          break;
      }
    }
    if (best == nullptr) {
      // (b) Buy the cheapest model hosting the whole pod.
      const VmModel* model =
          catalog_->cheapest_fitting(demand.cpu, demand.mem);
      if (model == nullptr) {
        // Pod larger than the largest VM: vanilla Kubernetes simply cannot
        // place it; the paper's traces do not contain such pods, but be
        // safe and put it on a dedicated largest model (oversubscribed).
        model = &catalog_->largest();
      }
      placement.vms.push_back(PlacedVm{model, 0.0, 0.0, {}});
      best = &placement.vms.back();
    }
    for (std::uint32_t c = 0; c < pod->containers.size(); ++c) {
      const auto& d = pod->containers[c];
      best->add(d.cpu, d.mem, pod->pod_id, c);
    }
  }
  return placement;
}

Placement HostloRescheduler::improve(const UserWorkload& user,
                                     const Placement& base) const {
  Placement improved = base;

  // Demand lookup: (pod, container) -> demand.
  const auto demand_of = [&user](std::uint32_t pod_id, std::uint32_t c) {
    for (const auto& p : user.pods) {
      if (p.pod_id == pod_id) return p.containers[c];
    }
    assert(false && "unknown pod in placement");
    return ContainerDemand{};
  };

  // Pass 1 — eliminate VMs: try to relocate every container of the least
  // utilized VM into the others' waste, smallest containers first, targets
  // with the most waste first.  Repeat until no VM can be emptied.
  bool progressed = true;
  while (progressed) {
    progressed = false;

    // Candidate source: least utilized VM (most relative waste).
    std::vector<std::size_t> order(improved.vms.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return requested_score(improved.vms[a]) <
             requested_score(improved.vms[b]);
    });

    for (const std::size_t src_idx : order) {
      if (improved.vms.size() <= 1) break;
      // Work on a copy of the target set so a failed attempt is free.
      Placement trial = improved;
      PlacedVm& src = trial.vms[src_idx];

      std::vector<std::pair<std::uint32_t, std::uint32_t>> items =
          src.placed;
      std::sort(items.begin(), items.end(), [&](const auto& a,
                                                const auto& b) {
        const auto da = demand_of(a.first, a.second);
        const auto db = demand_of(b.first, b.second);
        const double sa = da.cpu + da.mem;
        const double sb = db.cpu + db.mem;
        if (sa != sb) return sa < sb;  // smallest containers first
        return a < b;
      });

      bool all_moved = true;
      for (const auto& [pod_id, c] : items) {
        const auto d = demand_of(pod_id, c);
        // Target: the other VM with the most waste that fits.
        PlacedVm* target = nullptr;
        for (std::size_t t = 0; t < trial.vms.size(); ++t) {
          if (t == src_idx) continue;
          PlacedVm& vm = trial.vms[t];
          if (!vm.fits(d.cpu, d.mem)) continue;
          if (target == nullptr || waste_score(vm) > waste_score(*target)) {
            target = &vm;
          }
        }
        if (target == nullptr) {
          all_moved = false;
          break;
        }
        target->add(d.cpu, d.mem, pod_id, c);
      }
      if (!all_moved) continue;

      trial.vms.erase(trial.vms.begin() +
                      static_cast<std::ptrdiff_t>(src_idx));
      improved = std::move(trial);
      progressed = true;
      break;  // re-derive the utilization order after each elimination
    }
  }

  // Pass 2 — shrink: each VM drops to the cheapest model that still holds
  // its load.
  for (auto& vm : improved.vms) {
    const VmModel* smaller =
        catalog_->cheapest_fitting(vm.used_cpu, vm.used_mem);
    if (smaller != nullptr &&
        smaller->price_per_hour < vm.model->price_per_hour) {
      vm.model = smaller;
    }
  }

  // Pass 3 — split: with whole-pod placement gone, one VM's containers may
  // repack into several *smaller* models for less money (the paper's
  // motivating example: a 6 vCPU / 24 GiB pod on an m5.2xlarge for $0.448/h
  // vs an m5.large + m5.xlarge for $0.336/h).  First-fit-decreasing per VM;
  // accepted only when strictly cheaper.
  for (std::size_t i = 0; i < improved.vms.size(); ++i) {
    PlacedVm& vm = improved.vms[i];

    std::vector<std::pair<std::uint32_t, std::uint32_t>> items = vm.placed;
    std::sort(items.begin(), items.end(), [&](const auto& a, const auto& b) {
      const auto da = demand_of(a.first, a.second);
      const auto db = demand_of(b.first, b.second);
      const double sa = da.cpu + da.mem;
      const double sb = db.cpu + db.mem;
      if (sa != sb) return sa > sb;  // biggest first (FFD)
      return a < b;
    });

    std::vector<PlacedVm> bins;
    bool ok = true;
    for (const auto& [pod_id, c] : items) {
      const auto d = demand_of(pod_id, c);
      PlacedVm* target = nullptr;
      for (auto& bin : bins) {
        if (!bin.fits(d.cpu, d.mem)) continue;
        if (target == nullptr ||
            requested_score(bin) > requested_score(*target)) {
          target = &bin;  // tightest bin first
        }
      }
      if (target == nullptr) {
        const VmModel* model = catalog_->cheapest_fitting(d.cpu, d.mem);
        if (model == nullptr) {
          ok = false;
          break;
        }
        bins.push_back(PlacedVm{model, 0.0, 0.0, {}});
        target = &bins.back();
      }
      target->add(d.cpu, d.mem, pod_id, c);
    }
    if (!ok) continue;

    // Shrink each bin, then compare.
    double bins_cost = 0.0;
    for (auto& bin : bins) {
      const VmModel* smaller =
          catalog_->cheapest_fitting(bin.used_cpu, bin.used_mem);
      if (smaller != nullptr &&
          smaller->price_per_hour < bin.model->price_per_hour) {
        bin.model = smaller;
      }
      bins_cost += bin.model->price_per_hour;
    }
    if (bins_cost < vm.model->price_per_hour) {
      improved.vms.erase(improved.vms.begin() +
                         static_cast<std::ptrdiff_t>(i));
      improved.vms.insert(improved.vms.end(), bins.begin(), bins.end());
      --i;  // the element now at position i is unprocessed
    }
  }

  // Never worse than the baseline.
  if (improved.cost_per_hour() > base.cost_per_hour()) return base;
  return improved;
}

}  // namespace nestv::orch
