// AWS EC2 m5 on-demand catalog — the paper's table 2, verbatim.
//
// Resource specifications are relative to the largest model (24xlarge), the
// same normalization Google cluster traces use for machine capacity.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace nestv::orch {

struct VmModel {
  std::string name;
  int vcpus = 0;
  int memory_gb = 0;
  double cpu_rel = 0.0;  ///< relative to m5.24xlarge
  double mem_rel = 0.0;
  double price_per_hour = 0.0;  ///< USD
};

class AwsM5Catalog {
 public:
  AwsM5Catalog();

  /// Models ordered by ascending price.
  [[nodiscard]] const std::vector<VmModel>& models() const {
    return models_;
  }

  /// Cheapest model with cpu_rel >= cpu and mem_rel >= mem, if any.
  [[nodiscard]] const VmModel* cheapest_fitting(double cpu,
                                                double mem) const;

  [[nodiscard]] const VmModel* by_name(const std::string& name) const;
  [[nodiscard]] const VmModel& largest() const { return models_.back(); }

 private:
  std::vector<VmModel> models_;
};

}  // namespace nestv::orch
