// Workload and placement value types for the fig 9 cost simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orch/pricing.hpp"

namespace nestv::orch {

/// One container's resource request, relative to an m5.24xlarge
/// (Google-trace normalization).
struct ContainerDemand {
  double cpu = 0.0;
  double mem = 0.0;
};

/// A pod: the scheduling unit for vanilla Kubernetes (whole-pod
/// placement); Hostlo relaxes it to per-container placement.
struct PodSpec {
  std::uint32_t pod_id = 0;
  std::vector<ContainerDemand> containers;

  [[nodiscard]] ContainerDemand total() const {
    ContainerDemand t;
    for (const auto& c : containers) {
      t.cpu += c.cpu;
      t.mem += c.mem;
    }
    return t;
  }
};

/// Everything one cloud user deploys.
struct UserWorkload {
  std::uint32_t user_id = 0;
  std::vector<PodSpec> pods;
};

/// A bought VM with its current load.
struct PlacedVm {
  const VmModel* model = nullptr;
  double used_cpu = 0.0;
  double used_mem = 0.0;
  /// (pod_id, container index) of everything placed here.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> placed;

  [[nodiscard]] double free_cpu() const { return model->cpu_rel - used_cpu; }
  [[nodiscard]] double free_mem() const { return model->mem_rel - used_mem; }
  [[nodiscard]] bool fits(double cpu, double mem) const {
    // A hair of tolerance keeps exact-fill placements from failing on
    // floating-point dust.
    constexpr double kEps = 1e-9;
    return free_cpu() + kEps >= cpu && free_mem() + kEps >= mem;
  }
  void add(double cpu, double mem, std::uint32_t pod,
           std::uint32_t container) {
    used_cpu += cpu;
    used_mem += mem;
    placed.emplace_back(pod, container);
  }
};

/// A full per-user placement, costable.
struct Placement {
  std::vector<PlacedVm> vms;

  [[nodiscard]] double cost_per_hour() const {
    double c = 0.0;
    for (const auto& vm : vms) c += vm.model->price_per_hour;
    return c;
  }
};

}  // namespace nestv::orch
