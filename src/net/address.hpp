// Ethernet MAC and IPv4 address value types.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace nestv::net {

/// 48-bit Ethernet MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Locally-administered unicast MAC derived from a 64-bit id; this is how
  /// the simulated VMM assigns MACs to hot-plugged NICs (the identifier the
  /// orchestrator receives in step 3 of sections 3.1/4.1).
  static MacAddress local_from_id(std::uint64_t id);

  static MacAddress broadcast();
  static std::optional<MacAddress> parse(const std::string& text);

  [[nodiscard]] bool is_broadcast() const;
  [[nodiscard]] bool is_multicast() const { return octets_[0] & 0x01; }
  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint64_t as_u64() const;

  friend bool operator==(const MacAddress&, const MacAddress&) = default;
  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4Address> parse(const std::string& text);

  [[nodiscard]] std::uint32_t value() const { return value_; }
  [[nodiscard]] bool is_unspecified() const { return value_ == 0; }
  [[nodiscard]] bool is_loopback() const {
    return (value_ >> 24) == 127;
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Ipv4Address&, const Ipv4Address&) = default;
  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv4 prefix (address + mask length), e.g. 10.0.3.0/24.
class Ipv4Cidr {
 public:
  constexpr Ipv4Cidr() = default;
  Ipv4Cidr(Ipv4Address base, int prefix_len);

  static std::optional<Ipv4Cidr> parse(const std::string& text);

  // contains() runs on every routing-table scan; keep it inline.
  [[nodiscard]] bool contains(Ipv4Address a) const {
    return (a.value() & mask()) == base_.value();
  }
  [[nodiscard]] Ipv4Address network() const { return base_; }
  [[nodiscard]] int prefix_len() const { return prefix_len_; }
  [[nodiscard]] std::uint32_t mask() const {
    if (prefix_len_ == 0) return 0;
    return ~std::uint32_t{0} << (32 - prefix_len_);
  }
  /// The i-th host address within the prefix (1 = first usable).
  [[nodiscard]] Ipv4Address host(std::uint32_t i) const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Ipv4Cidr&, const Ipv4Cidr&) = default;

 private:
  Ipv4Address base_{};
  int prefix_len_ = 0;
};

}  // namespace nestv::net

template <>
struct std::hash<nestv::net::MacAddress> {
  std::size_t operator()(const nestv::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.as_u64());
  }
};

template <>
struct std::hash<nestv::net::Ipv4Address> {
  std::size_t operator()(const nestv::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
