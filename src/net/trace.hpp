// Environment-gated datapath tracing (set NESTV_TRACE=1 to enable).
//
// Every stack logs packet receptions, local deliveries, forward decisions,
// egress and drops to stderr with the simulated timestamp — the moral
// equivalent of running tcpdump on every simulated interface at once.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nestv::net {

inline bool nestv_trace_enabled() {
  static const bool on = std::getenv("NESTV_TRACE") != nullptr;
  return on;
}

}  // namespace nestv::net
