#include "net/stack_backend.hpp"

#include <stdexcept>
#include <utility>

#include "net/faststack.hpp"
#include "net/stack.hpp"
#include "net/tcp.hpp"
#include "net/trace.hpp"

namespace nestv::net {

const char* to_string(StackKind kind) {
  switch (kind) {
    case StackKind::kFullStack: return "fullstack";
    case StackKind::kFastPath: return "fastpath";
    case StackKind::kServiceHosted: return "service-hosted";
  }
  return "?";
}

const char* to_string(StackMode mode) {
  switch (mode) {
    case StackMode::kFull: return "full";
    case StackMode::kFastPath: return "fastpath";
    case StackMode::kService: return "service";
  }
  return "?";
}

// ---- TcpSocket ------------------------------------------------------------

void TcpSocket::send(std::uint32_t bytes, sim::InlineTask&& on_queued) {
  conn_->app_send(bytes, std::move(on_queued));
}
void TcpSocket::set_on_writable(sim::InlineHandler<> cb) {
  conn_->set_on_writable(std::move(cb));
}
std::uint32_t TcpSocket::buffered() const { return conn_->buffered(); }
std::uint16_t TcpSocket::local_port() const { return conn_->local_port(); }
std::uint16_t TcpSocket::remote_port() const { return conn_->remote_port(); }
std::uint32_t TcpSocket::congestion_window() const {
  return conn_->congestion_window();
}
double TcpSocket::srtt_ns() const { return conn_->srtt_ns(); }
void TcpSocket::set_on_receive(sim::InlineHandler<std::uint32_t> cb) {
  conn_->set_on_receive(std::move(cb));
}
void TcpSocket::set_on_connected(sim::InlineHandler<> cb) {
  conn_->set_on_connected(std::move(cb));
}
void TcpSocket::set_on_closed(sim::InlineHandler<> cb) {
  conn_->set_on_closed(std::move(cb));
}
void TcpSocket::close() { conn_->close(); }
bool TcpSocket::established() const {
  return conn_->state() == TcpConnection::State::kEstablished;
}
std::uint64_t TcpSocket::bytes_received() const {
  return conn_->bytes_received();
}
std::uint64_t TcpSocket::bytes_sent() const { return conn_->bytes_sent(); }
std::uint64_t TcpSocket::retransmits() const { return conn_->retransmits(); }

// ---- StackBackend ---------------------------------------------------------

StackBackend::StackBackend(sim::Engine& engine, std::string name,
                           const sim::CostModel& costs,
                           sim::SerialResource* softirq)
    : engine_(&engine),
      name_(std::move(name)),
      costs_(&costs),
      softirq_(softirq) {}

StackBackend::~StackBackend() = default;

// ---- optional-capability defaults ------------------------------------------

namespace {
[[noreturn]] void no_capability(const StackBackend& stack, const char* what) {
  throw std::logic_error("stack '" + stack.name() + "' (" +
                         to_string(stack.kind()) + ") has no " + what);
}
}  // namespace

Netfilter& StackBackend::netfilter() { no_capability(*this, "netfilter"); }
const Netfilter& StackBackend::netfilter() const {
  no_capability(*this, "netfilter");
}
void StackBackend::set_forwarding(bool) {
  // Silently ignoring would drop traffic a consumer expects forwarded.
  no_capability(*this, "forwarding");
}
void StackBackend::set_forced_resegment(std::uint32_t) {
  no_capability(*this, "forced resegmentation");
}
void StackBackend::set_forward_jitter(double, std::uint64_t) {
  no_capability(*this, "forward jitter");
}
void StackBackend::set_gro(bool) {
  // GRO is an RX optimization invisible to applications; a backend without
  // it treats enable/disable as a no-op.
}
void StackBackend::set_flowcache(bool) {}
flowcache::FlowCache& StackBackend::flow_cache() {
  no_capability(*this, "flow cache");
}
const flowcache::FlowCache& StackBackend::flow_cache() const {
  no_capability(*this, "flow cache");
}
std::size_t StackBackend::conntrack_gc(sim::Duration) { return 0; }
void StackBackend::ping(Ipv4Address, std::uint32_t,
                        std::function<void(sim::Duration)>) {
  no_capability(*this, "ICMP echo");
}
void StackBackend::set_icmp_error_handler(
    std::function<void(const Packet&)>) {}

// ---- softirq / app-resource charging ---------------------------------------

void StackBackend::softirq_run(sim::Duration work, sim::InlineTask&& then) {
  if (softirq_ == nullptr) {
    if (work == 0) {
      then();
    } else {
      engine_->schedule_in(work, std::move(then));
    }
    return;
  }
  if (costs_->batch_size > 1) {
    if (!softirq_sink_ || &softirq_sink_->resource() != softirq_) {
      softirq_sink_ =
          std::make_unique<sim::BatchSink>(*softirq_, costs_->napi_budget);
    }
    softirq_sink_->submit_as(sim::CpuCategory::kSoft, work, std::move(then));
    return;
  }
  softirq_->submit_as(sim::CpuCategory::kSoft, work, std::move(then));
}

void StackBackend::resource_run(sim::SerialResource* res,
                                sim::CpuCategory category, sim::Duration work,
                                sim::InlineTask&& then) {
  if (res == nullptr) {
    if (work == 0) {
      then();
    } else {
      engine_->schedule_in(work, std::move(then));
    }
    return;
  }
  if (costs_->batch_size > 1) {
    // Submissions cluster by resource (an app's send loop), so a one-entry
    // cache skips the hash lookup on the hot path.
    if (res != last_app_res_) {
      auto& sink = app_sinks_[res];
      if (!sink) {
        sink = std::make_unique<sim::BatchSink>(*res, costs_->napi_budget);
      }
      last_app_res_ = res;
      last_app_sink_ = sink.get();
    }
    last_app_sink_->submit_as(category, work, std::move(then));
    return;
  }
  res->submit_as(category, work, std::move(then));
}

// ---- L4 demux ---------------------------------------------------------------

void StackBackend::udp_unbound(const Packet&) {}

void StackBackend::deliver_udp(Packet p) {
  const auto it = udp_binds_.find(p.dst_port);
  if (it == udp_binds_.end()) {
    ++dropped_;
    udp_unbound(p);
    return;
  }
  UdpBinding& bind = it->second;
  UdpDelivery d{p.payload_bytes, p.src_ip, p.src_port, p.sent_at, nullptr};
  if (p.inner) {
    // Sole consumer from here on: hand the inner frame over instead of
    // deep-copying it (the shared_ptr only exists to keep UdpDelivery
    // copyable for the scheduled app path).
    d.inner = std::shared_ptr<EthernetFrame>(std::move(p.inner));
  }
  if (bind.kernel) {
    // In-kernel consumer (VXLAN VTEP): no wakeup, no syscall.
    bind.handler(d);
    return;
  }
  const auto& c = *costs_;
  const auto app_cost = c.syscall_pkt + c.l4_segment +
                        static_cast<sim::Duration>(
                            c.copy_byte * static_cast<double>(p.payload_bytes));
  // Wakeup latency, then the recvfrom() on the app's CPU.
  engine_->schedule_in(c.rx_wakeup, [this, &bind, d, app_cost]() mutable {
    if (bind.app != nullptr) {
      resource_run(bind.app, sim::CpuCategory::kSys, app_cost,
                   [&bind, d]() mutable { bind.handler(d); });
    } else {
      bind.handler(d);
    }
  });
}

void StackBackend::deliver_tcp(Packet p) {
  if (nestv_trace_enabled())
    std::fprintf(stderr, "[%s t=%llu] deliver_tcp %s seq=%u ack=%u\n", name_.c_str(),
                 (unsigned long long)engine_->now(), p.describe().c_str(), p.tcp_seq, p.tcp_ack);
  const TcpKey key{p.dst_ip, p.dst_port, p.src_ip, p.src_port};
  const auto it = tcp_conns_.find(key);
  if (it != tcp_conns_.end()) {
    TcpConnection* conn = it->second.get();
    softirq_run(costs_->l4_segment,
                [conn, pkt = std::move(p)]() mutable {
                  conn->on_segment(std::move(pkt));
                });
    return;
  }
  const auto lit = tcp_listeners_.find(p.dst_port);
  if (lit != tcp_listeners_.end() && p.tcp_flags.syn && !p.tcp_flags.ack) {
    TcpConnection& conn = create_connection(key, lit->second.app);
    // Install the app's handlers (accept callback) before the handshake
    // completes so no delivery is missed.
    lit->second.on_accept(TcpSocket(&conn));
    softirq_run(costs_->l4_segment,
                [&conn, pkt = std::move(p)]() mutable {
                  conn.open_passive(pkt);
                });
    return;
  }
  ++dropped_;
}

// ---- TX entry ---------------------------------------------------------------

void StackBackend::l4_emit(sim::Duration l4_work, Packet p) {
  softirq_run(l4_work, [this, pkt = std::move(p)]() mutable {
    emit_packet(std::move(pkt));
  });
}

// ---- UDP API ----------------------------------------------------------------

void StackBackend::udp_bind(std::uint16_t port, sim::SerialResource* app,
                            UdpHandler handler) {
  udp_binds_[port] = UdpBinding{app, std::move(handler), false};
}

void StackBackend::udp_bind_kernel(std::uint16_t port, UdpHandler handler) {
  udp_binds_[port] = UdpBinding{nullptr, std::move(handler), true};
}

void StackBackend::udp_unbind(std::uint16_t port) { udp_binds_.erase(port); }

void StackBackend::udp_send(Ipv4Address src_ip, std::uint16_t src_port,
                            Ipv4Address dst_ip, std::uint16_t dst_port,
                            std::uint32_t bytes, sim::SerialResource* app,
                            sim::InlineTask&& on_sent) {
  const auto& c = *costs_;
  const auto app_cost =
      c.syscall_pkt +
      static_cast<sim::Duration>(c.copy_byte * static_cast<double>(bytes));
  auto emit = [this, src_ip, src_port, dst_ip, dst_port, bytes] {
    Packet p;
    p.src_ip = src_ip;
    p.dst_ip = dst_ip;
    p.proto = L4Proto::kUdp;
    p.src_port = src_port;
    p.dst_port = dst_port;
    p.payload_bytes = bytes;
    p.ip_id = next_ip_id_++;
    p.packet_id = next_packet_id();
    p.sent_at = engine_->now();
    l4_emit(costs_->l4_segment, std::move(p));
  };
  // `on_sent` rides as its own zero-cost FIFO item right behind the emit:
  // capturing an InlineTask inside the emit closure would overflow its
  // inline buffer (a task cannot nest inside another task's storage) and
  // put an allocation back on the per-datagram path.
  if (app != nullptr) {
    resource_run(app, sim::CpuCategory::kSys, app_cost, std::move(emit));
    if (on_sent) {
      resource_run(app, sim::CpuCategory::kSys, 0, std::move(on_sent));
    }
  } else {
    emit();
    if (on_sent) on_sent();
  }
}

// ---- TCP API ----------------------------------------------------------------

void StackBackend::tcp_listen(std::uint16_t port, sim::SerialResource* app,
                              AcceptHandler on_accept) {
  tcp_listeners_[port] = TcpListener{app, std::move(on_accept)};
}

TcpSocket StackBackend::tcp_connect(Ipv4Address src_ip, Ipv4Address dst_ip,
                                    std::uint16_t dst_port,
                                    sim::SerialResource* app) {
  const std::uint16_t sport = next_ephemeral_port_++;
  const TcpKey key{src_ip, sport, dst_ip, dst_port};
  TcpConnection& conn = create_connection(key, app);
  conn.open_active();
  return TcpSocket(&conn);
}

TcpConnection& StackBackend::create_connection(const TcpKey& key,
                                               sim::SerialResource* app) {
  auto conn = std::make_unique<TcpConnection>(
      *this, key.local_ip, key.local_port, key.remote_ip, key.remote_port,
      app);
  TcpConnection& ref = *conn;
  tcp_conns_[key] = std::move(conn);
  return ref;
}

// ---- factory ----------------------------------------------------------------

std::unique_ptr<StackBackend> make_stack(StackMode mode, sim::Engine& engine,
                                         std::string name,
                                         const sim::CostModel& costs,
                                         sim::SerialResource* softirq) {
  switch (mode) {
    case StackMode::kFull:
      return std::make_unique<FullStack>(engine, std::move(name), costs,
                                         softirq);
    case StackMode::kFastPath:
      return std::make_unique<FastPathStack>(engine, std::move(name), costs,
                                             softirq);
    case StackMode::kService:
      break;
  }
  throw std::invalid_argument(
      "make_stack: service-hosted stacks are created by their StackService");
}

}  // namespace nestv::net
