#include "net/bridge.hpp"

#include <utility>

namespace nestv::net {

void Fdb::learn(MacAddress mac, int port, sim::TimePoint now) {
  table_[mac] = Entry{port, now};
}

int Fdb::lookup(MacAddress mac, sim::TimePoint now) const {
  const auto it = table_.find(mac);
  if (it == table_.end()) return -1;
  if (now - it->second.seen > ageing_) return -1;
  return it->second.port;
}

void Fdb::forget(MacAddress mac) {
  if (table_.erase(mac) > 0 && on_evict_) on_evict_(mac);
}

std::size_t Fdb::expire(sim::TimePoint now) {
  std::size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (now - it->second.seen > ageing_) {
      const MacAddress mac = it->first;
      it = table_.erase(it);
      ++evicted;
      if (on_evict_) on_evict_(mac);
    } else {
      ++it;
    }
  }
  return evicted;
}

std::size_t Fdb::flush() {
  std::size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    const MacAddress mac = it->first;
    it = table_.erase(it);
    ++evicted;
    if (on_evict_) on_evict_(mac);
  }
  return evicted;
}

Bridge::Bridge(sim::Engine& engine, std::string name,
               const sim::CostModel& costs, bool guest_level)
    : Device(engine, std::move(name), costs), guest_level_(guest_level) {}

void Bridge::ingress(EthernetFrame frame, int port) {
  fdb_.learn(frame.src, port, engine().now());
  const sim::Duration work =
      guest_level_ ? costs().bridge_pkt_guest : costs().bridge_pkt;
  // `process_batched` may defer; capture what we need by value.
  process_batched(work, [this, f = std::move(frame), port]() mutable {
    forward(std::move(f), port);
  });
}

void Bridge::forward(EthernetFrame frame, int ingress_port) {
  const int out = frame.dst.is_broadcast() || frame.dst.is_multicast()
                      ? -1
                      : fdb_.lookup(frame.dst, engine().now());
  if (out >= 0) {
    if (out != ingress_port) transmit(out, std::move(frame));
    return;  // hairpin suppressed, as in Linux default
  }
  ++floods_;
  // Flooding is a genuine duplication point: one copy per extra egress
  // port, the last one moved.
  int last = -1;
  for (int p = 0; p < port_count(); ++p) {
    if (p != ingress_port) last = p;
  }
  for (int p = 0; p < port_count(); ++p) {
    if (p == ingress_port) continue;
    if (p == last) {
      transmit(p, std::move(frame));
    } else {
      transmit(p, frame);
    }
  }
}

}  // namespace nestv::net
