#include "net/faststack.hpp"

#include <algorithm>
#include <utility>

#include "net/pcap.hpp"
#include "net/tcp.hpp"
#include "net/trace.hpp"
#include "sim/test_hooks.hpp"

namespace nestv::net {

FastPathStack::FastPathStack(sim::Engine& engine, std::string name,
                             const sim::CostModel& costs,
                             sim::SerialResource* softirq)
    : StackBackend(engine, std::move(name), costs, softirq) {
  // Interface 0 is always loopback, same shape as FullStack's so the
  // consumer-facing ifindex space is identical across backends.
  Interface lo;
  lo.cfg.name = "lo";
  lo.cfg.ip = Ipv4Address(127, 0, 0, 1);
  lo.cfg.subnet = Ipv4Cidr(Ipv4Address(127, 0, 0, 0), 8);
  lo.cfg.mtu = 65536;
  lo.cfg.gso_bytes = costs.gso_loopback;
  ifaces_.push_back(std::move(lo));
  routes_.add_connected(ifaces_[0].cfg.subnet, 0);
}

FastPathStack::~FastPathStack() = default;

int FastPathStack::add_interface(InterfaceBackend& backend,
                                 const InterfaceConfig& cfg) {
  const int ifindex = static_cast<int>(ifaces_.size());
  Interface itf;
  itf.cfg = cfg;
  itf.backend = &backend;
  ifaces_.push_back(std::move(itf));
  backend.set_rx(
      [this, ifindex](EthernetFrame f) { rx(ifindex, std::move(f)); });
  backend.set_rx_train([this, ifindex](std::vector<EthernetFrame> fs) {
    rx_train(ifindex, std::move(fs));
  });
  if (cfg.subnet.prefix_len() > 0) {
    routes_.add_connected(cfg.subnet, ifindex);
  }
  return ifindex;
}

void FastPathStack::configure_loopback(std::uint32_t gso_bytes) {
  ifaces_[0].cfg.gso_bytes = gso_bytes;
}

int FastPathStack::ifindex_of(const std::string& name) const {
  for (std::size_t i = 0; i < ifaces_.size(); ++i) {
    if (ifaces_[i].cfg.name == name) return static_cast<int>(i);
  }
  return -1;
}

Ipv4Address FastPathStack::iface_ip(int ifindex) const {
  return ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.ip;
}

MacAddress FastPathStack::iface_mac(int ifindex) const {
  return ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.mac;
}

void FastPathStack::set_iface_gso(int ifindex, std::uint32_t gso_bytes) {
  ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.gso_bytes = gso_bytes;
}

void FastPathStack::seed_neighbor(int ifindex, Ipv4Address ip,
                                  MacAddress mac) {
  ifaces_.at(static_cast<std::size_t>(ifindex))
      .neighbors.insert(ip, mac, engine_->now());
}

void FastPathStack::detach_interface(int ifindex) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  if (itf.backend != nullptr) itf.backend->set_rx({});
  itf.backend = nullptr;
  for (const auto& [next_hop, pkts] : itf.arp_pending) {
    dropped_ += pkts.size();
  }
  itf.arp_pending.clear();
}

std::uint32_t FastPathStack::egress_gso(Ipv4Address dst) const {
  if (is_local_address(dst)) return ifaces_[0].cfg.gso_bytes;
  const auto r = routes_.lookup(dst);
  if (!r || r->ifindex < 0 ||
      static_cast<std::size_t>(r->ifindex) >= ifaces_.size()) {
    return 1448;
  }
  return ifaces_[static_cast<std::size_t>(r->ifindex)].cfg.gso_bytes;
}

bool FastPathStack::is_local_address(Ipv4Address a) const {
  if (a.is_loopback()) return true;
  for (const Interface& i : ifaces_) {
    if (!i.cfg.ip.is_unspecified() && i.cfg.ip == a) return true;
  }
  return false;
}

// ---- RX path ----------------------------------------------------------------

void FastPathStack::rx(int ifindex, EthernetFrame frame) {
  const Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  if (capture_ != nullptr) capture_->record(engine_->now(), frame);
  // Same MAC filter as FullStack: not-for-us frames cost one lookup.
  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast() &&
      frame.dst != itf.cfg.mac) {
    softirq_run(costs_->arp_hit, [this] { ++dropped_; });
    return;
  }
  if (frame.ethertype == 0x0806) {
    softirq_run(costs_->arp_hit, [this, ifindex, f = std::move(frame)] {
      handle_arp(ifindex, f);
    });
    return;
  }
  if (frame.ethertype != 0x0800) {
    ++dropped_;
    return;
  }
  Packet p = std::move(frame.packet);
  if (nestv_trace_enabled())
    std::fprintf(stderr, "[%s t=%llu] fast-rx if=%d %s\n", name_.c_str(),
                 (unsigned long long)engine_->now(), ifindex,
                 p.describe().c_str());
  p.ct_id = 0;
  p.ct_reply = false;
  // The whole pipeline is one fixed charge; demux + L4 run inside it.
  softirq_run(costs_->fastpath_rx_pkt, [this, pkt = std::move(p)]() mutable {
    rx_demux(std::move(pkt));
  });
}

void FastPathStack::rx_train(int ifindex, std::vector<EthernetFrame> frames) {
  if (frames.size() == 1) {
    rx(ifindex, std::move(frames[0]));
    return;
  }
  const Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  // Pool the whole train into one softirq item: a k-frame burst costs one
  // event carrying k fused per-packet charges, and the k demux passes run
  // back-to-back inside it (the fast path's NAPI analogue).
  sim::Duration carry = 0;
  std::vector<Packet> batch;
  const auto flush = [this, &carry, &batch] {
    if (carry == 0 && batch.empty()) return;
    softirq_run(carry, [this, b = std::move(batch)]() mutable {
      for (Packet& p : b) rx_demux(std::move(p));
    });
    carry = 0;
    batch.clear();
  };
  for (EthernetFrame& frame : frames) {
    if (capture_ != nullptr) capture_->record(engine_->now(), frame);
    if (!frame.dst.is_broadcast() && !frame.dst.is_multicast() &&
        frame.dst != itf.cfg.mac) {
      carry += costs_->arp_hit;
      ++dropped_;
      continue;
    }
    if (frame.ethertype == 0x0806) {
      // ARP keeps FIFO position relative to the batch around it.
      flush();
      softirq_run(costs_->arp_hit, [this, ifindex, f = std::move(frame)] {
        handle_arp(ifindex, f);
      });
      continue;
    }
    if (frame.ethertype != 0x0800) {
      ++dropped_;
      continue;
    }
    Packet p = std::move(frame.packet);
    if (nestv_trace_enabled())
      std::fprintf(stderr, "[%s t=%llu] fast-rx if=%d %s\n", name_.c_str(),
                   (unsigned long long)engine_->now(), ifindex,
                   p.describe().c_str());
    p.ct_id = 0;
    p.ct_reply = false;
    carry += costs_->fastpath_rx_pkt;
    batch.push_back(std::move(p));
  }
  flush();
}

void FastPathStack::rx_demux(Packet p) {
  // No fragmenter on the fast path: a fragment cannot be reassembled.
  if (p.frag_more || p.frag_offset > 0) {
    ++reassembly_failures_;
    ++dropped_;
    return;
  }
  // No forwarding: a single-tenant endpoint stack only terminates traffic.
  if (!is_local_address(p.dst_ip)) {
    ++dropped_;
    return;
  }
  deliver_local_fast(std::move(p));
}

void FastPathStack::deliver_local_fast(Packet p) {
  ++delivered_;
  if (p.proto == L4Proto::kUdp) {
    if (sim::test_hooks::faststack_dup_udp_delivery &&
        ++udp_rx_count_ % 4 == 0) {
      // Injected bug (fuzz self-test): every 4th datagram delivers twice.
      Packet dup = p;
      deliver_udp(std::move(dup));
    }
    deliver_udp(std::move(p));
    return;
  }
  if (p.proto == L4Proto::kTcp) {
    deliver_tcp_fast(std::move(p));
    return;
  }
  // No ICMP on the fast path.
  ++dropped_;
}

void FastPathStack::deliver_tcp_fast(Packet p) {
  // Mirrors StackBackend::deliver_tcp, but the segment runs inline: its
  // L4 work is already folded into the fixed fastpath_rx_pkt charge.
  const TcpKey key{p.dst_ip, p.dst_port, p.src_ip, p.src_port};
  const auto it = tcp_conns_.find(key);
  if (it != tcp_conns_.end()) {
    it->second->on_segment(std::move(p));
    return;
  }
  const auto lit = tcp_listeners_.find(p.dst_port);
  if (lit != tcp_listeners_.end() && p.tcp_flags.syn && !p.tcp_flags.ack) {
    TcpConnection& conn = create_connection(key, lit->second.app);
    lit->second.on_accept(make_socket(&conn));
    conn.open_passive(p);
    return;
  }
  ++dropped_;
}

// ---- TX path ----------------------------------------------------------------

void FastPathStack::emit_packet(Packet p) {
  p.ct_id = 0;
  p.ct_reply = false;
  if (p.packet_id == 0) p.packet_id = next_packet_id();
  const auto& c = *costs_;

  if (is_local_address(p.dst_ip)) {
    // Loopback short-circuit: fixed TX charge + lo device work, then
    // straight back into local delivery.
    const auto cost =
        c.fastpath_tx_pkt + c.loopback_pkt +
        static_cast<sim::Duration>(c.loopback_copy_byte *
                                   static_cast<double>(p.payload_bytes));
    softirq_run(cost, [this, pkt = std::move(p)]() mutable {
      deliver_local_fast(std::move(pkt));
    });
    return;
  }

  const auto route = routes_.lookup(p.dst_ip);
  if (!route || route->ifindex <= 0 ||
      static_cast<std::size_t>(route->ifindex) >= ifaces_.size()) {
    softirq_run(c.fastpath_tx_pkt, [this] { ++dropped_; });
    return;
  }
  softirq_run(c.fastpath_tx_pkt,
              [this, pkt = std::move(p), out = route->ifindex]() mutable {
                arp_resolve_and_send(std::move(pkt), out);
              });
}

void FastPathStack::arp_resolve_and_send(Packet p, int out_ifindex) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(out_ifindex));
  if (itf.backend == nullptr) {
    // Hot-unplugged: the netdev is gone.
    ++dropped_;
    return;
  }
  // No fragmenter: datagrams that do not fit the egress MTU are dropped
  // (streams never hit this — TCP segments to the interface's GSO size).
  const std::uint32_t mtu_payload =
      itf.cfg.mtu > (kIpv4HeaderBytes + kUdpHeaderBytes)
          ? itf.cfg.mtu - kIpv4HeaderBytes - kUdpHeaderBytes
          : 1472;
  if (p.proto == L4Proto::kUdp && p.payload_bytes > mtu_payload) {
    ++dropped_;
    return;
  }
  const auto route = routes_.lookup(p.dst_ip);
  const Ipv4Address next_hop = route ? route->next_hop : p.dst_ip;

  const auto mac = itf.neighbors.lookup(next_hop, engine_->now());
  if (!mac) {
    auto& pending = itf.arp_pending[next_hop];
    pending.push_back(std::move(p));
    if (pending.size() == 1) send_arp_request(out_ifindex, next_hop);
    return;
  }
  EthernetFrame f;
  f.src = itf.cfg.mac;
  f.dst = *mac;
  f.ethertype = 0x0800;
  f.packet = std::move(p);
  if (capture_ != nullptr) capture_->record(engine_->now(), f);
  itf.backend->xmit(std::move(f));
}

void FastPathStack::send_arp_request(int ifindex, Ipv4Address target) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  ++arp_tx_;
  EthernetFrame f;
  f.src = itf.cfg.mac;
  f.dst = MacAddress::broadcast();
  f.ethertype = 0x0806;
  f.arp_is_request = true;
  f.arp_sender_ip = itf.cfg.ip;
  f.arp_sender_mac = itf.cfg.mac;
  f.arp_target_ip = target;
  itf.backend->xmit(std::move(f));
}

void FastPathStack::handle_arp(int ifindex, const EthernetFrame& frame) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  itf.neighbors.insert(frame.arp_sender_ip, frame.arp_sender_mac,
                       engine_->now());

  if (frame.arp_is_request && frame.arp_target_ip == itf.cfg.ip &&
      itf.backend != nullptr) {
    EthernetFrame reply;
    reply.src = itf.cfg.mac;
    reply.dst = frame.arp_sender_mac;
    reply.ethertype = 0x0806;
    reply.arp_is_request = false;
    reply.arp_sender_ip = itf.cfg.ip;
    reply.arp_sender_mac = itf.cfg.mac;
    reply.arp_target_ip = frame.arp_sender_ip;
    itf.backend->xmit(std::move(reply));
  }

  const auto pending = itf.arp_pending.find(frame.arp_sender_ip);
  if (pending != itf.arp_pending.end()) {
    std::vector<Packet> pkts = std::move(pending->second);
    itf.arp_pending.erase(pending);
    for (Packet& p : pkts) {
      arp_resolve_and_send(std::move(p), ifindex);
    }
  }
}

}  // namespace nestv::net
