#include "net/packet.hpp"

#include <cstdio>

#include "net/packet_pool.hpp"

namespace nestv::net {

const char* to_string(L4Proto p) {
  switch (p) {
    case L4Proto::kUdp: return "udp";
    case L4Proto::kTcp: return "tcp";
    case L4Proto::kIcmp: return "icmp";
  }
  return "?";
}

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += 'S';
  if (ack) s += 'A';
  if (fin) s += 'F';
  if (rst) s += 'R';
  if (psh) s += 'P';
  return s.empty() ? "-" : s;
}

Packet::Packet(const Packet& other)
    : src_ip(other.src_ip),
      dst_ip(other.dst_ip),
      proto(other.proto),
      src_port(other.src_port),
      dst_port(other.dst_port),
      ttl(other.ttl),
      ip_id(other.ip_id),
      frag_offset(other.frag_offset),
      frag_more(other.frag_more),
      icmp_type(other.icmp_type),
      icmp_code(other.icmp_code),
      icmp_id(other.icmp_id),
      icmp_seq(other.icmp_seq),
      tcp_seq(other.tcp_seq),
      tcp_ack(other.tcp_ack),
      tcp_flags(other.tcp_flags),
      tcp_window(other.tcp_window),
      payload_bytes(other.payload_bytes),
      packet_id(other.packet_id),
      ct_id(other.ct_id),
      ct_reply(other.ct_reply),
      sent_at(other.sent_at) {
  if (other.inner) inner = std::make_unique<EthernetFrame>(*other.inner);
}

Packet& Packet::operator=(const Packet& other) {
  if (this == &other) return *this;
  Packet tmp(other);
  *this = std::move(tmp);
  return *this;
}


void* Packet::operator new(std::size_t bytes) {
  return PacketPool::local().allocate(bytes);
}
void Packet::operator delete(void* p, std::size_t bytes) noexcept {
  PacketPool::local().deallocate(p, bytes);
}
// The unsized form is the one delete-expressions actually select when both
// overloads are declared; it must recycle through the pool exactly like the
// sized form or every freed node skips the live-node accounting.  Packet is
// never a base class, so the static size is the allocated size.
void Packet::operator delete(void* p) noexcept {
  PacketPool::local().deallocate(p, sizeof(Packet));
}

EthernetFrame::EthernetFrame(const EthernetFrame& other)
    : src(other.src),
      dst(other.dst),
      ethertype(other.ethertype),
      packet(other.packet),
      arp_is_request(other.arp_is_request),
      arp_sender_ip(other.arp_sender_ip),
      arp_target_ip(other.arp_target_ip),
      arp_sender_mac(other.arp_sender_mac) {
  PacketPool::count_clone();
}

EthernetFrame& EthernetFrame::operator=(const EthernetFrame& other) {
  if (this == &other) return *this;
  EthernetFrame tmp(other);
  *this = std::move(tmp);
  return *this;
}

void* EthernetFrame::operator new(std::size_t bytes) {
  return PacketPool::local().allocate(bytes);
}
void EthernetFrame::operator delete(void* p, std::size_t bytes) noexcept {
  PacketPool::local().deallocate(p, bytes);
}
void EthernetFrame::operator delete(void* p) noexcept {
  PacketPool::local().deallocate(p, sizeof(EthernetFrame));
}

std::uint32_t Packet::l4_header_bytes() const {
  switch (proto) {
    case L4Proto::kUdp: return kUdpHeaderBytes;
    case L4Proto::kTcp: return kTcpHeaderBytes;
    case L4Proto::kIcmp: return 8;
  }
  return 8;
}

std::uint32_t Packet::ip_total_bytes() const {
  std::uint32_t inner_bytes = inner ? inner->wire_bytes() : 0;
  return kIpv4HeaderBytes + l4_header_bytes() + payload_bytes + inner_bytes;
}

std::string Packet::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s %s:%u -> %s:%u len=%u%s%s",
                net::to_string(proto), src_ip.to_string().c_str(), src_port,
                dst_ip.to_string().c_str(), dst_port, payload_bytes,
                proto == L4Proto::kTcp
                    ? (" flags=" + tcp_flags.to_string()).c_str()
                    : "",
                inner ? " [vxlan-inner]" : "");
  return buf;
}

std::string EthernetFrame::describe() const {
  if (ethertype == 0x0806) {
    return std::string("arp ") + (arp_is_request ? "who-has " : "is-at ") +
           arp_target_ip.to_string() + " tell " + arp_sender_ip.to_string();
  }
  return packet.describe();
}

}  // namespace nestv::net
