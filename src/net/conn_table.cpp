#include "net/conn_table.hpp"

namespace nestv::net {
namespace {

// Hash tables below are open-addressed with linear probing over a
// *non-power-of-two* array: rebuilt to a 70% load factor, grown when
// live + tombstones pass 85%.  Power-of-two sizing looked cheaper (mask
// instead of modulo) but lands the array anywhere between 2x and 4x the
// element count; at macro scale the per-stack tables hold tens to
// hundreds of entries and that rounding was a double-digit share of all
// conntrack bytes.  The modulo is off the per-packet fast path (find()
// probes hash *once* per lookup).

[[nodiscard]] std::size_t sized_for(std::size_t live) {
  const std::size_t n = live * 10 / 7 + 1;
  return n < 32 ? 32 : n;
}

[[nodiscard]] bool wants_grow(std::size_t live, std::size_t dead,
                              std::size_t size) {
  return (live + dead + 1) * 20 >= size * 17;
}

}  // namespace

std::size_t ConnKeyHash::operator()(const ConnKey& k) const noexcept {
  std::uint64_t h = k.src_ip.value();
  h = h * 0x9e3779b97f4a7c15ULL + k.dst_ip.value();
  h = h * 0x9e3779b97f4a7c15ULL +
      ((std::uint64_t{k.src_port} << 24) | (std::uint64_t{k.dst_port} << 8) |
       static_cast<std::uint64_t>(k.proto));
  return static_cast<std::size_t>(h ^ (h >> 29));
}

std::uint32_t ConnTable::slot_of(std::uint64_t id) const {
  const std::uint32_t s = static_cast<std::uint32_t>(id & 0xffffffffU) - 1;
  if (s >= slots_used_) return kFreeEnd;
  const Slot& sl = slot(s);
  if (sl.next_free != kOccupied ||
      sl.gen != static_cast<std::uint32_t>(id >> 32)) {
    return kFreeEnd;
  }
  return s;
}

bool ConnTable::slot_has_tuple(std::uint32_t s, const ConnKey& key) const {
  const Slot& sl = slot(s);
  if (sl.next_free != kOccupied) return false;
  return sl.entry.orig == key || (sl.entry.confirmed && sl.entry.reply == key);
}

ConnTable::Ref ConnTable::find(const ConnKey& key) {
  if (buckets_.empty()) return {};
  const std::size_t n = buckets_.size();
  const std::uint64_t h = ConnKeyHash{}(key);
  for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
    const Bucket ref = buckets_[i];
    if (ref == kEmptyRef) return {};
    if (ref != kTombRef && slot_has_tuple(ref - 1, key)) {
      Slot& sl = slot(ref - 1);
      return Ref{id_of(ref - 1, sl.gen), &sl.entry};
    }
  }
}

const ConnEntry* ConnTable::find(const ConnKey& key) const {
  const Ref r = const_cast<ConnTable*>(this)->find(key);
  return r.entry;
}

ConnTable::Ref ConnTable::find_id(std::uint64_t id) {
  const std::uint32_t s = slot_of(id);
  if (s == kFreeEnd) return {};
  return Ref{id, &slot(s).entry};
}

bool ConnTable::alive(std::uint64_t id) const {
  return slot_of(id) != kFreeEnd;
}

std::uint32_t ConnTable::alloc_slot() {
  if (free_head_ != kFreeEnd) {
    const std::uint32_t s = free_head_;
    free_head_ = slot(s).next_free;
    return s;
  }
  if (slots_used_ == slots_cap_) {
    const std::uint32_t n =
        kFirstChunkSlots
        << (static_cast<std::uint32_t>(chunks_.size()) / kChunksPerDoubling);
    chunks_.push_back(std::make_unique<Slot[]>(n));
    chunk_bases_.push_back(slots_cap_);
    slots_cap_ += n;
  }
  return slots_used_++;
}

ConnTable::Ref ConnTable::create(const ConnEntry& entry) {
  const std::uint32_t s = alloc_slot();
  Slot& sl = slot(s);
  sl.entry = entry;
  sl.next_free = kOccupied;
  ++live_;
  index_insert(entry.orig, s);
  port_add(entry.orig);
  return Ref{id_of(s, sl.gen), &sl.entry};
}

void ConnTable::register_reply(std::uint64_t id, const ConnKey& reply) {
  const std::uint32_t s = slot_of(id);
  if (s == kFreeEnd) return;
  // Already bound (reply == orig, or a re-confirmation): keep one binding,
  // re-pointing it at this connection like the map's operator[] did.
  if (!buckets_.empty()) {
    const std::size_t n = buckets_.size();
    const std::uint64_t h = ConnKeyHash{}(reply);
    for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
      Bucket& b = buckets_[i];
      if (b == kEmptyRef) break;
      if (b != kTombRef && slot_has_tuple(b - 1, reply)) {
        b = s + 1;
        return;
      }
    }
  }
  index_insert(reply, s);
  port_add(reply);
}

void ConnTable::erase(std::uint64_t id) {
  const std::uint32_t s = slot_of(id);
  if (s == kFreeEnd) return;
  Slot& sl = slot(s);
  index_erase(sl.entry.orig, s);
  port_remove(sl.entry.orig);
  if (sl.entry.confirmed && !(sl.entry.reply == sl.entry.orig)) {
    index_erase(sl.entry.reply, s);
    port_remove(sl.entry.reply);
  }
  sl.next_free = free_head_;
  ++sl.gen;
  free_head_ = s;
  --live_;
}

ConnTable::Ref ConnTable::at_slot(std::size_t i) {
  if (i >= slots_used_) return {};
  Slot& sl = slot(static_cast<std::uint32_t>(i));
  if (sl.next_free != kOccupied) return {};
  return Ref{id_of(static_cast<std::uint32_t>(i), sl.gen), &sl.entry};
}

void ConnTable::index_insert(const ConnKey& key, std::uint32_t s) {
  if (wants_grow(index_live_, index_dead_, buckets_.size())) {
    index_grow();
  }
  const std::size_t n = buckets_.size();
  const std::uint64_t h = ConnKeyHash{}(key);
  for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
    Bucket& b = buckets_[i];
    if (b == kEmptyRef || b == kTombRef) {
      if (b == kTombRef) --index_dead_;
      b = s + 1;
      ++index_live_;
      return;
    }
  }
}

void ConnTable::index_erase(const ConnKey& key, std::uint32_t s) {
  if (buckets_.empty()) return;
  const std::size_t n = buckets_.size();
  const std::uint64_t h = ConnKeyHash{}(key);
  for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
    Bucket& b = buckets_[i];
    if (b == kEmptyRef) return;
    if (b == s + 1) {
      // Slot identity (not key equality) guards the erase: a tuple
      // re-bound to another connection must survive its old owner's
      // death.  When a slot's two bindings share a probe window the one
      // hit first may be the other tuple's — harmless, because erase(id)
      // always removes both bindings back to back, so the pair of calls
      // tombstones the pair of buckets either way.
      b = kTombRef;
      --index_live_;
      ++index_dead_;
      return;
    }
  }
}

void ConnTable::index_grow() {
  // Rebuild for the live tuples at 70% load; tombstones are dropped.
  std::size_t tuples = 0;
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    const Slot& sl = slot(s);
    if (sl.next_free != kOccupied) continue;
    tuples += 1 + (sl.entry.confirmed && !(sl.entry.reply == sl.entry.orig));
  }
  const std::size_t n = sized_for(tuples);
  buckets_.assign(n, kEmptyRef);
  buckets_.shrink_to_fit();
  index_live_ = 0;
  index_dead_ = 0;
  auto insert = [&](const ConnKey& key, std::uint32_t s) {
    const std::uint64_t h = ConnKeyHash{}(key);
    for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
      Bucket& b = buckets_[i];
      if (b == kEmptyRef) {
        b = s + 1;
        ++index_live_;
        return;
      }
    }
  };
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    const Slot& sl = slot(s);
    if (sl.next_free != kOccupied) continue;
    insert(sl.entry.orig, s);
    if (sl.entry.confirmed && !(sl.entry.reply == sl.entry.orig)) {
      insert(sl.entry.reply, s);
    }
  }
}

bool ConnTable::port_in_use(L4Proto proto, Ipv4Address ip,
                            std::uint16_t port) {
  if (!ports_built_) ports_build();
  if (port_keys_.empty()) return false;
  const std::uint64_t key = port_key(proto, ip, port);
  const std::size_t n = port_keys_.size();
  std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
    const std::uint64_t k = port_keys_[i];
    if (k == 0) return false;
    if (k == key) return port_counts_[i] > 0;
  }
}

void ConnTable::port_add(const ConnKey& key) {
  if (!ports_built_) return;
  if (wants_grow(ports_live_, ports_dead_, port_keys_.size())) {
    port_grow();
  }
  const std::uint64_t pk = port_key(key.proto, key.dst_ip, key.dst_port);
  const std::size_t n = port_keys_.size();
  std::uint64_t h = pk * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  std::size_t tomb = ~std::size_t{0};
  for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
    const std::uint64_t k = port_keys_[i];
    if (k == pk) {
      ++port_counts_[i];
      return;
    }
    if (k == ~0ULL && tomb == ~std::size_t{0}) tomb = i;
    if (k == 0) {
      const std::size_t dst = tomb != ~std::size_t{0} ? tomb : i;
      if (tomb != ~std::size_t{0}) --ports_dead_;
      port_keys_[dst] = pk;
      port_counts_[dst] = 1;
      ++ports_live_;
      return;
    }
  }
}

void ConnTable::port_remove(const ConnKey& key) {
  if (!ports_built_ || port_keys_.empty()) return;
  const std::uint64_t pk = port_key(key.proto, key.dst_ip, key.dst_port);
  const std::size_t n = port_keys_.size();
  std::uint64_t h = pk * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
    const std::uint64_t k = port_keys_[i];
    if (k == 0) return;
    if (k == pk) {
      if (port_counts_[i] > 0 && --port_counts_[i] == 0) {
        port_keys_[i] = ~0ULL;
        --ports_live_;
        ++ports_dead_;
      }
      return;
    }
  }
}

void ConnTable::port_grow() {
  std::vector<std::uint64_t> old_keys = std::move(port_keys_);
  std::vector<std::uint32_t> old_counts = std::move(port_counts_);
  std::size_t live = 0;
  for (const std::uint64_t k : old_keys) live += (k != 0 && k != ~0ULL);
  const std::size_t n = sized_for(live);
  port_keys_.assign(n, 0);
  port_counts_.assign(n, 0);
  port_keys_.shrink_to_fit();
  port_counts_.shrink_to_fit();
  ports_live_ = 0;
  ports_dead_ = 0;
  for (std::size_t j = 0; j < old_keys.size(); ++j) {
    const std::uint64_t k = old_keys[j];
    if (k == 0 || k == ~0ULL) continue;
    std::uint64_t h = k * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    for (std::size_t i = h % n;; i = i + 1 == n ? 0 : i + 1) {
      if (port_keys_[i] == 0) {
        port_keys_[i] = k;
        port_counts_[i] = old_counts[j];
        ++ports_live_;
        break;
      }
    }
  }
}

void ConnTable::ports_build() {
  ports_built_ = true;
  // Mirror every currently-registered tuple.  From here on port_add /
  // port_remove keep the index in sync, so the contents are identical to
  // an eagerly-maintained index at every point in time.
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    const Slot& sl = slot(s);
    if (sl.next_free != kOccupied) continue;
    port_add(sl.entry.orig);
    if (sl.entry.confirmed && !(sl.entry.reply == sl.entry.orig)) {
      port_add(sl.entry.reply);
    }
  }
}

std::size_t ConnTable::state_bytes() const {
  return slots_cap_ * sizeof(Slot) +
         buckets_.capacity() * sizeof(Bucket) +
         port_keys_.capacity() * sizeof(std::uint64_t) +
         port_counts_.capacity() * sizeof(std::uint32_t);
}

}  // namespace nestv::net
