// Learning Ethernet bridge (the Linux `br0` of fig 1).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/device.hpp"

namespace nestv::net {

/// Forwarding database: MAC -> (port, last-seen), with aging.
class Fdb {
 public:
  explicit Fdb(sim::Duration ageing = sim::seconds(300)) : ageing_(ageing) {}

  void learn(MacAddress mac, int port, sim::TimePoint now);
  /// Returns the port for `mac`, or -1 when unknown/expired.
  [[nodiscard]] int lookup(MacAddress mac, sim::TimePoint now) const;
  void forget(MacAddress mac);
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Notified with each MAC that leaves the table (ageing sweep or
  /// forget()); flow caches holding that MAC as a next hop subscribe so
  /// an expired L2 entry flushes exactly the flows switched through it.
  void set_eviction_listener(std::function<void(MacAddress)> l) {
    on_evict_ = std::move(l);
  }

  /// Removes entries older than the ageing window, notifying the
  /// listener (the kernel's periodic br_fdb_cleanup).
  std::size_t expire(sim::TimePoint now);

  /// Removes every entry, notifying the listener for each MAC (the
  /// `bridge fdb flush` / STP-topology-change full flush).  Subsequent
  /// frames flood until the table relearns.
  std::size_t flush();

 private:
  struct Entry {
    int port;
    sim::TimePoint seen;
  };
  sim::Duration ageing_;
  std::unordered_map<MacAddress, Entry> table_;
  std::function<void(MacAddress)> on_evict_;
};

/// A learning switch.  Frames to unknown/broadcast destinations flood all
/// ports except the ingress one; known destinations are switched.
/// Per-frame work (FDB lookup + forward) runs on the bound CPU — in a VM
/// this is the guest softirq core, which is how the guest bridge
/// contributes to the nested path's "soft" CPU bill (fig 6/7).
class Bridge : public Device {
 public:
  Bridge(sim::Engine& engine, std::string name, const sim::CostModel& costs,
         bool guest_level = false);

  void ingress(EthernetFrame frame, int port) override;

  [[nodiscard]] const Fdb& fdb() const { return fdb_; }
  [[nodiscard]] Fdb& fdb() { return fdb_; }
  [[nodiscard]] std::uint64_t floods() const { return floods_; }

 protected:
  /// The switching decision + transmit, after ingress charged the per-frame
  /// bridge cost.  Virtual so the overlay CachedBridge (net/oncache.hpp)
  /// can observe decisions without interposing a device (an extra hop
  /// would change timing); overrides must delegate here.
  virtual void forward(EthernetFrame frame, int ingress_port);

 private:
  Fdb fdb_;
  bool guest_level_;
  std::uint64_t floods_ = 0;
};

}  // namespace nestv::net
