#include "net/stack.hpp"

#include "net/oncache.hpp"
#include "net/pcap.hpp"
#include "net/trace.hpp"
#include "sim/test_hooks.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/tcp.hpp"

namespace nestv::net {

// ---- FullStack --------------------------------------------------------------

FullStack::FullStack(sim::Engine& engine, std::string name,
                     const sim::CostModel& costs,
                     sim::SerialResource* softirq)
    : StackBackend(engine, std::move(name), costs, softirq),
      nf_(costs),
      fcache_(costs.flowcache_capacity) {
  // Rule-table edits flush exactly the cached flows the changed rule
  // could have matched (on either their ingress or post-NAT header view)
  // — from the flowcache and from the overlay fast-path cache when one is
  // attached.
  nf_.set_mutation_listener([this](const RuleMatch& m) {
    const auto name_of = [this](int ifindex) {
      const auto i = static_cast<std::size_t>(ifindex);
      return ifindex >= 0 && i < ifaces_.size() ? ifaces_[i].cfg.name
                                                : std::string{};
    };
    if (!sim::test_hooks::skip_flowcache_rule_invalidation) {
      fcache_.invalidate_match(m, name_of);
    }
    if (oncache_ != nullptr &&
        !sim::test_hooks::skip_oncache_rule_invalidation) {
      oncache_->invalidate_rule_match(m, name_of);
    }
  });
  // Interface 0 is always loopback.
  Interface lo;
  lo.cfg.name = "lo";
  lo.cfg.ip = Ipv4Address(127, 0, 0, 1);
  lo.cfg.subnet = Ipv4Cidr(Ipv4Address(127, 0, 0, 0), 8);
  lo.cfg.mtu = 65536;
  lo.cfg.gso_bytes = costs.gso_loopback;
  ifaces_.push_back(std::move(lo));
  routes_.add_connected(ifaces_[0].cfg.subnet, 0);
}

FullStack::~FullStack() = default;

int FullStack::add_interface(InterfaceBackend& backend,
                             const InterfaceConfig& cfg) {
  const int ifindex = static_cast<int>(ifaces_.size());
  Interface itf;
  itf.cfg = cfg;
  itf.backend = &backend;
  ifaces_.push_back(std::move(itf));
  backend.set_rx(
      [this, ifindex](EthernetFrame f) { rx(ifindex, std::move(f)); });
  backend.set_rx_train([this, ifindex](std::vector<EthernetFrame> fs) {
    rx_train(ifindex, std::move(fs));
  });
  if (cfg.subnet.prefix_len() > 0) {
    routes_.add_connected(cfg.subnet, ifindex);
  }
  return ifindex;
}

void FullStack::configure_loopback(std::uint32_t gso_bytes) {
  ifaces_[0].cfg.gso_bytes = gso_bytes;
}

int FullStack::ifindex_of(const std::string& name) const {
  for (std::size_t i = 0; i < ifaces_.size(); ++i) {
    if (ifaces_[i].cfg.name == name) return static_cast<int>(i);
  }
  return -1;
}

Ipv4Address FullStack::iface_ip(int ifindex) const {
  return ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.ip;
}

MacAddress FullStack::iface_mac(int ifindex) const {
  return ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.mac;
}

void FullStack::set_iface_gso(int ifindex, std::uint32_t gso_bytes) {
  ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.gso_bytes = gso_bytes;
}

void FullStack::seed_neighbor(int ifindex, Ipv4Address ip,
                              MacAddress mac) {
  ifaces_.at(static_cast<std::size_t>(ifindex))
      .neighbors.insert(ip, mac, engine_->now());
}

std::uint32_t FullStack::egress_gso(Ipv4Address dst) const {
  if (is_local_address(dst)) return ifaces_[0].cfg.gso_bytes;
  const auto r = routes_.lookup(dst);
  if (!r || r->ifindex < 0 ||
      static_cast<std::size_t>(r->ifindex) >= ifaces_.size()) {
    return 1448;
  }
  return ifaces_[static_cast<std::size_t>(r->ifindex)].cfg.gso_bytes;
}

bool FullStack::is_local_address(Ipv4Address a) const {
  if (a.is_loopback()) return true;
  for (const Interface& i : ifaces_) {
    if (!i.cfg.ip.is_unspecified() && i.cfg.ip == a) return true;
  }
  return false;
}

// ---- RX path ----------------------------------------------------------------

void FullStack::rx(int ifindex, EthernetFrame frame) {
  const Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  if (capture_ != nullptr) capture_->record(engine_->now(), frame);
  // MAC filter: frames not for us (Hostlo's reflect-to-all-queues shows
  // every endpoint every frame) cost a lookup and are dropped here.
  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast() &&
      frame.dst != itf.cfg.mac) {
    softirq_run(costs_->arp_hit, [this] { ++dropped_; });
    return;
  }
  if (frame.ethertype == 0x0806) {
    softirq_run(costs_->arp_hit,
                [this, ifindex, f = std::move(frame)] { handle_arp(ifindex, f); });
    return;
  }
  if (frame.ethertype != 0x0800) {
    ++dropped_;
    return;
  }
  Packet p = std::move(frame.packet);
  if (nestv_trace_enabled())
    std::fprintf(stderr, "[%s t=%llu] rx if=%d %s\n", name_.c_str(),
                 (unsigned long long)engine_->now(), ifindex, p.describe().c_str());
  p.ct_id = 0;  // conntrack attachment is per-stack
  p.ct_reply = false;
  if (gro_enabled_ && forced_resegment_ == 0 && p.proto == L4Proto::kTcp &&
      p.payload_bytes > 0 && !p.inner) {
    gro_rx(ifindex, std::move(p));
    return;
  }
  ip_rx(ifindex, std::move(p));
}

void FullStack::rx_train(int ifindex, std::vector<EthernetFrame> frames) {
  if (frames.size() == 1) {
    rx(ifindex, std::move(frames[0]));
    return;
  }
  const Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  sim::Duration carry = 0;  // pooled per-frame softirq charges
  const auto flush_carry = [this, &carry] {
    if (carry != 0) {
      softirq_run(carry, [] {});
      carry = 0;
    }
  };
  for (EthernetFrame& frame : frames) {
    if (capture_ != nullptr) capture_->record(engine_->now(), frame);
    if (!frame.dst.is_broadcast() && !frame.dst.is_multicast() &&
        frame.dst != itf.cfg.mac) {
      // MAC filter miss: the lookup cost pools with the other per-frame
      // charges of this train.
      carry += costs_->arp_hit;
      ++dropped_;
      continue;
    }
    if (frame.ethertype == 0x0806) {
      flush_carry();
      softirq_run(costs_->arp_hit, [this, ifindex, f = std::move(frame)] {
        handle_arp(ifindex, f);
      });
      continue;
    }
    if (frame.ethertype != 0x0800) {
      ++dropped_;
      continue;
    }
    Packet p = std::move(frame.packet);
    if (nestv_trace_enabled())
      std::fprintf(stderr, "[%s t=%llu] rx if=%d %s\n", name_.c_str(),
                   (unsigned long long)engine_->now(), ifindex,
                   p.describe().c_str());
    p.ct_id = 0;
    p.ct_reply = false;
    if (gro_enabled_ && forced_resegment_ == 0 && p.proto == L4Proto::kTcp &&
        p.payload_bytes > 0 && !p.inner) {
      gro_rx(ifindex, std::move(p), &carry);
      continue;
    }
    // Non-GRO packets run their protocol work in submission order behind
    // whatever charges pooled so far.
    flush_carry();
    ip_rx(ifindex, std::move(p));
  }
  flush_carry();
}

void FullStack::gro_rx(int ifindex, Packet p, sim::Duration* carry) {
  const ConnKey key{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
  auto it = gro_flows_.find(key);
  // In train mode the per-frame merge charges pool in *carry; they must be
  // submitted before any flush so the flushed packet's protocol work queues
  // behind them on softirq, same order as per-frame delivery.
  const auto flush_carry = [this, carry] {
    if (carry != nullptr && *carry != 0) {
      softirq_run(*carry, [] {});
      *carry = 0;
    }
  };
  const auto charge_frame = [this, carry] {
    if (carry != nullptr) {
      *carry += costs_->gro_pkt;
    } else {
      softirq_run(costs_->gro_pkt, [] {});
    }
  };

  // Merge only strictly in-order continuations below the 64KB IP limit.
  if (it != gro_flows_.end()) {
    GroFlow& flow = it->second;
    const bool contiguous =
        flow.merged.tcp_seq + flow.merged.payload_bytes == p.tcp_seq;
    if (!contiguous ||
        flow.merged.payload_bytes + p.payload_bytes > 65000 ||
        flow.ifindex != ifindex) {
      flush_carry();
      gro_flush(key);
      it = gro_flows_.end();
    }
  }

  if (it == gro_flows_.end()) {
    GroFlow flow;
    flow.merged = p;
    flow.ifindex = ifindex;
    flow.count = 1;
    const bool flush_now = p.tcp_flags.psh;
    auto [ins, ok] = gro_flows_.emplace(key, std::move(flow));
    (void)ok;
    if (flush_now) {
      flush_carry();
      gro_flush(key);
    } else {
      ins->second.flush_timer = engine_->schedule_in(
          costs_->gro_timeout, [this, key] { gro_flush(key); });
    }
    charge_frame();
    return;
  }

  GroFlow& flow = it->second;
  flow.merged.payload_bytes += p.payload_bytes;
  flow.merged.tcp_ack = p.tcp_ack;
  flow.merged.tcp_flags.psh = flow.merged.tcp_flags.psh || p.tcp_flags.psh;
  flow.merged.tcp_flags.fin = flow.merged.tcp_flags.fin || p.tcp_flags.fin;
  ++flow.count;
  charge_frame();
  if (flow.merged.tcp_flags.psh || flow.merged.tcp_flags.fin) {
    flush_carry();
    gro_flush(key);
  }
}

void FullStack::reassemble_rx(int ifindex, Packet p) {
  const ReassemblyKey key{p.src_ip, p.dst_ip, p.ip_id};
  auto it = reassembly_.find(key);
  if (it == reassembly_.end()) {
    ReassemblyState state;
    state.ifindex = ifindex;
    state.timeout = engine_->schedule_in(sim::seconds(30), [this, key] {
      // RFC 791 reassembly timeout: discard the partial datagram.
      if (reassembly_.erase(key) > 0) ++reassembly_failures_;
    });
    it = reassembly_.emplace(key, std::move(state)).first;
  }
  ReassemblyState& state = it->second;
  state.received += p.payload_bytes;
  if (!p.frag_more) {
    state.total = p.frag_offset + p.payload_bytes;
  }
  if (p.frag_offset == 0) {
    state.first = std::move(p);  // carries the L4 header fields
  }
  // Per-fragment kernel work (lookup + queueing into the frag queue).
  softirq_run(costs_->gro_pkt, [] {});

  if (state.total != 0 && state.received >= state.total) {
    Packet merged = std::move(state.first);
    merged.payload_bytes = state.total;
    merged.frag_more = false;
    merged.frag_offset = 0;
    const int in_if = state.ifindex;
    engine_->cancel(state.timeout);
    reassembly_.erase(it);
    ip_rx(in_if, std::move(merged));
  }
}

void FullStack::gro_flush(const ConnKey& key) {
  const auto it = gro_flows_.find(key);
  if (it == gro_flows_.end()) return;
  GroFlow flow = std::move(it->second);
  // Cancelling an already-fired timer is a safe no-op (EventQueue tracks
  // pending ids), so flushing from the timer itself needs no special case.
  if (flow.flush_timer != 0) engine_->cancel(flow.flush_timer);
  gro_flows_.erase(it);
  ip_rx(flow.ifindex, std::move(flow.merged));
}

void FullStack::ip_rx(int ifindex, Packet p) {
  // nf_defrag: fragments are reassembled before any hook runs.
  if (p.frag_more || p.frag_offset > 0) {
    reassemble_rx(ifindex, std::move(p));
    return;
  }
  // br_netfilter linearization: split oversized TCP GSO frames so each
  // resulting packet traverses the hooks (and pays their cost) separately.
  if (forced_resegment_ != 0 && p.proto == L4Proto::kTcp &&
      p.payload_bytes > forced_resegment_) {
    std::uint32_t offset = 0;
    while (offset < p.payload_bytes) {
      const std::uint32_t chunk =
          std::min(forced_resegment_, p.payload_bytes - offset);
      Packet piece = p;
      piece.tcp_seq = p.tcp_seq + offset;
      piece.payload_bytes = chunk;
      piece.tcp_flags.psh =
          p.tcp_flags.psh && offset + chunk >= p.payload_bytes;
      offset += chunk;
      ip_rx_one(ifindex, std::move(piece));
    }
    return;
  }
  ip_rx_one(ifindex, std::move(p));
}

void FullStack::ip_rx_one(int ifindex, Packet p) {
  if (oncache_ != nullptr && oncache_rx(ifindex, p)) return;
  if (flowcache_enabled_ && flowcache_rx(ifindex, p)) return;
  // Remember the ingress-time identity before any hook rewrites headers;
  // the slow path memoizes its outcome under this key.
  std::optional<flowcache::FlowKey> fkey;
  if (flowcache_enabled_) fkey = flowcache::FlowKey::of(p, ifindex);

  const std::string& in_name =
      ifaces_.at(static_cast<std::size_t>(ifindex)).cfg.name;

  sim::Duration cost = costs_->route_lookup;
  const auto pre = nf_.run_hook(Hook::kPrerouting, p, in_name, "",
                                engine_->now());
  cost += pre.cost;
  if (pre.verdict == Verdict::kDrop) {
    if (nestv_trace_enabled()) std::fprintf(stderr, "[%s] DROP pre %s\n", name_.c_str(), p.describe().c_str());
    softirq_run(cost, [this] { ++dropped_; });
    return;
  }

  if (is_local_address(p.dst_ip)) {
    if (nestv_trace_enabled()) std::fprintf(stderr, "[%s] LOCAL %s\n", name_.c_str(), p.describe().c_str());
    const auto input =
        nf_.run_hook(Hook::kInput, p, in_name, "", engine_->now());
    cost += input.cost;
    if (input.verdict == Verdict::kDrop) {
      softirq_run(cost, [this] { ++dropped_; });
      return;
    }
    if (fkey) {
      record_flow(*fkey, p, flowcache::CachedPath::Action::kDeliverLocal,
                  -1, MacAddress{});
    }
    softirq_run(cost, [this, ifindex, pkt = std::move(p)]() mutable {
      deliver_local(std::move(pkt), ifindex);
    });
    return;
  }

  if (!forwarding_) {
    if (nestv_trace_enabled()) std::fprintf(stderr, "[%s] DROP nofwd %s\n", name_.c_str(), p.describe().c_str());
    softirq_run(cost, [this] { ++dropped_; });
    return;
  }
  const auto fwd =
      nf_.run_hook(Hook::kForward, p, in_name, "", engine_->now());
  cost += fwd.cost;
  if (fwd.verdict == Verdict::kDrop) {
    if (nestv_trace_enabled()) std::fprintf(stderr, "[%s] DROP fwdchain %s\n", name_.c_str(), p.describe().c_str());
    softirq_run(cost, [this] { ++dropped_; });
    return;
  }
  const auto route = routes_.lookup(p.dst_ip);
  if (!route || route->ifindex <= 0) {
    if (nestv_trace_enabled()) std::fprintf(stderr, "[%s] DROP noroute %s\n", name_.c_str(), p.describe().c_str());
    softirq_run(cost, [this] { ++dropped_; });
    return;
  }
  if (p.ttl <= 1) {
    softirq_run(cost, [this, pkt = p] {
      ++dropped_;
      send_icmp_error(pkt, 11, 0);  // time exceeded in transit
    });
    return;
  }
  p.ttl -= 1;
  ++forwarded_;
  if (forward_jitter_sigma_ > 0.0) {
    // Mean-1 lognormal (mu = -sigma^2/2) so jitter adds variance without
    // shifting the calibrated average forwarding cost.
    const double s = forward_jitter_sigma_;
    cost = static_cast<sim::Duration>(
        static_cast<double>(cost) * jitter_rng_.lognormal(-0.5 * s * s, s));
  }
  if (nestv_trace_enabled()) std::fprintf(stderr, "[%s t=%llu] fwd-sched out=%d cost=%llu busy_until=%llu %s\n", name_.c_str(), (unsigned long long)engine_->now(), route->ifindex, (unsigned long long)cost, (unsigned long long)(softirq_ ? softirq_->busy_until() : 0), p.describe().c_str());
  // Init-capture the interface name: a plain copy-capture of the
  // `const std::string&` would make the closure member `const std::string`,
  // whose "move" is a throwing copy — disqualifying the closure from
  // InlineTask's inline storage and putting a heap allocation on every
  // forwarded packet.
  softirq_run(cost, [this, pkt = std::move(p), out = route->ifindex,
                     in_name = std::string(in_name), fkey]() mutable {
    egress(std::move(pkt), out, in_name, fkey);
  });
}

// ---- local delivery ----------------------------------------------------------

void FullStack::deliver_local(Packet p, int ifindex) {
  (void)ifindex;
  ++delivered_;
  if (p.proto == L4Proto::kUdp) {
    deliver_udp(std::move(p));
  } else if (p.proto == L4Proto::kTcp) {
    deliver_tcp(std::move(p));
  } else if (p.proto == L4Proto::kIcmp) {
    deliver_icmp(p);
  } else {
    ++dropped_;
  }
}

void FullStack::deliver_icmp(const Packet& p) {
  if (p.icmp_type == 8) {
    // Echo request: reply in kernel context (no app wakeup).
    Packet reply;
    reply.src_ip = p.dst_ip;
    reply.dst_ip = p.src_ip;
    reply.proto = L4Proto::kIcmp;
    reply.icmp_type = 0;
    reply.icmp_id = p.icmp_id;
    reply.icmp_seq = p.icmp_seq;
    reply.payload_bytes = p.payload_bytes;
    reply.packet_id = next_packet_id();
    reply.sent_at = p.sent_at;  // requester's timestamp rides along
    l4_emit(costs_->l4_segment, std::move(reply));
    return;
  }
  if (p.icmp_type == 0) {
    // Echo reply: complete the matching ping.
    const auto it = pings_.find(p.icmp_seq);
    if (it != pings_.end()) {
      auto done = std::move(it->second.done);
      const auto rtt = engine_->now() - it->second.sent_at;
      pings_.erase(it);
      if (done) done(rtt);
    }
    return;
  }
  // Errors (3 = destination unreachable, 11 = time exceeded).
  if (icmp_error_handler_) icmp_error_handler_(p);
}

void FullStack::send_icmp_error(const Packet& offender, std::uint8_t type,
                                std::uint8_t code) {
  // Never generate errors about ICMP errors (RFC 1122) or unknown sources.
  if (offender.proto == L4Proto::kIcmp && offender.icmp_type != 8) return;
  if (offender.src_ip.is_unspecified()) return;
  ++icmp_errors_tx_;
  Packet err;
  // Report from the receiving interface's primary address.
  err.src_ip = ifaces_.size() > 1 ? ifaces_[1].cfg.ip : ifaces_[0].cfg.ip;
  err.dst_ip = offender.src_ip;
  err.proto = L4Proto::kIcmp;
  err.icmp_type = type;
  err.icmp_code = code;
  // The error quotes the offending header: IP + 8 bytes.
  err.payload_bytes = kIpv4HeaderBytes + 8;
  err.packet_id = next_packet_id();
  err.sent_at = engine_->now();
  l4_emit(costs_->l4_segment, std::move(err));
}

void FullStack::udp_unbound(const Packet& p) {
  send_icmp_error(p, 3, 3);  // destination port unreachable
}

// ---- TX path -------------------------------------------------------------------

void FullStack::emit_packet(Packet p) {
  p.ct_id = 0;
  p.ct_reply = false;
  if (p.packet_id == 0) p.packet_id = next_packet_id();

  sim::Duration cost = costs_->route_lookup;
  const auto out_hook =
      nf_.run_hook(Hook::kOutput, p, "", "", engine_->now());
  cost += out_hook.cost;
  if (out_hook.verdict == Verdict::kDrop) {
    softirq_run(cost, [this] { ++dropped_; });
    return;
  }

  if (is_local_address(p.dst_ip)) {
    // Loopback: lo device work, then straight to local delivery (the
    // SameNode intra-pod path of figs 10-13).
    const auto& c = *costs_;
    cost += c.loopback_pkt +
            static_cast<sim::Duration>(c.loopback_copy_byte *
                                       static_cast<double>(p.payload_bytes));
    const auto input = nf_.run_hook(Hook::kInput, p, "lo", "", engine_->now());
    cost += input.cost;
    if (input.verdict == Verdict::kDrop) {
      softirq_run(cost, [this] { ++dropped_; });
      return;
    }
    softirq_run(cost, [this, pkt = std::move(p)]() mutable {
      deliver_local(std::move(pkt), 0);
    });
    return;
  }

  const auto route = routes_.lookup(p.dst_ip);
  if (!route || route->ifindex <= 0) {
    softirq_run(cost, [this] { ++dropped_; });
    return;
  }
  softirq_run(cost, [this, pkt = std::move(p), out = route->ifindex]() mutable {
    egress(std::move(pkt), out, "");
  });
}

void FullStack::egress(Packet p, int out_ifindex,
                       const std::string& in_iface,
                       std::optional<flowcache::FlowKey> record) {
  if (nestv_trace_enabled()) std::fprintf(stderr, "[%s t=%llu] egress if=%d %s\n", name_.c_str(), (unsigned long long)engine_->now(), out_ifindex, p.describe().c_str());
  const Interface& itf = ifaces_.at(static_cast<std::size_t>(out_ifindex));
  const auto post = nf_.run_hook(Hook::kPostrouting, p, in_iface,
                                 itf.cfg.name, engine_->now());
  if (post.verdict == Verdict::kDrop) {
    if (nestv_trace_enabled()) std::fprintf(stderr, "[%s] DROP post %s\n", name_.c_str(), p.describe().c_str());
    softirq_run(post.cost, [this] { ++dropped_; });
    return;
  }
  softirq_run(post.cost,
              [this, pkt = std::move(p), out_ifindex, record]() mutable {
                arp_resolve_and_send(std::move(pkt), out_ifindex, record);
              });
}

void FullStack::arp_resolve_and_send(
    Packet p, int out_ifindex, std::optional<flowcache::FlowKey> record) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(out_ifindex));
  if (itf.backend == nullptr) {
    // Hot-unplugged (QMP device_del): the netdev is gone, traffic routed
    // at it is dropped like a carrier-less link.
    ++dropped_;
    return;
  }
  // ip_fragment: UDP datagrams larger than the egress MTU leave as
  // 8-byte-aligned fragments sharing the datagram's ip_id.
  const std::uint32_t mtu_payload =
      itf.cfg.mtu > (kIpv4HeaderBytes + kUdpHeaderBytes)
          ? itf.cfg.mtu - kIpv4HeaderBytes - kUdpHeaderBytes
          : 1472;
  if (p.proto == L4Proto::kUdp && !p.frag_more && p.frag_offset == 0 &&
      p.payload_bytes > mtu_payload) {
    const std::uint32_t chunk = mtu_payload & ~7u;  // 8-byte aligned
    if (p.ip_id == 0) p.ip_id = next_ip_id_++;
    std::uint32_t offset = 0;
    const std::uint32_t total = p.payload_bytes;
    while (offset < total) {
      Packet piece = p;
      piece.frag_offset = static_cast<std::uint16_t>(offset);
      piece.payload_bytes = std::min(chunk, total - offset);
      piece.frag_more = offset + piece.payload_bytes < total;
      offset += piece.payload_bytes;
      arp_resolve_and_send(std::move(piece), out_ifindex);
    }
    return;
  }
  if (nestv_trace_enabled())
    std::fprintf(stderr, "[%s t=%llu] arp_resolve %s\n", name_.c_str(),
                 (unsigned long long)engine_->now(), p.describe().c_str());
  const auto route = routes_.lookup(p.dst_ip);
  const Ipv4Address next_hop = route ? route->next_hop : p.dst_ip;

  const auto mac = itf.neighbors.lookup(next_hop, engine_->now());
  if (!mac) {
    auto& pending = itf.arp_pending[next_hop];
    pending.push_back(std::move(p));
    // One outstanding request per next-hop; later packets just park.
    if (pending.size() == 1) send_arp_request(out_ifindex, next_hop);
    return;
  }
  if (record) {
    // Whole path resolved (hooks run, route picked, L2 next hop known):
    // memoize it so the flow's next packets skip all of the above.
    record_flow(*record, p, flowcache::CachedPath::Action::kForward,
                out_ifindex, *mac);
  }
  if (oncache_ != nullptr && p.inner) {
    // An encapsulated outer packet fully resolved: close the pending
    // overlay record opened at the bridge and promoted by the VTEP.
    oncache_->complete_egress(p, out_ifindex, *mac);
  }
  EthernetFrame f;
  f.src = itf.cfg.mac;
  f.dst = *mac;
  f.ethertype = 0x0800;
  f.packet = std::move(p);
  if (capture_ != nullptr) capture_->record(engine_->now(), f);
  itf.backend->xmit(std::move(f));
}

void FullStack::send_arp_request(int ifindex, Ipv4Address target) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  ++arp_tx_;
  EthernetFrame f;
  f.src = itf.cfg.mac;
  f.dst = MacAddress::broadcast();
  f.ethertype = 0x0806;
  f.arp_is_request = true;
  f.arp_sender_ip = itf.cfg.ip;
  f.arp_sender_mac = itf.cfg.mac;
  f.arp_target_ip = target;
  itf.backend->xmit(std::move(f));
}

void FullStack::handle_arp(int ifindex, const EthernetFrame& frame) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  // Learn the sender either way.
  itf.neighbors.insert(frame.arp_sender_ip, frame.arp_sender_mac,
                       engine_->now());

  if (frame.arp_is_request && frame.arp_target_ip == itf.cfg.ip) {
    EthernetFrame reply;
    reply.src = itf.cfg.mac;
    reply.dst = frame.arp_sender_mac;
    reply.ethertype = 0x0806;
    reply.arp_is_request = false;
    reply.arp_sender_ip = itf.cfg.ip;
    reply.arp_sender_mac = itf.cfg.mac;
    reply.arp_target_ip = frame.arp_sender_ip;
    itf.backend->xmit(std::move(reply));
  }

  // Flush packets parked on this resolution.
  const auto pending = itf.arp_pending.find(frame.arp_sender_ip);
  if (pending != itf.arp_pending.end()) {
    std::vector<Packet> pkts = std::move(pending->second);
    itf.arp_pending.erase(pending);
    for (Packet& p : pkts) {
      arp_resolve_and_send(std::move(p), ifindex);
    }
  }
}

void FullStack::loopback_deliver(Packet p) { deliver_local(std::move(p), 0); }

// ---- flow cache ------------------------------------------------------------

bool FullStack::flowcache_rx(int ifindex, Packet& p) {
  using Action = flowcache::CachedPath::Action;
  const auto key = flowcache::FlowKey::of(p, ifindex);
  const flowcache::CachedPath* path = fcache_.lookup(key);
  if (path == nullptr) return false;

  // Validate the authoritative state the cache cannot watch: the routing
  // table generation and the conntrack backing.  Stale entries are flushed
  // and the packet falls through to the slow path (which re-records).
  if (path->routes_gen != static_cast<std::uint16_t>(routes_.generation()) ||
      (path->ct_id != 0 && !nf_.conn_alive(path->ct_id))) {
    fcache_.invalidate(key);
    return false;
  }
  if (path->action == Action::kForward) {
    const auto idx = static_cast<std::size_t>(path->out_ifindex);
    if (path->out_ifindex <= 0 || idx >= ifaces_.size() ||
        ifaces_[idx].backend == nullptr) {
      fcache_.invalidate(key);
      return false;
    }
    if (p.ttl <= 1) return false;  // slow path owns the ICMP error
  }

  if (nestv_trace_enabled())
    std::fprintf(stderr, "[%s t=%llu] fcache-hit if=%d %s\n", name_.c_str(),
                 (unsigned long long)engine_->now(), ifindex,
                 p.describe().c_str());

  sim::Duration cost = path->fast_cost;
  // Apply the memoized NAT rewrite (identity when the flow is untranslated).
  p.src_ip = path->new_src_ip;
  p.dst_ip = path->new_dst_ip;
  p.src_port = path->new_src_port;
  p.dst_port = path->new_dst_port;
  p.ct_id = path->ct_id;
  if (path->ct_id != 0) nf_.touch(path->ct_id, engine_->now());

  switch (path->action) {
    case Action::kDrop:
      softirq_run(cost, [this] { ++dropped_; });
      return true;
    case Action::kDeliverLocal:
      softirq_run(cost, [this, ifindex, pkt = std::move(p)]() mutable {
        deliver_local(std::move(pkt), ifindex);
      });
      return true;
    case Action::kForward: {
      p.ttl -= 1;
      ++forwarded_;
      if (forward_jitter_sigma_ > 0.0) {
        // Same mean-1 lognormal noise as the slow forwarding path.
        const double s = forward_jitter_sigma_;
        cost = static_cast<sim::Duration>(
            static_cast<double>(cost) *
            jitter_rng_.lognormal(-0.5 * s * s, s));
      }
      softirq_run(cost, [this, pkt = std::move(p), out = path->out_ifindex,
                         mac = path->next_hop_mac]() mutable {
        Interface& itf = ifaces_.at(static_cast<std::size_t>(out));
        if (itf.backend == nullptr) {  // unplugged while queued
          ++dropped_;
          return;
        }
        EthernetFrame f;
        f.src = itf.cfg.mac;
        f.dst = mac;
        f.ethertype = 0x0800;
        f.packet = std::move(pkt);
        if (capture_ != nullptr) capture_->record(engine_->now(), f);
        itf.backend->xmit(std::move(f));
      });
      return true;
    }
  }
  return false;
}

// ---- oncache overlay fast path ---------------------------------------------

bool FullStack::oncache_rx(int ifindex, Packet& p) {
  (void)ifindex;
  if (!oncache_->enabled()) return false;
  // Only VXLAN datagrams addressed to this stack's VTEP port qualify; the
  // inner frame must be present (truncated payloads take the slow path and
  // are dropped by the VTEP there).
  if (p.proto != L4Proto::kUdp || !p.inner ||
      p.dst_port != oncache_->vtep_port() || !is_local_address(p.dst_ip)) {
    return false;
  }
  const oncache::IngressPath* path = oncache_->match_ingress(p);
  if (path == nullptr) return false;
  if (nestv_trace_enabled())
    std::fprintf(stderr, "[%s t=%llu] oncache-hit rx %s\n", name_.c_str(),
                 (unsigned long long)engine_->now(), p.describe().c_str());
  ++delivered_;  // the outer datagram was locally delivered (fused)
  const sim::Duration cost =
      path->fast_cost +
      static_cast<sim::Duration>(
          costs_->vxlan_copy_byte *
          static_cast<double>(p.inner->wire_bytes()));
  const int out_port = path->out_port;
  // Sole consumer: steal the inner frame, as the VTEP slow path does.
  EthernetFrame inner = std::move(*p.inner);
  softirq_run(cost, [this, out_port, f = std::move(inner)]() mutable {
    oncache_->deliver_ingress(out_port, std::move(f));
  });
  return true;
}

void FullStack::oncache_xmit(int out_ifindex, EthernetFrame frame) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(out_ifindex));
  if (itf.backend == nullptr) {
    // Hot-unplugged while the fused event was in flight.
    ++dropped_;
    return;
  }
  if (capture_ != nullptr) capture_->record(engine_->now(), frame);
  itf.backend->xmit(std::move(frame));
}

void FullStack::record_flow(const flowcache::FlowKey& key, const Packet& p,
                            flowcache::CachedPath::Action action,
                            int out_ifindex, MacAddress next_hop_mac) {
  flowcache::CachedPath path;
  path.action = action;
  path.out_ifindex = static_cast<std::int16_t>(out_ifindex);
  path.new_src_ip = p.src_ip;
  path.new_dst_ip = p.dst_ip;
  path.new_src_port = p.src_port;
  path.new_dst_port = p.dst_port;
  path.rewrites = p.src_ip != key.src_ip || p.dst_ip != key.dst_ip ||
                  p.src_port != key.src_port || p.dst_port != key.dst_port;
  path.next_hop_mac = next_hop_mac;
  path.ct_id = p.ct_id;
  path.fast_cost = static_cast<std::uint32_t>(
      costs_->flowcache_hit +
      (path.rewrites ? costs_->flowcache_rewrite : 0));
  path.routes_gen = static_cast<std::uint16_t>(routes_.generation());
  // Building the entry is not free: one-time softirq charge per flow.
  softirq_run(costs_->flowcache_insert, [] {});
  fcache_.insert(key, std::move(path));
}

std::size_t FullStack::conntrack_gc(sim::Duration idle_timeout) {
  const auto reaped = nf_.gc(engine_->now(), idle_timeout);
  for (const std::uint64_t id : reaped) {
    fcache_.invalidate_conn(id);
    // Overlay egress entries carry the outer connection's ct_id; a cached
    // entry must never outlive its conntrack backing.
    if (oncache_ != nullptr) oncache_->invalidate_conn(id);
  }
  return reaped.size();
}

void FullStack::detach_interface(int ifindex) {
  Interface& itf = ifaces_.at(static_cast<std::size_t>(ifindex));
  if (itf.backend != nullptr) itf.backend->set_rx({});
  itf.backend = nullptr;
  // Parked packets die with the netdev.
  for (const auto& [next_hop, pkts] : itf.arp_pending) {
    dropped_ += pkts.size();
  }
  itf.arp_pending.clear();
  // Targeted flush: only flows entering or leaving this ifindex.
  fcache_.invalidate_ifindex(ifindex);
  // Overlay entries leaving the dead NIC (and, if it was the VTEP uplink,
  // everything that could have arrived through it).
  if (oncache_ != nullptr) oncache_->invalidate_egress_ifindex(ifindex);
}

// ---- ICMP API -------------------------------------------------------------------

void FullStack::ping(Ipv4Address dst, std::uint32_t payload_bytes,
                     std::function<void(sim::Duration)> done) {
  const std::uint16_t seq = next_ping_seq_++;
  pings_[seq] = PendingPing{engine_->now(), std::move(done)};
  Packet p;
  // Source selection: first non-loopback interface, as the FIB would pick.
  p.src_ip = ifaces_.size() > 1 ? ifaces_[1].cfg.ip : ifaces_[0].cfg.ip;
  p.dst_ip = dst;
  p.proto = L4Proto::kIcmp;
  p.icmp_type = 8;
  p.icmp_id = 1;
  p.icmp_seq = seq;
  p.payload_bytes = payload_bytes;
  p.packet_id = next_packet_id();
  p.sent_at = engine_->now();
  l4_emit(costs_->l4_segment, std::move(p));
}

}  // namespace nestv::net
