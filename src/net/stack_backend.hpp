// StackBackend: the pluggable seam between guests and their network stack.
//
// Captures the NetworkStack contract — interface attach, the UDP/TCP socket
// API, rx/rx_train ingress, softirq/app resource binding and the optional
// netfilter/flowcache hooks — so alternative stacks can slot in behind one
// interface (NetKernel's "network stack as part of the virtualized
// infrastructure" argument).  Three backends exist:
//   * FullStack      — the original stack (net/stack.hpp): netfilter,
//                      forwarding, GRO/reassembly, flowcache, ICMP.
//   * FastPathStack  — compact stream-oriented stack, fixed pipeline, no
//                      netfilter traversal (net/faststack.hpp).
//   * StackService   — FullStack instances hosted on one shared host-side
//                      worker for N guests (net/stack_service.hpp).
//
// The socket layer (UDP/TCP tables, syscall charging, L4 demux, TCP
// connection ownership) lives here as shared non-virtual code: every
// backend speaks exactly the same application ABI, and the differential
// fuzz oracle leans on that to compare backends end-to-end.
//
// CPU model (unchanged from the pre-seam stack): protocol work runs on the
// backend's softirq SerialResource charged as kSoft; socket syscall work is
// charged to the calling application's resource as kSys.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/inline_task.hpp"
#include "sim/resource.hpp"

namespace nestv::net {

class InterfaceBackend;
class Netfilter;
class PcapWriter;
class RoutingTable;
class TcpConnection;
class StackBackend;
namespace flowcache {
class FlowCache;
}  // namespace flowcache
namespace oncache {
class OnCache;
}  // namespace oncache

/// Which concrete stack implementation sits behind a StackBackend*.
enum class StackKind : std::uint8_t {
  kFullStack,      ///< the original full-featured stack (net/stack.hpp)
  kFastPath,       ///< compact stream-oriented stack (net/faststack.hpp)
  kServiceHosted,  ///< FullStack hosted by a shared StackService worker
};

/// Requested stack flavour when constructing a guest/pod namespace.
enum class StackMode : std::uint8_t {
  kFull,      ///< FullStack owned by the guest (default; pre-seam behavior)
  kFastPath,  ///< FastPathStack owned by the guest
  kService,   ///< stack hosted by a StackService (NetKernel-style)
};

[[nodiscard]] const char* to_string(StackKind kind);
[[nodiscard]] const char* to_string(StackMode mode);

/// Application-facing handle to one TCP connection.
class TcpSocket {
 public:
  /// Queues `bytes` for transmission.  `app` is charged the syscall and
  /// user->kernel copy; segmentation happens asynchronously in softirq.
  /// `on_queued` (optional) fires once the bytes entered the send buffer —
  /// i.e. when the (blocking) send() syscall would have returned.
  void send(std::uint32_t bytes, sim::InlineTask&& on_queued = {});

  /// Called with the byte count of each chunk delivered to the app.
  void set_on_receive(sim::InlineHandler<std::uint32_t> cb);
  /// Called once the three-way handshake completes (client side).
  void set_on_connected(sim::InlineHandler<> cb);
  void set_on_closed(sim::InlineHandler<> cb);
  /// Fires whenever the send buffer drains below one window.
  void set_on_writable(sim::InlineHandler<> cb);

  void close();

  [[nodiscard]] bool established() const;
  [[nodiscard]] std::uint64_t bytes_received() const;
  [[nodiscard]] std::uint64_t bytes_sent() const;
  [[nodiscard]] std::uint64_t retransmits() const;
  [[nodiscard]] std::uint32_t buffered() const;
  [[nodiscard]] std::uint16_t local_port() const;
  [[nodiscard]] std::uint16_t remote_port() const;
  /// Effective congestion window (== flow-control window when congestion
  /// control is disabled in the cost model).
  [[nodiscard]] std::uint32_t congestion_window() const;
  /// Smoothed RTT estimate in ns (0 until the first sample; congestion
  /// control must be enabled).
  [[nodiscard]] double srtt_ns() const;

 private:
  friend class StackBackend;
  friend class TcpConnection;
  explicit TcpSocket(TcpConnection* conn) : conn_(conn) {}
  TcpConnection* conn_;
};

struct InterfaceConfig {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
  Ipv4Cidr subnet;
  std::uint32_t mtu = 1500;
  /// Effective TCP segment size when transmitting out this interface
  /// (models TSO/GSO; see CostModel's gso_* discussion).
  std::uint32_t gso_bytes = 1448;
};

class StackBackend {
 public:
  StackBackend(sim::Engine& engine, std::string name,
               const sim::CostModel& costs, sim::SerialResource* softirq);
  virtual ~StackBackend();

  StackBackend(const StackBackend&) = delete;
  StackBackend& operator=(const StackBackend&) = delete;

  [[nodiscard]] virtual StackKind kind() const = 0;

  // ---- configuration ----------------------------------------------------
  /// Attaches an interface; the backend installs itself as the device's RX
  /// handler and adds a connected route for the subnet.  Returns ifindex.
  virtual int add_interface(InterfaceBackend& backend,
                            const InterfaceConfig& cfg) = 0;

  /// The loopback interface (always ifindex 0); gso defaults to the cost
  /// model's gso_loopback.
  virtual void configure_loopback(std::uint32_t gso_bytes) = 0;

  [[nodiscard]] virtual RoutingTable& routes() = 0;
  [[nodiscard]] virtual int ifindex_of(const std::string& name) const = 0;
  [[nodiscard]] virtual Ipv4Address iface_ip(int ifindex) const = 0;
  [[nodiscard]] virtual MacAddress iface_mac(int ifindex) const = 0;
  virtual void set_iface_gso(int ifindex, std::uint32_t gso_bytes) = 0;
  /// Pre-seeds an ARP entry (tests & deterministic startup).
  virtual void seed_neighbor(int ifindex, Ipv4Address ip, MacAddress mac) = 0;
  /// NIC hot-unplug (QMP device_del): detaches the backend so the ifindex
  /// goes dead — queued/parked packets drop.
  virtual void detach_interface(int ifindex) = 0;
  /// Interfaces ever attached, loopback included (dead ifindexes count).
  [[nodiscard]] virtual std::size_t interface_count() const = 0;

  // ---- optional capabilities --------------------------------------------
  // Backends without a feature throw std::logic_error from accessors whose
  // result the caller needs (asking a FastPathStack for netfilter is a
  // wiring bug), and accept mutators as no-ops where ignoring is sound
  // (GRO, flowcache and ICMP-error delivery are transparent to
  // applications).  Capability queries let consumers branch.
  [[nodiscard]] virtual bool has_netfilter() const { return false; }
  [[nodiscard]] virtual Netfilter& netfilter();
  [[nodiscard]] virtual const Netfilter& netfilter() const;
  virtual void set_forwarding(bool on);
  virtual void set_forced_resegment(std::uint32_t bytes);
  virtual void set_forward_jitter(double sigma, std::uint64_t seed);
  virtual void set_gro(bool on);

  [[nodiscard]] virtual bool has_flowcache() const { return false; }
  virtual void set_flowcache(bool on);
  [[nodiscard]] virtual bool flowcache_enabled() const { return false; }
  [[nodiscard]] virtual flowcache::FlowCache& flow_cache();
  [[nodiscard]] virtual const flowcache::FlowCache& flow_cache() const;

  /// Overlay fast-path cache (net/oncache) for the overlay this stack's
  /// VTEP serves; non-owning, one per stack.  Every backend accepts the
  /// attachment (null guards only); recording and the ingress fast path
  /// live in FullStack, so a cache attached to another backend simply
  /// stays cold (the FastPathStack-hosted VTEP case).
  void attach_oncache(oncache::OnCache* cache) { oncache_ = cache; }
  [[nodiscard]] oncache::OnCache* attached_oncache() const {
    return oncache_;
  }
  /// Transmits a fully resolved frame out `ifindex` — the last hop of the
  /// oncache egress fast path (hooks, route and ARP already memoized).
  /// The base backend has no interface table; it drops.
  virtual void oncache_xmit(int out_ifindex, EthernetFrame frame) {
    (void)out_ifindex;
    (void)frame;
    ++dropped_;
  }

  /// Conntrack garbage collection; returns reaped connections (0 when the
  /// backend keeps no conntrack).
  virtual std::size_t conntrack_gc(sim::Duration idle_timeout);

  /// Sends an echo request; `done` fires with the round-trip time when the
  /// reply arrives.  Unanswered pings simply never call back.
  virtual void ping(Ipv4Address dst, std::uint32_t payload_bytes,
                    std::function<void(sim::Duration rtt)> done);

  /// ICMP errors addressed to this stack (destination unreachable, time
  /// exceeded) are passed here; the packet carries icmp_type/icmp_code and
  /// the src_ip of the reporting hop.
  virtual void set_icmp_error_handler(
      std::function<void(const Packet&)> handler);
  [[nodiscard]] virtual std::uint64_t icmp_errors_sent() const { return 0; }

  // ---- capture / accessors ----------------------------------------------
  /// Attaches a pcap writer capturing every frame this stack receives or
  /// transmits on any interface (like `tcpdump -i any` in the namespace).
  /// The writer must outlive the stack or be detached with nullptr.
  void attach_capture(PcapWriter* writer) { capture_ = writer; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const sim::CostModel& costs() const { return *costs_; }
  [[nodiscard]] sim::SerialResource* softirq() { return softirq_; }

  /// Runs `work` on `res` then `then`, like SerialResource::submit_as, but
  /// in burst mode (batch_size > 1) items for the same resource share drain
  /// events through a per-resource BatchSink — this is how app-side syscall
  /// pairs (send + its on-sent continuation) stop costing two events each.
  /// `res == nullptr` degrades to a pure delay, as the call sites did.
  void resource_run(sim::SerialResource* res, sim::CpuCategory category,
                    sim::Duration work, sim::InlineTask&& then);

  // ---- UDP ----------------------------------------------------------------
  struct UdpDelivery {
    std::uint32_t bytes = 0;
    Ipv4Address src_ip;
    std::uint16_t src_port = 0;
    sim::TimePoint sent_at = 0;  ///< sender's socket-exit timestamp
    /// Encapsulated inner frame (VXLAN); shared so the delivery is copyable.
    std::shared_ptr<EthernetFrame> inner;
  };
  /// Handlers get a mutable delivery so a sole kernel consumer (the VXLAN
  /// VTEP) can steal the inner frame instead of deep-copying it; handlers
  /// that only read may take `const UdpDelivery&` as before.
  using UdpHandler = std::function<void(UdpDelivery&)>;

  /// Binds `port`; deliveries charge `app` (syscall+copy) before `handler`
  /// runs.  `app` may be null (no charge, immediate dispatch after wakeup).
  void udp_bind(std::uint16_t port, sim::SerialResource* app,
                UdpHandler handler);
  /// Kernel-consumer bind (VXLAN VTEP): the handler runs in softirq with no
  /// wakeup latency and no syscall charge.
  void udp_bind_kernel(std::uint16_t port, UdpHandler handler);
  void udp_unbind(std::uint16_t port);

  /// Sends one datagram.  Charges `app` for the syscall, then hands the
  /// packet to the stack.  `on_sent` (optional) fires when the packet has
  /// left the socket (used by closed-loop load generators).
  void udp_send(Ipv4Address src_ip, std::uint16_t src_port,
                Ipv4Address dst_ip, std::uint16_t dst_port,
                std::uint32_t bytes, sim::SerialResource* app,
                sim::InlineTask&& on_sent = {});

  // ---- TCP ----------------------------------------------------------------
  using AcceptHandler = std::function<void(TcpSocket)>;

  /// Listens on `port`; each accepted connection's app work charges `app`.
  void tcp_listen(std::uint16_t port, sim::SerialResource* app,
                  AcceptHandler on_accept);

  /// Opens a client connection.  The returned socket is valid for the
  /// stack's lifetime.
  TcpSocket tcp_connect(Ipv4Address src_ip, Ipv4Address dst_ip,
                        std::uint16_t dst_port, sim::SerialResource* app);

  // ---- datapath (called by backends / internals) -------------------------
  virtual void rx(int ifindex, EthernetFrame frame) = 0;

  /// Burst delivery from a batched backend (one virtio NAPI poll cycle):
  /// the frames traverse the same RX pipeline as rx(), but their per-frame
  /// softirq charges coalesce into shared softirq items, so a k-frame
  /// train costs O(1) events instead of O(k).
  virtual void rx_train(int ifindex, std::vector<EthernetFrame> frames) = 0;

  /// L4 -> network: routes and transmits (plus OUTPUT/POSTROUTING on
  /// backends that run netfilter).  All processing charges softirq.
  virtual void emit_packet(Packet p) = 0;

  /// Charges `l4_work` to softirq, then emits `p` (used by TCP/UDP).
  void l4_emit(sim::Duration l4_work, Packet p);

  /// Effective TCP segment size towards `dst`: loopback GSO for local
  /// destinations, else the egress interface's GSO size.
  [[nodiscard]] virtual std::uint32_t egress_gso(Ipv4Address dst) const = 0;

  // ---- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t packets_forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t arp_requests_sent() const { return arp_tx_; }
  [[nodiscard]] std::uint64_t reassembly_failures() const {
    return reassembly_failures_;
  }

  std::uint64_t next_packet_id() { return next_packet_id_++; }

 protected:
  friend class TcpConnection;

  struct UdpBinding {
    sim::SerialResource* app = nullptr;
    UdpHandler handler;
    bool kernel = false;
  };

  struct TcpKey {
    Ipv4Address local_ip;
    std::uint16_t local_port;
    Ipv4Address remote_ip;
    std::uint16_t remote_port;
    friend bool operator<(const TcpKey& a, const TcpKey& b) {
      return std::tie(a.local_ip, a.local_port, a.remote_ip, a.remote_port) <
             std::tie(b.local_ip, b.local_port, b.remote_ip, b.remote_port);
    }
  };

  struct TcpListener {
    sim::SerialResource* app = nullptr;
    AcceptHandler on_accept;
  };

  /// Runs `work` on softirq (kSoft) then `then`.  Virtual so a
  /// service-hosted stack can attribute the work to its guest's account
  /// before it lands on the shared worker (NetKernel-style per-tenant CPU
  /// accounting); the override must delegate here.
  virtual void softirq_run(sim::Duration work, sim::InlineTask&& then);

  /// L4 demux into the shared socket tables (same for every backend; the
  /// caller has already decided the packet is locally destined and paid
  /// its pipeline's RX costs).
  void deliver_udp(Packet p);
  void deliver_tcp(Packet p);

  /// Hook for datagrams arriving on an unbound port (after the drop is
  /// counted); FullStack answers with ICMP port-unreachable, other
  /// backends stay silent.
  virtual void udp_unbound(const Packet& p);

  TcpConnection& create_connection(const TcpKey& key,
                                   sim::SerialResource* app);

  /// Lets derived backends mint application handles (TcpSocket's
  /// constructor is private; friendship does not inherit).
  static TcpSocket make_socket(TcpConnection* conn) {
    return TcpSocket(conn);
  }

  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  sim::SerialResource* softirq_;
  /// Burst mode: softirq work items (several per packet) share drain events
  /// instead of scheduling one completion each — the ksoftirqd half of the
  /// datapath's event coalescing.  Unused when batch_size <= 1.
  std::unique_ptr<sim::BatchSink> softirq_sink_;
  /// Burst mode: one BatchSink per app resource submitting through this
  /// stack (resource_run), with a one-entry lookup cache.  Unused when
  /// batch_size <= 1.
  std::unordered_map<sim::SerialResource*, std::unique_ptr<sim::BatchSink>>
      app_sinks_;
  sim::SerialResource* last_app_res_ = nullptr;
  sim::BatchSink* last_app_sink_ = nullptr;

  std::map<std::uint16_t, UdpBinding> udp_binds_;
  std::map<std::uint16_t, TcpListener> tcp_listeners_;
  std::map<TcpKey, std::unique_ptr<TcpConnection>> tcp_conns_;
  std::uint16_t next_ephemeral_port_ = 40000;

  PcapWriter* capture_ = nullptr;
  oncache::OnCache* oncache_ = nullptr;

  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t arp_tx_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::uint16_t next_ip_id_ = 1;
  std::uint64_t reassembly_failures_ = 0;
};

/// Constructs a self-contained backend (kFull or kFastPath).  kService
/// stacks are minted by their StackService (they share its worker), so
/// requesting kService here throws std::invalid_argument.
std::unique_ptr<StackBackend> make_stack(StackMode mode, sim::Engine& engine,
                                         std::string name,
                                         const sim::CostModel& costs,
                                         sim::SerialResource* softirq);

}  // namespace nestv::net
