// veth pair: the namespace-crossing virtual cable Docker uses to connect a
// container's eth0 to the node bridge (fig 1a, pod boundary crossing).
//
// Either end can be (a) wired into the device graph (e.g. a bridge port)
// through its port 0, or (b) moved into a network namespace by using it as
// that stack's InterfaceBackend — mirroring `ip link set veth1 netns <pod>`.
#pragma once

#include <memory>
#include <string>

#include "net/backend.hpp"
#include "net/device.hpp"

namespace nestv::net {

class VethPair;

class VethEnd : public Device, public InterfaceBackend {
 public:
  VethEnd(sim::Engine& engine, std::string name, const sim::CostModel& costs);

  // Graph side: frame arrives from the connected peer (bridge, ...).
  void ingress(EthernetFrame frame, int port) override;

  // Stack side (InterfaceBackend).
  void xmit(EthernetFrame frame) override;
  void set_rx(RxHandler handler) override { rx_ = std::move(handler); }
  [[nodiscard]] const std::string& backend_name() const override {
    return Device::name();
  }

 private:
  friend class VethPair;

  /// Crossing cost charged on this (sending) end, then the twin emits.
  void cross(EthernetFrame frame);
  /// Frame emerges from this end: to the stack if attached, else port 0.
  void emerge(EthernetFrame frame);

  VethEnd* twin_ = nullptr;
  RxHandler rx_;
};

/// Owns both ends.  Construct, then attach `a()` and `b()` wherever needed.
class VethPair {
 public:
  VethPair(sim::Engine& engine, const std::string& name,
           const sim::CostModel& costs);

  [[nodiscard]] VethEnd& a() { return *a_; }
  [[nodiscard]] VethEnd& b() { return *b_; }

  /// Binds both ends' crossing work to one CPU (the guest softirq core).
  void set_cpu(sim::SerialResource* cpu, sim::CpuCategory category) {
    a_->set_cpu(cpu, category);
    b_->set_cpu(cpu, category);
  }

 private:
  std::unique_ptr<VethEnd> a_;
  std::unique_ptr<VethEnd> b_;
};

}  // namespace nestv::net
