// VXLAN tunnel endpoint, the substrate of the Docker Overlay baseline
// (figs 10-15).  Frames entering from the overlay bridge are encapsulated
// into UDP datagrams addressed to the destination VTEP and sent through the
// owning guest stack; datagrams arriving on the VTEP port are decapsulated
// and the inner frame re-enters the overlay bridge.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/device.hpp"
#include "net/stack_backend.hpp"

namespace nestv::net {

class VxlanDevice : public Device {
 public:
  static constexpr std::uint16_t kVtepPort = 4789;

  /// `stack` is the namespace owning the underlay interface (the guest
  /// kernel); `local_vtep` its underlay IP.  The device binds the VTEP UDP
  /// port on the stack.  Port 0 attaches to the overlay bridge.
  VxlanDevice(sim::Engine& engine, std::string name,
              const sim::CostModel& costs, StackBackend& stack,
              Ipv4Address local_vtep);

  /// Static L2-to-VTEP table, as docker's overlay driver programs from its
  /// gossip/kv store.  Unknown destinations flood to all known VTEPs.
  void add_remote(MacAddress inner_mac, Ipv4Address vtep);
  void add_flood_target(Ipv4Address vtep);

  /// Overlay bridge -> tunnel.
  void ingress(EthernetFrame frame, int port) override;

  [[nodiscard]] std::uint64_t encapsulated() const { return encap_; }
  [[nodiscard]] std::uint64_t decapsulated() const { return decap_; }

 private:
  void encap_to(Ipv4Address vtep, EthernetFrame inner);
  void on_vtep_datagram(StackBackend::UdpDelivery& d);

  StackBackend* stack_;
  Ipv4Address local_vtep_;
  std::unordered_map<MacAddress, Ipv4Address> l2_table_;
  std::vector<Ipv4Address> flood_;
  std::uint64_t encap_ = 0;
  std::uint64_t decap_ = 0;
};

}  // namespace nestv::net
