// VXLAN tunnel endpoint, the substrate of the Docker Overlay baseline
// (figs 10-15).  Frames entering from the overlay bridge are encapsulated
// into UDP datagrams addressed to the destination VTEP and sent through the
// owning guest stack; datagrams arriving on the VTEP port are decapsulated
// and the inner frame re-enters the overlay bridge.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/device.hpp"
#include "net/stack_backend.hpp"

namespace nestv::net {

namespace oncache {
class OnCache;
}  // namespace oncache

class VxlanDevice : public Device {
 public:
  static constexpr std::uint16_t kVtepPort = 4789;

  /// `stack` is the namespace owning the underlay interface (the guest
  /// kernel); `local_vtep` its underlay IP.  The device binds the VTEP UDP
  /// port on the stack.  Port 0 attaches to the overlay bridge.
  VxlanDevice(sim::Engine& engine, std::string name,
              const sim::CostModel& costs, StackBackend& stack,
              Ipv4Address local_vtep, std::uint32_t vni = 0);

  /// Static L2-to-VTEP table, as docker's overlay driver programs from its
  /// gossip/kv store.  Unknown destinations flood to all known VTEPs.
  /// Remapping an inner MAC to a new VTEP flushes its cached overlay fast
  /// paths (unless test_hooks::skip_oncache_vtep_invalidation).
  void add_remote(MacAddress inner_mac, Ipv4Address vtep);
  /// Adds a flood target; duplicates and the local VTEP are ignored (a
  /// VTEP never tunnels a flood back to itself).
  void add_flood_target(Ipv4Address vtep);

  /// Overlay fast-path cache fed by this VTEP's slow path (may be null).
  void set_oncache(oncache::OnCache* cache) { oncache_ = cache; }

  /// Overlay bridge -> tunnel.
  void ingress(EthernetFrame frame, int port) override;

  [[nodiscard]] std::uint32_t vni() const { return vni_; }
  [[nodiscard]] std::uint64_t encapsulated() const { return encap_; }
  [[nodiscard]] std::uint64_t decapsulated() const { return decap_; }
  /// Datagrams on the VTEP port that carried no inner frame (truncated or
  /// non-VXLAN payloads); dropped without decap.
  [[nodiscard]] std::uint64_t rx_non_vxlan() const { return rx_non_vxlan_; }
  [[nodiscard]] std::size_t flood_target_count() const {
    return flood_.size();
  }

 private:
  void encap_to(Ipv4Address vtep, EthernetFrame inner);
  void on_vtep_datagram(StackBackend::UdpDelivery& d);

  StackBackend* stack_;
  Ipv4Address local_vtep_;
  std::uint32_t vni_;
  oncache::OnCache* oncache_ = nullptr;
  std::unordered_map<MacAddress, Ipv4Address> l2_table_;
  std::vector<Ipv4Address> flood_;
  std::uint64_t encap_ = 0;
  std::uint64_t decap_ = 0;
  std::uint64_t rx_non_vxlan_ = 0;
};

}  // namespace nestv::net
