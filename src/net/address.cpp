#include "net/address.hpp"

#include <cassert>
#include <cstdio>

namespace nestv::net {

MacAddress MacAddress::local_from_id(std::uint64_t id) {
  std::array<std::uint8_t, 6> o{};
  o[0] = 0x02;  // locally administered, unicast
  o[1] = static_cast<std::uint8_t>(id >> 32);
  o[2] = static_cast<std::uint8_t>(id >> 24);
  o[3] = static_cast<std::uint8_t>(id >> 16);
  o[4] = static_cast<std::uint8_t>(id >> 8);
  o[5] = static_cast<std::uint8_t>(id);
  return MacAddress(o);
}

MacAddress MacAddress::broadcast() {
  return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
}

bool MacAddress::is_broadcast() const {
  for (auto o : octets_)
    if (o != 0xff) return false;
  return true;
}

std::optional<MacAddress> MacAddress::parse(const std::string& text) {
  std::array<unsigned, 6> v{};
  if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1], &v[2],
                  &v[3], &v[4], &v[5]) != 6) {
    return std::nullopt;
  }
  std::array<std::uint8_t, 6> o{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (v[i] > 0xff) return std::nullopt;
    o[i] = static_cast<std::uint8_t>(v[i]);
  }
  return MacAddress(o);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::uint64_t MacAddress::as_u64() const {
  std::uint64_t v = 0;
  for (auto o : octets_) v = (v << 8) | o;
  return v;
}

std::optional<Ipv4Address> Ipv4Address::parse(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv4Cidr::Ipv4Cidr(Ipv4Address base, int prefix_len)
    : prefix_len_(prefix_len) {
  assert(prefix_len >= 0 && prefix_len <= 32);
  base_ = Ipv4Address(base.value() & mask());
}

std::optional<Ipv4Cidr> Ipv4Cidr::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const int len = std::atoi(text.c_str() + slash + 1);
  if (len < 0 || len > 32) return std::nullopt;
  return Ipv4Cidr(*addr, len);
}

Ipv4Address Ipv4Cidr::host(std::uint32_t i) const {
  return Ipv4Address(base_.value() + i);
}

std::string Ipv4Cidr::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace nestv::net
