// Netfilter: hook chains, rule matching, connection tracking and NAT.
//
// This models the Linux packet-filter architecture the paper's fig 1
// datapaths traverse: packets cross hook points (PREROUTING, INPUT,
// FORWARD, OUTPUT, POSTROUTING); each hook runs chains of rules; the nat
// table uses connection tracking so only the first packet of a flow scans
// rules, later packets hit the conntrack fast path.  Work is *metered* here
// (returned as a nanosecond cost) and charged by the owning NetworkStack to
// its softirq resource — "NAT rules are applied on packets via hooks
// executed by software interrupts" (section 5.2.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/conn_table.hpp"
#include "net/packet.hpp"
#include "sim/cost_model.hpp"
#include "sim/time.hpp"

namespace nestv::net {

enum class Hook : std::uint8_t {
  kPrerouting = 0,
  kInput,
  kForward,
  kOutput,
  kPostrouting,
  kCount,
};

[[nodiscard]] const char* to_string(Hook h);

enum class Verdict : std::uint8_t { kAccept, kDrop };

/// Rule predicate; unset fields match anything.
struct RuleMatch {
  std::optional<L4Proto> proto;
  std::optional<Ipv4Cidr> src;
  std::optional<Ipv4Cidr> dst;
  std::optional<std::uint16_t> sport;
  std::optional<std::uint16_t> dport;
  std::string in_iface;   ///< empty = any
  std::string out_iface;  ///< empty = any

  [[nodiscard]] bool matches(const Packet& p, const std::string& in,
                             const std::string& out) const;
};

enum class TargetKind : std::uint8_t {
  kAccept,
  kDrop,
  kReturn,          ///< stop this chain, fall through to policy
  kSnat,            ///< rewrite source to nat_ip[:allocated port]
  kDnat,            ///< rewrite destination to nat_ip:nat_port
  kDnatRoundRobin,  ///< kube-proxy service: pick a backend per new flow
  kMasquerade,      ///< SNAT to the egress interface address
};

/// A service backend for kDnatRoundRobin.
struct NatBackend {
  Ipv4Address ip;
  std::uint16_t port = 0;
};

struct Rule {
  RuleMatch match;
  TargetKind target = TargetKind::kAccept;
  Ipv4Address nat_ip;
  std::uint16_t nat_port = 0;
  /// kDnatRoundRobin only: the endpoint set; new flows rotate through it,
  /// established flows stay pinned by conntrack (session affinity).
  std::vector<NatBackend> backends;
  std::string comment;
};

/// One rule chain with a default policy.
struct Chain {
  std::vector<Rule> rules;
  Verdict policy = Verdict::kAccept;
};

// ConnKey / ConnKeyHash / ConnEntry and the compact conntrack store live
// in net/conn_table.hpp; this header re-exposes them for all existing
// includers.

/// The per-stack netfilter instance.
class Netfilter {
 public:
  explicit Netfilter(const sim::CostModel& costs) : costs_(&costs) {}

  /// nat-table chains exist at PREROUTING (DNAT), OUTPUT (DNAT for locally
  /// generated traffic) and POSTROUTING (SNAT/masquerade).
  Chain& nat_chain(Hook h) { return nat_[static_cast<std::size_t>(h)]; }
  /// filter-table chains at INPUT / FORWARD / OUTPUT.
  Chain& filter_chain(Hook h) { return filter_[static_cast<std::size_t>(h)]; }

  /// Observer for rule-table edits made through add/remove below; carries
  /// the changed rule's predicate so the owning stack's flow cache can
  /// flush exactly the flows the rule could affect.  Direct chain access
  /// via nat_chain()/filter_chain() bypasses it (setup-time wiring only).
  using MutationListener = std::function<void(const RuleMatch&)>;
  void set_mutation_listener(MutationListener l) {
    on_mutation_ = std::move(l);
  }

  /// Rule edits that notify the mutation listener (use these for any edit
  /// made while traffic may be cached).
  void add_nat_rule(Hook h, Rule rule);
  void add_filter_rule(Hook h, Rule rule);
  /// Removes all rules whose comment equals `comment` from the given
  /// chain; returns the number removed.
  std::size_t remove_nat_rules(Hook h, const std::string& comment);
  std::size_t remove_filter_rules(Hook h, const std::string& comment);

  /// Installs `n` pass-through rules on the filter FORWARD and OUTPUT/INPUT
  /// chains, standing in for the chains Docker/Kubernetes maintain
  /// (DOCKER-USER, KUBE-SERVICES, ...).  They match nothing but still cost
  /// a scan per packet — the fig 6/7 "soft" overhead.
  void install_standing_rules(int n);

  struct HookResult {
    Verdict verdict = Verdict::kAccept;
    sim::Duration cost = 0;  ///< CPU to charge to softirq
  };

  /// Runs one hook over `p` (possibly rewriting it).  `now` drives
  /// conntrack timestamps; `in`/`out` are interface names for matching.
  HookResult run_hook(Hook h, Packet& p, const std::string& in,
                      const std::string& out, sim::TimePoint now);

  /// Total hooks every forwarded packet traverses in this stack; used by
  /// tests asserting the nested path runs 2x the hook count.
  [[nodiscard]] std::uint64_t hook_traversals() const { return traversals_; }
  [[nodiscard]] std::size_t conntrack_size() const { return conns_.size(); }
  [[nodiscard]] const ConnEntry* find_conn(const ConnKey& k) const;
  /// True while connection `id` is tracked (fast-path liveness check).
  [[nodiscard]] bool conn_alive(std::uint64_t id) const {
    return conns_.alive(id);
  }
  /// Resident bytes of the conntrack store (bytes-of-state-per-flow
  /// accounting; see bench/abl_macro_scale).
  [[nodiscard]] std::size_t conntrack_state_bytes() const {
    return conns_.state_bytes();
  }

  /// Keep-alive for the cached fast path: packets that bypass the hooks
  /// still refresh their connection (last_seen, packet count) so GC does
  /// not reap actively cached flows.
  void touch(std::uint64_t id, sim::TimePoint now);

  /// Expires idle conntrack entries; returns the ids of the reaped
  /// connections so dependent caches can drop their entries.
  std::vector<std::uint64_t> gc(sim::TimePoint now,
                                sim::Duration idle_timeout);
  /// Back-compat wrapper around gc() discarding the reaped ids.
  void expire(sim::TimePoint now, sim::Duration idle_timeout) {
    (void)gc(now, idle_timeout);
  }

 private:
  HookResult run_nat(Hook h, Packet& p, const std::string& in,
                     const std::string& out, sim::TimePoint now);
  HookResult run_filter(Hook h, Packet& p, const std::string& in,
                        const std::string& out);

  /// Applies any recorded translation for this packet's direction.
  /// Returns the connection on a conntrack hit (null Ref on a miss).
  ConnTable::Ref conntrack_lookup(const Packet& p);

  std::uint16_t allocate_port(L4Proto proto, Ipv4Address ip);

  static ConnKey key_of(const Packet& p);

  const sim::CostModel* costs_;
  std::vector<Chain> nat_{static_cast<std::size_t>(Hook::kCount)};
  std::vector<Chain> filter_{static_cast<std::size_t>(Hook::kCount)};
  ConnTable conns_;
  std::uint16_t next_nat_port_ = 32768;
  std::uint64_t rr_counter_ = 0;  ///< round-robin cursor for service rules
  std::uint64_t traversals_ = 0;
  MutationListener on_mutation_;
};

}  // namespace nestv::net
