#include "net/oncache.hpp"

#include <utility>

#include "net/route.hpp"

namespace nestv::net::oncache {

// ---- CachedBridge -----------------------------------------------------------

void CachedBridge::attach_oncache(OnCache* cache, int vxlan_port) {
  cache_ = cache;
  vxlan_port_ = vxlan_port;
  cache_->set_bridge(this);
  // Overlay FDB eviction (ageing sweep, forget, full flush) drops the
  // cached paths switched through the evicted MAC, in both directions.
  fdb().set_eviction_listener(
      [cache](MacAddress mac) { cache->invalidate_inner_mac(mac); });
}

void CachedBridge::ingress(EthernetFrame frame, int port) {
  // Egress fast path: a unicast IPv4 frame from a pod whose inner flow has
  // a resolved entry skips the bridge/encap/hook/route chain entirely —
  // one fused event emits the finished outer frame.
  if (cache_ != nullptr && cache_->enabled() && port != vxlan_port_ &&
      frame.ethertype == 0x0800 && !frame.dst.is_broadcast() &&
      !frame.dst.is_multicast()) {
    if (const EgressPath* e = cache_->match_egress(frame, port)) {
      // The slow path's source learning still happens (free, as in
      // Bridge::ingress); the fused event replaces the forward pass.
      fdb().learn(frame.src, port, engine().now());
      const EgressPath path = *e;  // the entry may be evicted before firing
      const auto& c = costs();
      const sim::Duration work =
          path.fast_cost +
          static_cast<sim::Duration>(
              c.vxlan_copy_byte * static_cast<double>(frame.wire_bytes()));
      process_batched(work, [this, path, f = std::move(frame)]() mutable {
        cache_->serve_egress(path, std::move(f));
      });
      return;
    }
  }
  Bridge::ingress(std::move(frame), port);
}

void CachedBridge::forward(EthernetFrame frame, int ingress_port) {
  if (cache_ != nullptr && cache_->enabled() &&
      frame.ethertype == 0x0800) {
    // Re-derive the switching decision (side-effect free) to classify the
    // frame before delegating the actual forward.
    const int out = frame.dst.is_broadcast() || frame.dst.is_multicast()
                        ? -1
                        : fdb().lookup(frame.dst, engine().now());
    const OnCache::PendingKey k{frame.packet.packet_id, frame.src};
    if (ingress_port == vxlan_port_) {
      // Decapped inner frame: a unicast switch to a pod port completes the
      // ingress record; a flood is not cacheable.
      if (out >= 0 && out != vxlan_port_) {
        cache_->complete_ingress(k, frame.dst, out);
      } else {
        cache_->abandon_ingress(k);
      }
    } else if (out == vxlan_port_) {
      // Pod frame switching toward the VTEP: open an egress record; the
      // VTEP promotes it once the remote resolves.
      cache_->note_egress(
          k, flowcache::FlowKey::of(frame.packet, ingress_port), frame.dst);
    }
  }
  Bridge::forward(std::move(frame), ingress_port);
}

// ---- OnCache: slow-path recording -------------------------------------------

void OnCache::note_egress(const PendingKey& k, const flowcache::FlowKey& key,
                          MacAddress inner_dst) {
  if (!enabled_) return;
  if (pending_by_inner_.size() >= kMaxPending) clear_pending();
  pending_by_inner_[k] = PendingEgress{key, inner_dst, Ipv4Address{}};
}

void OnCache::promote_egress(const PendingKey& k, Ipv4Address remote_vtep,
                             std::uint64_t outer_packet_id) {
  if (!enabled_) return;
  const auto it = pending_by_inner_.find(k);
  if (it == pending_by_inner_.end()) return;
  PendingEgress rec = it->second;
  pending_by_inner_.erase(it);
  rec.remote_vtep = remote_vtep;
  if (pending_by_outer_.size() >= kMaxPending) clear_pending();
  pending_by_outer_[outer_packet_id] = rec;
}

void OnCache::abandon_egress(const PendingKey& k) {
  if (!enabled_) return;
  pending_by_inner_.erase(k);
}

void OnCache::complete_egress(const Packet& outer, int out_ifindex,
                              MacAddress next_hop_mac) {
  if (!enabled_) return;
  const auto it = pending_by_outer_.find(outer.packet_id);
  if (it == pending_by_outer_.end()) return;
  const PendingEgress rec = it->second;
  pending_by_outer_.erase(it);

  EgressPath path;
  path.ct_id = outer.ct_id;
  path.remote_vtep = rec.remote_vtep;
  path.outer_src = outer.src_ip;
  path.outer_dst = outer.dst_ip;
  path.outer_sport = outer.src_port;
  path.outer_dport = outer.dst_port;
  path.fast_cost = static_cast<std::uint32_t>(costs_->oncache_encap_hit);
  path.routes_gen = static_cast<std::uint16_t>(stack_->routes().generation());
  path.inner_dst = rec.inner_dst;
  path.next_hop_mac = next_hop_mac;
  path.out_ifindex = static_cast<std::int16_t>(out_ifindex);
  egress_.insert(rec.key, path);
  charge_insert();
}

void OnCache::note_ingress(const PendingKey& k, const IngressKey& key,
                           Ipv4Address outer_src) {
  if (!enabled_) return;
  if (pending_ingress_.size() >= kMaxPending) clear_pending();
  pending_ingress_[k] = PendingIngress{key, outer_src};
}

void OnCache::abandon_ingress(const PendingKey& k) {
  if (!enabled_) return;
  pending_ingress_.erase(k);
}

void OnCache::complete_ingress(const PendingKey& k, MacAddress inner_dst,
                               int out_port) {
  if (!enabled_) return;
  const auto it = pending_ingress_.find(k);
  if (it == pending_ingress_.end()) return;
  const PendingIngress rec = it->second;
  pending_ingress_.erase(it);

  IngressPath path;
  path.outer_src = rec.outer_src;
  path.fast_cost = static_cast<std::uint32_t>(costs_->oncache_decap_hit);
  path.inner_dst = inner_dst;
  path.out_port = static_cast<std::int16_t>(out_port);
  ingress_.insert(rec.key, path);
  charge_insert();
}

void OnCache::charge_insert() {
  // Building the entry is not free: one-time softirq charge per flow.
  stack_->resource_run(stack_->softirq(), sim::CpuCategory::kSoft,
                       costs_->oncache_insert, [] {});
}

// ---- OnCache: fast paths ----------------------------------------------------

const EgressPath* OnCache::match_egress(const EthernetFrame& frame,
                                        int ingress_port) {
  const auto key = flowcache::FlowKey::of(frame.packet, ingress_port);
  const EgressPath* path = egress_.lookup(key);
  if (path == nullptr) return nullptr;
  // Validate the authoritative state the cache cannot watch: the L2
  // destination the key does not cover, the routing-table generation and
  // the outer connection's conntrack backing.  Stale entries are flushed
  // and the frame falls through to the slow path (which re-records).
  if (path->inner_dst != frame.dst ||
      path->routes_gen !=
          static_cast<std::uint16_t>(stack_->routes().generation())) {
    egress_.invalidate(key);
    return nullptr;
  }
  if (path->ct_id != 0 && stack_->has_netfilter()) {
    Netfilter& nf = stack_->netfilter();
    if (!nf.conn_alive(path->ct_id)) {
      egress_.invalidate(key);
      return nullptr;
    }
    // The fast path bypasses the hooks; keep the outer connection fresh so
    // GC does not reap an actively cached flow.
    nf.touch(path->ct_id, stack_->engine().now());
  }
  return path;
}

void OnCache::serve_egress(const EgressPath& path, EthernetFrame inner) {
  Packet outer;
  outer.src_ip = path.outer_src;
  outer.dst_ip = path.outer_dst;
  outer.proto = L4Proto::kUdp;
  outer.src_port = path.outer_sport;
  outer.dst_port = path.outer_dport;
  // Same outer framing as VxlanDevice::encap_to: the VXLAN header (8B)
  // counted on top of the inner frame bytes.
  outer.payload_bytes =
      static_cast<std::uint32_t>(costs_->vxlan_header_bytes) -
      kEthernetHeaderBytes - kIpv4HeaderBytes - kUdpHeaderBytes;
  outer.ct_id = path.ct_id;
  outer.inner = std::make_unique<EthernetFrame>(std::move(inner));
  outer.packet_id = stack_->next_packet_id();
  outer.sent_at = stack_->engine().now();

  EthernetFrame f;
  f.src = stack_->iface_mac(path.out_ifindex);
  f.dst = path.next_hop_mac;
  f.ethertype = 0x0800;
  f.packet = std::move(outer);
  stack_->oncache_xmit(path.out_ifindex, std::move(f));
}

const IngressPath* OnCache::match_ingress(const Packet& outer) {
  const auto key = IngressKey::of(outer.inner->packet, vni_);
  const IngressPath* path = ingress_.lookup(key);
  if (path == nullptr) return nullptr;
  if (path->outer_src != outer.src_ip ||
      path->inner_dst != outer.inner->dst) {
    ingress_.invalidate(key);
    return nullptr;
  }
  return path;
}

void OnCache::deliver_ingress(int out_port, EthernetFrame frame) {
  bridge_->inject(out_port, std::move(frame));
}

// ---- OnCache: invalidation --------------------------------------------------

std::size_t OnCache::invalidate_rule_match(
    const RuleMatch& match,
    const std::function<std::string(int)>& iface_name) {
  clear_pending();
  std::size_t flushed = egress_.invalidate_if(
      [this, &match, &iface_name](const flowcache::FlowKey&,
                                  const EgressPath& path) {
        const std::string out = iface_name(path.out_ifindex);
        // Pre-NAT view: what OUTPUT saw when the entry was recorded.
        Packet pre;
        pre.src_ip = local_vtep_;
        pre.dst_ip = path.remote_vtep;
        pre.src_port = kVtepPort;
        pre.dst_port = kVtepPort;
        pre.proto = L4Proto::kUdp;
        if (match.matches(pre, "", out)) return true;
        // Post-NAT view: POSTROUTING-side rules match the rewritten header.
        Packet post = pre;
        post.src_ip = path.outer_src;
        post.dst_ip = path.outer_dst;
        post.src_port = path.outer_sport;
        post.dst_port = path.outer_dport;
        return match.matches(post, "", out);
      });
  const std::string in = iface_name(uplink_ifindex_);
  flushed += ingress_.invalidate_if(
      [this, &match, &in](const IngressKey&, const IngressPath& path) {
        // The outer datagram as PREROUTING/INPUT saw it.
        Packet view;
        view.src_ip = path.outer_src;
        view.dst_ip = local_vtep_;
        view.src_port = kVtepPort;
        view.dst_port = kVtepPort;
        view.proto = L4Proto::kUdp;
        return match.matches(view, in, "");
      });
  return flushed;
}

std::size_t OnCache::invalidate_inner_mac(MacAddress mac) {
  clear_pending();
  std::size_t flushed = egress_.invalidate_if(
      [mac](const flowcache::FlowKey&, const EgressPath& path) {
        return path.inner_dst == mac;
      });
  flushed += ingress_.invalidate_if(
      [mac](const IngressKey&, const IngressPath& path) {
        return path.inner_dst == mac;
      });
  return flushed;
}

std::size_t OnCache::invalidate_egress_ifindex(int ifindex) {
  clear_pending();
  std::size_t flushed = egress_.invalidate_if(
      [ifindex](const flowcache::FlowKey&, const EgressPath& path) {
        return path.out_ifindex == ifindex;
      });
  if (ifindex == uplink_ifindex_) {
    ingress_.invalidate_all();
  }
  return flushed;
}

std::size_t OnCache::invalidate_conn(std::uint64_t ct_id) {
  return egress_.invalidate_if(
      [ct_id](const flowcache::FlowKey&, const EgressPath& path) {
        return path.ct_id == ct_id;
      });
}

void OnCache::invalidate_all() {
  egress_.invalidate_all();
  ingress_.invalidate_all();
  clear_pending();
}

}  // namespace nestv::net::oncache
