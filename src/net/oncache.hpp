// ONCache-style overlay fast path: cached encap/decap for VXLAN traffic.
//
// The Overlay baseline (figs 10-15) pays the full chain on every packet:
// inner bridge lookup -> VXLAN encap resolution -> underlay OUTPUT/
// POSTROUTING hooks -> route -> ARP on egress, and the mirror chain
// (PREROUTING/INPUT -> UDP demux -> decap -> inner bridge) on ingress.
// For all but the first packet of a flow the outcome is fully determined,
// exactly the observation net/flowcache exploits for non-encapsulated
// paths.  OnCache memoizes the overlay outcome:
//
//  * egress cache: inner FlowKey (5-tuple + bridge ingress port) ->
//    EgressPath {resolved VTEP, precomputed outer headers, egress ifindex +
//    next-hop MAC, outer conntrack backing, fused cost}.  A hit at the
//    overlay bridge emits the finished outer frame in ONE fused-cost event
//    (oncache_encap_hit) instead of the bridge/vxlan/l4/hook/route chain.
//  * ingress cache: {VNI + inner 5-tuple} -> IngressPath {expected sender
//    VTEP, target bridge port, fused cost}.  A hit at stack RX delivers the
//    inner frame straight to the pod-facing bridge port in one event
//    (oncache_decap_hit), skipping PREROUTING/INPUT, UDP demux and the
//    decap + bridge-forward events.
//
// Coherence reuses the flowcache machinery (generation stamps + targeted
// invalidation) extended to the overlay-specific sources:
//
//   source                         | action
//   -------------------------------+--------------------------------------
//   netfilter rule edit            | invalidate_rule_match: flush entries
//                                  | whose outer header view (pre- and
//                                  | post-NAT egress, ingress) matches
//   VTEP l2_table_ remap           | invalidate_inner_mac (VxlanDevice::
//                                  | add_remote)
//   overlay bridge FDB evict/flush | invalidate_inner_mac (Fdb eviction
//                                  | listener installed by CachedBridge)
//   NIC hot-unplug                 | invalidate_egress_ifindex (+ full
//                                  | ingress flush when it is the uplink)
//   conntrack GC reap              | invalidate_conn (egress entries carry
//                                  | the outer connection's ct_id)
//   route-table edit               | routes_gen stamp check at hit time
//   cache disable                  | invalidate_all + pending reset
//
// Storage is the same chunked-slab + open-addressed-bucket + intrusive-LRU
// scheme as net/flowcache (SlabCache below, a template over key/path), so
// entries are compact: no string interface names, fixed-width stamps.
//
// Recording happens on the slow path only (so the first packet of a flow
// pays full price and teaches the cache), threaded through the async chain
// by packet identity: the bridge notes a cacheable inner frame, the VTEP
// promotes it to the outer packet id at encap, and the stack completes it
// once the outer route + ARP resolve (FullStack::arp_resolve_and_send).
// A FastPathStack-hosted VTEP never completes (its emit path has no
// recording hook), so attaching a cache there is sound but stays cold —
// the has_netfilter()==false interplay the tests pin down.
//
// Attached-but-disabled is bit-identical to the plain overlay path: every
// hook is a null/bool guard, no event, charge or RNG draw differs
// (bench/abl_oncache gates cacheoff_equivalence_max_delta == 0).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/bridge.hpp"
#include "net/flowcache/flow_key.hpp"
#include "net/netfilter.hpp"
#include "net/packet.hpp"
#include "net/stack_backend.hpp"
#include "sim/cost_model.hpp"

namespace nestv::net::oncache {

/// Identity of one decapsulated inner flow: VNI + inner 5-tuple.  The
/// bridge ingress port is *not* part of the key — every ingress entry
/// enters through the VTEP — but the learned sender VTEP is validated on
/// each hit so a remote endpoint that moved cannot keep injecting.
struct IngressKey {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint32_t vni = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  L4Proto proto = L4Proto::kUdp;

  friend bool operator==(const IngressKey&, const IngressKey&) = default;

  [[nodiscard]] static IngressKey of(const Packet& inner, std::uint32_t vni) {
    return IngressKey{inner.src_ip,   inner.dst_ip,   vni,
                      inner.src_port, inner.dst_port, inner.proto};
  }
};

struct IngressKeyHash {
  std::size_t operator()(const IngressKey& k) const noexcept {
    std::uint64_t h = k.src_ip.value();
    h = h * 0x9e3779b97f4a7c15ULL + k.dst_ip.value();
    h = h * 0x9e3779b97f4a7c15ULL + k.vni;
    h = h * 0x9e3779b97f4a7c15ULL +
        ((std::uint64_t{k.src_port} << 24) | (std::uint64_t{k.dst_port} << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(k.proto)));
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

/// Memoized egress outcome for one inner flow.  Compact per the slab-arena
/// style: fixed-width stamps, ifindex ordinals, no strings (rule-match
/// targeting resolves names through the owning stack).
struct EgressPath {
  /// Outer connection's conntrack backing; a cached path whose backing
  /// expired must not serve hits (validated by OnCache at hit time).
  std::uint64_t ct_id = 0;

  Ipv4Address remote_vtep;  ///< pre-NAT outer destination (rule targeting)
  /// Post-hook outer header (what OUTPUT/POSTROUTING produced).
  Ipv4Address outer_src;
  Ipv4Address outer_dst;
  std::uint16_t outer_sport = 0;
  std::uint16_t outer_dport = 0;

  /// Fused per-packet charge replacing the bridge/encap/hook/route chain.
  std::uint32_t fast_cost = 0;

  std::uint16_t generation = 0;  ///< cache generation at insert
  std::uint16_t routes_gen = 0;  ///< owning stack's routing generation

  MacAddress inner_dst;     ///< validated against the frame on each hit
  MacAddress next_hop_mac;  ///< resolved underlay L2 next hop
  std::int16_t out_ifindex = -1;
};

/// Memoized ingress outcome: deliver the decapped frame to `out_port`.
/// No ct_id by design — the ingress fast path does not keep the outer
/// connection's conntrack entry alive; if GC reaps it only the slow path
/// notices (and re-creates it on the next miss).
struct IngressPath {
  Ipv4Address outer_src;  ///< expected sender VTEP (validated on hit)
  std::uint32_t fast_cost = 0;
  std::uint16_t generation = 0;
  MacAddress inner_dst;  ///< validated against the decapped frame
  std::int16_t out_port = -1;  ///< overlay bridge port of the target veth
};

/// The flowcache storage scheme (chunked slab + open-addressed bucket
/// index + intrusive LRU; see net/flowcache/flowcache.hpp for the full
/// rationale) as a template, so the egress and ingress tables share one
/// implementation.  `Path` must carry a std::uint16_t `generation` field.
template <typename Key, typename Path, typename Hash>
class SlabCache {
 public:
  explicit SlabCache(std::size_t capacity) : capacity_(capacity) {
    buckets_.assign(32, kNil);
  }

  [[nodiscard]] const Path* lookup(const Key& key) {
    const std::uint32_t s = find_slot(key);
    if (s == kNil) {
      ++misses_;
      return nullptr;
    }
    if (slot(s).path.generation != static_cast<std::uint16_t>(generation_)) {
      erase_slot(s);  // stamped before the last invalidate_all()
      ++misses_;
      return nullptr;
    }
    lru_unlink(s);
    lru_push_front(s);
    ++hits_;
    return &slot(s).path;
  }

  [[nodiscard]] const Path* peek(const Key& key) const {
    const std::uint32_t s = find_slot(key);
    if (s == kNil ||
        slot(s).path.generation != static_cast<std::uint16_t>(generation_)) {
      return nullptr;
    }
    return &slot(s).path;
  }

  void insert(const Key& key, Path path) {
    path.generation = static_cast<std::uint16_t>(generation_);
    const std::uint32_t existing = find_slot(key);
    if (existing != kNil) {
      slot(existing).path = std::move(path);
      lru_unlink(existing);
      lru_push_front(existing);
      return;
    }
    if (size_ >= capacity_ && lru_tail_ != kNil) {
      erase_slot(lru_tail_);
      ++evictions_;
    }
    const std::uint32_t s = alloc_slot();
    Slot& sl = slot(s);
    sl.key = key;
    sl.path = std::move(path);
    bucket_insert(s);
    lru_push_front(s);
    ++size_;
  }

  void invalidate(const Key& key) {
    const std::uint32_t s = find_slot(key);
    if (s == kNil) return;
    erase_slot(s);
    ++invalidations_;
  }

  /// Flushes entries matching `pred`, most-recent-first; returns the count.
  std::size_t invalidate_if(
      const std::function<bool(const Key&, const Path&)>& pred) {
    std::size_t flushed = 0;
    for (std::uint32_t s = lru_head_; s != kNil;) {
      const std::uint32_t next = slot(s).lru_next;
      if (pred(slot(s).key, slot(s).path)) {
        erase_slot(s);
        ++flushed;
      }
      s = next;
    }
    invalidations_ += flushed;
    return flushed;
  }

  /// O(1) full flush via generation bump.
  void invalidate_all() {
    ++generation_;
    invalidations_ += size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  [[nodiscard]] std::size_t state_bytes() const {
    return slots_cap_ * sizeof(Slot) +
           buckets_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;
  static constexpr std::uint32_t kFreeMark = 0xfffffffeU;
  static constexpr std::uint32_t kTomb = 0xfffffffdU;
  static constexpr std::uint32_t kFirstChunkSlots = 8;
  static constexpr std::uint32_t kChunksPerDoubling = 4;

  struct Slot {
    Path path;
    Key key;
    std::uint32_t lru_prev = kFreeMark;  ///< kFreeMark while free
    std::uint32_t lru_next = kNil;       ///< free-list link while free

    [[nodiscard]] bool occupied() const { return lru_prev != kFreeMark; }
  };

  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_of(
      std::uint32_t s) const {
    std::size_t c = chunk_bases_.size() - 1;
    while (chunk_bases_[c] > s) --c;
    return {c, s - chunk_bases_[c]};
  }
  [[nodiscard]] Slot& slot(std::uint32_t s) {
    const auto [c, off] = chunk_of(s);
    return chunks_[c][off];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t s) const {
    const auto [c, off] = chunk_of(s);
    return chunks_[c][off];
  }

  [[nodiscard]] std::uint32_t find_slot(const Key& key) const {
    const std::size_t n = buckets_.size();
    for (std::size_t i = Hash{}(key) % n;; i = i + 1 == n ? 0 : i + 1) {
      const std::uint32_t b = buckets_[i];
      if (b == kNil) return kNil;
      if (b != kTomb && slot(b).key == key) return b;
    }
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNil) {
      const std::uint32_t s = free_head_;
      free_head_ = slot(s).lru_next;
      return s;
    }
    if (slots_used_ == slots_cap_) {
      const std::uint32_t n =
          kFirstChunkSlots
          << (static_cast<std::uint32_t>(chunks_.size()) / kChunksPerDoubling);
      chunks_.push_back(std::make_unique<Slot[]>(n));
      chunk_bases_.push_back(slots_cap_);
      slots_cap_ += n;
    }
    return slots_used_++;
  }

  void lru_unlink(std::uint32_t s) {
    Slot& sl = slot(s);
    if (sl.lru_prev != kNil) {
      slot(sl.lru_prev).lru_next = sl.lru_next;
    } else {
      lru_head_ = sl.lru_next;
    }
    if (sl.lru_next != kNil) {
      slot(sl.lru_next).lru_prev = sl.lru_prev;
    } else {
      lru_tail_ = sl.lru_prev;
    }
    sl.lru_prev = sl.lru_next = kNil;
  }

  void lru_push_front(std::uint32_t s) {
    Slot& sl = slot(s);
    sl.lru_prev = kNil;
    sl.lru_next = lru_head_;
    if (lru_head_ != kNil) slot(lru_head_).lru_prev = s;
    lru_head_ = s;
    if (lru_tail_ == kNil) lru_tail_ = s;
  }

  void erase_slot(std::uint32_t s) {
    bucket_erase(s);
    lru_unlink(s);
    Slot& sl = slot(s);
    sl.lru_prev = kFreeMark;
    sl.lru_next = free_head_;  // reused as the free-list link
    free_head_ = s;
    --size_;
  }

  void bucket_insert(std::uint32_t s) {
    maybe_grow_buckets();
    const std::size_t n = buckets_.size();
    for (std::size_t i = Hash{}(slot(s).key) % n;;
         i = i + 1 == n ? 0 : i + 1) {
      std::uint32_t& b = buckets_[i];
      if (b == kNil || b == kTomb) {
        if (b == kTomb) --bucket_dead_;
        b = s;
        return;
      }
    }
  }

  void bucket_erase(std::uint32_t s) {
    const std::size_t n = buckets_.size();
    for (std::size_t i = Hash{}(slot(s).key) % n;;
         i = i + 1 == n ? 0 : i + 1) {
      if (buckets_[i] == s) {
        buckets_[i] = kTomb;
        ++bucket_dead_;
        return;
      }
    }
  }

  void maybe_grow_buckets() {
    if ((size_ + bucket_dead_ + 1) * 20 < buckets_.size() * 17) return;
    std::size_t n = size_ * 10 / 7 + 1;
    if (n < 32) n = 32;
    buckets_.assign(n, kNil);
    buckets_.shrink_to_fit();
    bucket_dead_ = 0;
    for (std::uint32_t s = 0; s < slots_used_; ++s) {
      if (!slot(s).occupied()) continue;
      for (std::size_t i = Hash{}(slot(s).key) % n;;
           i = i + 1 == n ? 0 : i + 1) {
        if (buckets_[i] == kNil) {
          buckets_[i] = s;
          break;
        }
      }
    }
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> chunk_bases_;
  std::uint32_t slots_used_ = 0;
  std::uint32_t slots_cap_ = 0;
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint32_t> buckets_;
  std::size_t bucket_dead_ = 0;
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

class OnCache;

/// Overlay bridge with an egress fast-path tap.  Subclassing (rather than
/// interposing a device) keeps the topology identical: no extra hop, and
/// with no cache attached — or the cache disabled — every frame takes
/// exactly Bridge's path.
class CachedBridge : public Bridge {
 public:
  CachedBridge(sim::Engine& engine, std::string name,
               const sim::CostModel& costs, bool guest_level = true)
      : Bridge(engine, std::move(name), costs, guest_level) {}

  /// `vxlan_port` is the bridge port the VTEP hangs off; frames switched
  /// toward it are encap candidates, frames entering from it are decap
  /// results.  Also subscribes the cache to FDB evictions.
  void attach_oncache(OnCache* cache, int vxlan_port);

  /// Injects a frame into `port` as if forwarded (the ingress fast path's
  /// last hop; Device::transmit is protected).
  void inject(int port, EthernetFrame frame) {
    transmit(port, std::move(frame));
  }

  void ingress(EthernetFrame frame, int port) override;

 protected:
  void forward(EthernetFrame frame, int ingress_port) override;

 private:
  OnCache* cache_ = nullptr;
  int vxlan_port_ = -1;
};

/// The per-stack overlay fast-path cache.  One instance per (VM, overlay):
/// it is wired to the VM's overlay CachedBridge, its VxlanDevice and its
/// underlay stack (StackBackend::attach_oncache).
class OnCache {
 public:
  static constexpr std::uint16_t kVtepPort = 4789;

  OnCache(StackBackend& stack, const sim::CostModel& costs,
          std::uint32_t vni = 0)
      : stack_(&stack),
        costs_(&costs),
        vni_(vni),
        egress_(costs.oncache_capacity),
        ingress_(costs.oncache_capacity) {}

  void set_local_vtep(Ipv4Address ip) { local_vtep_ = ip; }
  void set_uplink_ifindex(int ifindex) { uplink_ifindex_ = ifindex; }
  void set_bridge(CachedBridge* bridge) { bridge_ = bridge; }

  /// Off by default: the calibrated Overlay figures are measured with the
  /// cache disabled, and attached-disabled is bit-identical to detached.
  /// Disabling flushes both tables and the pending records.
  void set_enabled(bool on) {
    enabled_ = on;
    if (!on) {
      egress_.invalidate_all();
      ingress_.invalidate_all();
      clear_pending();
    }
  }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint32_t vni() const { return vni_; }
  [[nodiscard]] std::uint16_t vtep_port() const { return kVtepPort; }

  // ---- slow-path recording ----------------------------------------------
  // The resolution of one egress flow is scattered across the async chain;
  // records are threaded by packet identity (per-stack packet ids are only
  // unique per stack, so the inner key pairs the id with the inner source
  // MAC, unique per pod).
  struct PendingKey {
    std::uint64_t packet_id = 0;
    MacAddress src;
    friend bool operator==(const PendingKey&, const PendingKey&) = default;
  };

  /// Bridge saw an inner frame switch toward the VTEP port.
  void note_egress(const PendingKey& k, const flowcache::FlowKey& key,
                   MacAddress inner_dst);
  /// VTEP resolved the remote and minted the outer packet id.
  void promote_egress(const PendingKey& k, Ipv4Address remote_vtep,
                      std::uint64_t outer_packet_id);
  /// The frame flooded (or was otherwise not cacheable): drop the record.
  void abandon_egress(const PendingKey& k);
  /// Outer route + ARP resolved (FullStack::arp_resolve_and_send): insert
  /// the egress entry and charge the one-time oncache_insert.
  void complete_egress(const Packet& outer, int out_ifindex,
                       MacAddress next_hop_mac);

  /// VTEP decapsulated an inner frame from `outer_src`.
  void note_ingress(const PendingKey& k, const IngressKey& key,
                    Ipv4Address outer_src);
  void abandon_ingress(const PendingKey& k);
  /// Bridge switched the decapped frame to a known pod port.
  void complete_ingress(const PendingKey& k, MacAddress inner_dst,
                        int out_port);

  // ---- fast paths -------------------------------------------------------
  /// Egress lookup + validation (inner dst MAC, routing generation, outer
  /// conntrack liveness — which it also touches, keeping the outer
  /// connection alive while the hooks are bypassed).  Stale entries are
  /// flushed; returns null on any miss.
  [[nodiscard]] const EgressPath* match_egress(const EthernetFrame& frame,
                                               int ingress_port);
  /// Builds and transmits the outer frame (runs inside the bridge's fused
  /// cost event).
  void serve_egress(const EgressPath& path, EthernetFrame inner);

  /// Ingress lookup + validation (sender VTEP, inner dst MAC) for an outer
  /// datagram addressed to this stack's VTEP port.
  [[nodiscard]] const IngressPath* match_ingress(const Packet& outer);
  /// Hands the stolen inner frame to the overlay bridge port (runs inside
  /// the stack's fused cost event).
  void deliver_ingress(int out_port, EthernetFrame frame);

  // ---- invalidation -----------------------------------------------------
  /// Rule-table edit: flush entries whose outer header view (egress pre-
  /// and post-NAT, ingress) matches the changed rule's predicate.
  std::size_t invalidate_rule_match(
      const RuleMatch& match,
      const std::function<std::string(int)>& iface_name);
  /// VTEP remap / overlay FDB eviction: flush both directions of `mac`.
  std::size_t invalidate_inner_mac(MacAddress mac);
  /// NIC hot-unplug: flush egress entries leaving `ifindex`; when it is
  /// the VTEP's uplink the ingress table goes too (nothing can arrive).
  std::size_t invalidate_egress_ifindex(int ifindex);
  /// Conntrack GC reaped the outer connection backing an egress entry.
  std::size_t invalidate_conn(std::uint64_t ct_id);
  void invalidate_all();

  // ---- statistics -------------------------------------------------------
  [[nodiscard]] std::uint64_t egress_hits() const { return egress_.hits(); }
  [[nodiscard]] std::uint64_t ingress_hits() const { return ingress_.hits(); }
  [[nodiscard]] std::uint64_t invalidations() const {
    return egress_.invalidations() + ingress_.invalidations();
  }
  [[nodiscard]] std::size_t size() const {
    return egress_.size() + ingress_.size();
  }
  [[nodiscard]] std::size_t state_bytes() const {
    return egress_.state_bytes() + ingress_.state_bytes();
  }
  [[nodiscard]] const SlabCache<flowcache::FlowKey, EgressPath,
                                flowcache::FlowKeyHash>&
  egress_cache() const {
    return egress_;
  }
  [[nodiscard]] const SlabCache<IngressKey, IngressPath, IngressKeyHash>&
  ingress_cache() const {
    return ingress_;
  }

  [[nodiscard]] StackBackend& stack() { return *stack_; }
  [[nodiscard]] const sim::CostModel& costs() const { return *costs_; }

 private:
  struct PendingKeyHash {
    std::size_t operator()(const PendingKey& k) const noexcept {
      const std::uint64_t h =
          (k.packet_id ^ k.src.as_u64()) * 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(h ^ (h >> 31));
    }
  };
  struct PendingEgress {
    flowcache::FlowKey key;
    MacAddress inner_dst;
    Ipv4Address remote_vtep;  ///< set at promote
  };
  struct PendingIngress {
    IngressKey key;
    Ipv4Address outer_src;
  };

  /// Pending records are transient (bridge -> VTEP -> ARP, a handful of
  /// events); a bounded population keeps a lossy chain from accumulating
  /// state.  Overflow clears everything — deterministic, and the flows
  /// simply re-record.
  static constexpr std::size_t kMaxPending = 64;

  void clear_pending() {
    pending_by_inner_.clear();
    pending_by_outer_.clear();
    pending_ingress_.clear();
  }
  void charge_insert();

  StackBackend* stack_;
  const sim::CostModel* costs_;
  CachedBridge* bridge_ = nullptr;
  Ipv4Address local_vtep_;
  int uplink_ifindex_ = -1;
  std::uint32_t vni_ = 0;
  bool enabled_ = false;

  SlabCache<flowcache::FlowKey, EgressPath, flowcache::FlowKeyHash> egress_;
  SlabCache<IngressKey, IngressPath, IngressKeyHash> ingress_;

  std::unordered_map<PendingKey, PendingEgress, PendingKeyHash>
      pending_by_inner_;
  std::unordered_map<std::uint64_t, PendingEgress> pending_by_outer_;
  std::unordered_map<PendingKey, PendingIngress, PendingKeyHash>
      pending_ingress_;
};

}  // namespace nestv::net::oncache
