// TAP device: a kernel L2 interface whose other side is a file descriptor
// (section 4.2: "virtual network interfaces ... that read and write
// Ethernet frames from and to a file descriptor").  QEMU/vhost uses the fd
// side as the backend of a VM's virtio NIC.
#pragma once

#include <functional>
#include <string>

#include "net/device.hpp"

namespace nestv::net {

class TapDevice : public Device {
 public:
  using FdHandler = std::function<void(EthernetFrame)>;

  TapDevice(sim::Engine& engine, std::string name,
            const sim::CostModel& costs);

  /// The consumer of frames read from the fd (e.g. a vhost worker).
  void set_fd_handler(FdHandler handler) { fd_handler_ = std::move(handler); }

  /// Network side -> fd side (kernel delivers a frame to the fd reader).
  void ingress(EthernetFrame frame, int port) override;

  /// fd side -> network side (a write() on the tap fd injects a frame).
  void inject(EthernetFrame frame);

  [[nodiscard]] std::uint64_t frames_to_fd() const { return to_fd_; }
  [[nodiscard]] std::uint64_t frames_from_fd() const { return from_fd_; }

 private:
  [[nodiscard]] sim::Duration frame_work(const EthernetFrame& f) const;

  FdHandler fd_handler_;
  std::uint64_t to_fd_ = 0;
  std::uint64_t from_fd_ = 0;
};

}  // namespace nestv::net
