// Compact connection-tracking store: one open-addressed tuple index over
// slab-allocated entries.
//
// The original conntrack kept two node-based maps — tuple -> id and
// id -> entry — so every tracked flow paid three heap nodes (orig tuple,
// reply tuple, entry) plus two bucket arrays, and the SNAT port allocator
// scanned the whole tuple map per candidate.  At the macro scale this
// repo now targets (hundreds of machines, ~10^5..10^6 concurrent flows)
// that footprint and scan dominate; ONCache (PAPERS.md) makes the same
// observation for overlay datapaths.  This store keeps the exact external
// semantics (ids are opaque, both tuples of a confirmed connection resolve
// to one entry, gc reaps by idle time) with:
//
//   * a slab arena of fixed-size entry slots (chunked, stable addresses,
//     LIFO free list) — no per-entry heap nodes;
//   * one open-addressed index of 8-byte buckets (tag + slot ref) covering
//     both tuple directions — no node-based maps;
//   * ids encoding (slot, generation), so id lookup (the packet fast path
//     and the flow-cache liveness check) is O(1) with no hashing;
//   * a flat (proto, ip, port) occupancy index mirroring the registered
//     tuples, so NAT port allocation is O(1) per candidate instead of a
//     full-table scan.
//
// state_bytes() reports the resident footprint so benches can gate
// bytes-of-state-per-flow as a first-class metric.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace nestv::net {

/// 5-tuple key for connection tracking (direction-sensitive).
struct ConnKey {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  L4Proto proto = L4Proto::kUdp;

  friend bool operator==(const ConnKey&, const ConnKey&) = default;
};

struct ConnKeyHash {
  std::size_t operator()(const ConnKey& k) const noexcept;
};

/// A tracked connection with its NAT bindings.  Field order packs the
/// NAT scalars and flags into one 16-byte block (64 bytes total; this
/// struct is the unit of the conntrack slab, so padding here is paid per
/// tracked flow on every stack).
struct ConnEntry {
  ConnKey orig;        ///< initiator's original tuple
  ConnKey reply;       ///< tuple reply packets carry (post-NAT view)
  Ipv4Address snat_ip;
  Ipv4Address dnat_ip;
  std::uint16_t snat_port = 0;
  std::uint16_t dnat_port = 0;
  bool snat = false;
  bool dnat = false;
  /// A connection is confirmed once its first packet completed POSTROUTING
  /// and the reply tuple is registered (mirrors nf_conntrack_confirm).
  bool confirmed = false;
  sim::TimePoint last_seen = 0;
  std::uint64_t packets = 0;
};

class ConnTable {
 public:
  /// A live connection: the opaque id plus the stable entry pointer.
  /// Entry pointers stay valid across inserts (slab storage) until the
  /// connection is erased.
  struct Ref {
    std::uint64_t id = 0;
    ConnEntry* entry = nullptr;
    explicit operator bool() const { return entry != nullptr; }
  };

  ConnTable() = default;

  /// Looks up a connection by either of its registered tuples.
  [[nodiscard]] Ref find(const ConnKey& key);
  [[nodiscard]] const ConnEntry* find(const ConnKey& key) const;

  /// O(1) id lookup; null Ref if the id was reaped (slot generation moved).
  [[nodiscard]] Ref find_id(std::uint64_t id);
  [[nodiscard]] bool alive(std::uint64_t id) const;

  /// Inserts a new connection, registering entry.orig in the index.
  /// Returns the new connection's Ref.
  Ref create(const ConnEntry& entry);

  /// Registers the (confirmed) reply tuple of `id`.  If the tuple is
  /// already bound to another connection it is re-bound, matching the
  /// overwrite semantics of the map-based implementation.
  void register_reply(std::uint64_t id, const ConnKey& reply);

  /// Erases the connection and both its tuples; no-op on a dead id.
  void erase(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return live_; }

  /// True if any registered tuple has (proto, dst_ip, dst_port) equal to
  /// the arguments — the NAT port-allocation clash test.  The occupancy
  /// index behind it is built lazily on the first call (and mirrored on
  /// every insert/erase afterwards): only stacks that actually allocate
  /// NAT ports ever pay for it, which at macro scale is a minority.
  [[nodiscard]] bool port_in_use(L4Proto proto, Ipv4Address ip,
                                 std::uint16_t port);

  /// Slot-order iteration bound (slots in [0, slot_count()) may be free).
  [[nodiscard]] std::size_t slot_count() const { return slots_used_; }
  /// Ref for slot `i`, or null when the slot is free.
  [[nodiscard]] Ref at_slot(std::size_t i);

  /// Resident bytes: slab chunks + tuple index + port-use index.
  [[nodiscard]] std::size_t state_bytes() const;

 private:
  /// Slab chunks grow in a shallow geometric sequence — four chunks per
  /// size doubling (8, 8, 8, 8, 16, 16, ... slots) — so a stack that
  /// tracks three flows pays for 8 slots, and a table sampled at an
  /// arbitrary occupancy carries at most ~25% allocated-but-unused slot
  /// slack (a plain doubling sequence averages ~2x that).  Matters when a
  /// macro-scale run holds hundreds of mostly-idle stacks; busy tables
  /// still get amortized O(1) growth.  Addresses stay stable.
  static constexpr std::uint32_t kFirstChunkSlots = 8;
  static constexpr std::uint32_t kChunksPerDoubling = 4;
  static constexpr std::uint32_t kFreeEnd = 0xffffffffU;
  static constexpr std::uint32_t kOccupied = 0xfffffffeU;
  static constexpr std::uint32_t kEmptyRef = 0;
  static constexpr std::uint32_t kTombRef = 0xffffffffU;

  struct Slot {
    ConnEntry entry;
    std::uint32_t gen = 0;
    /// kOccupied while live; otherwise next free slot (kFreeEnd = none).
    std::uint32_t next_free = kFreeEnd;
  };

  /// Tuple-index bucket: slot+1 (kEmptyRef empty, kTombRef erased).  No
  /// stored tag/hash: probes verify against the slot's own tuples, and
  /// erase-by-(key, slot) stays unambiguous because a slot's two bindings
  /// are only ever erased together (see index_erase).
  using Bucket = std::uint32_t;

  /// Slot s lives in the chunk whose base is the largest <= s; chunks are
  /// few (the sequence above), and hot slots sit in the last chunks, so a
  /// reverse scan of the base table beats closed-form arithmetic here.
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_of(
      std::uint32_t s) const {
    std::size_t c = chunk_bases_.size() - 1;
    while (chunk_bases_[c] > s) --c;
    return {c, s - chunk_bases_[c]};
  }
  [[nodiscard]] Slot& slot(std::uint32_t s) {
    const auto [c, off] = chunk_of(s);
    return chunks_[c][off];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t s) const {
    const auto [c, off] = chunk_of(s);
    return chunks_[c][off];
  }
  [[nodiscard]] static std::uint64_t id_of(std::uint32_t s,
                                           std::uint32_t gen) {
    return (std::uint64_t{gen} << 32) | (s + 1);
  }
  /// Slot of `id`, or kFreeEnd when the id is stale.
  [[nodiscard]] std::uint32_t slot_of(std::uint64_t id) const;
  [[nodiscard]] bool slot_has_tuple(std::uint32_t s,
                                    const ConnKey& key) const;

  std::uint32_t alloc_slot();
  void index_insert(const ConnKey& key, std::uint32_t s);
  void index_erase(const ConnKey& key, std::uint32_t s);
  void index_grow();

  [[nodiscard]] static std::uint64_t port_key(L4Proto proto, Ipv4Address ip,
                                              std::uint16_t port) {
    return (std::uint64_t{ip.value()} << 24) |
           (std::uint64_t{port} << 8) | static_cast<std::uint64_t>(proto) |
           (1ULL << 60);  // keep keys nonzero
  }
  void port_add(const ConnKey& key);
  void port_remove(const ConnKey& key);
  void port_grow();
  void ports_build();

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> chunk_bases_;  ///< first slot of each chunk
  std::uint32_t slots_used_ = 0;   ///< high-water slot count
  std::uint32_t slots_cap_ = 0;    ///< slots allocated across chunks
  std::uint32_t free_head_ = kFreeEnd;
  std::size_t live_ = 0;

  std::vector<Bucket> buckets_;
  std::size_t index_live_ = 0;   ///< occupied buckets
  std::size_t index_dead_ = 0;   ///< tombstones

  /// Port-occupancy map, split into parallel arrays (12 bytes per bucket
  /// instead of a padded 16-byte struct): port_keys_[i] holds the packed
  /// (proto, ip, port) key (0 = empty, ~0ULL = tombstone), port_counts_[i]
  /// how many registered tuples carry it.
  std::vector<std::uint64_t> port_keys_;
  std::vector<std::uint32_t> port_counts_;
  std::size_t ports_live_ = 0;
  std::size_t ports_dead_ = 0;
  bool ports_built_ = false;  ///< index materialized (first port_in_use)
};

}  // namespace nestv::net
