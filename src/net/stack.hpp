// NetworkStack: one network namespace's L3/L4 machinery.
//
// Owns interfaces (each bound to an InterfaceBackend), a routing table, ARP
// neighbour caches, a Netfilter instance and the UDP/TCP socket tables.
// A stack instance stands for: the host kernel's init netns, a guest
// kernel's init netns, or a pod's network namespace — all of which appear
// in the paper's fig 1 datapaths.
//
// CPU model: protocol work (IP processing, netfilter hooks, TCP/UDP segment
// handling) runs on the stack's softirq SerialResource, charged as kSoft —
// matching the paper's attribution of NAT hook work to software interrupts
// (section 5.2.3).  Socket syscall work (send/recv + user/kernel copies) is
// charged to the calling application's resource as kSys.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/backend.hpp"
#include "net/flowcache/flowcache.hpp"
#include "net/neighbor.hpp"
#include "net/netfilter.hpp"
#include "net/packet.hpp"
#include "net/route.hpp"
#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace nestv::net {

class TcpConnection;
class NetworkStack;

/// Application-facing handle to one TCP connection.
class TcpSocket {
 public:
  /// Queues `bytes` for transmission.  `app` is charged the syscall and
  /// user->kernel copy; segmentation happens asynchronously in softirq.
  /// `on_queued` (optional) fires once the bytes entered the send buffer —
  /// i.e. when the (blocking) send() syscall would have returned.
  void send(std::uint32_t bytes, sim::InlineTask&& on_queued = {});

  /// Called with the byte count of each chunk delivered to the app.
  void set_on_receive(std::function<void(std::uint32_t)> cb);
  /// Called once the three-way handshake completes (client side).
  void set_on_connected(std::function<void()> cb);
  void set_on_closed(std::function<void()> cb);
  /// Fires whenever the send buffer drains below one window.
  void set_on_writable(std::function<void()> cb);

  void close();

  [[nodiscard]] bool established() const;
  [[nodiscard]] std::uint64_t bytes_received() const;
  [[nodiscard]] std::uint64_t bytes_sent() const;
  [[nodiscard]] std::uint64_t retransmits() const;
  [[nodiscard]] std::uint32_t buffered() const;
  [[nodiscard]] std::uint16_t local_port() const;
  [[nodiscard]] std::uint16_t remote_port() const;
  /// Effective congestion window (== flow-control window when congestion
  /// control is disabled in the cost model).
  [[nodiscard]] std::uint32_t congestion_window() const;
  /// Smoothed RTT estimate in ns (0 until the first sample; congestion
  /// control must be enabled).
  [[nodiscard]] double srtt_ns() const;

 private:
  friend class NetworkStack;
  friend class TcpConnection;
  explicit TcpSocket(TcpConnection* conn) : conn_(conn) {}
  TcpConnection* conn_;
};

struct InterfaceConfig {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
  Ipv4Cidr subnet;
  std::uint32_t mtu = 1500;
  /// Effective TCP segment size when transmitting out this interface
  /// (models TSO/GSO; see CostModel's gso_* discussion).
  std::uint32_t gso_bytes = 1448;
};

class NetworkStack {
 public:
  NetworkStack(sim::Engine& engine, std::string name,
               const sim::CostModel& costs, sim::SerialResource* softirq);
  ~NetworkStack();

  NetworkStack(const NetworkStack&) = delete;
  NetworkStack& operator=(const NetworkStack&) = delete;

  // ---- configuration ----------------------------------------------------
  /// Attaches an interface; the stack installs itself as the backend's RX
  /// handler and adds a connected route for the subnet.  Returns ifindex.
  int add_interface(InterfaceBackend& backend, const InterfaceConfig& cfg);

  /// The loopback interface (always ifindex 0); gso defaults to the cost
  /// model's gso_loopback.
  void configure_loopback(std::uint32_t gso_bytes);

  [[nodiscard]] RoutingTable& routes() { return routes_; }
  [[nodiscard]] Netfilter& netfilter() { return nf_; }
  [[nodiscard]] const Netfilter& netfilter() const { return nf_; }
  void set_forwarding(bool on) { forwarding_ = on; }

  /// br_netfilter effect: a stack that bridges+NATs container traffic must
  /// linearize GSO super-frames so netfilter can inspect them; incoming TCP
  /// payloads larger than `bytes` are split into `bytes`-sized segments,
  /// each paying the full per-packet hook/bridge/veth costs.  Zero = off.
  /// This asymmetry (BrFusion/NoCont keep TSO end-to-end, the nested NAT
  /// path does not) is the mechanistic root of the paper's fig 2.
  void set_forced_resegment(std::uint32_t bytes) {
    forced_resegment_ = bytes;
  }

  /// Multiplies forwarded-packet softirq cost by a lognormal factor
  /// (median 1) — service-time noise of a guest kernel that bridges + NATs
  /// under interrupt pressure.  The paper's fig 10 observes NAT/Overlay
  /// latencies that "vary greatly and in unexpected manners" while Hostlo
  /// (which forwards through no guest stack) stays flat.
  void set_forward_jitter(double sigma, std::uint64_t seed) {
    forward_jitter_sigma_ = sigma;
    jitter_rng_ = sim::Rng(seed);
  }

  /// Enables the per-flow fast-path cache (src/net/flowcache): established
  /// flows skip the hook/route/ARP chain and pay one aggregated
  /// flowcache_hit charge instead.  Off by default — the calibrated
  /// slow-path figures (fig 2/4/10) are measured with the cache disabled.
  /// Disabling flushes the cache.
  void set_flowcache(bool on) {
    flowcache_enabled_ = on;
    if (!on) fcache_.invalidate_all();
  }
  [[nodiscard]] bool flowcache_enabled() const { return flowcache_enabled_; }
  [[nodiscard]] flowcache::FlowCache& flow_cache() { return fcache_; }
  [[nodiscard]] const flowcache::FlowCache& flow_cache() const {
    return fcache_;
  }

  /// Conntrack garbage collection: reaps idle connections and drops the
  /// cached fast paths they backed (a cached entry must never outlive its
  /// conntrack backing).  Returns the number of reaped connections.
  std::size_t conntrack_gc(sim::Duration idle_timeout);

  /// NIC hot-unplug (QMP device_del): detaches the backend so the ifindex
  /// goes dead — queued/parked packets drop — and flushes exactly the
  /// cached flows entering or leaving it.
  void detach_interface(int ifindex);

  /// GRO: in-order TCP segments of one flow arriving in a burst coalesce
  /// at the receiving netdev *before* protocol processing, so a 12-chunk
  /// MTU burst costs one hook traversal instead of twelve.  On by default;
  /// disabled automatically on stacks with forced resegmentation (the
  /// br_netfilter path re-linearizes anyway).
  void set_gro(bool on) { gro_enabled_ = on; }

  [[nodiscard]] int ifindex_of(const std::string& name) const;
  [[nodiscard]] Ipv4Address iface_ip(int ifindex) const;
  [[nodiscard]] MacAddress iface_mac(int ifindex) const;
  void set_iface_gso(int ifindex, std::uint32_t gso_bytes);

  /// Pre-seeds an ARP entry (tests & deterministic startup).
  void seed_neighbor(int ifindex, Ipv4Address ip, MacAddress mac);

  /// Attaches a pcap writer capturing every frame this stack receives or
  /// transmits on any interface (like `tcpdump -i any` in the namespace).
  /// The writer must outlive the stack or be detached with nullptr.
  void attach_capture(class PcapWriter* writer) { capture_ = writer; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const sim::CostModel& costs() const { return *costs_; }
  [[nodiscard]] sim::SerialResource* softirq() { return softirq_; }

  /// Runs `work` on `res` then `then`, like SerialResource::submit_as, but
  /// in burst mode (batch_size > 1) items for the same resource share drain
  /// events through a per-resource BatchSink — this is how app-side syscall
  /// pairs (send + its on-sent continuation) stop costing two events each.
  /// `res == nullptr` degrades to a pure delay, as the call sites did.
  void resource_run(sim::SerialResource* res, sim::CpuCategory category,
                    sim::Duration work, sim::InlineTask&& then);

  // ---- UDP ----------------------------------------------------------------
  struct UdpDelivery {
    std::uint32_t bytes = 0;
    Ipv4Address src_ip;
    std::uint16_t src_port = 0;
    sim::TimePoint sent_at = 0;  ///< sender's socket-exit timestamp
    /// Encapsulated inner frame (VXLAN); shared so the delivery is copyable.
    std::shared_ptr<EthernetFrame> inner;
  };
  /// Handlers get a mutable delivery so a sole kernel consumer (the VXLAN
  /// VTEP) can steal the inner frame instead of deep-copying it; handlers
  /// that only read may take `const UdpDelivery&` as before.
  using UdpHandler = std::function<void(UdpDelivery&)>;

  /// Binds `port`; deliveries charge `app` (syscall+copy) before `handler`
  /// runs.  `app` may be null (no charge, immediate dispatch after wakeup).
  void udp_bind(std::uint16_t port, sim::SerialResource* app,
                UdpHandler handler);
  /// Kernel-consumer bind (VXLAN VTEP): the handler runs in softirq with no
  /// wakeup latency and no syscall charge.
  void udp_bind_kernel(std::uint16_t port, UdpHandler handler);
  void udp_unbind(std::uint16_t port);

  /// Sends one datagram.  Charges `app` for the syscall, then hands the
  /// packet to the stack.  `on_sent` (optional) fires when the packet has
  /// left the socket (used by closed-loop load generators).
  void udp_send(Ipv4Address src_ip, std::uint16_t src_port,
                Ipv4Address dst_ip, std::uint16_t dst_port,
                std::uint32_t bytes, sim::SerialResource* app,
                sim::InlineTask&& on_sent = {});

  // ---- ICMP ---------------------------------------------------------------
  /// Sends an echo request; `done` fires with the round-trip time when the
  /// reply arrives.  Unanswered pings simply never call back.
  void ping(Ipv4Address dst, std::uint32_t payload_bytes,
            std::function<void(sim::Duration rtt)> done);

  /// ICMP errors addressed to this stack (destination unreachable, time
  /// exceeded) are passed here; the packet carries icmp_type/icmp_code and
  /// the src_ip of the reporting hop.
  void set_icmp_error_handler(std::function<void(const Packet&)> handler) {
    icmp_error_handler_ = std::move(handler);
  }

  [[nodiscard]] std::uint64_t icmp_errors_sent() const {
    return icmp_errors_tx_;
  }

  // ---- TCP ----------------------------------------------------------------
  using AcceptHandler = std::function<void(TcpSocket)>;

  /// Listens on `port`; each accepted connection's app work charges `app`.
  void tcp_listen(std::uint16_t port, sim::SerialResource* app,
                  AcceptHandler on_accept);

  /// Opens a client connection.  The returned socket is valid for the
  /// stack's lifetime.
  TcpSocket tcp_connect(Ipv4Address src_ip, Ipv4Address dst_ip,
                        std::uint16_t dst_port, sim::SerialResource* app);

  // ---- datapath (called by backends / internals) -------------------------
  void rx(int ifindex, EthernetFrame frame);

  /// Burst delivery from a batched backend (one virtio NAPI poll cycle):
  /// the frames traverse the same RX pipeline as rx(), but their per-frame
  /// softirq charges (MAC filter, GRO merges) coalesce into shared softirq
  /// items, so a k-frame train costs O(1) events instead of O(k).
  void rx_train(int ifindex, std::vector<EthernetFrame> frames);

  /// L4 -> network: runs OUTPUT/POSTROUTING, routes and transmits.
  /// All processing is charged to softirq.
  void emit_packet(Packet p);

  /// Charges `l4_work` to softirq, then emits `p` (used by TCP/UDP).
  void l4_emit(sim::Duration l4_work, Packet p);

  /// Effective TCP segment size towards `dst`: loopback GSO for local
  /// destinations, else the egress interface's GSO size.
  [[nodiscard]] std::uint32_t egress_gso(Ipv4Address dst) const;

  // ---- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t packets_forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t arp_requests_sent() const { return arp_tx_; }
  [[nodiscard]] std::uint64_t reassembly_failures() const {
    return reassembly_failures_;
  }

  std::uint64_t next_packet_id() { return next_packet_id_++; }

 private:
  friend class TcpConnection;

  struct Interface {
    InterfaceConfig cfg;
    InterfaceBackend* backend = nullptr;  ///< null for loopback
    NeighborTable neighbors;
    /// Packets parked awaiting ARP resolution, keyed by next-hop.
    std::unordered_map<Ipv4Address, std::vector<Packet>> arp_pending;
  };

  struct UdpBinding {
    sim::SerialResource* app = nullptr;
    UdpHandler handler;
    bool kernel = false;
  };

  struct TcpKey {
    Ipv4Address local_ip;
    std::uint16_t local_port;
    Ipv4Address remote_ip;
    std::uint16_t remote_port;
    friend bool operator<(const TcpKey& a, const TcpKey& b) {
      return std::tie(a.local_ip, a.local_port, a.remote_ip, a.remote_port) <
             std::tie(b.local_ip, b.local_port, b.remote_ip, b.remote_port);
    }
  };

  struct TcpListener {
    sim::SerialResource* app = nullptr;
    AcceptHandler on_accept;
  };

  /// Runs `work` on softirq (kSoft) then `then`.
  void softirq_run(sim::Duration work, sim::InlineTask&& then);

  [[nodiscard]] bool is_local_address(Ipv4Address a) const;

  void handle_arp(int ifindex, const EthernetFrame& frame);
  /// `carry`, when non-null (train delivery), accumulates this frame's
  /// gro_pkt charge instead of submitting a softirq item per frame; any
  /// accumulated charge is flushed before a merge triggers gro_flush so
  /// softirq occupancy keeps the per-frame FIFO order.
  void gro_rx(int ifindex, Packet p, sim::Duration* carry = nullptr);
  void gro_flush(const ConnKey& key);
  void ip_rx(int ifindex, Packet p);
  void ip_rx_one(int ifindex, Packet p);
  void deliver_local(Packet p, int ifindex);
  void forward(Packet p, int in_ifindex);
  /// Post-routing egress: POSTROUTING hook, ARP resolve, hand to backend.
  /// `record` carries the ingress-time flow key of a cacheable forwarded
  /// packet through the async chain so the resolved path can be memoized.
  void egress(Packet p, int out_ifindex, const std::string& in_iface,
              std::optional<flowcache::FlowKey> record = std::nullopt);
  void arp_resolve_and_send(
      Packet p, int out_ifindex,
      std::optional<flowcache::FlowKey> record = std::nullopt);
  /// Serves one packet from a cached path; returns false on a miss or a
  /// stale entry (caller falls through to the slow path).
  bool flowcache_rx(int ifindex, Packet& p);
  void record_flow(const flowcache::FlowKey& key, const Packet& p,
                   flowcache::CachedPath::Action action, int out_ifindex,
                   MacAddress next_hop_mac, const std::string& out_iface);
  void send_arp_request(int ifindex, Ipv4Address target);
  void loopback_deliver(Packet p);

  void deliver_udp(Packet p);
  void deliver_tcp(Packet p);
  void deliver_icmp(const Packet& p);
  /// Emits an ICMP error (type/code) about `offender` back to its source.
  void send_icmp_error(const Packet& offender, std::uint8_t type,
                       std::uint8_t code);

  TcpConnection& create_connection(const TcpKey& key,
                                   sim::SerialResource* app);

  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  sim::SerialResource* softirq_;
  /// Burst mode: softirq work items (several per packet) share drain events
  /// instead of scheduling one completion each — the ksoftirqd half of the
  /// datapath's event coalescing.  Unused when batch_size <= 1.
  std::unique_ptr<sim::BatchSink> softirq_sink_;
  /// Burst mode: one BatchSink per app resource submitting through this
  /// stack (resource_run), with a one-entry lookup cache.  Unused when
  /// batch_size <= 1.
  std::unordered_map<sim::SerialResource*, std::unique_ptr<sim::BatchSink>>
      app_sinks_;
  sim::SerialResource* last_app_res_ = nullptr;
  sim::BatchSink* last_app_sink_ = nullptr;

  std::vector<Interface> ifaces_;  ///< [0] is loopback
  RoutingTable routes_;
  Netfilter nf_;
  flowcache::FlowCache fcache_;
  bool flowcache_enabled_ = false;
  bool forwarding_ = false;
  std::uint32_t forced_resegment_ = 0;
  bool gro_enabled_ = true;
  double forward_jitter_sigma_ = 0.0;
  sim::Rng jitter_rng_{0};

  struct GroFlow {
    Packet merged;
    int ifindex = 0;
    int count = 0;
    sim::EventId flush_timer = 0;
  };
  std::unordered_map<ConnKey, GroFlow, ConnKeyHash> gro_flows_;

  /// IPv4 reassembly (nf_defrag runs before conntrack, so fragments are
  /// merged at stack entry, like GRO).
  struct ReassemblyKey {
    Ipv4Address src;
    Ipv4Address dst;
    std::uint16_t ip_id = 0;
    friend bool operator==(const ReassemblyKey&,
                           const ReassemblyKey&) = default;
  };
  struct ReassemblyKeyHash {
    std::size_t operator()(const ReassemblyKey& k) const noexcept {
      return (static_cast<std::size_t>(k.src.value()) * 31 +
              k.dst.value()) *
                 31 +
             k.ip_id;
    }
  };
  struct ReassemblyState {
    Packet first;            ///< fragment at offset 0 (carries L4 header)
    std::uint32_t received = 0;
    std::uint32_t total = 0;  ///< known once the MF=0 fragment arrives
    int ifindex = 0;
    sim::EventId timeout = 0;
  };
  std::unordered_map<ReassemblyKey, ReassemblyState, ReassemblyKeyHash>
      reassembly_;
  std::uint16_t next_ip_id_ = 1;
  std::uint64_t reassembly_failures_ = 0;

  void reassemble_rx(int ifindex, Packet p);

  std::map<std::uint16_t, UdpBinding> udp_binds_;
  std::map<std::uint16_t, TcpListener> tcp_listeners_;
  std::map<TcpKey, std::unique_ptr<TcpConnection>> tcp_conns_;

  struct PendingPing {
    sim::TimePoint sent_at = 0;
    std::function<void(sim::Duration)> done;
  };
  std::map<std::uint16_t, PendingPing> pings_;  ///< by icmp_seq
  std::uint16_t next_ping_seq_ = 1;
  std::function<void(const Packet&)> icmp_error_handler_;
  std::uint64_t icmp_errors_tx_ = 0;
  class PcapWriter* capture_ = nullptr;

  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t arp_tx_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::uint16_t next_ephemeral_port_ = 40000;
};

}  // namespace nestv::net
