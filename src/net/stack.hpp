// FullStack: one network namespace's full-featured L3/L4 machinery — the
// default StackBackend (see net/stack_backend.hpp for the seam).
//
// Owns interfaces (each bound to an InterfaceBackend), a routing table, ARP
// neighbour caches, a Netfilter instance, GRO/reassembly state and the
// per-flow fast-path cache; the UDP/TCP socket tables live in the shared
// StackBackend base.  A stack instance stands for: the host kernel's init
// netns, a guest kernel's init netns, or a pod's network namespace — all of
// which appear in the paper's fig 1 datapaths.
//
// CPU model: protocol work (IP processing, netfilter hooks, TCP/UDP segment
// handling) runs on the stack's softirq SerialResource, charged as kSoft —
// matching the paper's attribution of NAT hook work to software interrupts
// (section 5.2.3).  Socket syscall work (send/recv + user/kernel copies) is
// charged to the calling application's resource as kSys.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/backend.hpp"
#include "net/flowcache/flowcache.hpp"
#include "net/neighbor.hpp"
#include "net/netfilter.hpp"
#include "net/packet.hpp"
#include "net/route.hpp"
#include "net/stack_backend.hpp"
#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace nestv::net {

class FullStack : public StackBackend {
 public:
  FullStack(sim::Engine& engine, std::string name,
            const sim::CostModel& costs, sim::SerialResource* softirq);
  ~FullStack() override;

  [[nodiscard]] StackKind kind() const override {
    return StackKind::kFullStack;
  }

  // ---- configuration ----------------------------------------------------
  int add_interface(InterfaceBackend& backend,
                    const InterfaceConfig& cfg) override;

  void configure_loopback(std::uint32_t gso_bytes) override;

  [[nodiscard]] RoutingTable& routes() override { return routes_; }
  [[nodiscard]] bool has_netfilter() const override { return true; }
  [[nodiscard]] Netfilter& netfilter() override { return nf_; }
  [[nodiscard]] const Netfilter& netfilter() const override { return nf_; }
  void set_forwarding(bool on) override { forwarding_ = on; }

  /// br_netfilter effect: a stack that bridges+NATs container traffic must
  /// linearize GSO super-frames so netfilter can inspect them; incoming TCP
  /// payloads larger than `bytes` are split into `bytes`-sized segments,
  /// each paying the full per-packet hook/bridge/veth costs.  Zero = off.
  /// This asymmetry (BrFusion/NoCont keep TSO end-to-end, the nested NAT
  /// path does not) is the mechanistic root of the paper's fig 2.
  void set_forced_resegment(std::uint32_t bytes) override {
    forced_resegment_ = bytes;
  }

  /// Multiplies forwarded-packet softirq cost by a lognormal factor
  /// (median 1) — service-time noise of a guest kernel that bridges + NATs
  /// under interrupt pressure.  The paper's fig 10 observes NAT/Overlay
  /// latencies that "vary greatly and in unexpected manners" while Hostlo
  /// (which forwards through no guest stack) stays flat.
  void set_forward_jitter(double sigma, std::uint64_t seed) override {
    forward_jitter_sigma_ = sigma;
    jitter_rng_ = sim::Rng(seed);
  }

  /// Enables the per-flow fast-path cache (src/net/flowcache): established
  /// flows skip the hook/route/ARP chain and pay one aggregated
  /// flowcache_hit charge instead.  Off by default — the calibrated
  /// slow-path figures (fig 2/4/10) are measured with the cache disabled.
  /// Disabling flushes the cache.
  void set_flowcache(bool on) override {
    flowcache_enabled_ = on;
    if (!on) fcache_.invalidate_all();
  }
  [[nodiscard]] bool has_flowcache() const override { return true; }
  [[nodiscard]] bool flowcache_enabled() const override {
    return flowcache_enabled_;
  }
  [[nodiscard]] flowcache::FlowCache& flow_cache() override {
    return fcache_;
  }
  [[nodiscard]] const flowcache::FlowCache& flow_cache() const override {
    return fcache_;
  }

  /// Conntrack garbage collection: reaps idle connections and drops the
  /// cached fast paths they backed (a cached entry must never outlive its
  /// conntrack backing).  Returns the number of reaped connections.
  std::size_t conntrack_gc(sim::Duration idle_timeout) override;

  /// NIC hot-unplug (QMP device_del): detaches the backend so the ifindex
  /// goes dead — queued/parked packets drop — and flushes exactly the
  /// cached flows entering or leaving it.
  void detach_interface(int ifindex) override;

  /// GRO: in-order TCP segments of one flow arriving in a burst coalesce
  /// at the receiving netdev *before* protocol processing, so a 12-chunk
  /// MTU burst costs one hook traversal instead of twelve.  On by default;
  /// disabled automatically on stacks with forced resegmentation (the
  /// br_netfilter path re-linearizes anyway).
  void set_gro(bool on) override { gro_enabled_ = on; }

  [[nodiscard]] int ifindex_of(const std::string& name) const override;
  [[nodiscard]] Ipv4Address iface_ip(int ifindex) const override;
  [[nodiscard]] MacAddress iface_mac(int ifindex) const override;
  void set_iface_gso(int ifindex, std::uint32_t gso_bytes) override;
  void seed_neighbor(int ifindex, Ipv4Address ip, MacAddress mac) override;
  [[nodiscard]] std::size_t interface_count() const override {
    return ifaces_.size();
  }

  void ping(Ipv4Address dst, std::uint32_t payload_bytes,
            std::function<void(sim::Duration rtt)> done) override;

  void set_icmp_error_handler(
      std::function<void(const Packet&)> handler) override {
    icmp_error_handler_ = std::move(handler);
  }

  [[nodiscard]] std::uint64_t icmp_errors_sent() const override {
    return icmp_errors_tx_;
  }

  // ---- datapath ---------------------------------------------------------
  void rx(int ifindex, EthernetFrame frame) override;
  void rx_train(int ifindex, std::vector<EthernetFrame> frames) override;

  /// L4 -> network: runs OUTPUT/POSTROUTING, routes and transmits.
  void emit_packet(Packet p) override;

  /// Oncache egress fast path's last hop: transmit a fully resolved frame
  /// (capture tap included, like arp_resolve_and_send's tail).
  void oncache_xmit(int out_ifindex, EthernetFrame frame) override;

  [[nodiscard]] std::uint32_t egress_gso(Ipv4Address dst) const override;

 private:
  struct Interface {
    InterfaceConfig cfg;
    InterfaceBackend* backend = nullptr;  ///< null for loopback
    NeighborTable neighbors;
    /// Packets parked awaiting ARP resolution, keyed by next-hop.
    std::unordered_map<Ipv4Address, std::vector<Packet>> arp_pending;
  };

  [[nodiscard]] bool is_local_address(Ipv4Address a) const;

  void handle_arp(int ifindex, const EthernetFrame& frame);
  /// `carry`, when non-null (train delivery), accumulates this frame's
  /// gro_pkt charge instead of submitting a softirq item per frame; any
  /// accumulated charge is flushed before a merge triggers gro_flush so
  /// softirq occupancy keeps the per-frame FIFO order.
  void gro_rx(int ifindex, Packet p, sim::Duration* carry = nullptr);
  void gro_flush(const ConnKey& key);
  void ip_rx(int ifindex, Packet p);
  void ip_rx_one(int ifindex, Packet p);
  void deliver_local(Packet p, int ifindex);
  /// Post-routing egress: POSTROUTING hook, ARP resolve, hand to backend.
  /// `record` carries the ingress-time flow key of a cacheable forwarded
  /// packet through the async chain so the resolved path can be memoized.
  void egress(Packet p, int out_ifindex, const std::string& in_iface,
              std::optional<flowcache::FlowKey> record = std::nullopt);
  void arp_resolve_and_send(
      Packet p, int out_ifindex,
      std::optional<flowcache::FlowKey> record = std::nullopt);
  /// Serves one packet from a cached path; returns false on a miss or a
  /// stale entry (caller falls through to the slow path).
  bool flowcache_rx(int ifindex, Packet& p);
  /// Oncache ingress fast path: a VXLAN datagram for this stack's VTEP
  /// whose inner flow is cached skips PREROUTING/INPUT, the UDP demux and
  /// the decap/bridge events; returns false on a miss (slow path).
  bool oncache_rx(int ifindex, Packet& p);
  void record_flow(const flowcache::FlowKey& key, const Packet& p,
                   flowcache::CachedPath::Action action, int out_ifindex,
                   MacAddress next_hop_mac);
  void send_arp_request(int ifindex, Ipv4Address target);
  void loopback_deliver(Packet p);

  void deliver_icmp(const Packet& p);
  /// Emits an ICMP error (type/code) about `offender` back to its source.
  void send_icmp_error(const Packet& offender, std::uint8_t type,
                       std::uint8_t code);
  /// Unbound UDP port: answer with ICMP port-unreachable.
  void udp_unbound(const Packet& p) override;

  void reassemble_rx(int ifindex, Packet p);

  std::vector<Interface> ifaces_;  ///< [0] is loopback
  RoutingTable routes_;
  Netfilter nf_;
  flowcache::FlowCache fcache_;
  bool flowcache_enabled_ = false;
  bool forwarding_ = false;
  std::uint32_t forced_resegment_ = 0;
  bool gro_enabled_ = true;
  double forward_jitter_sigma_ = 0.0;
  sim::Rng jitter_rng_{0};

  struct GroFlow {
    Packet merged;
    int ifindex = 0;
    int count = 0;
    sim::EventId flush_timer = 0;
  };
  std::unordered_map<ConnKey, GroFlow, ConnKeyHash> gro_flows_;

  /// IPv4 reassembly (nf_defrag runs before conntrack, so fragments are
  /// merged at stack entry, like GRO).
  struct ReassemblyKey {
    Ipv4Address src;
    Ipv4Address dst;
    std::uint16_t ip_id = 0;
    friend bool operator==(const ReassemblyKey&,
                           const ReassemblyKey&) = default;
  };
  struct ReassemblyKeyHash {
    std::size_t operator()(const ReassemblyKey& k) const noexcept {
      return (static_cast<std::size_t>(k.src.value()) * 31 +
              k.dst.value()) *
                 31 +
             k.ip_id;
    }
  };
  struct ReassemblyState {
    Packet first;            ///< fragment at offset 0 (carries L4 header)
    std::uint32_t received = 0;
    std::uint32_t total = 0;  ///< known once the MF=0 fragment arrives
    int ifindex = 0;
    sim::EventId timeout = 0;
  };
  std::unordered_map<ReassemblyKey, ReassemblyState, ReassemblyKeyHash>
      reassembly_;

  struct PendingPing {
    sim::TimePoint sent_at = 0;
    std::function<void(sim::Duration)> done;
  };
  std::map<std::uint16_t, PendingPing> pings_;  ///< by icmp_seq
  std::uint16_t next_ping_seq_ = 1;
  std::function<void(const Packet&)> icmp_error_handler_;
  std::uint64_t icmp_errors_tx_ = 0;
};

/// Pre-seam name for the default backend; every consumer that does not care
/// about the seam keeps compiling (and behaving) unchanged.
using NetworkStack = FullStack;

}  // namespace nestv::net
