#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nestv::net {

TcpConnection::TcpConnection(StackBackend& stack, Ipv4Address local_ip,
                             std::uint16_t local_port, Ipv4Address remote_ip,
                             std::uint16_t remote_port,
                             sim::SerialResource* app)
    : stack_(&stack),
      local_ip_(local_ip),
      local_port_(local_port),
      remote_ip_(remote_ip),
      remote_port_(remote_port),
      app_(app) {}

TcpConnection::~TcpConnection() {
  cancel_rto();
  if (delayed_ack_timer_ != 0) stack_->engine().cancel(delayed_ack_timer_);
}

void TcpConnection::open_active() {
  assert(state_ == State::kClosed);
  state_ = State::kSynSent;
  snd_nxt_ = 1;  // SYN consumes sequence 0
  emit_segment(0, TcpFlags{.syn = true});
  arm_rto();
}

void TcpConnection::open_passive(const Packet& syn) {
  assert(state_ == State::kClosed && syn.tcp_flags.syn);
  state_ = State::kSynReceived;
  rcv_nxt_ = syn.tcp_seq + 1;
  snd_nxt_ = 1;
  emit_segment(0, TcpFlags{.syn = true, .ack = true});
  arm_rto();
}

void TcpConnection::become_established() {
  state_ = State::kEstablished;
  if (on_connected_) on_connected_();
}

void TcpConnection::app_send(std::uint32_t bytes, sim::InlineTask&& on_queued) {
  if (bytes == 0 || state_ == State::kDone || state_ == State::kFinSent) {
    return;
  }
  const auto& c = stack_->costs();
  const auto cost =
      c.syscall_pkt +
      static_cast<sim::Duration>(c.copy_byte * static_cast<double>(bytes));
  auto push = [this, bytes] {
    send_buffer_ += bytes;
    pump();
  };
  // As in NetworkStack::udp_send, `on_queued` is scheduled as its own
  // zero-cost FIFO item instead of being captured (an InlineTask does not
  // fit inside another task's inline storage).
  if (app_ != nullptr) {
    stack_->resource_run(app_, sim::CpuCategory::kSys, cost, std::move(push));
    if (on_queued) {
      stack_->resource_run(app_, sim::CpuCategory::kSys, 0,
                           std::move(on_queued));
    }
  } else {
    push();
    if (on_queued) on_queued();
  }
}

void TcpConnection::pump() {
  if (state_ != State::kEstablished && state_ != State::kFinSent) return;
  const auto& c = stack_->costs();
  // Segment size follows the egress interface of the route to the peer
  // (loopback for local destinations) — this is where TSO/GSO shows up.
  const std::uint32_t gso = stack_->egress_gso(remote_ip_);
  if (c.tcp_congestion_control && cwnd_ == 0) {
    cwnd_ = c.tcp_init_cwnd_segments * gso;  // IW10
    ssthresh_ = c.tcp_window_bytes;
  }
  const std::uint32_t window =
      c.tcp_congestion_control ? std::min(cwnd_, c.tcp_window_bytes)
                               : c.tcp_window_bytes;

  bool sent = false;
  while (send_buffer_ > 0) {
    const std::uint32_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= window) break;
    const std::uint32_t room = window - in_flight;
    const std::uint32_t seg = std::min({send_buffer_, gso, room});
    if (seg == 0) break;
    // Nagle: hold a sub-GSO segment while data is outstanding, so streams
    // coalesce into TSO-sized super-frames (request/response traffic has
    // in_flight == 0 at send time and is never delayed).
    if (seg < gso && in_flight > 0 && !fin_queued_) break;
    send_buffer_ -= seg;
    TcpFlags flags{.ack = true};
    if (send_buffer_ == 0) flags.psh = true;  // end of app burst
    emit_segment(seg, flags);
    sent = true;
  }
  if (fin_queued_ && send_buffer_ == 0 && state_ == State::kEstablished) {
    state_ = State::kFinSent;
    emit_segment(0, TcpFlags{.ack = true, .fin = true});
    sent = true;
  }
  if (sent) arm_rto();
  if (on_writable_ && send_buffer_ < window) on_writable_();
}

void TcpConnection::emit_segment(std::uint32_t bytes, TcpFlags flags) {
  const auto& c = stack_->costs();
  Packet p;
  p.src_ip = local_ip_;
  p.dst_ip = remote_ip_;
  p.proto = L4Proto::kTcp;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.tcp_seq = flags.syn ? 0 : snd_nxt_;
  p.tcp_ack = rcv_nxt_;
  p.tcp_flags = flags;
  p.tcp_window = c.tcp_window_bytes;
  p.payload_bytes = bytes;
  p.packet_id = stack_->next_packet_id();
  p.sent_at = stack_->engine().now();
  if (!flags.syn) {
    snd_nxt_ += bytes + (flags.fin ? 1 : 0);
    if (bytes > 0 && stack_->costs().tcp_congestion_control &&
        !timing_sample_active_) {
      timed_seq_ = snd_nxt_;
      timed_sent_at_ = stack_->engine().now();
      timing_sample_active_ = true;
    }
  }
  segs_since_ack_ = 0;  // any segment we emit carries our current ack
  if (delayed_ack_timer_ != 0) {
    stack_->engine().cancel(delayed_ack_timer_);
    delayed_ack_timer_ = 0;
  }
  // L4 segment processing happens in softirq context, then the packet
  // enters the stack's output path.
  stack_->l4_emit(c.l4_segment, std::move(p));
}

void TcpConnection::send_ack_now() {
  emit_segment(0, TcpFlags{.ack = true});
}

void TcpConnection::schedule_delayed_ack() {
  if (delayed_ack_timer_ != 0) return;
  delayed_ack_timer_ = stack_->engine().schedule_in(
      stack_->costs().tcp_delayed_ack, [this] {
        delayed_ack_timer_ = 0;
        if (state_ == State::kEstablished || state_ == State::kFinSent) {
          send_ack_now();
        }
      });
}

sim::Duration TcpConnection::current_rto() const {
  const auto& c = stack_->costs();
  if (!c.tcp_congestion_control || !srtt_valid_) return c.tcp_rto;
  const auto rto =
      static_cast<sim::Duration>(srtt_ns_ + 4.0 * rttvar_ns_);
  return std::max(rto, c.tcp_min_rto);
}

void TcpConnection::rtt_sample(sim::Duration rtt) {
  const auto r = static_cast<double>(rtt);
  if (!srtt_valid_) {
    srtt_ns_ = r;
    rttvar_ns_ = r / 2.0;
    srtt_valid_ = true;
    return;
  }
  // RFC 6298 with the standard alpha=1/8, beta=1/4.
  rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - r);
  srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * r;
}

void TcpConnection::on_ack_advance(std::uint32_t acked, std::uint32_t gso) {
  if (!stack_->costs().tcp_congestion_control) return;
  if (timing_sample_active_ && snd_una_ >= timed_seq_) {
    rtt_sample(stack_->engine().now() - timed_sent_at_);
    timing_sample_active_ = false;
  }
  if (cwnd_ == 0) return;  // not initialized yet (no data sent)
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked;  // slow start: exponential per RTT
  } else {
    // Congestion avoidance: ~one segment per RTT.
    cwnd_ += std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(gso) * acked / cwnd_));
  }
}

void TcpConnection::arm_rto() {
  cancel_rto();
  if (snd_una_ == snd_nxt_) return;  // nothing outstanding
  rto_timer_ = stack_->engine().schedule_in(current_rto(), [this] {
    rto_timer_ = 0;
    on_rto();
  });
}

void TcpConnection::cancel_rto() {
  if (rto_timer_ != 0) {
    stack_->engine().cancel(rto_timer_);
    rto_timer_ = 0;
  }
}

void TcpConnection::on_rto() {
  if (state_ == State::kDone) return;
  ++retransmits_;
  if (stack_->costs().tcp_congestion_control && cwnd_ != 0) {
    const std::uint32_t flight = snd_nxt_ - snd_una_;
    const std::uint32_t mss = stack_->egress_gso(remote_ip_);
    ssthresh_ = std::max(flight / 2, 2 * mss);
    cwnd_ = mss;            // back to one segment
    timing_sample_active_ = false;  // Karn: never time retransmissions
  }
  if (state_ == State::kSynSent) {
    emit_segment(0, TcpFlags{.syn = true});
    arm_rto();
    return;
  }
  if (state_ == State::kSynReceived) {
    emit_segment(0, TcpFlags{.syn = true, .ack = true});
    arm_rto();
    return;
  }
  // Go-back-N: rewind and resend everything outstanding.
  const std::uint32_t outstanding = snd_nxt_ - snd_una_;
  snd_nxt_ = snd_una_;
  send_buffer_ += outstanding;
  if (state_ == State::kFinSent) {
    // FIN occupied one sequence unit; strip it, it is re-queued by pump.
    if (send_buffer_ > 0) send_buffer_ -= 1;
    state_ = State::kEstablished;
    fin_queued_ = true;
  }
  pump();
}

void TcpConnection::on_segment(Packet p) {
  if (state_ == State::kDone) {
    // TIME_WAIT-lite: a retransmitted FIN from the peer (our final ACK was
    // lost or still in flight) must be re-ACKed or the peer RTOs forever.
    if (p.tcp_flags.fin) {
      if (p.tcp_seq == rcv_nxt_) rcv_nxt_ += 1;
      emit_segment(0, TcpFlags{.ack = true});
    }
    return;
  }

  if (p.tcp_flags.rst) {
    state_ = State::kDone;
    cancel_rto();
    if (on_closed_) on_closed_();
    return;
  }

  // ---- handshake --------------------------------------------------------
  if (state_ == State::kSynSent) {
    if (p.tcp_flags.syn && p.tcp_flags.ack) {
      rcv_nxt_ = p.tcp_seq + 1;
      snd_una_ = p.tcp_ack;
      cancel_rto();
      become_established();
      send_ack_now();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (p.tcp_flags.ack && p.tcp_ack >= 1) {
      snd_una_ = p.tcp_ack;
      cancel_rto();
      become_established();
      // Fall through: the ACK may carry data (e.g. request piggyback).
    } else {
      return;
    }
  }

  // ---- ACK processing ----------------------------------------------------
  if (p.tcp_flags.ack && p.tcp_ack > snd_una_) {
    const std::uint32_t acked = p.tcp_ack - snd_una_;
    snd_una_ = p.tcp_ack;
    bytes_tx_acked_ += acked;
    on_ack_advance(acked, stack_->egress_gso(remote_ip_));
    if (snd_una_ == snd_nxt_) {
      cancel_rto();
      if (state_ == State::kFinSent) {
        state_ = State::kDone;
        if (on_closed_) on_closed_();
        return;
      }
    } else {
      arm_rto();
    }
    pump();
  }

  // ---- data --------------------------------------------------------------
  if (p.payload_bytes > 0) {
    if (p.tcp_seq == rcv_nxt_) {
      rcv_nxt_ += p.payload_bytes;
      bytes_rx_ += p.payload_bytes;
      deliver_to_app(p.payload_bytes);
      ++segs_since_ack_;
      if (segs_since_ack_ >= 2 || p.tcp_flags.psh) {
        send_ack_now();
      } else {
        schedule_delayed_ack();
      }
    } else {
      // Out-of-order (a drop upstream): no reassembly queue; dup-ACK so the
      // sender's RTO/go-back-N recovers.
      send_ack_now();
    }
  }

  // ---- FIN ----------------------------------------------------------------
  if (p.tcp_flags.fin && p.tcp_seq == rcv_nxt_) {
    rcv_nxt_ += 1;
    send_ack_now();
    if (state_ == State::kEstablished) {
      // Passive close: emit our FIN immediately (no half-close users here).
      state_ = State::kFinSent;
      emit_segment(0, TcpFlags{.ack = true, .fin = true});
      arm_rto();
    }
  }
}

void TcpConnection::deliver_to_app(std::uint32_t bytes) {
  pending_app_bytes_ += bytes;
  if (app_wakeup_scheduled_) return;
  app_wakeup_scheduled_ = true;
  // Scheduler wakeup of the blocked reader, then recv() syscall + copy.
  stack_->engine().schedule_in(stack_->costs().rx_wakeup,
                               [this] { app_wakeup_flush(); });
}

void TcpConnection::app_wakeup_flush() {
  app_wakeup_scheduled_ = false;
  const std::uint32_t bytes = pending_app_bytes_;
  pending_app_bytes_ = 0;
  if (bytes == 0) return;
  const auto& c = stack_->costs();
  const auto cost =
      c.syscall_pkt +
      static_cast<sim::Duration>(c.copy_byte * static_cast<double>(bytes));
  auto deliver = [this, bytes] {
    if (on_receive_) on_receive_(bytes);
  };
  if (app_ != nullptr) {
    stack_->resource_run(app_, sim::CpuCategory::kSys, cost,
                         std::move(deliver));
  } else {
    deliver();
  }
}

std::uint32_t TcpConnection::congestion_window() const {
  const auto& c = stack_->costs();
  if (!c.tcp_congestion_control || cwnd_ == 0) return c.tcp_window_bytes;
  return std::min(cwnd_, c.tcp_window_bytes);
}

void TcpConnection::close() {
  if (state_ == State::kDone || state_ == State::kFinSent) return;
  if (state_ != State::kEstablished) {
    state_ = State::kDone;
    cancel_rto();
    return;
  }
  fin_queued_ = true;
  pump();
}

}  // namespace nestv::net
