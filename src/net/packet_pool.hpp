// Free-list pool for heap-allocated Packet / EthernetFrame nodes.
//
// The datapath mostly passes packets by value, but every VXLAN
// encapsulation (`Packet::inner`) and every UDP delivery that carries an
// inner frame puts an EthernetFrame on the heap.  Both types override
// class-level operator new/delete to recycle those nodes through a
// per-thread free list, so `make_unique<EthernetFrame>` at steady state is
// a pointer pop instead of a malloc.  Thread-local state keeps the pool
// safe under the bench sweep runner, where several deterministic
// single-threaded simulations run on a thread pool.
//
// The pool also hosts the `frames_cloned` counter: EthernetFrame's copy
// constructor counts every deep copy, making the genuine duplication
// points (Hostlo reflect-to-all-queues, bridge floods) visible to
// bench/abl_engine_perf.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nestv::net {

class PacketPool {
 public:
  /// The calling thread's pool (each sweep worker gets its own).
  static PacketPool& local();

  /// Returns a block of at least `bytes`; recycles a pooled block when the
  /// size class matches, else falls through to ::operator new.
  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Releases every pooled block back to the system allocator.
  void trim() noexcept;

  // ---- statistics (reset together with reset_stats) ----------------------
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::uint64_t fresh_allocs() const { return fresh_; }
  /// Fraction of acquisitions served from the free list.
  [[nodiscard]] double reuse_ratio() const {
    const std::uint64_t total = reuses_ + fresh_;
    return total ? static_cast<double>(reuses_) / static_cast<double>(total)
                 : 0.0;
  }
  void reset_stats() { reuses_ = fresh_ = 0; }

  /// Deep frame copies on this thread since the last reset (incremented by
  /// EthernetFrame's copy constructor/assignment).
  static std::uint64_t frames_cloned() noexcept { return frames_cloned_; }
  static void count_clone() noexcept { ++frames_cloned_; }
  static void reset_frames_cloned() noexcept { frames_cloned_ = 0; }

  /// Heap-allocated Packet/EthernetFrame nodes currently alive across the
  /// whole process.  Global (not per-thread) because a frame allocated on
  /// one conductor worker thread may be freed on another; relaxed atomics
  /// suffice since the count is only read between runs, after the
  /// conductor's workers have joined.  The fuzz harness snapshots this
  /// before building a world and asserts it is restored after teardown —
  /// the leak-on-teardown oracle.
  static std::int64_t live_nodes() noexcept {
    return live_nodes_.load(std::memory_order_relaxed);
  }

  ~PacketPool() { trim(); }

 private:
  PacketPool() = default;

  /// One size class per pooled type (EthernetFrame and Packet differ).
  struct Bin {
    std::size_t block_bytes = 0;
    std::vector<void*> free;
  };
  Bin* bin_for(std::size_t bytes) noexcept;

  Bin bins_[2];
  std::uint64_t reuses_ = 0;
  std::uint64_t fresh_ = 0;

  inline static thread_local std::uint64_t frames_cloned_ = 0;
  inline static std::atomic<std::int64_t> live_nodes_{0};
};

}  // namespace nestv::net
