#include "net/device.hpp"

#include <cassert>
#include <utility>

namespace nestv::net {

Device::Device(sim::Engine& engine, std::string name,
               const sim::CostModel& costs)
    : engine_(&engine), name_(std::move(name)), costs_(&costs) {}

int Device::add_port() {
  ports_.push_back(PortSlot{});
  return static_cast<int>(ports_.size()) - 1;
}

void Device::connect(Device& a, int pa, Device& b, int pb) {
  assert(pa >= 0 && pa < a.port_count());
  assert(pb >= 0 && pb < b.port_count());
  assert(a.ports_[static_cast<std::size_t>(pa)].peer == nullptr);
  assert(b.ports_[static_cast<std::size_t>(pb)].peer == nullptr);
  a.ports_[static_cast<std::size_t>(pa)] = PortSlot{&b, pb};
  b.ports_[static_cast<std::size_t>(pb)] = PortSlot{&a, pa};
}

std::pair<int, int> Device::link(Device& a, Device& b) {
  const int pa = a.add_port();
  const int pb = b.add_port();
  connect(a, pa, b, pb);
  return {pa, pb};
}

bool Device::process(sim::Duration work, sim::InlineTask&& then) {
  if (cpu_ == nullptr) {
    if (work == 0) {
      then();
    } else {
      engine_->schedule_in(work, std::move(then));
    }
    return true;
  }
  if (max_backlog_ != 0 && cpu_->busy_until() > engine_->now() &&
      cpu_->busy_until() - engine_->now() > max_backlog_) {
    ++dropped_;
    return false;
  }
  cpu_->submit_as(cpu_category_, work, std::move(then));
  return true;
}

void Device::transmit(int port, EthernetFrame frame) {
  assert(port >= 0 && port < port_count());
  const PortSlot& slot = ports_[static_cast<std::size_t>(port)];
  if (slot.peer == nullptr) {
    ++dropped_;  // unconnected port: frame goes nowhere
    return;
  }
  ++forwarded_;
  Device* peer = slot.peer;
  const int peer_port = slot.peer_port;
  engine_->schedule_in(
      costs_->hop_latency,
      [peer, peer_port, f = std::move(frame)]() mutable {
        peer->ingress(std::move(f), peer_port);
      });
}

}  // namespace nestv::net
