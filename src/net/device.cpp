#include "net/device.hpp"

#include <atomic>
#include <cassert>
#include <utility>

#include "sim/sharded_conductor.hpp"
#include "sim/test_hooks.hpp"

namespace nestv::net {

Device::Device(sim::Engine& engine, std::string name,
               const sim::CostModel& costs)
    : engine_(&engine), name_(std::move(name)), costs_(&costs) {}

int Device::add_port() {
  ports_.push_back(PortSlot{});
  return static_cast<int>(ports_.size()) - 1;
}

void Device::connect(Device& a, int pa, Device& b, int pb) {
  assert(pa >= 0 && pa < a.port_count());
  assert(pb >= 0 && pb < b.port_count());
  assert(a.ports_[static_cast<std::size_t>(pa)].peer == nullptr);
  assert(b.ports_[static_cast<std::size_t>(pb)].peer == nullptr);
  a.ports_[static_cast<std::size_t>(pa)] = PortSlot{&b, pb};
  b.ports_[static_cast<std::size_t>(pb)] = PortSlot{&a, pa};
}

std::pair<int, int> Device::link(Device& a, Device& b) {
  const int pa = a.add_port();
  const int pb = b.add_port();
  connect(a, pa, b, pb);
  return {pa, pb};
}

void Device::connect_wire(sim::ShardedConductor* conductor, Device& a,
                          int pa, Device& b, int pb,
                          sim::Duration wire_latency) {
  assert(wire_latency > 0);
  connect(a, pa, b, pb);
  PortSlot& sa = a.ports_[static_cast<std::size_t>(pa)];
  PortSlot& sb = b.ports_[static_cast<std::size_t>(pb)];
  sa.wire_latency = wire_latency;
  sb.wire_latency = wire_latency;
  if (conductor == nullptr) {
    // No equivalence contract without a conductor; ranks only need to be
    // unique within the process for a total same-instant order.
    static std::atomic<std::uint64_t> plain_ranks{0};
    sa.wire_rank = plain_ranks.fetch_add(1, std::memory_order_relaxed);
    sb.wire_rank = plain_ranks.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Ranks come from the conductor in setup order: two runs that build the
  // same world assign the same rank to the same link direction, which is
  // what lets the shards=1 and shards=N runs compare bit-for-bit.
  sa.wire_rank = conductor->alloc_wire_rank();
  sb.wire_rank = conductor->alloc_wire_rank();
  const int shard_a = conductor->shard_of(*a.engine_);
  const int shard_b = conductor->shard_of(*b.engine_);
  assert(shard_a >= 0 && shard_b >= 0 &&
         "connect_wire: both devices must live on conductor shards");
  if (shard_a == shard_b) return;  // same shard: plain scheduling suffices
  assert(wire_latency >= conductor->lookahead() &&
         "cross-shard wire shorter than the conductor's lookahead");
  // Feed the conductor's per-pair lookahead matrix: this wire bounds how
  // soon either shard can influence the other.
  conductor->note_cross_link(shard_a, shard_b, wire_latency);
  conductor->note_cross_link(shard_b, shard_a, wire_latency);
  sa.fabric = conductor;
  sa.self_shard = shard_a;
  sa.peer_shard = shard_b;
  sb.fabric = conductor;
  sb.self_shard = shard_b;
  sb.peer_shard = shard_a;
}

bool Device::process(sim::Duration work, sim::InlineTask&& then) {
  if (cpu_ == nullptr) {
    if (work == 0) {
      then();
    } else {
      engine_->schedule_in(work, std::move(then));
    }
    return true;
  }
  if (max_backlog_ != 0 && cpu_->busy_until() > engine_->now() &&
      cpu_->busy_until() - engine_->now() > max_backlog_) {
    ++dropped_;
    return false;
  }
  cpu_->submit_as(cpu_category_, work, std::move(then));
  return true;
}

bool Device::process_batched(sim::Duration work, sim::InlineTask&& then) {
  if (cpu_ == nullptr || costs_->batch_size <= 1) {
    return process(work, std::move(then));
  }
  if (max_backlog_ != 0 && cpu_->busy_until() > engine_->now() &&
      cpu_->busy_until() - engine_->now() > max_backlog_) {
    ++dropped_;
    return false;
  }
  if (batch_sink_ == nullptr || &batch_sink_->resource() != cpu_) {
    batch_sink_ =
        std::make_unique<sim::BatchSink>(*cpu_, costs_->napi_budget);
  }
  batch_sink_->submit_as(cpu_category_, work, std::move(then));
  return true;
}

void Device::transmit(int port, EthernetFrame frame) {
  assert(port >= 0 && port < port_count());
  PortSlot& slot = ports_[static_cast<std::size_t>(port)];
  if (slot.peer == nullptr) {
    ++dropped_;  // unconnected port: frame goes nowhere
    return;
  }
  ++forwarded_;
  if (slot.wire_latency != 0) {
    // Fabric wire: fixed latency, one delivery event per frame whether or
    // not batching is on and whether or not the peer is on another shard
    // — identical timing on every path is what makes the shard count (and
    // batch_size) invisible in the results.
    Device* const peer = slot.peer;
    const int peer_port = slot.peer_port;
    auto deliver = [peer, peer_port, f = std::move(frame)]() mutable {
      peer->ingress(std::move(f), peer_port);
    };
    const sim::TimePoint when = engine_->now() + slot.wire_latency;
    // The delivery key identifies the frame, not the execution mode:
    // same-instant arrivals at the peer order by (link rank, link seq)
    // whether they came through a mailbox or the local queue.
    assert(slot.wire_rank < (std::uint64_t{1} << 23) &&
           slot.wire_seq < (std::uint64_t{1} << 40));
    const std::uint64_t key = (slot.wire_rank << 40) | slot.wire_seq++;
    if (sim::test_hooks::unkeyed_wire_delivery) {
      // Injected ordering bug (fuzz harness self-test): deliver without
      // the key, so same-instant arrivals at the peer fire in execution-
      // mode-dependent order.
      if (slot.fabric != nullptr) {
        slot.fabric->post(slot.self_shard, slot.peer_shard, when,
                          std::move(deliver));
      } else {
        engine_->schedule_at(when, std::move(deliver));
      }
      return;
    }
    if (slot.fabric != nullptr) {
      slot.fabric->post_keyed(slot.self_shard, slot.peer_shard, when, key,
                              std::move(deliver));
    } else {
      engine_->schedule_at_keyed(when, key, std::move(deliver));
    }
    return;
  }
  if (costs_->batch_size > 1) {
    // Frames transmitted while a hop event is already in flight join it
    // (they are in the ring when the receiver's poll fires, at most
    // hop_latency after their own transmit): one event per wire burst, and
    // the burst propagates to the next hop.  A batch drain upstream handing
    // this device a whole burst in one event is the common producer.
    slot.pending.push_back(std::move(frame));
    if (slot.hop_armed) {
      engine_->note_coalesced(1);
      return;
    }
    slot.hop_armed = true;
    engine_->schedule_in(costs_->hop_latency,
                         [this, port] { deliver_hop(port); });
    return;
  }
  Device* peer = slot.peer;
  const int peer_port = slot.peer_port;
  engine_->schedule_in(
      costs_->hop_latency,
      [peer, peer_port, f = std::move(frame)]() mutable {
        peer->ingress(std::move(f), peer_port);
      });
}

void Device::deliver_hop(int port) {
  PortSlot& slot = ports_[static_cast<std::size_t>(port)];
  Device* const peer = slot.peer;
  const int peer_port = slot.peer_port;
  assert(!slot.pending.empty());
  // Deliver exactly the frames queued before this event fired; a hairpin
  // path re-entering transmit() during the loop queues behind the snapshot
  // and re-arms its own hop event below.
  std::size_t n = slot.pending.size();
  slot.hop_armed = false;
  while (n-- > 0) {
    EthernetFrame f = std::move(slot.pending.front());
    slot.pending.pop_front();
    peer->ingress_burst(std::move(f), peer_port);
  }
  peer->ingress_burst_end(peer_port);
  if (!slot.pending.empty() && !slot.hop_armed) {
    slot.hop_armed = true;
    engine_->schedule_in(costs_->hop_latency,
                         [this, port] { deliver_hop(port); });
  }
}

}  // namespace nestv::net
