#include "net/device.hpp"

#include <cassert>
#include <utility>

namespace nestv::net {

Device::Device(sim::Engine& engine, std::string name,
               const sim::CostModel& costs)
    : engine_(&engine), name_(std::move(name)), costs_(&costs) {}

int Device::add_port() {
  ports_.push_back(PortSlot{});
  return static_cast<int>(ports_.size()) - 1;
}

void Device::connect(Device& a, int pa, Device& b, int pb) {
  assert(pa >= 0 && pa < a.port_count());
  assert(pb >= 0 && pb < b.port_count());
  assert(a.ports_[static_cast<std::size_t>(pa)].peer == nullptr);
  assert(b.ports_[static_cast<std::size_t>(pb)].peer == nullptr);
  a.ports_[static_cast<std::size_t>(pa)] = PortSlot{&b, pb};
  b.ports_[static_cast<std::size_t>(pb)] = PortSlot{&a, pa};
}

std::pair<int, int> Device::link(Device& a, Device& b) {
  const int pa = a.add_port();
  const int pb = b.add_port();
  connect(a, pa, b, pb);
  return {pa, pb};
}

bool Device::process(sim::Duration work, sim::InlineTask&& then) {
  if (cpu_ == nullptr) {
    if (work == 0) {
      then();
    } else {
      engine_->schedule_in(work, std::move(then));
    }
    return true;
  }
  if (max_backlog_ != 0 && cpu_->busy_until() > engine_->now() &&
      cpu_->busy_until() - engine_->now() > max_backlog_) {
    ++dropped_;
    return false;
  }
  cpu_->submit_as(cpu_category_, work, std::move(then));
  return true;
}

bool Device::process_batched(sim::Duration work, sim::InlineTask&& then) {
  if (cpu_ == nullptr || costs_->batch_size <= 1) {
    return process(work, std::move(then));
  }
  if (max_backlog_ != 0 && cpu_->busy_until() > engine_->now() &&
      cpu_->busy_until() - engine_->now() > max_backlog_) {
    ++dropped_;
    return false;
  }
  if (batch_sink_ == nullptr || &batch_sink_->resource() != cpu_) {
    batch_sink_ =
        std::make_unique<sim::BatchSink>(*cpu_, costs_->napi_budget);
  }
  batch_sink_->submit_as(cpu_category_, work, std::move(then));
  return true;
}

void Device::transmit(int port, EthernetFrame frame) {
  assert(port >= 0 && port < port_count());
  PortSlot& slot = ports_[static_cast<std::size_t>(port)];
  if (slot.peer == nullptr) {
    ++dropped_;  // unconnected port: frame goes nowhere
    return;
  }
  ++forwarded_;
  if (costs_->batch_size > 1) {
    // Frames transmitted while a hop event is already in flight join it
    // (they are in the ring when the receiver's poll fires, at most
    // hop_latency after their own transmit): one event per wire burst, and
    // the burst propagates to the next hop.  A batch drain upstream handing
    // this device a whole burst in one event is the common producer.
    slot.pending.push_back(std::move(frame));
    if (slot.hop_armed) {
      engine_->note_coalesced(1);
      return;
    }
    slot.hop_armed = true;
    engine_->schedule_in(costs_->hop_latency,
                         [this, port] { deliver_hop(port); });
    return;
  }
  Device* peer = slot.peer;
  const int peer_port = slot.peer_port;
  engine_->schedule_in(
      costs_->hop_latency,
      [peer, peer_port, f = std::move(frame)]() mutable {
        peer->ingress(std::move(f), peer_port);
      });
}

void Device::deliver_hop(int port) {
  PortSlot& slot = ports_[static_cast<std::size_t>(port)];
  Device* const peer = slot.peer;
  const int peer_port = slot.peer_port;
  assert(!slot.pending.empty());
  // Deliver exactly the frames queued before this event fired; a hairpin
  // path re-entering transmit() during the loop queues behind the snapshot
  // and re-arms its own hop event below.
  std::size_t n = slot.pending.size();
  slot.hop_armed = false;
  while (n-- > 0) {
    EthernetFrame f = std::move(slot.pending.front());
    slot.pending.pop_front();
    peer->ingress_burst(std::move(f), peer_port);
  }
  peer->ingress_burst_end(peer_port);
  if (!slot.pending.empty() && !slot.hop_armed) {
    slot.hop_armed = true;
    engine_->schedule_in(costs_->hop_latency,
                         [this, port] { deliver_hop(port); });
  }
}

}  // namespace nestv::net
