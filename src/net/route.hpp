// IPv4 routing table with longest-prefix-match lookup.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace nestv::net {

struct Route {
  Ipv4Cidr prefix;
  int ifindex = -1;
  /// Next-hop gateway; unset for directly-connected prefixes.
  std::optional<Ipv4Address> gateway;
  int metric = 0;
};

struct RouteDecision {
  int ifindex = -1;
  /// The address to ARP for: the gateway if any, else the destination.
  Ipv4Address next_hop;
};

class RoutingTable {
 public:
  void add(const Route& r) { routes_.push_back(r); }
  void add_connected(Ipv4Cidr prefix, int ifindex) {
    routes_.push_back(Route{prefix, ifindex, std::nullopt, 0});
  }
  void add_default(Ipv4Address gateway, int ifindex) {
    routes_.push_back(
        Route{Ipv4Cidr(Ipv4Address(0), 0), ifindex, gateway, 0});
  }

  /// Longest-prefix match; ties broken by lowest metric, then insertion
  /// order.  Returns nullopt when no route covers `dst`.
  [[nodiscard]] std::optional<RouteDecision> lookup(Ipv4Address dst) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }
  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }

 private:
  std::vector<Route> routes_;
};

}  // namespace nestv::net
