// IPv4 routing table with longest-prefix-match lookup.
//
// Lookup is a hashed exact-match per distinct prefix length (longest
// first), not a linear scan: flat-fabric setups install one route per
// remote machine (PhysicalSwitch's full mesh), so at hundreds of machines
// a scan per packet per hop degrades quadratically.  A handful of
// distinct prefix lengths (/32 host routes, /24 subnets, /0 default)
// cover every table in the simulation, so lookup is effectively O(1).
// The semantics are the linear scan's exactly: longest prefix, then
// lowest metric, then earliest insertion.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"

namespace nestv::net {

struct Route {
  Ipv4Cidr prefix;
  int ifindex = -1;
  /// Next-hop gateway; unset for directly-connected prefixes.
  std::optional<Ipv4Address> gateway;
  int metric = 0;
};

struct RouteDecision {
  int ifindex = -1;
  /// The address to ARP for: the gateway if any, else the destination.
  Ipv4Address next_hop;
};

class RoutingTable {
 public:
  void add(const Route& r) {
    routes_.push_back(r);
    index_add(routes_.size() - 1);
    ++generation_;
  }
  void add_connected(Ipv4Cidr prefix, int ifindex) {
    add(Route{prefix, ifindex, std::nullopt, 0});
  }
  void add_default(Ipv4Address gateway, int ifindex) {
    add(Route{Ipv4Cidr(Ipv4Address(0), 0), ifindex, gateway, 0});
  }
  /// Removes every route with this exact prefix; returns the count.
  std::size_t remove(Ipv4Cidr prefix);

  /// Longest-prefix match; ties broken by lowest metric, then insertion
  /// order.  Returns nullopt when no route covers `dst`.
  [[nodiscard]] std::optional<RouteDecision> lookup(Ipv4Address dst) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }
  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }

  /// Bumped by every table edit.  Cached forwarding decisions stamp the
  /// generation they were computed under and lazily miss once it moves
  /// (src/net/flowcache — route changes invalidate via this stamp).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  /// Direct-mapped memo of recent decisions.  A handful of destinations
  /// dominate any steady-state flow, but every forwarded packet performs
  /// two lookups (route, then ARP next hop), so the linear scan shows up
  /// in the engine hot path.  Entries are validated against `generation_`,
  /// making the memo invisible: it returns exactly what the scan would.
  struct CacheEntry {
    Ipv4Address dst;
    std::uint64_t generation = ~std::uint64_t{0};
    std::optional<RouteDecision> decision;
  };
  static constexpr std::size_t kCacheSlots = 8;

  [[nodiscard]] static std::uint64_t index_key(int prefix_len,
                                               std::uint32_t network) {
    return (std::uint64_t{static_cast<std::uint32_t>(prefix_len)} << 32) |
           network;
  }
  /// Folds routes_[i] into the winner index (longest prefix per network;
  /// within one (len, network): lowest metric, earliest insertion).
  void index_add(std::size_t i);
  void index_rebuild();

  std::vector<Route> routes_;
  std::uint64_t generation_ = 0;
  /// (prefix_len, network) -> winning route ordinal in routes_.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  /// Distinct prefix lengths present, descending, with reference counts.
  std::vector<std::pair<int, std::uint32_t>> lens_;
  mutable CacheEntry cache_[kCacheSlots];
};

}  // namespace nestv::net
