// IPv4 routing table with longest-prefix-match lookup.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace nestv::net {

struct Route {
  Ipv4Cidr prefix;
  int ifindex = -1;
  /// Next-hop gateway; unset for directly-connected prefixes.
  std::optional<Ipv4Address> gateway;
  int metric = 0;
};

struct RouteDecision {
  int ifindex = -1;
  /// The address to ARP for: the gateway if any, else the destination.
  Ipv4Address next_hop;
};

class RoutingTable {
 public:
  void add(const Route& r) {
    routes_.push_back(r);
    ++generation_;
  }
  void add_connected(Ipv4Cidr prefix, int ifindex) {
    add(Route{prefix, ifindex, std::nullopt, 0});
  }
  void add_default(Ipv4Address gateway, int ifindex) {
    add(Route{Ipv4Cidr(Ipv4Address(0), 0), ifindex, gateway, 0});
  }
  /// Removes every route with this exact prefix; returns the count.
  std::size_t remove(Ipv4Cidr prefix);

  /// Longest-prefix match; ties broken by lowest metric, then insertion
  /// order.  Returns nullopt when no route covers `dst`.
  [[nodiscard]] std::optional<RouteDecision> lookup(Ipv4Address dst) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }
  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }

  /// Bumped by every table edit.  Cached forwarding decisions stamp the
  /// generation they were computed under and lazily miss once it moves
  /// (src/net/flowcache — route changes invalidate via this stamp).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  /// Direct-mapped memo of recent decisions.  A handful of destinations
  /// dominate any steady-state flow, but every forwarded packet performs
  /// two lookups (route, then ARP next hop), so the linear scan shows up
  /// in the engine hot path.  Entries are validated against `generation_`,
  /// making the memo invisible: it returns exactly what the scan would.
  struct CacheEntry {
    Ipv4Address dst;
    std::uint64_t generation = ~std::uint64_t{0};
    std::optional<RouteDecision> decision;
  };
  static constexpr std::size_t kCacheSlots = 8;

  std::vector<Route> routes_;
  std::uint64_t generation_ = 0;
  mutable CacheEntry cache_[kCacheSlots];
};

}  // namespace nestv::net
