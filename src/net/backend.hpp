// Interface backends: the "netdev driver" boundary between a NetworkStack
// and the L2 world.
#pragma once

#include <functional>
#include <string>

#include "net/device.hpp"
#include "net/packet.hpp"

namespace nestv::net {

/// A network stack transmits through this; deliveries come back through the
/// callback installed with set_rx.
class InterfaceBackend {
 public:
  virtual ~InterfaceBackend() = default;

  using RxHandler = std::function<void(EthernetFrame)>;

  virtual void xmit(EthernetFrame frame) = 0;
  virtual void set_rx(RxHandler handler) = 0;
  [[nodiscard]] virtual const std::string& backend_name() const = 0;
};

/// A plain device-graph attachment (host NIC, veth container end, ...).
/// Port 0 connects to the peer (bridge port, veth end, ...).
class PortBackend : public InterfaceBackend, public Device {
 public:
  PortBackend(sim::Engine& engine, std::string name,
              const sim::CostModel& costs)
      : Device(engine, std::move(name), costs) {
    add_port();
  }

  void xmit(EthernetFrame frame) override { transmit(0, std::move(frame)); }
  void set_rx(RxHandler handler) override { rx_ = std::move(handler); }
  [[nodiscard]] const std::string& backend_name() const override {
    return Device::name();
  }

  void ingress(EthernetFrame frame, int port) override {
    (void)port;
    if (rx_) rx_(std::move(frame));
  }

 private:
  RxHandler rx_;
};

}  // namespace nestv::net
