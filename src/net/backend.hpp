// Interface backends: the "netdev driver" boundary between a NetworkStack
// and the L2 world.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/device.hpp"
#include "net/packet.hpp"

namespace nestv::net {

/// A network stack transmits through this; deliveries come back through the
/// callback installed with set_rx.
class InterfaceBackend {
 public:
  virtual ~InterfaceBackend() = default;

  using RxHandler = std::function<void(EthernetFrame)>;
  using RxTrainHandler = std::function<void(std::vector<EthernetFrame>)>;

  virtual void xmit(EthernetFrame frame) = 0;
  virtual void set_rx(RxHandler handler) = 0;
  /// Burst-capable backends (virtio NAPI polling) deliver a whole poll
  /// cycle's frames through this when installed, so the stack's GRO sees
  /// real bursts.  Backends that never batch ignore it and keep using the
  /// per-frame handler.
  virtual void set_rx_train(RxTrainHandler handler) { (void)handler; }
  [[nodiscard]] virtual const std::string& backend_name() const = 0;
};

/// A plain device-graph attachment (host NIC, veth container end, ...).
/// Port 0 connects to the peer (bridge port, veth end, ...).
class PortBackend : public InterfaceBackend, public Device {
 public:
  PortBackend(sim::Engine& engine, std::string name,
              const sim::CostModel& costs)
      : Device(engine, std::move(name), costs) {
    add_port();
  }

  void xmit(EthernetFrame frame) override { transmit(0, std::move(frame)); }
  void set_rx(RxHandler handler) override { rx_ = std::move(handler); }
  void set_rx_train(RxTrainHandler handler) override {
    rx_train_ = std::move(handler);
  }
  [[nodiscard]] const std::string& backend_name() const override {
    return Device::name();
  }

  void ingress(EthernetFrame frame, int port) override {
    (void)port;
    if (rx_) rx_(std::move(frame));
  }

  // A coalesced hop delivers a whole same-timestamp burst back-to-back
  // within one event.  Collect it and hand the stack the full train in one
  // delivery at the end marker — still inside the hop event, no extra
  // scheduling — so its per-frame softirq charges pool and GRO sees the
  // burst.
  void ingress_burst(EthernetFrame frame, int port) override {
    if (rx_train_ && costs().batch_size > 1) {
      rx_buf_.push_back(std::move(frame));
    } else {
      ingress(std::move(frame), port);
    }
  }

  void ingress_burst_end(int port) override {
    (void)port;
    if (rx_buf_.empty()) return;
    auto fs = std::move(rx_buf_);
    rx_buf_.clear();
    rx_buf_.reserve(fs.size());
    if (fs.size() == 1 && rx_) {
      rx_(std::move(fs.front()));
    } else {
      rx_train_(std::move(fs));
    }
  }

 private:
  RxHandler rx_;
  RxTrainHandler rx_train_;
  std::vector<EthernetFrame> rx_buf_;
};

}  // namespace nestv::net
