// pcap capture of simulated traffic.
//
// Writes classic libpcap files (magic 0xa1b2c3d4, LINKTYPE_ETHERNET) whose
// frames are rendered through net/wire.hpp, so tcpdump/wireshark open the
// simulation's traffic directly.  Timestamps are the simulated clock.
// Attach a writer to any NetworkStack (NetworkStack::attach_capture) to
// get the moral equivalent of `tcpdump -i any` inside that namespace.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace nestv::net {

class PcapWriter {
 public:
  /// Opens `path` and writes the global header.  Throws std::runtime_error
  /// if the file cannot be created.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Appends one frame with the given simulated timestamp.
  void record(sim::TimePoint when, const EthernetFrame& frame);

  void flush();
  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void put_u32(std::uint32_t v);
  void put_u16(std::uint16_t v);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t frames_ = 0;
};

}  // namespace nestv::net
