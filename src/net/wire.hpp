// Wire-format serialization of simulated packets.
//
// The datapath itself moves structured Packet values for speed, but tests
// (and anyone integrating with a real pcap consumer) can render them to
// RFC-conformant octets with valid IPv4/UDP/TCP checksums, and parse them
// back.  Payload bytes are rendered as zeros (the simulation carries only
// lengths).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace nestv::net::wire {

/// RFC 1071 Internet checksum over a byte range.
[[nodiscard]] std::uint16_t internet_checksum(const std::uint8_t* data,
                                              std::size_t len);

/// Serializes the IPv4 datagram (header + L4 header + zeroed payload).
/// Encapsulated VXLAN inner frames are serialized recursively.
[[nodiscard]] std::vector<std::uint8_t> serialize_ipv4(const Packet& p);

/// Serializes the full Ethernet frame.
[[nodiscard]] std::vector<std::uint8_t> serialize_frame(
    const EthernetFrame& f);

/// Parses an IPv4 datagram produced by serialize_ipv4.  Returns nullopt on
/// malformed input or checksum mismatch.
[[nodiscard]] std::optional<Packet> parse_ipv4(
    const std::vector<std::uint8_t>& bytes);

}  // namespace nestv::net::wire
