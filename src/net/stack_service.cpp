#include "net/stack_service.hpp"

#include <algorithm>
#include <utility>

#include "net/stack.hpp"

namespace nestv::net {

/// A FullStack hosted on a StackService worker.  Identical semantics; only
/// kind() and the softirq attribution differ.  Defined here — consumers
/// always hold it through StackBackend&.
class ServiceHostedStack final : public FullStack {
 public:
  ServiceHostedStack(sim::Engine& engine, std::string name,
                     const sim::CostModel& costs,
                     sim::SerialResource* worker,
                     sim::CpuAccount* attribution)
      : FullStack(engine, std::move(name), costs, worker),
        attribution_(attribution) {}

  [[nodiscard]] StackKind kind() const override {
    return StackKind::kServiceHosted;
  }

 protected:
  void softirq_run(sim::Duration work, sim::InlineTask&& then) override {
    // Record the tenant's demand before the shared worker absorbs it; the
    // timing/ordering of the work itself is untouched.
    attribution_->charge(sim::CpuCategory::kSoft, work);
    FullStack::softirq_run(work, std::move(then));
  }

 private:
  sim::CpuAccount* attribution_;
};

StackService::StackService(sim::Engine& engine, std::string name,
                           const sim::CostModel& costs)
    : engine_(&engine),
      name_(std::move(name)),
      costs_(&costs),
      worker_(engine, name_ + ".worker") {}

StackService::~StackService() = default;

StackBackend& StackService::attach_guest(const std::string& guest_name) {
  auto stack = std::make_unique<ServiceHostedStack>(
      *engine_, guest_name, *costs_, &worker_,
      &ledger_.account(guest_name));
  StackBackend& ref = *stack;
  guests_.push_back(std::move(stack));
  return ref;
}

void StackService::detach_guest(StackBackend& stack) {
  const auto it = std::find_if(
      guests_.begin(), guests_.end(),
      [&stack](const std::unique_ptr<ServiceHostedStack>& g) {
        return g.get() == &stack;
      });
  if (it == guests_.end()) return;
  // Dead-end every non-loopback interface: queued and parked packets drop,
  // exactly like NIC hot-unplug on a self-owned stack.
  for (std::size_t i = 1; i < stack.interface_count(); ++i) {
    stack.detach_interface(static_cast<int>(i));
  }
  retired_.push_back(std::move(*it));
  guests_.erase(it);
}

sim::Duration StackService::attributed_soft_ns(
    const std::string& guest_name) const {
  const sim::CpuAccount* acc = ledger_.find(guest_name);
  return acc == nullptr ? 0 : acc->get(sim::CpuCategory::kSoft);
}

}  // namespace nestv::net
