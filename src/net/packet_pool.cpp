#include "net/packet_pool.hpp"

#include <new>

namespace nestv::net {

PacketPool& PacketPool::local() {
  static thread_local PacketPool pool;
  return pool;
}

PacketPool::Bin* PacketPool::bin_for(std::size_t bytes) noexcept {
  for (Bin& b : bins_) {
    if (b.block_bytes == bytes) return &b;
    if (b.block_bytes == 0) {
      // First use of this size class claims the empty bin.
      b.block_bytes = bytes;
      return &b;
    }
  }
  return nullptr;
}

void* PacketPool::allocate(std::size_t bytes) {
  live_nodes_.fetch_add(1, std::memory_order_relaxed);
  Bin* b = bin_for(bytes);
  if (b != nullptr && !b->free.empty()) {
    void* p = b->free.back();
    b->free.pop_back();
    ++reuses_;
    return p;
  }
  ++fresh_;
  return ::operator new(bytes);
}

void PacketPool::deallocate(void* p, std::size_t bytes) noexcept {
  live_nodes_.fetch_sub(1, std::memory_order_relaxed);
  Bin* b = bin_for(bytes);
  if (b != nullptr) {
    b->free.push_back(p);
    return;
  }
  ::operator delete(p);
}

void PacketPool::trim() noexcept {
  for (Bin& b : bins_) {
    for (void* p : b.free) ::operator delete(p);
    b.free.clear();
  }
}

}  // namespace nestv::net
