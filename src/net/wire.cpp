#include "net/wire.hpp"

#include <cstring>

namespace nestv::net::wire {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::size_t at,
             std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 8);
  out[at + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t at,
             std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 24);
  out[at + 1] = static_cast<std::uint8_t>(v >> 16);
  out[at + 2] = static_cast<std::uint8_t>(v >> 8);
  out[at + 3] = static_cast<std::uint8_t>(v);
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return (std::uint32_t{in[at]} << 24) | (std::uint32_t{in[at + 1]} << 16) |
         (std::uint32_t{in[at + 2]} << 8) | in[at + 3];
}

/// Pseudo-header checksum accumulation for TCP/UDP.
std::uint32_t pseudo_header_sum(const Packet& p, std::uint32_t l4_len) {
  std::uint32_t sum = 0;
  sum += p.src_ip.value() >> 16;
  sum += p.src_ip.value() & 0xffff;
  sum += p.dst_ip.value() >> 16;
  sum += p.dst_ip.value() & 0xffff;
  sum += static_cast<std::uint8_t>(p.proto);
  sum += l4_len;
  return sum;
}

std::uint16_t finish_checksum(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint32_t sum_bytes(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (len & 1) sum += static_cast<std::uint32_t>(data[len - 1] << 8);
  return sum;
}

}  // namespace

std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  return finish_checksum(sum_bytes(data, len));
}

std::vector<std::uint8_t> serialize_ipv4(const Packet& p) {
  std::vector<std::uint8_t> inner_bytes;
  if (p.inner) inner_bytes = serialize_frame(*p.inner);

  const std::uint32_t l4_hdr = p.l4_header_bytes();
  const std::uint32_t l4_len =
      l4_hdr + p.payload_bytes + static_cast<std::uint32_t>(inner_bytes.size());
  const std::uint32_t total = kIpv4HeaderBytes + l4_len;

  std::vector<std::uint8_t> out(total, 0);

  // IPv4 header.
  out[0] = 0x45;  // version 4, IHL 5
  put_u16(out, 2, static_cast<std::uint16_t>(total));
  put_u16(out, 4, p.ip_id);
  out[8] = p.ttl;
  out[9] = static_cast<std::uint8_t>(p.proto);
  put_u32(out, 12, p.src_ip.value());
  put_u32(out, 16, p.dst_ip.value());
  put_u16(out, 10, internet_checksum(out.data(), kIpv4HeaderBytes));

  // L4 header.
  const std::size_t l4 = kIpv4HeaderBytes;
  if (p.proto == L4Proto::kUdp) {
    put_u16(out, l4 + 0, p.src_port);
    put_u16(out, l4 + 2, p.dst_port);
    put_u16(out, l4 + 4, static_cast<std::uint16_t>(l4_len));
  } else if (p.proto == L4Proto::kTcp) {
    put_u16(out, l4 + 0, p.src_port);
    put_u16(out, l4 + 2, p.dst_port);
    put_u32(out, l4 + 4, p.tcp_seq);
    put_u32(out, l4 + 8, p.tcp_ack);
    out[l4 + 12] = 0x50;  // data offset 5 words
    std::uint8_t flags = 0;
    if (p.tcp_flags.fin) flags |= 0x01;
    if (p.tcp_flags.syn) flags |= 0x02;
    if (p.tcp_flags.rst) flags |= 0x04;
    if (p.tcp_flags.psh) flags |= 0x08;
    if (p.tcp_flags.ack) flags |= 0x10;
    out[l4 + 13] = flags;
    put_u16(out, l4 + 14,
            static_cast<std::uint16_t>(
                p.tcp_window > 0xffff ? 0xffff : p.tcp_window));
  }

  // Encapsulated frame bytes follow the L4 header (VXLAN-style payload).
  if (!inner_bytes.empty()) {
    std::memcpy(out.data() + l4 + l4_hdr, inner_bytes.data(),
                inner_bytes.size());
  }

  // L4 checksum over pseudo-header + segment.
  if (p.proto == L4Proto::kUdp || p.proto == L4Proto::kTcp) {
    const std::size_t csum_at = l4 + (p.proto == L4Proto::kUdp ? 6 : 16);
    std::uint32_t sum = pseudo_header_sum(p, l4_len);
    sum += sum_bytes(out.data() + l4, l4_len);
    put_u16(out, csum_at, finish_checksum(sum));
  }
  return out;
}

std::vector<std::uint8_t> serialize_frame(const EthernetFrame& f) {
  std::vector<std::uint8_t> out(kEthernetHeaderBytes, 0);
  std::memcpy(out.data(), f.dst.octets().data(), 6);
  std::memcpy(out.data() + 6, f.src.octets().data(), 6);
  out[12] = static_cast<std::uint8_t>(f.ethertype >> 8);
  out[13] = static_cast<std::uint8_t>(f.ethertype & 0xff);
  if (f.ethertype == 0x0800) {
    const auto ip = serialize_ipv4(f.packet);
    out.insert(out.end(), ip.begin(), ip.end());
  }
  return out;
}

std::optional<Packet> parse_ipv4(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kIpv4HeaderBytes) return std::nullopt;
  if ((bytes[0] >> 4) != 4) return std::nullopt;
  if (internet_checksum(bytes.data(), kIpv4HeaderBytes) != 0) {
    return std::nullopt;  // header checksum must verify to zero
  }
  Packet p;
  const std::uint16_t total = get_u16(bytes, 2);
  if (total > bytes.size()) return std::nullopt;
  p.ip_id = get_u16(bytes, 4);
  p.ttl = bytes[8];
  p.proto = static_cast<L4Proto>(bytes[9]);
  p.src_ip = Ipv4Address(get_u32(bytes, 12));
  p.dst_ip = Ipv4Address(get_u32(bytes, 16));

  const std::size_t l4 = kIpv4HeaderBytes;
  if (p.proto == L4Proto::kUdp) {
    if (total < l4 + kUdpHeaderBytes) return std::nullopt;
    p.src_port = get_u16(bytes, l4 + 0);
    p.dst_port = get_u16(bytes, l4 + 2);
    p.payload_bytes =
        static_cast<std::uint32_t>(get_u16(bytes, l4 + 4)) - kUdpHeaderBytes;
  } else if (p.proto == L4Proto::kTcp) {
    if (total < l4 + kTcpHeaderBytes) return std::nullopt;
    p.src_port = get_u16(bytes, l4 + 0);
    p.dst_port = get_u16(bytes, l4 + 2);
    p.tcp_seq = get_u32(bytes, l4 + 4);
    p.tcp_ack = get_u32(bytes, l4 + 8);
    const std::uint8_t flags = bytes[l4 + 13];
    p.tcp_flags.fin = flags & 0x01;
    p.tcp_flags.syn = flags & 0x02;
    p.tcp_flags.rst = flags & 0x04;
    p.tcp_flags.psh = flags & 0x08;
    p.tcp_flags.ack = flags & 0x10;
    p.tcp_window = get_u16(bytes, l4 + 14);
    p.payload_bytes = total - l4 - kTcpHeaderBytes;
  }
  return p;
}

}  // namespace nestv::net::wire
