#include "net/veth.hpp"

#include <cassert>
#include <utility>

namespace nestv::net {

VethEnd::VethEnd(sim::Engine& engine, std::string name,
                 const sim::CostModel& costs)
    : Device(engine, std::move(name), costs) {
  add_port();  // port 0: graph attachment (unused when stack-attached)
}

void VethEnd::cross(EthernetFrame frame) {
  assert(twin_ != nullptr && "veth end used before pairing");
  const sim::Duration work =
      costs().veth_pkt +
      static_cast<sim::Duration>(costs().veth_copy_byte *
                                 static_cast<double>(frame.wire_bytes()));
  VethEnd* twin = twin_;
  process_batched(work, [twin, f = std::move(frame)]() mutable {
    twin->emerge(std::move(f));
  });
}

void VethEnd::emerge(EthernetFrame frame) {
  if (rx_) {
    rx_(std::move(frame));
  } else {
    transmit(0, std::move(frame));
  }
}

void VethEnd::ingress(EthernetFrame frame, int port) {
  assert(port == 0);
  (void)port;
  cross(std::move(frame));
}

void VethEnd::xmit(EthernetFrame frame) { cross(std::move(frame)); }

VethPair::VethPair(sim::Engine& engine, const std::string& name,
                   const sim::CostModel& costs)
    : a_(std::make_unique<VethEnd>(engine, name + ".a", costs)),
      b_(std::make_unique<VethEnd>(engine, name + ".b", costs)) {
  a_->twin_ = b_.get();
  b_->twin_ = a_.get();
}

}  // namespace nestv::net
