// ARP neighbour cache (per interface).
#pragma once

#include <optional>
#include <unordered_map>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace nestv::net {

class NeighborTable {
 public:
  explicit NeighborTable(sim::Duration reachable_time = sim::seconds(300))
      : reachable_(reachable_time) {}

  void insert(Ipv4Address ip, MacAddress mac, sim::TimePoint now) {
    entries_[ip] = Entry{mac, now};
  }

  [[nodiscard]] std::optional<MacAddress> lookup(Ipv4Address ip,
                                                 sim::TimePoint now) const {
    const auto it = entries_.find(ip);
    if (it == entries_.end()) return std::nullopt;
    if (now - it->second.seen > reachable_) return std::nullopt;
    return it->second.mac;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    MacAddress mac;
    sim::TimePoint seen;
  };
  sim::Duration reachable_;
  std::unordered_map<Ipv4Address, Entry> entries_;
};

}  // namespace nestv::net
