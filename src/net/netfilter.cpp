#include "net/netfilter.hpp"

#include <cassert>

namespace nestv::net {

const char* to_string(Hook h) {
  switch (h) {
    case Hook::kPrerouting: return "PREROUTING";
    case Hook::kInput: return "INPUT";
    case Hook::kForward: return "FORWARD";
    case Hook::kOutput: return "OUTPUT";
    case Hook::kPostrouting: return "POSTROUTING";
    case Hook::kCount: break;
  }
  return "?";
}

bool RuleMatch::matches(const Packet& p, const std::string& in,
                        const std::string& out) const {
  if (proto && *proto != p.proto) return false;
  if (src && !src->contains(p.src_ip)) return false;
  if (dst && !dst->contains(p.dst_ip)) return false;
  if (sport && *sport != p.src_port) return false;
  if (dport && *dport != p.dst_port) return false;
  if (!in_iface.empty() && in_iface != in) return false;
  if (!out_iface.empty() && out_iface != out) return false;
  return true;
}

std::size_t ConnKeyHash::operator()(const ConnKey& k) const noexcept {
  std::uint64_t h = k.src_ip.value();
  h = h * 0x9e3779b97f4a7c15ULL + k.dst_ip.value();
  h = h * 0x9e3779b97f4a7c15ULL +
      ((std::uint64_t{k.src_port} << 24) | (std::uint64_t{k.dst_port} << 8) |
       static_cast<std::uint64_t>(k.proto));
  return static_cast<std::size_t>(h ^ (h >> 29));
}

void Netfilter::install_standing_rules(int n) {
  // Rules that match an address range no experiment traffic uses: every
  // packet pays the scan, none is affected — the shape of Docker's and
  // Kubernetes's bookkeeping chains.
  const auto nowhere = Ipv4Cidr(Ipv4Address(203, 0, 113, 0), 24);
  for (int i = 0; i < n; ++i) {
    Rule r;
    r.match.dst = nowhere;
    r.target = TargetKind::kDrop;
    r.comment = "standing-" + std::to_string(i);
    filter_chain(Hook::kForward).rules.push_back(r);
    filter_chain(Hook::kInput).rules.push_back(r);
    filter_chain(Hook::kOutput).rules.push_back(r);
  }
}

ConnKey Netfilter::key_of(const Packet& p) {
  return ConnKey{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
}

const ConnEntry* Netfilter::find_conn(const ConnKey& k) const {
  const auto it = by_tuple_.find(k);
  if (it == by_tuple_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  return cit == conns_.end() ? nullptr : &cit->second;
}

ConnEntry* Netfilter::conntrack_lookup(const Packet& p) {
  if (p.ct_id != 0) {
    const auto it = conns_.find(p.ct_id);
    if (it != conns_.end()) return &it->second;
  }
  const auto it = by_tuple_.find(key_of(p));
  if (it == by_tuple_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  return cit == conns_.end() ? nullptr : &cit->second;
}

std::uint16_t Netfilter::allocate_port(L4Proto proto, Ipv4Address ip) {
  // Linear probe from the rolling counter until a tuple-free port is found.
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t candidate = next_nat_port_;
    next_nat_port_ =
        next_nat_port_ >= 60999 ? 32768 : static_cast<std::uint16_t>(
                                              next_nat_port_ + 1);
    bool clash = false;
    for (const auto& [key, _] : by_tuple_) {
      if (key.proto == proto && key.dst_ip == ip &&
          key.dst_port == candidate) {
        clash = true;
        break;
      }
    }
    if (!clash) return candidate;
  }
  return next_nat_port_;  // table exhausted; reuse is the kernel's fallback too
}

Netfilter::HookResult Netfilter::run_hook(Hook h, Packet& p,
                                          const std::string& in,
                                          const std::string& out,
                                          sim::TimePoint now) {
  ++traversals_;
  const bool is_nat_hook = h == Hook::kPrerouting || h == Hook::kOutput ||
                           h == Hook::kPostrouting;
  HookResult total;
  total.cost += costs_->nf_hook_base;
  if (is_nat_hook) {
    const HookResult nat = run_nat(h, p, in, out, now);
    total.cost += nat.cost;
    if (nat.verdict == Verdict::kDrop) {
      total.verdict = Verdict::kDrop;
      return total;
    }
  }
  if (h == Hook::kInput || h == Hook::kForward || h == Hook::kOutput) {
    const HookResult f = run_filter(h, p, in, out);
    total.cost += f.cost;
    total.verdict = f.verdict;
  }
  return total;
}

Netfilter::HookResult Netfilter::run_nat(Hook h, Packet& p,
                                         const std::string& in,
                                         const std::string& out,
                                         sim::TimePoint now) {
  HookResult r;
  ConnEntry* conn = conntrack_lookup(p);

  // ---- fresh flow at a DNAT hook: create the (unconfirmed) entry. -------
  if (conn == nullptr && (h == Hook::kPrerouting || h == Hook::kOutput)) {
    r.cost += costs_->conntrack_miss;
    const std::uint64_t id = next_conn_id_++;
    ConnEntry entry;
    entry.orig = key_of(p);
    entry.last_seen = now;
    entry.packets = 1;

    const Chain& chain = nat_[static_cast<std::size_t>(h)];
    for (const Rule& rule : chain.rules) {
      r.cost += costs_->nf_rule_scan;
      if (!rule.match.matches(p, in, out)) continue;
      if (rule.target == TargetKind::kDnat) {
        entry.dnat = true;
        entry.dnat_ip = rule.nat_ip;
        entry.dnat_port = rule.nat_port != 0 ? rule.nat_port : p.dst_port;
        p.dst_ip = entry.dnat_ip;
        p.dst_port = entry.dnat_port;
        r.cost += costs_->nat_rewrite;
      } else if (rule.target == TargetKind::kDnatRoundRobin &&
                 !rule.backends.empty()) {
        // kube-proxy: each *new flow* takes the next endpoint; conntrack
        // pins the established flow to it (session affinity for free).
        const NatBackend& backend =
            rule.backends[rr_counter_++ % rule.backends.size()];
        entry.dnat = true;
        entry.dnat_ip = backend.ip;
        entry.dnat_port = backend.port != 0 ? backend.port : p.dst_port;
        p.dst_ip = entry.dnat_ip;
        p.dst_port = entry.dnat_port;
        r.cost += costs_->nat_rewrite;
      } else if (rule.target == TargetKind::kDrop) {
        r.verdict = Verdict::kDrop;
      }
      break;
    }
    conns_.emplace(id, entry);
    by_tuple_[entry.orig] = id;
    p.ct_id = id;
    p.ct_reply = false;
    return r;
  }

  // ---- fresh flow seen first at POSTROUTING (bridged/local traffic that
  // bypassed the DNAT hooks): create the entry here, then fall through to
  // the confirmation path below.
  if (conn == nullptr) {
    r.cost += costs_->conntrack_miss;
    const std::uint64_t id = next_conn_id_++;
    ConnEntry entry;
    entry.orig = key_of(p);
    entry.last_seen = now;
    entry.packets = 0;  // incremented below
    conns_.emplace(id, entry);
    by_tuple_[entry.orig] = id;
    p.ct_id = id;
    p.ct_reply = false;
    conn = &conns_.at(id);
  } else {
    r.cost += costs_->conntrack_hit;
    if (p.ct_id == 0) {
      // First hook of this traversal: fix the packet's direction.
      p.ct_reply = conn->confirmed && key_of(p) == conn->reply;
      p.ct_id = by_tuple_.at(p.ct_reply ? conn->reply : conn->orig);
    }
  }
  conn->last_seen = now;
  ++conn->packets;

  if (!p.ct_reply) {
    if ((h == Hook::kPrerouting || h == Hook::kOutput) && conn->dnat) {
      p.dst_ip = conn->dnat_ip;
      p.dst_port = conn->dnat_port;
      r.cost += costs_->nat_rewrite;
    }
    if (h == Hook::kPostrouting) {
      if (!conn->confirmed) {
        // First packet of the flow reaches POSTROUTING: decide SNAT and
        // confirm the reply tuple (nf_nat_ipv4_out + __nf_conntrack_confirm).
        const Chain& chain =
            nat_[static_cast<std::size_t>(Hook::kPostrouting)];
        for (const Rule& rule : chain.rules) {
          r.cost += costs_->nf_rule_scan;
          if (!rule.match.matches(p, in, out)) continue;
          if (rule.target == TargetKind::kSnat ||
              rule.target == TargetKind::kMasquerade) {
            conn->snat = true;
            conn->snat_ip = rule.nat_ip;
            conn->snat_port = rule.nat_port != 0
                                  ? rule.nat_port
                                  : allocate_port(p.proto, rule.nat_ip);
            p.src_ip = conn->snat_ip;
            p.src_port = conn->snat_port;
            r.cost += costs_->nat_rewrite;
          }
          break;
        }
        conn->reply =
            ConnKey{p.dst_ip, p.src_ip, p.dst_port, p.src_port, p.proto};
        by_tuple_[conn->reply] = p.ct_id;
        conn->confirmed = true;
      } else if (conn->snat) {
        p.src_ip = conn->snat_ip;
        p.src_port = conn->snat_port;
        r.cost += costs_->nat_rewrite;
      }
    }
  } else {
    // Reply direction: undo the recorded translations.
    if ((h == Hook::kPrerouting || h == Hook::kOutput) && conn->snat) {
      p.dst_ip = conn->orig.src_ip;
      p.dst_port = conn->orig.src_port;
      r.cost += costs_->nat_rewrite;
    }
    if (h == Hook::kPostrouting && conn->dnat) {
      p.src_ip = conn->orig.dst_ip;
      p.src_port = conn->orig.dst_port;
      r.cost += costs_->nat_rewrite;
    }
  }
  return r;
}

Netfilter::HookResult Netfilter::run_filter(Hook h, Packet& p,
                                            const std::string& in,
                                            const std::string& out) {
  HookResult r;
  const Chain& chain = filter_[static_cast<std::size_t>(h)];
  for (const Rule& rule : chain.rules) {
    r.cost += costs_->nf_rule_scan;
    if (!rule.match.matches(p, in, out)) continue;
    if (rule.target == TargetKind::kDrop) {
      r.verdict = Verdict::kDrop;
    }
    return r;
  }
  r.verdict = chain.policy;
  return r;
}

void Netfilter::touch(std::uint64_t id, sim::TimePoint now) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second.last_seen = now;
  ++it->second.packets;
}

std::vector<std::uint64_t> Netfilter::gc(sim::TimePoint now,
                                         sim::Duration idle_timeout) {
  std::vector<std::uint64_t> reaped;
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (now - it->second.last_seen > idle_timeout) {
      by_tuple_.erase(it->second.orig);
      if (it->second.confirmed) by_tuple_.erase(it->second.reply);
      reaped.push_back(it->first);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  return reaped;
}

void Netfilter::add_nat_rule(Hook h, Rule rule) {
  const RuleMatch match = rule.match;
  nat_chain(h).rules.push_back(std::move(rule));
  if (on_mutation_) on_mutation_(match);
}

void Netfilter::add_filter_rule(Hook h, Rule rule) {
  const RuleMatch match = rule.match;
  filter_chain(h).rules.push_back(std::move(rule));
  if (on_mutation_) on_mutation_(match);
}

std::size_t Netfilter::remove_nat_rules(Hook h, const std::string& comment) {
  auto& rules = nat_chain(h).rules;
  std::size_t removed = 0;
  for (auto it = rules.begin(); it != rules.end();) {
    if (it->comment == comment) {
      if (on_mutation_) on_mutation_(it->match);
      it = rules.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t Netfilter::remove_filter_rules(Hook h,
                                           const std::string& comment) {
  auto& rules = filter_chain(h).rules;
  std::size_t removed = 0;
  for (auto it = rules.begin(); it != rules.end();) {
    if (it->comment == comment) {
      if (on_mutation_) on_mutation_(it->match);
      it = rules.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace nestv::net
