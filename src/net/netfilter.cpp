#include "net/netfilter.hpp"

#include <cassert>

namespace nestv::net {

const char* to_string(Hook h) {
  switch (h) {
    case Hook::kPrerouting: return "PREROUTING";
    case Hook::kInput: return "INPUT";
    case Hook::kForward: return "FORWARD";
    case Hook::kOutput: return "OUTPUT";
    case Hook::kPostrouting: return "POSTROUTING";
    case Hook::kCount: break;
  }
  return "?";
}

bool RuleMatch::matches(const Packet& p, const std::string& in,
                        const std::string& out) const {
  if (proto && *proto != p.proto) return false;
  if (src && !src->contains(p.src_ip)) return false;
  if (dst && !dst->contains(p.dst_ip)) return false;
  if (sport && *sport != p.src_port) return false;
  if (dport && *dport != p.dst_port) return false;
  if (!in_iface.empty() && in_iface != in) return false;
  if (!out_iface.empty() && out_iface != out) return false;
  return true;
}

void Netfilter::install_standing_rules(int n) {
  // Rules that match an address range no experiment traffic uses: every
  // packet pays the scan, none is affected — the shape of Docker's and
  // Kubernetes's bookkeeping chains.
  const auto nowhere = Ipv4Cidr(Ipv4Address(203, 0, 113, 0), 24);
  for (int i = 0; i < n; ++i) {
    Rule r;
    r.match.dst = nowhere;
    r.target = TargetKind::kDrop;
    r.comment = "standing-" + std::to_string(i);
    filter_chain(Hook::kForward).rules.push_back(r);
    filter_chain(Hook::kInput).rules.push_back(r);
    filter_chain(Hook::kOutput).rules.push_back(r);
  }
}

ConnKey Netfilter::key_of(const Packet& p) {
  return ConnKey{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
}

const ConnEntry* Netfilter::find_conn(const ConnKey& k) const {
  return conns_.find(k);
}

ConnTable::Ref Netfilter::conntrack_lookup(const Packet& p) {
  if (p.ct_id != 0) {
    const ConnTable::Ref r = conns_.find_id(p.ct_id);
    if (r) return r;
  }
  return conns_.find(key_of(p));
}

std::uint16_t Netfilter::allocate_port(L4Proto proto, Ipv4Address ip) {
  // Probe from the rolling counter until a tuple-free port is found; the
  // occupancy index answers each candidate in O(1) (the map-based version
  // scanned every registered tuple per candidate — quadratic in flows).
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t candidate = next_nat_port_;
    next_nat_port_ =
        next_nat_port_ >= 60999 ? 32768 : static_cast<std::uint16_t>(
                                              next_nat_port_ + 1);
    if (!conns_.port_in_use(proto, ip, candidate)) return candidate;
  }
  return next_nat_port_;  // table exhausted; reuse is the kernel's fallback too
}

Netfilter::HookResult Netfilter::run_hook(Hook h, Packet& p,
                                          const std::string& in,
                                          const std::string& out,
                                          sim::TimePoint now) {
  ++traversals_;
  const bool is_nat_hook = h == Hook::kPrerouting || h == Hook::kOutput ||
                           h == Hook::kPostrouting;
  HookResult total;
  total.cost += costs_->nf_hook_base;
  if (is_nat_hook) {
    const HookResult nat = run_nat(h, p, in, out, now);
    total.cost += nat.cost;
    if (nat.verdict == Verdict::kDrop) {
      total.verdict = Verdict::kDrop;
      return total;
    }
  }
  if (h == Hook::kInput || h == Hook::kForward || h == Hook::kOutput) {
    const HookResult f = run_filter(h, p, in, out);
    total.cost += f.cost;
    total.verdict = f.verdict;
  }
  return total;
}

Netfilter::HookResult Netfilter::run_nat(Hook h, Packet& p,
                                         const std::string& in,
                                         const std::string& out,
                                         sim::TimePoint now) {
  HookResult r;
  ConnTable::Ref ref = conntrack_lookup(p);
  ConnEntry* conn = ref.entry;

  // ---- fresh flow at a DNAT hook: create the (unconfirmed) entry. -------
  if (conn == nullptr && (h == Hook::kPrerouting || h == Hook::kOutput)) {
    r.cost += costs_->conntrack_miss;
    ConnEntry entry;
    entry.orig = key_of(p);
    entry.last_seen = now;
    entry.packets = 1;

    const Chain& chain = nat_[static_cast<std::size_t>(h)];
    for (const Rule& rule : chain.rules) {
      r.cost += costs_->nf_rule_scan;
      if (!rule.match.matches(p, in, out)) continue;
      if (rule.target == TargetKind::kDnat) {
        entry.dnat = true;
        entry.dnat_ip = rule.nat_ip;
        entry.dnat_port = rule.nat_port != 0 ? rule.nat_port : p.dst_port;
        p.dst_ip = entry.dnat_ip;
        p.dst_port = entry.dnat_port;
        r.cost += costs_->nat_rewrite;
      } else if (rule.target == TargetKind::kDnatRoundRobin &&
                 !rule.backends.empty()) {
        // kube-proxy: each *new flow* takes the next endpoint; conntrack
        // pins the established flow to it (session affinity for free).
        const NatBackend& backend =
            rule.backends[rr_counter_++ % rule.backends.size()];
        entry.dnat = true;
        entry.dnat_ip = backend.ip;
        entry.dnat_port = backend.port != 0 ? backend.port : p.dst_port;
        p.dst_ip = entry.dnat_ip;
        p.dst_port = entry.dnat_port;
        r.cost += costs_->nat_rewrite;
      } else if (rule.target == TargetKind::kDrop) {
        r.verdict = Verdict::kDrop;
      }
      break;
    }
    const ConnTable::Ref created = conns_.create(entry);
    p.ct_id = created.id;
    p.ct_reply = false;
    return r;
  }

  // ---- fresh flow seen first at POSTROUTING (bridged/local traffic that
  // bypassed the DNAT hooks): create the entry here, then fall through to
  // the confirmation path below.
  if (conn == nullptr) {
    r.cost += costs_->conntrack_miss;
    ConnEntry entry;
    entry.orig = key_of(p);
    entry.last_seen = now;
    entry.packets = 0;  // incremented below
    ref = conns_.create(entry);
    p.ct_id = ref.id;
    p.ct_reply = false;
    conn = ref.entry;
  } else {
    r.cost += costs_->conntrack_hit;
    if (p.ct_id == 0) {
      // First hook of this traversal: fix the packet's direction.
      p.ct_reply = conn->confirmed && key_of(p) == conn->reply;
      p.ct_id = ref.id;
    }
  }
  conn->last_seen = now;
  ++conn->packets;

  if (!p.ct_reply) {
    if ((h == Hook::kPrerouting || h == Hook::kOutput) && conn->dnat) {
      p.dst_ip = conn->dnat_ip;
      p.dst_port = conn->dnat_port;
      r.cost += costs_->nat_rewrite;
    }
    if (h == Hook::kPostrouting) {
      if (!conn->confirmed) {
        // First packet of the flow reaches POSTROUTING: decide SNAT and
        // confirm the reply tuple (nf_nat_ipv4_out + __nf_conntrack_confirm).
        const Chain& chain =
            nat_[static_cast<std::size_t>(Hook::kPostrouting)];
        for (const Rule& rule : chain.rules) {
          r.cost += costs_->nf_rule_scan;
          if (!rule.match.matches(p, in, out)) continue;
          if (rule.target == TargetKind::kSnat ||
              rule.target == TargetKind::kMasquerade) {
            conn->snat = true;
            conn->snat_ip = rule.nat_ip;
            conn->snat_port = rule.nat_port != 0
                                  ? rule.nat_port
                                  : allocate_port(p.proto, rule.nat_ip);
            p.src_ip = conn->snat_ip;
            p.src_port = conn->snat_port;
            r.cost += costs_->nat_rewrite;
          }
          break;
        }
        conn->reply =
            ConnKey{p.dst_ip, p.src_ip, p.dst_port, p.src_port, p.proto};
        conn->confirmed = true;
        conns_.register_reply(p.ct_id, conn->reply);
      } else if (conn->snat) {
        p.src_ip = conn->snat_ip;
        p.src_port = conn->snat_port;
        r.cost += costs_->nat_rewrite;
      }
    }
  } else {
    // Reply direction: undo the recorded translations.
    if ((h == Hook::kPrerouting || h == Hook::kOutput) && conn->snat) {
      p.dst_ip = conn->orig.src_ip;
      p.dst_port = conn->orig.src_port;
      r.cost += costs_->nat_rewrite;
    }
    if (h == Hook::kPostrouting && conn->dnat) {
      p.src_ip = conn->orig.dst_ip;
      p.src_port = conn->orig.dst_port;
      r.cost += costs_->nat_rewrite;
    }
  }
  return r;
}

Netfilter::HookResult Netfilter::run_filter(Hook h, Packet& p,
                                            const std::string& in,
                                            const std::string& out) {
  HookResult r;
  const Chain& chain = filter_[static_cast<std::size_t>(h)];
  for (const Rule& rule : chain.rules) {
    r.cost += costs_->nf_rule_scan;
    if (!rule.match.matches(p, in, out)) continue;
    if (rule.target == TargetKind::kDrop) {
      r.verdict = Verdict::kDrop;
    }
    return r;
  }
  r.verdict = chain.policy;
  return r;
}

void Netfilter::touch(std::uint64_t id, sim::TimePoint now) {
  const ConnTable::Ref r = conns_.find_id(id);
  if (!r) return;
  r.entry->last_seen = now;
  ++r.entry->packets;
}

std::vector<std::uint64_t> Netfilter::gc(sim::TimePoint now,
                                         sim::Duration idle_timeout) {
  std::vector<std::uint64_t> reaped;
  for (std::size_t s = 0; s < conns_.slot_count(); ++s) {
    const ConnTable::Ref r = conns_.at_slot(s);
    if (!r) continue;
    if (now - r.entry->last_seen > idle_timeout) {
      reaped.push_back(r.id);
      conns_.erase(r.id);
    }
  }
  return reaped;
}

void Netfilter::add_nat_rule(Hook h, Rule rule) {
  const RuleMatch match = rule.match;
  nat_chain(h).rules.push_back(std::move(rule));
  if (on_mutation_) on_mutation_(match);
}

void Netfilter::add_filter_rule(Hook h, Rule rule) {
  const RuleMatch match = rule.match;
  filter_chain(h).rules.push_back(std::move(rule));
  if (on_mutation_) on_mutation_(match);
}

std::size_t Netfilter::remove_nat_rules(Hook h, const std::string& comment) {
  auto& rules = nat_chain(h).rules;
  std::size_t removed = 0;
  for (auto it = rules.begin(); it != rules.end();) {
    if (it->comment == comment) {
      if (on_mutation_) on_mutation_(it->match);
      it = rules.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t Netfilter::remove_filter_rules(Hook h,
                                           const std::string& comment) {
  auto& rules = filter_chain(h).rules;
  std::size_t removed = 0;
  for (auto it = rules.begin(); it != rules.end();) {
    if (it->comment == comment) {
      if (on_mutation_) on_mutation_(it->match);
      it = rules.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace nestv::net
