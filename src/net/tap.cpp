#include "net/tap.hpp"

#include <cassert>
#include <utility>

namespace nestv::net {

TapDevice::TapDevice(sim::Engine& engine, std::string name,
                     const sim::CostModel& costs)
    : Device(engine, std::move(name), costs) {
  add_port();  // port 0: network-side attachment (bridge port, usually)
}

sim::Duration TapDevice::frame_work(const EthernetFrame& f) const {
  return costs().tap_pkt +
         static_cast<sim::Duration>(costs().tap_copy_byte *
                                    static_cast<double>(f.wire_bytes()));
}

void TapDevice::ingress(EthernetFrame frame, int port) {
  assert(port == 0);
  (void)port;
  if (!fd_handler_) {
    count_drop();
    return;
  }
  process_batched(frame_work(frame), [this, f = std::move(frame)]() mutable {
    ++to_fd_;
    fd_handler_(std::move(f));
  });
}

void TapDevice::inject(EthernetFrame frame) {
  process_batched(frame_work(frame), [this, f = std::move(frame)]() mutable {
    ++from_fd_;
    transmit(0, std::move(f));
  });
}

}  // namespace nestv::net
