#include "net/fabric_switch.hpp"

#include <algorithm>
#include <utility>

namespace nestv::net {

FabricSwitch::FabricSwitch(sim::Engine& engine, std::string name,
                           const sim::CostModel& costs,
                           const FabricDirectory& directory,
                           std::uint32_t ecmp_salt)
    : Device(engine, std::move(name), costs),
      directory_(&directory),
      salt_(ecmp_salt) {}

void FabricSwitch::bind_mac(MacAddress mac, int port) {
  mac_port_[mac] = port;
}

void FabricSwitch::add_uplink(int port) {
  uplinks_.push_back(port);
  uplink_tx_.push_back(0);
}

std::size_t FabricSwitch::ecmp_pick(const EthernetFrame& frame) const {
  // Pure function of the flow identity in the frame header — the ECMP
  // analogue of the keyed wire delivery order: the path is a property of
  // the *flow*, not of the execution mode, so any shard/worker count
  // resolves a multi-path tie identically (splitmix64-style finalizer).
  std::uint64_t h = salt_;
  if (frame.ethertype == 0x0800) {
    const Packet& p = frame.packet;
    h ^= (std::uint64_t{p.src_ip.value()} << 32) | p.dst_ip.value();
    h *= 0xff51afd7ed558ccdULL;
    h ^= (std::uint64_t{p.src_port} << 24) | (std::uint64_t{p.dst_port} << 8) |
         static_cast<std::uint64_t>(p.proto);
  } else {
    h ^= (std::uint64_t{frame.arp_sender_ip.value()} << 32) |
         frame.arp_target_ip.value();
  }
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h % uplinks_.size());
}

void FabricSwitch::ingress(EthernetFrame frame, int port) {
  // Cut-through forwarding work: pure delay (no CPU resource — the switch
  // ASIC is not a contended core of any machine).
  process(costs().fabric_switch_pkt,
          [this, port, f = std::move(frame)]() mutable {
            forward(std::move(f), port);
          });
}

void FabricSwitch::forward(EthernetFrame frame, int ingress_port) {
  if (frame.ethertype == 0x0806 && frame.arp_is_request &&
      frame.dst.is_broadcast()) {
    // Proxy ARP at the edge (EVPN-style suppression): answer from the
    // fabric directory, never flood the request across the fabric.
    const MacAddress* mac = directory_->find(frame.arp_target_ip);
    if (mac == nullptr) {
      ++arp_unanswered_;
      return;
    }
    EthernetFrame reply;
    reply.ethertype = 0x0806;
    reply.src = *mac;
    reply.dst = frame.src;
    reply.arp_is_request = false;
    reply.arp_sender_ip = frame.arp_target_ip;
    reply.arp_sender_mac = *mac;
    reply.arp_target_ip = frame.arp_sender_ip;
    ++arp_proxied_;
    egress(ingress_port, std::move(reply));
    return;
  }
  if (frame.dst.is_broadcast() || frame.dst.is_multicast()) {
    // The fabric carries routed unicast + suppressed ARP only; anything
    // else broadcast would flood O(machines) and is dropped by policy.
    count_drop();
    return;
  }
  const auto it = mac_port_.find(frame.dst);
  if (it != mac_port_.end()) {
    egress(it->second, std::move(frame));
    return;
  }
  if (!uplinks_.empty()) {
    const std::size_t pick = ecmp_pick(frame);
    ++uplink_tx_[pick];
    egress(uplinks_[pick], std::move(frame));
    return;
  }
  ++unknown_dropped_;
  count_drop();
}

void FabricSwitch::egress(int port, EthernetFrame frame) {
  // Per-link serialization: the link is busy for the frame's wire time;
  // later frames queue behind the horizon.  Everything is computed from
  // simulated state, so the queueing is identical in every execution mode.
  if (port_free_.size() <= static_cast<std::size_t>(port)) {
    port_free_.resize(static_cast<std::size_t>(port) + 1, 0);
  }
  const auto serialize = static_cast<sim::Duration>(
      static_cast<double>(frame.wire_bytes()) * costs().fabric_link_byte);
  const sim::TimePoint now = engine().now();
  const sim::TimePoint start =
      std::max(now, port_free_[static_cast<std::size_t>(port)]);
  const sim::TimePoint done = start + serialize;
  port_free_[static_cast<std::size_t>(port)] = done;
  if (done <= now) {
    transmit(port, std::move(frame));
    return;
  }
  engine().schedule_in(done - now,
                       [this, port, f = std::move(frame)]() mutable {
                         transmit(port, std::move(f));
                       });
}

}  // namespace nestv::net
