#include "net/route.hpp"

namespace nestv::net {

std::optional<RouteDecision> RoutingTable::lookup(Ipv4Address dst) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.prefix_len() > best->prefix.prefix_len() ||
        (r.prefix.prefix_len() == best->prefix.prefix_len() &&
         r.metric < best->metric)) {
      best = &r;
    }
  }
  if (best == nullptr) return std::nullopt;
  return RouteDecision{best->ifindex,
                       best->gateway ? *best->gateway : dst};
}

}  // namespace nestv::net
