#include "net/route.hpp"

#include <algorithm>

namespace nestv::net {

std::size_t RoutingTable::remove(Ipv4Cidr prefix) {
  const auto it = std::remove_if(
      routes_.begin(), routes_.end(),
      [prefix](const Route& r) { return r.prefix == prefix; });
  const auto removed = static_cast<std::size_t>(routes_.end() - it);
  routes_.erase(it, routes_.end());
  if (removed > 0) ++generation_;
  return removed;
}

std::optional<RouteDecision> RoutingTable::lookup(Ipv4Address dst) const {
  CacheEntry& slot = cache_[dst.value() % kCacheSlots];
  if (slot.generation == generation_ && slot.dst == dst) {
    return slot.decision;
  }
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.prefix_len() > best->prefix.prefix_len() ||
        (r.prefix.prefix_len() == best->prefix.prefix_len() &&
         r.metric < best->metric)) {
      best = &r;
    }
  }
  std::optional<RouteDecision> decision;
  if (best != nullptr) {
    decision = RouteDecision{best->ifindex,
                             best->gateway ? *best->gateway : dst};
  }
  slot = CacheEntry{dst, generation_, decision};
  return decision;
}

}  // namespace nestv::net
