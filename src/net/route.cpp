#include "net/route.hpp"

#include <algorithm>

namespace nestv::net {

void RoutingTable::index_add(std::size_t i) {
  const Route& r = routes_[i];
  const int len = r.prefix.prefix_len();
  const std::uint64_t key = index_key(len, r.prefix.network().value());
  const auto [it, inserted] =
      index_.emplace(key, static_cast<std::uint32_t>(i));
  if (!inserted) {
    // Same (len, network) already present: the earlier route keeps the
    // slot unless the new one has a strictly lower metric — the linear
    // scan's "lowest metric, then insertion order" tie-break.
    if (r.metric < routes_[it->second].metric) {
      it->second = static_cast<std::uint32_t>(i);
    }
    return;
  }
  const auto lit = std::find_if(lens_.begin(), lens_.end(),
                                [len](const auto& p) {
                                  return p.first == len;
                                });
  if (lit != lens_.end()) {
    ++lit->second;
  } else {
    lens_.emplace_back(len, 1);
    std::sort(lens_.begin(), lens_.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
  }
}

void RoutingTable::index_rebuild() {
  index_.clear();
  lens_.clear();
  for (std::size_t i = 0; i < routes_.size(); ++i) index_add(i);
}

std::size_t RoutingTable::remove(Ipv4Cidr prefix) {
  const auto it = std::remove_if(
      routes_.begin(), routes_.end(),
      [prefix](const Route& r) { return r.prefix == prefix; });
  const auto removed = static_cast<std::size_t>(routes_.end() - it);
  routes_.erase(it, routes_.end());
  if (removed > 0) {
    index_rebuild();  // surviving ordinals shifted
    ++generation_;
  }
  return removed;
}

std::optional<RouteDecision> RoutingTable::lookup(Ipv4Address dst) const {
  CacheEntry& slot = cache_[dst.value() % kCacheSlots];
  if (slot.generation == generation_ && slot.dst == dst) {
    return slot.decision;
  }
  const Route* best = nullptr;
  for (const auto& [len, count] : lens_) {  // descending prefix length
    const std::uint32_t mask =
        len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    const auto it = index_.find(index_key(len, dst.value() & mask));
    if (it != index_.end()) {
      best = &routes_[it->second];
      break;
    }
  }
  std::optional<RouteDecision> decision;
  if (best != nullptr) {
    decision = RouteDecision{best->ifindex,
                             best->gateway ? *best->gateway : dst};
  }
  slot = CacheEntry{dst, generation_, decision};
  return decision;
}

}  // namespace nestv::net
