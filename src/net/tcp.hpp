// Simplified TCP: three-way handshake, cumulative ACKs, fixed window,
// go-back-N retransmission, delayed ACKs, GSO-sized segmentation.
//
// Congestion control is deliberately absent (fixed window): the paper's
// TCP_STREAM numbers are steady-state saturation throughputs on a lossless
// local fabric, where the bottleneck is per-hop CPU work, not loss
// recovery.  The window is large enough (CostModel::tcp_window_bytes) that
// throughput is pipeline-limited, as on the testbed.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "net/stack_backend.hpp"
#include "sim/engine.hpp"
#include "sim/inline_task.hpp"

namespace nestv::net {

class TcpConnection {
 public:
  enum class State : std::uint8_t {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
    kDone,
  };

  /// `key` is (local_ip, local_port, remote_ip, remote_port); `app` is the
  /// application resource charged for socket syscalls on this connection.
  TcpConnection(StackBackend& stack, Ipv4Address local_ip,
                std::uint16_t local_port, Ipv4Address remote_ip,
                std::uint16_t remote_port, sim::SerialResource* app);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Client side: send SYN.
  void open_active();
  /// Server side: react to the peer's SYN (called by the stack's listener
  /// dispatch with the SYN packet).
  void open_passive(const Packet& syn);

  /// Application write: charges `app` (syscall + copy) then appends to the
  /// send buffer and pumps.  `on_queued` fires when the bytes are buffered.
  void app_send(std::uint32_t bytes, sim::InlineTask&& on_queued = {});

  /// Segment arrival from the stack (already past INPUT).
  void on_segment(Packet p);

  void close();

  void set_on_receive(sim::InlineHandler<std::uint32_t> cb) {
    on_receive_ = std::move(cb);
  }
  void set_on_connected(sim::InlineHandler<> cb) {
    on_connected_ = std::move(cb);
  }
  void set_on_closed(sim::InlineHandler<> cb) { on_closed_ = std::move(cb); }
  /// Fires whenever the send buffer drains below one window.
  void set_on_writable(sim::InlineHandler<> cb) {
    on_writable_ = std::move(cb);
  }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_rx_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_tx_acked_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint32_t buffered() const { return send_buffer_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  /// Effective congestion window in bytes (= the flow-control window when
  /// congestion control is disabled).
  [[nodiscard]] std::uint32_t congestion_window() const;
  /// Smoothed RTT estimate in ns (0 until the first sample).
  [[nodiscard]] double srtt_ns() const { return srtt_valid_ ? srtt_ns_ : 0; }

 private:
  void pump();
  void emit_segment(std::uint32_t bytes, TcpFlags flags);
  void send_ack_now();
  void schedule_delayed_ack();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void deliver_to_app(std::uint32_t bytes);
  void app_wakeup_flush();
  void become_established();

  StackBackend* stack_;
  Ipv4Address local_ip_;
  std::uint16_t local_port_;
  Ipv4Address remote_ip_;
  std::uint16_t remote_port_;
  sim::SerialResource* app_;

  State state_ = State::kClosed;

  // Sender state (sequence space counts payload bytes; SYN/FIN occupy one).
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t send_buffer_ = 0;  ///< bytes accepted from app, unsent
  std::uint64_t bytes_tx_acked_ = 0;

  // Receiver state.
  std::uint32_t rcv_nxt_ = 0;
  std::uint64_t bytes_rx_ = 0;
  int segs_since_ack_ = 0;
  std::uint32_t pending_app_bytes_ = 0;
  bool app_wakeup_scheduled_ = false;

  sim::EventId delayed_ack_timer_ = 0;
  sim::EventId rto_timer_ = 0;
  std::uint64_t retransmits_ = 0;
  bool fin_queued_ = false;

  // Congestion control state (only driven when the cost model enables it).
  std::uint32_t cwnd_ = 0;      ///< congestion window, bytes (0 = uninit)
  std::uint32_t ssthresh_ = 0;  ///< slow-start threshold, bytes
  // RFC 6298 RTT estimation (Karn's algorithm: one untimed-on-retransmit
  // sample outstanding at a time).
  bool srtt_valid_ = false;
  double srtt_ns_ = 0.0;
  double rttvar_ns_ = 0.0;
  std::uint32_t timed_seq_ = 0;      ///< ack covering this seq ends the sample
  sim::TimePoint timed_sent_at_ = 0;
  bool timing_sample_active_ = false;

  [[nodiscard]] sim::Duration current_rto() const;
  void rtt_sample(sim::Duration rtt);
  void maybe_start_timing_sample();
  void on_ack_advance(std::uint32_t acked, std::uint32_t gso);

  sim::InlineHandler<std::uint32_t> on_receive_;
  sim::InlineHandler<> on_connected_;
  sim::InlineHandler<> on_closed_;
  sim::InlineHandler<> on_writable_;
};

}  // namespace nestv::net
