// FlowKey: the identity of one established flow as seen at stack ingress.
//
// A cached fast-path entry is keyed by the packet's 5-tuple *plus* the
// ingress interface, mirroring ONCache's per-(flow, device) cache: the same
// tuple arriving on a different NIC may route, filter and NAT differently,
// so the ingress device is part of the identity.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/address.hpp"
#include "net/packet.hpp"

namespace nestv::net::flowcache {

struct FlowKey {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  L4Proto proto = L4Proto::kUdp;
  /// i16 keeps the key at 16 bytes (it is stored per cached flow);
  /// ifindexes are per-stack interface ordinals, far below the range.
  std::int16_t in_ifindex = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  [[nodiscard]] static FlowKey of(const Packet& p, int in_ifindex) {
    return FlowKey{p.src_ip,  p.dst_ip, p.src_port, p.dst_port,
                   p.proto,   static_cast<std::int16_t>(in_ifindex)};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    std::uint64_t h = k.src_ip.value();
    h = h * 0x9e3779b97f4a7c15ULL + k.dst_ip.value();
    h = h * 0x9e3779b97f4a7c15ULL +
        ((std::uint64_t{k.src_port} << 32) | (std::uint64_t{k.dst_port} << 16) |
         (std::uint64_t{static_cast<std::uint8_t>(k.proto)} << 8) |
         static_cast<std::uint64_t>(k.in_ifindex & 0xff));
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

}  // namespace nestv::net::flowcache
