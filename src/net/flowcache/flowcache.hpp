// Per-flow fast-path cache (the ONCache idea applied to the simulation).
//
// Every packet of an established flow normally walks the full per-hop
// chain — netfilter hooks with rule scans, conntrack lookup, FIB lookup,
// ARP resolution — yet for all but the first packet the outcome is fully
// determined by the flow.  A FlowCache memoizes that outcome as a
// CachedPath: the forward decision (egress interface + resolved next-hop
// MAC, or local delivery, or drop), the NAT header rewrite, and one
// aggregated "fast path" CPU charge that replaces the per-hop costs.
//
// Coherence is the hard part, handled two ways:
//  * generation-stamped invalidation: entries record the cache generation
//    and the owning stack's routing-table generation at insert; a bumped
//    generation turns every stale entry into a lazy miss (O(1) full flush,
//    used for route-table edits).
//  * targeted invalidation: rule-table edits, FDB/neighbour expiry, NIC
//    hot-unplug and conntrack expiry flush exactly the affected entries
//    (invalidate_match / invalidate_mac / invalidate_ifindex /
//    invalidate_conn), so unrelated flows keep their fast path.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "net/flowcache/flow_key.hpp"
#include "net/netfilter.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nestv::net::flowcache {

/// The memoized verdict chain for one flow direction.
struct CachedPath {
  enum class Action : std::uint8_t { kForward, kDeliverLocal, kDrop };

  Action action = Action::kForward;
  int out_ifindex = -1;  ///< kForward only

  /// Post-hook header view (the NAT rewrite to apply on a hit).  Equal to
  /// the key's tuple when the flow is not translated.
  Ipv4Address new_src_ip;
  Ipv4Address new_dst_ip;
  std::uint16_t new_src_port = 0;
  std::uint16_t new_dst_port = 0;
  bool rewrites = false;

  /// Resolved L2 next hop (kForward): the cached path skips ARP too.
  MacAddress next_hop_mac;

  /// Conntrack entry backing this flow; a cached path whose backing
  /// expired must not serve hits (checked by the owning stack).
  std::uint64_t ct_id = 0;

  /// Interface names at record time, for rule-match targeting.
  std::string in_iface;
  std::string out_iface;

  /// Aggregated per-hop CPU charge of the fast path (replaces hook +
  /// route + ARP costs on a hit).
  sim::Duration fast_cost = 0;

  // Validity stamps (set by FlowCache / the owning stack at insert).
  std::uint64_t generation = 0;   ///< cache generation at insert
  std::uint64_t routes_gen = 0;   ///< owning stack's routing generation
};

/// LRU cache of CachedPath entries with generation-stamped and targeted
/// invalidation.  Not thread-safe (the simulation is single-threaded).
class FlowCache {
 public:
  explicit FlowCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Looks up `key`, refreshing LRU order.  Entries stamped with an old
  /// cache generation are erased and reported as misses.  Does not check
  /// routes_gen / conntrack liveness — the owning stack validates those
  /// (it owns the authoritative state) and calls invalidate() on failure.
  [[nodiscard]] const CachedPath* lookup(const FlowKey& key);

  /// Peek without touching LRU order or hit/miss counters (tests, stats).
  [[nodiscard]] const CachedPath* peek(const FlowKey& key) const;
  [[nodiscard]] bool contains(const FlowKey& key) const {
    return peek(key) != nullptr;
  }

  /// Inserts (or replaces) the entry, stamping the current generation and
  /// evicting the least-recently-used entry when full.
  void insert(const FlowKey& key, CachedPath path);

  // ---- invalidation -----------------------------------------------------
  void invalidate(const FlowKey& key);
  /// Flushes entries for which `pred(key, path)` holds; returns the count.
  std::size_t invalidate_if(
      const std::function<bool(const FlowKey&, const CachedPath&)>& pred);
  /// Rule-table edit: flushes entries whose ingress *or* post-rewrite
  /// header view matches the changed rule's predicate.
  std::size_t invalidate_match(const RuleMatch& match);
  /// FDB / neighbour expiry: flushes entries forwarded via `mac`.
  std::size_t invalidate_mac(MacAddress mac);
  /// NIC hot-unplug: flushes entries entering or leaving `ifindex`.
  std::size_t invalidate_ifindex(int ifindex);
  /// Conntrack expiry: flushes entries backed by connection `ct_id`.
  std::size_t invalidate_conn(std::uint64_t ct_id);
  /// O(1) full flush via generation bump (route-table edits, mode flips).
  void invalidate_all();

  // ---- statistics -------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const sim::HitRateCounter& hit_rate() const { return rate_; }
  [[nodiscard]] std::uint64_t hits() const { return rate_.hits(); }
  [[nodiscard]] std::uint64_t misses() const { return rate_.misses(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }

 private:
  struct Entry {
    FlowKey key;
    CachedPath path;
  };
  using LruList = std::list<Entry>;

  void erase(LruList::iterator it);

  std::size_t capacity_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<FlowKey, LruList::iterator, FlowKeyHash> entries_;
  std::uint64_t generation_ = 1;
  sim::HitRateCounter rate_;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace nestv::net::flowcache
