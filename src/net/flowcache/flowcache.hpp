// Per-flow fast-path cache (the ONCache idea applied to the simulation).
//
// Every packet of an established flow normally walks the full per-hop
// chain — netfilter hooks with rule scans, conntrack lookup, FIB lookup,
// ARP resolution — yet for all but the first packet the outcome is fully
// determined by the flow.  A FlowCache memoizes that outcome as a
// CachedPath: the forward decision (egress interface + resolved next-hop
// MAC, or local delivery, or drop), the NAT header rewrite, and one
// aggregated "fast path" CPU charge that replaces the per-hop costs.
//
// Coherence is the hard part, handled two ways:
//  * generation-stamped invalidation: entries record the cache generation
//    and the owning stack's routing-table generation at insert; a bumped
//    generation turns every stale entry into a lazy miss (O(1) full flush,
//    used for route-table edits).
//  * targeted invalidation: rule-table edits, FDB/neighbour expiry, NIC
//    hot-unplug and conntrack expiry flush exactly the affected entries
//    (invalidate_match / invalidate_mac / invalidate_ifindex /
//    invalidate_conn), so unrelated flows keep their fast path.
//
// Storage is an intrusive LRU over slab-allocated slots: entries live in
// fixed-size chunks grown on demand (never per-entry heap nodes), the LRU
// is a doubly-linked list of slot indices threaded through the slots, and
// the key index is a bucketed chain also threaded through the slots.  The
// node-based std::list + std::unordered_map it replaces cost ~2.5x the
// bytes per cached flow (bench/abl_conntrack reports both); at the macro
// scale target (~10^5..10^6 concurrent flows across hundreds of stacks)
// that footprint is the difference between fitting in cache and not.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/flowcache/flow_key.hpp"
#include "net/netfilter.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nestv::net::flowcache {

/// The memoized verdict chain for one flow direction.  40 bytes: this is
/// the unit of the flow-cache slab, so every field earns its width —
/// the fast-path charge is u32 nanoseconds (per-packet charges are
/// hundreds of ns), the validity stamps are u16 (compared for equality
/// against counters that move once per route/rule edit; aliasing needs
/// an entry to sit resident across exactly 65536 edits, orders beyond
/// any run), ifindexes are i16 per-stack ordinals, and no interface
/// names are stored (rule-match targeting resolves the key's ingress
/// ifindex and the path's egress ifindex through the owning stack,
/// whose names are immutable for the lifetime of an entry — NIC unplug
/// flushes by ifindex first).
struct CachedPath {
  enum class Action : std::uint8_t { kForward, kDeliverLocal, kDrop };

  /// Conntrack entry backing this flow; a cached path whose backing
  /// expired must not serve hits (checked by the owning stack).
  std::uint64_t ct_id = 0;

  /// Post-hook header view (the NAT rewrite to apply on a hit).  Equal to
  /// the key's tuple when the flow is not translated.
  Ipv4Address new_src_ip;
  Ipv4Address new_dst_ip;
  std::uint16_t new_src_port = 0;
  std::uint16_t new_dst_port = 0;

  /// Aggregated per-hop CPU charge of the fast path (replaces hook +
  /// route + ARP costs on a hit).
  std::uint32_t fast_cost = 0;

  // Validity stamps (set by FlowCache / the owning stack at insert).
  std::uint16_t generation = 0;   ///< cache generation at insert
  std::uint16_t routes_gen = 0;   ///< owning stack's routing generation

  /// Resolved L2 next hop (kForward): the cached path skips ARP too.
  MacAddress next_hop_mac;

  std::int16_t out_ifindex = -1;  ///< kForward only

  Action action = Action::kForward;
  bool rewrites = false;
};

/// LRU cache of CachedPath entries with generation-stamped and targeted
/// invalidation.  Not thread-safe (the simulation is single-threaded).
class FlowCache {
 public:
  explicit FlowCache(std::size_t capacity = 4096) : capacity_(capacity) {
    // Buckets start small and are rebuilt with occupancy (see
    // maybe_grow_buckets).  A macro-scale run holds hundreds of stacks
    // whose caches mostly sit far below capacity; sizing the bucket
    // array for capacity up front would dominate their resident bytes
    // (see bench/abl_macro_scale's bytes-per-flow metric).
    buckets_.assign(32, kNil);
  }

  /// Looks up `key`, refreshing LRU order.  Entries stamped with an old
  /// cache generation are erased and reported as misses.  Does not check
  /// routes_gen / conntrack liveness — the owning stack validates those
  /// (it owns the authoritative state) and calls invalidate() on failure.
  [[nodiscard]] const CachedPath* lookup(const FlowKey& key);

  /// Peek without touching LRU order or hit/miss counters (tests, stats).
  [[nodiscard]] const CachedPath* peek(const FlowKey& key) const;
  [[nodiscard]] bool contains(const FlowKey& key) const {
    return peek(key) != nullptr;
  }

  /// Inserts (or replaces) the entry, stamping the current generation and
  /// evicting the least-recently-used entry when full.
  void insert(const FlowKey& key, CachedPath path);

  // ---- invalidation -----------------------------------------------------
  void invalidate(const FlowKey& key);
  /// Flushes entries for which `pred(key, path)` holds; returns the count.
  std::size_t invalidate_if(
      const std::function<bool(const FlowKey&, const CachedPath&)>& pred);
  /// Rule-table edit: flushes entries whose ingress *or* post-rewrite
  /// header view matches the changed rule's predicate.  `iface_name`
  /// resolves an ifindex to the owning stack's interface name ("" when
  /// out of range) — entries store ifindexes, not names.
  std::size_t invalidate_match(
      const RuleMatch& match,
      const std::function<std::string(int)>& iface_name);
  /// FDB / neighbour expiry: flushes entries forwarded via `mac`.
  std::size_t invalidate_mac(MacAddress mac);
  /// NIC hot-unplug: flushes entries entering or leaving `ifindex`.
  std::size_t invalidate_ifindex(int ifindex);
  /// Conntrack expiry: flushes entries backed by connection `ct_id`.
  std::size_t invalidate_conn(std::uint64_t ct_id);
  /// O(1) full flush via generation bump (route-table edits, mode flips).
  void invalidate_all();

  // ---- statistics -------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const sim::HitRateCounter& hit_rate() const { return rate_; }
  [[nodiscard]] std::uint64_t hits() const { return rate_.hits(); }
  [[nodiscard]] std::uint64_t misses() const { return rate_.misses(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  /// Resident bytes of the cache store (bytes-of-state-per-flow
  /// accounting; see bench/abl_macro_scale).
  [[nodiscard]] std::size_t state_bytes() const {
    return slots_cap_ * sizeof(Slot) +
           buckets_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;
  /// Marks a free slot (stored in lru_prev; an occupied slot's lru_prev
  /// is a slot index or kNil, never this).
  static constexpr std::uint32_t kFreeMark = 0xfffffffeU;
  /// Tombstone in the open-addressed bucket index.
  static constexpr std::uint32_t kTomb = 0xfffffffdU;
  /// Slab chunks grow in a shallow geometric sequence — four chunks per
  /// size doubling (8, 8, 8, 8, 16, 16, ... slots) — so near-idle caches
  /// stay tiny and a cache sampled mid-growth carries at most ~25%
  /// allocated-but-unused slot slack; see the matching scheme in
  /// net/conn_table.hpp.
  static constexpr std::uint32_t kFirstChunkSlots = 8;
  static constexpr std::uint32_t kChunksPerDoubling = 4;

  /// 64 bytes.  The LRU links double as slot lifecycle state: lru_prev
  /// is kFreeMark while the slot is free, and a free slot's lru_next is
  /// the free-list link — no dedicated occupancy or chain fields.
  struct Slot {
    CachedPath path;
    FlowKey key;
    std::uint32_t lru_prev = kFreeMark;  ///< kFreeMark while free
    std::uint32_t lru_next = kNil;       ///< free-list link while free

    [[nodiscard]] bool occupied() const { return lru_prev != kFreeMark; }
  };

  /// Slot s lives in the chunk whose base is the largest <= s (reverse
  /// scan: chunks are few and hot slots sit in the last ones).
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_of(
      std::uint32_t s) const {
    std::size_t c = chunk_bases_.size() - 1;
    while (chunk_bases_[c] > s) --c;
    return {c, s - chunk_bases_[c]};
  }
  [[nodiscard]] Slot& slot(std::uint32_t s) {
    const auto [c, off] = chunk_of(s);
    return chunks_[c][off];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t s) const {
    const auto [c, off] = chunk_of(s);
    return chunks_[c][off];
  }
  /// Slot holding `key`, or kNil.
  [[nodiscard]] std::uint32_t find_slot(const FlowKey& key) const;

  std::uint32_t alloc_slot();
  void lru_unlink(std::uint32_t s);
  void lru_push_front(std::uint32_t s);
  void erase_slot(std::uint32_t s);
  void bucket_insert(std::uint32_t s);
  void bucket_erase(std::uint32_t s);
  /// Rebuilds the open-addressed bucket index at a 70% load factor once
  /// live entries + tombstones pass 85% (same scheme and rationale as
  /// net/conn_table.cpp: non-power-of-two sizing, because pow2 rounding
  /// dominated resident bytes at per-stack populations).
  void maybe_grow_buckets();

  std::size_t capacity_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> chunk_bases_;  ///< first slot of each chunk
  std::uint32_t slots_used_ = 0;
  std::uint32_t slots_cap_ = 0;  ///< slots allocated across chunks
  std::uint32_t free_head_ = kNil;
  /// Open-addressed slot index: slot ref, kNil empty, kTomb erased.
  std::vector<std::uint32_t> buckets_;
  std::size_t bucket_dead_ = 0;  ///< tombstones in buckets_
  std::uint32_t lru_head_ = kNil;  ///< most recently used
  std::uint32_t lru_tail_ = kNil;  ///< least recently used
  std::size_t size_ = 0;
  std::uint64_t generation_ = 1;
  sim::HitRateCounter rate_;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace nestv::net::flowcache
