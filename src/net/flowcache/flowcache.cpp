#include "net/flowcache/flowcache.hpp"

namespace nestv::net::flowcache {

std::uint32_t FlowCache::find_slot(const FlowKey& key) const {
  const std::size_t n = buckets_.size();
  for (std::size_t i = FlowKeyHash{}(key) % n;; i = i + 1 == n ? 0 : i + 1) {
    const std::uint32_t b = buckets_[i];
    if (b == kNil) return kNil;
    if (b != kTomb && slot(b).key == key) return b;
  }
}

std::uint32_t FlowCache::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t s = free_head_;
    free_head_ = slot(s).lru_next;
    return s;
  }
  if (slots_used_ == slots_cap_) {
    const std::uint32_t n =
        kFirstChunkSlots
        << (static_cast<std::uint32_t>(chunks_.size()) / kChunksPerDoubling);
    chunks_.push_back(std::make_unique<Slot[]>(n));
    chunk_bases_.push_back(slots_cap_);
    slots_cap_ += n;
  }
  return slots_used_++;
}

void FlowCache::lru_unlink(std::uint32_t s) {
  Slot& sl = slot(s);
  if (sl.lru_prev != kNil) {
    slot(sl.lru_prev).lru_next = sl.lru_next;
  } else {
    lru_head_ = sl.lru_next;
  }
  if (sl.lru_next != kNil) {
    slot(sl.lru_next).lru_prev = sl.lru_prev;
  } else {
    lru_tail_ = sl.lru_prev;
  }
  sl.lru_prev = sl.lru_next = kNil;
}

void FlowCache::lru_push_front(std::uint32_t s) {
  Slot& sl = slot(s);
  sl.lru_prev = kNil;
  sl.lru_next = lru_head_;
  if (lru_head_ != kNil) slot(lru_head_).lru_prev = s;
  lru_head_ = s;
  if (lru_tail_ == kNil) lru_tail_ = s;
}

void FlowCache::erase_slot(std::uint32_t s) {
  bucket_erase(s);
  lru_unlink(s);
  Slot& sl = slot(s);
  sl.lru_prev = kFreeMark;
  sl.lru_next = free_head_;  // reused as the free-list link
  free_head_ = s;
  --size_;
}

void FlowCache::bucket_insert(std::uint32_t s) {
  maybe_grow_buckets();
  const std::size_t n = buckets_.size();
  for (std::size_t i = FlowKeyHash{}(slot(s).key) % n;;
       i = i + 1 == n ? 0 : i + 1) {
    std::uint32_t& b = buckets_[i];
    if (b == kNil || b == kTomb) {
      if (b == kTomb) --bucket_dead_;
      b = s;
      return;
    }
  }
}

void FlowCache::bucket_erase(std::uint32_t s) {
  const std::size_t n = buckets_.size();
  for (std::size_t i = FlowKeyHash{}(slot(s).key) % n;;
       i = i + 1 == n ? 0 : i + 1) {
    if (buckets_[i] == s) {
      buckets_[i] = kTomb;
      ++bucket_dead_;
      return;
    }
  }
}

const CachedPath* FlowCache::lookup(const FlowKey& key) {
  const std::uint32_t s = find_slot(key);
  if (s == kNil) {
    rate_.miss();
    return nullptr;
  }
  if (slot(s).path.generation != static_cast<std::uint16_t>(generation_)) {
    // Stamped before the last invalidate_all(): lazily reclaimed here.
    erase_slot(s);
    rate_.miss();
    return nullptr;
  }
  lru_unlink(s);
  lru_push_front(s);
  rate_.hit();
  return &slot(s).path;
}

const CachedPath* FlowCache::peek(const FlowKey& key) const {
  const std::uint32_t s = find_slot(key);
  if (s == kNil ||
      slot(s).path.generation != static_cast<std::uint16_t>(generation_)) {
    return nullptr;
  }
  return &slot(s).path;
}

void FlowCache::insert(const FlowKey& key, CachedPath path) {
  path.generation = static_cast<std::uint16_t>(generation_);
  const std::uint32_t existing = find_slot(key);
  if (existing != kNil) {
    slot(existing).path = std::move(path);
    lru_unlink(existing);
    lru_push_front(existing);
    return;
  }
  if (size_ >= capacity_ && lru_tail_ != kNil) {
    erase_slot(lru_tail_);
    ++evictions_;
  }
  const std::uint32_t s = alloc_slot();
  Slot& sl = slot(s);
  sl.key = key;
  sl.path = std::move(path);
  bucket_insert(s);
  lru_push_front(s);
  ++size_;
}

void FlowCache::maybe_grow_buckets() {
  if ((size_ + bucket_dead_ + 1) * 20 < buckets_.size() * 17) return;
  std::size_t n = size_ * 10 / 7 + 1;
  if (n < 32) n = 32;
  buckets_.assign(n, kNil);
  buckets_.shrink_to_fit();
  bucket_dead_ = 0;
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    if (!slot(s).occupied()) continue;
    for (std::size_t i = FlowKeyHash{}(slot(s).key) % n;;
         i = i + 1 == n ? 0 : i + 1) {
      if (buckets_[i] == kNil) {
        buckets_[i] = s;
        break;
      }
    }
  }
}

void FlowCache::invalidate(const FlowKey& key) {
  const std::uint32_t s = find_slot(key);
  if (s == kNil) return;
  erase_slot(s);
  ++invalidations_;
}

std::size_t FlowCache::invalidate_if(
    const std::function<bool(const FlowKey&, const CachedPath&)>& pred) {
  std::size_t flushed = 0;
  // Most-recent-first, matching the list-based iteration order (the
  // predicate may observe entries; order is part of the contract).
  for (std::uint32_t s = lru_head_; s != kNil;) {
    const std::uint32_t next = slot(s).lru_next;
    if (pred(slot(s).key, slot(s).path)) {
      erase_slot(s);
      ++flushed;
    }
    s = next;
  }
  invalidations_ += flushed;
  return flushed;
}

std::size_t FlowCache::invalidate_match(
    const RuleMatch& match,
    const std::function<std::string(int)>& iface_name) {
  return invalidate_if([&match, &iface_name](const FlowKey& key,
                                             const CachedPath& path) {
    const std::string in = iface_name(key.in_ifindex);
    const std::string out = path.action == CachedPath::Action::kForward
                                ? iface_name(path.out_ifindex)
                                : std::string{};
    // Ingress view: the tuple hooks saw before any rewrite.
    Packet ingress;
    ingress.src_ip = key.src_ip;
    ingress.dst_ip = key.dst_ip;
    ingress.src_port = key.src_port;
    ingress.dst_port = key.dst_port;
    ingress.proto = key.proto;
    if (match.matches(ingress, in, out)) return true;
    // Egress view: POSTROUTING-side rules match the rewritten header.
    Packet egress = ingress;
    egress.src_ip = path.new_src_ip;
    egress.dst_ip = path.new_dst_ip;
    egress.src_port = path.new_src_port;
    egress.dst_port = path.new_dst_port;
    return match.matches(egress, in, out);
  });
}

std::size_t FlowCache::invalidate_mac(MacAddress mac) {
  return invalidate_if([mac](const FlowKey&, const CachedPath& path) {
    return path.action == CachedPath::Action::kForward &&
           path.next_hop_mac == mac;
  });
}

std::size_t FlowCache::invalidate_ifindex(int ifindex) {
  return invalidate_if([ifindex](const FlowKey& key, const CachedPath& path) {
    return key.in_ifindex == ifindex || path.out_ifindex == ifindex;
  });
}

std::size_t FlowCache::invalidate_conn(std::uint64_t ct_id) {
  return invalidate_if([ct_id](const FlowKey&, const CachedPath& path) {
    return path.ct_id == ct_id;
  });
}

void FlowCache::invalidate_all() {
  ++generation_;
  invalidations_ += size_;
}

}  // namespace nestv::net::flowcache
