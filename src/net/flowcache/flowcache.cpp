#include "net/flowcache/flowcache.hpp"

namespace nestv::net::flowcache {

const CachedPath* FlowCache::lookup(const FlowKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    rate_.miss();
    return nullptr;
  }
  if (it->second->path.generation != generation_) {
    // Stamped before the last invalidate_all(): lazily reclaimed here.
    erase(it->second);
    rate_.miss();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  rate_.hit();
  return &it->second->path;
}

const CachedPath* FlowCache::peek(const FlowKey& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second->path.generation != generation_) {
    return nullptr;
  }
  return &it->second->path;
}

void FlowCache::insert(const FlowKey& key, CachedPath path) {
  path.generation = generation_;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->path = std::move(path);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, std::move(path)});
  entries_[key] = lru_.begin();
}

void FlowCache::erase(LruList::iterator it) {
  entries_.erase(it->key);
  lru_.erase(it);
}

void FlowCache::invalidate(const FlowKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  erase(it->second);
  ++invalidations_;
}

std::size_t FlowCache::invalidate_if(
    const std::function<bool(const FlowKey&, const CachedPath&)>& pred) {
  std::size_t flushed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred(it->key, it->path)) {
      entries_.erase(it->key);
      it = lru_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  invalidations_ += flushed;
  return flushed;
}

std::size_t FlowCache::invalidate_match(const RuleMatch& match) {
  return invalidate_if([&match](const FlowKey& key, const CachedPath& path) {
    // Ingress view: the tuple hooks saw before any rewrite.
    Packet ingress;
    ingress.src_ip = key.src_ip;
    ingress.dst_ip = key.dst_ip;
    ingress.src_port = key.src_port;
    ingress.dst_port = key.dst_port;
    ingress.proto = key.proto;
    if (match.matches(ingress, path.in_iface, path.out_iface)) return true;
    // Egress view: POSTROUTING-side rules match the rewritten header.
    Packet egress = ingress;
    egress.src_ip = path.new_src_ip;
    egress.dst_ip = path.new_dst_ip;
    egress.src_port = path.new_src_port;
    egress.dst_port = path.new_dst_port;
    return match.matches(egress, path.in_iface, path.out_iface);
  });
}

std::size_t FlowCache::invalidate_mac(MacAddress mac) {
  return invalidate_if([mac](const FlowKey&, const CachedPath& path) {
    return path.action == CachedPath::Action::kForward &&
           path.next_hop_mac == mac;
  });
}

std::size_t FlowCache::invalidate_ifindex(int ifindex) {
  return invalidate_if([ifindex](const FlowKey& key, const CachedPath& path) {
    return key.in_ifindex == ifindex || path.out_ifindex == ifindex;
  });
}

std::size_t FlowCache::invalidate_conn(std::uint64_t ct_id) {
  return invalidate_if([ct_id](const FlowKey&, const CachedPath& path) {
    return path.ct_id == ct_id;
  });
}

void FlowCache::invalidate_all() {
  ++generation_;
  invalidations_ += entries_.size();
}

}  // namespace nestv::net::flowcache
