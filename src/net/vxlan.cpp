#include "net/vxlan.hpp"

#include <utility>

namespace nestv::net {

VxlanDevice::VxlanDevice(sim::Engine& engine, std::string name,
                         const sim::CostModel& costs, StackBackend& stack,
                         Ipv4Address local_vtep)
    : Device(engine, std::move(name), costs),
      stack_(&stack),
      local_vtep_(local_vtep) {
  add_port();  // port 0: overlay bridge side
  stack_->udp_bind_kernel(
      kVtepPort, [this](StackBackend::UdpDelivery& d) {
        on_vtep_datagram(d);
      });
}

void VxlanDevice::add_remote(MacAddress inner_mac, Ipv4Address vtep) {
  l2_table_[inner_mac] = vtep;
}

void VxlanDevice::add_flood_target(Ipv4Address vtep) {
  flood_.push_back(vtep);
}

void VxlanDevice::ingress(EthernetFrame frame, int port) {
  (void)port;
  const auto it = l2_table_.find(frame.dst);
  if (it != l2_table_.end()) {
    encap_to(it->second, std::move(frame));
    return;
  }
  // Flooding is a genuine duplication point: one copy per remote VTEP,
  // the last one moved.
  for (std::size_t i = 0; i < flood_.size(); ++i) {
    if (i + 1 == flood_.size()) {
      encap_to(flood_[i], std::move(frame));
    } else {
      encap_to(flood_[i], frame);
    }
  }
}

void VxlanDevice::encap_to(Ipv4Address vtep, EthernetFrame inner) {
  const auto& c = costs();
  const sim::Duration work =
      c.vxlan_encap_pkt +
      static_cast<sim::Duration>(c.vxlan_copy_byte *
                                 static_cast<double>(inner.wire_bytes()));
  process_batched(work, [this, vtep, inner = std::move(inner)]() mutable {
    ++encap_;
    Packet outer;
    outer.src_ip = local_vtep_;
    outer.dst_ip = vtep;
    outer.proto = L4Proto::kUdp;
    outer.src_port = kVtepPort;
    outer.dst_port = kVtepPort;
    // VXLAN header (8B) counted on top of the inner frame bytes.
    outer.payload_bytes = static_cast<std::uint32_t>(
        costs().vxlan_header_bytes) - kEthernetHeaderBytes -
        kIpv4HeaderBytes - kUdpHeaderBytes;
    // Pool-recycled node; the inner frame moves all the way through.
    outer.inner = std::make_unique<EthernetFrame>(std::move(inner));
    outer.packet_id = stack_->next_packet_id();
    outer.sent_at = engine().now();
    stack_->l4_emit(costs().l4_segment, std::move(outer));
  });
}

void VxlanDevice::on_vtep_datagram(StackBackend::UdpDelivery& d) {
  if (!d.inner) return;
  const auto& c = costs();
  const sim::Duration work =
      c.vxlan_decap_pkt +
      static_cast<sim::Duration>(c.vxlan_copy_byte *
                                 static_cast<double>(d.inner->wire_bytes()));
  // The VTEP is the delivery's sole consumer: steal the inner frame.
  EthernetFrame inner = std::move(*d.inner);
  process_batched(work, [this, f = std::move(inner)]() mutable {
    ++decap_;
    transmit(0, std::move(f));
  });
}

}  // namespace nestv::net
