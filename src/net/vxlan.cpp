#include "net/vxlan.hpp"

#include <algorithm>
#include <utility>

#include "net/oncache.hpp"
#include "sim/test_hooks.hpp"

namespace nestv::net {

VxlanDevice::VxlanDevice(sim::Engine& engine, std::string name,
                         const sim::CostModel& costs, StackBackend& stack,
                         Ipv4Address local_vtep, std::uint32_t vni)
    : Device(engine, std::move(name), costs),
      stack_(&stack),
      local_vtep_(local_vtep),
      vni_(vni) {
  add_port();  // port 0: overlay bridge side
  stack_->udp_bind_kernel(
      kVtepPort, [this](StackBackend::UdpDelivery& d) {
        on_vtep_datagram(d);
      });
}

void VxlanDevice::add_remote(MacAddress inner_mac, Ipv4Address vtep) {
  const auto it = l2_table_.find(inner_mac);
  if (it != l2_table_.end() && it->second != vtep && oncache_ != nullptr &&
      !sim::test_hooks::skip_oncache_vtep_invalidation) {
    // The endpoint moved: cached fast paths keep the old VTEP baked into
    // their outer header, so they must go before the remap takes effect.
    oncache_->invalidate_inner_mac(inner_mac);
  }
  l2_table_[inner_mac] = vtep;
}

void VxlanDevice::add_flood_target(Ipv4Address vtep) {
  if (vtep == local_vtep_) return;  // never tunnel a flood to ourselves
  if (std::find(flood_.begin(), flood_.end(), vtep) != flood_.end()) return;
  flood_.push_back(vtep);
}

void VxlanDevice::ingress(EthernetFrame frame, int port) {
  (void)port;
  const auto it = l2_table_.find(frame.dst);
  if (it != l2_table_.end()) {
    encap_to(it->second, std::move(frame));
    return;
  }
  // Flooded frames are not cacheable (no single resolved remote).
  if (oncache_ != nullptr) {
    oncache_->abandon_egress({frame.packet.packet_id, frame.src});
  }
  // Flooding is a genuine duplication point: one copy per remote VTEP,
  // the last one moved.
  for (std::size_t i = 0; i < flood_.size(); ++i) {
    if (i + 1 == flood_.size()) {
      encap_to(flood_[i], std::move(frame));
    } else {
      encap_to(flood_[i], frame);
    }
  }
}

void VxlanDevice::encap_to(Ipv4Address vtep, EthernetFrame inner) {
  const auto& c = costs();
  const sim::Duration work =
      c.vxlan_encap_pkt +
      static_cast<sim::Duration>(c.vxlan_copy_byte *
                                 static_cast<double>(inner.wire_bytes()));
  // The pending egress record is keyed by the inner frame's identity;
  // capture it before the frame moves into the closure.
  const std::uint64_t inner_id = inner.packet.packet_id;
  const MacAddress inner_src = inner.src;
  process_batched(work, [this, vtep, inner_id, inner_src,
                         inner = std::move(inner)]() mutable {
    ++encap_;
    Packet outer;
    outer.src_ip = local_vtep_;
    outer.dst_ip = vtep;
    outer.proto = L4Proto::kUdp;
    outer.src_port = kVtepPort;
    outer.dst_port = kVtepPort;
    // VXLAN header (8B) counted on top of the inner frame bytes.
    outer.payload_bytes = static_cast<std::uint32_t>(
        costs().vxlan_header_bytes) - kEthernetHeaderBytes -
        kIpv4HeaderBytes - kUdpHeaderBytes;
    // Pool-recycled node; the inner frame moves all the way through.
    outer.inner = std::make_unique<EthernetFrame>(std::move(inner));
    outer.packet_id = stack_->next_packet_id();
    outer.sent_at = engine().now();
    if (oncache_ != nullptr) {
      // The remote is resolved and the outer identity minted: hand the
      // pending record to the stack leg (completed at ARP resolution).
      oncache_->promote_egress({inner_id, inner_src}, vtep, outer.packet_id);
    }
    stack_->l4_emit(costs().l4_segment, std::move(outer));
  });
}

void VxlanDevice::on_vtep_datagram(StackBackend::UdpDelivery& d) {
  if (!d.inner) {
    // Truncated / non-VXLAN payload on the VTEP port: no inner frame to
    // decapsulate, drop it (counted; no decap event is charged).
    ++rx_non_vxlan_;
    return;
  }
  const auto& c = costs();
  const sim::Duration work =
      c.vxlan_decap_pkt +
      static_cast<sim::Duration>(c.vxlan_copy_byte *
                                 static_cast<double>(d.inner->wire_bytes()));
  // The VTEP is the delivery's sole consumer: steal the inner frame.
  EthernetFrame inner = std::move(*d.inner);
  if (oncache_ != nullptr && inner.ethertype == 0x0800) {
    oncache_->note_ingress(
        {inner.packet.packet_id, inner.src},
        oncache::IngressKey::of(inner.packet, vni_), d.src_ip);
  }
  process_batched(work, [this, f = std::move(inner)]() mutable {
    ++decap_;
    transmit(0, std::move(f));
  });
}

}  // namespace nestv::net
