// Packet and frame value types moved through the simulated datapath.
//
// Headers are modeled as structured fields (sizes are accounted exactly;
// payload bytes are carried as a length, not a buffer).  net/wire.hpp can
// serialize these structures to real octets with valid checksums for tests
// and for the VXLAN encapsulation path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace nestv::net {

enum class L4Proto : std::uint8_t {
  kUdp = 17,
  kTcp = 6,
  kIcmp = 1,
};

[[nodiscard]] const char* to_string(L4Proto p);

/// TCP flag bits (subset used by the simplified TCP implementation).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

constexpr std::uint32_t kEthernetHeaderBytes = 14;
constexpr std::uint32_t kIpv4HeaderBytes = 20;
constexpr std::uint32_t kUdpHeaderBytes = 8;
constexpr std::uint32_t kTcpHeaderBytes = 20;

/// An IPv4 packet with one L4 header.  Copyable (deep-copies any
/// encapsulated frame); Hostlo's reflect-to-all-queues duplicates frames,
/// so copies must be genuine duplicates.  Heap-allocated packets recycle
/// through the per-thread PacketPool (net/packet_pool.hpp).
struct Packet {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  L4Proto proto = L4Proto::kUdp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
  /// IPv4 fragmentation (UDP datagrams larger than the egress MTU).
  std::uint16_t frag_offset = 0;  ///< payload byte offset of this fragment
  bool frag_more = false;         ///< MF bit

  // ICMP-only fields.
  std::uint8_t icmp_type = 0;  ///< 8=echo request, 0=echo reply, 3=unreach,
                               ///< 11=time exceeded
  std::uint8_t icmp_code = 0;
  std::uint16_t icmp_id = 0;
  std::uint16_t icmp_seq = 0;

  // TCP-only fields.
  std::uint32_t tcp_seq = 0;
  std::uint32_t tcp_ack = 0;
  TcpFlags tcp_flags;
  std::uint32_t tcp_window = 0;

  /// L4 payload length in bytes (the bytes themselves are not simulated).
  std::uint32_t payload_bytes = 0;

  /// Monotonic id for tracing/debugging, assigned by the sender's stack.
  std::uint64_t packet_id = 0;
  /// Conntrack attachment, emulating skb->_nfct: valid only within one
  /// stack's hook traversal; reset by every stack on packet entry.
  std::uint64_t ct_id = 0;
  /// Direction of this packet w.r.t. its tracked connection.
  bool ct_reply = false;
  /// Simulated instant the packet left the sending socket, for latency
  /// bookkeeping (the DES clock stands in for the paper's cross-VM TSC).
  sim::TimePoint sent_at = 0;

  /// VXLAN: the encapsulated inner frame, if any.
  std::unique_ptr<struct EthernetFrame> inner;

  Packet() = default;
  Packet(const Packet& other);
  Packet& operator=(const Packet& other);
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;
  // Defined inline at the bottom of this header (after EthernetFrame is
  // complete): the dtor runs millions of times per simulated second and
  // must not be an out-of-line call just to test a null unique_ptr.
  ~Packet();

  static void* operator new(std::size_t bytes);
  static void operator delete(void* p, std::size_t bytes) noexcept;
  static void operator delete(void* p) noexcept;

  [[nodiscard]] std::uint32_t l4_header_bytes() const;
  /// Total IP datagram length (IP header + L4 header + payload + inner).
  [[nodiscard]] std::uint32_t ip_total_bytes() const;
  [[nodiscard]] std::string describe() const;
};

/// Ethernet frame carrying one IPv4 packet or an ARP message.  Copies are
/// deep (the Packet may carry an encapsulated inner frame) and counted by
/// PacketPool::frames_cloned(), so the datapath's genuine duplication
/// points stay visible; single-consumer hops move instead.  Heap nodes
/// (VXLAN inner frames) recycle through the per-thread PacketPool.
struct EthernetFrame {
  MacAddress src;
  MacAddress dst;
  std::uint16_t ethertype = 0x0800;  ///< IPv4 by default; 0x0806 = ARP

  Packet packet;  ///< valid when ethertype == 0x0800

  // ARP fields (valid when ethertype == 0x0806).
  bool arp_is_request = false;
  Ipv4Address arp_sender_ip;
  Ipv4Address arp_target_ip;
  MacAddress arp_sender_mac;

  EthernetFrame() = default;
  EthernetFrame(const EthernetFrame& other);
  EthernetFrame& operator=(const EthernetFrame& other);
  EthernetFrame(EthernetFrame&&) noexcept = default;
  EthernetFrame& operator=(EthernetFrame&&) noexcept = default;
  ~EthernetFrame() = default;

  static void* operator new(std::size_t bytes);
  static void operator delete(void* p, std::size_t bytes) noexcept;
  static void operator delete(void* p) noexcept;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    return kEthernetHeaderBytes +
           (ethertype == 0x0800 ? packet.ip_total_bytes() : 28);
  }
  [[nodiscard]] std::string describe() const;
};

inline Packet::~Packet() = default;

}  // namespace nestv::net
