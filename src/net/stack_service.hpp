// StackService: network-stack-as-a-service (NetKernel's core idea).
//
// Instead of every guest burning its own softirq core on protocol
// processing, one host-side worker runs the stack for N guests.  Each
// attached guest gets a full-featured stack instance (FullStack semantics:
// netfilter, GRO, flowcache, ICMP) whose softirq work is submitted to the
// service's shared SerialResource — so an idle-ish guest consumes no
// standing core, and the service's utilization is the sum of its tenants'
// actual demand.  That consolidation is the paper-adjacent win the
// abl_stack_backend bench quantifies (packets per provisioned core-second
// versus one dedicated softirq per guest).
//
// Attribution: every softirq charge a hosted stack submits is also recorded
// against a per-guest CpuAccount in the service's ledger, so "who is using
// the shared worker" stays answerable per tenant — NetKernel's billing
// argument, and the per-backend CPU breakdown DatapathStats reports.
//
// Teardown: detaching a guest dead-ends its interfaces and *retires* the
// stack rather than destroying it — in-flight softirq items and timers
// still reference it.  Retired stacks die with the service, after the
// engine has drained.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/stack_backend.hpp"
#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace nestv::net {

class ServiceHostedStack;

class StackService {
 public:
  StackService(sim::Engine& engine, std::string name,
               const sim::CostModel& costs);
  ~StackService();

  StackService(const StackService&) = delete;
  StackService& operator=(const StackService&) = delete;

  /// Attaches a tenant: returns a FullStack-featured backend (kind() ==
  /// kServiceHosted) whose protocol work runs on this service's worker.
  /// The reference stays valid until the service is destroyed (detaching
  /// only retires it).
  StackBackend& attach_guest(const std::string& guest_name);

  /// Detaches a tenant mid-run: every non-loopback interface is dead-ended
  /// (parked/queued packets drop) and the stack moves to the retired list.
  /// Safe with in-flight trains — retired stacks outlive their events.
  void detach_guest(StackBackend& stack);

  /// The shared worker; callers bind it to their CPU ledger like any other
  /// softirq resource (ServerlessMachine binds it as kSoft host time).
  [[nodiscard]] sim::SerialResource& worker() { return worker_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t guest_count() const { return guests_.size(); }
  [[nodiscard]] std::size_t retired_count() const { return retired_.size(); }

  /// Soft-CPU nanoseconds the worker has executed on behalf of the named
  /// guest (0 for unknown names).  Sum over guests == worker busy time.
  [[nodiscard]] sim::Duration attributed_soft_ns(
      const std::string& guest_name) const;

  /// Per-guest attribution accounts (rendered by DatapathStats).
  [[nodiscard]] const sim::CpuLedger& ledger() const { return ledger_; }

 private:
  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  sim::SerialResource worker_;
  sim::CpuLedger ledger_;
  std::vector<std::unique_ptr<ServiceHostedStack>> guests_;
  std::vector<std::unique_ptr<ServiceHostedStack>> retired_;
};

}  // namespace nestv::net
