#include "net/pcap.hpp"

#include <stdexcept>

#include "net/wire.hpp"

namespace nestv::net {

PcapWriter::PcapWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("pcap: cannot open " + path);
  }
  // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen, linktype.
  put_u32(0xa1b2c3d4);
  put_u16(2);
  put_u16(4);
  put_u32(0);
  put_u32(0);
  put_u32(65535);
  put_u32(1);  // LINKTYPE_ETHERNET
}

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void PcapWriter::put_u32(std::uint32_t v) {
  std::fwrite(&v, sizeof v, 1, file_);  // host endian, per pcap convention
}

void PcapWriter::put_u16(std::uint16_t v) {
  std::fwrite(&v, sizeof v, 1, file_);
}

void PcapWriter::record(sim::TimePoint when, const EthernetFrame& frame) {
  const auto bytes = wire::serialize_frame(frame);
  put_u32(static_cast<std::uint32_t>(when / sim::kSecond));
  put_u32(static_cast<std::uint32_t>((when % sim::kSecond) / 1000));  // us
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  std::fwrite(bytes.data(), 1, bytes.size(), file_);
  ++frames_;
}

void PcapWriter::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace nestv::net
