// Base class for every L2 element of the simulated datapath.
//
// Devices are nodes in a graph connected port-to-port.  A frame handed to
// `transmit` appears at the peer's `ingress` after the hop latency.  Each
// device may be bound to a SerialResource (a CPU core or kernel worker);
// its per-frame work then executes there, which is what creates queueing,
// saturation and the CPU accounting the paper reports.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/burst_queue.hpp"
#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace nestv::sim {
class ShardedConductor;
}  // namespace nestv::sim

namespace nestv::net {

class Device {
 public:
  Device(sim::Engine& engine, std::string name, const sim::CostModel& costs);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Adds a port; returns its index.
  int add_port();
  [[nodiscard]] int port_count() const {
    return static_cast<int>(ports_.size());
  }

  /// Wires port `pa` of `a` to port `pb` of `b`, bidirectionally.
  static void connect(Device& a, int pa, Device& b, int pb);

  /// Convenience: adds a fresh port on both devices and wires them.
  /// Returns {port on a, port on b}.
  static std::pair<int, int> link(Device& a, Device& b);

  /// Wires a fabric link: a physical wire with its own fixed latency that
  /// never coalesces frames (the NAPI-style burst joining models virtio
  /// rings, not a cut-through switch wire).  When `conductor` is non-null
  /// and the two devices live on different shards, frames become mailbox
  /// posts; the delivery timing is identical either way, which is what
  /// keeps shards=1 and shards=N bit-equal.  `wire_latency` must be at
  /// least the conductor's lookahead for a cross-shard link.
  static void connect_wire(sim::ShardedConductor* conductor, Device& a,
                           int pa, Device& b, int pb,
                           sim::Duration wire_latency);

  /// Frame arrives on `port` (after hop latency and any peer processing).
  virtual void ingress(EthernetFrame frame, int port) = 0;

  /// Burst delivery from a coalesced hop: the frames of one same-timestamp
  /// group arrive through this back-to-back, followed by exactly one
  /// ingress_burst_end().  The default treats each frame as a plain
  /// ingress; burst-aware receivers (PortBackend) buffer and flush the
  /// whole train synchronously at the end marker, without an extra event.
  virtual void ingress_burst(EthernetFrame frame, int port) {
    ingress(std::move(frame), port);
  }
  virtual void ingress_burst_end(int port) { (void)port; }

  /// Binds per-frame work to a serialized CPU; `category` is the CPU time
  /// bucket charged (e.g. kSoft for bridge/netfilter work in softirq).
  void set_cpu(sim::SerialResource* cpu, sim::CpuCategory category) {
    cpu_ = cpu;
    cpu_category_ = category;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t frames_forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }

  /// Maximum queueing delay tolerated on the bound CPU before this device
  /// tail-drops (models a qdisc/ring limit).  Zero disables dropping.
  void set_max_backlog(sim::Duration d) { max_backlog_ = d; }

 protected:
  /// Executes `work` ns on the bound CPU (FIFO behind earlier work), then
  /// runs `then`.  Without a bound CPU the work is charged nowhere and
  /// `then` runs after `work` ns of pure delay.  Returns false if the
  /// frame had to be dropped due to backlog.
  bool process(sim::Duration work, sim::InlineTask&& then);

  /// Batched variant of process(): when the cost model enables bursts
  /// (batch_size > 1) completions accumulated on the bound CPU share one
  /// drain event (sim::BatchSink) instead of scheduling one each.  CPU
  /// accounting and the backlog drop check are identical to process();
  /// with batching off this IS process().
  bool process_batched(sim::Duration work, sim::InlineTask&& then);

  /// Sends `frame` out of `port`; it reaches the peer after hop latency.
  void transmit(int port, EthernetFrame frame);

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const sim::CostModel& costs() const { return *costs_; }
  void count_drop() { ++dropped_; }

 private:
  struct PortSlot {
    Device* peer = nullptr;
    int peer_port = -1;
    /// Burst mode: frames in flight on this link.  All frames transmitted
    /// while a hop event is pending ride that event — the receiver picks
    /// up whatever is in the ring when its poll fires, like a NIC RX ring.
    sim::BurstQueue<EthernetFrame> pending;
    bool hop_armed = false;
    /// Fabric wire (connect_wire): fixed latency overriding hop_latency,
    /// exempt from burst coalescing.  0 = ordinary intra-host link.
    sim::Duration wire_latency = 0;
    /// Cross-shard wire: frames are mailed through the conductor from
    /// self_shard to peer_shard instead of scheduled locally.
    sim::ShardedConductor* fabric = nullptr;
    int self_shard = 0;
    int peer_shard = 0;
    /// Delivery-order key base for this direction of the wire: frames
    /// fire at their arrival instant in ((wire_rank << 40) | wire_seq)
    /// order, the same key whether delivered locally or via mailbox, so
    /// same-nanosecond arrivals at a shared device order identically in
    /// every execution mode.
    std::uint64_t wire_rank = 0;
    std::uint64_t wire_seq = 0;
  };

  /// Delivers every frame queued on `port` before this event fired.
  void deliver_hop(int port);

  sim::Engine* engine_;
  std::string name_;
  const sim::CostModel* costs_;
  std::vector<PortSlot> ports_;
  sim::SerialResource* cpu_ = nullptr;
  sim::CpuCategory cpu_category_ = sim::CpuCategory::kSys;
  std::unique_ptr<sim::BatchSink> batch_sink_;
  sim::Duration max_backlog_ = sim::milliseconds(5);
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace nestv::net
