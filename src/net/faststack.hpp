// FastPathStack: a compact stream-oriented StackBackend in the IncludeOS
// idiom — one fixed pipeline per direction, no hook points to traverse, no
// conntrack, no GRO merge pass, no IP fragmentation machinery.
//
// The RX path is a single fused pass (MAC filter -> demux -> L4 segment
// handling) charged as one fastpath_rx_pkt; TX fuses the route decision and
// neighbour lookup into one fastpath_tx_pkt.  What the full stack spreads
// over route_lookup + hook traversals + l4_segment, this stack does in a
// table-free straight line — the unikernel argument that a single-tenant
// guest needs no generality it will never configure.
//
// Deliberately absent (throwing from the seam's capability defaults):
// netfilter, forwarding, resegmentation, jitter injection, the flow cache
// (nothing to cache: the whole path is already one charge) and ICMP.  A
// datagram larger than the egress MTU is dropped — streams segment to GSO
// size in L4, and the fast path refuses to own a fragmenter.
//
// ARP is retained unchanged (same frames on the wire as FullStack): the
// fast path must interoperate on a shared L2 with full stacks, and the
// differential fuzz oracle leans on identical neighbour behavior.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/backend.hpp"
#include "net/neighbor.hpp"
#include "net/packet.hpp"
#include "net/route.hpp"
#include "net/stack_backend.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace nestv::net {

class FastPathStack : public StackBackend {
 public:
  FastPathStack(sim::Engine& engine, std::string name,
                const sim::CostModel& costs, sim::SerialResource* softirq);
  ~FastPathStack() override;

  [[nodiscard]] StackKind kind() const override {
    return StackKind::kFastPath;
  }

  // ---- configuration ----------------------------------------------------
  int add_interface(InterfaceBackend& backend,
                    const InterfaceConfig& cfg) override;
  void configure_loopback(std::uint32_t gso_bytes) override;
  [[nodiscard]] RoutingTable& routes() override { return routes_; }
  [[nodiscard]] int ifindex_of(const std::string& name) const override;
  [[nodiscard]] Ipv4Address iface_ip(int ifindex) const override;
  [[nodiscard]] MacAddress iface_mac(int ifindex) const override;
  void set_iface_gso(int ifindex, std::uint32_t gso_bytes) override;
  void seed_neighbor(int ifindex, Ipv4Address ip, MacAddress mac) override;
  void detach_interface(int ifindex) override;
  [[nodiscard]] std::size_t interface_count() const override {
    return ifaces_.size();
  }

  // ---- datapath ---------------------------------------------------------
  void rx(int ifindex, EthernetFrame frame) override;
  void rx_train(int ifindex, std::vector<EthernetFrame> frames) override;
  void emit_packet(Packet p) override;
  [[nodiscard]] std::uint32_t egress_gso(Ipv4Address dst) const override;

 private:
  struct Interface {
    InterfaceConfig cfg;
    InterfaceBackend* backend = nullptr;  ///< null for loopback
    NeighborTable neighbors;
    /// Packets parked awaiting ARP resolution, keyed by next-hop.
    std::unordered_map<Ipv4Address, std::vector<Packet>> arp_pending;
  };

  [[nodiscard]] bool is_local_address(Ipv4Address a) const;
  /// The fused per-packet pass: locality check, L4 demux, segment handling.
  /// Runs inside a softirq item already charged fastpath_rx_pkt.
  void rx_demux(Packet p);
  void deliver_local_fast(Packet p);
  /// TCP demux without a separate l4_segment charge (folded into the fixed
  /// per-packet cost); otherwise mirrors StackBackend::deliver_tcp.
  void deliver_tcp_fast(Packet p);
  void arp_resolve_and_send(Packet p, int out_ifindex);
  void send_arp_request(int ifindex, Ipv4Address target);
  void handle_arp(int ifindex, const EthernetFrame& frame);

  std::vector<Interface> ifaces_;  ///< [0] is loopback
  RoutingTable routes_;
  /// Drives the faststack_dup_udp_delivery test hook (deterministic
  /// per-stack delivery counter; no effect with the hook off).
  std::uint64_t udp_rx_count_ = 0;
};

}  // namespace nestv::net
