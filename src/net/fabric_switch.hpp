// Cut-through fabric switch for the hierarchical (ToR -> spine) fabric.
//
// Unlike net::Bridge — a learning host bridge with flooding and FDB aging —
// a FabricSwitch forwards by *static* MAC bindings installed at topology
// build time (vmm::HierarchicalFabric registers every machine's external
// NIC).  Datacenter fabrics run this way in practice (EVPN / SDN-programmed
// tables); for the simulation it has two decisive properties:
//
//  * no flooding: an unknown unicast is a topology bug, counted and
//    dropped, never duplicated to N ports.  At hundreds of machines a
//    single flood would be O(machines) frames.
//  * deterministic multi-path: a ToR reaches every remote rack through any
//    spine.  The uplink is chosen by a pure hash of the flow identity
//    carried in the frame (the 5-tuple for IPv4, the ARP addresses for
//    ARP) — never by queue occupancy, arrival order, or anything else that
//    differs between execution modes.  Like the keyed wire delivery order
//    (DESIGN.md section 12), the decision is a function of the *frame*, so
//    shards=1 and shards=N runs pick identical paths and stay bit-equal.
//
// ARP is answered at the ToR from a fabric-wide directory (proxy ARP /
// EVPN-style suppression): requests never cross the fabric, replies are
// generated at the edge.  The directory is written only during topology
// build, before the conductor starts, so concurrent shard workers may read
// it freely.
//
// Capacity: each egress port keeps a busy horizon advanced by the frame's
// serialization time (costs.fabric_link_byte); frames into a busy link
// queue behind it.  This is the per-link capacity constraint of the fabric
// model — latency from the wire, bandwidth from the horizon.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/device.hpp"

namespace nestv::net {

/// Fabric-wide host registry: external IP -> NIC MAC of the owning
/// machine.  Populated during topology build (read-only afterwards);
/// shared by every switch of one fabric for proxy-ARP.
struct FabricDirectory {
  std::unordered_map<std::uint32_t, MacAddress> mac_of_ip;

  [[nodiscard]] const MacAddress* find(Ipv4Address ip) const {
    const auto it = mac_of_ip.find(ip.value());
    return it == mac_of_ip.end() ? nullptr : &it->second;
  }
};

class FabricSwitch : public Device {
 public:
  /// `ecmp_salt` perturbs the uplink hash per switch so one elephant flow
  /// does not pick the same spine ordinal at every tier.
  FabricSwitch(sim::Engine& engine, std::string name,
               const sim::CostModel& costs, const FabricDirectory& directory,
               std::uint32_t ecmp_salt);

  /// Installs a static binding: frames for `mac` leave through `port`.
  void bind_mac(MacAddress mac, int port);
  /// Marks `port` as a member of the ECMP uplink group (ToR only; frames
  /// for unbound MACs hash across the group).
  void add_uplink(int port);

  void ingress(EthernetFrame frame, int port) override;

  /// Deterministic uplink ordinal for a frame (exposed for tests: the
  /// choice must be reproducible from the frame alone).
  [[nodiscard]] std::size_t ecmp_pick(const EthernetFrame& frame) const;

  // ---- counters (deterministic; used by tests and bench reports) --------
  /// Frames transmitted per uplink-group member, by group ordinal.
  [[nodiscard]] const std::vector<std::uint64_t>& uplink_tx() const {
    return uplink_tx_;
  }
  [[nodiscard]] std::uint64_t arp_proxied() const { return arp_proxied_; }
  [[nodiscard]] std::uint64_t arp_unanswered() const {
    return arp_unanswered_;
  }
  [[nodiscard]] std::uint64_t unknown_unicast_dropped() const {
    return unknown_dropped_;
  }
  [[nodiscard]] std::size_t bound_macs() const { return mac_port_.size(); }

 private:
  void forward(EthernetFrame frame, int ingress_port);
  /// Serializes onto the port's link: delays by the busy horizon plus the
  /// frame's wire time, then transmits.
  void egress(int port, EthernetFrame frame);

  const FabricDirectory* directory_;
  std::uint32_t salt_;
  std::unordered_map<MacAddress, int> mac_port_;
  std::vector<int> uplinks_;
  std::vector<std::uint64_t> uplink_tx_;
  /// Per-port link-busy horizon (absolute sim time the link frees up).
  std::vector<sim::TimePoint> port_free_;
  std::uint64_t arp_proxied_ = 0;
  std::uint64_t arp_unanswered_ = 0;
  std::uint64_t unknown_dropped_ = 0;
};

}  // namespace nestv::net
