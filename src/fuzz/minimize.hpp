// Failure minimization and corpus-test emission.
//
// A diverging seed usually drags a whole scenario with it — several flows,
// several boundary actions.  minimize() shrinks the repro by greedy delta
// debugging over the CaseSpec's masks: one pass tries clearing each action
// bit, one pass each flow bit, re-running only the failing oracle each
// time; passes repeat until no bit can be removed.  The result is the
// minimal set of flows and actions that still diverges.
//
// emit_corpus_test() freezes a minimized case as a self-contained gtest
// source in tests/fuzz_corpus/: the test asserts the case is clean with
// the engine as-is, and — when the repro came from an injected bug —
// that the matching oracle still detects the divergence with the bug
// hook re-enabled.  The corpus replays under ctest on every build.
#pragma once

#include <optional>
#include <string>

#include "fuzz/oracle.hpp"

namespace nestv::fuzz {

struct MinimizeResult {
  CaseSpec spec;       ///< minimized masks; oracle_mask narrowed
  std::string oracle;  ///< the failing oracle the repro preserves
  std::string detail;  ///< first divergence of the minimized case
  int runs = 0;        ///< run_case invocations spent minimizing
};

/// Shrinks `spec` to a minimal still-failing case.  Returns nullopt when
/// the spec does not fail at all (nothing to minimize).
[[nodiscard]] std::optional<MinimizeResult> minimize(const CaseSpec& spec);

/// Writes a self-contained regression test for the minimized case to
/// `path`.  `inject_hook` names the test hook that provoked the failure
/// ("shards", "batch", "flowcache") or is empty for an organic failure.
/// Returns false when the file cannot be written.
bool emit_corpus_test(const CaseSpec& spec, const std::string& oracle,
                      const std::string& inject_hook,
                      const std::string& path);

}  // namespace nestv::fuzz
