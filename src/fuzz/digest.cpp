#include "fuzz/digest.hpp"

#include <bit>
#include <sstream>

namespace nestv::fuzz {

void Digest::add_f64(std::string name, double value) {
  entries_.emplace_back(std::move(name), std::bit_cast<std::uint64_t>(value));
}

std::uint64_t Digest::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& [name, value] : entries_) {
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    mix(value);
  }
  return h;
}

std::string Digest::first_difference(const Digest& other) const {
  const std::size_t n = entries_.size() < other.entries_.size()
                            ? entries_.size()
                            : other.entries_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [an, av] = entries_[i];
    const auto& [bn, bv] = other.entries_[i];
    std::ostringstream os;
    if (an != bn) {
      os << "digest key order differs at #" << i << ": " << an << " vs "
         << bn;
      return os.str();
    }
    if (av != bv) {
      os << an << ": " << av << " vs " << bv;
      return os.str();
    }
  }
  if (entries_.size() != other.entries_.size()) {
    std::ostringstream os;
    os << "digest sizes differ: " << entries_.size() << " vs "
       << other.entries_.size();
    return os.str();
  }
  return {};
}

}  // namespace nestv::fuzz
