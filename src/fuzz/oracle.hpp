// The differential oracles: one seed, paired execution shapes, determinism
// as the ground truth.
//
// For a seed's FuzzPlan, run_case() executes the plan under a set of
// shapes and asserts the equivalences the simulation engine guarantees:
//
//   shards     shards=alt_shards (alt_workers threads) is STRICTLY equal
//              to shards=1 — the conservative-PDES determinism claim.
//   batch      (a) batch_size=1 with hostile burst knobs is STRICTLY
//              equal to the default-knob run: batch_size==1 is the master
//              switch, so napi_budget / virtio_kick must be dead; and
//              (b) batch_size>1 is SEMANTICALLY equal to batch_size=1
//              (latency shifts, application outcomes do not), and
//              re-running the batched shape reproduces it STRICTLY
//              (in-process re-runnability).
//   flowcache  flowcache=on is SEMANTICALLY equal to flowcache=off, and
//              the combined shape (shards=alt, batch>1, fc=on) is
//              STRICTLY reproduced by its shards=1 twin.
//   backend    pods on FastPathStack are SEMANTICALLY equal to pods on
//              the full stack (the StackBackend seam must not change
//              delivered work — only timing), and the fast-path shape
//              re-runs STRICTLY equal to itself.
//   oncache    the ONCache overlay fast path enabled is SEMANTICALLY
//              equal to disabled (cached encap/decap moves timing, not
//              application outcomes — including across rule edits, which
//              must invalidate the cached paths), and the cached shape
//              re-runs STRICTLY equal to itself.  Evaluated only for
//              plans whose masked flow set contains an overlay flow.
//
// Every run also self-checks invariants (waves quiesce, shards end idle,
// cached fast paths keep live conntrack backings, the packet pool returns
// to its pre-run level on teardown); violations surface as failures with
// oracle name "invariant".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nestv::fuzz {

inline constexpr std::uint32_t kOracleShards = 1U << 0;
inline constexpr std::uint32_t kOracleBatch = 1U << 1;
inline constexpr std::uint32_t kOracleFlowcache = 1U << 2;
inline constexpr std::uint32_t kOracleBackend = 1U << 3;
inline constexpr std::uint32_t kOracleOncache = 1U << 4;
inline constexpr std::uint32_t kOracleAll =
    kOracleShards | kOracleBatch | kOracleFlowcache | kOracleBackend |
    kOracleOncache;

/// A reproducible fuzz case: the seed plus the participation masks the
/// minimizer shrinks, plus which oracles to evaluate.
struct CaseSpec {
  std::uint64_t seed = 0;
  std::uint64_t flow_mask = ~0ULL;
  std::uint64_t action_mask = ~0ULL;
  std::uint32_t oracle_mask = kOracleAll;
};

struct Failure {
  /// "shards", "batch", "flowcache", "backend", "oncache" or "invariant".
  std::string oracle;
  std::string detail;
};

struct CaseResult {
  std::vector<Failure> failures;
  [[nodiscard]] bool clean() const { return failures.empty(); }
  /// True if any failure belongs to `oracle`.
  [[nodiscard]] bool failed(const std::string& oracle) const;
  [[nodiscard]] std::string report() const;
};

/// Runs the paired shapes for `spec` and returns every divergence and
/// invariant violation found.  Deterministic: same spec, same result.
[[nodiscard]] CaseResult run_case(const CaseSpec& spec);

}  // namespace nestv::fuzz
