// World execution: one FuzzPlan run under one RunShape.
//
// run_world() builds the full simulated datacenter a plan describes —
// conductor, one testbed per machine, the ToR fabric, the flows — drives
// the plan's traffic waves to quiescence, applies the scheduled actions at
// the drained wave boundaries, and distils the execution into two digests:
//
//   strict    every counter the world exposes (per-stack forwarding stats,
//             netfilter traversals, conntrack sizes, bridge floods, FDB
//             sizes, flowcache stats, per-flow latencies, engine event
//             totals, the final clock).  Two runs that must be
//             bit-identical (same timing model, different execution shape)
//             compare strict digests.
//   semantic  application outcomes only (per-flow transactions and
//             delivered bytes).  Runs with different timing models
//             (batching on/off, flowcache on/off) compare semantic
//             digests: latency may move, delivered work may not.
//
// The wave machinery is what makes the action schedule sound: a wave is
// count-bounded (each flow performs a fixed number of transactions or
// sends a fixed number of messages), so the world reaches true engine
// idle after every wave, and actions apply at a quiescent instant that is
// the same world state in every paired run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/digest.hpp"
#include "fuzz/plan.hpp"
#include "sim/time.hpp"

namespace nestv::fuzz {

/// The execution shape of one run: everything the differential oracles
/// vary while holding the plan fixed.
struct RunShape {
  int shards = 1;
  unsigned workers = 1;
  /// Forces the conductor's scalar-fallback windows instead of the
  /// per-pair lookahead matrix the world's wires feed it.  Pure execution
  /// shape: windows change, deliveries must not.
  bool uniform_window = false;
  /// Round-robins the fabric's spine tier across shards instead of
  /// stacking it on shard 0 (FabricConfig::distribute_spines).  Placement
  /// is invisible in the results by the keyed-delivery contract.
  bool distribute_spines = true;
  std::uint32_t batch = 1;    ///< CostModel::batch_size
  std::uint32_t napi = 0;     ///< overrides napi_budget when non-zero
  sim::Duration kick = -1;    ///< overrides virtio_kick when >= 0
  bool flowcache = false;
  /// Pod fragments run net::FastPathStack instead of the full stack.  The
  /// backend oracle compares this shape's *semantic* digest against the
  /// baseline: delivered work must match even though the compact pipeline
  /// has no netfilter/GRO and different per-packet costs.
  bool fastpath_pods = false;
  /// Enables the ONCache encap/decap fast path on every overlay flow's
  /// caches.  The oncache oracle compares this shape's *semantic* digest
  /// against the baseline: cached encap/decap moves timing, not outcomes.
  bool oncache = false;
  std::string label;          ///< for failure reports ("A", "B", ...)
};

struct WorldResult {
  Digest strict;
  Digest semantic;
  /// In-world invariant violations: wave failed to quiesce, deployment
  /// timed out, stale flowcache entry, packet-pool leak on teardown.
  std::vector<std::string> invariant_failures;
  /// False when the run aborted early (deployment/quiesce failure);
  /// digests are then partial and must not be compared.
  bool completed = false;
};

/// Runs the plan under `shape`.  `flow_mask` / `action_mask` select which
/// flows and actions participate (bit k = plan.flows[k] / plan.actions[k]);
/// the minimizer shrinks a failure by clearing bits.  Masks must be
/// identical across the runs an oracle compares.
[[nodiscard]] WorldResult run_world(const FuzzPlan& plan,
                                    const RunShape& shape,
                                    std::uint64_t flow_mask = ~0ULL,
                                    std::uint64_t action_mask = ~0ULL);

}  // namespace nestv::fuzz
