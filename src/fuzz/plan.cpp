#include "fuzz/plan.hpp"

#include <sstream>

#include "sim/rng.hpp"

namespace nestv::fuzz {
namespace {

/// Sub-stream id for plan generation (Rng::of_stream).
constexpr std::uint64_t kPlanStream = 0x66757a7aULL;  // "fuzz"
/// Separate sub-stream for the two-tier-topology draw: consuming it does
/// not advance kPlanStream, so plans that stay flat — including every
/// existing corpus seed — are bit-identical to what this stream predates.
constexpr std::uint64_t kTopoStream = 0x746f706fULL;  // "topo"
/// Separate sub-stream for the conductor execution shape (window mode,
/// spine placement): consuming it advances nothing else, so every plan
/// field that predates it is bit-identical under every seed.
constexpr std::uint64_t kExecStream = 0x65786563ULL;  // "exec"
/// Separate sub-stream for the appended overlay flow: plans that predate
/// the overlay fuzz coverage — every existing corpus seed — draw nothing
/// from it, so their generated plans are bit-identical.
constexpr std::uint64_t kOverlayStream = 0x6f766c79ULL;  // "ovly"

}  // namespace

const char* to_string(FlowMode m) {
  switch (m) {
    case FlowMode::kNatStream: return "nat-stream";
    case FlowMode::kBrFusionRr: return "brfusion-rr";
    case FlowMode::kHostloRr: return "hostlo-rr";
    case FlowMode::kOverlayRr: return "overlay-rr";
  }
  return "?";
}

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kAddDropRule: return "add-drop-rule";
    case ActionKind::kAddNoiseRules: return "add-noise-rules";
    case ActionKind::kRemoveNoiseRules: return "remove-noise-rules";
    case ActionKind::kFdbFlush: return "fdb-flush";
    case ActionKind::kConntrackGc: return "conntrack-gc";
    case ActionKind::kNicUnplug: return "nic-unplug";
  }
  return "?";
}

FuzzPlan generate_plan(std::uint64_t seed) {
  sim::Rng rng = sim::Rng::of_stream(seed, kPlanStream);
  FuzzPlan plan;
  plan.seed = seed;

  // ---- topology --------------------------------------------------------
  plan.machines = rng.chance(0.2) ? 4 : int(rng.uniform_int(2, 3));
  plan.waves = int(rng.uniform_int(1, 3));
  if (plan.machines == 4) {
    // Largest topologies sometimes run on a two-tier fabric: two racks of
    // two under two spines, so cross-rack flows exercise the ECMP
    // tie-break and proxy ARP under every oracle.
    sim::Rng topo = sim::Rng::of_stream(seed, kTopoStream);
    if (topo.chance(0.5)) {
      plan.machines_per_rack = 2;
      plan.spines = 2;
    }
  }

  plan.costs = sim::CostModel{};
  {
    // Small capacities put eviction pressure on the flowcache runs;
    // standing rules scale the per-packet hook scans.  Both are part of
    // the plan, so every paired run shares them.
    const std::uint32_t caps[] = {4, 16, 64, 4096};
    plan.costs.flowcache_capacity = caps[rng.uniform_int(0, 3)];
    const int rules[] = {0, 6, 12};
    plan.costs.nf_standing_rules = rules[rng.uniform_int(0, 2)];
  }

  // ---- flows -----------------------------------------------------------
  // A collision group is two cloned BrFusion RR flows: distinct client
  // machines (hence distinct shards in the alt-shards run), one server
  // machine, identical bytes, the same start instant.  Their kick-off
  // requests traverse identical client-side paths, so they reach the
  // shared fabric in the same nanosecond — the tie the keyed wire
  // delivery exists to order, and the only traffic pattern that can make
  // the injected unkeyed-delivery bug observable.
  const bool collision_group = plan.machines >= 3 && rng.chance(0.7);
  const int n_flows = collision_group ? int(rng.uniform_int(2, 4))
                                      : int(rng.uniform_int(1, 4));
  for (int k = 0; k < n_flows; ++k) {
    FlowPlan f;
    const std::uint64_t m = rng.uniform_int(0, 2);
    f.mode = m == 0   ? FlowMode::kNatStream
             : m == 1 ? FlowMode::kBrFusionRr
                      : FlowMode::kHostloRr;
    f.srv_machine = int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
    if (f.mode == FlowMode::kHostloRr) {
      f.cli_machine = f.srv_machine;  // Hostlo is intra-host
    } else {
      f.cli_machine =
          (f.srv_machine +
           1 + int(rng.uniform_int(0, std::uint64_t(plan.machines - 2)))) %
          plan.machines;
    }
    f.srv_port = std::uint16_t(5000 + k);
    f.cli_port = std::uint16_t(20000 + k);
    f.msg_bytes = f.mode == FlowMode::kNatStream
                      ? std::uint32_t(rng.uniform_int(1024, 4096))
                      : std::uint32_t(rng.uniform_int(64, 512));
    f.wave_work.resize(std::size_t(plan.waves));
    bool any = false;
    for (auto& w : f.wave_work) {
      w = std::uint32_t(rng.uniform_int(0, 8));
      any = any || w > 0;
    }
    if (!any) f.wave_work[0] = std::uint32_t(rng.uniform_int(1, 8));
    f.collision_prone = rng.chance(0.5);
    if (f.collision_prone) {
      // Think times quantized to the fabric wire latency, so concurrent
      // flows land same-nanosecond frames on shared devices.
      f.think_quantum = std::uint64_t(plan.costs.fabric_hop_latency);
      f.think_slots = std::uint32_t(rng.uniform_int(0, 3));
    } else {
      f.think_quantum = 1;
      f.think_slots = std::uint32_t(rng.uniform_int(500, 4500));
    }
    plan.flows.push_back(std::move(f));
  }
  if (collision_group) {
    const int srv = int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
    const std::uint32_t bytes = std::uint32_t(rng.uniform_int(64, 512));
    const std::uint32_t slots = std::uint32_t(rng.uniform_int(0, 3));
    for (int k = 0; k < 2; ++k) {
      FlowPlan& f = plan.flows[std::size_t(k)];
      f.mode = FlowMode::kBrFusionRr;
      f.srv_machine = srv;
      f.cli_machine = (srv + 1 + k) % plan.machines;
      f.msg_bytes = bytes;
      f.collision_prone = true;
      f.think_quantum = std::uint64_t(plan.costs.fabric_hop_latency);
      f.think_slots = slots;
      for (auto& w : f.wave_work) {
        if (w == 0) w = std::uint32_t(rng.uniform_int(1, 8));
      }
    }
  }

  // ---- actions (wave boundaries exist only with >= 2 waves) ------------
  if (plan.waves >= 2) {
    const int n_actions =
        rng.chance(0.85) ? int(rng.uniform_int(1, 4)) : 0;
    for (int a = 0; a < n_actions; ++a) {
      ActionPlan act;
      act.boundary = int(rng.uniform_int(0, std::uint64_t(plan.waves - 2)));
      const double pick = rng.next_double();
      if (pick < 0.30) {
        // DROP a UDP flow that still has traffic after the boundary, on
        // the host stack that forwards it (BrFusion only; see header).
        act.kind = ActionKind::kAddDropRule;
        act.flow = -1;
        for (int k = 0; k < n_flows; ++k) {
          const FlowPlan& f = plan.flows[std::size_t(k)];
          if (f.mode != FlowMode::kBrFusionRr) continue;
          bool later = false;
          for (int w = act.boundary + 1; w < plan.waves; ++w) {
            later = later || f.wave_work[std::size_t(w)] > 0;
          }
          if (later) {
            act.flow = k;
            break;
          }
        }
        if (act.flow < 0) {  // no candidate: degrade to GC
          act.kind = ActionKind::kConntrackGc;
          act.machine =
              int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
        }
      } else if (pick < 0.45) {
        act.kind = ActionKind::kAddNoiseRules;
        act.machine =
            int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
        act.count = int(rng.uniform_int(1, 8));
      } else if (pick < 0.55) {
        act.kind = ActionKind::kRemoveNoiseRules;
        act.machine =
            int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
      } else if (pick < 0.70) {
        act.kind = ActionKind::kFdbFlush;
        act.machine =
            int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
      } else if (pick < 0.90) {
        act.kind = ActionKind::kConntrackGc;
        act.machine =
            int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
      } else {
        // Unplug a pod NIC; the flow is retired first (no work after the
        // boundary) so the action only exercises teardown paths.
        act.kind = ActionKind::kNicUnplug;
        act.flow = -1;
        for (int k = 0; k < n_flows; ++k) {
          if (plan.flows[std::size_t(k)].mode == FlowMode::kBrFusionRr) {
            act.flow = k;
            break;
          }
        }
        if (act.flow >= 0) {
          FlowPlan& f = plan.flows[std::size_t(act.flow)];
          for (int w = act.boundary + 1; w < plan.waves; ++w) {
            f.wave_work[std::size_t(w)] = 0;
          }
        } else {
          act.kind = ActionKind::kConntrackGc;
          act.machine =
              int(rng.uniform_int(0, std::uint64_t(plan.machines - 1)));
        }
      }
      plan.actions.push_back(act);
    }
  }

  // ---- execution-shape draws ------------------------------------------
  plan.alt_shards = int(rng.uniform_int(2, std::uint64_t(plan.machines)));
  plan.alt_workers = unsigned(rng.uniform_int(1, 4));
  {
    const std::uint32_t napis[] = {1, 2, 3, 8};
    plan.hostile_napi = napis[rng.uniform_int(0, 3)];
    const sim::Duration kicks[] = {1, 50, 2000, 99999};
    plan.hostile_kick = kicks[rng.uniform_int(0, 3)];
    const std::uint32_t batches[] = {8, 16, 32, 64};
    plan.batch = batches[rng.uniform_int(0, 3)];
  }

  // ---- appended overlay flow (dedicated sub-stream) ---------------------
  // Drawn entirely from kOverlayStream, after every kPlanStream draw, so
  // all pre-overlay plans are unchanged.  The flow is intra-machine (two
  // VMs, one VXLAN overlay between their uplinks) and its waves all carry
  // work: wave 0 populates the oncache, later waves observe invalidation.
  {
    sim::Rng ov = sim::Rng::of_stream(seed, kOverlayStream);
    if (ov.chance(0.4)) {
      FlowPlan f;
      f.mode = FlowMode::kOverlayRr;
      f.srv_machine =
          int(ov.uniform_int(0, std::uint64_t(plan.machines - 1)));
      f.cli_machine = f.srv_machine;  // the overlay spans VMs, not machines
      f.srv_port = std::uint16_t(5000 + plan.flows.size());
      f.cli_port = std::uint16_t(20000 + plan.flows.size());
      f.msg_bytes = std::uint32_t(ov.uniform_int(64, 512));
      f.wave_work.resize(std::size_t(plan.waves));
      for (auto& w : f.wave_work) w = std::uint32_t(ov.uniform_int(1, 8));
      f.think_quantum = 1;
      f.think_slots = std::uint32_t(ov.uniform_int(500, 4500));
      const int flow_index = int(plan.flows.size());
      plan.flows.push_back(std::move(f));
      // Small oncache capacities put eviction pressure on the cached runs;
      // only overlay-carrying plans redraw the knob, so every other plan
      // keeps the default cost model.
      const std::uint32_t caps[] = {4, 64, 4096};
      plan.costs.oncache_capacity = caps[ov.uniform_int(0, 2)];
      if (plan.waves >= 2 && ov.chance(0.75)) {
        // VXLAN-datagram DROP on the server VM's INPUT chain: overlay
        // traffic halts at the boundary, and the rule edit must flush the
        // cached oncache ingress paths (the oncache oracle's target).
        ActionPlan act;
        act.kind = ActionKind::kAddDropRule;
        act.boundary =
            int(ov.uniform_int(0, std::uint64_t(plan.waves - 2)));
        act.flow = flow_index;
        plan.actions.push_back(act);
      }
    }
  }

  // ---- conductor execution shape (dedicated sub-stream) -----------------
  // Mostly the per-pair matrix with distributed spines (the production
  // configuration); the scalar-window and stacked-spine legacy modes stay
  // in rotation so their code paths keep differential coverage.
  {
    sim::Rng ex = sim::Rng::of_stream(seed, kExecStream);
    plan.alt_uniform_window = ex.chance(0.25);
    plan.alt_spread_spines = ex.chance(0.75);
  }
  return plan;
}

std::string FuzzPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " machines=" << machines;
  if (machines_per_rack > 0) {
    os << " racks-of=" << machines_per_rack << " spines=" << spines;
  }
  os << " waves=" << waves
     << " fc_cap=" << costs.flowcache_capacity
     << " standing=" << costs.nf_standing_rules
     << " alt_shards=" << alt_shards << " alt_workers=" << alt_workers
     << " alt_uniform_window=" << alt_uniform_window
     << " alt_spread_spines=" << alt_spread_spines
     << " hostile_napi=" << hostile_napi << " hostile_kick=" << hostile_kick
     << " batch=" << batch << "\n";
  for (std::size_t k = 0; k < flows.size(); ++k) {
    const FlowPlan& f = flows[k];
    os << "  flow" << k << ": " << to_string(f.mode) << " srv=m"
       << f.srv_machine << " cli=m" << f.cli_machine << " bytes="
       << f.msg_bytes << " think=" << f.think_quantum << "x0.."
       << f.think_slots << (f.collision_prone ? " collision-prone" : "")
       << " work=[";
    for (std::size_t w = 0; w < f.wave_work.size(); ++w) {
      os << (w ? "," : "") << f.wave_work[w];
    }
    os << "]\n";
  }
  for (std::size_t a = 0; a < actions.size(); ++a) {
    const ActionPlan& act = actions[a];
    os << "  action" << a << ": " << to_string(act.kind) << " @boundary"
       << act.boundary << " flow=" << act.flow << " machine=" << act.machine
       << " count=" << act.count << "\n";
  }
  return os.str();
}

}  // namespace nestv::fuzz
