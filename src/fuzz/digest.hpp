// Ordered key/value digest of one world execution.
//
// A Digest is the unit the differential oracles compare: every counter the
// world exposes, keyed by a stable name, in a stable order.  Two runs that
// must be equivalent produce Digests compared entry-by-entry, and the first
// differing key names the exact counter that diverged — which is what the
// minimizer and the corpus-test emitter report, instead of an opaque hash
// mismatch.
//
// Doubles are compared bit-for-bit (std::bit_cast to uint64), matching the
// repo's EXPECT_BITS_EQ convention: a reordered floating-point accumulation
// must not hide behind ULP tolerance.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nestv::fuzz {

class Digest {
 public:
  void add(std::string name, std::uint64_t value) {
    entries_.emplace_back(std::move(name), value);
  }
  void add_i64(std::string name, std::int64_t value) {
    entries_.emplace_back(std::move(name),
                          static_cast<std::uint64_t>(value));
  }
  /// Bit-exact double entry.
  void add_f64(std::string name, double value);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
  entries() const {
    return entries_;
  }

  /// FNV-1a over names and values; a cheap whole-digest fingerprint.
  [[nodiscard]] std::uint64_t hash() const;

  /// Empty string when equal; otherwise "key: <a> vs <b>" for the first
  /// differing entry (or a length/name mismatch description).
  [[nodiscard]] std::string first_difference(const Digest& other) const;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

}  // namespace nestv::fuzz
