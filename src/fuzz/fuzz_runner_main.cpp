// fuzz_runner: drive the scenario fuzzer over a seed range.
//
// Normal mode scans seeds and exits non-zero if any oracle or invariant
// fails; --minimize additionally shrinks each failure and emits a
// self-contained regression test into the corpus directory.
//
// --inject-bug {shards|lookahead|batch|flowcache|faststack|oncache} flips
// the matching test hook and
// INVERTS the exit semantics: the run succeeds (exit 0) only if at least
// one seed in the range makes the oracle detect the injected divergence.
// This is how CI proves the fuzzer can actually catch the bug classes it
// exists for.
//
// Usage:
//   fuzz_runner [--seeds A..B] [--time-budget SECONDS] [--minimize]
//               [--out-dir DIR] [--inject-bug NAME] [--quiet]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/plan.hpp"
#include "sim/test_hooks.hpp"

namespace {

struct Options {
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 50;  // exclusive
  double time_budget = 0;       // seconds; 0 = unlimited
  bool minimize = false;
  bool quiet = false;
  std::string out_dir = "tests/fuzz_corpus";
  std::string inject;  // "", "shards", "lookahead", "batch", "flowcache",
                       // "faststack", "oncache"
};

bool parse_seeds(const std::string& arg, Options& opt) {
  const auto dots = arg.find("..");
  if (dots == std::string::npos) return false;
  try {
    opt.seed_begin = std::stoull(arg.substr(0, dots));
    opt.seed_end = std::stoull(arg.substr(dots + 2));
  } catch (...) {
    return false;
  }
  return opt.seed_end >= opt.seed_begin;
}

[[noreturn]] void usage_error(const char* msg) {
  std::fprintf(stderr,
               "fuzz_runner: %s\n"
               "usage: fuzz_runner [--seeds A..B] [--time-budget S] "
               "[--minimize] [--out-dir DIR] [--inject-bug "
               "shards|lookahead|batch|flowcache|faststack|oncache] "
               "[--quiet]\n",
               msg);
  std::exit(2);
}

bool apply_injection(const std::string& name) {
  namespace hooks = nestv::sim::test_hooks;
  if (name == "shards") {
    hooks::unkeyed_wire_delivery = true;
  } else if (name == "lookahead") {
    hooks::lookahead_matrix_overrun = true;
  } else if (name == "batch") {
    hooks::force_virtio_batching = true;
  } else if (name == "flowcache") {
    hooks::skip_flowcache_rule_invalidation = true;
  } else if (name == "faststack") {
    hooks::faststack_dup_udp_delivery = true;
  } else if (name == "oncache") {
    hooks::skip_oncache_rule_invalidation = true;
  } else {
    return false;
  }
  return true;
}

std::uint32_t injection_oracle_mask(const std::string& name) {
  if (name == "shards") return nestv::fuzz::kOracleShards;
  if (name == "lookahead") return nestv::fuzz::kOracleShards;
  if (name == "batch") return nestv::fuzz::kOracleBatch;
  if (name == "flowcache") return nestv::fuzz::kOracleFlowcache;
  if (name == "faststack") return nestv::fuzz::kOracleBackend;
  if (name == "oncache") return nestv::fuzz::kOracleOncache;
  return nestv::fuzz::kOracleAll;
}

/// The oracle expected to catch an injected bug class (the fast-path
/// duplication bug surfaces in the "backend" oracle; a lookahead-matrix
/// overrun surfaces as a shards-oracle divergence).
std::string injection_oracle_name(const std::string& name) {
  if (name == "faststack") return "backend";
  if (name == "lookahead") return "shards";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value");
      return argv[++i];
    };
    if (arg == "--seeds") {
      if (!parse_seeds(value(), opt)) usage_error("bad --seeds range");
    } else if (arg == "--time-budget") {
      opt.time_budget = std::atof(value().c_str());
    } else if (arg == "--minimize") {
      opt.minimize = true;
    } else if (arg == "--out-dir") {
      opt.out_dir = value();
    } else if (arg == "--inject-bug") {
      opt.inject = value();
      if (injection_oracle_mask(opt.inject) == nestv::fuzz::kOracleAll) {
        usage_error("unknown --inject-bug");
      }
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      usage_error(("unknown argument: " + arg).c_str());
    }
  }

  nestv::sim::test_hooks::reset();
  if (!opt.inject.empty()) apply_injection(opt.inject);

  const auto wall0 = std::chrono::steady_clock::now();
  std::uint64_t ran = 0, failed = 0, detected = 0;
  for (std::uint64_t seed = opt.seed_begin; seed < opt.seed_end; ++seed) {
    if (opt.time_budget > 0) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - wall0)
                                 .count();
      if (elapsed >= opt.time_budget) {
        std::printf("time budget exhausted after %llu seeds\n",
                    static_cast<unsigned long long>(ran));
        break;
      }
    }
    nestv::fuzz::CaseSpec spec;
    spec.seed = seed;
    // Injection runs confine themselves to the oracle built to catch the
    // injected class — detections elsewhere would be accidental.
    spec.oracle_mask = injection_oracle_mask(opt.inject);
    const nestv::fuzz::CaseResult result = nestv::fuzz::run_case(spec);
    ++ran;
    if (result.clean()) continue;

    ++failed;
    if (!opt.inject.empty() &&
        result.failed(injection_oracle_name(opt.inject))) {
      ++detected;
    }
    if (!opt.quiet) {
      std::printf("seed %llu FAILED:\n%s%s",
                  static_cast<unsigned long long>(seed),
                  result.report().c_str(),
                  nestv::fuzz::generate_plan(seed).describe().c_str());
    }
    if (opt.minimize) {
      const auto min = nestv::fuzz::minimize(spec);
      if (min.has_value()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.out_dir, ec);
        const std::string path = opt.out_dir + "/seed_" +
                                 std::to_string(seed) + "_" + min->oracle +
                                 ".cpp";
        if (nestv::fuzz::emit_corpus_test(min->spec, min->oracle,
                                          opt.inject, path)) {
          std::printf(
              "seed %llu minimized (%d runs) -> %s\n  flows=0x%llx "
              "actions=0x%llx: %s\n",
              static_cast<unsigned long long>(seed), min->runs,
              path.c_str(),
              static_cast<unsigned long long>(min->spec.flow_mask),
              static_cast<unsigned long long>(min->spec.action_mask),
              min->detail.c_str());
        } else {
          std::fprintf(stderr, "seed %llu: cannot write %s\n",
                       static_cast<unsigned long long>(seed), path.c_str());
        }
      }
    }
    // One demonstrated detection is the injection run's goal; keep the
    // smoke job fast.
    if (!opt.inject.empty() && detected > 0) break;
  }

  if (!opt.inject.empty()) {
    std::printf("injected '%s': %llu/%llu seeds diverged\n",
                opt.inject.c_str(),
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(ran));
    return detected > 0 ? 0 : 1;
  }
  std::printf("%llu seeds, %llu failed\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(failed));
  return failed == 0 ? 0 : 1;
}
