#include "fuzz/oracle.hpp"

#include <sstream>

#include "fuzz/world.hpp"

namespace nestv::fuzz {
namespace {

/// Collects a run's invariant violations as "invariant" failures.
void absorb_invariants(const WorldResult& r, const std::string& label,
                       CaseResult& out) {
  for (const std::string& msg : r.invariant_failures) {
    out.failures.push_back({"invariant", "[" + label + "] " + msg});
  }
}

/// Strict comparison; both runs must have completed.
void check_strict(const WorldResult& a, const std::string& la,
                  const WorldResult& b, const std::string& lb,
                  const std::string& oracle, CaseResult& out) {
  if (!a.completed || !b.completed) return;  // invariants already reported
  const std::string diff = a.strict.first_difference(b.strict);
  if (!diff.empty()) {
    out.failures.push_back(
        {oracle, la + " vs " + lb + " strict divergence at " + diff});
  }
}

void check_semantic(const WorldResult& a, const std::string& la,
                    const WorldResult& b, const std::string& lb,
                    const std::string& oracle, CaseResult& out) {
  if (!a.completed || !b.completed) return;
  const std::string diff = a.semantic.first_difference(b.semantic);
  if (!diff.empty()) {
    out.failures.push_back(
        {oracle, la + " vs " + lb + " semantic divergence at " + diff});
  }
}

}  // namespace

bool CaseResult::failed(const std::string& oracle) const {
  for (const Failure& f : failures) {
    if (f.oracle == oracle) return true;
  }
  return false;
}

std::string CaseResult::report() const {
  std::ostringstream os;
  for (const Failure& f : failures) {
    os << "  [" << f.oracle << "] " << f.detail << "\n";
  }
  return os.str();
}

CaseResult run_case(const CaseSpec& spec) {
  CaseResult out;
  const FuzzPlan plan = generate_plan(spec.seed);
  auto run = [&](const RunShape& shape) {
    return run_world(plan, shape, spec.flow_mask, spec.action_mask);
  };

  // The reference run every oracle compares against: sequential engine,
  // unbatched datapath, no flowcache, default burst knobs.
  RunShape base;
  base.label = "A";
  const WorldResult a = run(base);
  absorb_invariants(a, "A", out);

  if (spec.oracle_mask & kOracleShards) {
    RunShape b;
    b.shards = plan.alt_shards;
    b.workers = plan.alt_workers;
    // Conductor shape draws: window mode and spine placement vary with
    // the seed; neither may be visible in the strict digest.
    b.uniform_window = plan.alt_uniform_window;
    b.distribute_spines = plan.alt_spread_spines;
    b.label = "B";
    const WorldResult r = run(b);
    absorb_invariants(r, "B(shards=" + std::to_string(b.shards) + ")", out);
    check_strict(a, "A(shards=1)",
                 r, "B(shards=" + std::to_string(b.shards) + ")", "shards",
                 out);
  }

  if (spec.oracle_mask & kOracleBatch) {
    // batch_size==1 is the master switch: the burst knobs must be dead.
    RunShape c;
    c.napi = plan.hostile_napi;
    c.kick = plan.hostile_kick;
    c.label = "C";
    const WorldResult rc = run(c);
    absorb_invariants(rc, "C(batch=1,hostile-knobs)", out);
    check_strict(a, "A(batch=1)", rc, "C(batch=1,hostile-knobs)", "batch",
                 out);

    RunShape d;
    d.batch = plan.batch;
    d.label = "D";
    const WorldResult rd = run(d);
    absorb_invariants(rd, "D(batch=" + std::to_string(d.batch) + ")", out);
    check_semantic(a, "A(batch=1)",
                   rd, "D(batch=" + std::to_string(d.batch) + ")", "batch",
                   out);
    // In-process re-runnability: the batched shape reproduces itself.
    const WorldResult rd2 = run(d);
    absorb_invariants(rd2, "D-rerun", out);
    check_strict(rd, "D", rd2, "D-rerun", "batch", out);
  }

  if (spec.oracle_mask & kOracleFlowcache) {
    RunShape e;
    e.flowcache = true;
    e.label = "E";
    const WorldResult re = run(e);
    absorb_invariants(re, "E(flowcache)", out);
    check_semantic(a, "A(fc=off)", re, "E(fc=on)", "flowcache", out);

    // Everything at once, strictly reproduced by its sequential twin.
    RunShape f;
    f.shards = plan.alt_shards;
    f.workers = plan.alt_workers;
    f.uniform_window = plan.alt_uniform_window;
    f.distribute_spines = plan.alt_spread_spines;
    f.batch = plan.batch;
    f.flowcache = true;
    f.label = "F";
    const WorldResult rf = run(f);
    absorb_invariants(rf, "F(all-on)", out);
    RunShape f1 = f;
    f1.shards = 1;
    f1.workers = 1;
    f1.label = "F1";
    const WorldResult rf1 = run(f1);
    absorb_invariants(rf1, "F1(all-on,shards=1)", out);
    check_strict(rf, "F(shards=" + std::to_string(f.shards) + ")",
                 rf1, "F1(shards=1)", "flowcache", out);
  }

  if (spec.oracle_mask & kOracleBackend) {
    // Pods on the compact fast-path stack: no netfilter, fused pipeline,
    // different per-packet costs — application outcomes must not move.
    RunShape g;
    g.fastpath_pods = true;
    g.label = "G";
    const WorldResult rg = run(g);
    absorb_invariants(rg, "G(fastpath-pods)", out);
    check_semantic(a, "A(fullstack)", rg, "G(fastpath-pods)", "backend",
                   out);
    // And the fast-path shape is itself deterministic.
    const WorldResult rg2 = run(g);
    absorb_invariants(rg2, "G-rerun", out);
    check_strict(rg, "G", rg2, "G-rerun", "backend", out);
  }

  if (spec.oracle_mask & kOracleOncache) {
    // Only plans whose masked flow set carries an overlay flow have a
    // cache to enable; everywhere else the shape equals the baseline.
    bool has_overlay = false;
    for (std::size_t k = 0; k < plan.flows.size(); ++k) {
      has_overlay = has_overlay ||
                    ((spec.flow_mask >> k & 1) != 0 &&
                     plan.flows[k].mode == FlowMode::kOverlayRr);
    }
    if (has_overlay) {
      RunShape h;
      h.oncache = true;
      h.label = "H";
      const WorldResult rh = run(h);
      absorb_invariants(rh, "H(oncache)", out);
      check_semantic(a, "A(oncache=off)", rh, "H(oncache=on)", "oncache",
                     out);
      // And the cached shape is itself deterministic.
      const WorldResult rh2 = run(h);
      absorb_invariants(rh2, "H-rerun", out);
      check_strict(rh, "H", rh2, "H-rerun", "oncache", out);
    }
  }

  return out;
}

}  // namespace nestv::fuzz
