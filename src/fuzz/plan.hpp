// Structured scenario generation: one 64-bit seed -> one FuzzPlan.
//
// A plan fixes everything that must be IDENTICAL across the paired runs of
// a seed: the topology (machines, flow endpoints, datapath mixes), the
// action schedule (rule edits, FDB flushes, conntrack GC, NIC unplug —
// applied only at quiescent wave boundaries), the traffic itself
// (count-bounded waves, so runs with different timing still agree on
// application-level outcomes), and the base cost model.  The execution
// shape a run varies — shard count, worker threads, batch budget, burst
// knobs, flowcache — lives in world.hpp's RunShape, NOT here; the oracles
// in oracle.cpp pair shapes over one plan.
//
// Soundness rules baked into generation (they keep every oracle
// false-positive-free):
//   * DROP rules target only UDP flows (a dropped TCP flow retransmits
//     forever and the wave never quiesces) and only flows a netfilter
//     chain actually sees: BrFusion flows on the forwarding host's
//     FORWARD chain, and Overlay flows as a VXLAN-datagram drop (UDP
//     dport 4789) on the server VM's INPUT chain — the rule edit that
//     must invalidate cached oncache ingress paths.
//   * NIC unplug targets only flows with no traffic scheduled after the
//     unplug boundary, so it never changes application outcomes — only the
//     teardown/invalidation paths it exists to exercise.
//   * Conntrack GC always uses idle_timeout 0 (reap everything idle),
//     which is independent of the timing differences between paired runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"

namespace nestv::fuzz {

enum class FlowMode : std::uint8_t {
  kNatStream,   ///< published-port container, cross-machine TCP via DNAT
  kBrFusionRr,  ///< pod NIC on the host bridge, cross-machine UDP RR
  kHostloRr,    ///< cross-VM pod on one machine, UDP RR over Hostlo
  kOverlayRr,   ///< cross-VM VXLAN overlay on one machine, UDP RR
};

[[nodiscard]] const char* to_string(FlowMode m);

struct FlowPlan {
  FlowMode mode = FlowMode::kBrFusionRr;
  int srv_machine = 0;
  int cli_machine = 1;
  std::uint16_t srv_port = 0;
  std::uint16_t cli_port = 0;
  std::uint32_t msg_bytes = 256;
  /// Transactions (RR) or messages (stream) per wave; 0 = silent wave.
  std::vector<std::uint32_t> wave_work;
  /// RR think time = quantum * U(0, slots).  Collision-prone flows use a
  /// coarse quantum (a multiple of the wire latency) so same-nanosecond
  /// arrivals at shared devices actually happen — those collisions are
  /// what the keyed wire delivery exists to order, and what the injected
  /// unkeyed-delivery bug needs to be observable.
  std::uint64_t think_quantum = 1;
  std::uint32_t think_slots = 4000;
  /// Extra start offset ordinal; collision-prone flows share offset 0.
  bool collision_prone = false;
};

enum class ActionKind : std::uint8_t {
  kAddDropRule,      ///< DROP on the forwarding host's FORWARD chain
  kAddNoiseRules,    ///< match-nothing ACCEPT rules (invalidation churn)
  kRemoveNoiseRules, ///< remove previously added noise rules
  kFdbFlush,         ///< flush a machine bridge's FDB + the fabric FDB
  kConntrackGc,      ///< reap all idle conntrack entries on a machine
  kNicUnplug,        ///< hot-unplug a retired flow's pod NIC
};

[[nodiscard]] const char* to_string(ActionKind k);

struct ActionPlan {
  ActionKind kind = ActionKind::kConntrackGc;
  /// Applied at the quiescent boundary after wave `boundary`.
  int boundary = 0;
  int flow = -1;     ///< target flow (kAddDropRule, kNicUnplug)
  int machine = -1;  ///< target machine (kFdbFlush, kConntrackGc, noise)
  int count = 0;     ///< noise-rule count
};

struct FuzzPlan {
  std::uint64_t seed = 0;
  int machines = 2;
  /// 0 = flat PhysicalSwitch (the historical topology).  > 0 = two-tier
  /// vmm::HierarchicalFabric with racks of this size under `spines`
  /// spines, putting the deterministic ECMP tie-break under all four
  /// oracles.  Drawn from a dedicated sub-stream so every flat-topology
  /// draw (and thus every existing corpus seed's plan) is unchanged.
  int machines_per_rack = 0;
  int spines = 0;
  int waves = 1;
  std::vector<FlowPlan> flows;
  std::vector<ActionPlan> actions;
  /// Base cost model, shared verbatim by every paired run except the
  /// shape-controlled knobs (batch_size, napi_budget, virtio_kick).
  sim::CostModel costs;

  // ---- shape draws for this seed (consumed by the oracle pairing) ------
  int alt_shards = 2;        ///< shards oracle: shards=alt vs shards=1
  unsigned alt_workers = 2;
  /// Conductor shape of the sharded runs: scalar-fallback windows vs the
  /// per-pair lookahead matrix, and the spine tier stacked on shard 0 vs
  /// round-robined across shards.  Drawn from a dedicated sub-stream so
  /// every pre-existing seed's plan (and alt_shards etc. above) is
  /// unchanged.
  bool alt_uniform_window = false;
  bool alt_spread_spines = true;
  std::uint32_t hostile_napi = 3;      ///< batch=1 knob pair
  sim::Duration hostile_kick = 99999;  ///< batch=1 knob pair
  std::uint32_t batch = 16;            ///< batched semantic run

  /// One-line-per-field human dump (plan-determinism tests, repro logs).
  [[nodiscard]] std::string describe() const;
};

/// Pure function of the seed: two calls with one seed yield one plan.
[[nodiscard]] FuzzPlan generate_plan(std::uint64_t seed);

}  // namespace nestv::fuzz
