#include "fuzz/world.hpp"

#include <functional>
#include <memory>
#include <utility>

#include "container/runtime.hpp"
#include "core/cni.hpp"
#include "net/packet_pool.hpp"
#include "scenario/overlay.hpp"
#include "scenario/testbed.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_conductor.hpp"
#include "vmm/datacenter.hpp"
#include "vmm/fabric.hpp"

namespace nestv::fuzz {
namespace {

/// Sub-stream ids (Rng::of_stream) for world-side seed derivation.
constexpr std::uint64_t kMachineStreamBase = 0x2000ULL;  // + machine ordinal
constexpr std::uint64_t kFlowStreamBase = 0x3000ULL;     // + flow ordinal

/// Count-bounded UDP request/response loop (the wave unit of RR flows).
/// Unlike the macro scenario's open-ended RrDriver, `remaining` bounds the
/// wave: the driver issues exactly `remaining` requests and the engine
/// goes idle when the last reply (or drop) lands.
struct RrFlow {
  net::StackBackend* cli_stack = nullptr;
  net::StackBackend* srv_stack = nullptr;
  sim::SerialResource* cli_app = nullptr;
  sim::SerialResource* srv_app = nullptr;
  sim::Engine* cli_engine = nullptr;
  net::Ipv4Address cli_ip, srv_service_ip, srv_local_ip;
  std::uint16_t cli_port = 0, srv_port = 0;
  std::uint32_t bytes = 0;
  std::uint64_t think_quantum = 1;
  std::uint32_t think_slots = 0;
  sim::Rng rng{1};
  sim::TimePoint issued_at = 0;
  std::uint32_t remaining = 0;
  std::uint64_t transactions = 0;
  std::uint64_t latency_ns_sum = 0;
  bool bound = false;

  void issue() {
    issued_at = cli_engine->now();
    cli_stack->udp_send(cli_ip, cli_port, srv_service_ip, srv_port, bytes,
                        cli_app);
  }
};

void bind_rr(const std::shared_ptr<RrFlow>& d) {
  d->srv_stack->udp_bind(
      d->srv_port, d->srv_app,
      [d](net::StackBackend::UdpDelivery& del) {
        d->srv_stack->udp_send(d->srv_local_ip, d->srv_port, del.src_ip,
                               del.src_port, d->bytes, d->srv_app);
      });
  d->cli_stack->udp_bind(
      d->cli_port, d->cli_app, [d](net::StackBackend::UdpDelivery&) {
        d->latency_ns_sum += d->cli_engine->now() - d->issued_at;
        ++d->transactions;
        if (d->remaining == 0) return;
        --d->remaining;
        const sim::Duration think =
            sim::Duration(d->think_quantum *
                          d->rng.uniform_int(0, d->think_slots));
        d->cli_engine->schedule_in(think, [d] { d->issue(); });
      });
  d->bound = true;
}

/// Count-bounded TCP sender: each wave queues `remaining` messages; the
/// connection stays open across waves (closing is not needed for
/// quiescence — with everything ACKed the stack holds no timers).
struct StreamFlow {
  net::StackBackend* cli_stack = nullptr;
  sim::SerialResource* cli_app = nullptr;
  sim::Engine* cli_engine = nullptr;
  net::Ipv4Address cli_ip, srv_service_ip;
  std::uint16_t srv_port = 0;
  std::uint32_t msg_bytes = 0;
  std::shared_ptr<net::TcpSocket> sock;
  std::shared_ptr<std::function<void()>> chain;
  std::shared_ptr<std::uint64_t> delivered =
      std::make_shared<std::uint64_t>(0);
  std::uint32_t remaining = 0;

  void pump_wave() {
    if (sock == nullptr) {
      sock = std::make_shared<net::TcpSocket>(cli_stack->tcp_connect(
          cli_ip, srv_service_ip, srv_port, cli_app));
      auto c = chain;
      sock->set_on_connected([c] { (*c)(); });
    } else {
      (*chain)();
    }
  }
};

container::Runtime::AttachFn immediate_attach() {
  return [](container::Pod::Fragment&,
            std::function<void(container::Runtime::AttachOutcome)> done) {
    done(container::Runtime::AttachOutcome{true, -1, net::Ipv4Address{}});
  };
}

void boot(scenario::Testbed& bed, container::Pod::Fragment& frag,
          const std::string& name, container::Runtime::AttachFn attach,
          container::Container** out) {
  bed.runtime_for(*frag.vm).create_container(
      frag, container::Image{name + "-image"}, name, std::move(attach),
      [out](container::Container& c, sim::Duration) { *out = &c; });
}

/// One instantiated flow: the plan's FlowPlan plus the live objects.
struct LiveFlow {
  const FlowPlan* plan = nullptr;
  int index = 0;
  scenario::Testbed* srv_bed = nullptr;
  scenario::Testbed* cli_bed = nullptr;
  container::Pod::Fragment* srv_frag = nullptr;
  container::Pod::Fragment* cli_frag = nullptr;  // Hostlo/Overlay only
  container::Container* srv_container = nullptr;
  container::Container* cli_container = nullptr;  // Hostlo/Overlay only
  vmm::Vm* srv_vm = nullptr;
  std::vector<core::HostloCni::EndpointInfo> hostlo_eps;
  std::unique_ptr<scenario::OverlayNetwork> overlay;  // Overlay only
  std::shared_ptr<RrFlow> rr;
  std::shared_ptr<StreamFlow> stream;

  [[nodiscard]] bool ready() const {
    if (srv_container == nullptr) return false;
    if (plan->mode == FlowMode::kOverlayRr) {
      return cli_container != nullptr;
    }
    if (plan->mode != FlowMode::kHostloRr) return true;
    return cli_container != nullptr && hostlo_eps.size() == 2;
  }
};

}  // namespace

WorldResult run_world(const FuzzPlan& plan, const RunShape& shape,
                      std::uint64_t flow_mask, std::uint64_t action_mask) {
  WorldResult out;
  const std::int64_t pool_before = net::PacketPool::live_nodes();
  {
    sim::CostModel costs = plan.costs;
    costs.batch_size = shape.batch;
    if (shape.napi != 0) costs.napi_budget = shape.napi;
    if (shape.kick >= 0) costs.virtio_kick = shape.kick;

    const bool two_tier = plan.machines_per_rack > 0;
    const sim::Duration lookahead =
        two_tier ? vmm::HierarchicalFabric::min_link_latency(costs)
                 : costs.fabric_hop_latency;
    sim::ShardedConductor conductor(shape.shards, lookahead, shape.workers);
    conductor.set_uniform_window(shape.uniform_window);

    // ---- machines + fabric ----------------------------------------------
    const int m_count = plan.machines;
    std::vector<std::unique_ptr<scenario::Testbed>> beds;
    beds.reserve(std::size_t(m_count));
    for (int i = 0; i < m_count; ++i) {
      scenario::TestbedConfig tc;
      tc.seed = sim::Rng::mix(plan.seed,
                              kMachineStreamBase + std::uint64_t(i));
      tc.costs = costs;
      tc.engine = &conductor.shard(i * shape.shards / m_count);
      tc.machine.name = "host" + std::to_string(i);
      tc.machine.bridge_subnet = net::Ipv4Cidr(
          net::Ipv4Address(192, 168, std::uint8_t(100 + i), 0), 24);
      beds.push_back(std::make_unique<scenario::Testbed>(tc));
    }
    // Flat learning-bridge fabric or the plan's two-tier ToR/spine fabric
    // (multi-path: the oracles then also cover the ECMP tie-break).
    std::unique_ptr<vmm::PhysicalSwitch> flat;
    std::unique_ptr<vmm::HierarchicalFabric> tiered;
    if (two_tier) {
      vmm::FabricConfig fc;
      fc.machines_per_rack = plan.machines_per_rack;
      fc.spines = plan.spines;
      fc.distribute_spines = shape.distribute_spines;
      tiered = std::make_unique<vmm::HierarchicalFabric>(
          conductor.shard(0), beds[0]->costs(), fc, &conductor);
      for (auto& bed : beds) tiered->attach(bed->machine());
    } else {
      flat = std::make_unique<vmm::PhysicalSwitch>(
          conductor.shard(0), beds[0]->costs(),
          net::Ipv4Cidr(net::Ipv4Address(10, 10, 0, 0), 24), &conductor);
      for (auto& bed : beds) flat->attach(bed->machine());
    }

    // Every stack in construction order (digest + invariant iteration) and
    // the per-machine stack sets (conntrack GC targets).
    std::vector<std::pair<std::string, net::StackBackend*>> all_stacks;
    std::vector<std::vector<net::StackBackend*>> machine_stacks{
        std::size_t(m_count)};
    for (int i = 0; i < m_count; ++i) {
      net::StackBackend* hs = &beds[std::size_t(i)]->machine().stack();
      all_stacks.emplace_back("host" + std::to_string(i), hs);
      machine_stacks[std::size_t(i)].push_back(hs);
    }
    auto track_stack = [&](const std::string& name, int machine,
                           net::StackBackend* s) {
      all_stacks.emplace_back(name, s);
      machine_stacks[std::size_t(machine)].push_back(s);
    };

    // ---- flows -----------------------------------------------------------
    // Two phases: populate the vector first, then build the world objects,
    // because boot()/attach_pod() capture addresses of LiveFlow members
    // and those must survive until the async callbacks fire.
    std::vector<LiveFlow> flows;
    flows.reserve(plan.flows.size());
    for (int k = 0; k < int(plan.flows.size()); ++k) {
      if ((flow_mask >> k & 1) == 0) continue;
      LiveFlow f;
      f.plan = &plan.flows[std::size_t(k)];
      f.index = k;
      f.srv_bed = beds[std::size_t(f.plan->srv_machine)].get();
      f.cli_bed = beds[std::size_t(f.plan->cli_machine)].get();
      flows.push_back(std::move(f));
    }
    const net::StackMode pod_mode = shape.fastpath_pods
                                        ? net::StackMode::kFastPath
                                        : net::StackMode::kFull;
    for (LiveFlow& f : flows) {
      const FlowPlan& fp = *f.plan;
      const std::string fname = "f" + std::to_string(f.index);
      switch (fp.mode) {
        case FlowMode::kNatStream: {
          f.srv_vm = &f.srv_bed->create_vm_with_uplink(fname + "-srv");
          track_stack(fname + "-srv-vm", fp.srv_machine, &f.srv_vm->stack());
          auto& pod = f.srv_bed->create_pod(fname + "-pod");
          f.srv_frag = &pod.add_fragment(*f.srv_vm, pod_mode);
          track_stack(fname + "-srv-pod", fp.srv_machine,
                      f.srv_frag->stack.get());
          core::Cni::Options publish;
          publish.publish_ports = {fp.srv_port};
          boot(*f.srv_bed, *f.srv_frag, fname + "-srv",
               f.srv_bed->nat_cni().attach_fn(publish), &f.srv_container);
          break;
        }
        case FlowMode::kBrFusionRr: {
          f.srv_vm = &f.srv_bed->create_vm_with_uplink(fname + "-srv");
          track_stack(fname + "-srv-vm", fp.srv_machine, &f.srv_vm->stack());
          auto& pod = f.srv_bed->create_pod(fname + "-pod");
          f.srv_frag = &pod.add_fragment(*f.srv_vm, pod_mode);
          track_stack(fname + "-srv-pod", fp.srv_machine,
                      f.srv_frag->stack.get());
          boot(*f.srv_bed, *f.srv_frag, fname + "-srv",
               f.srv_bed->brfusion_cni().attach_fn({}), &f.srv_container);
          break;
        }
        case FlowMode::kHostloRr: {
          vmm::Vm& vm_a = f.srv_bed->create_vm_with_uplink(fname + "-a");
          vmm::Vm& vm_b = f.srv_bed->create_vm_with_uplink(fname + "-b");
          track_stack(fname + "-a-vm", fp.srv_machine, &vm_a.stack());
          track_stack(fname + "-b-vm", fp.srv_machine, &vm_b.stack());
          auto& pod = f.srv_bed->create_pod(fname + "-pod");
          f.cli_frag = &pod.add_fragment(vm_a, pod_mode);
          f.srv_frag = &pod.add_fragment(vm_b, pod_mode);
          f.srv_vm = &vm_b;
          track_stack(fname + "-cli-pod", fp.srv_machine,
                      f.cli_frag->stack.get());
          track_stack(fname + "-srv-pod", fp.srv_machine,
                      f.srv_frag->stack.get());
          LiveFlow* fl = &f;
          f.srv_bed->hostlo_cni().attach_pod(
              pod, [fl](std::vector<core::HostloCni::EndpointInfo> eps) {
                fl->hostlo_eps = std::move(eps);
              });
          boot(*f.srv_bed, *f.cli_frag, fname + "-cli", immediate_attach(),
               &f.cli_container);
          boot(*f.srv_bed, *f.srv_frag, fname + "-srv", immediate_attach(),
               &f.srv_container);
          break;
        }
        case FlowMode::kOverlayRr: {
          vmm::Vm& vm_a = f.srv_bed->create_vm_with_uplink(fname + "-a");
          vmm::Vm& vm_b = f.srv_bed->create_vm_with_uplink(fname + "-b");
          track_stack(fname + "-a-vm", fp.srv_machine, &vm_a.stack());
          track_stack(fname + "-b-vm", fp.srv_machine, &vm_b.stack());
          f.overlay = std::make_unique<scenario::OverlayNetwork>(*f.srv_bed);
          auto& pod_a = f.srv_bed->create_pod(fname + "-poda");
          auto& pod_b = f.srv_bed->create_pod(fname + "-podb");
          f.cli_frag = &pod_a.add_fragment(vm_a, pod_mode);
          f.srv_frag = &pod_b.add_fragment(vm_b, pod_mode);
          f.srv_vm = &vm_b;
          track_stack(fname + "-cli-pod", fp.srv_machine,
                      f.cli_frag->stack.get());
          track_stack(fname + "-srv-pod", fp.srv_machine,
                      f.srv_frag->stack.get());
          LiveFlow* fl = &f;
          auto overlay_attach =
              [fl](container::Pod::Fragment& fragment,
                   std::function<void(container::Runtime::AttachOutcome)>
                       done) {
                const auto a = fl->overlay->attach(fragment);
                done(container::Runtime::AttachOutcome{true, a.ifindex,
                                                       a.ip});
              };
          boot(*f.srv_bed, *f.cli_frag, fname + "-cli", overlay_attach,
               &f.cli_container);
          boot(*f.srv_bed, *f.srv_frag, fname + "-srv", overlay_attach,
               &f.srv_container);
          break;
        }
      }
    }

    // ---- deployment ------------------------------------------------------
    const sim::Duration deploy_step = sim::milliseconds(10);
    const sim::TimePoint deploy_limit = sim::seconds(30);
    auto all_ready = [&flows] {
      for (const LiveFlow& f : flows) {
        if (!f.ready()) return false;
      }
      return true;
    };
    while (!all_ready()) {
      if (conductor.now() >= deploy_limit) {
        out.invariant_failures.push_back("deployment timed out");
        return out;
      }
      conductor.run_until(conductor.now() + deploy_step);
    }

    // Program the overlay L2->VTEP tables now that every member attached;
    // the oncache shape then flips the encap/decap fast path on.
    for (LiveFlow& f : flows) {
      if (f.overlay == nullptr) continue;
      f.overlay->finalize();
      if (shape.oncache) f.overlay->set_oncache_enabled(true);
    }

    if (shape.flowcache) {
      for (auto& [name, s] : all_stacks) s->set_flowcache(true);
    }

    // ---- driver setup ----------------------------------------------------
    for (LiveFlow& f : flows) {
      const FlowPlan& fp = *f.plan;
      const std::string fname = "f" + std::to_string(f.index);
      sim::Rng flow_rng = sim::Rng::of_stream(
          plan.seed, kFlowStreamBase + std::uint64_t(f.index));
      if (fp.mode == FlowMode::kNatStream) {
        auto d = std::make_shared<StreamFlow>();
        d->cli_stack = &f.cli_bed->machine().stack();
        d->cli_app = &f.cli_bed->machine().make_app_core(fname + "-cli");
        d->cli_engine = &f.cli_bed->engine();
        d->cli_ip = f.cli_bed->machine().bridge_ip();
        d->srv_service_ip = f.srv_vm->stack().iface_ip(
            f.srv_vm->stack().ifindex_of("eth0"));
        d->srv_port = fp.srv_port;
        d->msg_bytes = fp.msg_bytes;
        auto chain = std::make_shared<std::function<void()>>();
        d->chain = chain;
        StreamFlow* dp = d.get();
        *chain = [dp, chain] {
          if (dp->remaining == 0) return;
          --dp->remaining;
          dp->sock->send(dp->msg_bytes, [chain] { (*chain)(); });
        };
        auto delivered = d->delivered;
        f.srv_frag->stack->tcp_listen(
            fp.srv_port, f.srv_container->app_core(),
            [delivered](net::TcpSocket sock) {
              sock.set_on_receive(
                  [delivered](std::uint32_t n) { *delivered += n; });
            });
        f.stream = std::move(d);
      } else {
        auto d = std::make_shared<RrFlow>();
        if (fp.mode == FlowMode::kBrFusionRr) {
          d->cli_stack = &f.cli_bed->machine().stack();
          d->cli_app = &f.cli_bed->machine().make_app_core(fname + "-cli");
          d->cli_ip = f.cli_bed->machine().bridge_ip();
          d->srv_service_ip = f.srv_frag->stack->iface_ip(
              f.srv_frag->stack->ifindex_of("eth0"));
          d->srv_local_ip = d->srv_service_ip;
        } else if (fp.mode == FlowMode::kOverlayRr) {
          d->cli_stack = f.cli_frag->stack.get();
          d->cli_app = f.cli_container->app_core();
          d->cli_ip = f.cli_frag->stack->iface_ip(
              f.cli_frag->stack->ifindex_of("ov0"));
          d->srv_service_ip = f.srv_frag->stack->iface_ip(
              f.srv_frag->stack->ifindex_of("ov0"));
          d->srv_local_ip = d->srv_service_ip;
        } else {
          d->cli_stack = f.cli_frag->stack.get();
          d->cli_app = f.cli_container->app_core();
          d->cli_ip = f.hostlo_eps[0].ip;
          d->srv_service_ip = f.hostlo_eps[1].ip;
          d->srv_local_ip = f.hostlo_eps[1].ip;
        }
        d->srv_stack = f.srv_frag->stack.get();
        d->srv_app = f.srv_container->app_core();
        d->cli_engine = &f.cli_bed->engine();
        d->cli_port = fp.cli_port;
        d->srv_port = fp.srv_port;
        d->bytes = fp.msg_bytes;
        d->think_quantum = fp.think_quantum;
        d->think_slots = fp.think_slots;
        d->rng = flow_rng;
        bind_rr(d);
        f.rr = std::move(d);
      }
    }

    // ---- waves -----------------------------------------------------------
    // Quiesce = two consecutive rounds with every shard idle: the second
    // round flushes any mail a shard posted during its final window, so
    // "idle" means queues AND mailboxes are empty.
    auto quiesce = [&conductor, &out](int wave) {
      const sim::TimePoint limit = conductor.now() + sim::seconds(5);
      int idle_rounds = 0;
      while (idle_rounds < 2) {
        conductor.run_until(conductor.now() + sim::milliseconds(1));
        bool idle = true;
        for (int s = 0; s < conductor.shards(); ++s) {
          idle = idle && conductor.shard(s).idle();
        }
        idle_rounds = idle ? idle_rounds + 1 : 0;
        if (conductor.now() >= limit) {
          out.invariant_failures.push_back(
              "wave " + std::to_string(wave) + " did not quiesce");
          return false;
        }
      }
      return true;
    };

    for (int w = 0; w < plan.waves; ++w) {
      const sim::TimePoint base = conductor.now() + sim::milliseconds(1);
      for (LiveFlow& f : flows) {
        const std::uint32_t work = f.plan->wave_work[std::size_t(w)];
        if (work == 0) continue;
        // Collision-prone flows share the exact start instant; the rest
        // spread out like the macro scenario's flows.
        sim::TimePoint start = base;
        if (!f.plan->collision_prone) {
          start += std::uint64_t(f.index) * sim::microseconds(200);
        }
        sim::Engine* eng = f.stream != nullptr ? f.stream->cli_engine
                                               : f.rr->cli_engine;
        if (f.stream != nullptr) {
          StreamFlow* d = f.stream.get();
          d->remaining = work;
          eng->schedule_at(start, [d] { d->pump_wave(); });
        } else {
          RrFlow* d = f.rr.get();
          d->remaining = work - 1;  // the kick-off request is one of them
          eng->schedule_at(start, [d] { d->issue(); });
        }
      }
      if (!quiesce(w)) return out;

      // ---- boundary actions ---------------------------------------------
      for (int a = 0; a < int(plan.actions.size()); ++a) {
        if ((action_mask >> a & 1) == 0) continue;
        const ActionPlan& act = plan.actions[std::size_t(a)];
        if (act.boundary != w) continue;
        if (act.flow >= 0 && (flow_mask >> act.flow & 1) == 0) continue;
        switch (act.kind) {
          case ActionKind::kAddDropRule: {
            const FlowPlan& fp = plan.flows[std::size_t(act.flow)];
            if (fp.mode == FlowMode::kOverlayRr) {
              // Drop VXLAN datagrams at the server VM's INPUT chain: the
              // overlay flow halts, and the rule edit must flush any
              // cached oncache ingress paths on that VM.
              net::Rule rule;
              rule.match.proto = net::L4Proto::kUdp;
              rule.match.dport = 4789;
              rule.target = net::TargetKind::kDrop;
              rule.comment = "fuzz-ovdrop-" + std::to_string(act.flow);
              for (LiveFlow& f : flows) {
                if (f.index != act.flow) continue;
                f.srv_vm->stack().netfilter().add_filter_rule(
                    net::Hook::kInput, rule);
              }
              break;
            }
            net::Rule rule;
            rule.match.proto = net::L4Proto::kUdp;
            rule.match.dport = fp.srv_port;
            rule.target = net::TargetKind::kDrop;
            rule.comment = "fuzz-drop-" + std::to_string(act.flow);
            beds[std::size_t(fp.srv_machine)]
                ->machine()
                .stack()
                .netfilter()
                .add_filter_rule(net::Hook::kForward, rule);
            break;
          }
          case ActionKind::kAddNoiseRules: {
            auto& nf =
                beds[std::size_t(act.machine)]->machine().stack().netfilter();
            for (int i = 0; i < act.count; ++i) {
              net::Rule rule;
              rule.match.dst = net::Ipv4Cidr(
                  net::Ipv4Address(203, 0, 113, std::uint8_t(i)), 32);
              rule.target = net::TargetKind::kAccept;
              rule.comment = "fuzz-noise";
              nf.add_filter_rule(net::Hook::kForward, rule);
            }
            break;
          }
          case ActionKind::kRemoveNoiseRules:
            beds[std::size_t(act.machine)]
                ->machine()
                .stack()
                .netfilter()
                .remove_filter_rules(net::Hook::kForward, "fuzz-noise");
            break;
          case ActionKind::kFdbFlush:
            beds[std::size_t(act.machine)]->machine().bridge().fdb().flush();
            // The two-tier fabric has no FDB to flush: FabricSwitch
            // forwards on static MAC bindings (no learning).
            if (flat != nullptr) flat->fabric().fdb().flush();
            break;
          case ActionKind::kConntrackGc:
            for (net::StackBackend* s :
                 machine_stacks[std::size_t(act.machine)]) {
              s->conntrack_gc(0);
            }
            break;
          case ActionKind::kNicUnplug: {
            for (LiveFlow& f : flows) {
              if (f.index != act.flow) continue;
              net::StackBackend& ps = *f.srv_frag->stack;
              ps.detach_interface(ps.ifindex_of("eth0"));
            }
            break;
          }
        }
      }
    }

    // ---- invariants ------------------------------------------------------
    for (int s = 0; s < conductor.shards(); ++s) {
      if (!conductor.shard(s).idle()) {
        out.invariant_failures.push_back(
            "shard " + std::to_string(s) + " not idle after final wave");
      }
    }
    // Every cached fast path must still have a live conntrack backing (a
    // read-only sweep: the predicate always declines to invalidate).
    // Only meaningful on backends that carry both subsystems.
    for (auto& [name, s] : all_stacks) {
      if (!s->has_netfilter() || !s->has_flowcache()) continue;
      const net::Netfilter& nf = s->netfilter();
      std::size_t stale = 0;
      s->flow_cache().invalidate_if(
          [&nf, &stale](const net::flowcache::FlowKey&,
                        const net::flowcache::CachedPath& p) {
            if (p.ct_id != 0 && !nf.conn_alive(p.ct_id)) ++stale;
            return false;
          });
      if (stale > 0) {
        out.invariant_failures.push_back(
            name + ": " + std::to_string(stale) +
            " flowcache entries outlive their conntrack backing");
      }
    }

    // ---- digests ---------------------------------------------------------
    for (LiveFlow& f : flows) {
      const std::string p = "flow" + std::to_string(f.index) + ".";
      const std::uint64_t txns =
          f.rr != nullptr ? f.rr->transactions : 0;
      const std::uint64_t bytes =
          f.stream != nullptr ? *f.stream->delivered : 0;
      out.semantic.add(p + "transactions", txns);
      out.semantic.add(p + "bytes", bytes);
      out.strict.add(p + "transactions", txns);
      out.strict.add(p + "bytes", bytes);
      if (f.rr != nullptr) {
        out.strict.add(p + "latency_ns", f.rr->latency_ns_sum);
      }
      if (f.overlay != nullptr) {
        // Oncache evidence: hit/invalidation totals pin the fast path's
        // behaviour in the strict digest (0 on every cache-off shape).
        const auto t = f.overlay->oncache_totals();
        out.strict.add(p + "oncache_eg_hits", t.egress_hits);
        out.strict.add(p + "oncache_in_hits", t.ingress_hits);
        out.strict.add(p + "oncache_inval", t.invalidations);
        out.strict.add(p + "oncache_entries", t.entries);
      }
    }
    for (auto& [name, s] : all_stacks) {
      const std::string p = name + ".";
      out.strict.add(p + "forwarded", s->packets_forwarded());
      out.strict.add(p + "delivered", s->packets_delivered());
      out.strict.add(p + "dropped", s->packets_dropped());
      out.strict.add(p + "arp_tx", s->arp_requests_sent());
      // Capability-gated counters read as 0 on backends without the
      // subsystem so the strict key set stays identical across shapes.
      const bool nf = s->has_netfilter();
      const bool fc = s->has_flowcache();
      out.strict.add(p + "hook_traversals",
                     nf ? s->netfilter().hook_traversals() : 0);
      out.strict.add(p + "conntrack",
                     nf ? s->netfilter().conntrack_size() : 0);
      out.strict.add(p + "fc_size", fc ? s->flow_cache().size() : 0);
      out.strict.add(p + "fc_hits", fc ? s->flow_cache().hits() : 0);
      out.strict.add(p + "fc_misses", fc ? s->flow_cache().misses() : 0);
      out.strict.add(p + "fc_invalidations",
                     fc ? s->flow_cache().invalidations() : 0);
    }
    for (int i = 0; i < m_count; ++i) {
      const std::string p = "bridge" + std::to_string(i) + ".";
      net::Bridge& b = beds[std::size_t(i)]->machine().bridge();
      out.strict.add(p + "floods", b.floods());
      out.strict.add(p + "fdb", b.fdb().size());
    }
    if (flat != nullptr) {
      out.strict.add("fabric.floods", flat->fabric().floods());
      out.strict.add("fabric.fdb", flat->fabric().fdb().size());
    } else {
      // Per-switch forwarding evidence: uplink_tx pins every ECMP choice,
      // so a path that moved between paired runs diverges the digest even
      // if application outcomes happen to agree.
      auto add_switch = [&out](const std::string& p, net::FabricSwitch& sw) {
        out.strict.add(p + "arp_proxied", sw.arp_proxied());
        out.strict.add(p + "unknown_dropped", sw.unknown_unicast_dropped());
        const auto& tx = sw.uplink_tx();
        for (std::size_t u = 0; u < tx.size(); ++u) {
          out.strict.add(p + "uplink" + std::to_string(u), tx[u]);
        }
      };
      for (std::size_t r = 0; r < tiered->rack_count(); ++r) {
        add_switch("tor" + std::to_string(r) + ".", tiered->tor(r));
      }
      for (std::size_t s = 0; s < tiered->spine_count(); ++s) {
        add_switch("spine" + std::to_string(s) + ".", tiered->spine(s));
      }
    }
    out.strict.add("events_total", conductor.total_events());
    out.strict.add("end_time", std::uint64_t(conductor.now()));
    out.completed = true;

    // Break the send-chain's self-reference before teardown.
    for (LiveFlow& f : flows) {
      if (f.stream != nullptr && f.stream->chain != nullptr) {
        *f.stream->chain = nullptr;
      }
    }
  }
  // ---- leak-on-teardown oracle ------------------------------------------
  const std::int64_t pool_after = net::PacketPool::live_nodes();
  if (pool_after != pool_before) {
    out.invariant_failures.push_back(
        "packet pool leaked " + std::to_string(pool_after - pool_before) +
        " nodes across teardown");
  }
  return out;
}

}  // namespace nestv::fuzz
