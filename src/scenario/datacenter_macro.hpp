// Multi-machine macro scenario: live traffic on the Google-trace
// population across a sharded datacenter.
//
// The fig 9 cost study uses the synthetic Google trace only for
// bin-packing; this scenario puts real datapath traffic on that
// population.  A fabric of `machines` PhysicalMachines (each its own
// Testbed, pinned to a conductor shard) carries three kinds of flows,
// chosen round-robin over the trace's placed VMs:
//   * NAT     — a published-port container, dialed cross-machine through
//               the fabric and DNAT (TCP stream);
//   * BrFusion — a pod NIC directly on the host bridge, reached
//               cross-machine by subnet route (UDP request/response);
//   * Hostlo  — a cross-VM pod on one machine, traffic over the modified
//               loopback TAP (UDP request/response; Hostlo cannot span
//               machines by construction).
// Flows drive themselves with callback chains (no Netperf: nothing may
// run an engine behind the conductor's back) and carry per-flow jittered
// think times and message sizes, so the traffic mix is irregular like a
// real tenant population.  Same-nanosecond frame collisions at shared
// devices still happen at this scale; the keyed wire-delivery order
// (Device::connect_wire, DESIGN.md section 10) is what keeps shards=1
// and shards=N bit-identical — the property bench/abl_sharding gates.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/testbed.hpp"
#include "sim/sharded_conductor.hpp"

namespace nestv::scenario {

struct DatacenterMacroConfig {
  std::uint64_t seed = 7;
  int machines = 8;
  /// Conductor shards; machines spread evenly over them.  1 = the plain
  /// single-engine run every other value must reproduce bit-for-bit.
  int shards = 1;
  /// Worker-thread cap for the conductor (0 = hardware concurrency).
  unsigned max_workers = 0;
  /// Google-trace users scheduled (bin-packed) to size the population.
  int trace_users = 48;
  /// Live flows instantiated on the placement.
  int flows = 24;
  std::uint32_t rr_bytes = 256;
  std::uint32_t stream_msg_bytes = 4096;
  sim::Duration measure_window = sim::milliseconds(200);
  sim::CostModel costs = {};
};

struct DatacenterMacroResult {
  // ---- simulated outputs: identical for every shards/max_workers ------
  double rr_transactions = 0;
  double rr_latency_ns_sum = 0;
  double stream_bytes_delivered = 0;
  /// Flow-order-weighted digest of the per-flow results; any reordering
  /// or divergence between runs shows up here even if the sums collide.
  double flow_digest = 0;
  double pods_scheduled = 0;
  double vms_bought = 0;
  double placement_cost_per_hour = 0;
  std::uint64_t events_total = 0;

  // ---- execution shape: reporting only, varies with shards/workers ----
  int shards = 1;
  unsigned worker_threads = 1;
  std::vector<std::uint64_t> per_shard_events;
  std::uint64_t epochs = 0;
  std::uint64_t cross_posts = 0;
  /// Epochs whose drain barrier was skipped (no cross-shard mail posted).
  std::uint64_t fused_epochs = 0;
  /// Mail items delivered out of cross-shard boxes.
  std::uint64_t drained_posts = 0;
  /// Per-shard count of epoch windows that executed zero events.
  std::vector<std::uint64_t> idle_windows;
  /// Per-worker barrier wait (wall clock: host-dependent, never gated).
  std::vector<std::uint64_t> barrier_wait_ns;
  double wall_seconds = 0;  ///< host wall clock of the traffic phase
};

[[nodiscard]] DatacenterMacroResult run_datacenter_macro(
    const DatacenterMacroConfig& config);

}  // namespace nestv::scenario
