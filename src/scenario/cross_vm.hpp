// Cross-VM intra-pod communication scenarios: the Hostlo evaluation
// topology (section 5.3).  The two halves of a pod (a client container and
// a server container) talk over:
//   kSameNode   - both containers in one pod in one VM, via the pod's
//                 localhost interface (the baseline).
//   kHostlo     - pod disaggregated over two VMs, endpoints of one Hostlo.
//   kNatCrossVm - two separate bridge+NAT containers, server port published
//                 (what you get today without overlay networking).
//   kOverlay    - Docker-Overlay-style VXLAN network between the VMs.
#pragma once

#include <memory>

#include "scenario/overlay.hpp"
#include "scenario/testbed.hpp"

namespace nestv::scenario {

enum class CrossVmMode { kSameNode, kHostlo, kNatCrossVm, kOverlay };

[[nodiscard]] const char* to_string(CrossVmMode m);

struct CrossVm {
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<OverlayNetwork> overlay;  ///< kOverlay only
  Endpoint client;  ///< container A (sends requests)
  Endpoint server;  ///< container B (serves)
  container::Pod* pod = nullptr;
};

/// Builds the scenario and advances the clock until both containers run.
/// `oncache_mode` (kOverlay only) selects whether the overlay bridges are
/// CachedBridge+OnCache (attached, disabled — the default) or the plain
/// pre-oncache topology; abl_oncache gates the two at delta zero.
[[nodiscard]] CrossVm make_cross_vm(
    CrossVmMode mode, std::uint16_t service_port, TestbedConfig config = {},
    OverlayNetwork::OncacheMode oncache_mode =
        OverlayNetwork::OncacheMode::kAttached);

}  // namespace nestv::scenario
