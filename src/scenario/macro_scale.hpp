// Macro-scale datacenter scenario: flow churn on a hierarchical fabric.
//
// datacenter_macro (scenario/datacenter_macro.hpp) runs a fixed set of
// long-lived flows on a flat ToR — the steady-state picture.  This
// scenario models the part a real datacenter adds on top: *churn*.  A
// population of machines under a two-tier fabric (vmm::HierarchicalFabric,
// racks -> ToRs -> spines with deterministic per-flow ECMP) carries an
// open-loop stream of short-lived flows: each arrives at a precomputed
// instant (independent of completions — open loop), runs a handful of
// UDP request/response transactions from a fresh client port against a
// long-lived server pod, and departs.  Every arrival inserts conntrack
// entries (and flowcache entries — the fast path is on) at each stack on
// its path; every departure leaves them to idle out under periodic
// conntrack GC.  That insert/evict pressure at 10^5..10^6 flows is what
// the compact per-flow state (net/conn_table.hpp, the slab FlowCache) is
// for, and this scenario measures it: bytes of conntrack+flowcache state
// per tracked flow at peak occupancy is a first-class output.
//
// Server pods follow the paper's deployment modes, chosen per flow:
//   * NAT      — published-port container behind DNAT (UDP RR cross-rack),
//                plus a few long-lived TCP streams through the same path;
//   * BrFusion — pod NIC on the host bridge (UDP RR cross-rack);
//   * Hostlo   — cross-VM pod on one machine (UDP RR, intra-host by
//                construction);
//   * Overlay  — cross-VM pod pair tunneled through a per-pair VXLAN
//                overlay (UDP RR, VM-to-VM through the host bridge),
//                riding the ONCache-style encap/decap fast path when
//                oncache_enabled (off by default: the knob defaults to
//                zero pairs, leaving the run byte-identical).
// Placement follows the Google-like trace, as in datacenter_macro.
//
// Determinism: identical simulated outputs at any shards/max_workers
// (bench/abl_macro_scale gates shards=16 == shards=1 with delta 0).  The
// three mechanisms are the keyed wire delivery order, the flow-pure ECMP
// hash, and strictly machine-local mutable state (per-machine accumulators
// merged in machine order after the run).
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/testbed.hpp"
#include "sim/sharded_conductor.hpp"

namespace nestv::scenario {

struct MacroScaleConfig {
  std::uint64_t seed = 11;
  int machines = 8;
  /// Conductor shards; 1 = the single-engine reference every other value
  /// must reproduce bit-for-bit.
  int shards = 1;
  unsigned max_workers = 0;

  // ---- fabric shape ----------------------------------------------------
  int machines_per_rack = 4;
  int spines = 2;

  // ---- population ------------------------------------------------------
  int trace_users = 32;
  /// Long-lived server pods per machine, alternating NAT / BrFusion
  /// (must be >= 2 so both modes exist everywhere).
  int server_pods_per_machine = 2;
  /// Cross-VM Hostlo pods per machine (0 disables the Hostlo flow mode).
  int hostlo_pairs_per_machine = 1;
  /// Cross-VM overlay (VXLAN) pod pairs per machine.  0 disables the
  /// overlay flow mode entirely and keeps the run byte-identical to the
  /// pre-overlay scenario.
  int overlay_pairs_per_machine = 0;
  /// Drive overlay pairs through the ONCache-style encap/decap fast path
  /// (ignored when overlay_pairs_per_machine == 0).
  bool oncache_enabled = true;

  // ---- churn -----------------------------------------------------------
  /// Ephemeral flows arriving open-loop over `arrival_window`.
  int flows = 2000;
  /// Mean request/response transactions per flow (jittered per flow).
  int flow_transactions = 3;
  std::uint32_t rr_bytes = 256;
  /// Long-lived NAT TCP streams riding along (bulk bytes under churn).
  int tcp_streams = 2;
  std::uint32_t stream_msg_bytes = 4096;

  sim::Duration arrival_window = sim::milliseconds(150);
  /// Extra time after the last arrival for in-flight flows to finish.
  sim::Duration drain = sim::milliseconds(50);
  /// Per-machine conntrack GC + state-sampling cadence.
  sim::Duration gc_interval = sim::milliseconds(20);
  /// Idle timeout handed to conntrack GC (well below arrival_window, so
  /// departed flows are actually reaped while the run is still going).
  sim::Duration conntrack_idle = sim::milliseconds(40);

  sim::CostModel costs = {};
};

struct MacroScaleResult {
  // ---- simulated outputs: identical for every shards/max_workers ------
  double flows_completed = 0;
  double rr_transactions = 0;
  double rr_latency_ns_sum = 0;
  double stream_bytes_delivered = 0;
  /// Flow-order-weighted digest; any divergence between execution modes
  /// shows up here even if the sums collide.
  double flow_digest = 0;
  /// Peak simultaneously-live ephemeral flows (computed from the exact
  /// arrival/completion instants after the run).
  std::uint64_t peak_concurrent_flows = 0;
  /// Sum over machines of each machine's peak tracked conntrack entries
  /// (host + server VM + pod stacks, sampled at every GC tick).
  std::uint64_t conntrack_peak_entries = 0;
  /// Conntrack + flowcache resident bytes at those per-machine peaks.
  std::uint64_t state_bytes_at_peak = 0;
  /// Decomposition of state_bytes_at_peak (same sampling instants).
  std::uint64_t conntrack_bytes_at_peak = 0;
  std::uint64_t flowcache_bytes_at_peak = 0;
  /// Live flowcache entries at those peaks (cached paths are
  /// per-direction, so this can exceed conntrack_peak_entries).
  std::uint64_t flowcache_entries_at_peak = 0;
  /// Overlay encap/decap cache state at each machine's own oncache
  /// occupancy peak (sampled at the same GC ticks; all zero when
  /// overlay_pairs_per_machine == 0 or the fast path is off).
  std::uint64_t oncache_entries_at_peak = 0;
  std::uint64_t oncache_bytes_at_peak = 0;
  /// Total encap + decap fast-path hits across all overlay caches.
  std::uint64_t oncache_hits = 0;
  /// state_bytes_at_peak / conntrack_peak_entries: bytes of per-flow
  /// state per tracked flow (the compact-state headline metric).
  double state_bytes_per_flow = 0;
  /// Entries reaped by periodic conntrack GC across all machines.
  std::uint64_t conntrack_gc_reaped = 0;
  double pods_scheduled = 0;
  double vms_bought = 0;
  double placement_cost_per_hour = 0;
  std::uint64_t events_total = 0;

  // ---- execution shape: reporting only, varies with shards/workers ----
  int shards = 1;
  unsigned worker_threads = 1;
  std::vector<std::uint64_t> per_shard_events;
  std::uint64_t epochs = 0;
  std::uint64_t cross_posts = 0;
  /// Epochs whose drain barrier was skipped because no shard posted
  /// cross-shard mail (sim/sharded_conductor.hpp fused-epoch protocol).
  std::uint64_t fused_epochs = 0;
  /// Mail items actually delivered out of cross-shard boxes (equals
  /// cross_posts once the run quiesces).
  std::uint64_t drained_posts = 0;
  /// Per-shard count of epoch windows that executed zero events.
  std::vector<std::uint64_t> idle_windows;
  /// Per-worker nanoseconds spent waiting at epoch barriers (wall clock:
  /// host-dependent, never gate it).
  std::vector<std::uint64_t> barrier_wait_ns;
  double wall_seconds = 0;
};

[[nodiscard]] MacroScaleResult run_macro_scale(const MacroScaleConfig& config);

}  // namespace nestv::scenario
