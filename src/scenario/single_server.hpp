// Single-server scenarios: the BrFusion evaluation topology (section 5.2).
//
// "For each solution, we place the benchmark server in a VM, and the client
// runs on different CPUs of the physical host."  Modes:
//   kNoCont   - no containerization: the server runs natively in the VM
//               (the baseline and performance target).
//   kNat      - vanilla nested: server in a container behind the guest
//               docker0 bridge + NAT, port published via DNAT.
//   kNatFlowCache - the same nested NAT wiring with the per-flow fast-path
//               cache enabled (src/net/flowcache): established flows skip
//               the hook/route/ARP chain on every hop.
//   kBrFusion - server in a container whose pod owns a hot-plugged NIC on
//               the host bridge (section 3).
#pragma once

#include <memory>
#include <string>

#include "scenario/testbed.hpp"

namespace nestv::scenario {

enum class ServerMode { kNoCont, kNat, kNatFlowCache, kBrFusion };

[[nodiscard]] const char* to_string(ServerMode m);

struct SingleServer {
  std::unique_ptr<Testbed> bed;
  Endpoint client;
  Endpoint server;
  vmm::Vm* vm = nullptr;
  container::Pod* pod = nullptr;              ///< null for kNoCont
  container::Container* srv_container = nullptr;  ///< null for kNoCont
  sim::Duration boot_duration = 0;            ///< fig 8's metric (0 = NoCont)
};

/// Builds the scenario and advances the clock until the deployment is
/// ready (container booted, networking attached).
[[nodiscard]] SingleServer make_single_server(ServerMode mode,
                                              std::uint16_t service_port,
                                              TestbedConfig config = {});

}  // namespace nestv::scenario
