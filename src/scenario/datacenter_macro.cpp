#include "scenario/datacenter_macro.hpp"

#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "orch/scheduler.hpp"
#include "trace/google_trace.hpp"
#include "vmm/datacenter.hpp"

namespace nestv::scenario {
namespace {

/// Sub-stream ids for Rng::of_stream / Rng::mix seed derivation.
constexpr std::uint64_t kTraceStream = 0x6d616372ULL;  // "macr"
constexpr std::uint64_t kFlowStreamBase = 0x1000ULL;   // + flow ordinal
constexpr std::uint64_t kMachineStreamBase = 0x2000ULL;  // + machine ordinal

/// UDP request/response loop driving itself on the client's engine.  The
/// think time between transactions is jittered from a per-flow RNG so
/// concurrent flows never collide on an exact nanosecond at a shared
/// resource (the determinism argument of the sharded conductor relies on
/// same-instant cross-shard/local ties not occurring).
struct RrDriver {
  net::StackBackend* cli_stack = nullptr;
  net::StackBackend* srv_stack = nullptr;
  sim::SerialResource* cli_app = nullptr;
  sim::SerialResource* srv_app = nullptr;
  sim::Engine* cli_engine = nullptr;
  net::Ipv4Address cli_ip, srv_service_ip, srv_local_ip;
  std::uint16_t cli_port = 0, srv_port = 0;
  std::uint32_t bytes = 0;
  sim::Rng rng{1};
  sim::TimePoint stop_at = 0;
  sim::TimePoint issued_at = 0;
  std::uint64_t transactions = 0;
  std::uint64_t latency_ns_sum = 0;

  void issue() {
    issued_at = cli_engine->now();
    cli_stack->udp_send(cli_ip, cli_port, srv_service_ip, srv_port, bytes,
                        cli_app);
  }
};

void start_rr(const std::shared_ptr<RrDriver>& d, sim::TimePoint start) {
  d->srv_stack->udp_bind(
      d->srv_port, d->srv_app,
      [d](net::StackBackend::UdpDelivery& del) {
        d->srv_stack->udp_send(d->srv_local_ip, d->srv_port, del.src_ip,
                               del.src_port, d->bytes, d->srv_app);
      });
  d->cli_stack->udp_bind(
      d->cli_port, d->cli_app, [d](net::StackBackend::UdpDelivery&) {
        d->latency_ns_sum += d->cli_engine->now() - d->issued_at;
        ++d->transactions;
        if (d->cli_engine->now() >= d->stop_at) return;
        const sim::Duration think = d->rng.uniform_int(500, 4500);
        d->cli_engine->schedule_in(think, [d] { d->issue(); });
      });
  d->cli_engine->schedule_at(start, [d] { d->issue(); });
}

/// TCP bulk sender keeping up to two windows queued (the Netperf stream
/// shape), rebuilt as a self-driving chain because nothing in a sharded
/// world may run an engine directly.
struct StreamDriver {
  net::StackBackend* cli_stack = nullptr;
  sim::SerialResource* cli_app = nullptr;
  sim::Engine* cli_engine = nullptr;
  net::Ipv4Address cli_ip, srv_service_ip;
  std::uint16_t srv_port = 0;
  std::uint32_t msg_bytes = 0;
  sim::TimePoint stop_at = 0;
  std::shared_ptr<net::TcpSocket> sock;
  std::shared_ptr<std::function<void()>> send_chain;
  std::shared_ptr<std::uint64_t> delivered =
      std::make_shared<std::uint64_t>(0);
  bool waiting = false;
};

void start_stream(const std::shared_ptr<StreamDriver>& d,
                  net::StackBackend& srv_stack,
                  sim::SerialResource& srv_app, sim::TimePoint start) {
  auto delivered = d->delivered;
  srv_stack.tcp_listen(d->srv_port, &srv_app,
                       [delivered](net::TcpSocket sock) {
                         sock.set_on_receive([delivered](std::uint32_t n) {
                           *delivered += n;
                         });
                       });
  d->cli_engine->schedule_at(start, [d] {
    d->sock = std::make_shared<net::TcpSocket>(d->cli_stack->tcp_connect(
        d->cli_ip, d->srv_service_ip, d->srv_port, d->cli_app));
    auto chain = std::make_shared<std::function<void()>>();
    d->send_chain = chain;
    const std::uint32_t high_water = 2 * 262144;
    *chain = [d, chain, high_water] {
      if (d->cli_engine->now() >= d->stop_at) return;
      if (d->sock->buffered() >= high_water) {
        d->waiting = true;
        return;
      }
      d->sock->send(d->msg_bytes, [chain] { (*chain)(); });
    };
    d->sock->set_on_writable([d, chain] {
      if (d->waiting) {
        d->waiting = false;
        (*chain)();
      }
    });
    d->sock->set_on_connected([chain] { (*chain)(); });
  });
}

enum class FlowMode { kNatStream, kBrFusionRr, kHostloRr };

struct Flow {
  FlowMode mode = FlowMode::kNatStream;
  Testbed* srv_bed = nullptr;
  Testbed* cli_bed = nullptr;
  container::Pod::Fragment* srv_frag = nullptr;
  container::Pod::Fragment* cli_frag = nullptr;  // Hostlo only
  container::Container* srv_container = nullptr;
  container::Container* cli_container = nullptr;  // Hostlo only
  vmm::Vm* srv_vm = nullptr;
  std::vector<core::HostloCni::EndpointInfo> hostlo_eps;
  std::uint16_t srv_port = 0, cli_port = 0;
  std::uint32_t msg_bytes = 0;
  std::shared_ptr<RrDriver> rr;
  std::shared_ptr<StreamDriver> stream;

  [[nodiscard]] bool ready() const {
    if (srv_container == nullptr) return false;
    if (mode != FlowMode::kHostloRr) return true;
    return cli_container != nullptr && hostlo_eps.size() == 2;
  }
};

container::Runtime::AttachFn immediate_attach() {
  return [](container::Pod::Fragment&,
            std::function<void(container::Runtime::AttachOutcome)> done) {
    done(container::Runtime::AttachOutcome{true, -1, net::Ipv4Address{}});
  };
}

void boot(Testbed& bed, container::Pod::Fragment& frag,
          const std::string& name, container::Runtime::AttachFn attach,
          container::Container** out) {
  bed.runtime_for(*frag.vm).create_container(
      frag, container::Image{name + "-image"}, name, std::move(attach),
      [out](container::Container& c, sim::Duration) { *out = &c; });
}

}  // namespace

DatacenterMacroResult run_datacenter_macro(
    const DatacenterMacroConfig& config) {
  if (config.machines < 2) {
    throw std::invalid_argument("datacenter macro needs >= 2 machines");
  }
  if (config.shards < 1 || config.shards > config.machines) {
    throw std::invalid_argument("shards must be in [1, machines]");
  }

  DatacenterMacroResult out;
  out.shards = config.shards;

  sim::ShardedConductor conductor(config.shards,
                                  config.costs.fabric_hop_latency,
                                  config.max_workers);
  out.worker_threads = conductor.worker_threads();

  // ---- the fabric: one testbed per machine, pinned to its shard -------
  const int m_count = config.machines;
  std::vector<std::unique_ptr<Testbed>> beds;
  beds.reserve(std::size_t(m_count));
  for (int i = 0; i < m_count; ++i) {
    TestbedConfig tc;
    tc.seed = sim::Rng::mix(config.seed,
                            kMachineStreamBase + std::uint64_t(i));
    tc.costs = config.costs;
    tc.engine = &conductor.shard(i * config.shards / m_count);
    tc.machine.name = "host" + std::to_string(i);
    tc.machine.bridge_subnet = net::Ipv4Cidr(
        net::Ipv4Address(192, 168, std::uint8_t(100 + i), 0), 24);
    beds.push_back(std::make_unique<Testbed>(tc));
  }
  vmm::PhysicalSwitch fabric(conductor.shard(0), beds[0]->costs(),
                             net::Ipv4Cidr(net::Ipv4Address(10, 10, 0, 0),
                                           24),
                             &conductor);
  for (auto& bed : beds) fabric.attach(bed->machine());

  // ---- the population: schedule the Google-like trace -----------------
  trace::TraceConfig tcfg;
  // Decoupled from machine seeds via the canonical sub-stream derivation.
  tcfg.seed = sim::Rng::mix(config.seed, kTraceStream);
  tcfg.users = config.trace_users;
  const auto users = trace::generate_google_like_trace(tcfg);
  orch::AwsM5Catalog catalog;
  orch::KubernetesScheduler scheduler(catalog);
  std::vector<int> vm_machine;  // placed VM ordinal -> physical machine
  for (const auto& user : users) {
    const orch::Placement placement = scheduler.schedule(user);
    out.pods_scheduled += double(user.pods.size());
    out.vms_bought += double(placement.vms.size());
    out.placement_cost_per_hour += placement.cost_per_hour();
    for (std::size_t v = 0; v < placement.vms.size(); ++v) {
      vm_machine.push_back(int(vm_machine.size()) % m_count);
    }
  }

  // ---- live flows on the placement ------------------------------------
  std::vector<Flow> flows(std::size_t(config.flows));
  for (int k = 0; k < config.flows; ++k) {
    Flow& f = flows[std::size_t(k)];
    const int sm = vm_machine.empty()
                       ? k % m_count
                       : vm_machine[std::size_t(k) % vm_machine.size()];
    const int cm = (sm + 1 + k % (m_count - 1)) % m_count;
    f.srv_bed = beds[std::size_t(sm)].get();
    f.cli_bed = beds[std::size_t(cm)].get();
    f.srv_port = std::uint16_t(5000 + k);
    f.cli_port = std::uint16_t(20000 + k);
    const std::string fname = "f" + std::to_string(k);
    switch (k % 3) {
      case 0: {  // published-port container, TCP stream over the fabric
        f.mode = FlowMode::kNatStream;
        f.msg_bytes = config.stream_msg_bytes + 64 * std::uint32_t(k % 5);
        f.srv_vm = &f.srv_bed->create_vm_with_uplink(fname + "-srv");
        auto& pod = f.srv_bed->create_pod(fname + "-pod");
        f.srv_frag = &pod.add_fragment(*f.srv_vm);
        core::Cni::Options publish;
        publish.publish_ports = {f.srv_port};
        boot(*f.srv_bed, *f.srv_frag, fname + "-srv",
             f.srv_bed->nat_cni().attach_fn(publish), &f.srv_container);
        break;
      }
      case 1: {  // pod NIC on the host bridge, UDP RR over the fabric
        f.mode = FlowMode::kBrFusionRr;
        f.msg_bytes = config.rr_bytes + 16 * std::uint32_t(k % 7);
        f.srv_vm = &f.srv_bed->create_vm_with_uplink(fname + "-srv");
        auto& pod = f.srv_bed->create_pod(fname + "-pod");
        f.srv_frag = &pod.add_fragment(*f.srv_vm);
        boot(*f.srv_bed, *f.srv_frag, fname + "-srv",
             f.srv_bed->brfusion_cni().attach_fn({}), &f.srv_container);
        break;
      }
      case 2: {  // cross-VM pod on one machine, UDP RR over Hostlo
        f.mode = FlowMode::kHostloRr;
        f.cli_bed = f.srv_bed;  // Hostlo is intra-host by construction
        f.msg_bytes = config.rr_bytes + 16 * std::uint32_t(k % 7) + 8;
        vmm::Vm& vm_a = f.srv_bed->create_vm_with_uplink(fname + "-a");
        vmm::Vm& vm_b = f.srv_bed->create_vm_with_uplink(fname + "-b");
        auto& pod = f.srv_bed->create_pod(fname + "-pod");
        f.cli_frag = &pod.add_fragment(vm_a);
        f.srv_frag = &pod.add_fragment(vm_b);
        f.srv_vm = &vm_b;
        Flow* fp = &f;
        f.srv_bed->hostlo_cni().attach_pod(
            pod, [fp](std::vector<core::HostloCni::EndpointInfo> eps) {
              fp->hostlo_eps = std::move(eps);
            });
        boot(*f.srv_bed, *f.cli_frag, fname + "-cli", immediate_attach(),
             &f.cli_container);
        boot(*f.srv_bed, *f.srv_frag, fname + "-srv", immediate_attach(),
             &f.srv_container);
        break;
      }
    }
  }

  // ---- deployment: the conductor (and only the conductor) moves time --
  const sim::Duration step = sim::milliseconds(10);
  const sim::TimePoint deploy_limit = sim::seconds(120);
  auto all_ready = [&flows] {
    for (const Flow& f : flows) {
      if (!f.ready()) return false;
    }
    return true;
  };
  while (!all_ready()) {
    if (conductor.now() >= deploy_limit) {
      throw std::runtime_error("datacenter macro: deployment timed out");
    }
    conductor.run_until(conductor.now() + step);
  }

  // ---- traffic ---------------------------------------------------------
  const sim::TimePoint start_base = conductor.now() + sim::milliseconds(1);
  const sim::TimePoint stop_at = start_base + config.measure_window;
  for (int k = 0; k < config.flows; ++k) {
    Flow& f = flows[std::size_t(k)];
    sim::Rng flow_rng =
        sim::Rng::of_stream(config.seed, kFlowStreamBase + std::uint64_t(k));
    const sim::TimePoint start = start_base +
                                 std::uint64_t(k) * sim::microseconds(200) +
                                 flow_rng.uniform_int(0, 50000);
    switch (f.mode) {
      case FlowMode::kNatStream: {
        auto d = std::make_shared<StreamDriver>();
        d->cli_stack = &f.cli_bed->machine().stack();
        d->cli_app = &f.cli_bed->machine().make_app_core(
            "f" + std::to_string(k) + "-cli");
        d->cli_engine = &f.cli_bed->engine();
        d->cli_ip = f.cli_bed->machine().bridge_ip();
        // DNAT: the client dials the VM's published address.
        d->srv_service_ip = f.srv_vm->stack().iface_ip(
            f.srv_vm->stack().ifindex_of("eth0"));
        d->srv_port = f.srv_port;
        d->msg_bytes = f.msg_bytes;
        d->stop_at = stop_at;
        start_stream(d, *f.srv_frag->stack, *f.srv_container->app_core(),
                     start);
        f.stream = std::move(d);
        break;
      }
      case FlowMode::kBrFusionRr:
      case FlowMode::kHostloRr: {
        auto d = std::make_shared<RrDriver>();
        if (f.mode == FlowMode::kBrFusionRr) {
          d->cli_stack = &f.cli_bed->machine().stack();
          d->cli_app = &f.cli_bed->machine().make_app_core(
              "f" + std::to_string(k) + "-cli");
          d->cli_ip = f.cli_bed->machine().bridge_ip();
          // BrFusion: the pod NIC's own bridge-subnet address is routable
          // from every machine on the fabric.
          d->srv_service_ip = f.srv_frag->stack->iface_ip(
              f.srv_frag->stack->ifindex_of("eth0"));
          d->srv_local_ip = d->srv_service_ip;
        } else {
          d->cli_stack = f.cli_frag->stack.get();
          d->cli_app = f.cli_container->app_core();
          d->cli_ip = f.hostlo_eps[0].ip;
          d->srv_service_ip = f.hostlo_eps[1].ip;
          d->srv_local_ip = f.hostlo_eps[1].ip;
        }
        d->srv_stack = f.srv_frag->stack.get();
        d->srv_app = f.srv_container->app_core();
        d->cli_engine = &f.cli_bed->engine();
        d->cli_port = f.cli_port;
        d->srv_port = f.srv_port;
        d->bytes = f.msg_bytes;
        d->rng = flow_rng;
        d->stop_at = stop_at;
        start_rr(d, start);
        f.rr = std::move(d);
        break;
      }
    }
  }

  const auto wall0 = std::chrono::steady_clock::now();
  conductor.run_until(stop_at + sim::milliseconds(30));  // +drain
  const auto wall1 = std::chrono::steady_clock::now();
  out.wall_seconds =
      std::chrono::duration<double>(wall1 - wall0).count();

  // ---- results, aggregated in flow order so FP summation order is a
  // property of the scenario, not of the execution ----------------------
  int k = 0;
  for (Flow& f : flows) {
    double t = 0, lat = 0, bytes = 0;
    if (f.rr != nullptr) {
      t = double(f.rr->transactions);
      lat = double(f.rr->latency_ns_sum);
      out.rr_transactions += t;
      out.rr_latency_ns_sum += lat;
    }
    if (f.stream != nullptr) {
      bytes = double(*f.stream->delivered);
      out.stream_bytes_delivered += bytes;
      // The refill chain captures its own shared_ptr; break the cycle.
      if (f.stream->send_chain != nullptr) *f.stream->send_chain = nullptr;
    }
    out.flow_digest +=
        double(k + 1) * (t * 1e-3 + lat * 1e-9 + bytes * 1e-6);
    ++k;
  }
  out.events_total = conductor.total_events();
  out.per_shard_events = conductor.per_shard_events();
  const sim::ConductorStats cstats = conductor.stats();
  out.epochs = cstats.epochs;
  out.cross_posts = conductor.cross_posts();
  out.fused_epochs = cstats.fused_epochs;
  out.drained_posts = cstats.drained_posts;
  out.idle_windows = cstats.idle_windows;
  out.barrier_wait_ns = cstats.barrier_wait_ns;
  return out;
}

}  // namespace nestv::scenario
