#include "scenario/macro_scale.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "orch/scheduler.hpp"
#include "scenario/overlay.hpp"
#include "trace/google_trace.hpp"
#include "vmm/fabric.hpp"

namespace nestv::scenario {
namespace {

/// Sub-stream ids for Rng::of_stream / Rng::mix seed derivation.
constexpr std::uint64_t kTraceStream = 0x6d736361ULL;     // "msca"
constexpr std::uint64_t kFlowStreamBase = 0x10000ULL;     // + flow ordinal
constexpr std::uint64_t kMachineStreamBase = 0x2000ULL;   // + machine ordinal
constexpr std::uint64_t kStreamStreamBase = 0x3000ULL;    // + stream ordinal

/// Ephemeral client-port pool per machine: reuse distance (50k flows per
/// machine) is orders of magnitude beyond any flow lifetime, so a recycled
/// port never collides with a live binding.
constexpr std::uint32_t kClientPortBase = 10000;
constexpr std::uint32_t kClientPortSpan = 50000;

/// Per-machine accumulators.  Only ever mutated from the owning machine's
/// engine (client-side callbacks run there), merged in machine order after
/// the run — the same "local state, ordered merge" determinism recipe as
/// the conductor's per-shard event counters.
struct MachineStats {
  double flows_completed = 0;
  double transactions = 0;
  double latency_ns_sum = 0;
  double digest = 0;
  std::vector<sim::TimePoint> arrivals;
  std::vector<sim::TimePoint> completions;
  std::uint64_t gc_reaped = 0;
  std::uint64_t peak_entries = 0;
  std::uint64_t bytes_at_peak = 0;
  std::uint64_t ct_bytes_at_peak = 0;
  std::uint64_t fc_bytes_at_peak = 0;
  std::uint64_t fc_entries_at_peak = 0;
  std::uint64_t oc_peak_entries = 0;
  std::uint64_t oc_bytes_at_peak = 0;
};

/// One ephemeral churn flow: a short UDP RR exchange from a fresh client
/// port.  Arrival inserts fresh conntrack/flowcache state on every stack
/// along the path; departure unbinds and leaves the entries to the GC.
struct ChurnFlow {
  net::StackBackend* cli_stack = nullptr;
  sim::SerialResource* cli_app = nullptr;
  sim::Engine* engine = nullptr;
  net::Ipv4Address cli_ip, srv_ip;
  std::uint16_t cli_port = 0, srv_port = 0;
  std::uint32_t bytes = 0;
  int remaining = 1;
  sim::Rng rng{1};
  sim::TimePoint issued_at = 0;
  std::uint64_t tx = 0;
  std::uint64_t lat_ns = 0;
  int ordinal = 0;
  MachineStats* acc = nullptr;
  bool done = false;

  void issue() {
    issued_at = engine->now();
    cli_stack->udp_send(cli_ip, cli_port, srv_ip, srv_port, bytes, cli_app);
  }
};

void start_churn_flow(const std::shared_ptr<ChurnFlow>& d) {
  d->acc->arrivals.push_back(d->engine->now());
  d->cli_stack->udp_bind(
      d->cli_port, d->cli_app, [d](net::StackBackend::UdpDelivery&) {
        if (d->done) return;  // straggler after departure
        d->lat_ns += d->engine->now() - d->issued_at;
        ++d->tx;
        if (--d->remaining <= 0) {
          d->done = true;
          d->acc->flows_completed += 1;
          d->acc->transactions += double(d->tx);
          d->acc->latency_ns_sum += double(d->lat_ns);
          d->acc->digest += double(d->ordinal + 1) *
                            (double(d->tx) * 1e-3 + double(d->lat_ns) * 1e-9);
          d->acc->completions.push_back(d->engine->now());
          // Unbind in a fresh event: tearing the binding down from inside
          // its own handler would destroy the closure mid-execution.
          net::StackBackend* stack = d->cli_stack;
          const std::uint16_t port = d->cli_port;
          d->engine->schedule_in(1, [stack, port] {
            stack->udp_unbind(port);
          });
          return;
        }
        const sim::Duration think = d->rng.uniform_int(500, 4500);
        d->engine->schedule_in(think, [d] { d->issue(); });
      });
  d->issue();
}

/// TCP bulk sender keeping up to two windows queued (the long-lived
/// streams riding under the churn), same self-driving chain as
/// datacenter_macro.
struct StreamDriver {
  net::StackBackend* cli_stack = nullptr;
  sim::SerialResource* cli_app = nullptr;
  sim::Engine* cli_engine = nullptr;
  net::Ipv4Address cli_ip, srv_service_ip;
  std::uint16_t srv_port = 0;
  std::uint32_t msg_bytes = 0;
  sim::TimePoint stop_at = 0;
  std::shared_ptr<net::TcpSocket> sock;
  std::shared_ptr<std::function<void()>> send_chain;
  bool waiting = false;
};

void start_stream(const std::shared_ptr<StreamDriver>& d,
                  sim::TimePoint start) {
  d->cli_engine->schedule_at(start, [d] {
    d->sock = std::make_shared<net::TcpSocket>(d->cli_stack->tcp_connect(
        d->cli_ip, d->srv_service_ip, d->srv_port, d->cli_app));
    auto chain = std::make_shared<std::function<void()>>();
    d->send_chain = chain;
    const std::uint32_t high_water = 2 * 262144;
    *chain = [d, chain, high_water] {
      if (d->cli_engine->now() >= d->stop_at) return;
      if (d->sock->buffered() >= high_water) {
        d->waiting = true;
        return;
      }
      d->sock->send(d->msg_bytes, [chain] { (*chain)(); });
    };
    d->sock->set_on_writable([d, chain] {
      if (d->waiting) {
        d->waiting = false;
        (*chain)();
      }
    });
    d->sock->set_on_connected([chain] { (*chain)(); });
  });
}

/// A long-lived server pod (NAT published-port or BrFusion).
struct ServerPod {
  Testbed* bed = nullptr;
  int machine = 0;
  bool nat = false;
  std::uint16_t port = 0;
  vmm::Vm* vm = nullptr;
  container::Pod::Fragment* frag = nullptr;
  container::Container* ctr = nullptr;
  net::Ipv4Address service_ip;  ///< what clients dial (filled when ready)
  net::Ipv4Address local_ip;    ///< the pod's own address (reply source)
  /// TCP stream byte sink (one per pod; streams targeting this pod share
  /// it, counted on the pod's own engine).
  std::shared_ptr<std::uint64_t> stream_delivered =
      std::make_shared<std::uint64_t>(0);
  bool listening = false;
};

/// A cross-VM Hostlo pod (client and server fragments on one machine).
struct HostloPair {
  Testbed* bed = nullptr;
  std::uint16_t port = 0;
  container::Pod::Fragment* cli_frag = nullptr;
  container::Pod::Fragment* srv_frag = nullptr;
  container::Container* cli_ctr = nullptr;
  container::Container* srv_ctr = nullptr;
  std::vector<core::HostloCni::EndpointInfo> eps;

  [[nodiscard]] bool ready() const {
    return cli_ctr != nullptr && srv_ctr != nullptr && eps.size() == 2;
  }
};

/// A cross-VM overlay pod pair: two VMs on one machine joined by a
/// private VXLAN overlay (the Docker-overlay deployment mode), inner
/// frames tunneling VM-to-VM through the host bridge underlay.
struct OverlayPair {
  Testbed* bed = nullptr;
  std::uint16_t port = 0;
  vmm::Vm* vm_a = nullptr;
  vmm::Vm* vm_b = nullptr;
  container::Pod::Fragment* cli_frag = nullptr;
  container::Pod::Fragment* srv_frag = nullptr;
  container::Container* cli_ctr = nullptr;
  container::Container* srv_ctr = nullptr;
  std::unique_ptr<OverlayNetwork> overlay;
  net::Ipv4Address cli_ip, srv_ip;  // overlay addresses (post-deploy)

  [[nodiscard]] bool ready() const {
    return cli_ctr != nullptr && srv_ctr != nullptr;
  }
};

container::Runtime::AttachFn immediate_attach() {
  return [](container::Pod::Fragment&,
            std::function<void(container::Runtime::AttachOutcome)> done) {
    done(container::Runtime::AttachOutcome{true, -1, net::Ipv4Address{}});
  };
}

void boot(Testbed& bed, container::Pod::Fragment& frag,
          const std::string& name, container::Runtime::AttachFn attach,
          container::Container** out) {
  bed.runtime_for(*frag.vm).create_container(
      frag, container::Image{name + "-image"}, name, std::move(attach),
      [out](container::Container& c, sim::Duration) { *out = &c; });
}

}  // namespace

MacroScaleResult run_macro_scale(const MacroScaleConfig& config) {
  if (config.machines < 2) {
    throw std::invalid_argument("macro scale needs >= 2 machines");
  }
  if (config.shards < 1 || config.shards > config.machines) {
    throw std::invalid_argument("shards must be in [1, machines]");
  }
  if (config.server_pods_per_machine < 2) {
    throw std::invalid_argument(
        "macro scale needs >= 2 server pods per machine (one NAT, one "
        "BrFusion)");
  }

  MacroScaleResult out;
  out.shards = config.shards;

  // Lookahead: nothing crosses machines faster than the shortest fabric
  // link (machine->ToR or ToR->spine, whichever is shorter).
  sim::ShardedConductor conductor(
      config.shards, vmm::HierarchicalFabric::min_link_latency(config.costs),
      config.max_workers);
  out.worker_threads = conductor.worker_threads();

  // ---- machines, pinned to shards; two-tier fabric over them ----------
  const int m_count = config.machines;
  std::vector<std::unique_ptr<Testbed>> beds;
  beds.reserve(std::size_t(m_count));
  for (int i = 0; i < m_count; ++i) {
    TestbedConfig tc;
    tc.seed = sim::Rng::mix(config.seed,
                            kMachineStreamBase + std::uint64_t(i));
    tc.costs = config.costs;
    tc.engine = &conductor.shard(i * config.shards / m_count);
    tc.machine.name = "host" + std::to_string(i);
    // 10.200.x.y/24 VM subnets: distinct per machine, scaling past the
    // 150-odd machines a single /16 third octet window allows.
    tc.machine.bridge_subnet = net::Ipv4Cidr(
        net::Ipv4Address(10, std::uint8_t(200 - i / 250),
                         std::uint8_t(i % 250), 0),
        24);
    beds.push_back(std::make_unique<Testbed>(tc));
  }
  vmm::FabricConfig fc;
  fc.machines_per_rack = config.machines_per_rack;
  fc.spines = config.spines;
  vmm::HierarchicalFabric fabric(conductor.shard(0), beds[0]->costs(), fc,
                                 &conductor);
  for (auto& bed : beds) fabric.attach(bed->machine());

  // ---- population sizing: the Google-like trace ------------------------
  trace::TraceConfig tcfg;
  tcfg.seed = sim::Rng::mix(config.seed, kTraceStream);
  tcfg.users = config.trace_users;
  const auto users = trace::generate_google_like_trace(tcfg);
  orch::AwsM5Catalog catalog;
  orch::KubernetesScheduler scheduler(catalog);
  std::vector<int> vm_machine;  // placed VM ordinal -> physical machine
  for (const auto& user : users) {
    const orch::Placement placement = scheduler.schedule(user);
    out.pods_scheduled += double(user.pods.size());
    out.vms_bought += double(placement.vms.size());
    out.placement_cost_per_hour += placement.cost_per_hour();
    for (std::size_t v = 0; v < placement.vms.size(); ++v) {
      vm_machine.push_back(int(vm_machine.size()) % m_count);
    }
  }

  // ---- long-lived server pods -----------------------------------------
  std::vector<ServerPod> servers;
  // Reserved up front: boot() holds &ctr across the async deployment, so
  // the vector must never reallocate.
  servers.reserve(std::size_t(m_count) *
                  std::size_t(config.server_pods_per_machine));
  std::vector<std::vector<int>> nat_of(static_cast<std::size_t>(m_count));
  std::vector<std::vector<int>> br_of(static_cast<std::size_t>(m_count));
  for (int i = 0; i < m_count; ++i) {
    for (int j = 0; j < config.server_pods_per_machine; ++j) {
      servers.emplace_back();
      ServerPod& s = servers.back();
      s.bed = beds[std::size_t(i)].get();
      s.machine = i;
      s.nat = (j % 2 == 0);
      s.port = std::uint16_t(5000 + servers.size() - 1);
      const std::string name =
          "srv" + std::to_string(i) + "-" + std::to_string(j);
      s.vm = &s.bed->create_vm_with_uplink(name);
      auto& pod = s.bed->create_pod(name + "-pod");
      s.frag = &pod.add_fragment(*s.vm);
      if (s.nat) {
        core::Cni::Options publish;
        publish.publish_ports = {s.port};
        boot(*s.bed, *s.frag, name, s.bed->nat_cni().attach_fn(publish),
             &s.ctr);
      } else {
        boot(*s.bed, *s.frag, name, s.bed->brfusion_cni().attach_fn({}),
             &s.ctr);
      }
      (s.nat ? nat_of : br_of)[std::size_t(i)].push_back(
          int(servers.size()) - 1);
    }
  }

  // ---- Hostlo cross-VM pods -------------------------------------------
  std::vector<std::unique_ptr<HostloPair>> pairs;
  std::vector<std::vector<int>> pairs_of(static_cast<std::size_t>(m_count));
  for (int i = 0; i < m_count; ++i) {
    for (int h = 0; h < config.hostlo_pairs_per_machine; ++h) {
      auto hp = std::make_unique<HostloPair>();
      hp->bed = beds[std::size_t(i)].get();
      hp->port = std::uint16_t(6000 + pairs.size());
      const std::string name =
          "hl" + std::to_string(i) + "-" + std::to_string(h);
      vmm::Vm& vm_a = hp->bed->create_vm_with_uplink(name + "-a");
      vmm::Vm& vm_b = hp->bed->create_vm_with_uplink(name + "-b");
      auto& pod = hp->bed->create_pod(name + "-pod");
      hp->cli_frag = &pod.add_fragment(vm_a);
      hp->srv_frag = &pod.add_fragment(vm_b);
      HostloPair* raw = hp.get();
      hp->bed->hostlo_cni().attach_pod(
          pod, [raw](std::vector<core::HostloCni::EndpointInfo> eps) {
            raw->eps = std::move(eps);
          });
      boot(*hp->bed, *hp->cli_frag, name + "-cli", immediate_attach(),
           &hp->cli_ctr);
      boot(*hp->bed, *hp->srv_frag, name + "-srv", immediate_attach(),
           &hp->srv_ctr);
      pairs_of[std::size_t(i)].push_back(int(pairs.size()));
      pairs.push_back(std::move(hp));
    }
  }

  // ---- Overlay cross-VM pods ------------------------------------------
  std::vector<std::unique_ptr<OverlayPair>> ovpairs;
  std::vector<std::vector<int>> ov_of(static_cast<std::size_t>(m_count));
  for (int i = 0; i < m_count; ++i) {
    for (int v = 0; v < config.overlay_pairs_per_machine; ++v) {
      auto op = std::make_unique<OverlayPair>();
      op->bed = beds[std::size_t(i)].get();
      op->port = std::uint16_t(7000 + ovpairs.size());
      const std::string name =
          "ov" + std::to_string(i) + "-" + std::to_string(v);
      op->vm_a = &op->bed->create_vm_with_uplink(name + "-a");
      op->vm_b = &op->bed->create_vm_with_uplink(name + "-b");
      auto& pod = op->bed->create_pod(name + "-pod");
      op->cli_frag = &pod.add_fragment(*op->vm_a);
      op->srv_frag = &pod.add_fragment(*op->vm_b);
      // One isolated overlay per pair (distinct VNIs); the shared 10.99/24
      // inner subnet never reaches the underlay, so pairs cannot collide.
      op->overlay = std::make_unique<OverlayNetwork>(
          *op->bed, net::Ipv4Cidr(net::Ipv4Address(10, 99, 0, 0), 24),
          OverlayNetwork::OncacheMode::kAttached,
          std::uint32_t(100 + ovpairs.size()));
      OverlayPair* raw = op.get();
      auto overlay_attach =
          [raw](container::Pod::Fragment& fragment,
                std::function<void(container::Runtime::AttachOutcome)>
                    done) {
            const auto a = raw->overlay->attach(fragment);
            done(container::Runtime::AttachOutcome{true, a.ifindex, a.ip});
          };
      boot(*op->bed, *op->cli_frag, name + "-cli", overlay_attach,
           &op->cli_ctr);
      boot(*op->bed, *op->srv_frag, name + "-srv", overlay_attach,
           &op->srv_ctr);
      ov_of[std::size_t(i)].push_back(int(ovpairs.size()));
      ovpairs.push_back(std::move(op));
    }
  }

  // ---- deployment: the conductor (and only the conductor) moves time --
  const sim::Duration step = sim::milliseconds(10);
  const sim::TimePoint deploy_limit = sim::seconds(120);
  auto all_ready = [&servers, &pairs, &ovpairs] {
    for (const ServerPod& s : servers) {
      if (s.ctr == nullptr) return false;
    }
    for (const auto& hp : pairs) {
      if (!hp->ready()) return false;
    }
    for (const auto& op : ovpairs) {
      if (!op->ready()) return false;
    }
    return true;
  };
  while (!all_ready()) {
    if (conductor.now() >= deploy_limit) {
      throw std::runtime_error("macro scale: deployment timed out");
    }
    conductor.run_until(conductor.now() + step);
  }

  // ---- post-deploy wiring ----------------------------------------------
  // The churn path exercises the flowcache everywhere: host forwarding
  // stacks, the NAT guests doing DNAT, and the pod stacks.
  for (auto& bed : beds) bed->machine().stack().set_flowcache(true);
  for (ServerPod& s : servers) {
    s.vm->stack().set_flowcache(true);
    s.frag->stack->set_flowcache(true);
    s.local_ip = s.frag->stack->iface_ip(s.frag->stack->ifindex_of("eth0"));
    // NAT: clients dial the VM's published (DNAT'd) address; BrFusion: the
    // pod NIC's bridge-subnet address is routable fabric-wide.
    s.service_ip = s.nat ? s.vm->stack().iface_ip(
                               s.vm->stack().ifindex_of("eth0"))
                         : s.local_ip;
    // Persistent UDP echo server: one binding for the whole run; churn
    // clients come and go against it.
    net::StackBackend* stack = s.frag->stack.get();
    sim::SerialResource* app = s.ctr->app_core();
    const net::Ipv4Address local = s.local_ip;
    const std::uint16_t port = s.port;
    stack->udp_bind(port, app,
                    [stack, app, local, port](
                        net::StackBackend::UdpDelivery& del) {
                      stack->udp_send(local, port, del.src_ip, del.src_port,
                                      del.bytes, app);
                    });
  }
  for (auto& hp : pairs) {
    hp->cli_frag->stack->set_flowcache(true);
    hp->srv_frag->stack->set_flowcache(true);
    net::StackBackend* stack = hp->srv_frag->stack.get();
    sim::SerialResource* app = hp->srv_ctr->app_core();
    const net::Ipv4Address local = hp->eps[1].ip;
    const std::uint16_t port = hp->port;
    stack->udp_bind(port, app,
                    [stack, app, local, port](
                        net::StackBackend::UdpDelivery& del) {
                      stack->udp_send(local, port, del.src_ip, del.src_port,
                                      del.bytes, app);
                    });
  }
  for (auto& op : ovpairs) {
    // Gossip tables first, then the fast path; churn clients dial the
    // server fragment's overlay address through the VXLAN tunnel.
    op->overlay->finalize();
    op->overlay->set_oncache_enabled(config.oncache_enabled);
    op->vm_a->stack().set_flowcache(true);
    op->vm_b->stack().set_flowcache(true);
    op->cli_frag->stack->set_flowcache(true);
    op->srv_frag->stack->set_flowcache(true);
    op->cli_ip = op->cli_frag->stack->iface_ip(
        op->cli_frag->stack->ifindex_of("ov0"));
    op->srv_ip = op->srv_frag->stack->iface_ip(
        op->srv_frag->stack->ifindex_of("ov0"));
    net::StackBackend* stack = op->srv_frag->stack.get();
    sim::SerialResource* app = op->srv_ctr->app_core();
    const net::Ipv4Address local = op->srv_ip;
    const std::uint16_t port = op->port;
    stack->udp_bind(port, app,
                    [stack, app, local, port](
                        net::StackBackend::UdpDelivery& del) {
                      stack->udp_send(local, port, del.src_ip, del.src_port,
                                      del.bytes, app);
                    });
  }

  // One shared client app core per machine: ephemeral flows are cheap
  // clients, not one pinned process each (10^6 SerialResources would be
  // absurd); sharing one core serializes them like one busy client box.
  std::vector<sim::SerialResource*> cli_core(static_cast<std::size_t>(m_count));
  for (int i = 0; i < m_count; ++i) {
    cli_core[std::size_t(i)] =
        &beds[std::size_t(i)]->machine().make_app_core("churn-cli");
  }

  // ---- per-machine state tracking (GC + occupancy sampling) ------------
  std::vector<MachineStats> stats(static_cast<std::size_t>(m_count));
  std::vector<std::vector<net::StackBackend*>> tracked(static_cast<std::size_t>(m_count));
  for (int i = 0; i < m_count; ++i) {
    tracked[std::size_t(i)].push_back(&beds[std::size_t(i)]->machine().stack());
  }
  for (ServerPod& s : servers) {
    tracked[std::size_t(s.machine)].push_back(&s.vm->stack());
    tracked[std::size_t(s.machine)].push_back(s.frag->stack.get());
  }
  for (int m = 0; m < m_count; ++m) {
    for (const int p : pairs_of[std::size_t(m)]) {
      tracked[std::size_t(m)].push_back(
          pairs[std::size_t(p)]->cli_frag->stack.get());
      tracked[std::size_t(m)].push_back(
          pairs[std::size_t(p)]->srv_frag->stack.get());
    }
  }
  std::vector<std::vector<const OverlayNetwork*>> overlays(
      static_cast<std::size_t>(m_count));
  for (int m = 0; m < m_count; ++m) {
    for (const int p : ov_of[std::size_t(m)]) {
      OverlayPair& op = *ovpairs[std::size_t(p)];
      tracked[std::size_t(m)].push_back(&op.vm_a->stack());
      tracked[std::size_t(m)].push_back(&op.vm_b->stack());
      tracked[std::size_t(m)].push_back(op.cli_frag->stack.get());
      tracked[std::size_t(m)].push_back(op.srv_frag->stack.get());
      overlays[std::size_t(m)].push_back(op.overlay.get());
    }
  }

  const sim::TimePoint start_base = conductor.now() + sim::milliseconds(1);
  const sim::TimePoint arrivals_end = start_base + config.arrival_window;
  const sim::TimePoint traffic_end = arrivals_end + config.drain;

  std::vector<std::shared_ptr<std::function<void()>>> ticks;
  for (int i = 0; i < m_count; ++i) {
    sim::Engine* engp = &beds[std::size_t(i)]->engine();
    MachineStats* acc = &stats[std::size_t(i)];
    std::vector<net::StackBackend*>* stacks = &tracked[std::size_t(i)];
    const std::vector<const OverlayNetwork*>* nets =
        &overlays[std::size_t(i)];
    auto tick = std::make_shared<std::function<void()>>();
    ticks.push_back(tick);
    const sim::Duration idle = config.conntrack_idle;
    const sim::Duration interval = config.gc_interval;
    *tick = [engp, acc, stacks, nets, idle, interval, traffic_end, tick] {
      std::uint64_t entries = 0;
      std::uint64_t ct_bytes = 0;
      std::uint64_t fc_bytes = 0;
      std::uint64_t fc_entries = 0;
      for (net::StackBackend* s : *stacks) {
        if (s->has_netfilter()) {
          acc->gc_reaped += s->conntrack_gc(idle);
          entries += s->netfilter().conntrack_size();
          ct_bytes += s->netfilter().conntrack_state_bytes();
        }
        if (s->has_flowcache() && s->flowcache_enabled()) {
          fc_bytes += s->flow_cache().state_bytes();
          fc_entries += s->flow_cache().size();
        }
      }
      if (entries > acc->peak_entries) {
        acc->peak_entries = entries;
        acc->bytes_at_peak = ct_bytes + fc_bytes;
        acc->ct_bytes_at_peak = ct_bytes;
        acc->fc_bytes_at_peak = fc_bytes;
        acc->fc_entries_at_peak = fc_entries;
      }
      // The encap/decap caches peak on their own clock (they only warm
      // once overlay flows run), so they are tracked against their own
      // occupancy peak rather than the conntrack one.
      std::uint64_t oc_entries = 0;
      std::uint64_t oc_bytes = 0;
      for (const OverlayNetwork* n : *nets) {
        const auto t = n->oncache_totals();
        oc_entries += t.entries;
        oc_bytes += t.state_bytes;
      }
      if (oc_entries > acc->oc_peak_entries) {
        acc->oc_peak_entries = oc_entries;
        acc->oc_bytes_at_peak = oc_bytes;
      }
      if (engp->now() + interval <= traffic_end) {
        engp->schedule_in(interval, [tick] { (*tick)(); });
      }
    };
    // Staggered per machine: purely local work, but no reason to pile
    // every machine's GC onto the same nanosecond.
    engp->schedule_at(start_base + config.gc_interval +
                          std::uint64_t(i) * 1009,
                      [tick] { (*tick)(); });
  }

  // ---- open-loop churn arrivals ----------------------------------------
  // Arrival instants are a pure function of the flow ordinal (never of
  // completions): flow k lands at start + k*interarrival + jitter(k).
  const std::uint64_t interarrival =
      config.flows > 0
          ? std::max<std::uint64_t>(
                1, std::uint64_t(config.arrival_window) /
                       std::uint64_t(config.flows))
          : 1;
  auto arrival_time = [&config, start_base,
                       interarrival](int k) -> sim::TimePoint {
    sim::Rng rng = sim::Rng::of_stream(config.seed,
                                       kFlowStreamBase + std::uint64_t(k));
    const std::uint64_t jitter =
        rng.uniform_int(0, std::max<std::uint64_t>(1, interarrival / 2));
    return start_base + std::uint64_t(k) * interarrival + jitter;
  };

  auto launch_flow = [&](int k) {
    const int cm = k % m_count;
    sim::Rng rng = sim::Rng::of_stream(config.seed,
                                       kFlowStreamBase + std::uint64_t(k));
    (void)rng.uniform_int(0, std::max<std::uint64_t>(1, interarrival / 2));

    // The overlay mode joins the rotation only when the knob asks for it,
    // so the default config's flow schedule (and every simulated output)
    // is byte-identical to the pre-overlay scenario.
    const bool overlay_on = config.overlay_pairs_per_machine > 0;
    int mode = k % (overlay_on ? 4 : 3);
    if (mode == 2 && pairs_of[std::size_t(cm)].empty()) mode = 1;
    if (mode == 3 && ov_of[std::size_t(cm)].empty()) mode = 1;

    auto d = std::make_shared<ChurnFlow>();
    d->ordinal = k;
    d->acc = &stats[std::size_t(cm)];
    d->bytes = config.rr_bytes + 16 * std::uint32_t(k % 7);
    const int max_extra = 2 * (config.flow_transactions - 1);
    d->remaining =
        1 + (max_extra > 0
                 ? int(rng.uniform_int(0, std::uint64_t(max_extra)))
                 : 0);
    d->rng = rng;

    if (mode == 3) {
      const auto& olist = ov_of[std::size_t(cm)];
      const OverlayPair& op =
          *ovpairs[std::size_t(olist[std::size_t(k / 4) % olist.size()])];
      d->cli_stack = op.cli_frag->stack.get();
      d->cli_app = op.cli_ctr->app_core();
      d->cli_ip = op.cli_ip;
      d->srv_ip = op.srv_ip;
      d->srv_port = op.port;
    } else if (mode == 2) {
      const auto& plist = pairs_of[std::size_t(cm)];
      const HostloPair& hp =
          *pairs[std::size_t(plist[std::size_t(k / 3) % plist.size()])];
      d->cli_stack = hp.cli_frag->stack.get();
      d->cli_app = hp.cli_ctr->app_core();
      d->cli_ip = hp.eps[0].ip;
      d->srv_ip = hp.eps[1].ip;
      d->srv_port = hp.port;
    } else {
      int sm = vm_machine.empty()
                   ? (cm + 1 + k % (m_count - 1)) % m_count
                   : vm_machine[std::size_t(k) % vm_machine.size()];
      if (sm == cm) sm = (sm + 1) % m_count;
      const auto& slist =
          (mode == 0 ? nat_of : br_of)[std::size_t(sm)];
      const ServerPod& s =
          servers[std::size_t(slist[std::size_t(k / 3) % slist.size()])];
      d->cli_stack = &beds[std::size_t(cm)]->machine().stack();
      d->cli_app = cli_core[std::size_t(cm)];
      d->cli_ip = beds[std::size_t(cm)]->machine().bridge_ip();
      d->srv_ip = s.service_ip;
      d->srv_port = s.port;
    }
    d->engine = &beds[std::size_t(cm)]->engine();
    d->cli_port = std::uint16_t(
        kClientPortBase + std::uint32_t(k / m_count) % kClientPortSpan);
    start_churn_flow(d);
  };

  // One self-chaining arrival pump per client machine (flow k's arrival
  // schedules flow k+machines'): O(live flows) memory, never O(flows)
  // events queued at once.
  std::vector<std::shared_ptr<std::function<void(int)>>> pumps;
  for (int cm = 0; cm < m_count && cm < config.flows; ++cm) {
    auto pump = std::make_shared<std::function<void(int)>>();
    pumps.push_back(pump);
    sim::Engine* engp = &beds[std::size_t(cm)]->engine();
    *pump = [&, pump, engp](int k) {
      const int next = k + m_count;
      if (next < config.flows) {
        engp->schedule_at(arrival_time(next),
                          [pump, next] { (*pump)(next); });
      }
      launch_flow(k);
    };
    engp->schedule_at(arrival_time(cm), [pump, cm] { (*pump)(cm); });
  }

  // ---- long-lived TCP streams through the NAT path ---------------------
  std::vector<std::shared_ptr<StreamDriver>> streams;
  std::vector<int> stream_target;
  for (int k = 0; k < config.tcp_streams; ++k) {
    const int cm = k % m_count;
    int sm = (cm + 1 + k) % m_count;
    if (sm == cm) sm = (sm + 1) % m_count;
    const auto& slist = nat_of[std::size_t(sm)];
    const int target = slist[std::size_t(k) % slist.size()];
    ServerPod& s = servers[std::size_t(target)];
    if (!s.listening) {
      s.listening = true;
      auto delivered = s.stream_delivered;
      s.frag->stack->tcp_listen(s.port, s.ctr->app_core(),
                                [delivered](net::TcpSocket sock) {
                                  sock.set_on_receive(
                                      [delivered](std::uint32_t n) {
                                        *delivered += n;
                                      });
                                });
    }
    sim::Rng srng = sim::Rng::of_stream(config.seed,
                                        kStreamStreamBase + std::uint64_t(k));
    auto d = std::make_shared<StreamDriver>();
    d->cli_stack = &beds[std::size_t(cm)]->machine().stack();
    d->cli_app = &beds[std::size_t(cm)]->machine().make_app_core(
        "stream" + std::to_string(k) + "-cli");
    d->cli_engine = &beds[std::size_t(cm)]->engine();
    d->cli_ip = beds[std::size_t(cm)]->machine().bridge_ip();
    d->srv_service_ip = s.service_ip;
    d->srv_port = s.port;
    d->msg_bytes = config.stream_msg_bytes + 64 * std::uint32_t(k % 5);
    d->stop_at = arrivals_end;
    start_stream(d, start_base + srng.uniform_int(0, 100000));
    streams.push_back(std::move(d));
    stream_target.push_back(target);
  }

  // ---- run --------------------------------------------------------------
  const auto wall0 = std::chrono::steady_clock::now();
  conductor.run_until(traffic_end);
  const auto wall1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  for (auto& d : streams) {
    if (d->send_chain != nullptr) *d->send_chain = nullptr;  // break cycle
  }

  // ---- aggregate, in machine / server order ----------------------------
  std::vector<std::pair<sim::TimePoint, int>> sweep;  // (t, 0=arrive 1=done)
  for (int i = 0; i < m_count; ++i) {
    const MachineStats& a = stats[std::size_t(i)];
    out.flows_completed += a.flows_completed;
    out.rr_transactions += a.transactions;
    out.rr_latency_ns_sum += a.latency_ns_sum;
    out.flow_digest += a.digest;
    out.conntrack_gc_reaped += a.gc_reaped;
    out.conntrack_peak_entries += a.peak_entries;
    out.state_bytes_at_peak += a.bytes_at_peak;
    out.conntrack_bytes_at_peak += a.ct_bytes_at_peak;
    out.flowcache_bytes_at_peak += a.fc_bytes_at_peak;
    out.flowcache_entries_at_peak += a.fc_entries_at_peak;
    out.oncache_entries_at_peak += a.oc_peak_entries;
    out.oncache_bytes_at_peak += a.oc_bytes_at_peak;
    for (const sim::TimePoint t : a.arrivals) sweep.emplace_back(t, 0);
    for (const sim::TimePoint t : a.completions) sweep.emplace_back(t, 1);
  }
  std::sort(sweep.begin(), sweep.end());
  std::uint64_t live = 0;
  for (const auto& [t, kind] : sweep) {
    if (kind == 0) {
      ++live;
      out.peak_concurrent_flows = std::max(out.peak_concurrent_flows, live);
    } else {
      --live;
    }
  }
  if (out.conntrack_peak_entries > 0) {
    out.state_bytes_per_flow = double(out.state_bytes_at_peak) /
                               double(out.conntrack_peak_entries);
  }
  int k = 0;
  for (const int target : stream_target) {
    // Per-pod sinks may be shared; count each pod once, weight by the
    // first stream ordinal that claimed it (stable across runs).
    ServerPod& s = servers[std::size_t(target)];
    const double bytes = double(*s.stream_delivered);
    if (bytes > 0) {
      out.stream_bytes_delivered += bytes;
      out.flow_digest += double(config.flows + k + 1) * bytes * 1e-6;
      *s.stream_delivered = 0;  // so a second stream on this pod adds 0
    }
    ++k;
  }
  for (const auto& op : ovpairs) {
    const auto t = op->overlay->oncache_totals();
    out.oncache_hits += t.egress_hits + t.ingress_hits;
  }
  out.events_total = conductor.total_events();
  out.per_shard_events = conductor.per_shard_events();
  const sim::ConductorStats cstats = conductor.stats();
  out.epochs = cstats.epochs;
  out.cross_posts = conductor.cross_posts();
  out.fused_epochs = cstats.fused_epochs;
  out.drained_posts = cstats.drained_posts;
  out.idle_windows = cstats.idle_windows;
  out.barrier_wait_ns = cstats.barrier_wait_ns;
  return out;
}

}  // namespace nestv::scenario
