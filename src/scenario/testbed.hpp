// Testbed: one simulated instance of the paper's experimental node
// (section 5.1) with its VMM, orchestrator channel and CNI plugins.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "container/runtime.hpp"
#include "core/cni.hpp"
#include "core/protocol.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "vmm/vmm.hpp"

namespace nestv::scenario {

struct TestbedConfig {
  std::uint64_t seed = 42;
  sim::CostModel costs = sim::CostModel{};
  bool use_vhost = true;  ///< false only in the abl_vhost ablation
  /// Run on an existing engine instead of owning one — how a multi-machine
  /// scenario places each testbed on its conductor shard.  The caller
  /// keeps the engine alive for the testbed's lifetime.
  sim::Engine* engine = nullptr;
  /// Machine identity (name, bridge subnet, cores).  `seed` and the
  /// standing-rule count are still taken from this config's `seed`/`costs`
  /// fields, exactly as before this knob existed.
  vmm::PhysicalMachine::Config machine = {};
};

/// A process endpoint a workload can drive: which stack it lives in, the
/// address peers use to reach it, the address it binds, and its CPU.
struct Endpoint {
  net::StackBackend* stack = nullptr;
  net::Ipv4Address service_ip;  ///< address a peer dials (post-NAT view)
  net::Ipv4Address local_ip;    ///< address the process binds
  sim::SerialResource* app = nullptr;
  vmm::Vm* vm = nullptr;  ///< null for host processes
  /// Factory for additional process threads (multi-threaded clients and
  /// servers get one SerialResource per thread in the right CPU domain).
  std::function<sim::SerialResource&(const std::string&)> make_core;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const sim::CostModel& costs() const { return costs_; }
  [[nodiscard]] vmm::PhysicalMachine& machine() { return *machine_; }
  [[nodiscard]] vmm::Vmm& vmm() { return *vmm_; }
  [[nodiscard]] core::OrchVmmChannel& channel() { return *channel_; }
  [[nodiscard]] core::BridgeNatCni& nat_cni() { return *nat_cni_; }
  [[nodiscard]] core::FlowCacheCni& flowcache_cni() { return *flowcache_cni_; }
  [[nodiscard]] core::BrFusionCni& brfusion_cni() { return *brfusion_cni_; }
  [[nodiscard]] core::HostloCni& hostlo_cni() { return *hostlo_cni_; }

  /// Creates a VM with its uplink NIC ("eth0": virtio + vhost + host tap on
  /// the host bridge) configured on the host bridge subnet.
  vmm::Vm& create_vm_with_uplink(const std::string& name);

  container::Pod& create_pod(const std::string& name);
  container::Runtime& runtime_for(vmm::Vm& vm);

  /// Host-side client process (the paper runs benchmark clients "on
  /// different CPUs of the physical host", linked to the host bridge).
  Endpoint host_client(const std::string& process_name);

  /// Advances the simulated clock by `d`.  Only valid on a testbed that
  /// owns its engine — under a conductor, only the conductor moves time.
  void run_for(sim::Duration d) { engine_->run_until(engine_->now() + d); }

  /// Runs until `pred()` holds, polling every `step`; asserts progress
  /// within `limit`.  Used to wait for async deployments.
  void run_until_ready(const std::function<bool()>& pred,
                       sim::Duration step = sim::milliseconds(50),
                       sim::Duration limit = sim::seconds(60));

 private:
  sim::CostModel costs_;
  std::unique_ptr<sim::Engine> owned_engine_;  ///< null when external
  sim::Engine* engine_ = nullptr;
  std::unique_ptr<vmm::PhysicalMachine> machine_;
  std::unique_ptr<vmm::Vmm> vmm_;
  std::unique_ptr<core::OrchVmmChannel> channel_;
  std::unique_ptr<core::BridgeNatCni> nat_cni_;
  std::unique_ptr<core::FlowCacheCni> flowcache_cni_;
  std::unique_ptr<core::BrFusionCni> brfusion_cni_;
  std::unique_ptr<core::HostloCni> hostlo_cni_;
  std::vector<std::unique_ptr<container::Pod>> pods_;
  std::map<vmm::Vm*, std::unique_ptr<container::Runtime>> runtimes_;
  bool use_vhost_;
};

}  // namespace nestv::scenario
