#include "scenario/cross_vm.hpp"

#include <cassert>

namespace nestv::scenario {
namespace {

/// Boots one container in `fragment` and waits for it to run.
container::Container& boot_container(Testbed& bed,
                                     container::Pod::Fragment& fragment,
                                     const std::string& name,
                                     container::Runtime::AttachFn attach) {
  container::Container* out = nullptr;
  bed.runtime_for(*fragment.vm)
      .create_container(fragment, container::Image{name + "-image"}, name,
                        std::move(attach),
                        [&out](container::Container& c, sim::Duration) {
                          out = &c;
                        });
  bed.run_until_ready([&out] { return out != nullptr; });
  assert(out->state() == container::ContainerState::kRunning);
  return *out;
}

container::Runtime::AttachFn immediate_attach() {
  return [](container::Pod::Fragment&,
            std::function<void(container::Runtime::AttachOutcome)> done) {
    done(container::Runtime::AttachOutcome{true, -1, net::Ipv4Address{}});
  };
}

Endpoint endpoint_of(container::Pod::Fragment& fragment,
                     container::Container& c, net::Ipv4Address service_ip,
                     net::Ipv4Address local_ip) {
  Endpoint e;
  e.stack = fragment.stack.get();
  e.service_ip = service_ip;
  e.local_ip = local_ip;
  e.app = c.app_core();
  e.vm = fragment.vm;
  vmm::Vm* vm = fragment.vm;
  e.make_core = [vm](const std::string& name) -> sim::SerialResource& {
    return vm->make_app_core(name);
  };
  return e;
}

}  // namespace

const char* to_string(CrossVmMode m) {
  switch (m) {
    case CrossVmMode::kSameNode: return "SameNode";
    case CrossVmMode::kHostlo: return "Hostlo";
    case CrossVmMode::kNatCrossVm: return "NAT";
    case CrossVmMode::kOverlay: return "Overlay";
  }
  return "?";
}

CrossVm make_cross_vm(CrossVmMode mode, std::uint16_t service_port,
                      TestbedConfig config,
                      OverlayNetwork::OncacheMode oncache_mode) {
  CrossVm s;
  s.bed = std::make_unique<Testbed>(config);
  Testbed& bed = *s.bed;
  const auto lo = net::Ipv4Address(127, 0, 0, 1);

  switch (mode) {
    case CrossVmMode::kSameNode: {
      // One pod, one VM; containers share the pod namespace, traffic goes
      // over the pod's localhost interface.
      vmm::Vm& vm = bed.create_vm_with_uplink("vm1");
      container::Pod& pod = bed.create_pod("pod1");
      s.pod = &pod;
      auto& frag = pod.add_fragment(vm);
      auto& client_c = boot_container(bed, frag, "client",
                                      bed.nat_cni().attach_fn({}));
      auto& server_c = boot_container(bed, frag, "server",
                                      immediate_attach());
      s.client = endpoint_of(frag, client_c, lo, lo);
      s.server = endpoint_of(frag, server_c, lo, lo);
      (void)service_port;
      break;
    }

    case CrossVmMode::kHostlo: {
      vmm::Vm& vm1 = bed.create_vm_with_uplink("vm1");
      vmm::Vm& vm2 = bed.create_vm_with_uplink("vm2");
      container::Pod& pod = bed.create_pod("pod1");
      s.pod = &pod;
      auto& frag_a = pod.add_fragment(vm1);
      auto& frag_b = pod.add_fragment(vm2);

      std::vector<core::HostloCni::EndpointInfo> endpoints;
      bed.hostlo_cni().attach_pod(
          pod, [&endpoints](std::vector<core::HostloCni::EndpointInfo> e) {
            endpoints = std::move(e);
          });
      bed.run_until_ready([&endpoints] { return !endpoints.empty(); });
      assert(endpoints.size() == 2);

      auto& client_c =
          boot_container(bed, frag_a, "client", immediate_attach());
      auto& server_c =
          boot_container(bed, frag_b, "server", immediate_attach());
      s.client =
          endpoint_of(frag_a, client_c, endpoints[1].ip, endpoints[0].ip);
      s.server =
          endpoint_of(frag_b, server_c, endpoints[1].ip, endpoints[1].ip);
      break;
    }

    case CrossVmMode::kNatCrossVm: {
      vmm::Vm& vm1 = bed.create_vm_with_uplink("vm1");
      vmm::Vm& vm2 = bed.create_vm_with_uplink("vm2");
      container::Pod& pod_a = bed.create_pod("pod-a");
      container::Pod& pod_b = bed.create_pod("pod-b");
      auto& frag_a = pod_a.add_fragment(vm1);
      auto& frag_b = pod_b.add_fragment(vm2);

      auto& client_c =
          boot_container(bed, frag_a, "client", bed.nat_cni().attach_fn({}));
      core::Cni::Options publish;
      publish.publish_ports = {service_port};
      auto& server_c = boot_container(bed, frag_b, "server",
                                      bed.nat_cni().attach_fn(publish));

      const auto vm2_ip =
          vm2.stack().iface_ip(vm2.stack().ifindex_of("eth0"));
      s.client = endpoint_of(
          frag_a, client_c, vm2_ip,
          frag_a.stack->iface_ip(frag_a.stack->ifindex_of("eth0")));
      s.server = endpoint_of(
          frag_b, server_c, vm2_ip,
          frag_b.stack->iface_ip(frag_b.stack->ifindex_of("eth0")));
      break;
    }

    case CrossVmMode::kOverlay: {
      vmm::Vm& vm1 = bed.create_vm_with_uplink("vm1");
      vmm::Vm& vm2 = bed.create_vm_with_uplink("vm2");
      s.overlay = std::make_unique<OverlayNetwork>(
          bed, net::Ipv4Cidr(net::Ipv4Address(10, 99, 0, 0), 24),
          oncache_mode);
      OverlayNetwork& overlay = *s.overlay;
      container::Pod& pod_a = bed.create_pod("pod-a");
      container::Pod& pod_b = bed.create_pod("pod-b");
      auto& frag_a = pod_a.add_fragment(vm1);
      auto& frag_b = pod_b.add_fragment(vm2);

      auto overlay_attach = [&overlay](
                                container::Pod::Fragment& fragment,
                                std::function<void(
                                    container::Runtime::AttachOutcome)>
                                    done) {
        const auto a = overlay.attach(fragment);
        done(container::Runtime::AttachOutcome{true, a.ifindex, a.ip});
      };
      auto& client_c = boot_container(bed, frag_a, "client", overlay_attach);
      auto& server_c = boot_container(bed, frag_b, "server", overlay_attach);
      overlay.finalize();

      const auto a_ip =
          frag_a.stack->iface_ip(frag_a.stack->ifindex_of("ov0"));
      const auto b_ip =
          frag_b.stack->iface_ip(frag_b.stack->ifindex_of("ov0"));
      s.client = endpoint_of(frag_a, client_c, b_ip, a_ip);
      s.server = endpoint_of(frag_b, server_c, b_ip, b_ip);
      break;
    }
  }
  return s;
}

}  // namespace nestv::scenario
