#include "scenario/single_server.hpp"

#include <cassert>

namespace nestv::scenario {

const char* to_string(ServerMode m) {
  switch (m) {
    case ServerMode::kNoCont: return "NoCont";
    case ServerMode::kNat: return "NAT";
    case ServerMode::kNatFlowCache: return "NAT+FlowCache";
    case ServerMode::kBrFusion: return "BrFusion";
  }
  return "?";
}

SingleServer make_single_server(ServerMode mode, std::uint16_t service_port,
                                TestbedConfig config) {
  SingleServer s;
  s.bed = std::make_unique<Testbed>(config);
  Testbed& bed = *s.bed;

  vmm::Vm& vm = bed.create_vm_with_uplink("vm1");
  s.vm = &vm;
  s.client = bed.host_client("client");

  vmm::Vm* vm_ptr = &vm;
  const auto guest_core_factory =
      [vm_ptr](const std::string& name) -> sim::SerialResource& {
    return vm_ptr->make_app_core(name);
  };

  if (mode == ServerMode::kNoCont) {
    s.server.stack = &vm.stack();
    s.server.local_ip = vm.stack().iface_ip(vm.stack().ifindex_of("eth0"));
    s.server.service_ip = s.server.local_ip;
    s.server.app = &vm.make_app_core("server");
    s.server.vm = &vm;
    s.server.make_core = guest_core_factory;
    return s;
  }

  container::Pod& pod = bed.create_pod("pod1");
  s.pod = &pod;
  auto& fragment = pod.add_fragment(vm);

  const bool nat_like =
      mode == ServerMode::kNat || mode == ServerMode::kNatFlowCache;
  core::Cni& cni =
      mode == ServerMode::kNat
          ? static_cast<core::Cni&>(bed.nat_cni())
          : (mode == ServerMode::kNatFlowCache
                 ? static_cast<core::Cni&>(bed.flowcache_cni())
                 : static_cast<core::Cni&>(bed.brfusion_cni()));
  core::Cni::Options options;
  if (nat_like) options.publish_ports = {service_port};

  bool ready = false;
  bed.runtime_for(vm).create_container(
      fragment, container::Image{"server-image"}, "server",
      cni.attach_fn(options),
      [&s, &ready](container::Container& c, sim::Duration boot) {
        s.srv_container = &c;
        s.boot_duration = boot;
        ready = true;
      });
  bed.run_until_ready([&ready] { return ready; });

  assert(s.srv_container != nullptr &&
         s.srv_container->state() == container::ContainerState::kRunning);

  s.server.stack = fragment.stack.get();
  s.server.local_ip =
      fragment.stack->iface_ip(fragment.stack->ifindex_of("eth0"));
  s.server.app = s.srv_container->app_core();
  s.server.vm = &vm;
  s.server.make_core = guest_core_factory;
  // The address the client dials: for NAT the published VM address (DNAT
  // translates to the container); for BrFusion the pod NIC itself.
  s.server.service_ip =
      nat_like ? vm.stack().iface_ip(vm.stack().ifindex_of("eth0"))
               : s.server.local_ip;
  return s;
}

}  // namespace nestv::scenario
