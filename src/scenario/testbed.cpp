#include "scenario/testbed.hpp"

#include <cassert>
#include <stdexcept>

namespace nestv::scenario {
namespace {

/// Sub-stream id for the FlowCache CNI's boot-jitter RNG (Rng::of_stream).
constexpr std::uint64_t kFlowCacheCniStream = 0x666c6f77ULL;  // "flow"

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : costs_(config.costs), use_vhost_(config.use_vhost) {
  if (config.engine != nullptr) {
    engine_ = config.engine;
  } else {
    owned_engine_ = std::make_unique<sim::Engine>();
    engine_ = owned_engine_.get();
  }
  vmm::PhysicalMachine::Config mc = config.machine;
  mc.seed = config.seed;
  mc.standing_rules = costs_.nf_standing_rules;
  machine_ =
      std::make_unique<vmm::PhysicalMachine>(*engine_, costs_, mc);
  vmm_ = std::make_unique<vmm::Vmm>(*machine_);
  channel_ = std::make_unique<core::OrchVmmChannel>(*vmm_);
  nat_cni_ = std::make_unique<core::BridgeNatCni>(machine_->rng().fork());
  // Seeded off the config rather than the machine RNG stream so adding
  // this CNI does not shift the fork sequence (and thus every jittered
  // timing) of the pre-existing scenarios.
  flowcache_cni_ = std::make_unique<core::FlowCacheCni>(
      sim::Rng::of_stream(config.seed, kFlowCacheCniStream));
  brfusion_cni_ = std::make_unique<core::BrFusionCni>(
      *channel_, machine_->rng().fork());
  hostlo_cni_ = std::make_unique<core::HostloCni>(*channel_);
}

vmm::Vm& Testbed::create_vm_with_uplink(const std::string& name) {
  vmm::Vm::Config vc;
  vc.name = name;
  vc.standing_rules = costs_.nf_standing_rules;
  vmm::Vm& vm = vmm_->create_vm(vc);

  net::TapDevice& tap = machine_->make_tap("tap-" + name);
  vmm::VirtioNic& nic = vm.create_nic("eth0", use_vhost_);
  nic.attach_host_tap(tap);

  net::InterfaceConfig cfg;
  cfg.name = "eth0";
  cfg.mac = machine_->allocate_mac();
  cfg.ip = machine_->allocate_bridge_ip();
  cfg.subnet = machine_->config().bridge_subnet;
  cfg.gso_bytes = costs_.gso_virtio;
  const int ifindex = vm.stack().add_interface(nic, cfg);
  vm.stack().routes().add_default(machine_->bridge_ip(), ifindex);
  return vm;
}

container::Pod& Testbed::create_pod(const std::string& name) {
  pods_.push_back(std::make_unique<container::Pod>(name));
  return *pods_.back();
}

container::Runtime& Testbed::runtime_for(vmm::Vm& vm) {
  auto it = runtimes_.find(&vm);
  if (it == runtimes_.end()) {
    it = runtimes_
             .emplace(&vm, std::make_unique<container::Runtime>(
                               vm, machine_->rng().fork()))
             .first;
  }
  return *it->second;
}

Endpoint Testbed::host_client(const std::string& process_name) {
  Endpoint e;
  e.stack = &machine_->stack();
  e.service_ip = machine_->bridge_ip();
  e.local_ip = machine_->bridge_ip();
  e.app = &machine_->make_app_core(process_name);
  e.vm = nullptr;
  vmm::PhysicalMachine* machine = machine_.get();
  e.make_core = [machine](const std::string& name) -> sim::SerialResource& {
    return machine->make_app_core(name);
  };
  return e;
}

void Testbed::run_until_ready(const std::function<bool()>& pred,
                              sim::Duration step, sim::Duration limit) {
  const sim::TimePoint deadline = engine_->now() + limit;
  while (!pred()) {
    if (engine_->now() >= deadline) {
      throw std::runtime_error("testbed: deployment did not become ready");
    }
    engine_->run_until(engine_->now() + step);
  }
}

}  // namespace nestv::scenario
