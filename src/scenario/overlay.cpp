#include "scenario/overlay.hpp"

#include <cassert>

namespace nestv::scenario {

OverlayNetwork::OverlayNetwork(Testbed& bed, net::Ipv4Cidr subnet,
                               OncacheMode oncache, std::uint32_t vni)
    : bed_(&bed), subnet_(subnet), oncache_mode_(oncache), vni_(vni) {}

OverlayNetwork::VmState& OverlayNetwork::state_for(vmm::Vm& vm) {
  auto it = states_.find(&vm);
  if (it != states_.end()) return *it->second;

  auto state = std::make_unique<VmState>();
  state->vm = &vm;
  auto& engine = bed_->engine();
  const auto& costs = bed_->costs();

  if (oncache_mode_ == OncacheMode::kAttached) {
    auto cached = std::make_unique<net::oncache::CachedBridge>(
        engine, vm.name() + "/br-overlay", costs, /*guest_level=*/true);
    state->cached_bridge = cached.get();
    state->bridge = std::move(cached);
  } else {
    state->bridge = std::make_unique<net::Bridge>(
        engine, vm.name() + "/br-overlay", costs, /*guest_level=*/true);
  }
  state->bridge->set_cpu(&vm.softirq(), sim::CpuCategory::kSoft);

  // The VTEP rides the VM's uplink address.
  const int up = vm.stack().ifindex_of("eth0");
  assert(up >= 0 && "overlay requires a configured VM uplink");
  state->vtep_ip = vm.stack().iface_ip(up);
  state->vxlan = std::make_unique<net::VxlanDevice>(
      engine, vm.name() + "/vxlan0", costs, vm.stack(), state->vtep_ip,
      vni_);
  state->vxlan->set_cpu(&vm.softirq(), sim::CpuCategory::kSoft);
  const int vxlan_port = state->bridge->add_port();
  net::Device::connect(*state->vxlan, 0, *state->bridge, vxlan_port);
  if (state->cached_bridge != nullptr) {
    state->oncache = std::make_unique<net::oncache::OnCache>(
        vm.stack(), costs, vni_);
    state->oncache->set_local_vtep(state->vtep_ip);
    state->oncache->set_uplink_ifindex(up);
    state->cached_bridge->attach_oncache(state->oncache.get(), vxlan_port);
    state->vxlan->set_oncache(state->oncache.get());
    vm.stack().attach_oncache(state->oncache.get());
  }
  // The overlay guest forwards + encapsulates: same service-time noise as
  // the NAT-forwarding guests (fig 10's variable Overlay latency).
  vm.stack().set_forward_jitter(
      0.7, vm.host().rng().fork().next_u64());

  auto& ref = *state;
  states_[&vm] = std::move(state);
  return ref;
}

OverlayNetwork::Attachment OverlayNetwork::attach(
    container::Pod::Fragment& fragment) {
  assert(fragment.vm != nullptr);
  VmState& state = state_for(*fragment.vm);
  auto& machine = fragment.vm->host();

  auto veth = std::make_unique<net::VethPair>(
      bed_->engine(),
      fragment.vm->name() + "/oveth" + std::to_string(state.veths.size()),
      bed_->costs());
  veth->set_cpu(&fragment.vm->softirq(), sim::CpuCategory::kSoft);
  net::Device::connect(veth->a(), 0, *state.bridge, state.bridge->add_port());

  net::InterfaceConfig cfg;
  cfg.name = "ov0";
  cfg.mac = machine.allocate_mac();
  cfg.ip = subnet_.host(next_ip_++);
  cfg.subnet = subnet_;
  cfg.gso_bytes = bed_->costs().gso_overlay;
  const int ifindex = fragment.stack->add_interface(veth->b(), cfg);

  state.veths.push_back(std::move(veth));
  members_.push_back(Member{&state, cfg.mac});
  return Attachment{ifindex, cfg.ip, cfg.mac};
}

void OverlayNetwork::finalize() {
  for (auto& [vm, state] : states_) {
    (void)vm;
    for (const Member& m : members_) {
      if (m.state == state.get()) continue;  // local members switch in-bridge
      state->vxlan->add_remote(m.mac, m.state->vtep_ip);
    }
    for (auto& [other_vm, other] : states_) {
      (void)other_vm;
      if (other.get() == state.get()) continue;
      state->vxlan->add_flood_target(other->vtep_ip);
    }
  }
}

void OverlayNetwork::set_oncache_enabled(bool on) {
  for (auto& [vm, state] : states_) {
    (void)vm;
    if (state->oncache) state->oncache->set_enabled(on);
  }
}

net::oncache::OnCache* OverlayNetwork::oncache_for(vmm::Vm& vm) {
  const auto it = states_.find(&vm);
  return it != states_.end() ? it->second->oncache.get() : nullptr;
}

net::VxlanDevice* OverlayNetwork::vxlan_for(vmm::Vm& vm) {
  const auto it = states_.find(&vm);
  return it != states_.end() ? it->second->vxlan.get() : nullptr;
}

OverlayNetwork::OncacheTotals OverlayNetwork::oncache_totals() const {
  OncacheTotals t;
  for (const auto& [vm, state] : states_) {
    (void)vm;
    if (!state->oncache) continue;
    t.egress_hits += state->oncache->egress_hits();
    t.ingress_hits += state->oncache->ingress_hits();
    t.invalidations += state->oncache->invalidations();
    t.entries += state->oncache->size();
    t.state_bytes += state->oncache->state_bytes();
  }
  return t;
}

}  // namespace nestv::scenario
