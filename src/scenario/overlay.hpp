// Docker-Overlay-style network: per-VM overlay bridge + VXLAN VTEP, the
// only production alternative for cross-node pod traffic the paper
// compares Hostlo against ("Overlay: Docker's network overlay solution,
// which is the only currently viable approach for cross-node pod
// deployment", section 5.1).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "container/pod.hpp"
#include "net/bridge.hpp"
#include "net/veth.hpp"
#include "net/vxlan.hpp"
#include "scenario/testbed.hpp"

namespace nestv::scenario {

class OverlayNetwork {
 public:
  OverlayNetwork(Testbed& bed,
                 net::Ipv4Cidr subnet = net::Ipv4Cidr(
                     net::Ipv4Address(10, 99, 0, 0), 24));

  struct Attachment {
    int ifindex = -1;
    net::Ipv4Address ip;
    net::MacAddress mac;
  };

  /// Joins `fragment` to the overlay: lazily creates the hosting VM's
  /// overlay bridge + VXLAN device, then attaches the fragment via veth.
  Attachment attach(container::Pod::Fragment& fragment);

  /// Programs the static L2->VTEP tables (docker's gossip/kv store role).
  /// Call after all fragments are attached.
  void finalize();

 private:
  struct VmState {
    vmm::Vm* vm = nullptr;
    std::unique_ptr<net::Bridge> bridge;
    std::unique_ptr<net::VxlanDevice> vxlan;
    std::vector<std::unique_ptr<net::VethPair>> veths;
    net::Ipv4Address vtep_ip;
  };
  struct Member {
    VmState* state;
    net::MacAddress mac;
  };

  VmState& state_for(vmm::Vm& vm);

  Testbed* bed_;
  net::Ipv4Cidr subnet_;
  std::map<vmm::Vm*, std::unique_ptr<VmState>> states_;
  std::vector<Member> members_;
  std::uint32_t next_ip_ = 2;
};

}  // namespace nestv::scenario
