// Docker-Overlay-style network: per-VM overlay bridge + VXLAN VTEP, the
// only production alternative for cross-node pod traffic the paper
// compares Hostlo against ("Overlay: Docker's network overlay solution,
// which is the only currently viable approach for cross-node pod
// deployment", section 5.1).
//
// Each VM's overlay bridge is a net::oncache::CachedBridge wired to a
// per-VM OnCache (the ONCache-style encap/decap fast path) unless
// constructed with OncacheMode::kDetached.  The cache starts *disabled*;
// attached-but-disabled is bit-identical to the detached topology (the
// bench abl_oncache gates that equivalence at delta 0), and
// set_oncache_enabled(true) flips the fast path on at runtime.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "container/pod.hpp"
#include "net/bridge.hpp"
#include "net/oncache.hpp"
#include "net/veth.hpp"
#include "net/vxlan.hpp"
#include "scenario/testbed.hpp"

namespace nestv::scenario {

class OverlayNetwork {
 public:
  /// kAttached wires a CachedBridge + OnCache per VM (cache disabled until
  /// set_oncache_enabled); kDetached builds the plain pre-oncache topology.
  enum class OncacheMode { kDetached, kAttached };

  OverlayNetwork(Testbed& bed,
                 net::Ipv4Cidr subnet = net::Ipv4Cidr(
                     net::Ipv4Address(10, 99, 0, 0), 24),
                 OncacheMode oncache = OncacheMode::kAttached,
                 std::uint32_t vni = 0);

  struct Attachment {
    int ifindex = -1;
    net::Ipv4Address ip;
    net::MacAddress mac;
  };

  /// Joins `fragment` to the overlay: lazily creates the hosting VM's
  /// overlay bridge + VXLAN device, then attaches the fragment via veth.
  Attachment attach(container::Pod::Fragment& fragment);

  /// Programs the static L2->VTEP tables (docker's gossip/kv store role).
  /// Call after all fragments are attached.
  void finalize();

  /// Flips the encap/decap fast path on every member VM's cache (no-op
  /// when constructed kDetached).  Disabling flushes the caches.
  void set_oncache_enabled(bool on);

  /// Per-VM handles (null when the VM is not a member / mode kDetached).
  [[nodiscard]] net::oncache::OnCache* oncache_for(vmm::Vm& vm);
  [[nodiscard]] net::VxlanDevice* vxlan_for(vmm::Vm& vm);

  /// Aggregates across member VMs (macro-scale peak-state sampling).
  struct OncacheTotals {
    std::uint64_t egress_hits = 0;
    std::uint64_t ingress_hits = 0;
    std::uint64_t invalidations = 0;
    std::size_t entries = 0;
    std::size_t state_bytes = 0;
  };
  [[nodiscard]] OncacheTotals oncache_totals() const;

 private:
  struct VmState {
    vmm::Vm* vm = nullptr;
    std::unique_ptr<net::Bridge> bridge;
    net::oncache::CachedBridge* cached_bridge = nullptr;  ///< view of bridge
    std::unique_ptr<net::oncache::OnCache> oncache;
    std::unique_ptr<net::VxlanDevice> vxlan;
    std::vector<std::unique_ptr<net::VethPair>> veths;
    net::Ipv4Address vtep_ip;
  };
  struct Member {
    VmState* state;
    net::MacAddress mac;
  };

  VmState& state_for(vmm::Vm& vm);

  Testbed* bed_;
  net::Ipv4Cidr subnet_;
  OncacheMode oncache_mode_;
  std::uint32_t vni_;
  std::map<vmm::Vm*, std::unique_ptr<VmState>> states_;
  std::vector<Member> members_;
  std::uint32_t next_ip_ = 2;
};

}  // namespace nestv::scenario
