#include "workload/apps.hpp"

namespace nestv::workload {

OpClassifier memcached_classifier(const MemcachedParams& p) {
  return [p](std::uint16_t conn_key, std::uint64_t op_index) {
    // Deterministic SET:GET mix, decorrelated across connections.
    const std::uint64_t h =
        (static_cast<std::uint64_t>(conn_key) * 2654435761ULL + op_index);
    const bool is_set =
        (h % static_cast<std::uint64_t>(p.set_every)) == 0;
    OpSpec spec;
    if (is_set) {
      spec.request_bytes = 12 + p.key_bytes + p.value_bytes;  // set header
      spec.response_bytes = 8;                                // STORED\r\n
      spec.server_work = p.set_work;
    } else {
      spec.request_bytes = 6 + p.key_bytes;                   // get header
      spec.response_bytes = 24 + p.value_bytes;               // VALUE..END
      spec.server_work = p.get_work;
    }
    return spec;
  };
}

MacroDeployment deploy_memcached(const scenario::Endpoint& client,
                                 const scenario::Endpoint& server,
                                 std::uint16_t port, sim::Rng server_rng,
                                 MemcachedParams params) {
  MacroDeployment d;
  const auto classifier = memcached_classifier(params);
  d.server = std::make_unique<RpcServer>(
      server, port, classifier, params.server_threads,
      params.work_jitter_sigma, server_rng, "memcached");
  d.closed_client = std::make_unique<ClosedLoopClient>(
      client, server.service_ip, port, classifier, params.client_threads,
      params.conns_per_thread, "memtier");
  return d;
}

OpClassifier nginx_classifier(const NginxParams& p) {
  return [p](std::uint16_t, std::uint64_t) {
    return OpSpec{p.request_bytes, p.file_bytes + p.resp_header_bytes,
                  p.server_work};
  };
}

MacroDeployment deploy_nginx(const scenario::Endpoint& client,
                             const scenario::Endpoint& server,
                             std::uint16_t port, sim::Rng server_rng,
                             NginxParams params) {
  MacroDeployment d;
  const auto classifier = nginx_classifier(params);
  d.server = std::make_unique<RpcServer>(
      server, port, classifier, params.server_threads,
      params.work_jitter_sigma, server_rng, "nginx");
  d.open_client = std::make_unique<OpenLoopClient>(
      client, server.service_ip, port, classifier, params.client_threads,
      params.conns, params.req_per_sec, "wrk2");
  return d;
}

OpClassifier kafka_classifier(const KafkaParams& p) {
  return [p](std::uint16_t, std::uint64_t) {
    return OpSpec{p.batch_bytes + p.produce_overhead_bytes, p.ack_bytes,
                  p.server_work_per_batch};
  };
}

MacroDeployment deploy_kafka(const scenario::Endpoint& client,
                             const scenario::Endpoint& server,
                             std::uint16_t port, sim::Rng server_rng,
                             KafkaParams params) {
  MacroDeployment d;
  const auto classifier = kafka_classifier(params);
  d.server = std::make_unique<RpcServer>(
      server, port, classifier, params.server_threads,
      params.work_jitter_sigma, server_rng, "kafka");
  d.open_client = std::make_unique<OpenLoopClient>(
      client, server.service_ip, port, classifier, params.client_threads,
      params.conns, params.batches_per_sec(), "producer-perf");
  return d;
}

}  // namespace nestv::workload
