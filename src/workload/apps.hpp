// Table 1 macro-benchmarks, parameterized over the generic RPC harness.
//
//   Application | Benchmark                   | Parameters
//   Memcached   | memtier_benchmark           | 4 threads, 50 con./thread,
//               |                             | SET:GET = 1:10
//   NGINX       | wrk2                        | 2 threads, 100 con. total,
//               |                             | 10k req/s on 1kB file
//   Kafka       | kafka-producer-perf-test.sh | 120000 msg/s, 100B messages,
//               |                             | batch size 8192B
#pragma once

#include <memory>

#include "workload/rpc.hpp"

namespace nestv::workload {

// ---- Memcached ---------------------------------------------------------------

struct MemcachedParams {
  int client_threads = 4;
  int conns_per_thread = 50;
  int set_every = 11;            ///< SET:GET = 1:10 -> one SET per 11 ops
  std::uint32_t key_bytes = 24;
  std::uint32_t value_bytes = 100;
  sim::Duration get_work = 2600;   ///< hash lookup + response assembly
  sim::Duration set_work = 3400;   ///< allocation + LRU update
  double work_jitter_sigma = 0.20;
  int server_threads = 4;
};

[[nodiscard]] OpClassifier memcached_classifier(const MemcachedParams& p);

struct MacroDeployment {
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<ClosedLoopClient> closed_client;
  std::unique_ptr<OpenLoopClient> open_client;
};

/// Deploys a Memcached server on `server` and a memtier client on `client`.
[[nodiscard]] MacroDeployment deploy_memcached(
    const scenario::Endpoint& client, const scenario::Endpoint& server,
    std::uint16_t port, sim::Rng server_rng, MemcachedParams params = {});

// ---- NGINX ---------------------------------------------------------------------

struct NginxParams {
  int client_threads = 2;
  int conns = 100;
  double req_per_sec = 10000.0;
  std::uint32_t request_bytes = 120;   ///< GET + headers
  std::uint32_t file_bytes = 1024;     ///< the 1kB file
  std::uint32_t resp_header_bytes = 238;
  sim::Duration server_work = 22000;   ///< accept->sendfile path
  /// The paper observed latency stdev ~2x the mean for NGINX under both
  /// NAT and BrFusion and attributed it to "the software itself rather
  /// than the networking layer" — modeled as heavy service-time jitter.
  double work_jitter_sigma = 1.05;
  int server_threads = 2;              ///< worker processes
};

[[nodiscard]] OpClassifier nginx_classifier(const NginxParams& p);

[[nodiscard]] MacroDeployment deploy_nginx(const scenario::Endpoint& client,
                                           const scenario::Endpoint& server,
                                           std::uint16_t port,
                                           sim::Rng server_rng,
                                           NginxParams params = {});

// ---- Kafka ----------------------------------------------------------------------

struct KafkaParams {
  double msgs_per_sec = 120000.0;
  std::uint32_t msg_bytes = 100;
  std::uint32_t batch_bytes = 8192;
  std::uint32_t produce_overhead_bytes = 94;  ///< request header
  std::uint32_t ack_bytes = 68;
  sim::Duration server_work_per_batch = 26000;  ///< log append + index
  double work_jitter_sigma = 0.30;
  int client_threads = 1;  ///< one producer
  int conns = 1;
  int server_threads = 2;

  /// Batches per second implied by the message rate.
  [[nodiscard]] double batches_per_sec() const {
    return msgs_per_sec * msg_bytes / batch_bytes;
  }
};

[[nodiscard]] OpClassifier kafka_classifier(const KafkaParams& p);

[[nodiscard]] MacroDeployment deploy_kafka(const scenario::Endpoint& client,
                                           const scenario::Endpoint& server,
                                           std::uint16_t port,
                                           sim::Rng server_rng,
                                           KafkaParams params = {});

}  // namespace nestv::workload
