// Generic request/response application harness over simulated TCP.
//
// The three macro-benchmarks (table 1) are thin parameterizations of this:
//   Memcached + memtier_benchmark  -> RpcServer + ClosedLoopClient
//   NGINX + wrk2                   -> RpcServer + OpenLoopClient
//   Kafka + kafka-producer-perf    -> RpcServer + OpenLoopClient (batches)
//
// Framing: both sides derive each operation's request/response byte counts
// from the same deterministic classifier keyed by (connection, op index) —
// standing in for the application protocol's self-describing framing,
// which the byte-count-only simulation cannot carry in-band.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scenario/testbed.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace nestv::workload {

/// What one operation looks like on the wire and on the server's CPU.
struct OpSpec {
  std::uint32_t request_bytes = 64;
  std::uint32_t response_bytes = 128;
  sim::Duration server_work = 2000;  ///< app-level (usr) work per op
};

/// Deterministic per-op shape: conn_key is the client's ephemeral port (the
/// same value both sides observe), op_index counts ops on that connection.
using OpClassifier =
    std::function<OpSpec(std::uint16_t conn_key, std::uint64_t op_index)>;

/// Multi-threaded request/response server.
class RpcServer {
 public:
  /// `work_jitter_sigma` multiplies each op's server_work by a lognormal
  /// factor (median 1) drawn server-side — application service-time noise
  /// (NGINX's huge latency stdev in fig 5 is app-level, section 5.2.2).
  RpcServer(scenario::Endpoint endpoint, std::uint16_t port,
            OpClassifier classifier, int threads, double work_jitter_sigma,
            sim::Rng rng, const std::string& name);

  [[nodiscard]] std::uint64_t ops_served() const { return ops_; }

 private:
  struct Conn;
  void on_accept(net::TcpSocket sock);
  void on_bytes(const std::shared_ptr<Conn>& conn, std::uint32_t n);

  scenario::Endpoint endpoint_;
  std::uint16_t port_;
  OpClassifier classifier_;
  std::vector<sim::SerialResource*> threads_;
  double jitter_sigma_;
  sim::Rng rng_;
  std::uint64_t ops_ = 0;
  std::size_t next_thread_ = 0;
  std::vector<std::shared_ptr<Conn>> conns_;
};

struct LoadResult {
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  double mean_latency_us = 0.0;
  double stddev_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

/// memtier-style closed loop: `threads` x `conns_per_thread` connections,
/// each keeping exactly one operation outstanding.
class ClosedLoopClient {
 public:
  ClosedLoopClient(scenario::Endpoint endpoint, net::Ipv4Address service_ip,
                   std::uint16_t port, OpClassifier classifier, int threads,
                   int conns_per_thread, const std::string& name);

  /// Runs the load for `duration` of simulated time (advances the engine).
  LoadResult run(sim::Engine& engine, sim::Duration duration);

 private:
  struct Conn;
  scenario::Endpoint endpoint_;
  net::Ipv4Address service_ip_;
  std::uint16_t port_;
  OpClassifier classifier_;
  int threads_;
  int conns_per_thread_;
  std::string name_;
};

/// wrk2-style open loop: a constant arrival rate spread over `conns`
/// connections; latency is measured from the *intended* start time, so
/// coordinated omission is avoided exactly as wrk2 does.
class OpenLoopClient {
 public:
  OpenLoopClient(scenario::Endpoint endpoint, net::Ipv4Address service_ip,
                 std::uint16_t port, OpClassifier classifier, int threads,
                 int conns, double ops_per_sec, const std::string& name);

  LoadResult run(sim::Engine& engine, sim::Duration duration);

 private:
  struct Conn;
  scenario::Endpoint endpoint_;
  net::Ipv4Address service_ip_;
  std::uint16_t port_;
  OpClassifier classifier_;
  int threads_;
  int conns_;
  double rate_;
  std::string name_;
};

}  // namespace nestv::workload
