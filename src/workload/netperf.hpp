// Netperf micro-benchmark (section 5.1): UDP_RR for latency, TCP_STREAM
// for throughput, swept over message sizes.
#pragma once

#include <cstdint>

#include "scenario/testbed.hpp"
#include "sim/stats.hpp"

namespace nestv::workload {

struct RrResult {
  std::uint64_t transactions = 0;
  double mean_latency_us = 0.0;
  double stddev_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double transactions_per_sec = 0.0;
};

struct StreamResult {
  std::uint64_t bytes_delivered = 0;
  double throughput_mbps = 0.0;
  std::uint64_t retransmits = 0;
};

class Netperf {
 public:
  /// Drives traffic from `client` to `server` on `port`.  The caller's
  /// Testbed engine is advanced internally; each run starts at the current
  /// simulated time.
  Netperf(sim::Engine& engine, scenario::Endpoint client,
          scenario::Endpoint server, std::uint16_t port);

  /// UDP_RR: synchronous transactions, one at a time (netperf -t UDP_RR).
  /// Request and response both carry `msg_bytes`.
  RrResult run_udp_rr(std::uint32_t msg_bytes, sim::Duration duration);

  /// TCP_STREAM: send as much as possible for `duration` using
  /// `msg_bytes`-sized application writes (netperf -t TCP_STREAM -m size).
  StreamResult run_tcp_stream(std::uint32_t msg_bytes,
                              sim::Duration duration);

 private:
  sim::Engine* engine_;
  scenario::Endpoint client_;
  scenario::Endpoint server_;
  std::uint16_t port_;
};

}  // namespace nestv::workload
