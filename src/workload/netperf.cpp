#include "workload/netperf.hpp"

#include <memory>

namespace nestv::workload {

Netperf::Netperf(sim::Engine& engine, scenario::Endpoint client,
                 scenario::Endpoint server, std::uint16_t port)
    : engine_(&engine),
      client_(std::move(client)),
      server_(std::move(server)),
      port_(port) {}

RrResult Netperf::run_udp_rr(std::uint32_t msg_bytes,
                             sim::Duration duration) {
  const std::uint16_t client_port = 20001;
  const sim::TimePoint deadline = engine_->now() + duration;

  // Server: echo `msg_bytes` back to the requester.
  server_.stack->udp_bind(
      port_, server_.app,
      [this, msg_bytes](const net::NetworkStack::UdpDelivery& d) {
        server_.stack->udp_send(server_.local_ip, port_, d.src_ip,
                                d.src_port, msg_bytes, server_.app);
      });

  auto latencies = std::make_shared<sim::Samples>();
  auto issued_at = std::make_shared<sim::TimePoint>(0);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [this, msg_bytes, deadline, issued_at, issue] {
    if (engine_->now() >= deadline) return;
    *issued_at = engine_->now();
    client_.stack->udp_send(client_.local_ip, 20001, server_.service_ip,
                            port_, msg_bytes, client_.app);
  };

  client_.stack->udp_bind(
      client_port, client_.app,
      [this, latencies, issued_at, issue](
          const net::NetworkStack::UdpDelivery&) {
        latencies->add(sim::to_microseconds(engine_->now() - *issued_at));
        (*issue)();
      });

  (*issue)();
  engine_->run_until(deadline + sim::milliseconds(50));

  client_.stack->udp_unbind(client_port);
  server_.stack->udp_unbind(port_);
  // The issue lambda captures its own shared_ptr; break the cycle so the
  // chain (and everything it holds) is released at teardown.
  *issue = nullptr;

  RrResult r;
  r.transactions = latencies->count();
  r.mean_latency_us = latencies->mean();
  r.stddev_latency_us = latencies->stddev();
  r.p99_latency_us = latencies->percentile(99.0);
  r.transactions_per_sec =
      static_cast<double>(r.transactions) / sim::to_seconds(duration);
  return r;
}

StreamResult Netperf::run_tcp_stream(std::uint32_t msg_bytes,
                                     sim::Duration duration) {
  const sim::TimePoint deadline = engine_->now() + duration;

  auto server_bytes = std::make_shared<std::uint64_t>(0);
  server_.stack->tcp_listen(
      port_, server_.app, [server_bytes](net::TcpSocket sock) {
        sock.set_on_receive(
            [server_bytes](std::uint32_t n) { *server_bytes += n; });
      });

  auto sock = std::make_shared<net::TcpSocket>(client_.stack->tcp_connect(
      client_.local_ip, server_.service_ip, port_, client_.app));

  // Keep up to two windows of data queued; refill as sends are accepted.
  const std::uint32_t high_water = 2 * 262144;
  auto stopped = std::make_shared<bool>(false);
  auto waiting = std::make_shared<bool>(false);
  auto send_chain = std::make_shared<std::function<void()>>();
  *send_chain = [this, sock, msg_bytes, deadline, stopped, waiting,
                 send_chain, high_water] {
    if (*stopped || engine_->now() >= deadline) {
      *stopped = true;
      return;
    }
    if (sock->buffered() >= high_water) {
      *waiting = true;  // resume from on_writable
      return;
    }
    sock->send(msg_bytes, [send_chain] { (*send_chain)(); });
  };
  sock->set_on_writable([waiting, send_chain] {
    if (*waiting) {
      *waiting = false;
      (*send_chain)();
    }
  });
  sock->set_on_connected([send_chain] { (*send_chain)(); });

  engine_->run_until(deadline);
  *stopped = true;
  const std::uint64_t delivered = *server_bytes;
  // Let in-flight segments land (they are not counted) before teardown.
  engine_->run_until(deadline + sim::milliseconds(10));

  StreamResult r;
  r.bytes_delivered = delivered;
  r.throughput_mbps = static_cast<double>(delivered) * 8.0 /
                      sim::to_seconds(duration) / 1e6;
  r.retransmits = sock->retransmits();
  // The refill lambda captures its own shared_ptr; break the cycle so the
  // chain (and everything it holds) is released at teardown.
  *send_chain = nullptr;
  return r;
}

}  // namespace nestv::workload
