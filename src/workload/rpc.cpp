#include "workload/rpc.hpp"

#include <cassert>
#include <cmath>
#include <deque>

namespace nestv::workload {

// ---- RpcServer --------------------------------------------------------------

struct RpcServer::Conn {
  net::TcpSocket sock;
  std::uint16_t key = 0;
  std::uint64_t op_index = 0;
  std::uint64_t bytes_pending = 0;
  sim::SerialResource* thread = nullptr;

  explicit Conn(net::TcpSocket s) : sock(std::move(s)) {}
};

RpcServer::RpcServer(scenario::Endpoint endpoint, std::uint16_t port,
                     OpClassifier classifier, int threads,
                     double work_jitter_sigma, sim::Rng rng,
                     const std::string& name)
    : endpoint_(std::move(endpoint)),
      port_(port),
      classifier_(std::move(classifier)),
      jitter_sigma_(work_jitter_sigma),
      rng_(rng) {
  assert(threads >= 1);
  threads_.push_back(endpoint_.app);
  for (int i = 1; i < threads; ++i) {
    threads_.push_back(&endpoint_.make_core(name + "-t" + std::to_string(i)));
  }
  endpoint_.stack->tcp_listen(
      port_, endpoint_.app,
      [this](net::TcpSocket sock) { on_accept(std::move(sock)); });
}

void RpcServer::on_accept(net::TcpSocket sock) {
  auto conn = std::make_shared<Conn>(std::move(sock));
  conn->key = conn->sock.remote_port();
  conn->thread = threads_[next_thread_++ % threads_.size()];
  conn->sock.set_on_receive([this, conn](std::uint32_t n) {
    on_bytes(conn, n);
  });
  conns_.push_back(conn);
}

void RpcServer::on_bytes(const std::shared_ptr<Conn>& conn,
                         std::uint32_t n) {
  conn->bytes_pending += n;
  while (true) {
    const OpSpec spec = classifier_(conn->key, conn->op_index);
    if (conn->bytes_pending < spec.request_bytes) break;
    conn->bytes_pending -= spec.request_bytes;
    ++conn->op_index;
    ++ops_;
    const double jitter =
        jitter_sigma_ > 0.0 ? rng_.lognormal(0.0, jitter_sigma_) : 1.0;
    const auto work = static_cast<sim::Duration>(
        static_cast<double>(spec.server_work) * jitter);
    conn->thread->submit_as(
        sim::CpuCategory::kUsr, work,
        [conn, resp = spec.response_bytes] { conn->sock.send(resp); });
  }
}

// ---- ClosedLoopClient ----------------------------------------------------------

struct ClosedLoopClient::Conn {
  net::TcpSocket sock;
  std::uint64_t op_index = 0;
  std::uint32_t resp_expected = 0;
  std::uint32_t resp_received = 0;
  sim::TimePoint issued_at = 0;
  sim::SerialResource* thread = nullptr;

  explicit Conn(net::TcpSocket s) : sock(std::move(s)) {}
};

ClosedLoopClient::ClosedLoopClient(scenario::Endpoint endpoint,
                                   net::Ipv4Address service_ip,
                                   std::uint16_t port,
                                   OpClassifier classifier, int threads,
                                   int conns_per_thread,
                                   const std::string& name)
    : endpoint_(std::move(endpoint)),
      service_ip_(service_ip),
      port_(port),
      classifier_(std::move(classifier)),
      threads_(threads),
      conns_per_thread_(conns_per_thread),
      name_(name) {}

LoadResult ClosedLoopClient::run(sim::Engine& engine,
                                 sim::Duration duration) {
  const sim::TimePoint deadline = engine.now() + duration;
  auto latencies = std::make_shared<sim::Samples>();
  std::vector<std::shared_ptr<Conn>> conns;

  std::vector<sim::SerialResource*> threads;
  threads.push_back(endpoint_.app);
  for (int i = 1; i < threads_; ++i) {
    threads.push_back(
        &endpoint_.make_core(name_ + "-t" + std::to_string(i)));
  }

  for (int t = 0; t < threads_; ++t) {
    for (int c = 0; c < conns_per_thread_; ++c) {
      auto conn = std::make_shared<Conn>(endpoint_.stack->tcp_connect(
          endpoint_.local_ip, service_ip_, port_, threads[t % threads.size()]));
      conn->thread = threads[t % threads.size()];
      conns.push_back(conn);
    }
  }

  auto issue = std::make_shared<
      std::function<void(const std::shared_ptr<Conn>&)>>();
  *issue = [this, &engine, deadline](const std::shared_ptr<Conn>& conn) {
    if (engine.now() >= deadline) return;
    const OpSpec spec = classifier_(conn->sock.local_port(), conn->op_index);
    ++conn->op_index;
    conn->resp_expected = spec.response_bytes;
    conn->resp_received = 0;
    conn->issued_at = engine.now();
    conn->sock.send(spec.request_bytes);
  };

  for (auto& conn : conns) {
    conn->sock.set_on_connected([issue, conn] { (*issue)(conn); });
    conn->sock.set_on_receive(
        [&engine, latencies, issue, conn](std::uint32_t n) {
          conn->resp_received += n;
          if (conn->resp_received >= conn->resp_expected &&
              conn->resp_expected != 0) {
            latencies->add(
                sim::to_microseconds(engine.now() - conn->issued_at));
            conn->resp_expected = 0;
            (*issue)(conn);
          }
        });
  }

  engine.run_until(deadline + sim::milliseconds(50));

  LoadResult r;
  r.ops = latencies->count();
  r.ops_per_sec = static_cast<double>(r.ops) / sim::to_seconds(duration);
  r.mean_latency_us = latencies->mean();
  r.stddev_latency_us = latencies->stddev();
  r.p50_latency_us = latencies->percentile(50.0);
  r.p99_latency_us = latencies->percentile(99.0);
  return r;
}

// ---- OpenLoopClient -------------------------------------------------------------

struct OpenLoopClient::Conn {
  net::TcpSocket sock;
  std::uint64_t op_index = 0;
  std::uint32_t resp_expected = 0;
  std::uint32_t resp_received = 0;
  sim::TimePoint intended_at = 0;
  bool busy = false;
  bool connected = false;
  std::deque<sim::TimePoint> backlog;  ///< intended times awaiting the conn

  explicit Conn(net::TcpSocket s) : sock(std::move(s)) {}
};

OpenLoopClient::OpenLoopClient(scenario::Endpoint endpoint,
                               net::Ipv4Address service_ip,
                               std::uint16_t port, OpClassifier classifier,
                               int threads, int conns, double ops_per_sec,
                               const std::string& name)
    : endpoint_(std::move(endpoint)),
      service_ip_(service_ip),
      port_(port),
      classifier_(std::move(classifier)),
      threads_(threads),
      conns_(conns),
      rate_(ops_per_sec),
      name_(name) {}

LoadResult OpenLoopClient::run(sim::Engine& engine, sim::Duration duration) {
  const sim::TimePoint start = engine.now();
  const sim::TimePoint deadline = start + duration;
  auto latencies = std::make_shared<sim::Samples>();

  std::vector<sim::SerialResource*> threads;
  threads.push_back(endpoint_.app);
  for (int i = 1; i < threads_; ++i) {
    threads.push_back(
        &endpoint_.make_core(name_ + "-t" + std::to_string(i)));
  }

  std::vector<std::shared_ptr<Conn>> conns;
  for (int c = 0; c < conns_; ++c) {
    auto conn = std::make_shared<Conn>(endpoint_.stack->tcp_connect(
        endpoint_.local_ip, service_ip_, port_,
        threads[static_cast<std::size_t>(c) % threads.size()]));
    conns.push_back(conn);
  }

  auto start_op = std::make_shared<
      std::function<void(const std::shared_ptr<Conn>&, sim::TimePoint)>>();
  *start_op = [this](const std::shared_ptr<Conn>& conn,
                     sim::TimePoint intended) {
    const OpSpec spec = classifier_(conn->sock.local_port(), conn->op_index);
    ++conn->op_index;
    conn->busy = true;
    conn->intended_at = intended;
    conn->resp_expected = spec.response_bytes;
    conn->resp_received = 0;
    conn->sock.send(spec.request_bytes);
  };

  for (auto& conn : conns) {
    conn->sock.set_on_connected([conn, start_op] {
      conn->connected = true;
      if (!conn->busy && !conn->backlog.empty()) {
        const auto intended = conn->backlog.front();
        conn->backlog.pop_front();
        (*start_op)(conn, intended);
      }
    });
    conn->sock.set_on_receive(
        [&engine, latencies, conn, start_op](std::uint32_t n) {
          conn->resp_received += n;
          if (conn->resp_expected != 0 &&
              conn->resp_received >= conn->resp_expected) {
            latencies->add(
                sim::to_microseconds(engine.now() - conn->intended_at));
            conn->resp_expected = 0;
            conn->busy = false;
            if (!conn->backlog.empty()) {
              const auto intended = conn->backlog.front();
              conn->backlog.pop_front();
              (*start_op)(conn, intended);
            }
          }
        });
  }

  // Constant-rate arrivals assigned round-robin over connections.
  const auto interval =
      static_cast<sim::Duration>(1e9 / rate_);
  const auto total_arrivals = static_cast<std::uint64_t>(
      sim::to_seconds(duration) * rate_);
  for (std::uint64_t i = 0; i < total_arrivals; ++i) {
    const sim::TimePoint when = start + i * interval;
    auto conn = conns[i % conns.size()];
    engine.schedule_at(when, [conn, when, start_op] {
      if (conn->connected && !conn->busy) {
        (*start_op)(conn, when);
      } else {
        conn->backlog.push_back(when);
      }
    });
  }

  engine.run_until(deadline + sim::milliseconds(200));

  LoadResult r;
  r.ops = latencies->count();
  r.ops_per_sec = static_cast<double>(r.ops) / sim::to_seconds(duration);
  r.mean_latency_us = latencies->mean();
  r.stddev_latency_us = latencies->stddev();
  r.p50_latency_us = latencies->percentile(50.0);
  r.p99_latency_us = latencies->percentile(99.0);
  return r;
}

}  // namespace nestv::workload
