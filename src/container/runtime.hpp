// Docker-like container engine running inside one VM.
//
// Drives the boot sequence (fig 8's measured interval): runtime setup ->
// netns -> network attach (pluggable, the CNI boundary) -> app exec ->
// first TCP message.  The network-attach step is a callback so the engine
// is agnostic of bridge+NAT vs BrFusion vs Hostlo — exactly the CNI plugin
// boundary Kubernetes uses (sections 3.2 / 4.2).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "container/boot.hpp"
#include "container/container.hpp"
#include "container/image.hpp"
#include "container/pod.hpp"
#include "sim/rng.hpp"
#include "vmm/vm.hpp"

namespace nestv::container {

class Runtime {
 public:
  /// Outcome handed back by a network attachment.
  struct AttachOutcome {
    bool ok = true;
    int ifindex = -1;
    net::Ipv4Address ip;
  };
  /// The CNI boundary: wire `fragment` into a network, then call done.
  /// Any time the attachment takes (hot-plug, iptables...) elapses on the
  /// simulated clock before `done` fires.
  using AttachFn =
      std::function<void(Pod::Fragment&, std::function<void(AttachOutcome)>)>;

  Runtime(vmm::Vm& vm, sim::Rng rng, BootTimingModel timing = {});

  /// Creates and boots a container inside `fragment`.  `done` fires when
  /// the container has sent its first TCP message (state kRunning), with
  /// the measured boot duration.
  void create_container(
      Pod::Fragment& fragment, Image image, const std::string& name,
      AttachFn attach,
      std::function<void(Container&, sim::Duration)> done);

  [[nodiscard]] vmm::Vm& vm() { return *vm_; }
  [[nodiscard]] std::uint64_t containers_created() const { return created_; }

 private:
  vmm::Vm* vm_;
  sim::Rng rng_;
  BootTimingModel timing_;
  std::uint64_t created_ = 0;
};

}  // namespace nestv::container
