// Pods: groups of logically coupled containers sharing a network namespace.
//
// A conventional pod has exactly one fragment (one netns in one VM).  With
// Hostlo the pod may be *disaggregated*: one fragment per VM, each holding
// the endpoint of the shared Hostlo interface as its localhost (section 4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "net/stack.hpp"
#include "net/stack_backend.hpp"
#include "vmm/vm.hpp"

namespace nestv::container {

class Pod {
 public:
  /// One network namespace of the pod, inside one VM.  The namespace's
  /// protocol work runs on the hosting VM's softirq vCPU (same guest
  /// kernel, separate netns).
  struct Fragment {
    Pod* pod = nullptr;
    vmm::Vm* vm = nullptr;
    std::unique_ptr<net::StackBackend> stack;
    std::vector<std::unique_ptr<Container>> containers;
  };

  explicit Pod(std::string name) : name_(std::move(name)) {}

  Pod(const Pod&) = delete;
  Pod& operator=(const Pod&) = delete;

  /// Adds one netns in `vm`; `mode` picks the fragment's stack flavour
  /// (kFull keeps pre-seam behavior; kFastPath runs the compact pipeline —
  /// no netfilter chains, so no standing rules are installed).
  Fragment& add_fragment(vmm::Vm& vm,
                         net::StackMode mode = net::StackMode::kFull);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::vector<std::unique_ptr<Fragment>>& fragments() {
    return fragments_;
  }
  [[nodiscard]] bool is_cross_vm() const { return fragments_.size() > 1; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Fragment>> fragments_;
};

}  // namespace nestv::container
