// Container images (metadata only; pull/extract cost feeds the boot model).
#pragma once

#include <cstdint>
#include <string>

namespace nestv::container {

struct Image {
  std::string name;
  std::uint64_t size_mb = 100;
  int layers = 5;
  /// Locally cached images skip the pull phase (all fig 8 runs are warm).
  bool cached = true;
};

}  // namespace nestv::container
