// Container start-up timing model (fig 8).
//
// The paper defines start-up time as "the duration between ordering Docker
// to create the container, and the container sending a message through a
// TCP socket", measured via the TSC passed through the virtual boundary.
// Phases and magnitudes model Docker CE 18.09 on a 4.19 guest:
//   runtime  - dockerd/containerd/runc: image prep, overlayfs, cgroups
//   netns    - network namespace creation
//   <CNI>    - supplied by the network plugin (bridge+NAT vs BrFusion)
//   app      - entrypoint exec until the first TCP send
#pragma once

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace nestv::container {

struct BootTimingModel {
  // Lognormal (mu, sigma) over nanoseconds; e^19.9 ~ 440 ms.
  double runtime_mu = 19.9;
  double runtime_sigma = 0.10;
  double netns_mu = 14.5;    ///< e^14.5 ~ 2.0 ms
  double netns_sigma = 0.20;
  double app_mu = 18.6;      ///< e^18.6 ~ 120 ms
  double app_sigma = 0.12;

  // Bridge+NAT CNI internals.
  double veth_create_mu = 14.4;      ///< ~1.8 ms
  double veth_create_sigma = 0.25;
  double bridge_attach_mu = 14.0;    ///< ~1.2 ms
  double bridge_attach_sigma = 0.25;
  /// Per iptables rule insertion: the legacy backend rewrites the whole
  /// table under the xtables lock, so each insert costs ~1.6 ms with
  /// contention jitter.
  double iptables_rule_mu = 14.3;
  double iptables_rule_sigma = 0.45;
  int iptables_rules_per_container = 8;

  // BrFusion CNI internals (on top of QMP+probe from vmm::HotplugTiming).
  double guest_ifconfig_mu = 14.2;   ///< ip addr/link/route in the pod ns
  double guest_ifconfig_sigma = 0.25;

  [[nodiscard]] sim::Duration sample(sim::Rng& rng, double mu,
                                     double sigma) const {
    return static_cast<sim::Duration>(rng.lognormal(mu, sigma));
  }
};

}  // namespace nestv::container
