#include "container/pod.hpp"

#include "container/container.hpp"

namespace nestv::container {

Pod::Fragment& Pod::add_fragment(vmm::Vm& vm, net::StackMode mode) {
  auto frag = std::make_unique<Fragment>();
  frag->pod = this;
  frag->vm = &vm;
  frag->stack = net::make_stack(mode, vm.host().engine(),
                                "pod/" + name_ + "@" + vm.name(),
                                vm.host().costs(), &vm.softirq());
  // kube-proxy & friends leave a few chains even in pod namespaces.
  if (frag->stack->has_netfilter()) {
    frag->stack->netfilter().install_standing_rules(4);
  }
  fragments_.push_back(std::move(frag));
  return *fragments_.back();
}

}  // namespace nestv::container
