// Container lifecycle.
#pragma once

#include <cstdint>
#include <string>

#include "container/image.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace nestv::container {

class Pod;

enum class ContainerState : std::uint8_t {
  kCreated,
  kStarting,
  kRunning,
  kStopped,
};

[[nodiscard]] const char* to_string(ContainerState s);

class Container {
 public:
  Container(std::string name, Image image)
      : name_(std::move(name)), image_(std::move(image)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Image& image() const { return image_; }
  [[nodiscard]] ContainerState state() const { return state_; }

  /// The guest core running this container's process.
  [[nodiscard]] sim::SerialResource* app_core() const { return app_core_; }
  void set_app_core(sim::SerialResource* core) { app_core_ = core; }

  void mark_starting(sim::TimePoint t) {
    state_ = ContainerState::kStarting;
    started_at_ = t;
  }
  void mark_running(sim::TimePoint t) {
    state_ = ContainerState::kRunning;
    running_at_ = t;
  }
  void mark_stopped() { state_ = ContainerState::kStopped; }

  /// Fig 8's metric: order-to-first-TCP-message duration.
  [[nodiscard]] sim::Duration boot_duration() const {
    return running_at_ >= started_at_ ? running_at_ - started_at_ : 0;
  }

 private:
  std::string name_;
  Image image_;
  ContainerState state_ = ContainerState::kCreated;
  sim::SerialResource* app_core_ = nullptr;
  sim::TimePoint started_at_ = 0;
  sim::TimePoint running_at_ = 0;
};

}  // namespace nestv::container
