#include "container/runtime.hpp"

#include <utility>

namespace nestv::container {

const char* to_string(ContainerState s) {
  switch (s) {
    case ContainerState::kCreated: return "created";
    case ContainerState::kStarting: return "starting";
    case ContainerState::kRunning: return "running";
    case ContainerState::kStopped: return "stopped";
  }
  return "?";
}

Runtime::Runtime(vmm::Vm& vm, sim::Rng rng, BootTimingModel timing)
    : vm_(&vm), rng_(rng), timing_(timing) {}

void Runtime::create_container(
    Pod::Fragment& fragment, Image image, const std::string& name,
    AttachFn attach, std::function<void(Container&, sim::Duration)> done) {
  ++created_;
  auto& engine = vm_->host().engine();

  auto container = std::make_unique<Container>(name, std::move(image));
  Container* c = container.get();
  c->set_app_core(&vm_->make_app_core(name));
  fragment.containers.push_back(std::move(container));
  c->mark_starting(engine.now());

  const auto runtime_t =
      timing_.sample(rng_, timing_.runtime_mu, timing_.runtime_sigma);
  const auto netns_t =
      timing_.sample(rng_, timing_.netns_mu, timing_.netns_sigma);
  const auto app_t = timing_.sample(rng_, timing_.app_mu, timing_.app_sigma);

  // runtime setup, then netns, then the CNI attach, then app start.
  engine.schedule_in(
      runtime_t + netns_t,
      [this, &engine, &fragment, c, app_t, attach = std::move(attach),
       done = std::move(done)]() mutable {
        attach(fragment,
               [&engine, c, app_t, done = std::move(done)](
                   AttachOutcome outcome) mutable {
                 if (!outcome.ok) {
                   c->mark_stopped();
                   done(*c, 0);
                   return;
                 }
                 engine.schedule_in(app_t, [&engine, c,
                                            done = std::move(done)] {
                   c->mark_running(engine.now());
                   done(*c, c->boot_duration());
                 });
               });
      });
}

}  // namespace nestv::container
