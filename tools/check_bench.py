#!/usr/bin/env python3
"""Guard the deterministic benchmark metrics.

Every bench writes ``BENCH_<name>.json`` with a flat metric list.  All
simulated metrics are deterministic for a given seed (EXPERIMENTS.md:
"all runs are deterministic"), so CI can hold them to exact expected
values; only wall-clock readings (and allocator-version-dependent heap
counters) legitimately vary between runs and machines.

Modes:
  snapshot <bench_dir> -o expected.json
      Record the deterministic metrics of every BENCH_*.json in
      <bench_dir> as the expected baseline.
  check <bench_dir> --expected expected.json [--tolerance-pct P]
      Fail (exit 1) if any deterministic metric is missing or deviates
      from its expected value by more than P percent (default 0: exact,
      which is the EXPERIMENTS.md contract for seeded runs).
  diff <dir_a> <dir_b>
      Fail if the deterministic metrics of the two directories differ at
      all — used to prove ``--jobs N`` sweep output equals sequential.
  summarize <bench_dir> -o BENCH_summary.json
      Consolidate every BENCH_*.json (all metrics, wall-clock included,
      plus the execution shape: shards, worker threads, per-shard event
      counts) into one artifact for CI upload and cross-run comparison.
"""

import argparse
import glob
import json
import os
import sys

# Metric names containing these substrings are not simulation outputs:
#   wall        - wall-clock timings (events_per_sec_wall, wall_seconds)
#   heap_allocs - counts real allocator traffic; deterministic on one
#                 machine but dependent on the C++ runtime's internal
#                 allocation behaviour, so not comparable across images
NONDETERMINISTIC_SUBSTRINGS = ("wall", "heap_allocs")


def is_deterministic(name: str) -> bool:
    return not any(s in name for s in NONDETERMINISTIC_SUBSTRINGS)


def load_dir(bench_dir: str, deterministic_only: bool = True) -> dict:
    """Returns {bench_name: {metric_name: value}}."""
    out = {}
    paths = sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json")))
    # The consolidated artifact lives beside the per-bench files; it is an
    # output of this script, never an input.
    paths = [p for p in paths
             if os.path.basename(p) != "BENCH_summary.json"]
    if not paths:
        sys.exit(f"error: no BENCH_*.json files in {bench_dir}")
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        out[doc["bench"]] = {
            m["name"]: m["value"]
            for m in doc["metrics"]
            if not deterministic_only or is_deterministic(m["name"])
        }
    return out


def load_execution(bench_dir: str) -> dict:
    """Returns {bench_name: {shards, worker_threads, per_shard_events,
    [epochs, fused_epochs, cross_posts, drained_posts, idle_windows,
    barrier_wait_ns]}}.

    Execution shape is reporting only (it varies with the host and the
    --shards flag) and is therefore folded into the summary artifact but
    never compared by check/diff.  Benches driving a ShardedConductor also
    emit a nested "execution" object with the conductor's epoch-loop
    counters (ShardedConductor::stats()); those keys are flattened in.
    Older BENCH files without the fields default to the single-engine
    shape.
    """
    out = {}
    paths = sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json")))
    paths = [p for p in paths
             if os.path.basename(p) != "BENCH_summary.json"]
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        entry = {
            "shards": doc.get("shards", 1),
            "worker_threads": doc.get("worker_threads", 1),
            "per_shard_events": doc.get("per_shard_events", []),
        }
        entry.update(doc.get("execution", {}))
        out[doc["bench"]] = entry
    return out


def compare(expected: dict, actual: dict, tolerance_pct: float,
            expected_label: str, actual_label: str) -> int:
    """Symmetric comparison: a bench or metric present on only one side
    is a failure in both directions.  A produced metric with no baseline
    means the baseline is stale (re-run snapshot); a baseline metric the
    bench no longer emits means the bench silently lost coverage."""
    failures = 0
    for bench, metrics in sorted(expected.items()):
        if bench not in actual:
            print(f"FAIL {bench}: present in {expected_label}, "
                  f"missing from {actual_label}")
            failures += 1
            continue
        for name, want in sorted(metrics.items()):
            if name not in actual[bench]:
                print(f"FAIL {bench}.{name}: metric missing from "
                      f"{actual_label}")
                failures += 1
                continue
            got = actual[bench][name]
            if want == got:
                continue
            dev = abs(got - want) / abs(want) * 100.0 if want else float("inf")
            if dev > tolerance_pct:
                print(f"FAIL {bench}.{name}: expected {want!r}, got {got!r} "
                      f"(deviation {dev:.4g}% > {tolerance_pct}%)")
                failures += 1
        for name in sorted(set(actual[bench]) - set(metrics)):
            print(f"FAIL {bench}.{name}: present in {actual_label} but not "
                  f"in {expected_label} (baseline stale? re-run snapshot)")
            failures += 1
    for bench in sorted(set(actual) - set(expected)):
        print(f"FAIL {bench}: present in {actual_label} but has no "
              f"baseline in {expected_label} (re-run snapshot to record it)")
        failures += 1
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="mode", required=True)

    snap = sub.add_parser("snapshot")
    snap.add_argument("bench_dir")
    snap.add_argument("-o", "--output", required=True)

    chk = sub.add_parser("check")
    chk.add_argument("bench_dir")
    chk.add_argument("--expected", required=True)
    chk.add_argument("--tolerance-pct", type=float, default=0.0)
    chk.add_argument("--require-zero", action="append", default=[],
                     metavar="BENCH.METRIC",
                     help="fail unless this metric is present and exactly 0 "
                          "(e.g. abl_batching.batch1_equivalence_max_delta)")

    dif = sub.add_parser("diff")
    dif.add_argument("dir_a")
    dif.add_argument("dir_b")

    summ = sub.add_parser("summarize")
    summ.add_argument("bench_dir")
    summ.add_argument("-o", "--output", required=True)

    args = ap.parse_args()

    if args.mode == "snapshot":
        snapshot = load_dir(args.bench_dir)
        with open(args.output, "w") as f:
            json.dump(snapshot, f, indent=2, sort_keys=True)
            f.write("\n")
        n = sum(len(m) for m in snapshot.values())
        print(f"recorded {n} deterministic metrics "
              f"from {len(snapshot)} benches -> {args.output}")
        return 0

    if args.mode == "check":
        with open(args.expected) as f:
            expected = json.load(f)
        actual = load_dir(args.bench_dir)
        failures = compare(expected, actual, args.tolerance_pct,
                           args.expected, args.bench_dir)
        for spec in args.require_zero:
            bench, _, metric = spec.partition(".")
            got = actual.get(bench, {}).get(metric)
            if got is None:
                print(f"FAIL {spec}: required-zero metric missing")
                failures += 1
            elif got != 0:
                print(f"FAIL {spec}: expected exactly 0, got {got!r}")
                failures += 1
        if failures:
            print(f"{failures} metric(s) deviate")
            return 1
        print("all deterministic metrics match the expected baseline")
        return 0

    if args.mode == "summarize":
        benches = load_dir(args.bench_dir, deterministic_only=False)
        execution = load_execution(args.bench_dir)
        summary = {
            "benches": benches,
            "execution": execution,
            "bench_count": len(benches),
            "metric_count": sum(len(m) for m in benches.values()),
        }
        with open(args.output, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"consolidated {summary['metric_count']} metrics from "
              f"{summary['bench_count']} benches -> {args.output}")
        return 0

    # diff: exact symmetric comparison.
    a = load_dir(args.dir_a)
    b = load_dir(args.dir_b)
    failures = compare(a, b, 0.0, args.dir_a, args.dir_b)
    if failures:
        print(f"{failures} difference(s) between {args.dir_a} and "
              f"{args.dir_b}")
        return 1
    print("deterministic metrics are identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
