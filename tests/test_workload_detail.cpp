// Detailed tests of the workload harness: RPC framing, classifier
// semantics, open-loop coordinated-omission accounting, and the table 1
// parameter encodings.
#include <gtest/gtest.h>

#include "scenario/single_server.hpp"
#include "workload/apps.hpp"
#include "workload/netperf.hpp"

namespace nestv::workload {
namespace {

// ---- classifiers ------------------------------------------------------------

TEST(MemcachedClassifier, SetGetRatioIsOneToTen) {
  const MemcachedParams params;
  const auto classify = memcached_classifier(params);
  int sets = 0;
  const int n = 110000;
  for (int i = 0; i < n; ++i) {
    const auto spec = classify(40001, static_cast<std::uint64_t>(i));
    if (spec.server_work == params.set_work) ++sets;
  }
  // One SET per 11 ops (SET:GET = 1:10).
  EXPECT_NEAR(static_cast<double>(sets) / n, 1.0 / 11.0, 0.005);
}

TEST(MemcachedClassifier, DeterministicPerConnAndIndex) {
  const auto classify = memcached_classifier({});
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto a = classify(1234, i);
    const auto b = classify(1234, i);
    ASSERT_EQ(a.request_bytes, b.request_bytes);
    ASSERT_EQ(a.response_bytes, b.response_bytes);
  }
}

TEST(MemcachedClassifier, SetsCarryValueGetsReturnIt) {
  const MemcachedParams params;
  const auto classify = memcached_classifier(params);
  bool saw_set = false, saw_get = false;
  for (std::uint64_t i = 0; i < 200 && !(saw_set && saw_get); ++i) {
    const auto spec = classify(7, i);
    if (spec.server_work == params.set_work) {
      saw_set = true;
      EXPECT_GT(spec.request_bytes, params.value_bytes);  // value upstream
      EXPECT_LT(spec.response_bytes, 32u);                // STORED
    } else {
      saw_get = true;
      EXPECT_LT(spec.request_bytes, 64u);                 // key only
      EXPECT_GT(spec.response_bytes, params.value_bytes); // value downstream
    }
  }
  EXPECT_TRUE(saw_set);
  EXPECT_TRUE(saw_get);
}

TEST(NginxClassifier, Serves1kbFilePlusHeaders) {
  const NginxParams params;
  const auto spec = nginx_classifier(params)(1, 0);
  EXPECT_EQ(spec.response_bytes, params.file_bytes + params.resp_header_bytes);
  EXPECT_EQ(params.file_bytes, 1024u);  // table 1: "1kB file"
  EXPECT_EQ(params.conns, 100);         // table 1: "100 con. total"
  EXPECT_EQ(params.client_threads, 2);  // table 1: "2 threads"
  EXPECT_DOUBLE_EQ(params.req_per_sec, 10000.0);
}

TEST(KafkaClassifier, BatchRateMatchesTable1) {
  const KafkaParams params;
  EXPECT_DOUBLE_EQ(params.msgs_per_sec, 120000.0);
  EXPECT_EQ(params.msg_bytes, 100u);
  EXPECT_EQ(params.batch_bytes, 8192u);
  EXPECT_NEAR(params.batches_per_sec(), 120000.0 * 100.0 / 8192.0, 1e-9);
}

TEST(MemtierParams, MatchTable1) {
  const MemcachedParams params;
  EXPECT_EQ(params.client_threads, 4);
  EXPECT_EQ(params.conns_per_thread, 50);
  EXPECT_EQ(params.set_every, 11);
}

// ---- RPC harness over a live scenario --------------------------------------

struct RpcDetail : ::testing::Test {
  scenario::SingleServer s =
      scenario::make_single_server(scenario::ServerMode::kNoCont, 9000, {});
};

TEST_F(RpcDetail, ServerCountsEveryOp) {
  MemcachedParams params;
  params.client_threads = 1;
  params.conns_per_thread = 4;
  auto d = deploy_memcached(s.client, s.server, 9000, sim::Rng(1), params);
  const auto r = d.closed_client->run(s.bed->engine(), sim::milliseconds(50));
  EXPECT_GT(r.ops, 50u);
  EXPECT_EQ(d.server->ops_served(), r.ops);
}

TEST_F(RpcDetail, ClosedLoopLatencyPercentilesOrdered) {
  MemcachedParams params;
  params.client_threads = 2;
  params.conns_per_thread = 10;
  auto d = deploy_memcached(s.client, s.server, 9000, sim::Rng(1), params);
  const auto r = d.closed_client->run(s.bed->engine(), sim::milliseconds(60));
  EXPECT_LE(r.p50_latency_us, r.p99_latency_us);
  EXPECT_GT(r.mean_latency_us, 0.0);
  EXPECT_LE(r.mean_latency_us, r.p99_latency_us);
}

TEST_F(RpcDetail, OpenLoopHitsConfiguredRate) {
  NginxParams params;
  params.req_per_sec = 4000.0;
  params.conns = 16;
  auto d = deploy_nginx(s.client, s.server, 9000, sim::Rng(1), params);
  const auto r = d.open_client->run(s.bed->engine(), sim::milliseconds(250));
  EXPECT_NEAR(r.ops_per_sec, 4000.0, 450.0);
}

TEST_F(RpcDetail, OpenLoopAccountsCoordinatedOmission) {
  // A server stall must show up as tail latency measured from the
  // *intended* arrival time, even though requests queue client-side.
  NginxParams slow;
  slow.req_per_sec = 3000.0;
  slow.conns = 1;                  // single connection: stalls pile up
  slow.server_work = 1000000;      // 1 ms per request > interarrival
  slow.work_jitter_sigma = 0.0;
  auto d = deploy_nginx(s.client, s.server, 9000, sim::Rng(1), slow);
  const auto r = d.open_client->run(s.bed->engine(), sim::milliseconds(100));
  // Interarrival is 333 us but service takes ~1 ms: wrk2-style accounting
  // must report multi-millisecond tails, not flat ~1 ms.
  EXPECT_GT(r.p99_latency_us, 5000.0);
}

TEST_F(RpcDetail, JitterIncreasesSpread) {
  NginxParams calm;
  calm.work_jitter_sigma = 0.0;
  NginxParams noisy;
  noisy.work_jitter_sigma = 1.0;
  auto d1 = deploy_nginx(s.client, s.server, 9000, sim::Rng(1), calm);
  const auto r1 = d1.open_client->run(s.bed->engine(), sim::milliseconds(120));
  auto s2 =
      scenario::make_single_server(scenario::ServerMode::kNoCont, 9001, {});
  auto d2 = deploy_nginx(s2.client, s2.server, 9001, sim::Rng(1), noisy);
  const auto r2 =
      d2.open_client->run(s2.bed->engine(), sim::milliseconds(120));
  EXPECT_GT(r2.stddev_latency_us, 1.2 * r1.stddev_latency_us);
}

// ---- Netperf details ---------------------------------------------------------

TEST_F(RpcDetail, NetperfRrCountsMatchWindow) {
  workload::Netperf np(s.bed->engine(), s.client, s.server, 9000);
  const auto rr = np.run_udp_rr(256, sim::milliseconds(100));
  // Transactions * latency ~ window (closed loop, one outstanding).
  const double implied_us =
      static_cast<double>(rr.transactions) * rr.mean_latency_us;
  EXPECT_NEAR(implied_us, 100000.0, 8000.0);
}

TEST_F(RpcDetail, NetperfStreamCountsOnlyDeliveredBytes) {
  workload::Netperf np(s.bed->engine(), s.client, s.server, 9000);
  const auto st = np.run_tcp_stream(1024, sim::milliseconds(100));
  EXPECT_GT(st.bytes_delivered, 0u);
  EXPECT_NEAR(st.throughput_mbps,
              static_cast<double>(st.bytes_delivered) * 8.0 / 0.1 / 1e6,
              1.0);
  EXPECT_EQ(st.retransmits, 0u);  // lossless fabric
}

}  // namespace
}  // namespace nestv::workload
