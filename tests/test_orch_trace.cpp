// Tests for the fig 9 cost simulation: AWS catalog (table 2), Kubernetes
// whole-pod scheduler, Hostlo rescheduler and the synthetic trace.
#include <gtest/gtest.h>

#include <set>

#include "orch/cluster.hpp"
#include "orch/pricing.hpp"
#include "orch/scheduler.hpp"
#include "trace/google_trace.hpp"

namespace nestv::orch {
namespace {

// ---- Table 2 (verbatim from the paper) ----------------------------------------

TEST(AwsCatalog, Table2Verbatim) {
  AwsM5Catalog cat;
  ASSERT_EQ(cat.models().size(), 6u);
  const auto* large = cat.by_name("m5.large");
  ASSERT_NE(large, nullptr);
  EXPECT_EQ(large->vcpus, 2);
  EXPECT_EQ(large->memory_gb, 8);
  EXPECT_DOUBLE_EQ(large->cpu_rel, 0.0208);
  EXPECT_DOUBLE_EQ(large->price_per_hour, 0.112);

  const auto* x24 = cat.by_name("m5.24xlarge");
  ASSERT_NE(x24, nullptr);
  EXPECT_EQ(x24->vcpus, 96);
  EXPECT_EQ(x24->memory_gb, 384);
  EXPECT_DOUBLE_EQ(x24->cpu_rel, 1.0);
  EXPECT_DOUBLE_EQ(x24->price_per_hour, 5.376);

  EXPECT_DOUBLE_EQ(cat.by_name("m5.12xlarge")->price_per_hour, 2.689);
  EXPECT_DOUBLE_EQ(cat.by_name("m5.4xlarge")->cpu_rel, 0.1667);
}

TEST(AwsCatalog, ModelsSortedByPrice) {
  AwsM5Catalog cat;
  for (std::size_t i = 1; i < cat.models().size(); ++i) {
    EXPECT_LT(cat.models()[i - 1].price_per_hour,
              cat.models()[i].price_per_hour);
  }
}

TEST(AwsCatalog, CheapestFitting) {
  AwsM5Catalog cat;
  EXPECT_EQ(cat.cheapest_fitting(0.01, 0.01)->name, "m5.large");
  EXPECT_EQ(cat.cheapest_fitting(0.05, 0.01)->name, "m5.2xlarge");
  EXPECT_EQ(cat.cheapest_fitting(0.9, 0.9)->name, "m5.24xlarge");
  EXPECT_EQ(cat.cheapest_fitting(1.5, 0.1), nullptr);
}

// ---- PlacedVm ---------------------------------------------------------------------

TEST(PlacedVm, FitsWithTolerance) {
  AwsM5Catalog cat;
  PlacedVm vm{cat.by_name("m5.large"), 0.0, 0.0, {}};
  EXPECT_TRUE(vm.fits(0.0208, 0.0208));  // exact fill
  vm.add(0.0208, 0.0208, 1, 0);
  EXPECT_FALSE(vm.fits(0.001, 0.001));
}

TEST(Placement, CostSumsModels) {
  AwsM5Catalog cat;
  Placement p;
  p.vms.push_back(PlacedVm{cat.by_name("m5.large"), 0, 0, {}});
  p.vms.push_back(PlacedVm{cat.by_name("m5.xlarge"), 0, 0, {}});
  EXPECT_DOUBLE_EQ(p.cost_per_hour(), 0.112 + 0.224);
}

// ---- Kubernetes scheduler -------------------------------------------------------------

UserWorkload one_pod_user(std::vector<ContainerDemand> demands) {
  UserWorkload u;
  u.user_id = 1;
  PodSpec pod;
  pod.pod_id = 1;
  pod.containers = std::move(demands);
  u.pods.push_back(std::move(pod));
  return u;
}

TEST(KubernetesScheduler, BuysCheapestFittingForWholePod) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  // The paper's intro example: 6 vCPU + 24 GiB = 0.0625 cpu_rel, 0.0625
  // mem_rel -> must buy an m5.2xlarge at $0.448/h.
  const auto u = one_pod_user({{0.03, 0.03}, {0.0325, 0.0325}});
  const auto placement = k8s.schedule(u);
  ASSERT_EQ(placement.vms.size(), 1u);
  EXPECT_EQ(placement.vms[0].model->name, "m5.2xlarge");
  EXPECT_DOUBLE_EQ(placement.cost_per_hour(), 0.448);
}

TEST(KubernetesScheduler, GroupsPodsOnExistingVms) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  UserWorkload u;
  u.user_id = 1;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    PodSpec pod;
    pod.pod_id = i;
    pod.containers = {{0.01, 0.01}};
    u.pods.push_back(pod);
  }
  const auto placement = k8s.schedule(u);
  // Four 0.01 pods fit one m5.large (0.0208)? No - two per large.
  EXPECT_EQ(placement.vms.size(), 2u);
}

TEST(KubernetesScheduler, EveryContainerPlacedExactlyOnce) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  const auto users = trace::generate_google_like_trace({.seed = 5, .users = 20});
  for (const auto& u : users) {
    const auto placement = k8s.schedule(u);
    std::set<std::pair<std::uint32_t, std::uint32_t>> placed;
    std::size_t expected = 0;
    for (const auto& pod : u.pods) expected += pod.containers.size();
    for (const auto& vm : placement.vms) {
      for (const auto& item : vm.placed) {
        EXPECT_TRUE(placed.insert(item).second) << "duplicate placement";
      }
    }
    EXPECT_EQ(placed.size(), expected);
  }
}

TEST(KubernetesScheduler, WholePodsNeverSplit) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  const auto users = trace::generate_google_like_trace({.seed = 6, .users = 20});
  for (const auto& u : users) {
    const auto placement = k8s.schedule(u);
    // Map pod -> set of VMs hosting its containers.
    std::map<std::uint32_t, std::set<const PlacedVm*>> pod_vms;
    for (const auto& vm : placement.vms) {
      for (const auto& [pod, c] : vm.placed) {
        (void)c;
        pod_vms[pod].insert(&vm);
      }
    }
    for (const auto& [pod, vms] : pod_vms) {
      EXPECT_EQ(vms.size(), 1u) << "pod " << pod << " split by k8s";
    }
  }
}

TEST(KubernetesScheduler, CapacityNeverExceeded) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  const auto users = trace::generate_google_like_trace({.seed = 7, .users = 30});
  for (const auto& u : users) {
    const auto placement = k8s.schedule(u);
    for (const auto& vm : placement.vms) {
      EXPECT_LE(vm.used_cpu, vm.model->cpu_rel + 1e-6);
      EXPECT_LE(vm.used_mem, vm.model->mem_rel + 1e-6);
    }
  }
}

// ---- Hostlo rescheduler ----------------------------------------------------------------

TEST(HostloRescheduler, SplitsThePapersIntroExample) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  HostloRescheduler hostlo(cat);
  // 6 vCPU / 24 GiB pod: m5.2xlarge ($0.448) should become
  // m5.large + m5.xlarge ($0.336) once containers may split.
  const auto u = one_pod_user({{0.0208, 0.0208}, {0.0417, 0.0417}});
  const auto base = k8s.schedule(u);
  ASSERT_DOUBLE_EQ(base.cost_per_hour(), 0.448);
  const auto improved = hostlo.improve(u, base);
  EXPECT_DOUBLE_EQ(improved.cost_per_hour(), 0.112 + 0.224);
}

TEST(HostloRescheduler, NeverCostsMore) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  HostloRescheduler hostlo(cat);
  const auto users = trace::generate_google_like_trace({.seed = 8, .users = 60});
  for (const auto& u : users) {
    const auto base = k8s.schedule(u);
    const auto improved = hostlo.improve(u, base);
    EXPECT_LE(improved.cost_per_hour(), base.cost_per_hour() + 1e-9);
  }
}

TEST(HostloRescheduler, PreservesAllContainers) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  HostloRescheduler hostlo(cat);
  const auto users = trace::generate_google_like_trace({.seed = 9, .users = 40});
  for (const auto& u : users) {
    const auto improved = hostlo.improve(u, k8s.schedule(u));
    std::set<std::pair<std::uint32_t, std::uint32_t>> placed;
    std::size_t expected = 0;
    for (const auto& pod : u.pods) expected += pod.containers.size();
    for (const auto& vm : improved.vms) {
      for (const auto& item : vm.placed) {
        EXPECT_TRUE(placed.insert(item).second);
      }
    }
    EXPECT_EQ(placed.size(), expected);
    for (const auto& vm : improved.vms) {
      EXPECT_LE(vm.used_cpu, vm.model->cpu_rel + 1e-6);
      EXPECT_LE(vm.used_mem, vm.model->mem_rel + 1e-6);
    }
  }
}

TEST(HostloRescheduler, EliminatesWastedVms) {
  AwsM5Catalog cat;
  HostloRescheduler hostlo(cat);
  // Two pods, each on its own m5.large but jointly fitting one: the
  // improvement pass must merge them.
  UserWorkload u;
  u.user_id = 1;
  for (std::uint32_t i = 1; i <= 2; ++i) {
    PodSpec pod;
    pod.pod_id = i;
    pod.containers = {{0.009, 0.009}};
    u.pods.push_back(pod);
  }
  Placement base;
  for (int i = 0; i < 2; ++i) {
    PlacedVm vm{cat.by_name("m5.large"), 0, 0, {}};
    vm.add(0.009, 0.009, static_cast<std::uint32_t>(i + 1), 0);
    base.vms.push_back(vm);
  }
  const auto improved = hostlo.improve(u, base);
  EXPECT_EQ(improved.vms.size(), 1u);
}

// ---- synthetic trace ----------------------------------------------------------------------

TEST(GoogleTrace, DeterministicForSeed) {
  const auto a = trace::generate_google_like_trace({.seed = 42, .users = 10});
  const auto b = trace::generate_google_like_trace({.seed = 42, .users = 10});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].pods.size(), b[i].pods.size());
    for (std::size_t p = 0; p < a[i].pods.size(); ++p) {
      ASSERT_EQ(a[i].pods[p].containers.size(),
                b[i].pods[p].containers.size());
      for (std::size_t c = 0; c < a[i].pods[p].containers.size(); ++c) {
        ASSERT_DOUBLE_EQ(a[i].pods[p].containers[c].cpu,
                         b[i].pods[p].containers[c].cpu);
      }
    }
  }
}

TEST(GoogleTrace, ShapeMatchesPublishedTrace) {
  const auto users = trace::generate_google_like_trace({});
  const auto s = trace::summarize(users);
  EXPECT_EQ(s.users, 492);  // section 5.3.1's population
  EXPECT_GT(s.pods, 1000u);
  // Requests are small and right-skewed.
  EXPECT_LT(s.mean_container_cpu, 0.08);
  EXPECT_GT(s.max_container_cpu, 10 * s.mean_container_cpu);
  // Heavy tail in pods-per-user.
  EXPECT_GT(s.max_pods_per_user, 20 * s.mean_pods_per_user);
}

TEST(GoogleTrace, NoOversizedContainers) {
  const auto users = trace::generate_google_like_trace({.seed = 3});
  for (const auto& u : users) {
    for (const auto& p : u.pods) {
      for (const auto& c : p.containers) {
        EXPECT_GT(c.cpu, 0.0);
        EXPECT_GT(c.mem, 0.0);
        EXPECT_LE(c.cpu, 0.9);
        EXPECT_LE(c.mem, 0.9);
      }
    }
  }
}

TEST(GoogleTrace, HeadlineSavingsShape) {
  // The fig 9 headline: about a tenth of users save, most savers save more
  // than 5%, and the best relative saving is large (tens of percent).
  const auto users = trace::generate_google_like_trace({});
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  HostloRescheduler hostlo(cat);
  int savers = 0, savers5 = 0;
  double max_rel = 0.0;
  for (const auto& u : users) {
    const auto base = k8s.schedule(u);
    const auto improved = hostlo.improve(u, base);
    const SavingsRecord r{u.user_id, base.cost_per_hour(),
                          improved.cost_per_hour()};
    if (r.absolute_saving() > 1e-9) {
      ++savers;
      if (r.relative_saving() > 0.05) ++savers5;
      max_rel = std::max(max_rel, r.relative_saving());
    }
  }
  const double saver_frac = static_cast<double>(savers) / 492.0;
  EXPECT_GT(saver_frac, 0.05);   // paper: 11.4%
  EXPECT_LT(saver_frac, 0.25);
  EXPECT_GT(static_cast<double>(savers5) / savers, 0.5);  // paper: 66.7%
  EXPECT_GT(max_rel, 0.25);      // paper: ~40%
  EXPECT_LE(max_rel, 0.75);
}

// ---- property sweep: rescheduler invariants over many seeds ------------------------------

class ReschedulerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReschedulerSweep, InvariantsHold) {
  AwsM5Catalog cat;
  KubernetesScheduler k8s(cat);
  HostloRescheduler hostlo(cat);
  const auto users =
      trace::generate_google_like_trace({.seed = GetParam(), .users = 25});
  for (const auto& u : users) {
    const auto base = k8s.schedule(u);
    const auto improved = hostlo.improve(u, base);
    ASSERT_LE(improved.cost_per_hour(), base.cost_per_hour() + 1e-9);
    std::size_t base_items = 0, improved_items = 0;
    for (const auto& vm : base.vms) base_items += vm.placed.size();
    for (const auto& vm : improved.vms) {
      improved_items += vm.placed.size();
      ASSERT_LE(vm.used_cpu, vm.model->cpu_rel + 1e-6);
      ASSERT_LE(vm.used_mem, vm.model->mem_rel + 1e-6);
    }
    ASSERT_EQ(base_items, improved_items);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReschedulerSweep,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                           55ull, 66ull));

}  // namespace
}  // namespace nestv::orch
