// Determinism regression tests: the same scenario at the same seed must
// produce bit-for-bit identical results, run after run, including every
// floating-point metric.  This is the guard rail for hot-path work on the
// engine (inline tasks, the slot+generation event queue, the packet pool,
// the route memo): an optimisation that reorders same-instant events or
// perturbs a single cost term shows up here as an exact-equality failure
// long before anyone diffs benchmark JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "scenario/cross_vm.hpp"
#include "scenario/single_server.hpp"
#include "workload/netperf.hpp"

namespace nestv {
namespace {

// Exact bit equality for doubles: EXPECT_DOUBLE_EQ tolerates 4 ULPs, which
// would mask a reordered floating-point accumulation.
::testing::AssertionResult BitsEqual(const char* a_expr, const char* b_expr,
                                     double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  static_assert(sizeof(a) == sizeof(ab));
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ab == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ: " << a << " vs " << b;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_PRED_FORMAT2(BitsEqual, a, b)

struct RunResult {
  workload::RrResult rr;
  workload::StreamResult st;
  std::uint64_t events = 0;
  std::uint64_t final_time = 0;
};

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.rr.transactions, b.rr.transactions);
  EXPECT_BITS_EQ(a.rr.mean_latency_us, b.rr.mean_latency_us);
  EXPECT_BITS_EQ(a.rr.stddev_latency_us, b.rr.stddev_latency_us);
  EXPECT_BITS_EQ(a.rr.p99_latency_us, b.rr.p99_latency_us);
  EXPECT_BITS_EQ(a.rr.transactions_per_sec, b.rr.transactions_per_sec);
  EXPECT_EQ(a.st.bytes_delivered, b.st.bytes_delivered);
  EXPECT_BITS_EQ(a.st.throughput_mbps, b.st.throughput_mbps);
  EXPECT_EQ(a.st.retransmits, b.st.retransmits);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_time, b.final_time);
}

RunResult run_nat(std::uint64_t seed) {
  scenario::TestbedConfig config;
  config.seed = seed;
  auto s =
      scenario::make_single_server(scenario::ServerMode::kNat, 5001, config);
  workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
  RunResult r;
  r.rr = np.run_udp_rr(256, sim::milliseconds(30));
  r.st = np.run_tcp_stream(1280, sim::milliseconds(40));
  r.events = s.bed->engine().events_executed();
  r.final_time = s.bed->engine().now();
  return r;
}

RunResult run_hostlo(std::uint64_t seed) {
  scenario::TestbedConfig config;
  config.seed = seed;
  auto s =
      scenario::make_cross_vm(scenario::CrossVmMode::kHostlo, 5201, config);
  workload::Netperf np(s.bed->engine(), s.client, s.server, 5201);
  RunResult r;
  r.rr = np.run_udp_rr(512, sim::milliseconds(30));
  r.st = np.run_tcp_stream(1024, sim::milliseconds(40));
  r.events = s.bed->engine().events_executed();
  r.final_time = s.bed->engine().now();
  return r;
}

TEST(Determinism, NatNetperfIsBitIdenticalAcrossRuns) {
  const RunResult a = run_nat(42);
  const RunResult b = run_nat(42);
  expect_identical(a, b);
  // Sanity: the scenario actually moved traffic.
  EXPECT_GT(a.rr.transactions, 0u);
  EXPECT_GT(a.st.bytes_delivered, 0u);
}

TEST(Determinism, HostloNetperfIsBitIdenticalAcrossRuns) {
  const RunResult a = run_hostlo(42);
  const RunResult b = run_hostlo(42);
  expect_identical(a, b);
  EXPECT_GT(a.rr.transactions, 0u);
  EXPECT_GT(a.st.bytes_delivered, 0u);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // The converse guard: seeds must matter, or the tests above prove
  // nothing about seeded reproducibility.
  const RunResult a = run_nat(42);
  const RunResult b = run_nat(43);
  EXPECT_NE(a.events, b.events);
}

}  // namespace
}  // namespace nestv
