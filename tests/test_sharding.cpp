// Sharded-conductor contract tests.
//
// The contract (DESIGN.md section 10): a sharded run is bit-identical to
// the single-engine run of the same world, and independent of the worker
// thread count.  These tests exercise the conductor mechanics directly
// (windows, mailbox ordering, lookahead jumping), a two-machine fabric
// world against its single-engine twin, and the full datacenter macro
// scenario across shard and worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/datacenter_macro.hpp"
#include "sim/sharded_conductor.hpp"

namespace nestv {
namespace {

::testing::AssertionResult BitsEqual(const char* a_expr, const char* b_expr,
                                     double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  static_assert(sizeof(a) == sizeof(ab));
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ab == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ: " << a << " vs " << b;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_PRED_FORMAT2(BitsEqual, a, b)

// ---- conductor mechanics -----------------------------------------------

TEST(ShardedConductor, SingleShardIsThePlainEngine) {
  sim::ShardedConductor c(1, 2000);
  EXPECT_EQ(c.shards(), 1);
  EXPECT_EQ(c.worker_threads(), 1u);
  std::vector<int> order;
  c.shard(0).schedule_in(10, [&] { order.push_back(1); });
  c.shard(0).schedule_in(5, [&] { order.push_back(0); });
  c.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.shard(0).now(), 100u);
  EXPECT_EQ(c.total_events(), 2u);
}

TEST(ShardedConductor, CrossShardPostFiresAtItsInstant) {
  sim::ShardedConductor c(2, 1000, 2);
  std::vector<std::uint64_t> fired;
  c.shard(0).schedule_at(500, [&c, &fired] {
    // Event at t=500 on shard 0 mails shard 1 one lookahead ahead.
    c.post(0, 1, 500 + 1000, [&c, &fired] {
      fired.push_back(c.shard(1).now());
    });
  });
  c.run_until(10000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1500u);
  EXPECT_EQ(c.shard(0).now(), 10000u);
  EXPECT_EQ(c.shard(1).now(), 10000u);
  EXPECT_EQ(c.cross_posts(), 1u);
}

TEST(ShardedConductor, MailDrainsInWhenThenSourceThenPostOrder) {
  // Three shards mail shard 2 from the same window; deliveries must sort
  // by (when, src_shard, post order) regardless of posting interleave.
  sim::ShardedConductor c(3, 100, 1);  // one worker: fixed drain schedule
  std::vector<int> order;
  c.shard(0).schedule_at(10, [&] {
    c.post(0, 2, 300, [&order] { order.push_back(10); });
    c.post(0, 2, 200, [&order] { order.push_back(0); });
    c.post(0, 2, 200, [&order] { order.push_back(1); });
  });
  c.shard(1).schedule_at(10, [&] {
    c.post(1, 2, 200, [&order] { order.push_back(2); });
  });
  c.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10}));
}

TEST(ShardedConductor, IdleStretchesSkipInOneWindow) {
  // Two events a second apart with L=1000ns must not cost a million
  // epochs: the window jumps to the global minimum next event.
  sim::ShardedConductor c(2, 1000, 1);
  int fired = 0;
  c.shard(0).schedule_at(sim::seconds(1), [&] { ++fired; });
  c.shard(1).schedule_at(sim::seconds(2), [&] { ++fired; });
  c.run_until(sim::seconds(3));
  EXPECT_EQ(fired, 2);
  EXPECT_LT(c.epochs(), 10u);
}

TEST(ShardedConductor, WorkerCountDoesNotChangeDelivery) {
  auto run = [](unsigned workers) {
    sim::ShardedConductor c(4, 500, workers);
    // One slot per destination shard: each is written only by its owning
    // worker, so the records are race-free and comparable across runs.
    std::vector<std::uint64_t> log(4, 0);
    for (int s = 0; s < 4; ++s) {
      c.shard(s).schedule_at(std::uint64_t(100 + s), [&c, s, &log] {
        const int dst = (s + 1) % 4;
        c.post(s, dst, c.shard(s).now() + 500 + std::uint64_t(s),
               [&c, dst, s, &log] {
                 log[std::size_t(dst)] =
                     c.shard(dst).now() * 10 + std::uint64_t(s);
               });
      });
    }
    c.run_until(5000);
    return log;
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(4));
}

// ---- two-machine fabric: sharded vs single-engine twin -----------------

struct MacroDigest {
  double transactions, latency, bytes, digest;
  std::uint64_t events;
};

MacroDigest run_macro(int shards, unsigned workers, int machines = 4,
                      int flows = 6) {
  scenario::DatacenterMacroConfig cfg;
  cfg.seed = 11;
  cfg.machines = machines;
  cfg.shards = shards;
  cfg.max_workers = workers;
  cfg.trace_users = 6;
  cfg.flows = flows;
  cfg.measure_window = sim::milliseconds(40);
  const auto r = scenario::run_datacenter_macro(cfg);
  return {r.rr_transactions, r.rr_latency_ns_sum, r.stream_bytes_delivered,
          r.flow_digest, r.events_total};
}

void expect_identical(const MacroDigest& a, const MacroDigest& b) {
  EXPECT_BITS_EQ(a.transactions, b.transactions);
  EXPECT_BITS_EQ(a.latency, b.latency);
  EXPECT_BITS_EQ(a.bytes, b.bytes);
  EXPECT_BITS_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
}

TEST(ShardedMacro, ProducesTraffic) {
  const auto r = run_macro(1, 1);
  EXPECT_GT(r.transactions, 0.0);
  EXPECT_GT(r.bytes, 0.0);
  EXPECT_GT(r.events, 0u);
}

TEST(ShardedMacro, ShardCountIsInvisibleInResults) {
  const auto base = run_macro(1, 1);
  expect_identical(base, run_macro(2, 2));
  expect_identical(base, run_macro(4, 4));
}

TEST(ShardedMacro, WorkerCountIsInvisibleInResults) {
  const auto w1 = run_macro(4, 1);
  expect_identical(w1, run_macro(4, 2));
  expect_identical(w1, run_macro(4, 4));
}

TEST(ShardedMacro, ReportsExecutionShape) {
  scenario::DatacenterMacroConfig cfg;
  cfg.seed = 11;
  cfg.machines = 4;
  cfg.shards = 4;
  cfg.max_workers = 2;
  cfg.trace_users = 4;
  cfg.flows = 4;
  cfg.measure_window = sim::milliseconds(20);
  const auto r = scenario::run_datacenter_macro(cfg);
  EXPECT_EQ(r.shards, 4);
  ASSERT_EQ(r.per_shard_events.size(), 4u);
  std::uint64_t sum = 0;
  for (auto e : r.per_shard_events) sum += e;
  EXPECT_EQ(sum, r.events_total);
  EXPECT_GT(r.epochs, 0u);
  EXPECT_GT(r.cross_posts, 0u);
  EXPECT_LE(r.worker_threads, 2u);
}

}  // namespace
}  // namespace nestv
