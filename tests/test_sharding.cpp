// Sharded-conductor contract tests.
//
// The contract (DESIGN.md section 10): a sharded run is bit-identical to
// the single-engine run of the same world, and independent of the worker
// thread count.  These tests exercise the conductor mechanics directly
// (windows, mailbox ordering, lookahead jumping), a two-machine fabric
// world against its single-engine twin, and the full datacenter macro
// scenario across shard and worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "scenario/datacenter_macro.hpp"
#include "scenario/macro_scale.hpp"
#include "sim/sharded_conductor.hpp"

namespace nestv {
namespace {

::testing::AssertionResult BitsEqual(const char* a_expr, const char* b_expr,
                                     double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  static_assert(sizeof(a) == sizeof(ab));
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ab == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ: " << a << " vs " << b;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_PRED_FORMAT2(BitsEqual, a, b)

// ---- conductor mechanics -----------------------------------------------

TEST(ShardedConductor, SingleShardIsThePlainEngine) {
  sim::ShardedConductor c(1, 2000);
  EXPECT_EQ(c.shards(), 1);
  EXPECT_EQ(c.worker_threads(), 1u);
  std::vector<int> order;
  c.shard(0).schedule_in(10, [&] { order.push_back(1); });
  c.shard(0).schedule_in(5, [&] { order.push_back(0); });
  c.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.shard(0).now(), 100u);
  EXPECT_EQ(c.total_events(), 2u);
}

TEST(ShardedConductor, CrossShardPostFiresAtItsInstant) {
  sim::ShardedConductor c(2, 1000, 2);
  std::vector<std::uint64_t> fired;
  c.shard(0).schedule_at(500, [&c, &fired] {
    // Event at t=500 on shard 0 mails shard 1 one lookahead ahead.
    c.post(0, 1, 500 + 1000, [&c, &fired] {
      fired.push_back(c.shard(1).now());
    });
  });
  c.run_until(10000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1500u);
  EXPECT_EQ(c.shard(0).now(), 10000u);
  EXPECT_EQ(c.shard(1).now(), 10000u);
  EXPECT_EQ(c.cross_posts(), 1u);
}

TEST(ShardedConductor, MailDrainsInWhenThenSourceThenPostOrder) {
  // Three shards mail shard 2 from the same window; deliveries must sort
  // by (when, src_shard, post order) regardless of posting interleave.
  sim::ShardedConductor c(3, 100, 1);  // one worker: fixed drain schedule
  std::vector<int> order;
  c.shard(0).schedule_at(10, [&] {
    c.post(0, 2, 300, [&order] { order.push_back(10); });
    c.post(0, 2, 200, [&order] { order.push_back(0); });
    c.post(0, 2, 200, [&order] { order.push_back(1); });
  });
  c.shard(1).schedule_at(10, [&] {
    c.post(1, 2, 200, [&order] { order.push_back(2); });
  });
  c.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10}));
}

TEST(ShardedConductor, IdleStretchesSkipInOneWindow) {
  // Two events a second apart with L=1000ns must not cost a million
  // epochs: the window jumps to the global minimum next event.
  sim::ShardedConductor c(2, 1000, 1);
  int fired = 0;
  c.shard(0).schedule_at(sim::seconds(1), [&] { ++fired; });
  c.shard(1).schedule_at(sim::seconds(2), [&] { ++fired; });
  c.run_until(sim::seconds(3));
  EXPECT_EQ(fired, 2);
  EXPECT_LT(c.epochs(), 10u);
}

TEST(ShardedConductor, WorkerCountDoesNotChangeDelivery) {
  auto run = [](unsigned workers) {
    sim::ShardedConductor c(4, 500, workers);
    // One slot per destination shard: each is written only by its owning
    // worker, so the records are race-free and comparable across runs.
    std::vector<std::uint64_t> log(4, 0);
    for (int s = 0; s < 4; ++s) {
      c.shard(s).schedule_at(std::uint64_t(100 + s), [&c, s, &log] {
        const int dst = (s + 1) % 4;
        c.post(s, dst, c.shard(s).now() + 500 + std::uint64_t(s),
               [&c, dst, s, &log] {
                 log[std::size_t(dst)] =
                     c.shard(dst).now() * 10 + std::uint64_t(s);
               });
      });
    }
    c.run_until(5000);
    return log;
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(4));
}

// ---- lookahead matrix ---------------------------------------------------

constexpr sim::TimePoint kNever = std::numeric_limits<sim::TimePoint>::max();

TEST(LookaheadMatrix, DegenerateSingleShardUsesScalarCycle) {
  sim::LookaheadMatrix m(1, 1000);
  m.finalize();
  EXPECT_FALSE(m.has_links());
  EXPECT_EQ(m.bound(0, 0), 2000u);
  const sim::TimePoint next[] = {500};
  // The self-pair cycle is the only constraint: 500 + 2000 - 1.
  EXPECT_EQ(m.window_end(0, next, 100000), 2499u);
  EXPECT_EQ(m.window_end(0, next, 1200), 1200u);  // deadline clamps
}

TEST(LookaheadMatrix, AsymmetricPairBoundsAndWindows) {
  sim::LookaheadMatrix m(2, 1);
  m.note_link(0, 1, 100);
  m.note_link(1, 0, 700);
  m.finalize();
  ASSERT_TRUE(m.has_links());
  EXPECT_EQ(m.bound(0, 1), 100u);
  EXPECT_EQ(m.bound(1, 0), 700u);
  // Self-pair = shortest cycle through the shard: 100 + 700 both ways.
  EXPECT_EQ(m.bound(0, 0), 800u);
  EXPECT_EQ(m.bound(1, 1), 800u);

  const sim::TimePoint next[] = {1000, 2000};
  // wend(0) = min(1000 + 800, 2000 + 700) - 1; the tighter constraint is
  // shard 0's own reflected traffic.
  EXPECT_EQ(m.window_end(0, next, 100000), 1799u);
  // wend(1) = min(1000 + 100, 2000 + 800) - 1; shard 0's cheap wire into
  // shard 1 dominates even though shard 1 itself is far ahead.
  EXPECT_EQ(m.window_end(1, next, 100000), 1099u);
  EXPECT_EQ(m.window_end(0, next, 1500), 1500u);  // deadline clamps
}

TEST(LookaheadMatrix, ClosureIsTransitiveAndUnreachableUnconstrained) {
  // A one-way chain 0 -> 1 -> 2: the closure gives 0 -> 2, nothing flows
  // backwards, and no cycle exists anywhere.
  sim::LookaheadMatrix m(3, 1);
  m.note_link(0, 1, 100);
  m.note_link(1, 2, 200);
  m.finalize();
  EXPECT_EQ(m.bound(0, 2), 300u);
  EXPECT_EQ(m.bound(2, 0), sim::LookaheadMatrix::kUnreachable);
  EXPECT_EQ(m.bound(1, 0), sim::LookaheadMatrix::kUnreachable);
  EXPECT_EQ(m.bound(0, 0), sim::LookaheadMatrix::kUnreachable);

  const sim::TimePoint next[] = {50, kNever, kNever};
  // Shard 0 is unconstrained (no cycle, upstream shards idle): full window.
  EXPECT_EQ(m.window_end(0, next, 7777), 7777u);
  EXPECT_EQ(m.window_end(1, next, 7777), 149u);   // 50 + 100 - 1
  EXPECT_EQ(m.window_end(2, next, 7777), 349u);   // 50 + 300 - 1
}

TEST(LookaheadMatrix, IdleShardsImposeNoConstraint) {
  sim::LookaheadMatrix m(2, 1);
  m.note_link(0, 1, 100);
  m.note_link(1, 0, 100);
  m.finalize();
  const sim::TimePoint all_idle[] = {kNever, kNever};
  EXPECT_EQ(m.window_end(0, all_idle, 424242), 424242u);
  // A horizon near the top of the time axis saturates instead of wrapping.
  const sim::TimePoint huge[] = {kNever - 10, kNever};
  EXPECT_EQ(m.window_end(1, huge, 424242), 424242u);
}

TEST(LookaheadMatrix, UniformModeFallsBackToScalar) {
  sim::LookaheadMatrix m(2, 1000);
  m.note_link(0, 1, 50000);
  m.note_link(1, 0, 50000);
  m.set_uniform(true);
  m.finalize();
  EXPECT_FALSE(m.has_links());
  EXPECT_EQ(m.bound(0, 1), 1000u);
  EXPECT_EQ(m.bound(0, 0), 2000u);
  // Flipping uniform off restores the closure after re-finalizing.
  m.set_uniform(false);
  m.finalize();
  EXPECT_EQ(m.bound(0, 1), 50000u);
}

// ---- epoch barrier ------------------------------------------------------

TEST(EpochBarrier, SixteenWorkerContentionStress) {
  // Each worker stamps its slot with the round number, crosses the
  // barrier, and checks every other slot carries the same stamp — the
  // barrier must order all pre-barrier writes before all post-barrier
  // reads.  A second barrier keeps the next round's writes from racing
  // the readers.  16 workers on however few cores the host has also
  // exercises the yield path of the backoff.
  constexpr unsigned kWorkers = 16;
  constexpr std::uint64_t kRounds = 200;
  sim::EpochBarrier barrier(kWorkers);
  std::vector<std::uint64_t> slot(kWorkers, 0);
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t round = 1; round <= kRounds; ++round) {
        slot[w] = round;
        barrier.arrive_and_wait();
        for (unsigned o = 0; o < kWorkers; ++o) {
          if (slot[o] != round) mismatches.fetch_add(1);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---- per-pair windows through the conductor -----------------------------

TEST(ShardedConductor, PerPairLookaheadWidensWindowsOverScalar) {
  // Two busy shards joined by slow 4000ns wires.  With the scalar window
  // (500ns) every epoch advances ~500ns; with the per-pair matrix the
  // window stretches to the wire latency.  Same deliveries either way.
  auto run = [](bool uniform) {
    struct Ticker {
      sim::Engine* e = nullptr;
      sim::TimePoint limit = 0;
      int count = 0;
      void arm() {
        e->schedule_in(100, [this] {
          ++count;
          if (e->now() < limit) arm();
        });
      }
    };
    sim::ShardedConductor c(2, 500, 1);
    c.note_cross_link(0, 1, 4000);
    c.note_cross_link(1, 0, 4000);
    c.set_uniform_window(uniform);
    Ticker t0{&c.shard(0), 20000};
    Ticker t1{&c.shard(1), 20000};
    t0.arm();
    t1.arm();
    std::vector<std::uint64_t> fired;
    c.shard(0).schedule_at(1000, [&c, &fired] {
      c.post(0, 1, 1000 + 4000, [&c, &fired] {
        fired.push_back(c.shard(1).now());
      });
    });
    c.run_until(20000);
    return std::tuple(c.epochs(), t0.count + t1.count, fired);
  };
  const auto [epochs_pairs, ticks_pairs, fired_pairs] = run(false);
  const auto [epochs_scalar, ticks_scalar, fired_scalar] = run(true);
  EXPECT_EQ(ticks_pairs, ticks_scalar);
  ASSERT_EQ(fired_pairs, fired_scalar);
  ASSERT_EQ(fired_pairs.size(), 1u);
  EXPECT_EQ(fired_pairs[0], 5000u);
  // ~20000/4000 epochs vs ~20000/500: at least 4x fewer with the matrix.
  EXPECT_LT(epochs_pairs * 4, epochs_scalar);
}

// ---- two-machine fabric: sharded vs single-engine twin -----------------

struct MacroDigest {
  double transactions, latency, bytes, digest;
  std::uint64_t events;
};

MacroDigest run_macro(int shards, unsigned workers, int machines = 4,
                      int flows = 6) {
  scenario::DatacenterMacroConfig cfg;
  cfg.seed = 11;
  cfg.machines = machines;
  cfg.shards = shards;
  cfg.max_workers = workers;
  cfg.trace_users = 6;
  cfg.flows = flows;
  cfg.measure_window = sim::milliseconds(40);
  const auto r = scenario::run_datacenter_macro(cfg);
  return {r.rr_transactions, r.rr_latency_ns_sum, r.stream_bytes_delivered,
          r.flow_digest, r.events_total};
}

void expect_identical(const MacroDigest& a, const MacroDigest& b) {
  EXPECT_BITS_EQ(a.transactions, b.transactions);
  EXPECT_BITS_EQ(a.latency, b.latency);
  EXPECT_BITS_EQ(a.bytes, b.bytes);
  EXPECT_BITS_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
}

TEST(ShardedMacro, ProducesTraffic) {
  const auto r = run_macro(1, 1);
  EXPECT_GT(r.transactions, 0.0);
  EXPECT_GT(r.bytes, 0.0);
  EXPECT_GT(r.events, 0u);
}

TEST(ShardedMacro, ShardCountIsInvisibleInResults) {
  const auto base = run_macro(1, 1);
  expect_identical(base, run_macro(2, 2));
  expect_identical(base, run_macro(4, 4));
}

TEST(ShardedMacro, WorkerCountIsInvisibleInResults) {
  const auto w1 = run_macro(4, 1);
  expect_identical(w1, run_macro(4, 2));
  expect_identical(w1, run_macro(4, 4));
}

TEST(ShardedMacro, MacroSmokeTopologyBitIdenticalAcrossShards) {
  // The macro-scale topology exercises everything this PR added at once:
  // note_cross_link-fed per-pair windows (fabric hop + spine links),
  // distributed spine hosting (FabricConfig::distribute_spines defaults
  // on), and the fused epoch loop.  All of it must be invisible in the
  // simulated outputs.
  auto run = [](int shards) {
    scenario::MacroScaleConfig cfg;
    cfg.seed = 7;
    cfg.machines = 8;
    cfg.machines_per_rack = 4;
    cfg.spines = 2;
    cfg.trace_users = 12;
    cfg.flows = 96;
    cfg.arrival_window = sim::milliseconds(40);
    cfg.drain = sim::milliseconds(30);
    cfg.tcp_streams = 1;
    cfg.shards = shards;
    cfg.max_workers = static_cast<unsigned>(shards);
    return scenario::run_macro_scale(cfg);
  };
  const auto base = run(1);
  const auto sharded = run(4);
  EXPECT_BITS_EQ(base.flow_digest, sharded.flow_digest);
  EXPECT_BITS_EQ(base.rr_transactions, sharded.rr_transactions);
  EXPECT_BITS_EQ(base.rr_latency_ns_sum, sharded.rr_latency_ns_sum);
  EXPECT_BITS_EQ(base.stream_bytes_delivered, sharded.stream_bytes_delivered);
  EXPECT_BITS_EQ(base.flows_completed, sharded.flows_completed);
  EXPECT_EQ(base.events_total, sharded.events_total);
  // Epoch-loop telemetry is live and consistent.
  EXPECT_GT(sharded.epochs, 0u);
  EXPECT_GT(sharded.cross_posts, 0u);
  EXPECT_EQ(sharded.drained_posts, sharded.cross_posts);
  ASSERT_EQ(sharded.idle_windows.size(), 4u);
  ASSERT_EQ(sharded.barrier_wait_ns.size(), 4u);
}

TEST(ShardedMacro, ReportsExecutionShape) {
  scenario::DatacenterMacroConfig cfg;
  cfg.seed = 11;
  cfg.machines = 4;
  cfg.shards = 4;
  cfg.max_workers = 2;
  cfg.trace_users = 4;
  cfg.flows = 4;
  cfg.measure_window = sim::milliseconds(20);
  const auto r = scenario::run_datacenter_macro(cfg);
  EXPECT_EQ(r.shards, 4);
  ASSERT_EQ(r.per_shard_events.size(), 4u);
  std::uint64_t sum = 0;
  for (auto e : r.per_shard_events) sum += e;
  EXPECT_EQ(sum, r.events_total);
  EXPECT_GT(r.epochs, 0u);
  EXPECT_GT(r.cross_posts, 0u);
  EXPECT_LE(r.worker_threads, 2u);
}

}  // namespace
}  // namespace nestv
