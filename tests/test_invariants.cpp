// Cross-cutting invariants of the whole simulation — properties that must
// hold regardless of calibration constants.
#include <gtest/gtest.h>

#include "scenario/single_server.hpp"
#include "workload/netperf.hpp"

namespace nestv {
namespace {

using scenario::ServerMode;

TEST(LedgerInvariant, HostGuestTimeEqualsGuestExecution) {
  // Every nanosecond a guest-side resource runs is simultaneously host CPU
  // lent to that VM: the host "guest" bucket must equal the sum of all
  // guest-account totals (per-app accounts double-count into the VM
  // aggregate, so compare against the aggregates only).
  auto s = scenario::make_single_server(ServerMode::kNat, 5001, {});
  s.bed->machine().ledger().reset_all();
  workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
  np.run_udp_rr(512, sim::milliseconds(50));
  np.run_tcp_stream(512, sim::milliseconds(50));

  const auto host_guest =
      s.bed->machine().host_account().get(sim::CpuCategory::kGuest);
  sim::Duration guest_total = 0;
  for (const auto* acc : s.bed->machine().ledger().accounts()) {
    // VM aggregates are named "vm/<name>" with exactly one slash segment.
    const auto& name = acc->name();
    if (name.rfind("vm/", 0) == 0 &&
        name.find('/', 3) == std::string::npos) {
      guest_total += acc->total();
    }
  }
  EXPECT_EQ(host_guest, guest_total);
  EXPECT_GT(host_guest, 0u);
}

TEST(HookInvariant, NestedPathTraversesMoreHooksThanFused) {
  // The core structural claim of section 3: BrFusion removes the guest
  // netfilter traversal entirely.  Count hook executions during identical
  // workloads.
  auto count_guest_hooks = [](ServerMode mode) {
    auto s = scenario::make_single_server(mode, 5001, {});
    const auto before = s.vm->stack().netfilter().hook_traversals();
    workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
    np.run_udp_rr(256, sim::milliseconds(50));
    return s.vm->stack().netfilter().hook_traversals() - before;
  };
  const auto nat_hooks = count_guest_hooks(ServerMode::kNat);
  const auto brf_hooks = count_guest_hooks(ServerMode::kBrFusion);
  EXPECT_GT(nat_hooks, 1000u);  // several per transaction
  EXPECT_EQ(brf_hooks, 0u);     // the VM stack is not on the path at all
}

TEST(RuleMonotonicity, MoreStandingRulesNeverHelpNat) {
  double last = 1e18;
  for (const int rules : {0, 12, 48}) {
    scenario::TestbedConfig config;
    config.costs.nf_standing_rules = rules;
    auto s = scenario::make_single_server(ServerMode::kNat, 5001, config);
    workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
    const double mbps =
        np.run_tcp_stream(1280, sim::milliseconds(120)).throughput_mbps;
    EXPECT_LT(mbps, last) << "rules=" << rules;
    last = mbps;
  }
}

TEST(CostMonotonicity, SlowerVhostNeverSpeedsUpStreams) {
  double last = 0.0;
  for (const double scale : {2.0, 1.0, 0.5}) {
    scenario::TestbedConfig config;
    config.costs.vhost_pkt =
        static_cast<sim::Duration>(650 * scale);
    config.costs.vhost_copy_byte = 0.09 * scale;
    auto s = scenario::make_single_server(ServerMode::kNoCont, 5001, config);
    workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
    const double mbps =
        np.run_tcp_stream(1280, sim::milliseconds(120)).throughput_mbps;
    EXPECT_GE(mbps, last) << "scale=" << scale;
    last = mbps;
  }
}

TEST(StackCounters, NoUnexplainedDropsOnHealthyPaths) {
  auto s = scenario::make_single_server(ServerMode::kBrFusion, 5001, {});
  workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
  const auto rr = np.run_udp_rr(512, sim::milliseconds(50));
  EXPECT_GT(rr.transactions, 100u);
  // One trailing request may be parked when the measurement window closes;
  // anything more indicates a datapath leak.
  EXPECT_LE(s.server.stack->packets_dropped(), 2u);
  EXPECT_EQ(s.server.stack->reassembly_failures(), 0u);
}

TEST(SeedInvariance, OrderingsHoldAcrossSeeds) {
  for (const std::uint64_t seed : {7ull, 99ull}) {
    scenario::TestbedConfig config;
    config.seed = seed;
    auto nat = scenario::make_single_server(ServerMode::kNat, 5001, config);
    workload::Netperf np_nat(nat.bed->engine(), nat.client, nat.server, 5001);
    const double nat_mbps =
        np_nat.run_tcp_stream(1280, sim::milliseconds(100)).throughput_mbps;

    auto brf =
        scenario::make_single_server(ServerMode::kBrFusion, 5001, config);
    workload::Netperf np_brf(brf.bed->engine(), brf.client, brf.server, 5001);
    const double brf_mbps =
        np_brf.run_tcp_stream(1280, sim::milliseconds(100)).throughput_mbps;

    EXPECT_GT(brf_mbps, 2.0 * nat_mbps) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace nestv
