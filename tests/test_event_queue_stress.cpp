// EventQueue stress test: randomized schedule/cancel interleavings checked
// against a deliberately naive reference model.
//
// The production queue is a 4-ary heap over recycled slots with lazy
// cancellation (generation mismatch).  The reference is a flat vector
// scanned linearly for the (when, seq) minimum — too slow to ship, but
// trivially correct.  Any divergence in execution order, fired set, or
// size accounting is a bug in the clever structure, not the model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace nestv::sim {
namespace {

/// Reference model: O(n) scan for the earliest live event, strict
/// (when, seq) order, eager cancellation.
class NaiveQueue {
 public:
  // Returns a model-level id (the seq number doubles as the handle).
  std::uint64_t schedule(TimePoint when) {
    entries_.push_back(Entry{when, next_seq_, true});
    return next_seq_++;
  }

  void cancel(std::uint64_t seq) {
    for (Entry& e : entries_) {
      if (e.seq == seq && e.live) {
        e.live = false;
        return;
      }
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Entry& e : entries_) n += e.live;
    return n;
  }

  /// Pops the earliest live entry; returns its seq.  Precondition: size()>0.
  std::uint64_t pop_min() {
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].live) continue;
      if (best == entries_.size() || earlier(entries_[i], entries_[best])) {
        best = i;
      }
    }
    entries_[best].live = false;
    return entries_[best].seq;
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    bool live;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

/// One randomized episode: mixed schedules (with deliberately colliding
/// timestamps), cancellations, and partial drains, then a full drain.
/// `fired` sequences from both queues must match exactly.
void run_episode(std::uint64_t seed) {
  Rng rng(seed);
  EventQueue q;
  NaiveQueue ref;

  std::vector<std::uint64_t> fired_q, fired_ref;
  // Maps the model seq -> production EventId for cancellation.
  std::vector<std::pair<std::uint64_t, EventId>> live_ids;

  const int kOps = 2000;
  for (int op = 0; op < kOps; ++op) {
    const auto dice = rng.uniform_int(0, 9);
    if (dice < 5 || q.empty()) {
      // Schedule.  Timestamps collide on purpose: only 16 distinct values,
      // so same-instant tie-breaking is exercised constantly.
      const TimePoint when = static_cast<TimePoint>(rng.uniform_int(0, 15));
      const std::uint64_t mseq = ref.schedule(when);
      const EventId id =
          q.schedule(when, [mseq, &fired_q] { fired_q.push_back(mseq); });
      EXPECT_NE(id, 0u) << "EventId 0 is reserved for 'no timer'";
      live_ids.emplace_back(mseq, id);
    } else if (dice < 7 && !live_ids.empty()) {
      // Cancel a random pending event.
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_ids.size()) - 1));
      ref.cancel(live_ids[idx].first);
      q.cancel(live_ids[idx].second);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (dice < 8 && !live_ids.empty()) {
      // Double-cancel / cancel-after-fire: re-cancel an id that may have
      // already fired or been cancelled.  Must be a no-op in both models.
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_ids.size()) - 1));
      ref.cancel(live_ids[idx].first);
      q.cancel(live_ids[idx].second);
      ref.cancel(live_ids[idx].first);
      q.cancel(live_ids[idx].second);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      // Partial drain.
      const int n = rng.uniform_int(1, 4);
      for (int i = 0; i < n && !q.empty(); ++i) {
        q.pop_and_run();
        fired_ref.push_back(ref.pop_min());
        std::erase_if(live_ids, [&](const auto& p) {
          return p.first == fired_ref.back();
        });
      }
    }
    ASSERT_EQ(q.size(), ref.size()) << "size diverged at op " << op;
    ASSERT_EQ(q.empty(), ref.size() == 0);
  }

  while (!q.empty()) {
    q.pop_and_run();
    fired_ref.push_back(ref.pop_min());
  }
  EXPECT_EQ(ref.size(), 0u);
  ASSERT_EQ(fired_q, fired_ref) << "execution order diverged, seed " << seed;
}

class EventQueueStress : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueStress, MatchesNaiveReference) {
  run_episode(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueStress, ::testing::Range(0, 12));

TEST(EventQueueStress, SelfCancellingTimerIsSafe) {
  // A timer that cancels its own id while running: the slot was already
  // released before invocation, so the cancel must be a no-op — not a
  // double free of the slot or a corruption of a recycled generation.
  EventQueue q;
  EventId self = 0;
  int ran = 0;
  self = q.schedule(10, [&] {
    ++ran;
    q.cancel(self);
  });
  // A second event at the same instant must still fire afterwards.
  q.schedule(10, [&] { ++ran; });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, 2);
}

TEST(EventQueueStress, CancelAfterFireIsNoOpEvenWhenSlotIsRecycled) {
  EventQueue q;
  int first = 0, second = 0;
  const EventId a = q.schedule(1, [&] { ++first; });
  q.pop_and_run();
  EXPECT_EQ(first, 1);
  // The slot is recycled by the next schedule; the stale id must not be
  // able to cancel the new occupant (generation mismatch).
  const EventId b = q.schedule(2, [&] { ++second; });
  EXPECT_NE(a, b);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(second, 1);
}

TEST(EventQueueStress, RescheduleStormAtOneInstant) {
  // Heavy churn at a single timestamp: schedule 1000, cancel every other
  // one, then verify survivors fire in exact scheduling order.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(5, [i, &fired] { fired.push_back(i); }));
  }
  for (int i = 0; i < 1000; i += 2) {
    q.cancel(ids[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(i) * 2 + 1);
  }
}

}  // namespace
}  // namespace nestv::sim
