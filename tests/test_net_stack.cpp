// Integration tests for NetworkStack: ARP, UDP, TCP, loopback, forwarding,
// GRO, forced resegmentation and the VXLAN device.
#include <gtest/gtest.h>

#include <memory>

#include "net/bridge.hpp"
#include "net/stack.hpp"
#include "net/vxlan.hpp"
#include "sim/engine.hpp"

namespace nestv::net {
namespace {

const sim::CostModel kCosts{};

/// Two stacks on one bridge: 10.0.0.1 (alice) and 10.0.0.2 (bob).
struct TwoStacks : ::testing::Test {
  sim::Engine engine;
  Bridge bridge{engine, "br", kCosts};
  PortBackend port_a{engine, "pa", kCosts};
  PortBackend port_b{engine, "pb", kCosts};
  NetworkStack alice{engine, "alice", kCosts, nullptr};
  NetworkStack bob{engine, "bob", kCosts, nullptr};
  Ipv4Address ip_a{10, 0, 0, 1};
  Ipv4Address ip_b{10, 0, 0, 2};

  void SetUp() override {
    Device::connect(port_a, 0, bridge, bridge.add_port());
    Device::connect(port_b, 0, bridge, bridge.add_port());
    const Ipv4Cidr subnet(Ipv4Address(10, 0, 0, 0), 24);
    alice.add_interface(port_a, {"eth0", MacAddress::local_from_id(1), ip_a,
                                 subnet, 1500, 1448});
    bob.add_interface(port_b, {"eth0", MacAddress::local_from_id(2), ip_b,
                               subnet, 1500, 1448});
  }
};

// ---- ARP ------------------------------------------------------------------------

TEST_F(TwoStacks, ArpResolvesOnDemand) {
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(alice.arp_requests_sent(), 1u);

  // Second send: neighbour cached, no new ARP.
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(alice.arp_requests_sent(), 1u);
}

TEST_F(TwoStacks, PacketsParkedDuringArpAreFlushed) {
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  for (int i = 0; i < 5; ++i) {
    alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  }
  engine.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(alice.arp_requests_sent(), 1u);  // one resolution for the burst
}

TEST_F(TwoStacks, SeededNeighborSkipsArp) {
  alice.seed_neighbor(alice.ifindex_of("eth0"), ip_b,
                      MacAddress::local_from_id(2));
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(alice.arp_requests_sent(), 0u);
}

// ---- UDP -------------------------------------------------------------------------

TEST_F(TwoStacks, UdpDeliveryCarriesMetadata) {
  NetworkStack::UdpDelivery seen{};
  bob.udp_bind(7, nullptr,
               [&](const NetworkStack::UdpDelivery& d) { seen = d; });
  alice.udp_send(ip_a, 1234, ip_b, 7, 321, nullptr);
  engine.run();
  EXPECT_EQ(seen.bytes, 321u);
  EXPECT_EQ(seen.src_ip, ip_a);
  EXPECT_EQ(seen.src_port, 1234);
}

TEST_F(TwoStacks, UdpToUnboundPortDropped) {
  alice.udp_send(ip_a, 1000, ip_b, 999, 64, nullptr);
  engine.run();
  EXPECT_GT(bob.packets_dropped(), 0u);
}

TEST_F(TwoStacks, UdpUnbindStopsDelivery) {
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  bob.udp_unbind(7);
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
}

TEST_F(TwoStacks, UdpEchoRoundTripTimed) {
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery& d) {
    bob.udp_send(ip_b, 7, d.src_ip, d.src_port, d.bytes, nullptr);
  });
  sim::TimePoint reply_at = 0;
  alice.udp_bind(8, nullptr, [&](const NetworkStack::UdpDelivery&) {
    reply_at = engine.now();
  });
  alice.udp_send(ip_a, 8, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_GT(reply_at, 0u);
  EXPECT_LT(reply_at, sim::milliseconds(1));  // LAN round trip is microseconds
}

// ---- loopback -----------------------------------------------------------------------

TEST_F(TwoStacks, LoopbackDelivery) {
  int got = 0;
  alice.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(Ipv4Address(127, 0, 0, 1), 99, Ipv4Address(127, 0, 0, 1), 7,
                 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
}

TEST_F(TwoStacks, OwnAddressIsLocal) {
  int got = 0;
  alice.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 99, ip_a, 7, 64, nullptr);  // to own eth0 address
  engine.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(alice.arp_requests_sent(), 0u);  // never left the stack
}

// ---- TCP -------------------------------------------------------------------------------

TEST_F(TwoStacks, TcpHandshakeEstablishes) {
  bool accepted = false;
  bob.tcp_listen(80, nullptr, [&](TcpSocket) { accepted = true; });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  bool connected = false;
  client.set_on_connected([&] { connected = true; });
  engine.run();
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(connected);
  EXPECT_TRUE(client.established());
}

TEST_F(TwoStacks, TcpTransfersExactByteCount) {
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) { received += n; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(10000); });
  engine.run();
  EXPECT_EQ(received, 10000u);
  EXPECT_EQ(client.bytes_sent(), 10000u);
  EXPECT_EQ(client.retransmits(), 0u);
}

TEST_F(TwoStacks, TcpSegmentsRespectGso) {
  // gso is 1448 on these interfaces; a 10KB write must arrive in several
  // deliveries, cumulatively complete.
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) { received += n; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(10 * 1448); });
  engine.run();
  EXPECT_EQ(received, 10u * 1448u);
}

TEST_F(TwoStacks, TcpBidirectional) {
  std::uint64_t bob_got = 0, alice_got = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    auto server = std::make_shared<TcpSocket>(sock);
    server->set_on_receive([&, server](std::uint32_t n) {
      bob_got += n;
      server->send(n * 2);  // reply with twice the bytes
    });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(500); });
  client.set_on_receive([&](std::uint32_t n) { alice_got += n; });
  engine.run();
  EXPECT_EQ(bob_got, 500u);
  EXPECT_EQ(alice_got, 1000u);
}

TEST_F(TwoStacks, TcpOnQueuedFiresAfterSyscall) {
  bob.tcp_listen(80, nullptr, [](TcpSocket) {});
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  bool queued = false;
  client.set_on_connected([&client, &queued] {
    client.send(100, [&queued] { queued = true; });
  });
  engine.run();
  EXPECT_TRUE(queued);
}

TEST_F(TwoStacks, TcpCloseCompletesCleanly) {
  bool closed = false;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_closed([&] { closed = true; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] {
    client.send(100);
    client.close();
  });
  engine.run();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(client.established());
}

TEST_F(TwoStacks, TcpConnectToClosedPortGetsNothing) {
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 81, nullptr);
  bool connected = false;
  client.set_on_connected([&] { connected = true; });
  // Run a bounded slice (SYN retransmits would otherwise keep the queue
  // alive for a while).
  engine.run_until(sim::milliseconds(50));
  EXPECT_FALSE(connected);
}

TEST_F(TwoStacks, TcpNagleCoalescesStreamWrites) {
  // Many small writes while data is in flight must produce fewer, larger
  // segments: total delivered equals total sent.
  std::uint64_t received = 0;
  int deliveries = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) {
      received += n;
      ++deliveries;
    });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] {
    for (int i = 0; i < 100; ++i) client.send(100);
  });
  engine.run();
  EXPECT_EQ(received, 10000u);
  EXPECT_LT(deliveries, 100);
}

// ---- forwarding + DNAT through a middle stack ------------------------------------------

struct ForwardingFixture : ::testing::Test {
  sim::Engine engine;
  // alice -- br1 -- router -- br2 -- bob
  Bridge br1{engine, "br1", kCosts};
  Bridge br2{engine, "br2", kCosts};
  PortBackend pa{engine, "pa", kCosts}, pr1{engine, "pr1", kCosts},
      pr2{engine, "pr2", kCosts}, pb{engine, "pb", kCosts};
  NetworkStack alice{engine, "alice", kCosts, nullptr};
  NetworkStack router{engine, "router", kCosts, nullptr};
  NetworkStack bob{engine, "bob", kCosts, nullptr};
  Ipv4Address ip_a{10, 0, 1, 2}, ip_r1{10, 0, 1, 1}, ip_r2{10, 0, 2, 1},
      ip_b{10, 0, 2, 2};

  void SetUp() override {
    Device::connect(pa, 0, br1, br1.add_port());
    Device::connect(pr1, 0, br1, br1.add_port());
    Device::connect(pr2, 0, br2, br2.add_port());
    Device::connect(pb, 0, br2, br2.add_port());
    const Ipv4Cidr net1(Ipv4Address(10, 0, 1, 0), 24);
    const Ipv4Cidr net2(Ipv4Address(10, 0, 2, 0), 24);
    const int a_if = alice.add_interface(
        pa, {"eth0", MacAddress::local_from_id(11), ip_a, net1, 1500, 1448});
    router.add_interface(pr1, {"eth0", MacAddress::local_from_id(12), ip_r1,
                               net1, 1500, 1448});
    router.add_interface(pr2, {"eth1", MacAddress::local_from_id(13), ip_r2,
                               net2, 1500, 1448});
    const int b_if = bob.add_interface(
        pb, {"eth0", MacAddress::local_from_id(14), ip_b, net2, 1500, 1448});
    alice.routes().add_default(ip_r1, a_if);
    bob.routes().add_default(ip_r2, b_if);
    router.set_forwarding(true);
  }
};

TEST_F(ForwardingFixture, RoutesAcrossSubnets) {
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(router.packets_forwarded(), 1u);
}

TEST_F(ForwardingFixture, TtlExpiresInLoops) {
  // Send a packet whose TTL is 1: the router must drop it.
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  // There's no public API to set TTL on udp_send; use forwarding counter
  // to assert normal forwarding instead, then validate drop counting via
  // the unroutable-destination case below.
  alice.udp_send(ip_a, 1000, Ipv4Address(203, 0, 113, 9), 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 0);
  EXPECT_GT(router.packets_dropped(), 0u);  // no route to TEST-NET-3
}

TEST_F(ForwardingFixture, ForwardingDisabledDrops) {
  router.set_forwarding(false);
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const NetworkStack::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 0);
  EXPECT_GT(router.packets_dropped(), 0u);
}

TEST_F(ForwardingFixture, TcpThroughRouter) {
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) { received += n; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(5000); });
  engine.run();
  EXPECT_EQ(received, 5000u);
}

TEST_F(ForwardingFixture, ForcedResegmentSplitsAndReassembles) {
  // Router linearizes to 1000-byte pieces; bob's GRO re-coalesces; the
  // byte stream is intact either way.
  router.set_forced_resegment(1000);
  alice.set_iface_gso(alice.ifindex_of("eth0"), 8000);

  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) { received += n; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(16000); });
  engine.run();
  EXPECT_EQ(received, 16000u);
  // The router forwarded more packets than alice emitted segments.
  EXPECT_GT(router.packets_forwarded(), 16000u / 8000u);
}

TEST_F(ForwardingFixture, GroCoalescesAtReceiver) {
  router.set_forced_resegment(1000);
  alice.set_iface_gso(alice.ifindex_of("eth0"), 8000);

  int deliveries = 0;
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) {
      received += n;
      ++deliveries;
    });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(8000); });
  engine.run();
  EXPECT_EQ(received, 8000u);
  // 8 chunks of 1000 arrive; GRO merges them into far fewer deliveries.
  EXPECT_LE(deliveries, 3);
}

TEST_F(ForwardingFixture, GroDisabledDeliversPerChunk) {
  router.set_forced_resegment(1000);
  alice.set_iface_gso(alice.ifindex_of("eth0"), 8000);
  bob.set_gro(false);

  int deliveries = 0;
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) {
      received += n;
      ++deliveries;
    });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(8000); });
  engine.run();
  EXPECT_EQ(received, 8000u);
  // Without GRO the TCP layer sees (nearly) every wire chunk; deliveries
  // may still batch at the app wakeup, so just require more than with GRO.
  EXPECT_GE(deliveries, 1);
  EXPECT_EQ(bob.packets_delivered(), 8u + 2u);  // 8 data chunks + handshake ACK...
}

// ---- VXLAN ---------------------------------------------------------------------------------

TEST_F(TwoStacks, VxlanEncapsulatesAndDecapsulates) {
  // Overlay bridges on both sides, VTEPs riding alice/bob underlay.
  Bridge ov_a(engine, "ov-a", kCosts);
  Bridge ov_b(engine, "ov-b", kCosts);
  VxlanDevice vx_a(engine, "vxlan-a", kCosts, alice, ip_a);
  VxlanDevice vx_b(engine, "vxlan-b", kCosts, bob, ip_b);
  Device::connect(vx_a, 0, ov_a, ov_a.add_port());
  Device::connect(vx_b, 0, ov_b, ov_b.add_port());

  // One overlay member behind each bridge.
  PortBackend mem_a(engine, "ma", kCosts), mem_b(engine, "mb", kCosts);
  Device::connect(mem_a, 0, ov_a, ov_a.add_port());
  Device::connect(mem_b, 0, ov_b, ov_b.add_port());
  const auto mac_a = MacAddress::local_from_id(100);
  const auto mac_b = MacAddress::local_from_id(101);
  vx_a.add_remote(mac_b, ip_b);
  vx_b.add_remote(mac_a, ip_a);

  std::vector<EthernetFrame> at_b;
  mem_b.set_rx([&](EthernetFrame f) { at_b.push_back(std::move(f)); });

  EthernetFrame inner;
  inner.src = mac_a;
  inner.dst = mac_b;
  inner.packet.proto = L4Proto::kUdp;
  inner.packet.src_ip = Ipv4Address(10, 99, 0, 1);
  inner.packet.dst_ip = Ipv4Address(10, 99, 0, 2);
  inner.packet.payload_bytes = 77;
  mem_a.xmit(std::move(inner));
  engine.run();

  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].packet.payload_bytes, 77u);
  EXPECT_EQ(at_b[0].dst, mac_b);
  EXPECT_EQ(vx_a.encapsulated(), 1u);
  EXPECT_EQ(vx_b.decapsulated(), 1u);
}

}  // namespace
}  // namespace nestv::net
