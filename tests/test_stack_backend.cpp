// StackBackend seam tests: the fast-path backend end-to-end, capability
// gating, backend lifecycle (attach/detach mid-run), the stack-as-a-service
// mode (guests-per-worker=1 equivalence, attribution, teardown with
// in-flight trains) and the SBO callback migration of TcpSocket.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>

#include "net/bridge.hpp"
#include "net/faststack.hpp"
#include "net/packet_pool.hpp"
#include "net/stack.hpp"
#include "net/stack_backend.hpp"
#include "net/stack_service.hpp"
#include "sim/engine.hpp"

namespace nestv::net {
namespace {

const sim::CostModel kCosts{};
const Ipv4Cidr kSubnet(Ipv4Address(10, 0, 0, 0), 24);

/// Two fast-path stacks on one bridge, mirroring the FullStack TwoStacks
/// fixture: 10.0.0.1 (alice) and 10.0.0.2 (bob).
struct FastPathTwoStacks : ::testing::Test {
  sim::Engine engine;
  Bridge bridge{engine, "br", kCosts};
  PortBackend port_a{engine, "pa", kCosts};
  PortBackend port_b{engine, "pb", kCosts};
  FastPathStack alice{engine, "alice", kCosts, nullptr};
  FastPathStack bob{engine, "bob", kCosts, nullptr};
  Ipv4Address ip_a{10, 0, 0, 1};
  Ipv4Address ip_b{10, 0, 0, 2};

  void SetUp() override {
    Device::connect(port_a, 0, bridge, bridge.add_port());
    Device::connect(port_b, 0, bridge, bridge.add_port());
    alice.add_interface(port_a, {"eth0", MacAddress::local_from_id(1), ip_a,
                                 kSubnet, 1500, 1448});
    bob.add_interface(port_b, {"eth0", MacAddress::local_from_id(2), ip_b,
                               kSubnet, 1500, 1448});
  }
};

TEST_F(FastPathTwoStacks, UdpRoundTripWithArp) {
  int got = 0;
  bob.udp_bind(7, nullptr, [&](const StackBackend::UdpDelivery& d) {
    ++got;
    bob.udp_send(ip_b, 7, d.src_ip, d.src_port, d.bytes, nullptr);
  });
  int replies = 0;
  alice.udp_bind(8, nullptr,
                 [&](const StackBackend::UdpDelivery&) { ++replies; });
  alice.udp_send(ip_a, 8, ip_b, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(replies, 1);
  // Same ARP protocol as the full stack: one resolution from alice; bob
  // learned her MAC from the request itself and replied without resolving.
  EXPECT_EQ(alice.arp_requests_sent(), 1u);
  EXPECT_EQ(bob.arp_requests_sent(), 0u);
}

TEST_F(FastPathTwoStacks, TcpStreamTransfersExactBytes) {
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&](TcpSocket sock) {
    sock.set_on_receive([&](std::uint32_t n) { received += n; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(10 * 1448); });
  engine.run();
  EXPECT_EQ(received, 10u * 1448u);
  EXPECT_EQ(client.retransmits(), 0u);
}

TEST_F(FastPathTwoStacks, LoopbackDelivery) {
  int got = 0;
  alice.udp_bind(7, nullptr,
                 [&](const StackBackend::UdpDelivery&) { ++got; });
  alice.udp_send(Ipv4Address(127, 0, 0, 1), 99, Ipv4Address(127, 0, 0, 1), 7,
                 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
}

TEST_F(FastPathTwoStacks, OversizedDatagramDroppedNotFragmented) {
  int got = 0;
  bob.udp_bind(7, nullptr,
               [&](const StackBackend::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, ip_b, 7, 5000, nullptr);  // > mtu payload
  engine.run();
  EXPECT_EQ(got, 0);
  EXPECT_GT(alice.packets_dropped(), 0u);
}

TEST_F(FastPathTwoStacks, UnsupportedCapabilitiesThrow) {
  EXPECT_EQ(alice.kind(), StackKind::kFastPath);
  EXPECT_FALSE(alice.has_netfilter());
  EXPECT_FALSE(alice.has_flowcache());
  EXPECT_THROW((void)alice.netfilter(), std::logic_error);
  EXPECT_THROW((void)alice.flow_cache(), std::logic_error);
  EXPECT_THROW(alice.set_forwarding(true), std::logic_error);
  EXPECT_THROW(alice.set_forced_resegment(1000), std::logic_error);
  EXPECT_THROW(alice.ping(ip_b, 64, [](sim::Duration) {}),
               std::logic_error);
  // Optional tuning knobs are accepted as no-ops (CNIs call these).
  EXPECT_NO_THROW(alice.set_gro(false));
  EXPECT_NO_THROW(alice.set_flowcache(true));
  EXPECT_FALSE(alice.flowcache_enabled());
  EXPECT_EQ(alice.conntrack_gc(0), 0u);
}

TEST_F(FastPathTwoStacks, DetachInterfaceMidRunDropsInFlight) {
  int got = 0;
  bob.udp_bind(7, nullptr,
               [&](const StackBackend::UdpDelivery&) { ++got; });
  // First exchange resolves ARP and proves the path works.
  alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  engine.run();
  ASSERT_EQ(got, 1);
  // Queue more traffic, then unplug alice's NIC before the engine runs:
  // parked/queued packets dead-end without crashing or leaking.
  for (int i = 0; i < 4; ++i) {
    alice.udp_send(ip_a, 1000, ip_b, 7, 64, nullptr);
  }
  alice.detach_interface(alice.ifindex_of("eth0"));
  engine.run();
  EXPECT_EQ(got, 1);  // nothing further arrived
}

TEST_F(FastPathTwoStacks, AttachInterfaceMidRun) {
  // A third stack hot-plugs onto the bridge after traffic has flowed.
  engine.run();
  PortBackend port_c(engine, "pc", kCosts);
  FastPathStack carol(engine, "carol", kCosts, nullptr);
  Device::connect(port_c, 0, bridge, bridge.add_port());
  carol.add_interface(port_c, {"eth0", MacAddress::local_from_id(3),
                               Ipv4Address(10, 0, 0, 3), kSubnet, 1500,
                               1448});
  int got = 0;
  carol.udp_bind(9, nullptr,
                 [&](const StackBackend::UdpDelivery&) { ++got; });
  alice.udp_send(ip_a, 1000, Ipv4Address(10, 0, 0, 3), 9, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
}

// ---- factory ---------------------------------------------------------------

TEST(MakeStack, FactoryDispatchesOnMode) {
  sim::Engine engine;
  const auto full = make_stack(StackMode::kFull, engine, "f", kCosts, nullptr);
  const auto fast =
      make_stack(StackMode::kFastPath, engine, "p", kCosts, nullptr);
  EXPECT_EQ(full->kind(), StackKind::kFullStack);
  EXPECT_EQ(fast->kind(), StackKind::kFastPath);
  // Service-hosted stacks come from StackService, never from the factory.
  EXPECT_THROW(
      (void)make_stack(StackMode::kService, engine, "s", kCosts, nullptr),
      std::invalid_argument);
}

// ---- backend semantic equivalence ------------------------------------------

/// Runs one bounded UDP RR wave (count transactions) between two stacks of
/// `mode` and returns the transaction total — the semantic outcome the
/// backends must agree on even though their per-packet costs differ.
std::uint64_t run_rr_wave(StackMode mode, int count) {
  sim::Engine engine;
  Bridge bridge(engine, "br", kCosts);
  PortBackend pa(engine, "pa", kCosts), pb(engine, "pb", kCosts);
  auto cli = make_stack(mode, engine, "cli", kCosts, nullptr);
  auto srv = make_stack(mode, engine, "srv", kCosts, nullptr);
  Device::connect(pa, 0, bridge, bridge.add_port());
  Device::connect(pb, 0, bridge, bridge.add_port());
  const Ipv4Address ip_a(10, 0, 0, 1), ip_b(10, 0, 0, 2);
  cli->add_interface(pa, {"eth0", MacAddress::local_from_id(1), ip_a,
                          kSubnet, 1500, 1448});
  srv->add_interface(pb, {"eth0", MacAddress::local_from_id(2), ip_b,
                          kSubnet, 1500, 1448});
  srv->udp_bind(7, nullptr, [&](const StackBackend::UdpDelivery& d) {
    srv->udp_send(ip_b, 7, d.src_ip, d.src_port, d.bytes, nullptr);
  });
  std::uint64_t transactions = 0;
  int remaining = count - 1;
  cli->udp_bind(8, nullptr, [&](const StackBackend::UdpDelivery&) {
    ++transactions;
    if (remaining == 0) return;
    --remaining;
    cli->udp_send(ip_a, 8, ip_b, 7, 64, nullptr);
  });
  cli->udp_send(ip_a, 8, ip_b, 7, 64, nullptr);
  engine.run();
  return transactions;
}

TEST(BackendEquivalence, FastPathMatchesFullStackSemantics) {
  EXPECT_EQ(run_rr_wave(StackMode::kFull, 20),
            run_rr_wave(StackMode::kFastPath, 20));
}

// ---- stack-as-a-service ----------------------------------------------------

/// One RR scenario between a client stack and a server stack whose softirq
/// resource is supplied by the caller; returns {transactions, end_time}.
struct ServiceScenario {
  std::uint64_t transactions = 0;
  sim::TimePoint end_time = 0;
};

ServiceScenario run_hosted_rr(bool use_service, int count) {
  sim::Engine engine;
  Bridge bridge(engine, "br", kCosts);
  PortBackend pa(engine, "pa", kCosts), pb(engine, "pb", kCosts);
  FullStack cli(engine, "cli", kCosts, nullptr);

  // The variant under test: a dedicated softirq resource versus a
  // StackService worker hosting exactly one guest.  With one tenant the
  // worker serializes identically, so the runs must be bit-for-bit equal.
  std::unique_ptr<sim::SerialResource> own;
  std::unique_ptr<StackService> service;
  std::unique_ptr<StackBackend> owned_srv;
  StackBackend* srv = nullptr;
  if (use_service) {
    service = std::make_unique<StackService>(engine, "svc", kCosts);
    srv = &service->attach_guest("srv");
  } else {
    own = std::make_unique<sim::SerialResource>(engine, "svc.worker");
    owned_srv = std::make_unique<FullStack>(engine, "srv", kCosts, own.get());
    srv = owned_srv.get();
  }

  Device::connect(pa, 0, bridge, bridge.add_port());
  Device::connect(pb, 0, bridge, bridge.add_port());
  const Ipv4Address ip_a(10, 0, 0, 1), ip_b(10, 0, 0, 2);
  cli.add_interface(pa, {"eth0", MacAddress::local_from_id(1), ip_a, kSubnet,
                         1500, 1448});
  srv->add_interface(pb, {"eth0", MacAddress::local_from_id(2), ip_b,
                          kSubnet, 1500, 1448});
  srv->udp_bind(7, nullptr, [&](const StackBackend::UdpDelivery& d) {
    srv->udp_send(ip_b, 7, d.src_ip, d.src_port, d.bytes, nullptr);
  });
  ServiceScenario out;
  int remaining = count - 1;
  cli.udp_bind(8, nullptr, [&](const StackBackend::UdpDelivery&) {
    ++out.transactions;
    if (remaining == 0) return;
    --remaining;
    cli.udp_send(ip_a, 8, ip_b, 7, 64, nullptr);
  });
  cli.udp_send(ip_a, 8, ip_b, 7, 64, nullptr);
  engine.run();
  out.end_time = engine.now();
  return out;
}

TEST(StackService, SingleGuestBitEqualToDedicatedFullStack) {
  const ServiceScenario dedicated = run_hosted_rr(false, 25);
  const ServiceScenario hosted = run_hosted_rr(true, 25);
  EXPECT_EQ(dedicated.transactions, hosted.transactions);
  EXPECT_EQ(dedicated.end_time, hosted.end_time);
}

TEST(StackService, AttributesWorkerTimePerGuest) {
  sim::Engine engine;
  Bridge bridge(engine, "br", kCosts);
  StackService service(engine, "svc", kCosts);
  StackBackend& g0 = service.attach_guest("vm/g0");
  StackBackend& g1 = service.attach_guest("vm/g1");
  EXPECT_EQ(g0.kind(), StackKind::kServiceHosted);
  EXPECT_EQ(service.guest_count(), 2u);

  PortBackend p0(engine, "p0", kCosts), p1(engine, "p1", kCosts),
      pc(engine, "pc", kCosts);
  FullStack cli(engine, "cli", kCosts, nullptr);
  Device::connect(p0, 0, bridge, bridge.add_port());
  Device::connect(p1, 0, bridge, bridge.add_port());
  Device::connect(pc, 0, bridge, bridge.add_port());
  const Ipv4Address ip0(10, 0, 0, 1), ip1(10, 0, 0, 2), ipc(10, 0, 0, 9);
  g0.add_interface(p0, {"eth0", MacAddress::local_from_id(1), ip0, kSubnet,
                        1500, 1448});
  g1.add_interface(p1, {"eth0", MacAddress::local_from_id(2), ip1, kSubnet,
                        1500, 1448});
  cli.add_interface(pc, {"eth0", MacAddress::local_from_id(9), ipc, kSubnet,
                         1500, 1448});
  int got0 = 0, got1 = 0;
  g0.udp_bind(7, nullptr, [&](const StackBackend::UdpDelivery&) { ++got0; });
  g1.udp_bind(7, nullptr, [&](const StackBackend::UdpDelivery&) { ++got1; });
  // Asymmetric load: g0 sees 8 datagrams, g1 sees 2.
  for (int i = 0; i < 8; ++i) cli.udp_send(ipc, 1000, ip0, 7, 64, nullptr);
  for (int i = 0; i < 2; ++i) cli.udp_send(ipc, 1000, ip1, 7, 64, nullptr);
  engine.run();
  EXPECT_EQ(got0, 8);
  EXPECT_EQ(got1, 2);
  const sim::Duration t0 = service.attributed_soft_ns("vm/g0");
  const sim::Duration t1 = service.attributed_soft_ns("vm/g1");
  EXPECT_GT(t0, t1);
  EXPECT_GT(t1, 0);
  // Attribution is complete: the shared worker's busy time is exactly the
  // sum of its tenants' charges.
  EXPECT_EQ(t0 + t1, service.worker().busy_time());
  EXPECT_EQ(service.attributed_soft_ns("vm/unknown"), 0);
}

TEST(StackService, DetachMidRunWithInFlightTrainIsSafe) {
  const std::int64_t pool_before = PacketPool::live_nodes();
  {
    sim::Engine engine;
    Bridge bridge(engine, "br", kCosts);
    StackService service(engine, "svc", kCosts);
    StackBackend& g0 = service.attach_guest("vm/g0");
    PortBackend p0(engine, "p0", kCosts), pc(engine, "pc", kCosts);
    FullStack cli(engine, "cli", kCosts, nullptr);
    Device::connect(p0, 0, bridge, bridge.add_port());
    Device::connect(pc, 0, bridge, bridge.add_port());
    const Ipv4Address ip0(10, 0, 0, 1), ipc(10, 0, 0, 9);
    g0.add_interface(p0, {"eth0", MacAddress::local_from_id(1), ip0, kSubnet,
                          1500, 1448});
    cli.add_interface(pc, {"eth0", MacAddress::local_from_id(9), ipc,
                           kSubnet, 1500, 1448});
    int got = 0;
    g0.udp_bind(7, nullptr,
                [&](const StackBackend::UdpDelivery&) { ++got; });
    cli.udp_send(ipc, 1000, ip0, 7, 64, nullptr);
    engine.run();
    ASSERT_EQ(got, 1);

    // A burst is in flight (queued datapath events reference the hosted
    // stack) when the tenant detaches: the stack is retired, not freed,
    // and the engine drains without touching dead memory.
    for (int i = 0; i < 6; ++i) cli.udp_send(ipc, 1000, ip0, 7, 64, nullptr);
    service.detach_guest(g0);
    EXPECT_EQ(service.guest_count(), 0u);
    EXPECT_EQ(service.retired_count(), 1u);
    engine.run();
    EXPECT_EQ(got, 1);  // the detached tenant received nothing further
    // Detaching an unknown stack is a no-op.
    FullStack other(engine, "other", kCosts, nullptr);
    service.detach_guest(other);
    EXPECT_EQ(service.retired_count(), 1u);
  }
  // Retired stacks and their parked packets died with the service scope.
  EXPECT_EQ(PacketPool::live_nodes(), pool_before);
}

// ---- SBO callbacks ---------------------------------------------------------

TEST(TcpSocketCallbacks, SmallHandlersStayInline) {
  sim::Engine engine;
  Bridge bridge(engine, "br", kCosts);
  PortBackend pa(engine, "pa", kCosts), pb(engine, "pb", kCosts);
  FullStack alice(engine, "alice", kCosts, nullptr);
  FullStack bob(engine, "bob", kCosts, nullptr);
  Device::connect(pa, 0, bridge, bridge.add_port());
  Device::connect(pb, 0, bridge, bridge.add_port());
  const Ipv4Address ip_a(10, 0, 0, 1), ip_b(10, 0, 0, 2);
  alice.add_interface(pa, {"eth0", MacAddress::local_from_id(1), ip_a,
                           kSubnet, 1500, 1448});
  bob.add_interface(pb, {"eth0", MacAddress::local_from_id(2), ip_b, kSubnet,
                         1500, 1448});

  sim::reset_handler_heap_fallbacks();
  std::uint64_t received = 0;
  bob.tcp_listen(80, nullptr, [&received](TcpSocket sock) {
    sock.set_on_receive([&received](std::uint32_t n) { received += n; });
  });
  TcpSocket client = alice.tcp_connect(ip_a, ip_b, 80, nullptr);
  client.set_on_connected([&client] { client.send(2000); });
  engine.run();
  EXPECT_EQ(received, 2000u);
  // Every socket callback in this test fits the inline buffer: the whole
  // exchange runs without a single handler heap allocation.
  EXPECT_EQ(sim::handler_heap_fallbacks(), 0u);

  // An oversized capture spills — and is counted, so regressions that push
  // hot-path handlers past the SBO budget are visible.
  std::array<char, 256> big{};
  client.set_on_receive([big](std::uint32_t) { (void)big; });
  EXPECT_EQ(sim::handler_heap_fallbacks(), 1u);
}

}  // namespace
}  // namespace nestv::net
