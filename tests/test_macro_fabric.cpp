// Macro-scale layers: the compact per-flow state stores (ConnTable, the
// slab FlowCache), the hierarchical fabric's deterministic ECMP, and the
// churn scenario's execution-mode equivalence (shards / worker counts).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/conn_table.hpp"
#include "net/fabric_switch.hpp"
#include "net/flowcache/flowcache.hpp"
#include "net/packet_pool.hpp"
#include "scenario/macro_scale.hpp"
#include "sim/engine.hpp"

namespace {

using namespace nestv;

net::ConnKey key_of(std::uint32_t a, std::uint32_t b, std::uint16_t sp,
                    std::uint16_t dp) {
  net::ConnKey k;
  k.src_ip = net::Ipv4Address(a);
  k.dst_ip = net::Ipv4Address(b);
  k.src_port = sp;
  k.dst_port = dp;
  k.proto = net::L4Proto::kUdp;
  return k;
}

// ---- ConnTable ------------------------------------------------------------

TEST(ConnTable, CreateFindReplyErase) {
  net::ConnTable t;
  net::ConnEntry e;
  e.orig = key_of(1, 2, 100, 200);
  e.reply = key_of(2, 9, 200, 333);
  const auto ref = t.create(e);
  ASSERT_TRUE(ref);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.alive(ref.id));

  // Before reply registration only the orig tuple resolves.
  EXPECT_TRUE(t.find(e.orig));
  EXPECT_FALSE(t.find(e.reply));

  ref.entry->confirmed = true;
  t.register_reply(ref.id, e.reply);
  const auto by_reply = t.find(e.reply);
  ASSERT_TRUE(by_reply);
  EXPECT_EQ(by_reply.id, ref.id);

  t.erase(ref.id);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.alive(ref.id));
  EXPECT_FALSE(t.find(e.orig));
  EXPECT_FALSE(t.find(e.reply));
}

TEST(ConnTable, StaleIdsStayDeadAfterSlotReuse) {
  net::ConnTable t;
  net::ConnEntry e;
  e.orig = key_of(1, 2, 1, 1);
  const auto first = t.create(e);
  t.erase(first.id);
  // The freed slot is reused; the old id's generation must not resolve.
  e.orig = key_of(3, 4, 2, 2);
  const auto second = t.create(e);
  EXPECT_NE(first.id, second.id);
  EXPECT_FALSE(t.alive(first.id));
  EXPECT_TRUE(t.alive(second.id));
}

TEST(ConnTable, ChurnStormKeepsIndexConsistent) {
  // Insert/erase far past several geometric chunk growths and index
  // rehashes; every surviving entry must stay reachable by both tuples
  // and every erased one unreachable.
  net::ConnTable t;
  std::vector<std::uint64_t> ids;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    net::ConnEntry e;
    e.orig = key_of(std::uint32_t(i + 1), 0x0a0a0a0a,
                    std::uint16_t(i & 0xffff), 53);
    e.reply = key_of(0x0a0a0a0a, std::uint32_t(i + 1), 53,
                     std::uint16_t(i & 0xffff));
    e.confirmed = true;
    const auto ref = t.create(e);
    t.register_reply(ref.id, e.reply);
    ids.push_back(ref.id);
  }
  EXPECT_EQ(t.size(), std::size_t(n));
  for (int i = 0; i < n; i += 2) t.erase(ids[std::size_t(i)]);
  EXPECT_EQ(t.size(), std::size_t(n) / 2);
  for (int i = 0; i < n; ++i) {
    const auto k = key_of(std::uint32_t(i + 1), 0x0a0a0a0a,
                          std::uint16_t(i & 0xffff), 53);
    EXPECT_EQ(t.find(k) ? true : false, i % 2 == 1) << i;
    EXPECT_EQ(t.alive(ids[std::size_t(i)]), i % 2 == 1) << i;
  }
  // Entry pointers are stable across all growth (slab storage).
  const auto ref = t.find_id(ids[1]);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.entry->orig.src_ip.value(), 2u);
}

TEST(ConnTable, PortOccupancyTracksRegisteredTuples) {
  net::ConnTable t;
  net::ConnEntry e;
  e.orig = key_of(1, 2, 4000, 80);
  const auto ref = t.create(e);
  // orig registers (udp, dst_ip=2, dst_port=80).
  EXPECT_TRUE(t.port_in_use(net::L4Proto::kUdp, net::Ipv4Address(2), 80));
  EXPECT_FALSE(t.port_in_use(net::L4Proto::kUdp, net::Ipv4Address(2), 81));
  EXPECT_FALSE(t.port_in_use(net::L4Proto::kTcp, net::Ipv4Address(2), 80));
  t.erase(ref.id);
  EXPECT_FALSE(t.port_in_use(net::L4Proto::kUdp, net::Ipv4Address(2), 80));
}

TEST(ConnTable, NearIdleFootprintIsSmall) {
  // Hundreds of mostly-idle stacks are the macro-scale common case: a
  // table holding three connections must cost a couple of KB, not a
  // 256-slot chunk.
  net::ConnTable t;
  for (int i = 0; i < 3; ++i) {
    net::ConnEntry e;
    e.orig = key_of(std::uint32_t(i + 1), 99, 1000, 80);
    (void)t.create(e);
  }
  EXPECT_GT(t.state_bytes(), 0u);
  EXPECT_LT(t.state_bytes(), 8u * 1024u);
}

// ---- FlowCache ------------------------------------------------------------

net::flowcache::FlowKey flow_key(std::uint32_t i) {
  net::flowcache::FlowKey k;
  k.src_ip = net::Ipv4Address(i + 1);
  k.dst_ip = net::Ipv4Address(0x7f000001);
  k.src_port = std::uint16_t(i & 0xffff);
  k.dst_port = 443;
  k.proto = net::L4Proto::kUdp;
  return k;
}

TEST(FlowCacheCompact, GrowthKeepsAllEntriesReachable) {
  // Push the cache through many slab-chunk and bucket-array growths; every
  // resident entry must remain reachable with its payload intact.
  net::flowcache::FlowCache fc(4096);
  const std::uint32_t n = 3000;
  for (std::uint32_t i = 0; i < n; ++i) {
    net::flowcache::CachedPath p;
    p.out_ifindex = int(i);
    fc.insert(flow_key(i), p);
  }
  EXPECT_EQ(fc.size(), std::size_t(n));
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto* p = fc.peek(flow_key(i));
    ASSERT_NE(p, nullptr) << i;
    EXPECT_EQ(p->out_ifindex, int(i));
  }
}

TEST(FlowCacheCompact, LruEvictionAtCapacity) {
  net::flowcache::FlowCache fc(64);
  for (std::uint32_t i = 0; i < 200; ++i) {
    fc.insert(flow_key(i), net::flowcache::CachedPath{});
  }
  EXPECT_EQ(fc.size(), 64u);
  EXPECT_EQ(fc.evictions(), 200u - 64u);
  // Oldest gone, newest resident.
  EXPECT_EQ(fc.peek(flow_key(0)), nullptr);
  EXPECT_NE(fc.peek(flow_key(199)), nullptr);
}

TEST(FlowCacheCompact, NearIdleFootprintIsSmall) {
  net::flowcache::FlowCache fc;  // default capacity 4096
  fc.insert(flow_key(1), net::flowcache::CachedPath{});
  fc.insert(flow_key(2), net::flowcache::CachedPath{});
  EXPECT_GT(fc.state_bytes(), 0u);
  // Buckets and slabs scale with occupancy, not capacity.
  EXPECT_LT(fc.state_bytes(), 8u * 1024u);
}

TEST(FlowCacheCompact, InvalidateConnFlushesOnlyBackedEntries) {
  net::flowcache::FlowCache fc(64);
  net::flowcache::CachedPath backed;
  backed.ct_id = 77;
  fc.insert(flow_key(1), backed);
  fc.insert(flow_key(2), net::flowcache::CachedPath{});
  EXPECT_EQ(fc.invalidate_conn(77), 1u);
  EXPECT_EQ(fc.peek(flow_key(1)), nullptr);
  EXPECT_NE(fc.peek(flow_key(2)), nullptr);
}

// ---- FabricSwitch ECMP ----------------------------------------------------

TEST(FabricSwitch, EcmpPickIsAPureFunctionOfTheFlow) {
  sim::Engine engine;
  sim::CostModel costs;
  net::FabricDirectory dir;
  net::FabricSwitch sw(engine, "tor0", costs, dir, /*ecmp_salt=*/7);
  for (int u = 0; u < 4; ++u) sw.add_uplink(sw.add_port());

  auto frame_of = [](std::uint32_t flow) {
    net::EthernetFrame f;
    f.packet.src_ip = net::Ipv4Address(10 + flow);
    f.packet.dst_ip = net::Ipv4Address(0x0a0a0001);
    f.packet.src_port = std::uint16_t(10000 + flow);
    f.packet.dst_port = 80;
    f.packet.proto = net::L4Proto::kUdp;
    return f;
  };

  // Stable per flow (any call order, any repetition), spread across the
  // group over many flows.
  std::vector<std::size_t> first;
  for (std::uint32_t i = 0; i < 64; ++i) {
    first.push_back(sw.ecmp_pick(frame_of(i)));
  }
  for (std::uint32_t i = 64; i-- > 0;) {
    EXPECT_EQ(sw.ecmp_pick(frame_of(i)), first[i]) << i;
  }
  std::vector<int> used(4, 0);
  for (const std::size_t pick : first) {
    ASSERT_LT(pick, 4u);
    used[pick] = 1;
  }
  EXPECT_GE(used[0] + used[1] + used[2] + used[3], 3)
      << "64 distinct flows should spread over the uplink group";

  // Both directions of one flow may differ (the hash is direction
  // sensitive, which is fine — each direction is itself stable), but the
  // ARP and IPv4 domains must both resolve without touching state.
  net::EthernetFrame arp;
  arp.ethertype = 0x0806;
  arp.arp_is_request = true;
  arp.arp_sender_ip = net::Ipv4Address(1);
  arp.arp_target_ip = net::Ipv4Address(2);
  const std::size_t a = sw.ecmp_pick(arp);
  EXPECT_EQ(sw.ecmp_pick(arp), a);
}

// ---- macro-scale scenario -------------------------------------------------

scenario::MacroScaleConfig tiny_config() {
  scenario::MacroScaleConfig cfg;
  cfg.seed = 7;
  cfg.machines = 4;
  cfg.machines_per_rack = 2;
  cfg.spines = 2;
  cfg.trace_users = 16;
  cfg.flows = 80;
  cfg.tcp_streams = 1;
  cfg.arrival_window = sim::milliseconds(40);
  cfg.drain = sim::milliseconds(40);
  return cfg;
}

TEST(MacroScale, ChurnRunsToCompletionWithoutLeaks) {
  const std::int64_t pool_before = net::PacketPool::live_nodes();
  const auto r = scenario::run_macro_scale(tiny_config());
  EXPECT_EQ(net::PacketPool::live_nodes(), pool_before)
      << "packet pool nodes leaked across the churn run";
  EXPECT_EQ(r.flows_completed, 80.0);
  EXPECT_GT(r.peak_concurrent_flows, 0u);
  EXPECT_GT(r.conntrack_peak_entries, 0u);
  EXPECT_GT(r.conntrack_gc_reaped, 0u)
      << "idle GC should reap departed flows while the run is live";
  EXPECT_GT(r.state_bytes_per_flow, 0.0);
  EXPECT_GT(r.stream_bytes_delivered, 0.0);
}

TEST(MacroScale, ShardsAndWorkersDoNotChangeSimulatedOutputs) {
  // The multi-path fabric keeps the conservative-parallel guarantee: the
  // ECMP choice and the keyed wire order are functions of the flow, so
  // every shard/worker shape must reproduce the single-engine run.
  const auto base = scenario::run_macro_scale(tiny_config());
  struct Shape {
    int shards;
    unsigned workers;
  };
  for (const Shape s : {Shape{2, 1}, Shape{2, 2}, Shape{4, 2}, Shape{4, 4}}) {
    auto cfg = tiny_config();
    cfg.shards = s.shards;
    cfg.max_workers = s.workers;
    const auto r = scenario::run_macro_scale(cfg);
    const std::string at = " at shards=" + std::to_string(s.shards) +
                           " workers=" + std::to_string(s.workers);
    EXPECT_EQ(r.flows_completed, base.flows_completed) << at;
    EXPECT_EQ(r.rr_transactions, base.rr_transactions) << at;
    EXPECT_EQ(r.rr_latency_ns_sum, base.rr_latency_ns_sum) << at;
    EXPECT_EQ(r.stream_bytes_delivered, base.stream_bytes_delivered) << at;
    EXPECT_EQ(r.flow_digest, base.flow_digest) << at;
    EXPECT_EQ(r.peak_concurrent_flows, base.peak_concurrent_flows) << at;
    EXPECT_EQ(r.conntrack_peak_entries, base.conntrack_peak_entries) << at;
    EXPECT_EQ(r.state_bytes_at_peak, base.state_bytes_at_peak) << at;
    EXPECT_EQ(r.conntrack_gc_reaped, base.conntrack_gc_reaped) << at;
    EXPECT_EQ(r.events_total, base.events_total) << at;
  }
}

}  // namespace
