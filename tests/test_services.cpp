// Tests for ClusterIP services (kube-proxy layer) and their interaction
// with the paper's pod networking modes.
#include <gtest/gtest.h>

#include <set>

#include "core/service.hpp"
#include "scenario/testbed.hpp"

namespace nestv {
namespace {

struct ServiceFixture : ::testing::Test {
  scenario::Testbed bed{scenario::TestbedConfig{.seed = 9}};
  vmm::Vm& vm1 = bed.create_vm_with_uplink("vm1");
  vmm::Vm& vm2 = bed.create_vm_with_uplink("vm2");
  core::ServiceRegistry services;

  container::Pod::Fragment& brfusion_pod(vmm::Vm& vm,
                                         const std::string& name) {
    container::Pod& pod = bed.create_pod(name);
    auto& frag = pod.add_fragment(vm);
    bool ready = false;
    bed.runtime_for(vm).create_container(
        frag, container::Image{"srv"}, name,
        bed.brfusion_cni().attach_fn({}),
        [&ready](container::Container&, sim::Duration) { ready = true; });
    bed.run_until_ready([&ready] { return ready; });
    return frag;
  }
};

TEST_F(ServiceFixture, AllocatesClusterIpsFromServiceCidr) {
  services.add_node(vm1);
  const auto& a = services.expose("svc-a", 80, {{net::Ipv4Address(1, 1, 1, 1), 80}});
  const auto& b = services.expose("svc-b", 80, {{net::Ipv4Address(1, 1, 1, 2), 80}});
  const net::Ipv4Cidr cidr(net::Ipv4Address(10, 96, 0, 0), 16);
  EXPECT_TRUE(cidr.contains(a.cluster_ip));
  EXPECT_TRUE(cidr.contains(b.cluster_ip));
  EXPECT_NE(a.cluster_ip, b.cluster_ip);
}

TEST_F(ServiceFixture, ReExposeKeepsClusterIp) {
  services.add_node(vm1);
  const auto ip1 = services.expose("svc", 80, {{net::Ipv4Address(1, 1, 1, 1), 80}}).cluster_ip;
  const auto ip2 = services.expose("svc", 81, {{net::Ipv4Address(1, 1, 1, 2), 81}}).cluster_ip;
  EXPECT_EQ(ip1, ip2);
  EXPECT_EQ(services.service_count(), 1u);
}

TEST_F(ServiceFixture, BrFusionBackendsReachableViaServiceVip) {
  // Two BrFusion pods (one per VM) behind one ClusterIP, dialed from a
  // third party: possible *because* BrFusion pod addresses live on the
  // host-level network — no overlay needed.
  auto& frag_a = brfusion_pod(vm1, "backend-a");
  auto& frag_b = brfusion_pod(vm2, "backend-b");
  const auto ip_a = frag_a.stack->iface_ip(frag_a.stack->ifindex_of("eth0"));
  const auto ip_b = frag_b.stack->iface_ip(frag_b.stack->ifindex_of("eth0"));

  // A client VM whose kube-proxy knows the service.
  vmm::Vm& client_vm = bed.create_vm_with_uplink("vm3");
  services.add_node(client_vm);
  const auto& svc =
      services.expose("web", 8080, {{ip_a, 8080}, {ip_b, 8080}});

  int got_a = 0, got_b = 0;
  frag_a.stack->udp_bind(
      8080, nullptr, [&](const net::NetworkStack::UdpDelivery& d) {
        ++got_a;
        frag_a.stack->udp_send(ip_a, 8080, d.src_ip, d.src_port, 8, nullptr);
      });
  frag_b.stack->udp_bind(
      8080, nullptr, [&](const net::NetworkStack::UdpDelivery& d) {
        ++got_b;
        frag_b.stack->udp_send(ip_b, 8080, d.src_ip, d.src_port, 8, nullptr);
      });

  int replies = 0;
  const auto client_ip =
      client_vm.stack().iface_ip(client_vm.stack().ifindex_of("eth0"));
  client_vm.stack().udp_bind(
      5000, nullptr,
      [&](const net::NetworkStack::UdpDelivery&) { ++replies; });
  // Distinct source ports => distinct flows => round-robin across backends.
  for (std::uint16_t i = 0; i < 6; ++i) {
    client_vm.stack().udp_send(client_ip, 5000, svc.cluster_ip, 8080, 32,
                               nullptr);
    bed.run_for(sim::milliseconds(2));
  }
  bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(got_a + got_b, 6);
  EXPECT_EQ(replies, 6);  // replies un-DNAT back to the VIP flow
}

TEST_F(ServiceFixture, RoundRobinSpreadsNewFlows) {
  auto& frag_a = brfusion_pod(vm1, "a");
  auto& frag_b = brfusion_pod(vm2, "b");
  const auto ip_a = frag_a.stack->iface_ip(frag_a.stack->ifindex_of("eth0"));
  const auto ip_b = frag_b.stack->iface_ip(frag_b.stack->ifindex_of("eth0"));
  vmm::Vm& client_vm = bed.create_vm_with_uplink("vm3");
  services.add_node(client_vm);
  const auto& svc = services.expose("rr", 80, {{ip_a, 80}, {ip_b, 80}});

  int got_a = 0, got_b = 0;
  frag_a.stack->udp_bind(80, nullptr,
                         [&](const net::NetworkStack::UdpDelivery&) { ++got_a; });
  frag_b.stack->udp_bind(80, nullptr,
                         [&](const net::NetworkStack::UdpDelivery&) { ++got_b; });
  const auto client_ip =
      client_vm.stack().iface_ip(client_vm.stack().ifindex_of("eth0"));
  for (std::uint16_t i = 0; i < 10; ++i) {
    // Fresh source port per datagram -> each is a new conntrack flow.
    client_vm.stack().udp_send(client_ip,
                               static_cast<std::uint16_t>(6000 + i),
                               svc.cluster_ip, 80, 16, nullptr);
    bed.run_for(sim::milliseconds(2));
  }
  EXPECT_EQ(got_a, 5);
  EXPECT_EQ(got_b, 5);
}

TEST_F(ServiceFixture, FlowAffinityPinsBackend) {
  auto& frag_a = brfusion_pod(vm1, "a");
  auto& frag_b = brfusion_pod(vm2, "b");
  const auto ip_a = frag_a.stack->iface_ip(frag_a.stack->ifindex_of("eth0"));
  const auto ip_b = frag_b.stack->iface_ip(frag_b.stack->ifindex_of("eth0"));
  vmm::Vm& client_vm = bed.create_vm_with_uplink("vm3");
  services.add_node(client_vm);
  const auto& svc = services.expose("aff", 80, {{ip_a, 80}, {ip_b, 80}});

  std::set<int> hit;
  frag_a.stack->udp_bind(80, nullptr,
                         [&](const net::NetworkStack::UdpDelivery&) { hit.insert(1); });
  frag_b.stack->udp_bind(80, nullptr,
                         [&](const net::NetworkStack::UdpDelivery&) { hit.insert(2); });
  const auto client_ip =
      client_vm.stack().iface_ip(client_vm.stack().ifindex_of("eth0"));
  // Same 5-tuple every time: conntrack must pin a single backend.
  for (int i = 0; i < 8; ++i) {
    client_vm.stack().udp_send(client_ip, 7000, svc.cluster_ip, 80, 16,
                               nullptr);
    bed.run_for(sim::milliseconds(2));
  }
  EXPECT_EQ(hit.size(), 1u);
}

TEST_F(ServiceFixture, AddBackendReprogramsNodes) {
  auto& frag_a = brfusion_pod(vm1, "a");
  const auto ip_a = frag_a.stack->iface_ip(frag_a.stack->ifindex_of("eth0"));
  vmm::Vm& client_vm = bed.create_vm_with_uplink("vm3");
  services.add_node(client_vm);
  services.expose("grow", 80, {{ip_a, 80}});

  auto& frag_b = brfusion_pod(vm2, "b");
  const auto ip_b = frag_b.stack->iface_ip(frag_b.stack->ifindex_of("eth0"));
  services.add_backend("grow", {ip_b, 80});
  ASSERT_NE(services.find("grow"), nullptr);
  EXPECT_EQ(services.find("grow")->backends.size(), 2u);

  // New flows can now land on b.
  int got_b = 0;
  frag_b.stack->udp_bind(80, nullptr,
                         [&](const net::NetworkStack::UdpDelivery&) { ++got_b; });
  frag_a.stack->udp_bind(80, nullptr,
                         [](const net::NetworkStack::UdpDelivery&) {});
  const auto client_ip =
      client_vm.stack().iface_ip(client_vm.stack().ifindex_of("eth0"));
  for (std::uint16_t i = 0; i < 4; ++i) {
    client_vm.stack().udp_send(client_ip,
                               static_cast<std::uint16_t>(8000 + i),
                               services.find("grow")->cluster_ip, 80, 16,
                               nullptr);
    bed.run_for(sim::milliseconds(2));
  }
  EXPECT_GT(got_b, 0);
}

TEST_F(ServiceFixture, BridgeNatBackendOnOtherVmIsUnreachable) {
  // The section 2 problem, demonstrated: a bridge+NAT pod's address is
  // VM-local (172.17.0.0/16 exists independently in every VM), so a
  // service endpoint on another VM cannot be reached without an overlay.
  container::Pod& pod = bed.create_pod("natpod");
  auto& frag = pod.add_fragment(vm1);
  bool ready = false;
  bed.runtime_for(vm1).create_container(
      frag, container::Image{"srv"}, "c", bed.nat_cni().attach_fn({}),
      [&ready](container::Container&, sim::Duration) { ready = true; });
  bed.run_until_ready([&ready] { return ready; });
  const auto pod_ip = frag.stack->iface_ip(frag.stack->ifindex_of("eth0"));

  vmm::Vm& client_vm = bed.create_vm_with_uplink("vm3");
  services.add_node(client_vm);
  const auto& svc = services.expose("broken", 80, {{pod_ip, 80}});

  int got = 0;
  frag.stack->udp_bind(80, nullptr,
                       [&](const net::NetworkStack::UdpDelivery&) { ++got; });
  const auto client_ip =
      client_vm.stack().iface_ip(client_vm.stack().ifindex_of("eth0"));
  client_vm.stack().udp_send(client_ip, 9000, svc.cluster_ip, 80, 16,
                             nullptr);
  bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(got, 0);  // 172.17.0.x is not routable from vm3
}

}  // namespace
}  // namespace nestv
