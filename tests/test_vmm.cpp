// Unit tests for the VMM substrate: machine, VM, virtio/vhost, QMP
// hot-plug, the Vmm protocol operations and the Hostlo multi-queue TAP.
#include <gtest/gtest.h>

#include <vector>

#include "net/stack.hpp"
#include "vmm/hostlo_tap.hpp"
#include "vmm/machine.hpp"
#include "vmm/qmp.hpp"
#include "vmm/virtio.hpp"
#include "vmm/vm.hpp"
#include "vmm/vmm.hpp"

namespace nestv::vmm {
namespace {

struct VmmFixture : ::testing::Test {
  sim::Engine engine;
  sim::CostModel costs{};
  std::unique_ptr<PhysicalMachine> machine;
  std::unique_ptr<Vmm> vmm;

  void SetUp() override {
    machine = std::make_unique<PhysicalMachine>(engine, costs);
    vmm = std::make_unique<Vmm>(*machine);
  }

  /// Creates a VM with a configured uplink on the host bridge.
  Vm& vm_with_uplink(const std::string& name) {
    Vm& vm = vmm->create_vm({.name = name});
    net::TapDevice& tap = machine->make_tap("tap-" + name);
    VirtioNic& nic = vm.create_nic("eth0");
    nic.attach_host_tap(tap);
    net::InterfaceConfig cfg;
    cfg.name = "eth0";
    cfg.mac = machine->allocate_mac();
    cfg.ip = machine->allocate_bridge_ip();
    cfg.subnet = machine->config().bridge_subnet;
    cfg.gso_bytes = costs.gso_virtio;
    const int ifindex = vm.stack().add_interface(nic, cfg);
    vm.stack().routes().add_default(machine->bridge_ip(), ifindex);
    return vm;
  }
};

// ---- machine -----------------------------------------------------------------

TEST_F(VmmFixture, MachineAllocatesDistinctAddresses) {
  const auto ip1 = machine->allocate_bridge_ip();
  const auto ip2 = machine->allocate_bridge_ip();
  EXPECT_NE(ip1, ip2);
  EXPECT_TRUE(machine->config().bridge_subnet.contains(ip1));
  EXPECT_NE(machine->allocate_mac(), machine->allocate_mac());
}

TEST_F(VmmFixture, HostStackOwnsBridgeIp) {
  EXPECT_EQ(machine->stack().iface_ip(machine->stack().ifindex_of("br0")),
            machine->bridge_ip());
}

TEST_F(VmmFixture, AppCoreChargesUserAccount) {
  auto& core = machine->make_app_core("netperf");
  core.submit_as(sim::CpuCategory::kUsr, 1000, [] {});
  engine.run();
  const auto* acc = machine->ledger().find("host/netperf");
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc->get(sim::CpuCategory::kUsr), 1000u);
}

TEST_F(VmmFixture, KernelWorkerChargesHostSys) {
  auto& worker = machine->make_kernel_worker("vhost-x");
  worker.submit(500, [] {});
  engine.run();
  EXPECT_EQ(machine->host_account().get(sim::CpuCategory::kSys), 500u);
}

// ---- vm ------------------------------------------------------------------------

TEST_F(VmmFixture, VmDefaultsMatchPaperTestbed) {
  Vm& vm = vmm->create_vm({.name = "vm1"});
  EXPECT_EQ(vm.config().vcpus, 5);
  EXPECT_EQ(vm.config().memory_mb, 4096);
}

TEST_F(VmmFixture, GuestCpuAlsoBillsHostGuestTime) {
  Vm& vm = vmm->create_vm({.name = "vm1"});
  vm.softirq().submit_as(sim::CpuCategory::kSoft, 700, [] {});
  auto& app = vm.make_app_core("srv");
  app.submit_as(sim::CpuCategory::kUsr, 300, [] {});
  engine.run();

  EXPECT_EQ(vm.account().get(sim::CpuCategory::kSoft), 700u);
  EXPECT_EQ(vm.account().get(sim::CpuCategory::kUsr), 300u);
  // Host view: all guest execution is "guest" time (fig 14).
  EXPECT_EQ(machine->host_account().get(sim::CpuCategory::kGuest), 1000u);
}

TEST_F(VmmFixture, PerAppAccountTracked) {
  Vm& vm = vmm->create_vm({.name = "vm1"});
  auto& app = vm.make_app_core("kafka");
  app.submit_as(sim::CpuCategory::kUsr, 123, [] {});
  engine.run();
  const auto* acc = machine->ledger().find("vm/vm1/kafka");
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc->get(sim::CpuCategory::kUsr), 123u);
}

// ---- virtio / vhost ---------------------------------------------------------------

TEST_F(VmmFixture, GuestToHostTraversesVhostAndTap) {
  Vm& vm = vm_with_uplink("vm1");
  int host_got = 0;
  machine->stack().udp_bind(
      9, nullptr, [&](const net::NetworkStack::UdpDelivery&) { ++host_got; });
  const auto vm_ip = vm.stack().iface_ip(vm.stack().ifindex_of("eth0"));
  vm.stack().udp_send(vm_ip, 1000, machine->bridge_ip(), 9, 64, nullptr);
  engine.run();
  EXPECT_EQ(host_got, 1);
  EXPECT_GE(vm.nics()[0]->tx_frames(), 1u);
  // vhost work landed in host sys time.
  EXPECT_GT(machine->host_account().get(sim::CpuCategory::kSys), 0u);
}

TEST_F(VmmFixture, HostToGuestDelivery) {
  Vm& vm = vm_with_uplink("vm1");
  int vm_got = 0;
  vm.stack().udp_bind(
      9, nullptr, [&](const net::NetworkStack::UdpDelivery&) { ++vm_got; });
  const auto vm_ip = vm.stack().iface_ip(vm.stack().ifindex_of("eth0"));
  machine->stack().udp_send(machine->bridge_ip(), 1000, vm_ip, 9, 64,
                            nullptr);
  engine.run();
  EXPECT_EQ(vm_got, 1);
  EXPECT_GE(vm.nics()[0]->rx_frames(), 1u);
}

TEST_F(VmmFixture, TwoVmsTalkThroughHostBridge) {
  Vm& vm1 = vm_with_uplink("vm1");
  Vm& vm2 = vm_with_uplink("vm2");
  int got = 0;
  vm2.stack().udp_bind(
      9, nullptr, [&](const net::NetworkStack::UdpDelivery&) { ++got; });
  const auto ip1 = vm1.stack().iface_ip(vm1.stack().ifindex_of("eth0"));
  const auto ip2 = vm2.stack().iface_ip(vm2.stack().ifindex_of("eth0"));
  vm1.stack().udp_send(ip1, 1000, ip2, 9, 64, nullptr);
  engine.run();
  EXPECT_EQ(got, 1);
}

TEST_F(VmmFixture, EmulatedVirtioCostsMoreThanVhost) {
  // Compare the backend workers' CPU time directly: the QEMU-emulated
  // device (no vhost) must burn more host CPU per frame.
  sim::SerialResource w_fast(engine, "w-fast");
  sim::SerialResource w_slow(engine, "w-slow");
  VirtioNic fast(engine, "fast", costs, nullptr, &w_fast, true);
  VirtioNic slow(engine, "slow", costs, nullptr, &w_slow, false);

  net::EthernetFrame f;
  f.packet.payload_bytes = 1000;
  fast.xmit(f);
  slow.xmit(f);
  engine.run();
  EXPECT_GT(w_slow.busy_time(), w_fast.busy_time());
}

// ---- QMP hot-plug ---------------------------------------------------------------------

TEST_F(VmmFixture, QmpHotplugTakesMilliseconds) {
  Vm& vm = vmm->create_vm({.name = "vm1"});
  bool done = false;
  sim::Duration elapsed = 0;
  vmm->qmp(vm).device_add_nic(machine->allocate_mac(),
                              [&](net::MacAddress, sim::Duration e) {
                                done = true;
                                elapsed = e;
                              });
  engine.run();
  EXPECT_TRUE(done);
  // QMP rtt (~1ms) + PCI probe (~9ms): single-digit-to-tens of ms.
  EXPECT_GT(elapsed, sim::milliseconds(2));
  EXPECT_LT(elapsed, sim::milliseconds(100));
}

TEST_F(VmmFixture, QmpDeviceDelCompletes) {
  Vm& vm = vmm->create_vm({.name = "vm1"});
  bool deleted = false;
  vmm->qmp(vm).device_del_nic(machine->allocate_mac(),
                              [&] { deleted = true; });
  engine.run();
  EXPECT_TRUE(deleted);
  EXPECT_EQ(vmm->qmp(vm).commands_executed(), 1u);
}

// ---- Vmm protocol ops --------------------------------------------------------------------

TEST_F(VmmFixture, ProvisionNicReturnsIdentifier) {
  Vm& vm = vm_with_uplink("vm1");
  Vmm::ProvisionedNic result;
  bool done = false;
  vmm->provision_nic(vm, [&](Vmm::ProvisionedNic nic) {
    result = nic;
    done = true;
  });
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_NE(result.nic, nullptr);
  EXPECT_NE(result.host_tap, nullptr);
  EXPECT_FALSE(result.mac.is_broadcast());
  EXPECT_GT(result.hotplug_elapsed, 0u);
  EXPECT_EQ(vmm->nics_provisioned(), 1u);
}

TEST_F(VmmFixture, CreateHostloProvisionsOneEndpointPerVm) {
  Vm& vm1 = vm_with_uplink("vm1");
  Vm& vm2 = vm_with_uplink("vm2");
  std::vector<Vm*> vms{&vm1, &vm2};
  Vmm::ProvisionedHostlo result;
  bool done = false;
  vmm->create_hostlo(vms, [&](Vmm::ProvisionedHostlo h) {
    result = std::move(h);
    done = true;
  });
  engine.run();
  ASSERT_TRUE(done);
  ASSERT_NE(result.hostlo, nullptr);
  EXPECT_EQ(result.hostlo->queue_count(), 2);
  ASSERT_EQ(result.endpoints.size(), 2u);
  EXPECT_NE(result.endpoints[0].mac, result.endpoints[1].mac);
}

// ---- HostloTap semantics -------------------------------------------------------------------

TEST_F(VmmFixture, HostloReflectsToAllQueuesIncludingSender) {
  // Section 4.2: "it sends back any received Ethernet frame to all of its
  // queues".
  Vm& vm1 = vmm->create_vm({.name = "vm1"});
  Vm& vm2 = vmm->create_vm({.name = "vm2"});
  Vm& vm3 = vmm->create_vm({.name = "vm3"});
  auto& worker = machine->make_kernel_worker("hostlo");
  HostloTap hostlo(engine, "hostlo0", costs, &worker);

  std::vector<int> rx_counts(3, 0);
  std::vector<VirtioNic*> endpoints;
  Vm* vms[3] = {&vm1, &vm2, &vm3};
  for (int i = 0; i < 3; ++i) {
    VirtioNic& nic = vms[i]->create_nic("hlo");
    hostlo.add_queue(nic);
    nic.set_rx([&rx_counts, i](net::EthernetFrame) { ++rx_counts[i]; });
    endpoints.push_back(&nic);
  }
  ASSERT_EQ(hostlo.queue_count(), 3);

  net::EthernetFrame f;
  f.src = machine->allocate_mac();
  f.dst = machine->allocate_mac();
  f.packet.payload_bytes = 64;
  endpoints[0]->xmit(f);
  engine.run();

  EXPECT_EQ(rx_counts[0], 1);  // the writer's own queue gets the echo
  EXPECT_EQ(rx_counts[1], 1);
  EXPECT_EQ(rx_counts[2], 1);
  EXPECT_EQ(hostlo.frames_reflected(), 1u);
  EXPECT_EQ(hostlo.deliveries(), 3u);
}

TEST_F(VmmFixture, HostloReflectCostScalesWithQueues) {
  auto& worker2 = machine->make_kernel_worker("h2");
  auto& worker8 = machine->make_kernel_worker("h8");
  HostloTap small(engine, "h2", costs, &worker2);
  HostloTap big(engine, "h8", costs, &worker8);

  Vm& vm = vmm->create_vm({.name = "vmq"});
  for (int i = 0; i < 2; ++i) small.add_queue(vm.create_nic("s" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) big.add_queue(vm.create_nic("b" + std::to_string(i)));

  net::EthernetFrame f;
  f.packet.payload_bytes = 100;
  small.rx_from_queue(0, f);
  big.rx_from_queue(0, f);
  engine.run();
  EXPECT_GT(worker8.busy_time(), worker2.busy_time());
}

TEST_F(VmmFixture, FindVmByName) {
  vmm->create_vm({.name = "alpha"});
  vmm->create_vm({.name = "beta"});
  EXPECT_NE(vmm->find_vm("alpha"), nullptr);
  EXPECT_EQ(vmm->find_vm("gamma"), nullptr);
}

}  // namespace
}  // namespace nestv::vmm
