// Unit tests for L2 devices: bridge (learning switch), veth, tap, netfilter.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/bridge.hpp"
#include "net/netfilter.hpp"
#include "net/tap.hpp"
#include "net/veth.hpp"
#include "sim/rng.hpp"
#include "sim/engine.hpp"

namespace nestv::net {
namespace {

const sim::CostModel kCosts{};

/// Sink device capturing everything it receives.
class SinkDevice : public Device {
 public:
  SinkDevice(sim::Engine& engine, std::string name)
      : Device(engine, std::move(name), kCosts) {
    add_port();
  }
  void ingress(EthernetFrame frame, int port) override {
    (void)port;
    frames.push_back(std::move(frame));
  }
  std::vector<EthernetFrame> frames;
};

EthernetFrame make_frame(std::uint64_t src_id, std::uint64_t dst_id,
                         std::uint32_t bytes = 100) {
  EthernetFrame f;
  f.src = MacAddress::local_from_id(src_id);
  f.dst = MacAddress::local_from_id(dst_id);
  f.packet.proto = L4Proto::kUdp;
  f.packet.payload_bytes = bytes;
  return f;
}

// ---- Fdb -----------------------------------------------------------------------

TEST(Fdb, LearnsAndAges) {
  Fdb fdb(sim::seconds(10));
  const auto mac = MacAddress::local_from_id(1);
  fdb.learn(mac, 3, 0);
  EXPECT_EQ(fdb.lookup(mac, sim::seconds(5)), 3);
  EXPECT_EQ(fdb.lookup(mac, sim::seconds(11)), -1);  // aged out
  EXPECT_EQ(fdb.lookup(MacAddress::local_from_id(2), 0), -1);
}

TEST(Fdb, RelearnMovesPort) {
  Fdb fdb;
  const auto mac = MacAddress::local_from_id(1);
  fdb.learn(mac, 1, 0);
  fdb.learn(mac, 2, 10);
  EXPECT_EQ(fdb.lookup(mac, 20), 2);
}

// ---- Bridge --------------------------------------------------------------------

struct BridgeFixture : ::testing::Test {
  sim::Engine engine;
  Bridge bridge{engine, "br0", kCosts};
  SinkDevice a{engine, "a"}, b{engine, "b"}, c{engine, "c"};

  void SetUp() override {
    Device::connect(a, 0, bridge, bridge.add_port());
    Device::connect(b, 0, bridge, bridge.add_port());
    Device::connect(c, 0, bridge, bridge.add_port());
  }

  /// Injects a frame into the bridge as if `from` transmitted it.
  void inject_from(SinkDevice& from, EthernetFrame frame) {
    // Ports a,b,c are bridge ports 0,1,2 in SetUp order.
    const int port = &from == &a ? 0 : (&from == &b ? 1 : 2);
    bridge.ingress(std::move(frame), port);
    engine.run();
  }
};

TEST_F(BridgeFixture, FloodsUnknownDestination) {
  inject_from(a, make_frame(1, 99));
  EXPECT_EQ(a.frames.size(), 0u);  // not back out the ingress port
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(bridge.floods(), 1u);
}

TEST_F(BridgeFixture, SwitchesLearnedDestination) {
  inject_from(b, make_frame(2, 99));  // bridge learns mac 2 @ port b
  b.frames.clear();
  c.frames.clear();
  inject_from(a, make_frame(1, 2));
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 0u);  // no flood: destination known
}

TEST_F(BridgeFixture, NeverFloodsLearnedAddress) {
  inject_from(b, make_frame(2, 99));
  const auto floods_before = bridge.floods();
  b.frames.clear();
  c.frames.clear();
  for (int i = 0; i < 5; ++i) inject_from(a, make_frame(1, 2));
  EXPECT_EQ(bridge.floods(), floods_before);
  EXPECT_EQ(b.frames.size(), 5u);
}

TEST_F(BridgeFixture, HairpinSuppressed) {
  // A frame whose destination was learned on its own ingress port is not
  // sent back out (Linux bridge default).
  inject_from(a, make_frame(1, 99));  // learn mac1 @ a
  a.frames.clear();
  b.frames.clear();
  c.frames.clear();
  inject_from(a, make_frame(7, 1));
  EXPECT_EQ(a.frames.size(), 0u);
  EXPECT_EQ(b.frames.size(), 0u);
  EXPECT_EQ(c.frames.size(), 0u);
}

TEST_F(BridgeFixture, BroadcastFloodsAllButIngress) {
  EthernetFrame f = make_frame(1, 0);
  f.dst = MacAddress::broadcast();
  inject_from(b, std::move(f));
  EXPECT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(b.frames.size(), 0u);
  EXPECT_EQ(c.frames.size(), 1u);
}

TEST_F(BridgeFixture, GuestBridgeCostsMoreThanHost) {
  // Structural check on the cost model wiring: guest bridges charge
  // bridge_pkt_guest (no offloads in the VM).
  EXPECT_GT(kCosts.bridge_pkt_guest, kCosts.bridge_pkt);
}

// ---- Veth ----------------------------------------------------------------------

TEST(Veth, CrossesBetweenGraphEnds) {
  sim::Engine engine;
  VethPair pair(engine, "v", kCosts);
  SinkDevice left(engine, "left"), right(engine, "right");
  Device::connect(left, 0, pair.a(), 0);
  Device::connect(right, 0, pair.b(), 0);

  pair.a().ingress(make_frame(1, 2), 0);
  engine.run();
  EXPECT_EQ(right.frames.size(), 1u);
  EXPECT_EQ(left.frames.size(), 0u);
}

TEST(Veth, StackSideDelivery) {
  sim::Engine engine;
  VethPair pair(engine, "v", kCosts);
  SinkDevice graph_side(engine, "g");
  Device::connect(graph_side, 0, pair.a(), 0);

  // b() acts as an InterfaceBackend (moved into a pod namespace).
  std::vector<EthernetFrame> to_stack;
  pair.b().set_rx([&](EthernetFrame f) { to_stack.push_back(std::move(f)); });

  pair.b().xmit(make_frame(3, 4));  // stack -> graph
  engine.run();
  EXPECT_EQ(graph_side.frames.size(), 1u);

  pair.a().ingress(make_frame(4, 3), 0);  // graph -> stack
  engine.run();
  EXPECT_EQ(to_stack.size(), 1u);
}

TEST(Veth, CrossingTakesTime) {
  sim::Engine engine;
  VethPair pair(engine, "v", kCosts);
  SinkDevice right(engine, "right");
  Device::connect(right, 0, pair.b(), 0);
  pair.a().ingress(make_frame(1, 2), 0);
  engine.run();
  EXPECT_GT(engine.now(), 0u);
}

// ---- Tap ------------------------------------------------------------------------

TEST(Tap, NetworkToFd) {
  sim::Engine engine;
  TapDevice tap(engine, "tap0", kCosts);
  std::vector<EthernetFrame> fd_frames;
  tap.set_fd_handler([&](EthernetFrame f) { fd_frames.push_back(std::move(f)); });

  tap.ingress(make_frame(1, 2), 0);
  engine.run();
  EXPECT_EQ(fd_frames.size(), 1u);
  EXPECT_EQ(tap.frames_to_fd(), 1u);
}

TEST(Tap, FdToNetwork) {
  sim::Engine engine;
  TapDevice tap(engine, "tap0", kCosts);
  SinkDevice net_side(engine, "net");
  Device::connect(net_side, 0, tap, 0);

  tap.inject(make_frame(1, 2));
  engine.run();
  EXPECT_EQ(net_side.frames.size(), 1u);
  EXPECT_EQ(tap.frames_from_fd(), 1u);
}

TEST(Tap, DropsWithoutFdHandler) {
  sim::Engine engine;
  TapDevice tap(engine, "tap0", kCosts);
  tap.ingress(make_frame(1, 2), 0);
  engine.run();
  EXPECT_EQ(tap.frames_dropped(), 1u);
}

// ---- Device backlog dropping -------------------------------------------------------

TEST(DeviceBacklog, TailDropsWhenCpuSwamped) {
  sim::Engine engine;
  sim::SerialResource cpu(engine, "softirq");
  Bridge bridge(engine, "br", kCosts);
  bridge.set_cpu(&cpu, sim::CpuCategory::kSoft);
  bridge.set_max_backlog(sim::microseconds(10));
  SinkDevice out(engine, "out");
  const int in_port = bridge.add_port();
  Device::connect(out, 0, bridge, bridge.add_port());

  // Teach the bridge where mac 2 lives so frames switch, then swamp it.
  bridge.ingress(make_frame(2, 99), 1);
  engine.run();
  for (int i = 0; i < 1000; ++i) {
    bridge.ingress(make_frame(1, 2), in_port);
  }
  engine.run();
  EXPECT_GT(bridge.frames_dropped(), 0u);
  EXPECT_LT(out.frames.size(), 1000u);
  EXPECT_GT(out.frames.size(), 0u);
}

// ---- Netfilter -----------------------------------------------------------------------

Packet make_packet(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                   std::uint16_t dport, L4Proto proto = L4Proto::kTcp) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = proto;
  return p;
}

TEST(Netfilter, EmptyChainsAccept) {
  Netfilter nf(kCosts);
  auto p = make_packet(Ipv4Address(1, 1, 1, 1), 10, Ipv4Address(2, 2, 2, 2),
                       20);
  const auto r = nf.run_hook(Hook::kForward, p, "eth0", "", 0);
  EXPECT_EQ(r.verdict, Verdict::kAccept);
  EXPECT_GT(r.cost, 0u);
}

TEST(Netfilter, FilterDropRuleMatches) {
  Netfilter nf(kCosts);
  Rule r;
  r.match.dst = Ipv4Cidr(Ipv4Address(9, 9, 9, 0), 24);
  r.target = TargetKind::kDrop;
  nf.filter_chain(Hook::kForward).rules.push_back(r);

  auto hit = make_packet(Ipv4Address(1, 1, 1, 1), 1,
                         Ipv4Address(9, 9, 9, 9), 2);
  EXPECT_EQ(nf.run_hook(Hook::kForward, hit, "", "", 0).verdict,
            Verdict::kDrop);
  auto miss = make_packet(Ipv4Address(1, 1, 1, 1), 1,
                          Ipv4Address(8, 8, 8, 8), 2);
  EXPECT_EQ(nf.run_hook(Hook::kForward, miss, "", "", 0).verdict,
            Verdict::kAccept);
}

TEST(Netfilter, DnatRewritesAndConntracksReplies) {
  Netfilter nf(kCosts);
  Rule dnat;
  dnat.match.proto = L4Proto::kTcp;
  dnat.match.dport = 80;
  dnat.target = TargetKind::kDnat;
  dnat.nat_ip = Ipv4Address(172, 17, 0, 2);
  dnat.nat_port = 8080;
  nf.nat_chain(Hook::kPrerouting).rules.push_back(dnat);

  // First packet: PREROUTING rewrites destination.
  auto p = make_packet(Ipv4Address(192, 168, 0, 1), 4000,
                       Ipv4Address(192, 168, 0, 2), 80);
  nf.run_hook(Hook::kPrerouting, p, "eth0", "", 0);
  EXPECT_EQ(p.dst_ip, Ipv4Address(172, 17, 0, 2));
  EXPECT_EQ(p.dst_port, 8080);
  // POSTROUTING confirms the flow.
  nf.run_hook(Hook::kPostrouting, p, "eth0", "docker0", 0);
  EXPECT_EQ(nf.conntrack_size(), 1u);

  // Reply from the container: source rewritten back at POSTROUTING.
  auto reply = make_packet(Ipv4Address(172, 17, 0, 2), 8080,
                           Ipv4Address(192, 168, 0, 1), 4000);
  nf.run_hook(Hook::kPrerouting, reply, "docker0", "", 1);
  nf.run_hook(Hook::kPostrouting, reply, "docker0", "eth0", 1);
  EXPECT_EQ(reply.src_ip, Ipv4Address(192, 168, 0, 2));
  EXPECT_EQ(reply.src_port, 80);
}

TEST(Netfilter, MasqueradeAllocatesPortAndReverses) {
  Netfilter nf(kCosts);
  Rule masq;
  masq.match.src = Ipv4Cidr(Ipv4Address(172, 17, 0, 0), 16);
  masq.match.out_iface = "eth0";
  masq.target = TargetKind::kMasquerade;
  masq.nat_ip = Ipv4Address(192, 168, 0, 5);  // uplink address
  nf.nat_chain(Hook::kPostrouting).rules.push_back(masq);

  auto p = make_packet(Ipv4Address(172, 17, 0, 9), 3333,
                       Ipv4Address(8, 8, 8, 8), 53, L4Proto::kUdp);
  nf.run_hook(Hook::kPrerouting, p, "docker0", "", 0);
  nf.run_hook(Hook::kPostrouting, p, "docker0", "eth0", 0);
  EXPECT_EQ(p.src_ip, Ipv4Address(192, 168, 0, 5));
  const std::uint16_t nat_port = p.src_port;
  EXPECT_NE(nat_port, 3333);

  // Reply to the masqueraded tuple translates back.
  auto reply = make_packet(Ipv4Address(8, 8, 8, 8), 53,
                           Ipv4Address(192, 168, 0, 5), nat_port,
                           L4Proto::kUdp);
  nf.run_hook(Hook::kPrerouting, reply, "eth0", "", 1);
  EXPECT_EQ(reply.dst_ip, Ipv4Address(172, 17, 0, 9));
  EXPECT_EQ(reply.dst_port, 3333);
}

TEST(Netfilter, MasqueradeSkipsOtherInterfaces) {
  Netfilter nf(kCosts);
  Rule masq;
  masq.match.src = Ipv4Cidr(Ipv4Address(172, 17, 0, 0), 16);
  masq.match.out_iface = "eth0";
  masq.target = TargetKind::kMasquerade;
  masq.nat_ip = Ipv4Address(192, 168, 0, 5);
  nf.nat_chain(Hook::kPostrouting).rules.push_back(masq);

  auto p = make_packet(Ipv4Address(172, 17, 0, 9), 3333,
                       Ipv4Address(172, 17, 0, 10), 80);
  nf.run_hook(Hook::kPrerouting, p, "docker0", "", 0);
  nf.run_hook(Hook::kPostrouting, p, "docker0", "docker0", 0);
  EXPECT_EQ(p.src_ip, Ipv4Address(172, 17, 0, 9));  // unchanged
}

TEST(Netfilter, ConntrackFastPathCheaperThanFirstPacket) {
  Netfilter nf(kCosts);
  auto first = make_packet(Ipv4Address(1, 1, 1, 1), 10,
                           Ipv4Address(2, 2, 2, 2), 20);
  const auto c1 = nf.run_hook(Hook::kPrerouting, first, "eth0", "", 0);
  nf.run_hook(Hook::kPostrouting, first, "eth0", "eth1", 0);

  auto second = make_packet(Ipv4Address(1, 1, 1, 1), 10,
                            Ipv4Address(2, 2, 2, 2), 20);
  const auto c2 = nf.run_hook(Hook::kPrerouting, second, "eth0", "", 1);
  EXPECT_LT(c2.cost, c1.cost);
}

TEST(Netfilter, StandingRulesCostPerPacket) {
  Netfilter with(kCosts), without(kCosts);
  with.install_standing_rules(10);

  auto p1 = make_packet(Ipv4Address(1, 1, 1, 1), 10,
                        Ipv4Address(2, 2, 2, 2), 20);
  auto p2 = p1;
  const auto c_with = with.run_hook(Hook::kForward, p1, "", "", 0);
  const auto c_without = without.run_hook(Hook::kForward, p2, "", "", 0);
  EXPECT_EQ(c_with.cost - c_without.cost, 10 * kCosts.nf_rule_scan);
  EXPECT_EQ(c_with.verdict, Verdict::kAccept);  // standing rules match nothing
}

TEST(Netfilter, ExpireRemovesIdleConnections) {
  Netfilter nf(kCosts);
  auto p = make_packet(Ipv4Address(1, 1, 1, 1), 10, Ipv4Address(2, 2, 2, 2),
                       20);
  nf.run_hook(Hook::kPrerouting, p, "", "", 0);
  nf.run_hook(Hook::kPostrouting, p, "", "", 0);
  EXPECT_EQ(nf.conntrack_size(), 1u);
  nf.expire(sim::seconds(1000), sim::seconds(300));
  EXPECT_EQ(nf.conntrack_size(), 0u);
}

TEST(Netfilter, RuleMatchFields) {
  RuleMatch m;
  m.proto = L4Proto::kUdp;
  m.sport = 53;
  m.in_iface = "eth0";
  auto p = make_packet(Ipv4Address(1, 1, 1, 1), 53, Ipv4Address(2, 2, 2, 2),
                       1000, L4Proto::kUdp);
  EXPECT_TRUE(m.matches(p, "eth0", ""));
  EXPECT_FALSE(m.matches(p, "eth1", ""));
  p.proto = L4Proto::kTcp;
  EXPECT_FALSE(m.matches(p, "eth0", ""));
}

// ---- property sweep: NAT translation is involutive over many flows ---------------------

class NatInvolution : public ::testing::TestWithParam<int> {};

TEST_P(NatInvolution, TranslateThenReverseIsIdentity) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Netfilter nf(kCosts);
  Rule masq;
  masq.match.src = Ipv4Cidr(Ipv4Address(172, 17, 0, 0), 16);
  masq.target = TargetKind::kMasquerade;
  masq.nat_ip = Ipv4Address(10, 0, 0, 1);
  nf.nat_chain(Hook::kPostrouting).rules.push_back(masq);

  for (int i = 0; i < 50; ++i) {
    const Ipv4Address src(172, 17,
                          static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                          static_cast<std::uint8_t>(rng.uniform_int(2, 254)));
    const auto sport =
        static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    const Ipv4Address dst(static_cast<std::uint32_t>(rng.next_u64()) |
                          0x01000000);
    const auto dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));

    auto out = make_packet(src, sport, dst, dport);
    nf.run_hook(Hook::kPrerouting, out, "docker0", "", i);
    nf.run_hook(Hook::kPostrouting, out, "docker0", "eth0", i);
    ASSERT_EQ(out.src_ip, Ipv4Address(10, 0, 0, 1));

    auto back = make_packet(dst, dport, out.src_ip, out.src_port);
    nf.run_hook(Hook::kPrerouting, back, "eth0", "", i);
    ASSERT_EQ(back.dst_ip, src);
    ASSERT_EQ(back.dst_port, sport);
  }
}

INSTANTIATE_TEST_SUITE_P(Flows, NatInvolution, ::testing::Range(1, 6));

}  // namespace
}  // namespace nestv::net
