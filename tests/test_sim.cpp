// Unit tests for the discrete-event simulation core (src/sim).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nestv::sim {
namespace {

// ---- time -------------------------------------------------------------------

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000u);
  EXPECT_EQ(milliseconds(1), 1000u * 1000u);
  EXPECT_EQ(seconds(1), 1000u * 1000u * 1000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(2)), 2.0);
}

TEST(Time, FromSecondsClampsNegative) {
  EXPECT_EQ(from_seconds(-1.0), 0u);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_duration(nanoseconds(12)), "12 ns");
  EXPECT_EQ(format_duration(microseconds(3)), "3.000 us");
  EXPECT_EQ(format_duration(milliseconds(5)), "5.000 ms");
  EXPECT_EQ(format_duration(seconds(2)), "2.000 s");
}

// ---- event queue -------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantRunsInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  // Regression: a timer that cancels itself from its own callback must not
  // corrupt the live count (this deadlocked the GRO flush path once).
  EventQueue q;
  EventId self = 0;
  q.schedule(5, [&] { /* fires */ });
  self = q.schedule(10, [&] {});
  bool later_ran = false;
  q.schedule(20, [&] { later_ran = true; });

  q.pop_and_run();  // t=5
  q.pop_and_run();  // t=10 (self)
  q.cancel(self);   // cancelling the already-fired id
  ASSERT_FALSE(q.empty());
  q.pop_and_run();  // t=20 must still run
  EXPECT_TRUE(later_ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
  EventQueue q;
  q.schedule(1, [] {});
  q.cancel(9999);
  q.cancel(0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId first = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(first);
  EXPECT_EQ(q.next_time(), 20u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
}

// ---- engine ------------------------------------------------------------------

TEST(Engine, ClockAdvancesWithEvents) {
  Engine e;
  TimePoint seen = 0;
  e.schedule_in(100, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine e;
  int ran = 0;
  e.schedule_in(10, [&] { ++ran; });
  e.schedule_in(1000, [&] { ++ran; });
  e.run_until(500);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), 500u);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, ScheduleAtPastClampsToNow) {
  Engine e;
  e.schedule_in(100, [] {});
  e.run();
  bool ran = false;
  e.schedule_at(50, [&] { ran = true; });  // in the past
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_in(10, recurse);
  };
  e.schedule_in(10, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 50u);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_in(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
}

// ---- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = r.uniform_int(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42u);
}

TEST(Rng, ChanceEdges) {
  Rng r(7);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng r(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng r(7);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedianApproximate) {
  Rng r(7);
  Samples s;
  for (int i = 0; i < 50000; ++i) s.add(r.lognormal(3.0, 0.5));
  EXPECT_NEAR(s.median(), std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(Rng, ParetoLowerBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(99);
  Rng child = a.fork();
  // Forked stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

// ---- stats --------------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng r(3);
  RunningStats a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(10, 3);
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), combined.stddev(), 1e-9);
}

TEST(RunningStats, CvIsStddevOverMean) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.cv(), s.stddev() / s.mean());
}

TEST(Samples, PercentileExactness) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
}

TEST(Samples, UnsortedInputHandled) {
  Samples s;
  s.add(5);
  s.add(1);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, ValuesKeepInsertionOrderAcrossQuantileQueries) {
  // Regression: percentile()/min()/max() used to sort the sample vector in
  // place, so values() silently returned sorted data after the first
  // quantile query.  Interleave mutation and queries and check the
  // insertion order survives every step.
  Samples s;
  const std::vector<double> inserted{5.0, 1.0, 9.0, 3.0, 7.0};
  s.add(inserted[0]);
  s.add(inserted[1]);
  s.add(inserted[2]);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);  // quantile query mid-stream
  EXPECT_EQ(s.values(), (std::vector<double>{5.0, 1.0, 9.0}));
  s.add(inserted[3]);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  s.add(inserted[4]);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
  EXPECT_EQ(s.values(), inserted);  // still exactly the insertion order
  // And the quantiles remain correct after the final mutation.
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Samples, BoxStatsOrdering) {
  Samples s;
  Rng r(11);
  for (int i = 0; i < 1000; ++i) s.add(r.lognormal(0, 1));
  const BoxStats b = box_stats(s);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps into bin 0
  h.add(25.0);   // clamps into bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 5; ++i) h.add(0.1);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

// ---- cpu accounting -------------------------------------------------------------

TEST(CpuAccount, ChargesByCategory) {
  CpuAccount acc("x");
  acc.charge(CpuCategory::kUsr, 100);
  acc.charge(CpuCategory::kSoft, 50);
  acc.charge(CpuCategory::kSoft, 25);
  EXPECT_EQ(acc.get(CpuCategory::kUsr), 100u);
  EXPECT_EQ(acc.get(CpuCategory::kSoft), 75u);
  EXPECT_EQ(acc.get(CpuCategory::kSys), 0u);
  EXPECT_EQ(acc.total(), 175u);
}

TEST(CpuAccount, CoresOverWall) {
  CpuAccount acc("x");
  acc.charge(CpuCategory::kGuest, 500);
  EXPECT_DOUBLE_EQ(acc.cores(CpuCategory::kGuest, 1000), 0.5);
  EXPECT_DOUBLE_EQ(acc.total_cores(1000), 0.5);
  EXPECT_DOUBLE_EQ(acc.cores(CpuCategory::kGuest, 0), 0.0);
}

TEST(CpuLedger, AccountsAreStableAndNamed) {
  CpuLedger ledger;
  CpuAccount& a = ledger.account("vm/a");
  ledger.account("vm/b");
  CpuAccount& a2 = ledger.account("vm/a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(ledger.accounts().size(), 2u);
  EXPECT_NE(ledger.find("vm/b"), nullptr);
  EXPECT_EQ(ledger.find("nope"), nullptr);
}

TEST(CpuLedger, RenderHasHeaderAndRows) {
  CpuLedger ledger;
  ledger.account("host").charge(CpuCategory::kSys, seconds(1));
  const std::string out = ledger.render(seconds(1));
  EXPECT_NE(out.find("usr"), std::string::npos);
  EXPECT_NE(out.find("host"), std::string::npos);
}

TEST(CategoryNames, AllDistinct) {
  EXPECT_STREQ(to_string(CpuCategory::kUsr), "usr");
  EXPECT_STREQ(to_string(CpuCategory::kSys), "sys");
  EXPECT_STREQ(to_string(CpuCategory::kSoft), "soft");
  EXPECT_STREQ(to_string(CpuCategory::kGuest), "guest");
}

// ---- serial resource --------------------------------------------------------------

TEST(SerialResource, SerializesWork) {
  Engine e;
  SerialResource r(e, "core");
  std::vector<int> order;
  r.submit(100, [&] { order.push_back(1); });
  r.submit(50, [&] { order.push_back(2); });  // queues behind item 1
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 150u);
  EXPECT_EQ(r.busy_time(), 150u);
  EXPECT_EQ(r.items_executed(), 2u);
}

TEST(SerialResource, IdleGapNotCounted) {
  Engine e;
  SerialResource r(e, "core");
  r.submit(10, [] {});
  e.run();
  e.schedule_in(1000, [] {});
  e.run();
  r.submit(10, [] {});
  e.run();
  EXPECT_EQ(r.busy_time(), 20u);
  EXPECT_DOUBLE_EQ(r.utilization(e.now()), 20.0 / 1020.0);
}

TEST(SerialResource, ChargesBoundAccounts) {
  Engine e;
  CpuAccount guest("vm"), host("host");
  SerialResource r(e, "vcpu");
  r.bind(guest, CpuCategory::kSoft);
  r.bind(host, CpuCategory::kGuest);
  r.submit_as(CpuCategory::kSoft, 100, [] {});
  e.run();
  // The guest-side sink takes the per-item category; the host sink stays
  // kGuest (host time lent to the VM).
  EXPECT_EQ(guest.get(CpuCategory::kSoft), 100u);
  EXPECT_EQ(host.get(CpuCategory::kGuest), 100u);
  EXPECT_EQ(host.get(CpuCategory::kSoft), 0u);
}

TEST(SerialResource, PerItemCategoryOverride) {
  Engine e;
  CpuAccount acc("app");
  SerialResource r(e, "core");
  r.bind(acc, CpuCategory::kUsr);
  r.submit_as(CpuCategory::kSys, 30, [] {});
  r.submit_as(CpuCategory::kUsr, 70, [] {});
  e.run();
  EXPECT_EQ(acc.get(CpuCategory::kSys), 30u);
  EXPECT_EQ(acc.get(CpuCategory::kUsr), 70u);
}

// ---- cost model ------------------------------------------------------------------

TEST(CostModel, DefaultsAreSane) {
  const CostModel& c = CostModel::defaults();
  EXPECT_GT(c.syscall_pkt, 0u);
  EXPECT_GT(c.vhost_pkt, 0u);
  EXPECT_GT(c.gso_virtio, c.gso_nat_nested);
  EXPECT_GT(c.gso_loopback, c.gso_virtio);
  EXPECT_GT(c.tcp_window_bytes, c.gso_virtio);
  EXPECT_GT(c.nf_standing_rules, 0);
  // The emulated-QEMU path must be costlier than vhost (abl_vhost relies
  // on this ordering).
  EXPECT_GT(c.qemu_emul_pkt, c.vhost_pkt);
}

// ---- property sweeps ----------------------------------------------------------------

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntNeverOutOfBounds) {
  Rng r(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto lo = r.uniform_int(0, 100);
    const auto hi = lo + r.uniform_int(0, 100);
    const auto x = r.uniform_int(lo, hi);
    ASSERT_GE(x, lo);
    ASSERT_LE(x, hi);
  }
}

TEST_P(RngSeedSweep, ForkDeterministic) {
  Rng a(GetParam()), b(GetParam());
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 16; ++i) ASSERT_EQ(fa.next_u64(), fb.next_u64());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 2019ull,
                                           0xdeadbeefull,
                                           0xffffffffffffffffull));

class EventStormSweep : public ::testing::TestWithParam<int> {};

TEST_P(EventStormSweep, AllEventsRunExactlyOnce) {
  Engine e;
  Rng r(static_cast<std::uint64_t>(GetParam()));
  const int n = 500;
  int ran = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(
        e.schedule_in(r.uniform_int(0, 10000), [&ran] { ++ran; }));
  }
  // Cancel a random third.
  int cancelled = 0;
  for (int i = 0; i < n; i += 3) {
    e.cancel(ids[static_cast<std::size_t>(i)]);
    ++cancelled;
  }
  e.run();
  EXPECT_EQ(ran, n - cancelled);
  EXPECT_TRUE(e.idle());
}

INSTANTIATE_TEST_SUITE_P(Storms, EventStormSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace nestv::sim
