// End-to-end integration tests: the paper's deployment scenarios driven by
// the workload generators, asserting the qualitative results of section 5.
// These are the heaviest tests; traffic windows are kept short.
#include <gtest/gtest.h>

#include "scenario/cross_vm.hpp"
#include "scenario/single_server.hpp"
#include "workload/apps.hpp"
#include "workload/netperf.hpp"

namespace nestv {
namespace {

using scenario::CrossVmMode;
using scenario::ServerMode;

struct MicroResult {
  double rr_latency_us;
  double stream_mbps;
};

MicroResult run_micro(ServerMode mode, std::uint32_t msg_bytes) {
  auto s = scenario::make_single_server(mode, 5001, {});
  workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
  const auto rr = np.run_udp_rr(msg_bytes, sim::milliseconds(100));
  const auto st = np.run_tcp_stream(msg_bytes, sim::milliseconds(150));
  return {rr.mean_latency_us, st.throughput_mbps};
}

MicroResult run_cross(CrossVmMode mode, std::uint32_t msg_bytes) {
  auto s = scenario::make_cross_vm(mode, 6001, {});
  workload::Netperf np(s.bed->engine(), s.client, s.server, 6001);
  const auto rr = np.run_udp_rr(msg_bytes, sim::milliseconds(100));
  const auto st = np.run_tcp_stream(msg_bytes, sim::milliseconds(150));
  return {rr.mean_latency_us, st.throughput_mbps};
}

// ---- scenario construction -----------------------------------------------------

TEST(SingleServer, AllModesDeploy) {
  for (const auto mode :
       {ServerMode::kNoCont, ServerMode::kNat, ServerMode::kBrFusion}) {
    auto s = scenario::make_single_server(mode, 5001, {});
    EXPECT_NE(s.server.stack, nullptr) << to_string(mode);
    EXPECT_NE(s.client.stack, nullptr);
    EXPECT_FALSE(s.server.service_ip.is_unspecified());
    if (mode != ServerMode::kNoCont) {
      EXPECT_GT(s.boot_duration, 0u);
      EXPECT_NE(s.srv_container, nullptr);
    }
  }
}

TEST(SingleServer, NatServiceAddressIsTheVm) {
  auto s = scenario::make_single_server(ServerMode::kNat, 5001, {});
  // DNAT: the client dials the VM, the server binds 172.17.0.x.
  EXPECT_NE(s.server.service_ip, s.server.local_ip);
  EXPECT_TRUE(net::Ipv4Cidr(net::Ipv4Address(172, 17, 0, 0), 16)
                  .contains(s.server.local_ip));
}

TEST(SingleServer, BrFusionServiceAddressIsThePod) {
  auto s = scenario::make_single_server(ServerMode::kBrFusion, 5001, {});
  EXPECT_EQ(s.server.service_ip, s.server.local_ip);
}

TEST(CrossVm, AllModesDeploy) {
  for (const auto mode : {CrossVmMode::kSameNode, CrossVmMode::kHostlo,
                          CrossVmMode::kNatCrossVm, CrossVmMode::kOverlay}) {
    auto s = scenario::make_cross_vm(mode, 6001, {});
    EXPECT_NE(s.client.stack, nullptr) << to_string(mode);
    EXPECT_NE(s.server.stack, nullptr);
  }
}

TEST(CrossVm, HostloPodIsCrossVm) {
  auto s = scenario::make_cross_vm(CrossVmMode::kHostlo, 6001, {});
  ASSERT_NE(s.pod, nullptr);
  EXPECT_TRUE(s.pod->is_cross_vm());
  EXPECT_NE(s.client.vm, s.server.vm);
}

TEST(CrossVm, SameNodeSharesOneNamespace) {
  auto s = scenario::make_cross_vm(CrossVmMode::kSameNode, 6001, {});
  EXPECT_EQ(s.client.stack, s.server.stack);
  EXPECT_EQ(s.client.vm, s.server.vm);
}

// ---- fig 2 / fig 4 qualitative assertions ------------------------------------------

TEST(Fig2Shape, NatDegradesThroughputHeavily) {
  const auto nocont = run_micro(ServerMode::kNoCont, 1280);
  const auto nat = run_micro(ServerMode::kNat, 1280);
  // Paper: ~68% degradation; assert the band [50%, 85%].
  const double degradation = 1.0 - nat.stream_mbps / nocont.stream_mbps;
  EXPECT_GT(degradation, 0.50);
  EXPECT_LT(degradation, 0.85);
}

TEST(Fig2Shape, NatInflatesLatencyModerately) {
  const auto nocont = run_micro(ServerMode::kNoCont, 1280);
  const auto nat = run_micro(ServerMode::kNat, 1280);
  // Paper: ~31% increase; assert the band [15%, 60%].
  const double ratio = nat.rr_latency_us / nocont.rr_latency_us;
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.60);
}

TEST(Fig4Shape, BrFusionMatchesNoCont) {
  const auto nocont = run_micro(ServerMode::kNoCont, 1280);
  const auto brf = run_micro(ServerMode::kBrFusion, 1280);
  // Paper: within 3.5% of NoCont (throughput); allow 5%.
  EXPECT_NEAR(brf.stream_mbps / nocont.stream_mbps, 1.0, 0.05);
  EXPECT_NEAR(brf.rr_latency_us / nocont.rr_latency_us, 1.0, 0.10);
}

TEST(Fig4Shape, BrFusionBeatsNat) {
  const auto nat = run_micro(ServerMode::kNat, 1280);
  const auto brf = run_micro(ServerMode::kBrFusion, 1280);
  EXPECT_GT(brf.stream_mbps, 2.0 * nat.stream_mbps);
  EXPECT_LT(brf.rr_latency_us, nat.rr_latency_us);
}

TEST(Fig4Shape, NatStagnatesWithMessageSize) {
  // "NAT scales more slowly and even stagnates between 1024B and 1280B"
  // while NoCont keeps scaling.
  const auto nat_1024 = run_micro(ServerMode::kNat, 1024);
  const auto nat_1280 = run_micro(ServerMode::kNat, 1280);
  const auto nocont_1024 = run_micro(ServerMode::kNoCont, 1024);
  const auto nocont_1280 = run_micro(ServerMode::kNoCont, 1280);
  const double nat_gain = nat_1280.stream_mbps / nat_1024.stream_mbps;
  const double nocont_gain =
      nocont_1280.stream_mbps / nocont_1024.stream_mbps;
  EXPECT_LT(nat_gain, 1.10);               // flat
  EXPECT_GT(nocont_gain, nat_gain - 0.02); // NoCont scales at least as well
}

// ---- fig 10 qualitative assertions ----------------------------------------------------

TEST(Fig10Shape, LatencyOrdering) {
  const auto same = run_cross(CrossVmMode::kSameNode, 1024);
  const auto hostlo = run_cross(CrossVmMode::kHostlo, 1024);
  const auto nat = run_cross(CrossVmMode::kNatCrossVm, 1024);
  const auto overlay = run_cross(CrossVmMode::kOverlay, 1024);
  // Paper fig 10 ordering: SameNode < Hostlo < NAT, Overlay.
  EXPECT_LT(same.rr_latency_us, hostlo.rr_latency_us);
  EXPECT_LT(hostlo.rr_latency_us, nat.rr_latency_us);
  EXPECT_LT(hostlo.rr_latency_us, overlay.rr_latency_us);
  // "Hostlo's latency is about twice SameNode's".
  EXPECT_NEAR(hostlo.rr_latency_us / same.rr_latency_us, 2.0, 0.8);
}

TEST(Fig10Shape, ThroughputOrdering) {
  const auto same = run_cross(CrossVmMode::kSameNode, 1024);
  const auto hostlo = run_cross(CrossVmMode::kHostlo, 1024);
  const auto nat = run_cross(CrossVmMode::kNatCrossVm, 1024);
  const auto overlay = run_cross(CrossVmMode::kOverlay, 1024);
  // "no solution reaches the performance level of SameNode".
  EXPECT_GT(same.stream_mbps, 1.5 * overlay.stream_mbps);
  EXPECT_GT(same.stream_mbps, 2.0 * hostlo.stream_mbps);
  // Hostlo beats NAT; Overlay beats Hostlo (paper: +17.9% / -27%).
  EXPECT_GT(hostlo.stream_mbps, nat.stream_mbps);
  EXPECT_GT(overlay.stream_mbps, hostlo.stream_mbps);
}

TEST(Fig10Shape, HostloLatencyFlatAcrossSizes) {
  // "Its latency remains stable across all message sizes".
  auto s = scenario::make_cross_vm(CrossVmMode::kHostlo, 6001, {});
  workload::Netperf np(s.bed->engine(), s.client, s.server, 6001);
  const auto small = np.run_udp_rr(64, sim::milliseconds(80));
  const auto large = np.run_udp_rr(1408, sim::milliseconds(80));
  EXPECT_LT(large.mean_latency_us / small.mean_latency_us, 1.35);
}

// ---- macro-benchmark harness smoke -----------------------------------------------------

TEST(MacroWorkloads, MemcachedServesMix) {
  auto s = scenario::make_single_server(ServerMode::kNoCont, 11211, {});
  workload::MemcachedParams params;
  params.client_threads = 2;
  params.conns_per_thread = 8;
  auto d = workload::deploy_memcached(s.client, s.server, 11211,
                                      sim::Rng(1), params);
  const auto r = d.closed_client->run(s.bed->engine(), sim::milliseconds(80));
  EXPECT_GT(r.ops, 100u);
  EXPECT_GT(r.mean_latency_us, 0.0);
  EXPECT_EQ(d.server->ops_served(), r.ops);
}

TEST(MacroWorkloads, NginxHoldsTargetRate) {
  auto s = scenario::make_single_server(ServerMode::kNoCont, 80, {});
  workload::NginxParams params;
  params.req_per_sec = 2000.0;
  params.conns = 20;
  auto d = workload::deploy_nginx(s.client, s.server, 80, sim::Rng(1),
                                  params);
  const auto r = d.open_client->run(s.bed->engine(), sim::milliseconds(200));
  // Open loop at 2k/s for 200ms -> ~400 requests.
  EXPECT_NEAR(static_cast<double>(r.ops), 400.0, 40.0);
}

TEST(MacroWorkloads, KafkaBatchesAtConfiguredRate) {
  auto s = scenario::make_single_server(ServerMode::kNoCont, 9092, {});
  workload::KafkaParams params;
  const double batches = params.batches_per_sec();
  EXPECT_NEAR(batches, 120000.0 * 100 / 8192, 1.0);
  auto d = workload::deploy_kafka(s.client, s.server, 9092, sim::Rng(1),
                                  params);
  const auto r = d.open_client->run(s.bed->engine(), sim::milliseconds(200));
  EXPECT_GT(r.ops, 200u);
  EXPECT_GT(r.mean_latency_us, 0.0);
}

TEST(MacroWorkloads, BrFusionImprovesNatLatencyForKafka) {
  auto run_kafka = [](ServerMode mode) {
    auto s = scenario::make_single_server(mode, 9092, {});
    workload::KafkaParams params;
    auto d = workload::deploy_kafka(s.client, s.server, 9092, sim::Rng(1),
                                    params);
    return d.open_client->run(s.bed->engine(), sim::milliseconds(150));
  };
  const auto nat = run_kafka(ServerMode::kNat);
  const auto brf = run_kafka(ServerMode::kBrFusion);
  // Paper fig 5: BrFusion improves Kafka latency over NAT (~12%).
  EXPECT_LT(brf.mean_latency_us, nat.mean_latency_us);
}

// ---- CPU accounting across a run (figs 6/7/14/15 machinery) ----------------------------

TEST(CpuBreakdown, NatBurnsMoreGuestSoftirqThanBrFusion) {
  auto run_and_soft = [](ServerMode mode) {
    auto s = scenario::make_single_server(mode, 5001, {});
    s.bed->machine().ledger().reset_all();
    workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
    np.run_tcp_stream(1280, sim::milliseconds(100));
    const auto* vm = s.bed->machine().ledger().find("vm/vm1");
    return vm != nullptr ? vm->get(sim::CpuCategory::kSoft) : 0;
  };
  const auto nat_soft = run_and_soft(ServerMode::kNat);
  const auto brf_soft = run_and_soft(ServerMode::kBrFusion);
  // Section 5.2.3: BrFusion removes the netfilter hook execution; its
  // softirq share must be drastically smaller.
  EXPECT_LT(brf_soft, nat_soft / 2);
}

TEST(CpuBreakdown, HostGuestTimeTracked) {
  auto s = scenario::make_single_server(ServerMode::kNoCont, 5001, {});
  s.bed->machine().ledger().reset_all();
  workload::Netperf np(s.bed->engine(), s.client, s.server, 5001);
  np.run_tcp_stream(1280, sim::milliseconds(100));
  EXPECT_GT(s.bed->machine().host_account().get(sim::CpuCategory::kGuest),
            0u);
}

// ---- determinism ---------------------------------------------------------------------------

TEST(Determinism, IdenticalSeedsIdenticalResults) {
  const auto a = run_micro(ServerMode::kNat, 512);
  const auto b = run_micro(ServerMode::kNat, 512);
  EXPECT_DOUBLE_EQ(a.rr_latency_us, b.rr_latency_us);
  EXPECT_DOUBLE_EQ(a.stream_mbps, b.stream_mbps);
}

TEST(Determinism, DifferentSeedsDifferentBootNoise) {
  scenario::TestbedConfig c1{.seed = 1};
  scenario::TestbedConfig c2{.seed = 2};
  auto s1 = scenario::make_single_server(ServerMode::kNat, 5001, c1);
  auto s2 = scenario::make_single_server(ServerMode::kNat, 5001, c2);
  EXPECT_NE(s1.boot_duration, s2.boot_duration);
}

// ---- property sweep: message-size monotonicity -----------------------------------------------

class MsgSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MsgSizeSweep, BrFusionTracksNoContEverywhere) {
  const auto msg = GetParam();
  const auto nocont = run_micro(ServerMode::kNoCont, msg);
  const auto brf = run_micro(ServerMode::kBrFusion, msg);
  ASSERT_GT(nocont.stream_mbps, 0.0);
  EXPECT_NEAR(brf.stream_mbps / nocont.stream_mbps, 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsgSizeSweep,
                         ::testing::Values(64u, 256u, 1024u, 1408u));

}  // namespace
}  // namespace nestv
